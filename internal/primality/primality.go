// Package primality implements the paper's PRIMALITY algorithms over
// relational schemas of bounded treewidth: the Figure 6 decision program
// (is attribute a part of a key?) as a dynamic program over a nice tree
// decomposition, and the Section 5.3 linear-time enumeration of all prime
// attributes via the additional top-down solve↓ pass. A naive quadratic
// enumeration (re-rooting the decomposition per attribute) and a full
// grounding to a propositional Horn program are provided as baselines for
// the experiments of Section 6.
package primality

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitset"
	"repro/internal/schema"
	"repro/internal/structure"
	"repro/internal/tree"
)

// ctx carries the schema, its τ-structure encoding and the element-level
// lookup tables the DP handlers need.
type ctx struct {
	s       *schema.Schema
	st      *structure.Structure
	isAttr  []bool      // element → is an attribute
	fdOf    map[int]int // FD element → FD index
	lhs     [][]int     // FD index → lhs attribute elements
	rhs     []int       // FD index → rhs attribute element
	attElem []int       // attribute index → element
}

func newCtx(s *schema.Schema) *ctx {
	st := s.ToStructure()
	c := &ctx{
		s:       s,
		st:      st,
		isAttr:  make([]bool, st.Size()),
		fdOf:    map[int]int{},
		lhs:     make([][]int, s.NumFDs()),
		rhs:     make([]int, s.NumFDs()),
		attElem: make([]int, s.NumAttrs()),
	}
	for i := 0; i < s.NumAttrs(); i++ {
		e, _ := st.Elem(s.AttrName(i))
		c.isAttr[e] = true
		c.attElem[i] = e
	}
	for fi, f := range s.FDs() {
		fe, _ := st.Elem(f.Name)
		c.fdOf[fe] = fi
		c.rhs[fi], _ = st.Elem(s.AttrName(f.RHS))
		for _, a := range f.LHS {
			e, _ := st.Elem(s.AttrName(a))
			c.lhs[fi] = append(c.lhs[fi], e)
		}
	}
	return c
}

// state is the argument tuple of the solve predicate of Figure 6, over
// element IDs: Y and Co partition the bag's attributes (Co ordered by the
// derivation sequence), FY the bag FDs verified not to contradict the
// closedness of Y, DC ⊆ Co the bag attributes already derived, FC the bag
// FDs used in the derivation.
type state struct {
	y, co, fy, dc, fc []int // y, fy, dc, fc sorted; co ordered
}

// encode renders the state as a comparable key.
func (s state) encode() string {
	var b strings.Builder
	for i, part := range [][]int{s.y, s.co, s.fy, s.dc, s.fc} {
		if i > 0 {
			b.WriteByte('|')
		}
		for j, e := range part {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(e))
		}
	}
	return b.String()
}

func decode(key string) state {
	parts := strings.Split(key, "|")
	read := func(p string) []int {
		if p == "" {
			return nil
		}
		fields := strings.Split(p, ",")
		out := make([]int, len(fields))
		for i, f := range fields {
			out[i], _ = strconv.Atoi(f)
		}
		return out
	}
	return state{y: read(parts[0]), co: read(parts[1]), fy: read(parts[2]), dc: read(parts[3]), fc: read(parts[4])}
}

func contains(xs []int, e int) bool {
	for _, x := range xs {
		if x == e {
			return true
		}
	}
	return false
}

func insertSorted(xs []int, e int) []int {
	out := make([]int, 0, len(xs)+1)
	placed := false
	for _, x := range xs {
		if !placed && e < x {
			out = append(out, e)
			placed = true
		}
		out = append(out, x)
	}
	if !placed {
		out = append(out, e)
	}
	return out
}

func removeVal(xs []int, e int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if x != e {
			out = append(out, x)
		}
	}
	return out
}

func pos(xs []int, e int) int {
	for i, x := range xs {
		if x == e {
			return i
		}
	}
	return -1
}

// consistent checks the ordering condition of the consistent predicate:
// every FD of fc has its rhs in co with all co-members of its lhs earlier.
func (c *ctx) consistent(fc []int, co []int) bool {
	for _, fe := range fc {
		fi := c.fdOf[fe]
		rp := pos(co, c.rhs[fi])
		if rp < 0 {
			return false
		}
		for _, b := range c.lhs[fi] {
			if bp := pos(co, b); bp >= 0 && bp >= rp {
				return false
			}
		}
	}
	return true
}

// witnessed reports whether FD fi has a left-hand-side attribute in co
// (the outside predicate's discharge condition restricted to the bag).
func witnessed(c *ctx, fi int, co []int) bool {
	for _, b := range c.lhs[fi] {
		if contains(co, b) {
			return true
		}
	}
	return false
}

// splitBag separates a bag into attribute and FD elements (each sorted,
// as bags are).
func (c *ctx) splitBag(bag []int) (attrs, fds []int) {
	for _, e := range bag {
		if e < len(c.isAttr) && c.isAttr[e] {
			attrs = append(attrs, e)
		} else {
			fds = append(fds, e)
		}
	}
	return attrs, fds
}

// leafStates enumerates the solve states of a leaf node (and of the root
// for the top-down pass): every partition of the bag attributes into
// Y/ordered Co, every consistent choice of used FDs FC, with FY and ΔC
// determined (the leaf rule of Figure 6).
func (c *ctx) leafStates(bag []int) []string {
	attrs, fds := c.splitBag(bag)
	var out []string
	subsets(attrs, func(y, rest []int) {
		permute(rest, func(co []int) {
			// FY is determined by Y and the bag: all FDs with rhs outside
			// Y witnessed by some lhs attribute in Co.
			var fy []int
			for _, fe := range fds {
				fi := c.fdOf[fe]
				if !contains(y, c.rhs[fi]) && witnessed(c, fi, co) {
					fy = append(fy, fe)
				}
			}
			// Candidate used FDs: rhs in Co.
			var candidates []int
			for _, fe := range fds {
				if contains(co, c.rhs[c.fdOf[fe]]) {
					candidates = append(candidates, fe)
				}
			}
			subsets(candidates, func(fc, _ []int) {
				if !c.consistent(fc, co) {
					return
				}
				var dc []int
				for _, fe := range fc {
					dc = insertDedupSorted(dc, c.rhs[c.fdOf[fe]])
				}
				st := state{
					y:  append([]int(nil), y...),
					co: append([]int(nil), co...),
					fy: append([]int(nil), fy...),
					dc: dc,
					fc: append([]int(nil), fc...),
				}
				out = append(out, st.encode())
			})
		})
	})
	return out
}

func insertDedupSorted(xs []int, e int) []int {
	if contains(xs, e) {
		return xs
	}
	return insertSorted(xs, e)
}

// subsets enumerates all subsets of xs, calling f with (subset, rest).
func subsets(xs []int, f func(in, out []int)) {
	n := len(xs)
	for mask := 0; mask < 1<<uint(n); mask++ {
		var in, out []int
		for i, x := range xs {
			if mask&(1<<uint(i)) != 0 {
				in = append(in, x)
			} else {
				out = append(out, x)
			}
		}
		f(in, out)
	}
}

// permute enumerates all orderings of xs.
func permute(xs []int, f func([]int)) {
	perm := append([]int(nil), xs...)
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			f(perm)
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if len(perm) == 0 {
		f(perm)
	}
}

// introduce implements the attribute/FD introduction rules of Figure 6.
func (c *ctx) introduce(bag []int, elem int, childKey string) []string {
	child := decode(childKey)
	if c.isAttr[elem] {
		var out []string
		// Case Y: all other arguments unchanged.
		sy := child
		sy.y = insertSorted(child.y, elem)
		out = append(out, sy.encode())
		// Case Co: insert at every position; re-check order consistency
		// and discharge newly witnessed FDs.
		_, fds := c.splitBag(bag)
		for p := 0; p <= len(child.co); p++ {
			co := make([]int, 0, len(child.co)+1)
			co = append(co, child.co[:p]...)
			co = append(co, elem)
			co = append(co, child.co[p:]...)
			if !c.consistent(child.fc, co) {
				continue
			}
			fy := append([]int(nil), child.fy...)
			for _, fe := range fds {
				fi := c.fdOf[fe]
				if !contains(child.y, c.rhs[fi]) && contains(c.lhs[fi], elem) {
					fy = insertDedupSorted(fy, fe)
				}
			}
			sc := state{y: child.y, co: co, fy: fy, dc: child.dc, fc: child.fc}
			out = append(out, sc.encode())
		}
		return out
	}
	// FD introduction.
	fi, ok := c.fdOf[elem]
	if !ok {
		return nil
	}
	rhs := c.rhs[fi]
	if contains(child.y, rhs) {
		// Rule 1: rhs ∈ Y — unchanged.
		return []string{childKey}
	}
	if !contains(child.co, rhs) {
		// The bag discipline (rhs present whenever the FD is) is violated;
		// prepareDecomposition prevents this.
		return nil
	}
	discharge := func() []int {
		if witnessed(c, fi, child.co) {
			return insertDedupSorted(append([]int(nil), child.fy...), elem)
		}
		return child.fy
	}
	var out []string
	// Rule 3: f not used in the derivation.
	s3 := state{y: child.y, co: child.co, fy: discharge(), dc: child.dc, fc: child.fc}
	out = append(out, s3.encode())
	// Rule 2: f used — rhs newly derived (disjoint union with ΔC) and the
	// ordering must be consistent.
	if !contains(child.dc, rhs) && c.consistent([]int{elem}, child.co) {
		s2 := state{
			y:  child.y,
			co: child.co,
			fy: discharge(),
			dc: insertSorted(child.dc, rhs),
			fc: insertSorted(child.fc, elem),
		}
		out = append(out, s2.encode())
	}
	return out
}

// forget implements the attribute/FD removal rules of Figure 6.
func (c *ctx) forget(elem int, childKey string) []string {
	child := decode(childKey)
	if c.isAttr[elem] {
		if contains(child.y, elem) {
			s := state{y: removeVal(child.y, elem), co: child.co, fy: child.fy, dc: child.dc, fc: child.fc}
			return []string{s.encode()}
		}
		// elem ∈ Co: its derivation must have been established.
		if !contains(child.dc, elem) {
			return nil
		}
		s := state{y: child.y, co: removeVal(child.co, elem), fy: child.fy, dc: removeVal(child.dc, elem), fc: child.fc}
		return []string{s.encode()}
	}
	fi, ok := c.fdOf[elem]
	if !ok {
		return nil
	}
	if contains(child.y, c.rhs[fi]) {
		// Rule 1: rhs ∈ Y — f was never a threat.
		return []string{childKey}
	}
	// Rules 2/3: f must have been verified (f ∈ FY) before leaving.
	if !contains(child.fy, elem) {
		return nil
	}
	s := state{y: child.y, co: child.co, fy: removeVal(child.fy, elem), dc: child.dc, fc: removeVal(child.fc, elem)}
	return []string{s.encode()}
}

// branch implements the branch rule of Figure 6: identical Y, Co and FC,
// unions of FY and ΔC, and the unique condition (an attribute may be
// derived in both subtrees only via a shared bag FD).
func (c *ctx) branch(k1, k2 string) []string {
	s1, s2 := decode(k1), decode(k2)
	if !equalInts(s1.y, s2.y) || !equalInts(s1.co, s2.co) || !equalInts(s1.fc, s2.fc) {
		return nil
	}
	// unique(ΔC1, ΔC2, FC).
	inter := map[int]bool{}
	for _, e := range s1.dc {
		if contains(s2.dc, e) {
			inter[e] = true
		}
	}
	fromFC := map[int]bool{}
	for _, fe := range s1.fc {
		fromFC[c.rhs[c.fdOf[fe]]] = true
	}
	if len(inter) != len(fromFC) {
		return nil
	}
	for e := range inter {
		if !fromFC[e] {
			return nil
		}
	}
	fy := append([]int(nil), s1.fy...)
	for _, fe := range s2.fy {
		fy = insertDedupSorted(fy, fe)
	}
	dc := append([]int(nil), s1.dc...)
	for _, e := range s2.dc {
		dc = insertDedupSorted(dc, e)
	}
	s := state{y: s1.y, co: s1.co, fy: fy, dc: dc, fc: s1.fc}
	return []string{s.encode()}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// accepting reports whether a state at a node whose envelope/subtree is
// the whole structure certifies primality of attribute element aElem (the
// "result" rule of Figure 6): a ∉ Y, every bag FD with rhs outside Y
// verified, and everything in Co except a derived.
func (c *ctx) accepting(bag []int, key string, aElem int) bool {
	s := decode(key)
	if contains(s.y, aElem) || !contains(s.co, aElem) {
		return false
	}
	_, fds := c.splitBag(bag)
	var wantFY []int
	for _, fe := range fds {
		if !contains(s.y, c.rhs[c.fdOf[fe]]) {
			wantFY = append(wantFY, fe)
		}
	}
	if !equalInts(s.fy, wantFY) {
		return false
	}
	wantDC := append([]int(nil), s.co...)
	sort.Ints(wantDC)
	wantDC = removeVal(wantDC, aElem)
	return equalInts(s.dc, wantDC)
}

// prepareDecomposition pads every bag containing an FD element with the
// FD's right-hand-side attribute (the Section 5.2 requirement; in the
// worst case this doubles the width) and validates the result.
func (c *ctx) prepareDecomposition(d *tree.Decomposition) error {
	for i := range d.Nodes {
		bag := bitset.FromSlice(d.Nodes[i].Bag)
		changed := false
		for _, e := range d.Nodes[i].Bag {
			if fi, ok := c.fdOf[e]; ok && !bag.Has(c.rhs[fi]) {
				bag.Add(c.rhs[fi])
				changed = true
			}
		}
		if changed {
			d.Nodes[i].Bag = bag.Elems()
		}
	}
	return d.Validate(c.st)
}

// checkDiscipline verifies the bag discipline on a normalized
// decomposition: every bag containing an FD also contains its rhs.
func (c *ctx) checkDiscipline(d *tree.Decomposition) error {
	for i, n := range d.Nodes {
		bag := bitset.FromSlice(n.Bag)
		for _, e := range n.Bag {
			if fi, ok := c.fdOf[e]; ok && !bag.Has(c.rhs[fi]) {
				return fmt.Errorf("primality: node %d holds FD %s without its rhs %s", i, c.st.Name(e), c.st.Name(c.rhs[fi]))
			}
		}
	}
	return nil
}

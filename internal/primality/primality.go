// Package primality implements the paper's PRIMALITY algorithms over
// relational schemas of bounded treewidth: the Figure 6 decision program
// (is attribute a part of a key?) as a dynamic program over a nice tree
// decomposition, and the Section 5.3 linear-time enumeration of all prime
// attributes via the additional top-down solve↓ pass. A naive quadratic
// enumeration (re-rooting the decomposition per attribute) and a full
// grounding to a propositional Horn program are provided as baselines for
// the experiments of Section 6.
package primality

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/schema"
	"repro/internal/solver"
	"repro/internal/structure"
	"repro/internal/tree"
)

// ctx carries the schema, its τ-structure encoding and the element-level
// lookup tables the DP handlers need.
type ctx struct {
	s       *schema.Schema
	st      *structure.Structure
	isAttr  []bool      // element → is an attribute
	fdOf    map[int]int // FD element → FD index
	lhs     [][]int     // FD index → lhs attribute elements
	rhs     []int       // FD index → rhs attribute element
	attElem []int       // attribute index → element
	pool    *interner
}

func newCtx(s *schema.Schema) *ctx {
	st := s.ToStructure()
	c := &ctx{
		s:       s,
		st:      st,
		isAttr:  make([]bool, st.Size()),
		fdOf:    map[int]int{},
		lhs:     make([][]int, s.NumFDs()),
		rhs:     make([]int, s.NumFDs()),
		attElem: make([]int, s.NumAttrs()),
		pool:    newInterner(),
	}
	for i := 0; i < s.NumAttrs(); i++ {
		e, _ := st.Elem(s.AttrName(i))
		c.isAttr[e] = true
		c.attElem[i] = e
	}
	for fi, f := range s.FDs() {
		fe, _ := st.Elem(f.Name)
		c.fdOf[fe] = fi
		c.rhs[fi], _ = st.Elem(s.AttrName(f.RHS))
		for _, a := range f.LHS {
			e, _ := st.Elem(s.AttrName(a))
			c.lhs[fi] = append(c.lhs[fi], e)
		}
	}
	return c
}

// state is the argument tuple of the solve predicate of Figure 6, over
// element IDs: Y and Co partition the bag's attributes (Co ordered by the
// derivation sequence), FY the bag FDs verified not to contradict the
// closedness of Y, DC ⊆ Co the bag attributes already derived, FC the bag
// FDs used in the derivation.
type state struct {
	y, co, fy, dc, fc []int // y, fy, dc, fc sorted; co ordered
}

// interner hash-conses states to dense int32 IDs so the DP tables hash and
// compare machine integers instead of structured keys (the seed rendered
// every state to a string per transition — the dominant cost of the
// PRIMALITY hot path). Each state also gets a signature ID covering the
// (Y, Co, FC) part; two states are branch-compatible iff their signatures
// coincide, so the branch rule rejects incompatible pairs with a single
// integer comparison. Interned states are immutable: their slices must
// never be mutated after intern.
type interner struct {
	mu     sync.RWMutex
	ids    map[string]int32
	states []state
	sigs   []int32 // state ID → signature ID
	sigIDs map[string]int32
}

func newInterner() *interner {
	return &interner{ids: map[string]int32{}, sigIDs: map[string]int32{}}
}

// appendPart encodes one state component as uvarints shifted by one, with
// a zero byte terminating the part (element IDs are non-negative, so the
// shifted encoding never produces a zero byte inside a part).
func appendPart(buf []byte, part []int) []byte {
	for _, e := range part {
		buf = binary.AppendUvarint(buf, uint64(e)+1)
	}
	return append(buf, 0)
}

func (p *interner) intern(s state) int32 {
	buf := make([]byte, 0, 64)
	buf = appendPart(buf, s.y)
	buf = appendPart(buf, s.co)
	buf = appendPart(buf, s.fc)
	sigLen := len(buf) // the (Y, Co, FC) prefix is the branch signature
	buf = appendPart(buf, s.fy)
	buf = appendPart(buf, s.dc)
	key := string(buf)
	p.mu.RLock()
	id, ok := p.ids[key]
	p.mu.RUnlock()
	if ok {
		return id
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if id, ok := p.ids[key]; ok {
		return id
	}
	sigKey := key[:sigLen]
	sid, ok := p.sigIDs[sigKey]
	if !ok {
		sid = int32(len(p.sigIDs))
		p.sigIDs[sigKey] = sid
	}
	id = int32(len(p.states))
	p.states = append(p.states, s)
	p.sigs = append(p.sigs, sid)
	p.ids[key] = id
	return id
}

func (p *interner) get(id int32) state {
	p.mu.RLock()
	s := p.states[id]
	p.mu.RUnlock()
	return s
}

func (p *interner) sig(id int32) int32 {
	p.mu.RLock()
	s := p.sigs[id]
	p.mu.RUnlock()
	return s
}

func contains(xs []int, e int) bool {
	for _, x := range xs {
		if x == e {
			return true
		}
	}
	return false
}

func insertSorted(xs []int, e int) []int {
	out := make([]int, 0, len(xs)+1)
	placed := false
	for _, x := range xs {
		if !placed && e < x {
			out = append(out, e)
			placed = true
		}
		out = append(out, x)
	}
	if !placed {
		out = append(out, e)
	}
	return out
}

func removeVal(xs []int, e int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if x != e {
			out = append(out, x)
		}
	}
	return out
}

func pos(xs []int, e int) int {
	for i, x := range xs {
		if x == e {
			return i
		}
	}
	return -1
}

// consistent checks the ordering condition of the consistent predicate:
// every FD of fc has its rhs in co with all co-members of its lhs earlier.
func (c *ctx) consistent(fc []int, co []int) bool {
	for _, fe := range fc {
		fi := c.fdOf[fe]
		rp := pos(co, c.rhs[fi])
		if rp < 0 {
			return false
		}
		for _, b := range c.lhs[fi] {
			if bp := pos(co, b); bp >= 0 && bp >= rp {
				return false
			}
		}
	}
	return true
}

// witnessed reports whether FD fi has a left-hand-side attribute in co
// (the outside predicate's discharge condition restricted to the bag).
func witnessed(c *ctx, fi int, co []int) bool {
	for _, b := range c.lhs[fi] {
		if contains(co, b) {
			return true
		}
	}
	return false
}

// splitBag separates a bag into attribute and FD elements (each sorted,
// as bags are).
func (c *ctx) splitBag(bag []int) (attrs, fds []int) {
	for _, e := range bag {
		if e < len(c.isAttr) && c.isAttr[e] {
			attrs = append(attrs, e)
		} else {
			fds = append(fds, e)
		}
	}
	return attrs, fds
}

// leafStates enumerates the solve states of a leaf node (and of the root
// for the top-down pass): every partition of the bag attributes into
// Y/ordered Co, every consistent choice of used FDs FC, with FY and ΔC
// determined (the leaf rule of Figure 6).
func (c *ctx) leafStates(bag []int) []solver.Out[int32] {
	attrs, fds := c.splitBag(bag)
	var out []solver.Out[int32]
	subsets(attrs, func(y, rest []int) {
		permute(rest, func(co []int) {
			// FY is determined by Y and the bag: all FDs with rhs outside
			// Y witnessed by some lhs attribute in Co.
			var fy []int
			for _, fe := range fds {
				fi := c.fdOf[fe]
				if !contains(y, c.rhs[fi]) && witnessed(c, fi, co) {
					fy = append(fy, fe)
				}
			}
			// Candidate used FDs: rhs in Co.
			var candidates []int
			for _, fe := range fds {
				if contains(co, c.rhs[c.fdOf[fe]]) {
					candidates = append(candidates, fe)
				}
			}
			subsets(candidates, func(fc, _ []int) {
				if !c.consistent(fc, co) {
					return
				}
				var dc []int
				for _, fe := range fc {
					dc = insertDedupSorted(dc, c.rhs[c.fdOf[fe]])
				}
				st := state{
					y:  append([]int(nil), y...),
					co: append([]int(nil), co...),
					fy: append([]int(nil), fy...),
					dc: dc,
					fc: append([]int(nil), fc...),
				}
				out = append(out, solver.Out[int32]{State: c.pool.intern(st)})
			})
		})
	})
	return out
}

func insertDedupSorted(xs []int, e int) []int {
	if contains(xs, e) {
		return xs
	}
	return insertSorted(xs, e)
}

// subsets enumerates all subsets of xs, calling f with (subset, rest).
func subsets(xs []int, f func(in, out []int)) {
	n := len(xs)
	for mask := 0; mask < 1<<uint(n); mask++ {
		var in, out []int
		for i, x := range xs {
			if mask&(1<<uint(i)) != 0 {
				in = append(in, x)
			} else {
				out = append(out, x)
			}
		}
		f(in, out)
	}
}

// permute enumerates all orderings of xs.
func permute(xs []int, f func([]int)) {
	perm := append([]int(nil), xs...)
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			f(perm)
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if len(perm) == 0 {
		f(perm)
	}
}

// introduce implements the attribute/FD introduction rules of Figure 6.
func (c *ctx) introduce(bag []int, elem int, childID int32) []solver.Out[int32] {
	child := c.pool.get(childID)
	if c.isAttr[elem] {
		var out []solver.Out[int32]
		// Case Y: all other arguments unchanged.
		sy := child
		sy.y = insertSorted(child.y, elem)
		out = append(out, solver.Out[int32]{State: c.pool.intern(sy)})
		// Case Co: insert at every position; re-check order consistency
		// and discharge newly witnessed FDs.
		_, fds := c.splitBag(bag)
		for p := 0; p <= len(child.co); p++ {
			co := make([]int, 0, len(child.co)+1)
			co = append(co, child.co[:p]...)
			co = append(co, elem)
			co = append(co, child.co[p:]...)
			if !c.consistent(child.fc, co) {
				continue
			}
			fy := append([]int(nil), child.fy...)
			for _, fe := range fds {
				fi := c.fdOf[fe]
				if !contains(child.y, c.rhs[fi]) && contains(c.lhs[fi], elem) {
					fy = insertDedupSorted(fy, fe)
				}
			}
			sc := state{y: child.y, co: co, fy: fy, dc: child.dc, fc: child.fc}
			out = append(out, solver.Out[int32]{State: c.pool.intern(sc)})
		}
		return out
	}
	// FD introduction.
	fi, ok := c.fdOf[elem]
	if !ok {
		return nil
	}
	rhs := c.rhs[fi]
	if contains(child.y, rhs) {
		// Rule 1: rhs ∈ Y — unchanged.
		return []solver.Out[int32]{{State: childID}}
	}
	if !contains(child.co, rhs) {
		// The bag discipline (rhs present whenever the FD is) is violated;
		// prepareDecomposition prevents this.
		return nil
	}
	discharge := func() []int {
		if witnessed(c, fi, child.co) {
			return insertDedupSorted(append([]int(nil), child.fy...), elem)
		}
		return child.fy
	}
	var out []solver.Out[int32]
	// Rule 3: f not used in the derivation.
	s3 := state{y: child.y, co: child.co, fy: discharge(), dc: child.dc, fc: child.fc}
	out = append(out, solver.Out[int32]{State: c.pool.intern(s3)})
	// Rule 2: f used — rhs newly derived (disjoint union with ΔC) and the
	// ordering must be consistent.
	if !contains(child.dc, rhs) && c.consistent([]int{elem}, child.co) {
		s2 := state{
			y:  child.y,
			co: child.co,
			fy: discharge(),
			dc: insertSorted(child.dc, rhs),
			fc: insertSorted(child.fc, elem),
		}
		out = append(out, solver.Out[int32]{State: c.pool.intern(s2)})
	}
	return out
}

// forget implements the attribute/FD removal rules of Figure 6.
func (c *ctx) forget(elem int, childID int32) []solver.Out[int32] {
	child := c.pool.get(childID)
	if c.isAttr[elem] {
		if contains(child.y, elem) {
			s := state{y: removeVal(child.y, elem), co: child.co, fy: child.fy, dc: child.dc, fc: child.fc}
			return []solver.Out[int32]{{State: c.pool.intern(s)}}
		}
		// elem ∈ Co: its derivation must have been established.
		if !contains(child.dc, elem) {
			return nil
		}
		s := state{y: child.y, co: removeVal(child.co, elem), fy: child.fy, dc: removeVal(child.dc, elem), fc: child.fc}
		return []solver.Out[int32]{{State: c.pool.intern(s)}}
	}
	fi, ok := c.fdOf[elem]
	if !ok {
		return nil
	}
	if contains(child.y, c.rhs[fi]) {
		// Rule 1: rhs ∈ Y — f was never a threat.
		return []solver.Out[int32]{{State: childID}}
	}
	// Rules 2/3: f must have been verified (f ∈ FY) before leaving.
	if !contains(child.fy, elem) {
		return nil
	}
	s := state{y: child.y, co: child.co, fy: removeVal(child.fy, elem), dc: child.dc, fc: removeVal(child.fc, elem)}
	return []solver.Out[int32]{{State: c.pool.intern(s)}}
}

// branch implements the branch rule of Figure 6: identical Y, Co and FC,
// unions of FY and ΔC, and the unique condition (an attribute may be
// derived in both subtrees only via a shared bag FD). The signature check
// replaces the three slice comparisons of the equality precondition with
// one integer comparison.
func (c *ctx) branch(k1, k2 int32) []solver.Out[int32] {
	if c.pool.sig(k1) != c.pool.sig(k2) {
		return nil
	}
	s1, s2 := c.pool.get(k1), c.pool.get(k2)
	// unique(ΔC1, ΔC2, FC).
	inter := map[int]bool{}
	for _, e := range s1.dc {
		if contains(s2.dc, e) {
			inter[e] = true
		}
	}
	fromFC := map[int]bool{}
	for _, fe := range s1.fc {
		fromFC[c.rhs[c.fdOf[fe]]] = true
	}
	if len(inter) != len(fromFC) {
		return nil
	}
	for e := range inter {
		if !fromFC[e] {
			return nil
		}
	}
	fy := append([]int(nil), s1.fy...)
	for _, fe := range s2.fy {
		fy = insertDedupSorted(fy, fe)
	}
	dc := append([]int(nil), s1.dc...)
	for _, e := range s2.dc {
		dc = insertDedupSorted(dc, e)
	}
	s := state{y: s1.y, co: s1.co, fy: fy, dc: dc, fc: s1.fc}
	return []solver.Out[int32]{{State: c.pool.intern(s)}}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// accepting reports whether a state at a node whose envelope/subtree is
// the whole structure certifies primality of attribute element aElem (the
// "result" rule of Figure 6): a ∉ Y, every bag FD with rhs outside Y
// verified, and everything in Co except a derived.
func (c *ctx) accepting(bag []int, id int32, aElem int) bool {
	s := c.pool.get(id)
	if contains(s.y, aElem) || !contains(s.co, aElem) {
		return false
	}
	_, fds := c.splitBag(bag)
	var wantFY []int
	for _, fe := range fds {
		if !contains(s.y, c.rhs[c.fdOf[fe]]) {
			wantFY = append(wantFY, fe)
		}
	}
	if !equalInts(s.fy, wantFY) {
		return false
	}
	wantDC := append([]int(nil), s.co...)
	sort.Ints(wantDC)
	wantDC = removeVal(wantDC, aElem)
	return equalInts(s.dc, wantDC)
}

// prepareDecomposition pads every bag containing an FD element with the
// FD's right-hand-side attribute (the Section 5.2 requirement; in the
// worst case this doubles the width) and validates the result.
func (c *ctx) prepareDecomposition(d *tree.Decomposition) error {
	for i := range d.Nodes {
		bag := bitset.FromSlice(d.Nodes[i].Bag)
		changed := false
		for _, e := range d.Nodes[i].Bag {
			if fi, ok := c.fdOf[e]; ok && !bag.Has(c.rhs[fi]) {
				bag.Add(c.rhs[fi])
				changed = true
			}
		}
		if changed {
			d.Nodes[i].Bag = bag.Elems()
		}
	}
	return d.Validate(c.st)
}

// checkDiscipline verifies the bag discipline on a normalized
// decomposition: every bag containing an FD also contains its rhs.
func (c *ctx) checkDiscipline(d *tree.Decomposition) error {
	for i, n := range d.Nodes {
		bag := bitset.FromSlice(n.Bag)
		for _, e := range n.Bag {
			if fi, ok := c.fdOf[e]; ok && !bag.Has(c.rhs[fi]) {
				return fmt.Errorf("primality: node %d holds FD %s without its rhs %s", i, c.st.Name(e), c.st.Name(c.rhs[fi]))
			}
		}
	}
	return nil
}

package primality

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func TestKeyWitnessRunningExample(t *testing.T) {
	s := runningExample()
	in, err := NewInstance(s)
	if err != nil {
		t.Fatal(err)
	}
	// The keys are abd and acd; every prime attribute must get a witness
	// key containing it.
	for _, name := range []string{"a", "b", "c", "d"} {
		a, _ := s.Attr(name)
		key, ok, err := in.KeyWitness(a)
		if err != nil {
			t.Fatalf("KeyWitness(%s): %v", name, err)
		}
		if !ok {
			t.Fatalf("no witness for prime attribute %s", name)
		}
		ks := bitset.FromSlice(key)
		if !ks.Has(a) {
			t.Fatalf("witness key %v does not contain %s", key, name)
		}
		if !s.IsKey(ks) {
			t.Fatalf("witness %v for %s is not a key", key, name)
		}
	}
	// Non-prime attributes get no witness.
	for _, name := range []string{"e", "g"} {
		a, _ := s.Attr(name)
		_, ok, err := in.KeyWitness(a)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("witness produced for non-prime %s", name)
		}
	}
}

// Property: for every prime attribute of a random schema, KeyWitness
// returns a genuine key containing it; for non-primes it returns none.
func TestQuickKeyWitness(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchema(rng)
		in, err := NewInstance(s)
		if err != nil {
			return false
		}
		a := rng.Intn(s.NumAttrs())
		key, ok, err := in.KeyWitness(a)
		if err != nil {
			return false
		}
		prime, err := s.IsPrimeBruteForce(a)
		if err != nil {
			return false
		}
		if ok != prime {
			return false
		}
		if !ok {
			return true
		}
		ks := bitset.FromSlice(key)
		return ks.Has(a) && s.IsKey(ks)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(149))}); err != nil {
		t.Fatal(err)
	}
}

package primality

// This file implements the generalization the paper's conclusion points
// at: the relevance problem of propositional abduction over definite Horn
// theories, which "is basically the same as the problem of deciding
// primality in a subschema R' ⊆ R" (Section 7; worked out in full in the
// authors' AAAI'08 paper [20]).
//
// Setting: attributes are propositional atoms, FDs are definite Horn
// clauses, H ⊆ R are the hypotheses and M ⊆ R the manifestations. A set
// E ⊆ H is an explanation if M ⊆ clos(E); hypothesis a is RELEVANT if it
// belongs to some ⊆-minimal explanation. Because closure is monotone,
//
//	a relevant  ⇔  ∃ Y₀ ⊆ H\{a}:  M ⊆ clos(Y₀ ∪ {a})  ∧  M ⊄ clos(Y₀).
//
// Subschema primality is the special case H = M = R'; ordinary primality
// (Fig. 6) is H = M = R.
//
// The dynamic program extends the Figure 6 state: replacing Y₀ by the
// closed set Y = clos(Y₀) (which satisfies Y = clos(Y ∩ (H\{a}))), every
// bag attribute takes one of four roles —
//
//	generator   ∈ Y, member of Y₀ (must lie in H; a is excluded at the
//	            final check since a ∉ Y there)
//	y-derived   ∈ Y, derived from generators and earlier y-derived
//	            attributes (mirrored Co machinery inside Y)
//	co          ∉ Y, scheduled for derivation from Y ∪ {a} (the original
//	            Co machinery; a itself stays underived)
//	ignored     ∉ Y, never derived (allowed only outside M, and never
//	            usable on the left of a used FD)
//
// and every bag FD is unused, used for the Y-derivation (fcy/dcy), or
// used for the Co-derivation (fc/dc). The closedness machinery (FY) is
// unchanged. A bit (mOut) records that some manifestation lies outside Y,
// which is exactly M ⊄ clos(Y₀).

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitset"
	"repro/internal/schema"
	"repro/internal/solver"
	"repro/internal/tree"
)

// rstate is the relevance DP state; see the file comment for the roles.
type rstate struct {
	yGen []int // sorted
	yDer []int // ordered by the Y-derivation sequence
	dcy  []int // sorted subset of yDer already derived
	fcy  []int // sorted bag FDs used for the Y-derivation
	co   []int // ordered by the Co-derivation sequence
	ign  []int // sorted
	dc   []int // sorted subset of co already derived
	fc   []int // sorted bag FDs used for the Co-derivation
	fy   []int // sorted bag FDs verified against closedness of Y
	mOut bool
}

func (s rstate) encode() string {
	var b strings.Builder
	for i, part := range [][]int{s.yGen, s.yDer, s.dcy, s.fcy, s.co, s.ign, s.dc, s.fc, s.fy} {
		if i > 0 {
			b.WriteByte('|')
		}
		for j, e := range part {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(e))
		}
	}
	if s.mOut {
		b.WriteString("|1")
	} else {
		b.WriteString("|0")
	}
	return b.String()
}

func decodeR(key string) rstate {
	parts := strings.Split(key, "|")
	read := func(p string) []int {
		if p == "" {
			return nil
		}
		fields := strings.Split(p, ",")
		out := make([]int, len(fields))
		for i, f := range fields {
			out[i], _ = strconv.Atoi(f)
		}
		return out
	}
	return rstate{
		yGen: read(parts[0]), yDer: read(parts[1]), dcy: read(parts[2]), fcy: read(parts[3]),
		co: read(parts[4]), ign: read(parts[5]), dc: read(parts[6]), fc: read(parts[7]),
		fy: read(parts[8]), mOut: parts[9] == "1",
	}
}

// rctx extends ctx with the hypothesis and manifestation sets (element
// IDs).
type rctx struct {
	*ctx
	hyp *bitset.Set
	man *bitset.Set
}

func (c *rctx) inY(s rstate, e int) bool  { return contains(s.yGen, e) || contains(s.yDer, e) }
func (c *rctx) inCo(s rstate, e int) bool { return contains(s.co, e) || contains(s.ign, e) }

// consistentY checks the Y-derivation ordering: every FD of fcy has its
// rhs in yDer, all its bag-local lhs attributes in Y, and its yDer lhs
// attributes strictly earlier than its rhs.
func (c *rctx) consistentY(fcy, yGen, yDer []int) bool {
	for _, fe := range fcy {
		fi := c.fdOf[fe]
		rp := pos(yDer, c.rhs[fi])
		if rp < 0 {
			return false
		}
		for _, b := range c.lhs[fi] {
			if bp := pos(yDer, b); bp >= 0 && bp >= rp {
				return false
			}
		}
	}
	return true
}

// rLeafStates enumerates all relevance states of a bag.
func (c *rctx) rLeafStates(bag []int) []string {
	attrs, fds := c.splitBag(bag)
	var out []string
	// Assign each attribute one of the four roles.
	roles := make([]int, len(attrs)) // 0 generator, 1 y-derived, 2 co, 3 ignored
	var assign func(i int)
	assign = func(i int) {
		if i < len(attrs) {
			for r := 0; r < 4; r++ {
				e := attrs[i]
				if r == 0 && !c.hyp.Has(e) {
					continue // generators must be hypotheses
				}
				if r == 3 && c.man.Has(e) {
					continue // manifestations may not be ignored
				}
				roles[i] = r
				assign(i + 1)
			}
			return
		}
		var yGen, yDerSet, coSet, ign []int
		for j, e := range attrs {
			switch roles[j] {
			case 0:
				yGen = append(yGen, e)
			case 1:
				yDerSet = append(yDerSet, e)
			case 2:
				coSet = append(coSet, e)
			default:
				ign = append(ign, e)
			}
		}
		mOut := false
		for _, e := range coSet {
			if c.man.Has(e) {
				mOut = true
			}
		}
		permute(yDerSet, func(yDer []int) {
			yDerCopy := append([]int(nil), yDer...)
			permute(coSet, func(co []int) {
				coCopy := append([]int(nil), co...)
				c.enumerateFDs(bag, fds, yGen, yDerCopy, coCopy, ign, mOut, &out)
			})
		})
	}
	assign(0)
	return out
}

// enumerateFDs completes a leaf state by choosing the role of every bag
// FD and deriving FY, dcy and dc.
func (c *rctx) enumerateFDs(bag, fds, yGen, yDer, co, ign []int, mOut bool, out *[]string) {
	y := append(append([]int(nil), yGen...), yDer...)
	sort.Ints(y)
	// FY is determined: FDs with rhs outside Y witnessed by a bag
	// attribute outside Y.
	var fy []int
	for _, fe := range fds {
		fi := c.fdOf[fe]
		if contains(y, c.rhs[fi]) {
			continue
		}
		for _, b := range c.lhs[fi] {
			if contains(co, b) || contains(ign, b) {
				fy = append(fy, fe)
				break
			}
		}
	}
	// Role choice per FD: 0 unused, 1 used-for-Y, 2 used-for-Co.
	var candY, candCo []int
	for _, fe := range fds {
		fi := c.fdOf[fe]
		if contains(yDer, c.rhs[fi]) && c.lhsUsableForY(fi, yGen, yDer, co, ign) {
			candY = append(candY, fe)
		}
		if contains(co, c.rhs[fi]) {
			candCo = append(candCo, fe)
		}
	}
	subsets(candY, func(fcy, _ []int) {
		if !c.consistentY(fcy, yGen, yDer) {
			return
		}
		fcyCopy := append([]int(nil), fcy...)
		var dcy []int
		for _, fe := range fcyCopy {
			dcy = insertDedupSorted(dcy, c.rhs[c.fdOf[fe]])
		}
		subsets(candCo, func(fc, _ []int) {
			if !c.ctx.consistent(fc, co) {
				return
			}
			if !c.lhsAvoidsIgnored(fc, ign) {
				return
			}
			var dc []int
			for _, fe := range fc {
				dc = insertDedupSorted(dc, c.rhs[c.fdOf[fe]])
			}
			st := rstate{
				yGen: append([]int(nil), yGen...),
				yDer: append([]int(nil), yDer...),
				dcy:  dcy,
				fcy:  fcyCopy,
				co:   append([]int(nil), co...),
				ign:  append([]int(nil), ign...),
				dc:   dc,
				fc:   append([]int(nil), fc...),
				fy:   append([]int(nil), fy...),
				mOut: mOut,
			}
			*out = append(*out, st.encode())
		})
	})
}

// lhsUsableForY reports whether all bag-local lhs attributes of FD fi lie
// inside Y (a Y-derivation may only consume Y members).
func (c *rctx) lhsUsableForY(fi int, yGen, yDer, co, ign []int) bool {
	for _, b := range c.lhs[fi] {
		if contains(co, b) || contains(ign, b) {
			return false
		}
	}
	return true
}

// lhsAvoidsIgnored reports that no used-for-Co FD consumes an ignored
// attribute (ignored attributes are never derived).
func (c *rctx) lhsAvoidsIgnored(fc []int, ign []int) bool {
	for _, fe := range fc {
		for _, b := range c.lhs[c.fdOf[fe]] {
			if contains(ign, b) {
				return false
			}
		}
	}
	return true
}

// rIntroduce handles attribute and FD introduction.
func (c *rctx) rIntroduce(bag []int, elem int, childKey string) []string {
	child := decodeR(childKey)
	if c.isAttr[elem] {
		return c.rIntroduceAttr(bag, elem, child)
	}
	return c.rIntroduceFD(elem, child)
}

func (c *rctx) rIntroduceAttr(bag []int, elem int, child rstate) []string {
	_, fds := c.splitBag(bag)
	y := append(append([]int(nil), child.yGen...), child.yDer...)
	sort.Ints(y)
	var out []string

	// dischargeFY recomputes FY for a new non-Y attribute elem.
	dischargeFY := func(fy []int) []int {
		res := append([]int(nil), fy...)
		for _, fe := range fds {
			fi := c.fdOf[fe]
			if !contains(y, c.rhs[fi]) && contains(c.lhs[fi], elem) {
				res = insertDedupSorted(res, fe)
			}
		}
		return res
	}
	// violatesYUse reports that a used-for-Y FD would consume the new
	// non-Y attribute.
	violatesYUse := func() bool {
		for _, fe := range child.fcy {
			if contains(c.lhs[c.fdOf[fe]], elem) {
				return true
			}
		}
		return false
	}
	// violatesCoUse reports that a used-for-Co FD would consume the new
	// attribute without ordering (for ignored attributes).
	violatesCoUse := func() bool {
		for _, fe := range child.fc {
			if contains(c.lhs[c.fdOf[fe]], elem) {
				return true
			}
		}
		return false
	}

	// Role: generator.
	if c.hyp.Has(elem) {
		s := child
		s.yGen = insertSorted(child.yGen, elem)
		out = append(out, s.encode())
	}
	// Role: y-derived — insert at every order position.
	for p := 0; p <= len(child.yDer); p++ {
		yDer := make([]int, 0, len(child.yDer)+1)
		yDer = append(yDer, child.yDer[:p]...)
		yDer = append(yDer, elem)
		yDer = append(yDer, child.yDer[p:]...)
		if !c.consistentY(child.fcy, child.yGen, yDer) {
			continue
		}
		s := child
		s.yDer = yDer
		out = append(out, s.encode())
	}
	// Role: co — insert at every order position.
	if !violatesYUse() {
		for p := 0; p <= len(child.co); p++ {
			co := make([]int, 0, len(child.co)+1)
			co = append(co, child.co[:p]...)
			co = append(co, elem)
			co = append(co, child.co[p:]...)
			if !c.ctx.consistent(child.fc, co) {
				continue
			}
			s := child
			s.co = co
			s.fy = dischargeFY(child.fy)
			s.mOut = child.mOut || c.man.Has(elem)
			out = append(out, s.encode())
		}
	}
	// Role: ignored.
	if !c.man.Has(elem) && !violatesYUse() && !violatesCoUse() {
		s := child
		s.ign = insertSorted(child.ign, elem)
		s.fy = dischargeFY(child.fy)
		out = append(out, s.encode())
	}
	return out
}

func (c *rctx) rIntroduceFD(elem int, child rstate) []string {
	fi, ok := c.fdOf[elem]
	if !ok {
		return nil
	}
	rhs := c.rhs[fi]
	var out []string
	switch {
	case contains(child.yGen, rhs) || contains(child.yDer, rhs):
		// Unused.
		out = append(out, child.encode())
		// Used for the Y-derivation.
		if contains(child.yDer, rhs) && !contains(child.dcy, rhs) &&
			c.lhsInY(fi, child) && c.consistentY([]int{elem}, child.yGen, child.yDer) {
			s := child
			s.fcy = insertSorted(child.fcy, elem)
			s.dcy = insertSorted(child.dcy, rhs)
			out = append(out, s.encode())
		}
	case contains(child.co, rhs) || contains(child.ign, rhs):
		discharge := func() []int {
			for _, b := range c.lhs[fi] {
				if c.inCo(child, b) {
					return insertDedupSorted(append([]int(nil), child.fy...), elem)
				}
			}
			return child.fy
		}
		// Unused.
		s3 := child
		s3.fy = discharge()
		out = append(out, s3.encode())
		// Used for the Co-derivation (only onto scheduled attributes).
		if contains(child.co, rhs) && !contains(child.dc, rhs) &&
			c.ctx.consistent([]int{elem}, child.co) && c.lhsAvoidsIgnored([]int{elem}, child.ign) {
			s2 := child
			s2.fy = discharge()
			s2.fc = insertSorted(child.fc, elem)
			s2.dc = insertSorted(child.dc, rhs)
			out = append(out, s2.encode())
		}
	default:
		// The bag discipline guarantees rhs is present; unreachable.
		return nil
	}
	return out
}

// lhsInY reports that no bag-external knowledge is needed: all bag-local
// lhs attributes of fi are in Y.
func (c *rctx) lhsInY(fi int, s rstate) bool {
	for _, b := range c.lhs[fi] {
		if c.inCo(s, b) {
			return false
		}
	}
	return true
}

// rForget handles attribute and FD removal.
func (c *rctx) rForget(elem int, childKey string) []string {
	child := decodeR(childKey)
	if c.isAttr[elem] {
		switch {
		case contains(child.yGen, elem):
			s := child
			s.yGen = removeVal(child.yGen, elem)
			return []string{s.encode()}
		case contains(child.yDer, elem):
			if !contains(child.dcy, elem) {
				return nil
			}
			s := child
			s.yDer = removeVal(child.yDer, elem)
			s.dcy = removeVal(child.dcy, elem)
			return []string{s.encode()}
		case contains(child.co, elem):
			if !contains(child.dc, elem) {
				return nil
			}
			s := child
			s.co = removeVal(child.co, elem)
			s.dc = removeVal(child.dc, elem)
			return []string{s.encode()}
		default:
			s := child
			s.ign = removeVal(child.ign, elem)
			return []string{s.encode()}
		}
	}
	fi, ok := c.fdOf[elem]
	if !ok {
		return nil
	}
	if c.inY(child, c.rhs[fi]) {
		s := child
		s.fcy = removeVal(child.fcy, elem)
		return []string{s.encode()}
	}
	if !contains(child.fy, elem) {
		return nil // closedness of Y never verified for this FD
	}
	s := child
	s.fy = removeVal(child.fy, elem)
	s.fc = removeVal(child.fc, elem)
	return []string{s.encode()}
}

// rBranch merges two child states with identical partitions and used-FD
// sets (the Figure 6 branch rule plus its Y-side mirror).
func (c *rctx) rBranch(k1, k2 string) []string {
	s1, s2 := decodeR(k1), decodeR(k2)
	if !equalInts(s1.yGen, s2.yGen) || !equalInts(s1.yDer, s2.yDer) ||
		!equalInts(s1.co, s2.co) || !equalInts(s1.ign, s2.ign) ||
		!equalInts(s1.fcy, s2.fcy) || !equalInts(s1.fc, s2.fc) {
		return nil
	}
	if !uniqueMerge(s1.dc, s2.dc, c.rhsSet(s1.fc)) || !uniqueMerge(s1.dcy, s2.dcy, c.rhsSet(s1.fcy)) {
		return nil
	}
	s := s1
	s.fy = unionSorted(s1.fy, s2.fy)
	s.dc = unionSorted(s1.dc, s2.dc)
	s.dcy = unionSorted(s1.dcy, s2.dcy)
	s.mOut = s1.mOut || s2.mOut
	return []string{s.encode()}
}

func (c *rctx) rhsSet(fes []int) map[int]bool {
	out := map[int]bool{}
	for _, fe := range fes {
		out[c.rhs[c.fdOf[fe]]] = true
	}
	return out
}

// uniqueMerge checks that the intersection of the two derived sets is
// exactly the set derived by shared bag FDs.
func uniqueMerge(dc1, dc2 []int, fromFC map[int]bool) bool {
	inter := map[int]bool{}
	for _, e := range dc1 {
		if contains(dc2, e) {
			inter[e] = true
		}
	}
	if len(inter) != len(fromFC) {
		return false
	}
	for e := range inter {
		if !fromFC[e] {
			return false
		}
	}
	return true
}

func unionSorted(a, b []int) []int {
	out := append([]int(nil), a...)
	for _, e := range b {
		out = insertDedupSorted(out, e)
	}
	return out
}

// rAccepting checks the final condition at a node whose subtree/envelope
// is the entire structure.
func (c *rctx) rAccepting(bag []int, key string, aElem int) bool {
	s := decodeR(key)
	if !c.hyp.Has(aElem) {
		return false
	}
	// a is the underived seed of the Co order.
	if !contains(s.co, aElem) || contains(s.dc, aElem) {
		return false
	}
	// Everything scheduled is derived (except a); everything in yDer too.
	wantDC := append([]int(nil), s.co...)
	sort.Ints(wantDC)
	wantDC = removeVal(wantDC, aElem)
	if !equalInts(s.dc, wantDC) {
		return false
	}
	wantDCY := append([]int(nil), s.yDer...)
	sort.Ints(wantDCY)
	if !equalInts(s.dcy, wantDCY) {
		return false
	}
	// Closedness fully verified.
	y := append(append([]int(nil), s.yGen...), s.yDer...)
	sort.Ints(y)
	_, fds := c.splitBag(bag)
	var wantFY []int
	for _, fe := range fds {
		if !contains(y, c.rhs[c.fdOf[fe]]) {
			wantFY = append(wantFY, fe)
		}
	}
	if !equalInts(s.fy, wantFY) {
		return false
	}
	// Some manifestation lies outside Y (M ⊄ clos(Y₀)).
	return s.mOut
}

// DecideRelevant reports whether hypothesis a (a schema attribute index)
// belongs to some minimal explanation of the manifestations man from the
// hypotheses hyp (attribute-index bit sets).
func (in *Instance) DecideRelevant(hyp, man *bitset.Set, a int) (bool, error) {
	c := &rctx{ctx: in.ctx, hyp: attrsToElems(in.ctx, hyp), man: attrsToElems(in.ctx, man)}
	if a < 0 || a >= c.s.NumAttrs() {
		return false, fmt.Errorf("primality: attribute %d out of range", a)
	}
	if !hyp.Has(a) {
		return false, nil
	}
	aElem := c.attElem[a]
	d := in.raw.Clone()
	node := d.NodeWithElem(aElem)
	if node < 0 {
		return false, fmt.Errorf("primality: attribute %s not in any bag", c.s.AttrName(a))
	}
	d.ReRoot(node)
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
	if err != nil {
		return false, err
	}
	if err := c.checkDiscipline(nice); err != nil {
		return false, err
	}
	return solver.Decide(context.Background(), nice, relevance{c: c, aElem: aElem})
}

// EnumerateRelevant returns all relevant hypotheses via the Section 5.3
// two-pass scheme (bottom-up solve plus top-down solve↓, reading each
// hypothesis off a leaf whose envelope is the whole tree).
func (in *Instance) EnumerateRelevant(hyp, man *bitset.Set) (*bitset.Set, error) {
	c := &rctx{ctx: in.ctx, hyp: attrsToElems(in.ctx, hyp), man: attrsToElems(in.ctx, man)}
	attrElems := bitset.New(c.st.Size())
	for _, e := range c.attElem {
		attrElems.Add(e)
	}
	nice, err := tree.NormalizeNice(in.raw, tree.NiceOptions{LeafElems: attrElems, BranchGuard: true})
	if err != nil {
		return nil, err
	}
	if err := c.checkDiscipline(nice); err != nil {
		return nil, err
	}
	prob := relevance{c: c, aElem: -1}
	up, err := solver.Up(context.Background(), nice, prob, solver.Decision{})
	if err != nil {
		return nil, err
	}
	down, err := solver.Down(context.Background(), nice, prob, solver.Decision{}, up)
	if err != nil {
		return nil, err
	}
	leafOf := map[int]int{}
	for _, l := range nice.Leaves() {
		for _, e := range nice.Nodes[l].Bag {
			if _, ok := leafOf[e]; !ok {
				leafOf[e] = l
			}
		}
	}
	relevant := bitset.New(c.s.NumAttrs())
	for a := 0; a < c.s.NumAttrs(); a++ {
		if !hyp.Has(a) {
			continue
		}
		leaf, ok := leafOf[c.attElem[a]]
		if !ok {
			return nil, fmt.Errorf("primality: attribute %s missing from every leaf bag", c.s.AttrName(a))
		}
		bag := sortedBag(nice.Nodes[leaf].Bag)
		for _, key := range down[leaf].Order {
			if c.rAccepting(bag, key, c.attElem[a]) {
				relevant.Add(a)
				break
			}
		}
	}
	return relevant, nil
}

func attrsToElems(c *ctx, attrs *bitset.Set) *bitset.Set {
	out := bitset.New(c.st.Size())
	attrs.ForEach(func(a int) bool {
		if a < len(c.attElem) {
			out.Add(c.attElem[a])
		}
		return true
	})
	return out
}

// RelevantBruteForce is the exponential reference oracle: a belongs to a
// minimal explanation iff some Y₀ ⊆ H\{a} has M ⊆ clos(Y₀∪{a}) and
// M ⊄ clos(Y₀). Beyond 24 attributes it returns schema.ErrTooLarge.
func RelevantBruteForce(s *schema.Schema, hyp, man *bitset.Set, a int) (bool, error) {
	if !hyp.Has(a) {
		return false, nil
	}
	n := s.NumAttrs()
	if n > 24 {
		return false, fmt.Errorf("%w: brute-force relevance limited to 24 attributes, got %d", schema.ErrTooLarge, n)
	}
	candidates := hyp.Clone()
	candidates.Remove(a)
	elems := candidates.Elems()
	for mask := uint64(0); mask < 1<<uint(len(elems)); mask++ {
		y0 := bitset.New(n)
		for i, e := range elems {
			if mask&(1<<uint(i)) != 0 {
				y0.Add(e)
			}
		}
		if man.SubsetOf(s.Closure(y0)) {
			continue
		}
		withA := y0.Clone()
		withA.Add(a)
		if man.SubsetOf(s.Closure(withA)) {
			return true, nil
		}
	}
	return false, nil
}

package primality

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/schema"
)

func allAttrs(s *schema.Schema) *bitset.Set {
	out := bitset.New(s.NumAttrs())
	for i := 0; i < s.NumAttrs(); i++ {
		out.Add(i)
	}
	return out
}

func attrSet(t *testing.T, s *schema.Schema, names ...string) *bitset.Set {
	t.Helper()
	out := bitset.New(s.NumAttrs())
	for _, n := range names {
		i, ok := s.Attr(n)
		if !ok {
			t.Fatalf("attribute %s missing", n)
		}
		out.Add(i)
	}
	return out
}

func TestRelevanceSubsumesPrimality(t *testing.T) {
	// With H = M = R, relevance is exactly primality (Section 7).
	s := runningExample()
	in, err := NewInstance(s)
	if err != nil {
		t.Fatal(err)
	}
	all := allAttrs(s)
	for a := 0; a < s.NumAttrs(); a++ {
		viaRel, err := in.DecideRelevant(all, all, a)
		if err != nil {
			t.Fatal(err)
		}
		viaPrim, err := in.Decide(a)
		if err != nil {
			t.Fatal(err)
		}
		if viaRel != viaPrim {
			t.Errorf("relevant(%s) = %v but prime(%s) = %v", s.AttrName(a), viaRel, s.AttrName(a), viaPrim)
		}
	}
}

func TestSubschemaPrimality(t *testing.T) {
	// Schema a→b, b→c. In the full schema the only key is {a}. In the
	// subschema R' = {b, c} (H = M = R'), b alone explains everything:
	// b is relevant, c is not.
	s := schema.MustParse("a -> b\nb -> c")
	in, err := NewInstance(s)
	if err != nil {
		t.Fatal(err)
	}
	sub := attrSet(t, s, "b", "c")
	b, _ := s.Attr("b")
	cIdx, _ := s.Attr("c")
	aIdx, _ := s.Attr("a")
	got, err := in.DecideRelevant(sub, sub, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("b should be prime in subschema {b,c}")
	}
	got, err = in.DecideRelevant(sub, sub, cIdx)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("c should not be prime in subschema {b,c}")
	}
	// Hypotheses outside H are never relevant.
	got, err = in.DecideRelevant(sub, sub, aIdx)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("a is outside the subschema")
	}
}

func TestAbductionScenario(t *testing.T) {
	// Definite Horn theory: cold → cough, flu → cough, flu → fever.
	// Hypotheses H = {cold, flu}; manifestation M = {cough}. Minimal
	// explanations: {cold} and {flu} — both hypotheses relevant. With
	// M = {cough, fever}, only {flu} explains — cold is irrelevant.
	s := schema.MustParse("cold -> cough\nflu -> cough\nflu -> fever")
	in, err := NewInstance(s)
	if err != nil {
		t.Fatal(err)
	}
	hyp := attrSet(t, s, "cold", "flu")
	cold, _ := s.Attr("cold")
	flu, _ := s.Attr("flu")

	man := attrSet(t, s, "cough")
	for _, a := range []int{cold, flu} {
		got, err := in.DecideRelevant(hyp, man, a)
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Errorf("hypothesis %s should be relevant for {cough}", s.AttrName(a))
		}
	}

	man2 := attrSet(t, s, "cough", "fever")
	gotCold, err := in.DecideRelevant(hyp, man2, cold)
	if err != nil {
		t.Fatal(err)
	}
	if gotCold {
		t.Error("cold cannot explain fever and {cold,flu} is not minimal")
	}
	gotFlu, err := in.DecideRelevant(hyp, man2, flu)
	if err != nil {
		t.Fatal(err)
	}
	if !gotFlu {
		t.Error("flu should be relevant for {cough, fever}")
	}

	// Empty manifestations: the empty explanation is minimal, nothing is
	// relevant.
	empty := bitset.New(s.NumAttrs())
	got, err := in.DecideRelevant(hyp, empty, flu)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("nothing is relevant for an empty manifestation set")
	}
}

func TestEnumerateRelevant(t *testing.T) {
	s := schema.MustParse("cold -> cough\nflu -> cough\nflu -> fever")
	in, err := NewInstance(s)
	if err != nil {
		t.Fatal(err)
	}
	hyp := attrSet(t, s, "cold", "flu")
	man := attrSet(t, s, "cough", "fever")
	got, err := in.EnumerateRelevant(hyp, man)
	if err != nil {
		t.Fatal(err)
	}
	want := attrSet(t, s, "flu")
	if !got.Equal(want) {
		t.Fatalf("EnumerateRelevant = %v, want %v", got.Elems(), want.Elems())
	}
}

// Property: the DP agrees with the brute-force oracle on random schemas
// and random hypothesis/manifestation sets.
func TestQuickRelevanceAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchema(rng)
		n := s.NumAttrs()
		hyp := bitset.New(n)
		man := bitset.New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				hyp.Add(i)
			}
			if rng.Intn(3) == 0 {
				man.Add(i)
			}
		}
		in, err := NewInstance(s)
		if err != nil {
			return false
		}
		a := rng.Intn(n)
		got, err := in.DecideRelevant(hyp, man, a)
		if err != nil {
			return false
		}
		want, err := RelevantBruteForce(s, hyp, man, a)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(127))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the two-pass enumeration agrees with per-attribute decisions.
func TestQuickEnumerateRelevantAgreement(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchema(rng)
		n := s.NumAttrs()
		hyp := bitset.New(n)
		man := bitset.New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				hyp.Add(i)
			}
			if rng.Intn(2) == 0 {
				man.Add(i)
			}
		}
		in, err := NewInstance(s)
		if err != nil {
			return false
		}
		enum, err := in.EnumerateRelevant(hyp, man)
		if err != nil {
			return false
		}
		for a := 0; a < n; a++ {
			dec, err := in.DecideRelevant(hyp, man, a)
			if err != nil {
				return false
			}
			if dec != enum.Has(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(131))}); err != nil {
		t.Fatal(err)
	}
}

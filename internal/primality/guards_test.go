package primality

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/bitset"
	"repro/internal/schema"
)

func TestRelevantBruteForceGuard(t *testing.T) {
	src := "attrs"
	for i := 0; i < 25; i++ {
		src += fmt.Sprintf(" a%d", i)
	}
	s, err := schema.Parse(src + "\n")
	if err != nil {
		t.Fatal(err)
	}
	hyp := bitset.New(25)
	hyp.Add(0)
	man := bitset.New(25)
	if _, err := RelevantBruteForce(s, hyp, man, 0); !errors.Is(err, schema.ErrTooLarge) {
		t.Fatalf("err = %v, want schema.ErrTooLarge", err)
	}
	// a not in hyp short-circuits before the size guard.
	if got, err := RelevantBruteForce(s, bitset.New(25), man, 0); err != nil || got {
		t.Fatalf("a ∉ H: got %v, %v; want false, nil", got, err)
	}
}

package primality

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/solver"
	"repro/internal/tree"
)

// KeyWitness returns a key (minimal superkey) containing attribute a, or
// ok=false if a is not prime. It runs the Figure 6 decision program with
// provenance, reconstructs the closed witness set Y from the accepting
// derivation (each attribute's Y/Co role is read off the state at its
// introduction), and minimizes Y ∪ {a} down to a key — the witness
// extension that makes the decision procedure constructive.
func (in *Instance) KeyWitness(a int) ([]int, bool, error) {
	c := in.ctx
	if a < 0 || a >= c.s.NumAttrs() {
		return nil, false, fmt.Errorf("primality: attribute %d out of range", a)
	}
	aElem := c.attElem[a]
	d := in.raw.Clone()
	node := d.NodeWithElem(aElem)
	if node < 0 {
		return nil, false, fmt.Errorf("primality: attribute %s not in any bag", c.s.AttrName(a))
	}
	d.ReRoot(node)
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
	if err != nil {
		return nil, false, err
	}
	if err := c.checkDiscipline(nice); err != nil {
		return nil, false, err
	}
	der, err := solver.Witness(context.Background(), nice, figure6{c: c, aElem: aElem})
	if err != nil {
		return nil, false, err
	}
	if der == nil {
		return nil, false, nil
	}

	// Walk the provenance and collect every element's Y-membership from
	// the states along the derivation (an element's role is constant
	// across its occurrence subtree, so any state containing it decides).
	inY := bitset.New(c.st.Size())
	err = der.Walk(func(_ int, key int32) error {
		st := c.pool.get(key)
		for _, e := range st.y {
			inY.Add(e)
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}

	// Y ∪ {a} is a superkey with a outside the closed set Y; minimize it
	// to a key. a itself can never be dropped (Y alone is not a superkey).
	candidate := bitset.New(c.s.NumAttrs())
	inY.ForEach(func(e int) bool {
		if e < len(c.isAttr) && c.isAttr[e] {
			// Map the element back to its attribute index.
			for ai, ae := range c.attElem {
				if ae == e {
					candidate.Add(ai)
					break
				}
			}
		}
		return true
	})
	candidate.Add(a)
	if !c.s.IsSuperkey(candidate) {
		return nil, false, fmt.Errorf("primality: internal error: witness set is not a superkey")
	}
	for changed := true; changed; {
		changed = false
		for _, b := range candidate.Elems() {
			if b == a {
				continue
			}
			smaller := candidate.Clone()
			smaller.Remove(b)
			if c.s.IsSuperkey(smaller) {
				candidate = smaller
				changed = true
			}
		}
	}
	key := candidate.Elems()
	sort.Ints(key)
	return key, true, nil
}

package primality

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dp"
	"repro/internal/tree"
)

// KeyWitness returns a key (minimal superkey) containing attribute a, or
// ok=false if a is not prime. It runs the Figure 6 decision program with
// provenance, reconstructs the closed witness set Y from the accepting
// derivation (each attribute's Y/Co role is read off the state at its
// introduction), and minimizes Y ∪ {a} down to a key — the witness
// extension that makes the decision procedure constructive.
func (in *Instance) KeyWitness(a int) ([]int, bool, error) {
	c := in.ctx
	if a < 0 || a >= c.s.NumAttrs() {
		return nil, false, fmt.Errorf("primality: attribute %d out of range", a)
	}
	aElem := c.attElem[a]
	d := in.raw.Clone()
	node := d.NodeWithElem(aElem)
	if node < 0 {
		return nil, false, fmt.Errorf("primality: attribute %s not in any bag", c.s.AttrName(a))
	}
	d.ReRoot(node)
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
	if err != nil {
		return nil, false, err
	}
	if err := c.checkDiscipline(nice); err != nil {
		return nil, false, err
	}
	tables, err := dp.RunUp(nice, c.handlers())
	if err != nil {
		return nil, false, err
	}
	rootBag := sortedBag(nice.Nodes[nice.Root].Bag)
	var accepting int32
	found := false
	for _, key := range tables[nice.Root].Order {
		if c.accepting(rootBag, key, aElem) {
			accepting = key
			found = true
			break
		}
	}
	if !found {
		return nil, false, nil
	}

	// Walk the provenance and collect every element's Y-membership from
	// the states along the derivation (an element's role is constant
	// across its occurrence subtree, so any state containing it decides).
	inY := bitset.New(c.st.Size())
	var walk func(v int, key int32)
	walk = func(v int, key int32) {
		st := c.pool.get(key)
		for _, e := range st.y {
			inY.Add(e)
		}
		prov := tables[v].Prov[key]
		n := nice.Nodes[v]
		if prov.First != nil && len(n.Children) >= 1 {
			walk(n.Children[0], *prov.First)
		}
		if prov.Second != nil && len(n.Children) == 2 {
			walk(n.Children[1], *prov.Second)
		}
	}
	walk(nice.Root, accepting)

	// Y ∪ {a} is a superkey with a outside the closed set Y; minimize it
	// to a key. a itself can never be dropped (Y alone is not a superkey).
	candidate := bitset.New(c.s.NumAttrs())
	inY.ForEach(func(e int) bool {
		if e < len(c.isAttr) && c.isAttr[e] {
			// Map the element back to its attribute index.
			for ai, ae := range c.attElem {
				if ae == e {
					candidate.Add(ai)
					break
				}
			}
		}
		return true
	})
	candidate.Add(a)
	if !c.s.IsSuperkey(candidate) {
		return nil, false, fmt.Errorf("primality: internal error: witness set is not a superkey")
	}
	for changed := true; changed; {
		changed = false
		for _, b := range candidate.Elems() {
			if b == a {
				continue
			}
			smaller := candidate.Clone()
			smaller.Remove(b)
			if c.s.IsSuperkey(smaller) {
				candidate = smaller
				changed = true
			}
		}
	}
	key := candidate.Elems()
	sort.Ints(key)
	return key, true, nil
}

package primality

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/decompose"
	"repro/internal/horn"
	"repro/internal/schema"
	"repro/internal/solver"
	"repro/internal/tree"
)

// Instance bundles a schema with its τ-structure and a tree decomposition
// ready for the PRIMALITY dynamic programs.
type Instance struct {
	ctx  *ctx
	raw  *tree.Decomposition
	opts tree.NiceOptions
}

// NewInstance builds an instance, computing a tree decomposition of the
// schema's τ-structure with the min-fill heuristic.
func NewInstance(s *schema.Schema) (*Instance, error) {
	return NewInstanceCtx(context.Background(), s)
}

// NewInstanceCtx is NewInstance with cancellation support: the
// decomposition stage polls ctx and context errors come back wrapped in
// a *stage.Error (see decompose.OrderCtx).
func NewInstanceCtx(ctx context.Context, s *schema.Schema) (*Instance, error) {
	c := newCtx(s)
	d, err := decompose.StructureCtx(ctx, c.st, decompose.MinFill)
	if err != nil {
		return nil, err
	}
	return newInstanceWith(c, d)
}

// NewInstanceWithDecomposition uses a caller-provided raw decomposition of
// the schema's τ-structure (as produced by schema.Schema.ToStructure).
func NewInstanceWithDecomposition(s *schema.Schema, d *tree.Decomposition) (*Instance, error) {
	return newInstanceWith(newCtx(s), d.Clone())
}

func newInstanceWith(c *ctx, d *tree.Decomposition) (*Instance, error) {
	if err := c.prepareDecomposition(d); err != nil {
		return nil, err
	}
	return &Instance{ctx: c, raw: d}, nil
}

// Width returns the width of the (prepared) decomposition.
func (in *Instance) Width() int { return in.raw.Width() }

// Decide reports whether attribute a (by schema index) is prime, by the
// bottom-up Figure 6 program on a decomposition re-rooted at a bag
// containing a.
func (in *Instance) Decide(a int) (bool, error) {
	return in.DecideCtx(context.Background(), a)
}

// DecideCtx is Decide with cancellation support: normalization and the
// DP run poll ctx (see dp.Schedule for the cancellation contract).
func (in *Instance) DecideCtx(cx context.Context, a int) (bool, error) {
	c := in.ctx
	if a < 0 || a >= c.s.NumAttrs() {
		return false, fmt.Errorf("primality: attribute %d out of range", a)
	}
	aElem := c.attElem[a]
	d := in.raw.Clone()
	node := d.NodeWithElem(aElem)
	if node < 0 {
		return false, fmt.Errorf("primality: attribute %s not in any bag", c.s.AttrName(a))
	}
	d.ReRoot(node)
	nice, err := tree.NormalizeNiceCtx(cx, d, tree.NiceOptions{})
	if err != nil {
		return false, err
	}
	if err := c.checkDiscipline(nice); err != nil {
		return false, err
	}
	return solver.Decide(cx, nice, figure6{c: c, aElem: aElem})
}

// Enumerate computes the set of prime attributes by the linear-time
// algorithm of Section 5.3: one bottom-up pass (solve) and one top-down
// pass (solve↓) over an enumeration-form decomposition in which every
// attribute occurs in some leaf bag; primality of a is then read off any
// leaf containing a, since the envelope of a leaf is the entire tree.
func (in *Instance) Enumerate() (*bitset.Set, error) {
	return in.EnumerateCtx(context.Background())
}

// EnumerateCtx is Enumerate with cancellation support: normalization
// and both DP passes poll ctx (see dp.Schedule).
func (in *Instance) EnumerateCtx(cx context.Context) (*bitset.Set, error) {
	c := in.ctx
	attrElems := bitset.New(c.st.Size())
	for _, e := range c.attElem {
		attrElems.Add(e)
	}
	nice, err := tree.NormalizeNiceCtx(cx, in.raw, tree.NiceOptions{LeafElems: attrElems, BranchGuard: true})
	if err != nil {
		return nil, err
	}
	if err := tree.CheckEnumerable(nice, attrElems); err != nil {
		return nil, err
	}
	if err := c.checkDiscipline(nice); err != nil {
		return nil, err
	}
	prob := figure6{c: c, aElem: -1}
	up, err := solver.Up(cx, nice, prob, solver.Decision{})
	if err != nil {
		return nil, err
	}
	down, err := solver.Down(cx, nice, prob, solver.Decision{}, up)
	if err != nil {
		return nil, err
	}
	// Index: element → one leaf containing it.
	leafOf := map[int]int{}
	for _, l := range nice.Leaves() {
		for _, e := range nice.Nodes[l].Bag {
			if _, ok := leafOf[e]; !ok {
				leafOf[e] = l
			}
		}
	}
	primes := bitset.New(c.s.NumAttrs())
	for a := 0; a < c.s.NumAttrs(); a++ {
		leaf, ok := leafOf[c.attElem[a]]
		if !ok {
			return nil, fmt.Errorf("primality: attribute %s missing from every leaf bag", c.s.AttrName(a))
		}
		bag := sortedBag(nice.Nodes[leaf].Bag)
		for _, key := range down[leaf].Order {
			if c.accepting(bag, key, c.attElem[a]) {
				primes.Add(a)
				break
			}
		}
	}
	return primes, nil
}

// EnumerateNaive computes the prime attributes by running the decision
// program once per attribute (the "naive first attempt" of Section 5.3
// with quadratic data complexity; the baseline of experiment E4).
func (in *Instance) EnumerateNaive() (*bitset.Set, error) {
	primes := bitset.New(in.ctx.s.NumAttrs())
	for a := 0; a < in.ctx.s.NumAttrs(); a++ {
		ok, err := in.Decide(a)
		if err != nil {
			return nil, err
		}
		if ok {
			primes.Add(a)
		}
	}
	return primes, nil
}

func sortedBag(bag []int) []int {
	out := append([]int(nil), bag...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// GroundDecide decides primality of attribute a by full grounding: every
// syntactically possible solve fact at every node becomes a propositional
// variable and every Figure 6 rule instance a Horn clause, evaluated by
// linear-time unit resolution. This is the architecture of the paper's
// prototype before its "lazy grounding" optimization (Section 6,
// optimizations (1)–(2)) and serves as the baseline of experiment E7.
func (in *Instance) GroundDecide(a int) (bool, error) {
	c := in.ctx
	if a < 0 || a >= c.s.NumAttrs() {
		return false, fmt.Errorf("primality: attribute %d out of range", a)
	}
	aElem := c.attElem[a]
	d := in.raw.Clone()
	node := d.NodeWithElem(aElem)
	if node < 0 {
		return false, fmt.Errorf("primality: attribute %s not in any bag", c.s.AttrName(a))
	}
	d.ReRoot(node)
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
	if err != nil {
		return false, err
	}
	if err := c.checkDiscipline(nice); err != nil {
		return false, err
	}
	prog, successVar, err := c.ground(nice, aElem)
	if err != nil {
		return false, err
	}
	truth := prog.Solve()
	return successVar >= 0 && truth[successVar], nil
}

// ground builds the full propositional program: variables are (node,
// state) pairs over all enumerable states, clauses are rule instances.
func (c *ctx) ground(nice *tree.Decomposition, aElem int) (*horn.Program, int, error) {
	prog := &horn.Program{}
	varID := map[uint64]int{}
	nextVar := 0
	id := func(node int, st int32) int {
		k := uint64(node)<<32 | uint64(uint32(st))
		if v, ok := varID[k]; ok {
			return v
		}
		v := nextVar
		nextVar++
		varID[k] = v
		return v
	}
	// allStates enumerates every syntactically possible state at a bag:
	// exactly the leaf enumeration without the FY/ΔC determinism (FY and
	// ΔC range over all subsets consistent with their invariants).
	allStates := func(bag []int) []int32 {
		attrs, fds := c.splitBag(bag)
		var out []int32
		subsets(attrs, func(y, rest []int) {
			permute(rest, func(co []int) {
				coCopy := append([]int(nil), co...)
				var candFC []int
				for _, fe := range fds {
					if contains(coCopy, c.rhs[c.fdOf[fe]]) {
						candFC = append(candFC, fe)
					}
				}
				subsets(fds, func(fy, _ []int) {
					// FY only contains FDs with rhs outside Y.
					for _, fe := range fy {
						if contains(y, c.rhs[c.fdOf[fe]]) {
							return
						}
					}
					fyCopy := append([]int(nil), fy...)
					dcCand := append([]int(nil), coCopy...)
					sortInts(dcCand)
					subsets(dcCand, func(dc, _ []int) {
						dcCopy := append([]int(nil), dc...)
						subsets(candFC, func(fc, _ []int) {
							if !c.consistent(fc, coCopy) {
								return
							}
							st := state{y: append([]int(nil), y...), co: coCopy, fy: fyCopy, dc: dcCopy, fc: append([]int(nil), fc...)}
							out = append(out, c.pool.intern(st))
						})
					})
				})
			})
		})
		return out
	}
	successVar := -1
	for _, v := range nice.PostOrder() {
		n := nice.Nodes[v]
		bag := sortedBag(n.Bag)
		switch n.Kind {
		case tree.KindLeaf:
			for _, o := range c.leafStates(bag) {
				prog.AddClause(id(v, o.State))
			}
		case tree.KindIntroduce, tree.KindForget, tree.KindCopy:
			child := n.Children[0]
			for _, cs := range allStates(sortedBag(nice.Nodes[child].Bag)) {
				var results []solver.Out[int32]
				switch n.Kind {
				case tree.KindIntroduce:
					results = c.introduce(bag, n.Elem, cs)
				case tree.KindForget:
					results = c.forget(n.Elem, cs)
				default:
					results = []solver.Out[int32]{{State: cs}}
				}
				for _, o := range results {
					prog.AddClause(id(v, o.State), id(child, cs))
				}
			}
		case tree.KindBranch:
			states := allStates(bag)
			for _, s1 := range states {
				for _, s2 := range states {
					for _, o := range c.branch(s1, s2) {
						prog.AddClause(id(v, o.State), id(n.Children[0], s1), id(n.Children[1], s2))
					}
				}
			}
		default:
			return nil, -1, fmt.Errorf("primality: unexpected node kind %v", n.Kind)
		}
	}
	rootBag := sortedBag(nice.Nodes[nice.Root].Bag)
	for _, s := range allStates(rootBag) {
		if c.accepting(rootBag, s, aElem) {
			if successVar < 0 {
				successVar = nextVar
				nextVar++
			}
			prog.AddClause(successVar, id(nice.Root, s))
		}
	}
	if prog.NumVars < nextVar {
		prog.NumVars = nextVar
	}
	return prog, successVar, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Primes is a convenience wrapper: build an instance and enumerate.
func Primes(s *schema.Schema) (*bitset.Set, error) {
	return PrimesCtx(context.Background(), s)
}

// PrimesCtx is Primes with cancellation support.
func PrimesCtx(ctx context.Context, s *schema.Schema) (*bitset.Set, error) {
	in, err := NewInstanceCtx(ctx, s)
	if err != nil {
		return nil, err
	}
	return in.EnumerateCtx(ctx)
}

// IsPrime is a convenience wrapper for a single attribute decision.
func IsPrime(s *schema.Schema, attr string) (bool, error) {
	return IsPrimeCtx(context.Background(), s, attr)
}

// IsPrimeCtx is IsPrime with cancellation support.
func IsPrimeCtx(ctx context.Context, s *schema.Schema, attr string) (bool, error) {
	a, ok := s.Attr(attr)
	if !ok {
		return false, fmt.Errorf("primality: unknown attribute %s", attr)
	}
	in, err := NewInstanceCtx(ctx, s)
	if err != nil {
		return false, err
	}
	return in.DecideCtx(ctx, a)
}

package primality

// Problem-algebra adapters: the Figure 6 transitions (interned int32
// states) and the Section 7 relevance transitions (encoded string
// states) as solver.Problem instances, evaluated by the generic
// semiring engine in place of the seed's direct DP-handler wiring.

import "repro/internal/solver"

// figure6 is the PRIMALITY algebra of Figure 6. aElem parameterizes the
// "result" rule: Accept fires on states certifying primality of that
// attribute element. Passes that scan acceptance themselves (the
// enumeration's per-leaf reads) set aElem to -1 and never call Accept.
type figure6 struct {
	c     *ctx
	aElem int
}

func (p figure6) Name() string { return "primality" }

func (p figure6) Leaf(_ int, bag []int) []solver.Out[int32] {
	return p.c.leafStates(bag)
}

func (p figure6) Introduce(_ int, bag []int, elem int, child int32) []solver.Out[int32] {
	return p.c.introduce(bag, elem, child)
}

func (p figure6) Forget(_ int, _ []int, elem int, child int32) []solver.Out[int32] {
	return p.c.forget(elem, child)
}

func (p figure6) Join(_ int, _ []int, s1, s2 int32) []solver.Out[int32] {
	return p.c.branch(s1, s2)
}

func (p figure6) Accept(_ int, bag []int, s int32) bool {
	return p.c.accepting(bag, s, p.aElem)
}

// relevance is the Section 7 abduction algebra (is a hypothesis part of
// some minimal explanation?). Its states are the encoded rstate strings;
// the transitions are not perf-critical, so the []string returns of the
// rctx methods are wrapped rather than rewritten.
type relevance struct {
	c     *rctx
	aElem int
}

func wrapR(keys []string) []solver.Out[string] {
	out := make([]solver.Out[string], len(keys))
	for i, k := range keys {
		out[i].State = k
	}
	return out
}

func (p relevance) Name() string { return "relevance" }

func (p relevance) Leaf(_ int, bag []int) []solver.Out[string] {
	return wrapR(p.c.rLeafStates(bag))
}

func (p relevance) Introduce(_ int, bag []int, elem int, child string) []solver.Out[string] {
	return wrapR(p.c.rIntroduce(bag, elem, child))
}

func (p relevance) Forget(_ int, _ []int, elem int, child string) []solver.Out[string] {
	return wrapR(p.c.rForget(elem, child))
}

func (p relevance) Join(_ int, _ []int, s1, s2 string) []solver.Out[string] {
	return wrapR(p.c.rBranch(s1, s2))
}

func (p relevance) Accept(_ int, bag []int, s string) bool {
	return p.c.rAccepting(bag, s, p.aElem)
}

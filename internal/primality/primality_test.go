package primality

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mso"
	"repro/internal/schema"
)

func runningExample() *schema.Schema {
	return schema.MustParse(`
attrs a b c d e g
a b -> c
c -> b
c d -> e
d e -> g
g -> e
`)
}

func TestDecideRunningExample(t *testing.T) {
	// The paper (Example 2.1): a, b, c, d prime; e, g not prime.
	s := runningExample()
	in, err := NewInstance(s)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"a": true, "b": true, "c": true, "d": true, "e": false, "g": false}
	for name, isPrime := range want {
		a, _ := s.Attr(name)
		got, err := in.Decide(a)
		if err != nil {
			t.Fatalf("Decide(%s): %v", name, err)
		}
		if got != isPrime {
			t.Errorf("Decide(%s) = %v, want %v", name, got, isPrime)
		}
	}
}

func TestEnumerateRunningExample(t *testing.T) {
	s := runningExample()
	primes, err := Primes(s)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := s.PrimesBruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if !primes.Equal(brute) {
		t.Fatalf("Enumerate = %v, brute force = %v", primes.Elems(), brute.Elems())
	}
}

func TestGroundDecideRunningExample(t *testing.T) {
	s := runningExample()
	in, err := NewInstance(s)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < s.NumAttrs(); a++ {
		got, err := in.GroundDecide(a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.IsPrimeBruteForce(a)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("GroundDecide(%s) = %v, want %v", s.AttrName(a), got, want)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	// No FDs: every attribute is prime (the only key is R itself).
	s := schema.MustParse("attrs a b c")
	in, err := NewInstance(s)
	if err != nil {
		t.Fatal(err)
	}
	primes, err := in.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if primes.Len() != 3 {
		t.Fatalf("primes = %v, want all", primes.Elems())
	}

	// Single attribute determined by nothing: prime.
	s = schema.MustParse("attrs a")
	ok, err := IsPrime(s, "a")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("sole attribute not prime")
	}
	if _, err := IsPrime(s, "zz"); err == nil {
		t.Fatal("unknown attribute accepted")
	}

	// a → b: key is {a}; b is not prime.
	s = schema.MustParse("a -> b")
	in, err = NewInstance(s)
	if err != nil {
		t.Fatal(err)
	}
	primes, err = in.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	aIdx, _ := s.Attr("a")
	bIdx, _ := s.Attr("b")
	if !primes.Has(aIdx) || primes.Has(bIdx) {
		t.Fatalf("primes = %v", primes.Elems())
	}

	// Cyclic FDs: a → b, b → a. Keys: {a}, {b}; both prime.
	s = schema.MustParse("a -> b\nb -> a")
	primes, err = Primes(s)
	if err != nil {
		t.Fatal(err)
	}
	if primes.Len() != 2 {
		t.Fatalf("cyclic primes = %v", primes.Elems())
	}
}

func TestAgainstMSO(t *testing.T) {
	// Cross-validate the DP against the naive MSO evaluation of the
	// Example 2.6 formula on a small schema (the MSO route is exponential,
	// so the schema must stay tiny).
	s := schema.MustParse("a -> b\nc -> b")
	st := s.ToStructure()
	selected, err := mso.Query(st, mso.Primality(), "x", nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(s)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < s.NumAttrs(); a++ {
		e, _ := st.Elem(s.AttrName(a))
		got, err := in.Decide(a)
		if err != nil {
			t.Fatal(err)
		}
		if got != selected.Has(e) {
			t.Errorf("Decide(%s) = %v, MSO = %v", s.AttrName(a), got, selected.Has(e))
		}
	}
}

func randomSchema(rng *rand.Rand) *schema.Schema {
	s := schema.New()
	n := rng.Intn(5) + 2
	for i := 0; i < n; i++ {
		s.AddAttr(string(rune('a' + i)))
	}
	for k := rng.Intn(n + 2); k > 0; k-- {
		var lhs []int
		for a := 0; a < n; a++ {
			if rng.Intn(3) == 0 {
				lhs = append(lhs, a)
			}
		}
		rhs := rng.Intn(n)
		if err := s.AddFD("", lhs, rhs); err != nil {
			panic(err)
		}
	}
	return s
}

// Property: Decide agrees with brute force on random schemas.
func TestQuickDecideAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchema(rng)
		in, err := NewInstance(s)
		if err != nil {
			return false
		}
		a := rng.Intn(s.NumAttrs())
		got, err := in.Decide(a)
		if err != nil {
			return false
		}
		want, err := s.IsPrimeBruteForce(a)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(67))}); err != nil {
		t.Fatal(err)
	}
}

// Property: linear enumeration == naive quadratic enumeration == brute
// force on random schemas.
func TestQuickEnumerationAgreement(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchema(rng)
		in, err := NewInstance(s)
		if err != nil {
			return false
		}
		fast, err := in.Enumerate()
		if err != nil {
			return false
		}
		naive, err := in.EnumerateNaive()
		if err != nil {
			return false
		}
		brute, err := s.PrimesBruteForce()
		if err != nil {
			return false
		}
		return fast.Equal(naive) && fast.Equal(brute)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(71))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the grounding path agrees with the DP path.
func TestQuickGroundAgreesWithDP(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchema(rng)
		in, err := NewInstance(s)
		if err != nil {
			return false
		}
		a := rng.Intn(s.NumAttrs())
		viaDP, err := in.Decide(a)
		if err != nil {
			return false
		}
		viaGround, err := in.GroundDecide(a)
		if err != nil {
			return false
		}
		return viaDP == viaGround
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(73))}); err != nil {
		t.Fatal(err)
	}
}

package mso

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/structure"
)

func TestParseBasics(t *testing.T) {
	cases := []string{
		"e(x, y)",
		"x = y",
		"x != y",
		"x in X",
		"x notin X",
		"X sub Y",
		"X psub Y",
		"~e(x, y)",
		"e(x,y) & e(y,z) | e(z,x)",
		"e(x,y) -> e(y,x) -> e(x,x)",
		"e(x,y) <-> e(y,x)",
		"exists x forall Y (x in Y)",
		"true & ~false",
	}
	for _, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		// Round trip through String.
		if _, err := Parse(f.String()); err != nil {
			t.Errorf("reparse of %q → %q: %v", src, f.String(), err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"e(x",
		"e(x,)",
		"x ==",
		"exists (x)",
		"x in y",  // lower-case set variable
		"X sub y", // lower-case set variable
		"e(x,y) &",
		"(e(x,y)",
		"e(x,y))",
		"x <- y",
		"@",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestQuantifierScope(t *testing.T) {
	// The quantifier scopes right: exists x p(x) & q(x) binds both.
	f := MustParse("exists x (p(x) & q(x))")
	g := MustParse("exists x p(x) & q(x)")
	if f.String() != g.String() {
		t.Fatalf("scope mismatch: %s vs %s", f, g)
	}
}

func TestQuantifierDepth(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"e(x,y)", 0},
		{"exists x e(x,x)", 1},
		{"exists x forall y e(x,y)", 2},
		// The quantifier scopes right, so the ∀ nests inside the ∃.
		{"exists x e(x,x) & forall y e(y,y)", 2},
		{"(exists x e(x,x)) & (forall y e(y,y))", 1},
		{"X sub Y", 1}, // desugars to ∀
		{"exists X (X sub Y)", 2},
	}
	for _, tc := range cases {
		if got := MustParse(tc.src).QuantifierDepth(); got != tc.want {
			t.Errorf("depth(%q) = %d, want %d", tc.src, got, tc.want)
		}
	}
	if d := ThreeColorability().QuantifierDepth(); d != 5 {
		t.Errorf("depth(3COL) = %d, want 5 (3 set + 2 element)", d)
	}
}

func TestFreeVars(t *testing.T) {
	f := MustParse("exists Y (x in Y & y in Z)")
	elems, sets := f.FreeVars()
	if len(elems) != 2 || elems[0] != "x" || elems[1] != "y" {
		t.Fatalf("free elems = %v", elems)
	}
	if len(sets) != 1 || sets[0] != "Z" {
		t.Fatalf("free sets = %v", sets)
	}
	if e, s := ThreeColorability().FreeVars(); len(e) != 0 || len(s) != 0 {
		t.Fatalf("3COL not a sentence: %v %v", e, s)
	}
	if e, s := Primality().FreeVars(); len(e) != 1 || e[0] != "x" || len(s) != 0 {
		t.Fatalf("Primality free vars: %v %v", e, s)
	}
}

func TestEvalFirstOrder(t *testing.T) {
	st := graph.Path(3).ToStructure() // 0-1-2, symmetric edges
	check := func(src string, want bool) {
		t.Helper()
		got, err := Sentence(st, MustParse(src), nil)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got != want {
			t.Fatalf("%q = %v, want %v", src, got, want)
		}
	}
	check("exists x exists y e(x, y)", true)
	check("forall x exists y e(x, y)", true)
	check("exists x forall y (x = y | e(x, y))", true) // middle vertex
	check("forall x forall y e(x, y)", false)
	check("exists x e(x, x)", false)
	check("forall x exists y exists z (e(x,y) & e(x,z) & y != z)", false) // endpoints have degree 1
}

func TestEvalSecondOrder(t *testing.T) {
	st := graph.Path(3).ToStructure()
	// There is an independent set containing both endpoints.
	f := MustParse("exists X (forall x forall y (x in X & y in X -> ~e(x,y)) & exists x exists y (x != y & x in X & y in X))")
	got, err := Sentence(st, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("independent set of size 2 not found in path")
	}
	// No independent set covers everything in a graph with an edge.
	g := MustParse("exists X (forall x (x in X) & forall x forall y (x in X & y in X -> ~e(x,y)))")
	got, err = Sentence(st, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("full independent set found despite edges")
	}
}

func TestEvalErrors(t *testing.T) {
	st := graph.Path(2).ToStructure()
	if _, err := Sentence(st, MustParse("q(x, y)"), nil); err == nil {
		t.Fatal("unknown predicate accepted")
	}
	if _, err := Sentence(st, MustParse("e(x, y)"), nil); err == nil {
		t.Fatal("unbound element variable accepted")
	}
	if _, err := Sentence(st, MustParse("x in X"), nil); err == nil {
		t.Fatal("unbound set variable accepted")
	}
	if _, err := Eval(st, MustParse("e(x)"), Interp{Elem: map[string]int{"x": 0}}, nil); err == nil {
		t.Fatal("arity violation accepted")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	st := graph.Complete(8).ToStructure()
	f := ThreeColorability()
	_, err := Sentence(st, f, &Budget{MaxSteps: 1000})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestThreeColorabilitySentence(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"triangle", graph.Cycle(3), true},
		{"C5", graph.Cycle(5), true},
		{"K4", graph.Complete(4), false},
		{"path", graph.Path(4), true},
		{"single", graph.New(1), true},
	}
	f := ThreeColorability()
	for _, tc := range cases {
		got, err := Sentence(tc.g.ToStructure(), f, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("3COL(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPrimalityQuery(t *testing.T) {
	// Schema R = abcd, F = {f1: a→b}. Keys: acd. Primes: a, c, d.
	st := structure.MustParse(`
att(a). att(b). att(c). att(d).
fd(f1).
lh(a,f1). rh(b,f1).
`, nil)
	f := Primality()
	got, err := Query(st, f, "x", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"a": true, "b": false, "c": true, "d": true}
	for name, isPrime := range want {
		e, _ := st.Elem(name)
		if got.Has(e) != isPrime {
			t.Errorf("prime(%s) = %v, want %v", name, got.Has(e), isPrime)
		}
	}
	// FDs are never prime.
	if e, _ := st.Elem("f1"); got.Has(e) {
		t.Error("FD element reported prime")
	}
}

func TestPrimalitySmallTwoFDs(t *testing.T) {
	// R = abc, F = {f1: ab→c, f2: c→b}. Keys: ab, ac — all attributes prime.
	st := structure.MustParse(`
att(a). att(b). att(c).
fd(f1). fd(f2).
lh(a,f1). lh(b,f1). rh(c,f1).
lh(c,f2). rh(b,f2).
`, nil)
	got, err := Query(st, Primality(), "x", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		e, _ := st.Elem(name)
		if !got.Has(e) {
			t.Errorf("prime(%s) = false, want true", name)
		}
	}
}

// Property: on random graphs, the MSO 3-colorability sentence agrees with
// brute-force 3-coloring search.
func TestQuickThreeColAgainstBruteForce(t *testing.T) {
	f := ThreeColorability()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 2
		g := graph.New(n)
		for e := rng.Intn(2 * n); e > 0; e-- {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		got, err := Sentence(g.ToStructure(), f, nil)
		if err != nil {
			return false
		}
		return got == bruteForce3Col(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Fatal(err)
	}
}

func bruteForce3Col(g *graph.Graph) bool {
	n := g.N()
	colors := make([]int, n)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return true
		}
		for c := 0; c < 3; c++ {
			ok := true
			g.Neighbors(v).ForEach(func(u int) bool {
				if u < v && colors[u] == c {
					ok = false
					return false
				}
				return true
			})
			if ok {
				colors[v] = c
				if rec(v + 1) {
					return true
				}
			}
		}
		return false
	}
	return rec(0)
}

func TestQueryHelper(t *testing.T) {
	st := graph.Path(3).ToStructure()
	// Vertices with degree ≥ 2 (the middle one).
	f := MustParse("exists y exists z (y != z & e(x,y) & e(x,z))")
	got, err := Query(st, f, "x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Has(1) {
		t.Fatalf("Query = %v", got.Elems())
	}
}

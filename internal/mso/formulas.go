package mso

// This file provides the concrete MSO formulas used in the paper: the
// 3-Colorability sentence of Section 5.1 and the PRIMALITY unary query of
// Example 2.6. They are exercised both by the naive evaluator (the
// baseline of Section 6) and as inputs to cross-validation tests against
// the datalog algorithms of Section 5.

// ThreeColorability returns the MSO sentence of Section 5.1 over the
// signature {e/2}: the graph's vertices can be partitioned into three
// independent sets R, G, B.
func ThreeColorability() *Formula {
	partition := ForallE("v", And(
		Or(In("v", "R"), In("v", "G"), In("v", "B")),
		Not(And(In("v", "R"), In("v", "G"))),
		Not(And(In("v", "R"), In("v", "B"))),
		Not(And(In("v", "G"), In("v", "B"))),
	))
	proper := ForallE("v1", ForallE("v2", Impl(
		Atom("e", "v1", "v2"),
		And(
			Not(And(In("v1", "R"), In("v2", "R"))),
			Not(And(In("v1", "G"), In("v2", "G"))),
			Not(And(In("v1", "B"), In("v2", "B"))),
		),
	)))
	return ExistsS("R", ExistsS("G", ExistsS("B", And(partition, proper))))
}

// closedSet returns Closed(S) of Example 2.6 for a set variable S: every
// FD f either has its right-hand side in S or some left-hand-side
// attribute outside S.
func closedSet(set string) *Formula {
	return ForallE("f", Impl(
		Atom("fd", "f"),
		ExistsE("b", Or(
			And(Atom("rh", "b", "f"), In("b", set)),
			And(Atom("lh", "b", "f"), Not(In("b", set))),
		)),
	))
}

// closedAll returns Closed(R) for R = the set of all attributes.
func closedAll() *Formula {
	return ForallE("f", Impl(
		Atom("fd", "f"),
		ExistsE("b", Or(
			And(Atom("rh", "b", "f"), Atom("att", "b")),
			And(Atom("lh", "b", "f"), Not(Atom("att", "b"))),
		)),
	))
}

// Primality returns the unary MSO query φ(x) of Example 2.6 over the
// signature {fd/1, att/1, lh/2, rh/2}: attribute x is prime iff there is
// an attribute set Y closed under F with x ∉ Y and (Y ∪ {x})⁺ = R.
// The free element variable is "x".
func Primality() *Formula {
	// Y ⊆ R (attributes only).
	ySubR := ForallE("b", Impl(In("b", "Y"), Atom("att", "b")))
	// Closure(Y ∪ {x}, R): Y∪{x} ⊆ R, Closed(R), and no closed Z' with
	// Y∪{x} ⊆ Z' ⊂ R.
	noSmallerClosed := Not(ExistsS("Zp", And(
		ForallE("b", Impl(In("b", "Y"), In("b", "Zp"))), // Y ⊆ Z'
		In("x", "Zp"), // x ∈ Z'
		ForallE("b", Impl(In("b", "Zp"), Atom("att", "b"))),     // Z' ⊆ R
		ExistsE("b", And(Atom("att", "b"), Not(In("b", "Zp")))), // Z' ⊂ R
		closedSet("Zp"),
	)))
	closure := And(Atom("att", "x"), closedAll(), noSmallerClosed)
	return ExistsS("Y", And(
		ySubR,
		closedSet("Y"),
		Not(In("x", "Y")),
		closure,
	))
}

package mso

import "testing"

// FuzzParse checks that the formula parser never panics and that accepted
// formulas survive a print/reparse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"exists x e(x, y)",
		"forall X (x in X -> e(x, x))",
		"~(a(x) & b(y)) | x = y",
		"X sub Y <-> Y psub X",
		"x != y -> x notin Z",
		"true & false",
		"exists",
		"((",
		"x in lower",
		"-> ->",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		printed := g.String()
		g2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", printed, err)
		}
		if g2.String() != printed {
			t.Fatalf("print/reparse not stable for %q", printed)
		}
		// Depth and free variables must be computable without panics.
		_ = g.QuantifierDepth()
		_, _ = g.FreeVars()
	})
}

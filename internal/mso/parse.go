package mso

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// Parse reads an MSO formula. Syntax (ASCII):
//
//	exists x (...)    forall x (...)     — element quantifier (x lower-case)
//	exists X (...)    forall X (...)     — set quantifier (X upper-case)
//	~φ   φ & ψ   φ | ψ   φ -> ψ   φ <-> ψ
//	pred(x, y)   x = y   x != y   x in X   x notin X   X sub Y   X psub Y
//	true   false
//
// Precedence (loosest to tightest): <->, ->, |, &, ~/quantifiers.
// Implication is right-associative; quantifiers scope as far right as
// possible. "X sub Y" and "X psub Y" desugar to quantified formulas, so
// they contribute to the quantifier depth exactly as in the paper's
// definitions.
// Errors carry 1-based line:column positions. A bug in the parser (or
// in the Formula constructors it calls) is recovered and returned as an
// error rather than escaping as a panic, so untrusted input can never
// crash a caller.
func Parse(src string) (f *Formula, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("mso: internal parser error: %v", r)
		}
	}()
	p := &parser{src: src}
	p.next()
	f, err = p.parseIff()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("mso: unexpected %q at %s", p.tok.text, p.at(p.tok.pos))
	}
	return f, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokLParen
	tokRParen
	tokComma
	tokNot  // ~ or !
	tokAnd  // &
	tokOr   // |
	tokImpl // ->
	tokIff  // <->
	tokEq   // =
	tokNeq  // !=
)

type tok struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	src string
	pos int
	tok tok
}

func (p *parser) next() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if c == '%' {
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		break
	}
	if p.pos >= len(p.src) {
		p.tok = tok{kind: tokEOF, pos: p.pos}
		return
	}
	start := p.pos
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.tok = tok{tokLParen, "(", start}
	case c == ')':
		p.pos++
		p.tok = tok{tokRParen, ")", start}
	case c == ',':
		p.pos++
		p.tok = tok{tokComma, ",", start}
	case c == '~':
		p.pos++
		p.tok = tok{tokNot, "~", start}
	case c == '&':
		p.pos++
		p.tok = tok{tokAnd, "&", start}
	case c == '|':
		p.pos++
		p.tok = tok{tokOr, "|", start}
	case c == '=':
		p.pos++
		p.tok = tok{tokEq, "=", start}
	case c == '!':
		if p.pos+1 < len(p.src) && p.src[p.pos+1] == '=' {
			p.pos += 2
			p.tok = tok{tokNeq, "!=", start}
		} else {
			p.pos++
			p.tok = tok{tokNot, "!", start}
		}
	case c == '-':
		if p.pos+1 < len(p.src) && p.src[p.pos+1] == '>' {
			p.pos += 2
			p.tok = tok{tokImpl, "->", start}
		} else {
			p.tok = tok{tokEOF, "-", start} // force an error upstream
			p.pos++
		}
	case c == '<':
		if p.pos+2 < len(p.src) && p.src[p.pos+1] == '-' && p.src[p.pos+2] == '>' {
			p.pos += 3
			p.tok = tok{tokIff, "<->", start}
		} else {
			p.tok = tok{tokEOF, "<", start}
			p.pos++
		}
	default:
		// Decode proper runes: an invalid UTF-8 byte must not be mistaken
		// for a letter (bytewise rune(c) would map e.g. 0xC4 to 'Ä').
		r, size := utf8.DecodeRuneInString(p.src[p.pos:])
		if (r == utf8.RuneError && size <= 1) || !isIdent(r) {
			p.tok = tok{tokEOF, string(c), start}
			p.pos++
			return
		}
		j := p.pos
		for j < len(p.src) {
			r, size := utf8.DecodeRuneInString(p.src[j:])
			if (r == utf8.RuneError && size <= 1) || !isIdent(r) {
				break
			}
			j += size
		}
		p.tok = tok{tokIdent, p.src[p.pos:j], start}
		p.pos = j
	}
}

// at renders a byte offset as a 1-based "line L, col C" position.
func (p *parser) at(off int) string {
	line, col := 1, 1
	for i := 0; i < off && i < len(p.src); i++ {
		if p.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("line %d, col %d", line, col)
}

func isIdent(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}

func isSetVar(name string) bool {
	r, _ := utf8.DecodeRuneInString(name)
	return name != "" && unicode.IsUpper(r)
}

func (p *parser) parseIff() (*Formula, error) {
	f, err := p.parseImpl()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokIff {
		p.next()
		g, err := p.parseImpl()
		if err != nil {
			return nil, err
		}
		f = Iff(f, g)
	}
	return f, nil
}

func (p *parser) parseImpl() (*Formula, error) {
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokImpl {
		p.next()
		g, err := p.parseImpl() // right-associative
		if err != nil {
			return nil, err
		}
		return Impl(f, g), nil
	}
	return f, nil
}

func (p *parser) parseOr() (*Formula, error) {
	f, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	args := []*Formula{f}
	for p.tok.kind == tokOr {
		p.next()
		g, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		args = append(args, g)
	}
	return Or(args...), nil
}

func (p *parser) parseAnd() (*Formula, error) {
	f, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	args := []*Formula{f}
	for p.tok.kind == tokAnd {
		p.next()
		g, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		args = append(args, g)
	}
	return And(args...), nil
}

func (p *parser) parseUnary() (*Formula, error) {
	switch p.tok.kind {
	case tokNot:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case tokLParen:
		p.next()
		f, err := p.parseIff()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("mso: expected ')' at %s", p.at(p.tok.pos))
		}
		p.next()
		return f, nil
	case tokIdent:
		switch p.tok.text {
		case "true":
			p.next()
			return True(), nil
		case "false":
			p.next()
			return False(), nil
		case "exists", "forall":
			kw := p.tok.text
			p.next()
			if p.tok.kind != tokIdent {
				return nil, fmt.Errorf("mso: expected variable after %s at %s", kw, p.at(p.tok.pos))
			}
			v := p.tok.text
			p.next()
			// The quantifier scopes as far right as possible.
			body, err := p.parseIff()
			if err != nil {
				return nil, err
			}
			switch {
			case kw == "exists" && isSetVar(v):
				return ExistsS(v, body), nil
			case kw == "exists":
				return ExistsE(v, body), nil
			case isSetVar(v):
				return ForallS(v, body), nil
			default:
				return ForallE(v, body), nil
			}
		}
		return p.parseAtomOrRelation()
	default:
		return nil, fmt.Errorf("mso: unexpected %q at %s", p.tok.text, p.at(p.tok.pos))
	}
}

func (p *parser) parseAtomOrRelation() (*Formula, error) {
	name := p.tok.text
	p.next()
	switch p.tok.kind {
	case tokLParen:
		// pred(args...)
		p.next()
		var args []string
		for {
			if p.tok.kind != tokIdent {
				return nil, fmt.Errorf("mso: expected argument at %s", p.at(p.tok.pos))
			}
			args = append(args, p.tok.text)
			p.next()
			if p.tok.kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("mso: expected ')' at %s", p.at(p.tok.pos))
		}
		p.next()
		return Atom(name, args...), nil
	case tokEq:
		p.next()
		if p.tok.kind != tokIdent {
			return nil, fmt.Errorf("mso: expected identifier after '=' at %s", p.at(p.tok.pos))
		}
		y := p.tok.text
		p.next()
		return Eq(name, y), nil
	case tokNeq:
		p.next()
		if p.tok.kind != tokIdent {
			return nil, fmt.Errorf("mso: expected identifier after '!=' at %s", p.at(p.tok.pos))
		}
		y := p.tok.text
		p.next()
		return Not(Eq(name, y)), nil
	case tokIdent:
		switch p.tok.text {
		case "in":
			p.next()
			if p.tok.kind != tokIdent || !isSetVar(p.tok.text) {
				return nil, fmt.Errorf("mso: expected set variable after 'in' at %s", p.at(p.tok.pos))
			}
			set := p.tok.text
			p.next()
			return In(name, set), nil
		case "notin":
			p.next()
			if p.tok.kind != tokIdent || !isSetVar(p.tok.text) {
				return nil, fmt.Errorf("mso: expected set variable after 'notin' at %s", p.at(p.tok.pos))
			}
			set := p.tok.text
			p.next()
			return Not(In(name, set)), nil
		case "sub":
			if !isSetVar(name) {
				return nil, fmt.Errorf("mso: expected set variable before 'sub', got %q at %s", name, p.at(p.tok.pos))
			}
			p.next()
			if p.tok.kind != tokIdent || !isSetVar(p.tok.text) {
				return nil, fmt.Errorf("mso: expected set variable after 'sub' at %s", p.at(p.tok.pos))
			}
			y := p.tok.text
			p.next()
			return Subset(name, y), nil
		case "psub":
			if !isSetVar(name) {
				return nil, fmt.Errorf("mso: expected set variable before 'psub', got %q at %s", name, p.at(p.tok.pos))
			}
			p.next()
			if p.tok.kind != tokIdent || !isSetVar(p.tok.text) {
				return nil, fmt.Errorf("mso: expected set variable after 'psub' at %s", p.at(p.tok.pos))
			}
			y := p.tok.text
			p.next()
			return ProperSubset(name, y), nil
		}
	}
	return nil, fmt.Errorf("mso: dangling identifier %q at %s", name, p.at(p.tok.pos))
}

package mso

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/stage"
	"repro/internal/structure"
)

// ErrBudget is returned when evaluation exceeds its step budget — the
// stand-in for the out-of-memory failures of the MSO-to-FTA baseline in
// Section 6 (Table 1's "–" entries).
var ErrBudget = fmt.Errorf("mso: evaluation step budget exhausted: %w", stage.ErrBudgetExceeded)

// Budget caps the work of a naive evaluation. A nil Budget or a
// MaxSteps ≤ 0 means unlimited.
type Budget struct {
	Steps    int64
	MaxSteps int64
}

func (b *Budget) step() error {
	if b == nil {
		return nil
	}
	b.Steps++
	if b.MaxSteps > 0 && b.Steps > b.MaxSteps {
		return ErrBudget
	}
	return nil
}

// Interp assigns the free variables of a formula: element variables to
// domain elements, set variables to element sets.
type Interp struct {
	Elem map[string]int
	Set  map[string]*bitset.Set
}

// Eval decides (A, interp) ⊨ φ by structural recursion. Set quantifiers
// enumerate all 2^|dom| subsets, so the running time is exponential in the
// domain for genuinely second-order formulas — this is the naive baseline,
// not the paper's contribution. Domains beyond 63 elements are rejected
// for set quantification.
func Eval(st *structure.Structure, f *Formula, interp Interp, budget *Budget) (bool, error) {
	return EvalCtx(context.Background(), st, f, interp, budget)
}

// EvalCtx is Eval with cancellation support: the evaluator polls ctx
// every 256 recursion steps and returns the context error wrapped in a
// *stage.Error tagged stage.MSOEval.
func EvalCtx(ctx context.Context, st *structure.Structure, f *Formula, interp Interp, budget *Budget) (bool, error) {
	e := &evaluator{st: st, budget: budget, ctx: ctx}
	env := environment{elem: map[string]int{}, set: map[string]*bitset.Set{}}
	for k, v := range interp.Elem {
		env.elem[k] = v
	}
	for k, v := range interp.Set {
		env.set[k] = v
	}
	return e.eval(f, env)
}

// Sentence decides A ⊨ φ for a sentence (no free variables).
func Sentence(st *structure.Structure, f *Formula, budget *Budget) (bool, error) {
	return Eval(st, f, Interp{}, budget)
}

// SentenceCtx is Sentence with cancellation support (see EvalCtx).
func SentenceCtx(ctx context.Context, st *structure.Structure, f *Formula, budget *Budget) (bool, error) {
	return EvalCtx(ctx, st, f, Interp{}, budget)
}

// Query evaluates a unary query φ(x) for every domain element and returns
// the set of elements satisfying it.
func Query(st *structure.Structure, f *Formula, x string, budget *Budget) (*bitset.Set, error) {
	return QueryCtx(context.Background(), st, f, x, budget)
}

// QueryCtx is Query with cancellation support (see EvalCtx).
func QueryCtx(ctx context.Context, st *structure.Structure, f *Formula, x string, budget *Budget) (*bitset.Set, error) {
	out := bitset.New(st.Size())
	for a := 0; a < st.Size(); a++ {
		ok, err := EvalCtx(ctx, st, f, Interp{Elem: map[string]int{x: a}}, budget)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Add(a)
		}
	}
	return out, nil
}

type environment struct {
	elem map[string]int
	set  map[string]*bitset.Set
}

type evaluator struct {
	st     *structure.Structure
	budget *Budget
	ctx    context.Context // nil: never cancelled
	tick   uint
}

func (e *evaluator) eval(f *Formula, env environment) (bool, error) {
	if e.tick++; e.tick&255 == 0 && e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return false, stage.Wrap(stage.MSOEval, err)
		}
	}
	if err := e.budget.step(); err != nil {
		return false, err
	}
	switch f.Kind {
	case KTrue:
		return true, nil
	case KFalse:
		return false, nil
	case KAtom:
		tuple := make([]int, len(f.Args))
		for i, a := range f.Args {
			v, ok := env.elem[a]
			if !ok {
				return false, fmt.Errorf("mso: unbound element variable %s", a)
			}
			tuple[i] = v
		}
		pi, p, ok := e.st.Sig().Lookup(f.Pred)
		if !ok {
			return false, fmt.Errorf("mso: unknown predicate %s", f.Pred)
		}
		if p.Arity != len(tuple) {
			return false, fmt.Errorf("mso: predicate %s expects %d arguments, got %d", f.Pred, p.Arity, len(tuple))
		}
		return e.st.HasIdx(pi, tuple), nil
	case KEq:
		x, ok := env.elem[f.X]
		if !ok {
			return false, fmt.Errorf("mso: unbound element variable %s", f.X)
		}
		y, ok := env.elem[f.Y]
		if !ok {
			return false, fmt.Errorf("mso: unbound element variable %s", f.Y)
		}
		return x == y, nil
	case KIn:
		x, ok := env.elem[f.X]
		if !ok {
			return false, fmt.Errorf("mso: unbound element variable %s", f.X)
		}
		s, ok := env.set[f.Y]
		if !ok {
			return false, fmt.Errorf("mso: unbound set variable %s", f.Y)
		}
		return s.Has(x), nil
	case KNot:
		v, err := e.eval(f.Sub[0], env)
		return !v, err
	case KAnd:
		for _, s := range f.Sub {
			v, err := e.eval(s, env)
			if err != nil {
				return false, err
			}
			if !v {
				return false, nil
			}
		}
		return true, nil
	case KOr:
		for _, s := range f.Sub {
			v, err := e.eval(s, env)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	case KImpl:
		v, err := e.eval(f.Sub[0], env)
		if err != nil {
			return false, err
		}
		if !v {
			return true, nil
		}
		return e.eval(f.Sub[1], env)
	case KIff:
		a, err := e.eval(f.Sub[0], env)
		if err != nil {
			return false, err
		}
		b, err := e.eval(f.Sub[1], env)
		if err != nil {
			return false, err
		}
		return a == b, nil
	case KExistsE, KForallE:
		want := f.Kind == KExistsE
		old, had := env.elem[f.Var]
		for a := 0; a < e.st.Size(); a++ {
			env.elem[f.Var] = a
			v, err := e.eval(f.Sub[0], env)
			if err != nil {
				e.restoreElem(env, f.Var, old, had)
				return false, err
			}
			if v == want {
				e.restoreElem(env, f.Var, old, had)
				return want, nil
			}
		}
		e.restoreElem(env, f.Var, old, had)
		return !want, nil
	case KExistsS, KForallS:
		want := f.Kind == KExistsS
		n := e.st.Size()
		if n > 63 {
			return false, fmt.Errorf("mso: naive set quantification limited to 63 elements, domain has %d", n)
		}
		old, had := env.set[f.Var]
		defer e.restoreSet(env, f.Var, old, had)
		for mask := uint64(0); mask < 1<<uint(n); mask++ {
			if err := e.budget.step(); err != nil {
				return false, err
			}
			s := bitset.New(n)
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					s.Add(i)
				}
			}
			env.set[f.Var] = s
			v, err := e.eval(f.Sub[0], env)
			if err != nil {
				return false, err
			}
			if v == want {
				return want, nil
			}
		}
		return !want, nil
	default:
		return false, fmt.Errorf("mso: unknown formula kind %d", f.Kind)
	}
}

func (e *evaluator) restoreElem(env environment, v string, old int, had bool) {
	if had {
		env.elem[v] = old
	} else {
		delete(env.elem, v)
	}
}

func (e *evaluator) restoreSet(env environment, v string, old *bitset.Set, had bool) {
	if had {
		env.set[v] = old
	} else {
		delete(env.set, v)
	}
}

// Package mso implements Monadic Second Order logic over finite
// τ-structures (Section 2.3): formulas with first-order (element)
// variables and monadic second-order (set) variables, a parser, and a
// naive model checker whose set quantifiers enumerate all subsets of the
// domain.
//
// The naive checker doubles as this repository's substitute for MONA, the
// baseline of the paper's Section 6 experiments (see DESIGN.md): it is
// exact, exponential in the data, and runs under a step budget whose
// exhaustion models MONA's out-of-memory failures.
package mso

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates formula nodes.
type Kind int

// Formula node kinds.
const (
	KAtom    Kind = iota // Pred(Args...)
	KEq                  // x = y
	KIn                  // x in X
	KNot                 // ~φ
	KAnd                 // φ & ψ
	KOr                  // φ | ψ
	KImpl                // φ -> ψ
	KIff                 // φ <-> ψ
	KExistsE             // exists x φ
	KForallE             // forall x φ
	KExistsS             // exists X φ
	KForallS             // forall X φ
	KTrue                // ⊤
	KFalse               // ⊥
)

// Formula is an MSO formula in negation-unrestricted form. By convention
// element variables are lower-case and set variables upper-case
// identifiers (the parser enforces this; programmatic construction should
// follow it).
type Formula struct {
	Kind Kind
	Pred string     // KAtom
	Args []string   // KAtom: element variable names
	X, Y string     // KEq: X=Y are element vars; KIn: X element var, Y set var
	Var  string     // quantifiers: bound variable
	Sub  []*Formula // operands
}

// Constructors.

// True returns the ⊤ formula.
func True() *Formula { return &Formula{Kind: KTrue} }

// False returns the ⊥ formula.
func False() *Formula { return &Formula{Kind: KFalse} }

// Atom returns the atomic formula pred(args...).
func Atom(pred string, args ...string) *Formula {
	return &Formula{Kind: KAtom, Pred: pred, Args: args}
}

// Eq returns x = y.
func Eq(x, y string) *Formula { return &Formula{Kind: KEq, X: x, Y: y} }

// In returns x ∈ X.
func In(x, set string) *Formula { return &Formula{Kind: KIn, X: x, Y: set} }

// Not returns ¬φ.
func Not(f *Formula) *Formula { return &Formula{Kind: KNot, Sub: []*Formula{f}} }

// And returns the conjunction of the operands (⊤ for none).
func And(fs ...*Formula) *Formula { return nary(KAnd, KTrue, fs) }

// Or returns the disjunction of the operands (⊥ for none).
func Or(fs ...*Formula) *Formula { return nary(KOr, KFalse, fs) }

func nary(k, empty Kind, fs []*Formula) *Formula {
	switch len(fs) {
	case 0:
		return &Formula{Kind: empty}
	case 1:
		return fs[0]
	}
	return &Formula{Kind: k, Sub: fs}
}

// Impl returns φ → ψ.
func Impl(f, g *Formula) *Formula { return &Formula{Kind: KImpl, Sub: []*Formula{f, g}} }

// Iff returns φ ↔ ψ.
func Iff(f, g *Formula) *Formula { return &Formula{Kind: KIff, Sub: []*Formula{f, g}} }

// ExistsE returns ∃x φ for an element variable x.
func ExistsE(v string, f *Formula) *Formula {
	return &Formula{Kind: KExistsE, Var: v, Sub: []*Formula{f}}
}

// ForallE returns ∀x φ for an element variable x.
func ForallE(v string, f *Formula) *Formula {
	return &Formula{Kind: KForallE, Var: v, Sub: []*Formula{f}}
}

// ExistsS returns ∃X φ for a set variable X.
func ExistsS(v string, f *Formula) *Formula {
	return &Formula{Kind: KExistsS, Var: v, Sub: []*Formula{f}}
}

// ForallS returns ∀X φ for a set variable X.
func ForallS(v string, f *Formula) *Formula {
	return &Formula{Kind: KForallS, Var: v, Sub: []*Formula{f}}
}

// Subset returns the formula X ⊆ Y, desugared to ∀z (z∈X → z∈Y) with a
// fresh variable, so that quantifier depth accounting stays exact.
func Subset(x, y string) *Formula {
	v := freshVar(x + y)
	return ForallE(v, Impl(In(v, x), In(v, y)))
}

// ProperSubset returns X ⊂ Y as X ⊆ Y ∧ ¬(Y ⊆ X).
func ProperSubset(x, y string) *Formula {
	return And(Subset(x, y), Not(Subset(y, x)))
}

var freshCounter int

func freshVar(hint string) string {
	freshCounter++
	return fmt.Sprintf("z%d_%s", freshCounter, strings.ToLower(hint))
}

// QuantifierDepth returns the maximum nesting of quantifiers (element and
// set quantifiers both count), the k of ≡^MSO_k.
func (f *Formula) QuantifierDepth() int {
	switch f.Kind {
	case KAtom, KEq, KIn, KTrue, KFalse:
		return 0
	case KExistsE, KForallE, KExistsS, KForallS:
		return 1 + f.Sub[0].QuantifierDepth()
	default:
		d := 0
		for _, s := range f.Sub {
			if sd := s.QuantifierDepth(); sd > d {
				d = sd
			}
		}
		return d
	}
}

// FreeVars returns the free element and set variables, sorted.
func (f *Formula) FreeVars() (elems, sets []string) {
	em, sm := map[string]bool{}, map[string]bool{}
	var walk func(g *Formula, bound map[string]bool)
	walk = func(g *Formula, bound map[string]bool) {
		switch g.Kind {
		case KAtom:
			for _, a := range g.Args {
				if !bound[a] {
					em[a] = true
				}
			}
		case KEq:
			if !bound[g.X] {
				em[g.X] = true
			}
			if !bound[g.Y] {
				em[g.Y] = true
			}
		case KIn:
			if !bound[g.X] {
				em[g.X] = true
			}
			if !bound[g.Y] {
				sm[g.Y] = true
			}
		case KExistsE, KForallE, KExistsS, KForallS:
			inner := map[string]bool{}
			for k := range bound {
				inner[k] = true
			}
			inner[g.Var] = true
			walk(g.Sub[0], inner)
		case KTrue, KFalse:
		default:
			for _, s := range g.Sub {
				walk(s, bound)
			}
		}
	}
	walk(f, map[string]bool{})
	for v := range em {
		elems = append(elems, v)
	}
	for v := range sm {
		sets = append(sets, v)
	}
	sort.Strings(elems)
	sort.Strings(sets)
	return elems, sets
}

// String renders the formula in the syntax accepted by Parse.
func (f *Formula) String() string {
	var b strings.Builder
	f.write(&b)
	return b.String()
}

func (f *Formula) write(b *strings.Builder) {
	switch f.Kind {
	case KTrue:
		b.WriteString("true")
	case KFalse:
		b.WriteString("false")
	case KAtom:
		b.WriteString(f.Pred)
		b.WriteByte('(')
		b.WriteString(strings.Join(f.Args, ","))
		b.WriteByte(')')
	case KEq:
		fmt.Fprintf(b, "%s = %s", f.X, f.Y)
	case KIn:
		fmt.Fprintf(b, "%s in %s", f.X, f.Y)
	case KNot:
		b.WriteString("~(")
		f.Sub[0].write(b)
		b.WriteByte(')')
	case KAnd, KOr, KImpl, KIff:
		op := map[Kind]string{KAnd: " & ", KOr: " | ", KImpl: " -> ", KIff: " <-> "}[f.Kind]
		b.WriteByte('(')
		for i, s := range f.Sub {
			if i > 0 {
				b.WriteString(op)
			}
			s.write(b)
		}
		b.WriteByte(')')
	case KExistsE, KExistsS:
		// The outer parentheses matter: the parser gives quantifiers
		// maximal scope, so an unparenthesized quantifier would swallow a
		// following binary operator on reparse.
		fmt.Fprintf(b, "(exists %s (", f.Var)
		f.Sub[0].write(b)
		b.WriteString("))")
	case KForallE, KForallS:
		fmt.Fprintf(b, "(forall %s (", f.Var)
		f.Sub[0].write(b)
		b.WriteString("))")
	}
}

package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/structure"
)

func TestBasic(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(2, 2) // self loop ignored
	g.AddEdge(0, 9) // out of range ignored
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(1) != 1 || g.Degree(3) != 0 {
		t.Fatal("Degree wrong")
	}
	v := g.AddVertex()
	if v != 4 || g.N() != 5 {
		t.Fatal("AddVertex wrong")
	}
	g.AddEdge(4, 0)
	if !g.HasEdge(0, 4) {
		t.Fatal("edge to new vertex missing")
	}
}

func TestEdgesOnce(t *testing.T) {
	g := Cycle(5)
	es := g.Edges()
	if len(es) != 5 {
		t.Fatalf("len(Edges) = %d", len(es))
	}
	for _, e := range es {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not ordered", e)
		}
	}
}

func TestConnectivity(t *testing.T) {
	g := Path(5)
	if !g.IsConnected() {
		t.Fatal("path not connected")
	}
	g2 := New(4)
	g2.AddEdge(0, 1)
	g2.AddEdge(2, 3)
	if g2.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if got := len(g2.Component(2)); got != 2 {
		t.Fatalf("component size = %d", got)
	}
	if New(0).IsConnected() != true || New(1).IsConnected() != true {
		t.Fatal("trivial graphs should be connected")
	}
}

func TestGenerators(t *testing.T) {
	if g := Complete(5); g.M() != 10 {
		t.Fatalf("K5 has %d edges", g.M())
	}
	if g := Grid(3, 4); g.N() != 12 || g.M() != 3*3+2*4 {
		t.Fatalf("grid wrong: n=%d m=%d", g.N(), g.M())
	}
	rng := rand.New(rand.NewSource(7))
	tr := RandomTree(30, rng)
	if tr.M() != 29 || !tr.IsConnected() {
		t.Fatal("random tree wrong")
	}
	kt := KTree(40, 3, rng)
	if kt.N() != 40 || !kt.IsConnected() {
		t.Fatal("k-tree wrong shape")
	}
	// Every vertex beyond the base clique has degree ≥ k in a k-tree.
	for v := 4; v < kt.N(); v++ {
		if kt.Degree(v) < 3 {
			t.Fatalf("k-tree vertex %d has degree %d", v, kt.Degree(v))
		}
	}
	pk := PartialKTree(40, 3, 0.3, rng)
	if pk.N() != 40 || pk.M() > kt.M() {
		t.Fatal("partial k-tree wrong")
	}
	if g := KTree(3, 5, rng); g.M() != 3 {
		t.Fatal("KTree small case should be complete graph")
	}
}

func TestPrimal(t *testing.T) {
	// Primal graph of the running-example schema structure: elements
	// co-occurring in lh/rh tuples are adjacent.
	st := structure.MustParse(`
att(a). att(b). fd(f1).
lh(a,f1). rh(b,f1).
`, nil)
	g := Primal(st)
	a, _ := st.Elem("a")
	b, _ := st.Elem("b")
	f1, _ := st.Elem("f1")
	if !g.HasEdge(a, f1) || !g.HasEdge(b, f1) {
		t.Fatal("primal edges missing")
	}
	if g.HasEdge(a, b) {
		t.Fatal("spurious primal edge")
	}
	if g.Name(a) != "a" {
		t.Fatal("primal names not copied")
	}
}

func TestStructureRoundTrip(t *testing.T) {
	g := Cycle(4)
	st := g.ToStructure()
	if len(st.Tuples("e")) != 8 { // symmetric encoding
		t.Fatalf("|e| = %d, want 8", len(st.Tuples("e")))
	}
	back, err := FromEdgeStructure(st, "e")
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 4 || back.M() != 4 {
		t.Fatal("round trip lost edges")
	}
	if _, err := FromEdgeStructure(st, "nope"); err == nil {
		t.Fatal("unknown predicate accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Path(3)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("Clone shares adjacency")
	}
}

// Property: KTree(n,k) has exactly (k+1)k/2 + (n-k-1)k edges and
// PartialKTree never exceeds it.
func TestQuickKTreeEdgeCount(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 5
		k := int(kRaw%4) + 1
		if n <= k+1 {
			n = k + 2
		}
		rng := rand.New(rand.NewSource(seed))
		g := KTree(n, k, rng)
		want := (k+1)*k/2 + (n-k-1)*k
		return g.M() == want && g.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

package graph

import "math/rand"

// Path returns the path graph on n vertices.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle graph on n vertices (n ≥ 3 for a proper cycle).
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Complete returns the complete graph K_n (treewidth n-1).
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Grid returns the r×c grid graph (treewidth min(r,c)).
func Grid(r, c int) *Graph {
	g := New(r * c)
	at := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if i+1 < r {
				g.AddEdge(at(i, j), at(i+1, j))
			}
			if j+1 < c {
				g.AddEdge(at(i, j), at(i, j+1))
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labeled tree on n vertices
// (treewidth 1), built from a random Prüfer-style attachment.
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	return g
}

// KTree returns a random k-tree on n vertices: the canonical family of
// graphs with treewidth exactly k (for n > k). It starts from K_{k+1} and
// repeatedly attaches a new vertex to a random existing k-clique.
func KTree(n, k int, rng *rand.Rand) *Graph {
	if n <= k+1 {
		return Complete(n)
	}
	g := Complete(k + 1)
	// cliques holds k-subsets of vertices known to form cliques.
	var cliques [][]int
	base := make([]int, k+1)
	for i := range base {
		base[i] = i
	}
	for drop := 0; drop <= k; drop++ {
		cl := make([]int, 0, k)
		for i, v := range base {
			if i != drop {
				cl = append(cl, v)
			}
		}
		cliques = append(cliques, cl)
	}
	for g.N() < n {
		cl := cliques[rng.Intn(len(cliques))]
		v := g.AddVertex()
		for _, u := range cl {
			g.AddEdge(v, u)
		}
		// New k-cliques: v together with each (k-1)-subset of cl.
		for drop := 0; drop < len(cl); drop++ {
			nc := make([]int, 0, k)
			nc = append(nc, v)
			for i, u := range cl {
				if i != drop {
					nc = append(nc, u)
				}
			}
			cliques = append(cliques, nc)
		}
	}
	return g
}

// PartialKTree returns a random partial k-tree: a KTree with each edge
// independently deleted with probability dropProb. Partial k-trees are
// exactly the graphs of treewidth ≤ k, so this is the standard generator
// for bounded-treewidth workloads.
func PartialKTree(n, k int, dropProb float64, rng *rand.Rand) *Graph {
	full := KTree(n, k, rng)
	g := New(full.N())
	for _, e := range full.Edges() {
		if rng.Float64() >= dropProb {
			g.AddEdge(e[0], e[1])
		}
	}
	return g
}

// Package graph implements simple undirected graphs: the inputs of the
// 3-Colorability algorithms, the primal (Gaifman) graphs over which tree
// decompositions of arbitrary τ-structures are computed, and the incidence
// graphs of relational schemas (Section 2.2, Remark).
package graph

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/structure"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	adj   []*bitset.Set
	edges int
	names []string
}

// New returns an edgeless graph with n vertices.
func New(n int) *Graph {
	g := &Graph{adj: make([]*bitset.Set, n)}
	for i := range g.adj {
		g.adj[i] = bitset.New(n)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// AddVertex appends a new isolated vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, bitset.New(len(g.adj)+1))
	return len(g.adj) - 1
}

// AddEdge inserts the undirected edge {u,v}; self-loops and duplicates are
// ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return
	}
	if g.adj[u].Has(v) {
		return
	}
	g.adj[u].Add(v)
	g.adj[v].Add(u)
	g.edges++
}

// RemoveEdge deletes the undirected edge {u,v}; removing an absent edge
// is a no-op.
func (g *Graph) RemoveEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return
	}
	if !g.adj[u].Has(v) {
		return
	}
	g.adj[u].Remove(v)
	g.adj[v].Remove(u)
	g.edges--
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	return u >= 0 && u < len(g.adj) && g.adj[u].Has(v)
}

// Neighbors returns the adjacency set of v. The result must not be
// modified.
func (g *Graph) Neighbors(v int) *bitset.Set { return g.adj[v] }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return g.adj[v].Len() }

// Edges returns every edge once, as ordered pairs with u < v.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.edges)
	for u := range g.adj {
		g.adj[u].ForEach(func(v int) bool {
			if u < v {
				out = append(out, [2]int{u, v})
			}
			return true
		})
	}
	return out
}

// SetName attaches a label to vertex v (used by printers).
func (g *Graph) SetName(v int, name string) {
	for len(g.names) <= v {
		g.names = append(g.names, "")
	}
	g.names[v] = name
}

// Name returns the label of v, defaulting to "v<index>".
func (g *Graph) Name(v int) string {
	if v < len(g.names) && g.names[v] != "" {
		return g.names[v]
	}
	return fmt.Sprintf("v%d", v)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([]*bitset.Set, len(g.adj)), edges: g.edges}
	for i, a := range g.adj {
		c.adj[i] = a.Clone()
	}
	c.names = append([]string(nil), g.names...)
	return c
}

// IsConnected reports whether the graph is connected (true for N ≤ 1).
func (g *Graph) IsConnected() bool {
	if len(g.adj) <= 1 {
		return true
	}
	return len(g.Component(0)) == len(g.adj)
}

// Component returns the vertices reachable from start (including start).
func (g *Graph) Component(start int) []int {
	seen := bitset.New(len(g.adj))
	seen.Add(start)
	queue := []int{start}
	var out []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		g.adj[v].ForEach(func(w int) bool {
			if !seen.Has(w) {
				seen.Add(w)
				queue = append(queue, w)
			}
			return true
		})
	}
	return out
}

// Primal returns the primal (Gaifman) graph of a τ-structure: one vertex
// per domain element, with an edge between any two distinct elements that
// occur together in some tuple. A tree decomposition of the primal graph
// is a tree decomposition of the structure and vice versa.
func Primal(st *structure.Structure) *Graph {
	g := New(st.Size())
	for pi := range st.Sig().Predicates() {
		for _, tuple := range st.TuplesIdx(pi) {
			for i := 0; i < len(tuple); i++ {
				for j := i + 1; j < len(tuple); j++ {
					g.AddEdge(tuple[i], tuple[j])
				}
			}
		}
	}
	for v := 0; v < st.Size(); v++ {
		g.SetName(v, st.Name(v))
	}
	return g
}

// FromEdgeStructure interprets a τ-structure with a binary predicate
// (named pred, e.g. "e") as an undirected graph over its domain.
func FromEdgeStructure(st *structure.Structure, pred string) (*Graph, error) {
	if st.Sig().Arity(pred) != 2 {
		return nil, fmt.Errorf("graph: predicate %s is not binary", pred)
	}
	g := New(st.Size())
	for _, t := range st.Tuples(pred) {
		g.AddEdge(t[0], t[1])
	}
	for v := 0; v < st.Size(); v++ {
		g.SetName(v, st.Name(v))
	}
	return g, nil
}

// ToStructure encodes the graph as a τ-structure over signature {e/2},
// adding each edge in both directions (the symmetric encoding used by the
// MSO sentence of Section 5.1).
func (g *Graph) ToStructure() *structure.Structure {
	sig := structure.MustSignature(structure.Predicate{Name: "e", Arity: 2})
	st := structure.New(sig)
	ids := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		ids[v] = st.AddElem(g.Name(v))
	}
	for _, e := range g.Edges() {
		st.MustAddTuple("e", ids[e[0]], ids[e[1]])
		st.MustAddTuple("e", ids[e[1]], ids[e[0]])
	}
	return st
}

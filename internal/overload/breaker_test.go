package overload

import (
	"errors"
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Minute, ProbeSuccesses: 2, now: clock.now})

	// Closed: failures below the threshold keep admitting; a success
	// resets the consecutive count.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow %d: %v", i, err)
		}
		b.Record(true)
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false) // success resets
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow after reset: %v", err)
		}
		b.Record(true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after 2 consecutive failures (threshold 3), want closed", b.State())
	}

	// Third consecutive failure opens it.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}

	// Open: fast-fail with a Retry-After no longer than the cooldown.
	err := b.Allow()
	var open *BreakerOpenError
	if !errors.As(err, &open) || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open Allow: err = %v, want *BreakerOpenError", err)
	}
	if open.RetryAfter <= 0 || open.RetryAfter > time.Minute {
		t.Errorf("RetryAfter = %v, want in (0, cooldown]", open.RetryAfter)
	}

	// Cooldown elapses: half-open admits exactly one probe at a time.
	clock.advance(61 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe: err = %v, want fast-fail", err)
	}
	b.Record(false) // probe 1 succeeds
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v after 1/2 probe successes, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe 2 refused: %v", err)
	}
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after 2/2 probe successes, want closed", b.State())
	}

	c := b.Counters()
	if c.Opened != 1 || c.HalfOpens != 1 || c.Closed != 1 {
		t.Errorf("counters = %+v, want 1 open, 1 half-open, 1 close", c)
	}
	if c.FastFails < 2 {
		t.Errorf("FastFails = %d, want ≥ 2", c.FastFails)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, ProbeSuccesses: 1, now: clock.now})
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	clock.advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Record(true) // probe fails
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after failed probe, want open again", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("reopened breaker admitted: %v", err)
	}
	if c := b.Counters(); c.Opened != 2 {
		t.Errorf("Opened = %d, want 2", c.Opened)
	}
}

func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Hour})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				if b.Allow() == nil {
					b.Record(j%2 == 0)
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	// No assertion beyond -race cleanliness and not deadlocking; the
	// state machine's invariants are pinned deterministically above.
}

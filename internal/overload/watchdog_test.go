package overload

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchdogTiers pins the shedding ladder: tiers trip in order, and
// the walk stops at the first tier that brings the heap back under the
// watermark.
func TestWatchdogTiers(t *testing.T) {
	var heap atomic.Uint64
	heap.Store(100)
	var shed1, shed2, shed3 int
	tiers := []Tier{
		{Name: "results", Shed: func() int { shed1++; heap.Store(90); return 7 }},
		{Name: "programs", Shed: func() int { shed2++; heap.Store(40); return 3 }},
		{Name: "sessions", Shed: func() int { shed3++; heap.Store(10); return 1 }},
	}
	w := NewWatchdog(WatchdogConfig{Watermark: 50, readMem: func() uint64 { return heap.Load() }}, tiers)

	if n := w.CheckOnce(); n != 2 {
		t.Fatalf("CheckOnce = %d tiers, want 2 (results did not release enough, programs did)", n)
	}
	if shed1 != 1 || shed2 != 1 || shed3 != 0 {
		t.Errorf("tier calls = %d/%d/%d, want 1/1/0", shed1, shed2, shed3)
	}
	st := w.Stats()
	if st.Trips != 1 {
		t.Errorf("Trips = %d, want 1", st.Trips)
	}
	if len(st.Tiers) != 3 || st.Tiers[0].Trips != 1 || st.Tiers[0].Shed != 7 ||
		st.Tiers[1].Trips != 1 || st.Tiers[1].Shed != 3 || st.Tiers[2].Trips != 0 {
		t.Errorf("tier stats = %+v, want [1×7, 1×3, 0]", st.Tiers)
	}
	if st.LastHeap != 40 {
		t.Errorf("LastHeap = %d, want 40", st.LastHeap)
	}

	// Under the watermark: no trip.
	if n := w.CheckOnce(); n != 0 {
		t.Fatalf("CheckOnce under watermark = %d, want 0", n)
	}
	if st := w.Stats(); st.Trips != 1 {
		t.Errorf("Trips = %d after quiet check, want still 1", st.Trips)
	}
}

// TestWatchdogAllTiersExhausted: when no tier releases enough, the walk
// sheds everything once and stops.
func TestWatchdogAllTiersExhausted(t *testing.T) {
	calls := 0
	tiers := []Tier{
		{Name: "a", Shed: func() int { calls++; return 0 }},
		{Name: "b", Shed: func() int { calls++; return 0 }},
	}
	w := NewWatchdog(WatchdogConfig{Watermark: 1, readMem: func() uint64 { return 100 }}, tiers)
	if n := w.CheckOnce(); n != 2 {
		t.Fatalf("CheckOnce = %d, want 2 (both tiers shed)", n)
	}
	if calls != 2 {
		t.Errorf("shed calls = %d, want 2", calls)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{}, []Tier{{Name: "a", Shed: func() int { t.Fatal("shed called"); return 0 }}})
	if n := w.CheckOnce(); n != 0 {
		t.Fatalf("disabled CheckOnce = %d, want 0", n)
	}
	// Run returns immediately on a zero watermark.
	done := make(chan struct{})
	go func() {
		w.Run(context.Background())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not return with a zero watermark")
	}
}

// TestWatchdogRunLoop drives the ticker loop briefly with a tripping
// reader and checks it both sheds and stops on cancel.
func TestWatchdogRunLoop(t *testing.T) {
	var heap atomic.Uint64
	heap.Store(100)
	tiers := []Tier{{Name: "a", Shed: func() int { heap.Store(10); return 1 }}}
	w := NewWatchdog(WatchdogConfig{
		Watermark: 50,
		Interval:  5 * time.Millisecond,
		readMem:   func() uint64 { return heap.Load() },
	}, tiers)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		w.Run(ctx)
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for w.Stats().Trips == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop on cancel")
	}
	if w.Stats().Trips == 0 {
		t.Error("watchdog loop never tripped")
	}
}

// Package overload provides the self-healing overload-control
// primitives behind the decision service (internal/server): an adaptive
// concurrency limiter with a bounded deadline-aware wait queue, a
// per-key circuit breaker, and a tiered memory watchdog.
//
// The paper's linearity guarantee (monadic datalog over bounded
// treewidth evaluates in time linear in the structure) is what makes
// principled admission possible here: per-request cost is predictable
// from structure size and mode, so the limiter can project queue waits
// and shed expensive work first instead of queueing blindly. The known
// blowup points (k-type state space, DP tables) are handled one layer
// down by stage.Budget; this package is about protecting the *shared*
// capacity from sustained overload, not one request from itself.
//
// The package depends only on the standard library so the cli layer and
// the HTTP client can both classify its errors without import cycles.
package overload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrShed is the sentinel under every admission rejection: test with
// errors.Is. The concrete error is a *ShedError carrying the reason and
// a Retry-After hint.
var ErrShed = errors.New("overload: request shed")

// ShedError reports one shed request. It unwraps to ErrShed.
type ShedError struct {
	// Reason is "queue-full", "deadline" (projected queue wait exceeds
	// the request's deadline) or "cost" (expensive request shed under
	// queue pressure).
	Reason string
	// RetryAfter is the server's estimate of when capacity frees up —
	// the Retry-After header value, never zero.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("overload: request shed (%s), retry after %v", e.Reason, e.RetryAfter)
}

func (e *ShedError) Unwrap() error { return ErrShed }

// RetryAfterHint exposes the Retry-After duration behind the
// cli.RetryAfter extraction without an import cycle.
func (e *ShedError) RetryAfterHint() time.Duration { return e.RetryAfter }

// LimiterConfig parameterizes a Limiter. The zero value resolves to the
// defaults below.
type LimiterConfig struct {
	// Initial, Min and Max bound the adaptive concurrency limit.
	Initial, Min, Max int
	// QueueCap bounds the wait queue; a request arriving with the queue
	// full is shed immediately. Negative disables queueing entirely.
	QueueCap int
	// LatencyTarget is the AIMD setpoint: observed (EWMA) latency above
	// it shrinks the limit multiplicatively, below it grows the limit
	// additively. Zero disables adaptation (fixed limit).
	LatencyTarget time.Duration
	// AdjustEvery is how many completed requests between AIMD
	// adjustments (default 16).
	AdjustEvery int
	// now is injectable for tests.
	now func() time.Time
}

// Limiter defaults.
const (
	DefaultInitialLimit = 8
	DefaultMinLimit     = 1
	DefaultMaxLimit     = 256
	DefaultQueueCap     = 64
	DefaultAdjustEvery  = 16
)

// ewmaAlpha weights the latency/cost moving averages: ~86% of the mass
// over the last 12 samples.
const ewmaAlpha = 0.15

// decreaseFactor is the multiplicative-decrease applied when observed
// latency exceeds the target; additive increase is +1.
const decreaseFactor = 0.75

// waiter is one queued request.
type waiter struct {
	ready chan struct{} // closed by the releaser handing over a slot
	cost  int64
}

// LimiterStats is a snapshot of the limiter's counters for /statsz.
type LimiterStats struct {
	Limit       int   `json:"limit"`
	Inflight    int   `json:"inflight"`
	QueueDepth  int   `json:"queue_depth"`
	QueueCap    int   `json:"queue_cap"`
	Admitted    int64 `json:"admitted"`
	Shed        int64 `json:"shed"`
	ShedQueue   int64 `json:"shed_queue_full"`
	ShedWait    int64 `json:"shed_deadline"`
	ShedCost    int64 `json:"shed_cost"`
	EWMANanos   int64 `json:"ewma_latency_ns"`
	LimitRaises int64 `json:"limit_raises"`
	LimitDrops  int64 `json:"limit_drops"`
}

// Limiter is an adaptive concurrency limiter: at most `limit` requests
// run at once, the next QueueCap wait FIFO, everything else is shed
// with a *ShedError. The limit adapts AIMD-style to the observed
// latency versus LatencyTarget (in the spirit of gradient/Vegas
// limiters: latency is the congestion signal). All methods are safe for
// concurrent use.
type Limiter struct {
	cfg LimiterConfig
	now func() time.Time

	mu       sync.Mutex
	limit    int
	inflight int
	queue    []*waiter

	// ewmaNS is the moving average of observed request latency; costEWMA
	// the moving average of admitted request cost — the calibration that
	// turns "queue of k requests" into a projected wait and "expensive"
	// into a comparable threshold.
	ewmaNS   float64
	costEWMA float64
	samples  int // completions since the last AIMD adjustment

	admitted, shed          int64
	shedQueue, shedWait     int64
	shedCost                int64
	limitRaises, limitDrops int64
}

// NewLimiter builds a Limiter, resolving zero config fields to
// defaults.
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.Initial <= 0 {
		cfg.Initial = DefaultInitialLimit
	}
	if cfg.Min <= 0 {
		cfg.Min = DefaultMinLimit
	}
	if cfg.Max <= 0 {
		cfg.Max = DefaultMaxLimit
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.Initial < cfg.Min {
		cfg.Initial = cfg.Min
	}
	if cfg.Initial > cfg.Max {
		cfg.Initial = cfg.Max
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.QueueCap < 0 {
		cfg.QueueCap = 0
	}
	if cfg.AdjustEvery <= 0 {
		cfg.AdjustEvery = DefaultAdjustEvery
	}
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	return &Limiter{cfg: cfg, now: now, limit: cfg.Initial}
}

// projectedWaitLocked estimates how long the (position+1)-th queued
// request waits for a slot: each of the `limit` lanes completes a
// request every ewma on average.
func (l *Limiter) projectedWaitLocked(position int) time.Duration {
	if l.ewmaNS <= 0 {
		return 0
	}
	lanes := l.limit
	if lanes < 1 {
		lanes = 1
	}
	// position queued ahead of us, plus our own spot.
	return time.Duration(l.ewmaNS * float64(position+1) / float64(lanes))
}

// retryAfterLocked is the Retry-After hint for a shed: the projected
// time for the whole backlog to drain, floored at 1s (the header has
// whole-second granularity and 0 invites an immediate stampede).
func (l *Limiter) retryAfterLocked() time.Duration {
	d := l.projectedWaitLocked(len(l.queue))
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Acquire admits the request or sheds it. On admission it returns a
// release func that MUST be called exactly once when the request
// completes; release records the observed latency for AIMD adaptation
// and hands the slot to the next queued waiter. cost is the caller's
// cheap work estimate (see server: structure size × mode weight); it
// only matters under queue pressure, where requests costing more than
// 4× the admitted average are shed first. A nil error from Acquire
// means admitted.
func (l *Limiter) Acquire(ctx context.Context, cost int64) (release func(), err error) {
	l.mu.Lock()
	if l.inflight < l.limit && len(l.queue) == 0 {
		l.inflight++
		l.admitted++
		start := l.now()
		l.mu.Unlock()
		return l.releaseFunc(start, cost), nil
	}
	// Slot unavailable: queue, or shed.
	if len(l.queue) >= l.cfg.QueueCap {
		l.shed++
		l.shedQueue++
		err := &ShedError{Reason: "queue-full", RetryAfter: l.retryAfterLocked()}
		l.mu.Unlock()
		return nil, err
	}
	// Shed expensive work first once the queue is half full: a request
	// costing over 4× the admitted average would hold a lane for that
	// multiple of the typical service time.
	if len(l.queue)*2 >= l.cfg.QueueCap && l.costEWMA > 0 && float64(cost) > 4*l.costEWMA {
		l.shed++
		l.shedCost++
		err := &ShedError{Reason: "cost", RetryAfter: l.retryAfterLocked()}
		l.mu.Unlock()
		return nil, err
	}
	// Deadline-aware: if the projected queue wait already exceeds the
	// request's remaining deadline, fail now instead of timing out in
	// line and wasting a slot on a doomed request.
	if deadline, ok := ctx.Deadline(); ok {
		if wait := l.projectedWaitLocked(len(l.queue)); wait > 0 && l.now().Add(wait).After(deadline) {
			l.shed++
			l.shedWait++
			err := &ShedError{Reason: "deadline", RetryAfter: l.retryAfterLocked()}
			l.mu.Unlock()
			return nil, err
		}
	}
	w := &waiter{ready: make(chan struct{}), cost: cost}
	l.queue = append(l.queue, w)
	l.mu.Unlock()

	select {
	case <-w.ready:
		// The releaser already counted us in-flight.
		l.mu.Lock()
		l.admitted++
		start := l.now()
		l.mu.Unlock()
		return l.releaseFunc(start, cost), nil
	case <-ctx.Done():
		l.mu.Lock()
		for i, q := range l.queue {
			if q == w {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				l.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		l.mu.Unlock()
		// Lost the race: a slot was already handed to us. Take it and
		// give it straight back so the chain keeps moving.
		<-w.ready
		l.mu.Lock()
		start := l.now()
		l.mu.Unlock()
		l.releaseFunc(start, cost)()
		return nil, ctx.Err()
	}
}

// releaseFunc returns the once-only completion callback for an admitted
// request.
func (l *Limiter) releaseFunc(start time.Time, cost int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			elapsed := l.now().Sub(start)
			l.mu.Lock()
			l.observeLocked(elapsed, cost)
			// Hand the slot over (queue non-empty), or free it.
			if len(l.queue) > 0 && l.inflight <= l.limit {
				w := l.queue[0]
				l.queue = l.queue[1:]
				close(w.ready) // inflight count transfers to the waiter
			} else {
				l.inflight--
			}
			l.mu.Unlock()
		})
	}
}

// observeLocked folds one completed request into the moving averages
// and runs the AIMD adjustment every AdjustEvery completions.
func (l *Limiter) observeLocked(elapsed time.Duration, cost int64) {
	ns := float64(elapsed.Nanoseconds())
	if l.ewmaNS == 0 {
		l.ewmaNS = ns
	} else {
		l.ewmaNS += ewmaAlpha * (ns - l.ewmaNS)
	}
	if cost > 0 {
		if l.costEWMA == 0 {
			l.costEWMA = float64(cost)
		} else {
			l.costEWMA += ewmaAlpha * (float64(cost) - l.costEWMA)
		}
	}
	if l.cfg.LatencyTarget <= 0 {
		return
	}
	l.samples++
	if l.samples < l.cfg.AdjustEvery {
		return
	}
	l.samples = 0
	target := float64(l.cfg.LatencyTarget.Nanoseconds())
	switch {
	case l.ewmaNS > target:
		// Multiplicative decrease: latency over target means the
		// concurrency is past the throughput knee.
		next := int(float64(l.limit) * decreaseFactor)
		if next < l.cfg.Min {
			next = l.cfg.Min
		}
		if next < l.limit {
			l.limit = next
			l.limitDrops++
		}
	case l.limit < l.cfg.Max:
		// Additive increase: probe for headroom one lane at a time.
		l.limit++
		l.limitRaises++
		// Wake a waiter into the new lane immediately.
		if len(l.queue) > 0 && l.inflight < l.limit {
			w := l.queue[0]
			l.queue = l.queue[1:]
			l.inflight++
			close(w.ready)
		}
	}
}

// Stats snapshots the limiter's counters.
func (l *Limiter) Stats() LimiterStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LimiterStats{
		Limit:       l.limit,
		Inflight:    l.inflight,
		QueueDepth:  len(l.queue),
		QueueCap:    l.cfg.QueueCap,
		Admitted:    l.admitted,
		Shed:        l.shed,
		ShedQueue:   l.shedQueue,
		ShedWait:    l.shedWait,
		ShedCost:    l.shedCost,
		EWMANanos:   int64(l.ewmaNS),
		LimitRaises: l.limitRaises,
		LimitDrops:  l.limitDrops,
	}
}

// Limit reports the current adaptive concurrency limit.
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

package overload

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic latency
// observations.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// The clock starts at real now so tests can still derive context
// deadlines (which the runtime checks against real time) from it.
func newFakeClock() *fakeClock { return &fakeClock{t: time.Now()} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestLimiterAdmitsUpToLimit(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 2, Min: 2, Max: 2, QueueCap: -1})
	r1, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Third concurrent request with no queue: shed, with a Retry-After.
	_, err = l.Acquire(context.Background(), 1)
	var shed *ShedError
	if !errors.As(err, &shed) || !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if shed.Reason != "queue-full" {
		t.Errorf("reason = %q, want queue-full", shed.Reason)
	}
	if shed.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", shed.RetryAfter)
	}
	r1()
	r2()
	// Capacity restored.
	r3, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r3()
	st := l.Stats()
	if st.Admitted != 3 || st.Shed != 1 || st.ShedQueue != 1 {
		t.Errorf("stats = %+v, want 3 admitted, 1 shed (queue-full)", st)
	}
}

func TestLimiterQueueHandsOverFIFO(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 1, Min: 1, Max: 1, QueueCap: 4})
	r1, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	started := make(chan struct{}, 3)
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			// Stagger entry so the FIFO order is deterministic.
			time.Sleep(time.Duration(i) * 20 * time.Millisecond)
			r, err := l.Acquire(context.Background(), 1)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}(i)
	}
	for i := 0; i < 3; i++ {
		<-started
	}
	time.Sleep(120 * time.Millisecond) // all three queued
	r1()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("dequeue order = %v, want [1 2 3]", order)
	}
}

func TestLimiterQueuedCancelReleasesSlot(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 1, Min: 1, Max: 1, QueueCap: 4})
	r1, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx, 1)
		errc <- err
	}()
	for l.Stats().QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued cancel: err = %v, want context.Canceled", err)
	}
	r1()
	// The abandoned waiter must not have consumed the slot.
	r2, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("slot leaked to canceled waiter: %v", err)
	}
	r2()
	if st := l.Stats(); st.Inflight != 0 || st.QueueDepth != 0 {
		t.Errorf("stats = %+v, want drained", st)
	}
}

// TestLimiterDeadlineAwareShed: once the limiter has a latency estimate,
// a queued request whose remaining deadline is shorter than the
// projected queue wait is shed immediately.
func TestLimiterDeadlineAwareShed(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(LimiterConfig{Initial: 1, Min: 1, Max: 1, QueueCap: 8, now: clock.now})
	// Teach the EWMA: one request taking 100ms.
	r, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	clock.advance(100 * time.Millisecond)
	r()

	// Occupy the only slot.
	r1, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	// A 10ms deadline cannot survive a ~100ms projected wait.
	ctx, cancel := context.WithDeadline(context.Background(), clock.now().Add(10*time.Millisecond))
	defer cancel()
	_, err = l.Acquire(ctx, 1)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if shed.Reason != "deadline" {
		t.Errorf("reason = %q, want deadline", shed.Reason)
	}
	if st := l.Stats(); st.ShedWait != 1 {
		t.Errorf("ShedWait = %d, want 1", st.ShedWait)
	}
	// A deadline with room queues instead.
	ctx2, cancel2 := context.WithDeadline(context.Background(), clock.now().Add(time.Hour))
	defer cancel2()
	done := make(chan error, 1)
	go func() {
		r2, err := l.Acquire(ctx2, 1)
		if err == nil {
			r2()
		}
		done <- err
	}()
	for l.Stats().QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	r1()
	if err := <-done; err != nil {
		t.Fatalf("roomy deadline was shed: %v", err)
	}
}

// TestLimiterCostShedUnderPressure: with the queue at least half full,
// requests costing over 4× the admitted average are shed first.
func TestLimiterCostShedUnderPressure(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(LimiterConfig{Initial: 1, Min: 1, Max: 1, QueueCap: 2, now: clock.now})
	// Calibrate the cost EWMA at ~10.
	r, err := l.Acquire(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	clock.advance(time.Millisecond)
	r()

	r1, err := l.Acquire(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	// Fill half the queue (1 of 2).
	queued := make(chan error, 1)
	go func() {
		r2, err := l.Acquire(context.Background(), 10)
		if err == nil {
			defer r2()
		}
		queued <- err
	}()
	for l.Stats().QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	// An expensive request (100 > 4×10) is shed; a cheap one queues.
	_, err = l.Acquire(context.Background(), 100)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "cost" {
		t.Fatalf("expensive under pressure: err = %v, want cost shed", err)
	}
	if st := l.Stats(); st.ShedCost != 1 {
		t.Errorf("ShedCost = %d, want 1", st.ShedCost)
	}
	r1()
	if err := <-queued; err != nil {
		t.Fatalf("cheap queued request failed: %v", err)
	}
}

// TestLimiterAIMD pins the adaptation: sustained latency above target
// shrinks the limit multiplicatively; below target it grows by one per
// adjustment window.
func TestLimiterAIMD(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(LimiterConfig{
		Initial: 8, Min: 1, Max: 16, QueueCap: 4,
		LatencyTarget: 10 * time.Millisecond, AdjustEvery: 4, now: clock.now,
	})
	slow := func(d time.Duration, n int) {
		for i := 0; i < n; i++ {
			r, err := l.Acquire(context.Background(), 1)
			if err != nil {
				t.Fatal(err)
			}
			clock.advance(d)
			r()
		}
	}
	slow(50*time.Millisecond, 8) // two windows over target
	if got := l.Limit(); got >= 8 {
		t.Errorf("limit = %d after sustained over-target latency, want < 8", got)
	}
	dropped := l.Limit()
	// Fast traffic grows it back one lane per window. The EWMA needs a
	// few samples to come back under target first.
	slow(time.Millisecond, 64)
	if got := l.Limit(); got <= dropped {
		t.Errorf("limit = %d after sustained under-target latency, want > %d", got, dropped)
	}
	st := l.Stats()
	if st.LimitDrops == 0 || st.LimitRaises == 0 {
		t.Errorf("stats = %+v, want both drops and raises recorded", st)
	}
}

// TestLimiterConcurrentStress hammers the limiter from many goroutines
// under -race, asserting the limit is never exceeded and nothing
// deadlocks or leaks.
func TestLimiterConcurrentStress(t *testing.T) {
	const limit = 4
	l := NewLimiter(LimiterConfig{Initial: limit, Min: limit, Max: limit, QueueCap: 64})
	var inflight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				r, err := l.Acquire(context.Background(), 1)
				if err != nil {
					continue // shed under queue pressure is fine
				}
				cur := inflight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				inflight.Add(-1)
				r()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > limit {
		t.Errorf("peak concurrency %d exceeded limit %d", p, limit)
	}
	if st := l.Stats(); st.Inflight != 0 || st.QueueDepth != 0 {
		t.Errorf("stats after drain = %+v, want empty", st)
	}
}

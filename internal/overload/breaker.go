package overload

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen is the sentinel under every breaker fast-fail: test
// with errors.Is. The concrete error is a *BreakerOpenError carrying a
// Retry-After hint.
var ErrBreakerOpen = errors.New("overload: circuit breaker open")

// BreakerOpenError reports a fast-failed request. It unwraps to
// ErrBreakerOpen.
type BreakerOpenError struct {
	// RetryAfter is the remaining cooldown before the breaker half-opens
	// (floored at 1s for the header's whole-second granularity).
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("overload: circuit breaker open, retry after %v", e.RetryAfter)
}

func (e *BreakerOpenError) Unwrap() error { return ErrBreakerOpen }

// RetryAfterHint exposes the Retry-After duration behind the
// cli.RetryAfter extraction without an import cycle.
func (e *BreakerOpenError) RetryAfterHint() time.Duration { return e.RetryAfter }

// BreakerState is the classic three-state machine.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig parameterizes a Breaker. The zero value resolves to the
// defaults below.
type BreakerConfig struct {
	// Threshold is how many consecutive failures open the breaker.
	Threshold int
	// Cooldown is how long an open breaker fast-fails before half-open
	// probes are allowed.
	Cooldown time.Duration
	// ProbeSuccesses is how many consecutive half-open successes close
	// the breaker again.
	ProbeSuccesses int
	// now is injectable for tests.
	now func() time.Time
}

// Breaker defaults.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
	DefaultProbeSuccesses   = 2
)

// BreakerCounters tallies one breaker's lifetime transitions and
// fast-fails; the server sums them across all per-fingerprint breakers
// for /statsz.
type BreakerCounters struct {
	Opened    int64 `json:"opened"`
	HalfOpens int64 `json:"half_opens"`
	Closed    int64 `json:"closed"`
	FastFails int64 `json:"fast_fails"`
}

// Breaker is one circuit breaker: closed (counting consecutive
// failures) → open (fast-failing for Cooldown) → half-open (one probe
// at a time; ProbeSuccesses consecutive successes close it, any failure
// re-opens it). The server keys one Breaker per structure fingerprint,
// so a pathological structure fast-fails instead of poisoning shared
// worker capacity. All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
	counters  BreakerCounters
}

// NewBreaker builds a Breaker, resolving zero config fields to
// defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultBreakerThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerCooldown
	}
	if cfg.ProbeSuccesses <= 0 {
		cfg.ProbeSuccesses = DefaultProbeSuccesses
	}
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	return &Breaker{cfg: cfg, now: now}
}

// Allow reports whether a request may proceed. While open it returns a
// *BreakerOpenError until the cooldown elapses, then transitions to
// half-open and admits one probe at a time (concurrent requests during
// a probe keep fast-failing — one bad structure must not re-flood the
// workers the moment the cooldown ends). Every admitted request must be
// answered by exactly one Record call.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		remaining := b.cfg.Cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			b.counters.FastFails++
			return &BreakerOpenError{RetryAfter: floorSecond(remaining)}
		}
		b.state = BreakerHalfOpen
		b.successes = 0
		b.counters.HalfOpens++
		b.probing = true
		return nil
	case BreakerHalfOpen:
		if b.probing {
			b.counters.FastFails++
			return &BreakerOpenError{RetryAfter: floorSecond(b.cfg.Cooldown)}
		}
		b.probing = true
		return nil
	}
	return nil
}

// Record reports the outcome of an admitted request. failure=true means
// a capacity-poisoning failure (panic, budget blowup, injected fault —
// the server classifies); ordinary usage errors and timeouts count as
// successes for the breaker's purposes.
func (b *Breaker) Record(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if failure {
			b.failures++
			if b.failures >= b.cfg.Threshold {
				b.openLocked()
			}
		} else {
			b.failures = 0
		}
	case BreakerHalfOpen:
		b.probing = false
		if failure {
			b.openLocked()
			return
		}
		b.successes++
		if b.successes >= b.cfg.ProbeSuccesses {
			b.state = BreakerClosed
			b.failures = 0
			b.counters.Closed++
		}
	case BreakerOpen:
		// A request admitted before the trip finishing now: ignore.
	}
}

// Cancel un-admits a request that passed Allow but never ran — the
// admission limiter shed it downstream. A half-open probe slot is
// released without counting success or failure; closed and open states
// have nothing to undo.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

func (b *Breaker) openLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.successes = 0
	b.probing = false
	b.counters.Opened++
}

// State reports the current state, observing cooldown expiry (an open
// breaker past its cooldown reports open until the next Allow actually
// transitions it — State is a pure read).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Counters snapshots the lifetime transition counters.
func (b *Breaker) Counters() BreakerCounters {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counters
}

// floorSecond floors d at one second, matching the Retry-After header's
// whole-second granularity.
func floorSecond(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	return d
}

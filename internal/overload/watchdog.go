package overload

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Tier is one cache-shedding rung of the watchdog: Shed drops some
// reclaimable state and reports how many entries it released. The
// server registers its tiers cheapest-first (per-session result caches
// → shared program cache → FIFO session eviction).
type Tier struct {
	Name string
	Shed func() int
}

// WatchdogConfig parameterizes a Watchdog. The zero value resolves to
// the defaults below (except Watermark, which must be set: a zero
// watermark disables the watchdog).
type WatchdogConfig struct {
	// Watermark is the heap-alloc high-water mark in bytes; a reading
	// above it trips the shedding ladder. 0 disables.
	Watermark uint64
	// Interval is how often the loop samples runtime.MemStats.
	Interval time.Duration
	// readMem is injectable for tests; defaults to runtime.ReadMemStats
	// HeapAlloc.
	readMem func() uint64
}

// DefaultWatchdogInterval is the sampling period of Watchdog.Run.
const DefaultWatchdogInterval = time.Second

// TierStats is one tier's trip accounting for /statsz.
type TierStats struct {
	Name  string `json:"name"`
	Trips int64  `json:"trips"`
	Shed  int64  `json:"shed_entries"`
}

// WatchdogStats is the watchdog's /statsz view.
type WatchdogStats struct {
	Watermark uint64      `json:"watermark_bytes"`
	LastHeap  uint64      `json:"last_heap_bytes"`
	Trips     int64       `json:"trips"`
	Tiers     []TierStats `json:"tiers"`
}

// Watchdog samples the heap against a watermark and sheds caches in
// tiers until the reading drops below it: tier 1 first, re-measure
// (after a forced GC so freed memory is visible), then tier 2, and so
// on. Every trip is counted per tier. All methods are safe for
// concurrent use.
type Watchdog struct {
	cfg     WatchdogConfig
	readMem func() uint64
	tiers   []Tier

	mu       sync.Mutex
	lastHeap uint64
	trips    int64
	perTier  []TierStats
}

// NewWatchdog builds a Watchdog over the given shedding tiers, applied
// in order.
func NewWatchdog(cfg WatchdogConfig, tiers []Tier) *Watchdog {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultWatchdogInterval
	}
	readMem := cfg.readMem
	if readMem == nil {
		readMem = func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.HeapAlloc
		}
	}
	per := make([]TierStats, len(tiers))
	for i, t := range tiers {
		per[i].Name = t.Name
	}
	return &Watchdog{cfg: cfg, readMem: readMem, tiers: tiers, perTier: per}
}

// Run samples every Interval until ctx is canceled. A zero watermark
// returns immediately.
func (w *Watchdog) Run(ctx context.Context) {
	if w.cfg.Watermark == 0 {
		return
	}
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.CheckOnce()
		}
	}
}

// CheckOnce takes one reading and, if it exceeds the watermark, walks
// the shedding ladder: shed a tier, force a GC so the release is
// visible, re-measure, stop as soon as the heap is back under the
// watermark. It returns how many tiers were shed (0 = no trip). Exposed
// for tests and for the soak harness's deterministic trips.
func (w *Watchdog) CheckOnce() int {
	if w.cfg.Watermark == 0 {
		return 0
	}
	heap := w.readMem()
	w.mu.Lock()
	w.lastHeap = heap
	w.mu.Unlock()
	if heap <= w.cfg.Watermark {
		return 0
	}
	w.mu.Lock()
	w.trips++
	w.mu.Unlock()
	shedTiers := 0
	for i, tier := range w.tiers {
		n := tier.Shed()
		shedTiers++
		w.mu.Lock()
		w.perTier[i].Trips++
		w.perTier[i].Shed += int64(n)
		w.mu.Unlock()
		runtime.GC()
		heap = w.readMem()
		w.mu.Lock()
		w.lastHeap = heap
		w.mu.Unlock()
		if heap <= w.cfg.Watermark {
			break
		}
	}
	return shedTiers
}

// Stats snapshots the watchdog's accounting.
func (w *Watchdog) Stats() WatchdogStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	tiers := make([]TierStats, len(w.perTier))
	copy(tiers, w.perTier)
	return WatchdogStats{
		Watermark: w.cfg.Watermark,
		LastHeap:  w.lastHeap,
		Trips:     w.trips,
		Tiers:     tiers,
	}
}

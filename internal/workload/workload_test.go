package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/primality"
	"repro/internal/tree"
)

func TestBalancedSchemaShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, nFDs := range []int{1, 2, 4, 11} {
		s, d, err := BalancedSchema(nFDs, rng)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumFDs() != nFDs {
			t.Fatalf("#FD = %d, want %d", s.NumFDs(), nFDs)
		}
		if s.NumAttrs() != 3*nFDs {
			t.Fatalf("#Att = %d, want %d", s.NumAttrs(), 3*nFDs)
		}
		if w := d.Width(); w > 3 {
			t.Fatalf("width = %d, want ≤ 3 (Table 1 uses tw 3)", w)
		}
		if err := d.Validate(s.ToStructure()); err != nil {
			t.Fatalf("decomposition invalid: %v", err)
		}
	}
}

func TestBalancedSchemaNodeKindsMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	_, d, err := BalancedSchema(7, rng)
	if err != nil {
		t.Fatal(err)
	}
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[tree.Kind]int{}
	for _, n := range nice.Nodes {
		kinds[n.Kind]++
	}
	for _, k := range []tree.Kind{tree.KindLeaf, tree.KindIntroduce, tree.KindForget, tree.KindBranch} {
		if kinds[k] == 0 {
			t.Fatalf("node kind %v absent; kinds = %v", k, kinds)
		}
	}
}

// Property: the DP primality on generated workloads agrees with brute
// force (kept small so the exponential oracle stays cheap).
func TestQuickWorkloadPrimality(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nFDs := rng.Intn(3) + 1 // up to 9 attributes
		s, d, err := BalancedSchema(nFDs, rng)
		if err != nil {
			return false
		}
		in, err := primality.NewInstanceWithDecomposition(s, d)
		if err != nil {
			return false
		}
		primes, err := in.Enumerate()
		if err != nil {
			return false
		}
		brute, err := s.PrimesBruteForce()
		if err != nil {
			return false
		}
		return primes.Equal(brute)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(97))}); err != nil {
		t.Fatal(err)
	}
}

func TestColorableGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ColorableGraph(30, 3, rng)
	if g.N() != 30 {
		t.Fatalf("N = %d", g.N())
	}
}

func TestTable1FDs(t *testing.T) {
	if len(Table1FDs) != 11 || Table1FDs[0] != 1 || Table1FDs[10] != 31 {
		t.Fatalf("Table1FDs = %v", Table1FDs)
	}
}

// Package stage defines the stage vocabulary of the Corollary 4.6
// pipeline (decompose → normalize → build τ_td → compile → evaluate)
// together with a stage-tagged error taxonomy and a lightweight
// per-stage trace. It is a leaf package: both internal/core and
// internal/session import it, so neither needs to import the other to
// agree on stage names.
package stage

import (
	"fmt"
	"strings"
	"time"
)

// Stage names one phase of the solver pipeline. The constants below
// cover every long-running loop that honors context cancellation.
type Stage string

const (
	// Decompose covers tree-decomposition construction: elimination
	// orderings, triangulation and decomposition build.
	Decompose Stage = "decompose"
	// NormalizeTuple covers normalization to the tuple normal form of
	// Definition 2.3 / Proposition 2.4.
	NormalizeTuple Stage = "normalize-tuple"
	// NormalizeNice covers normalization to the nice form of Section 5.
	NormalizeNice Stage = "normalize-nice"
	// BuildTD covers construction of the τ_td structure of Section 4.
	BuildTD Stage = "build-td"
	// Compile covers MSO-to-datalog compilation (Theorem 4.5),
	// including type saturation.
	Compile Stage = "compile"
	// Eval covers datalog evaluation, both semi-naive stratified
	// evaluation and the quasi-guarded grounding path of Theorem 4.4.
	Eval Stage = "eval"
	// DP covers the chain-parallel scheduling substrate (dp.Schedule)
	// the Section 5/6 solvers run on.
	DP Stage = "dp"
	// Solver covers the semiring problem algebra of internal/solver:
	// the generic evaluator that runs one Problem in decision, counting
	// and optimization modes, including witness reconstruction.
	Solver Stage = "solver"
	// MSOEval covers the naive MSO model-checking evaluator used by
	// the compiler's witness oracle and cmd/msoeval.
	MSOEval Stage = "mso-eval"
	// Game covers the game-theoretic MSO backend (backend/game): lazy
	// model-checking-game exploration over the nice decomposition.
	Game Stage = "game"
)

// Error tags an underlying error with the pipeline stage it escaped
// from. It unwraps, so errors.Is(err, context.Canceled) and
// errors.As(err, *stage.Error) both work on the same value.
type Error struct {
	Stage Stage
	Err   error
}

func (e *Error) Error() string {
	return fmt.Sprintf("stage %s: %v", e.Stage, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Wrap tags err with a stage. A nil err stays nil, and an error that
// already carries a stage tag is returned unchanged: the innermost
// stage — the loop that actually observed the cancellation — wins.
func Wrap(s Stage, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*Error); ok { //nolint:errorlint // deliberate: only an explicit outer tag is checked
		return err
	}
	return &Error{Stage: s, Err: err}
}

// Of reports the stage tag of err, or "" if err carries none.
func Of(err error) Stage {
	for err != nil {
		if se, ok := err.(*Error); ok { //nolint:errorlint // manual unwrap loop
			return se.Stage
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return ""
		}
		err = u.Unwrap()
	}
	return ""
}

// Stat records one stage execution: how long it took, how big its
// output was (stage-specific units, e.g. nodes or facts) and whether
// it was served from a session cache.
type Stat struct {
	Stage    Stage
	Wall     time.Duration
	Size     int
	CacheHit bool
	// Detail annotates the stat with a stage-specific note — e.g. which
	// rung of the decomposition degradation ladder produced the result.
	Detail string
}

// Trace accumulates the stats of one pipeline run in execution order.
type Trace struct {
	Stats []Stat
}

// Record appends a stat for a completed stage.
func (t *Trace) Record(s Stage, wall time.Duration, size int, cacheHit bool) {
	t.RecordDetail(s, wall, size, cacheHit, "")
}

// RecordDetail is Record with a stage-specific annotation (e.g. the
// degradation-ladder rung that produced a decomposition).
func (t *Trace) RecordDetail(s Stage, wall time.Duration, size int, cacheHit bool, detail string) {
	if t == nil {
		return
	}
	t.Stats = append(t.Stats, Stat{Stage: s, Wall: wall, Size: size, CacheHit: cacheHit, Detail: detail})
}

// Time runs f, records its wall time under stage s and returns f's
// error tagged with s (unless already tagged deeper).
func (t *Trace) Time(s Stage, size func() int, f func() error) error {
	start := time.Now()
	err := f()
	n := 0
	if size != nil && err == nil {
		n = size()
	}
	t.Record(s, time.Since(start), n, false)
	return Wrap(s, err)
}

// Total returns the sum of all recorded wall times.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	var sum time.Duration
	for _, s := range t.Stats {
		sum += s.Wall
	}
	return sum
}

// String formats the trace as one line per stage, e.g.
//
//	decompose        1.2ms  size=17
//	compile           12ms  size=240  (cached)
func (t *Trace) String() string {
	if t == nil || len(t.Stats) == 0 {
		return "(empty trace)"
	}
	var b strings.Builder
	for _, s := range t.Stats {
		fmt.Fprintf(&b, "%-16s %10s  size=%d", s.Stage, s.Wall.Round(time.Microsecond), s.Size)
		if s.Detail != "" {
			fmt.Fprintf(&b, "  [%s]", s.Detail)
		}
		if s.CacheHit {
			b.WriteString("  (cached)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package stage

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrBudgetExceeded is the sentinel under every budget violation: test
// with errors.Is. The concrete error is a *BudgetError naming the
// exhausted dimension, and it arrives stage-tagged (wrapped in a
// *Error) like every other pipeline failure.
var ErrBudgetExceeded = errors.New("resource budget exceeded")

// Budget caps the three blowup points of the pipeline — datalog
// grounding (Theorem 4.4's |P|·|A| ground program), MSO k-type
// enumeration (non-elementary in the formula, Theorem 4.5) and DP table
// construction — plus a wall-clock deadline. The paper warns that the
// generic transformation is "very expensive"; a Budget turns the
// resulting OOM/hang failure modes into prompt, stage-tagged errors.
//
// A zero cap means "unlimited" for that dimension, and a nil *Budget is
// fully unlimited; every method is nil-safe. Consumption is tracked
// with atomic counters, so one Budget may be shared by the parallel
// workers of a single run.
//
// Contract: a Budget is a SINGLE-RUN tally. The counters only ever go
// up, so attaching one Budget to a second run charges that run for the
// first run's consumption and silently tightens the effective caps
// until every run fails with a spurious *BudgetError (an HTTP server
// would turn these into spurious 429s). Hand each run a freshly minted
// Budget — servers mint one per request (see cmd/monadicd) — or call
// Reset between runs when deliberately reusing one value.
type Budget struct {
	// MaxGroundAtoms caps distinct ground intensional atoms interned
	// while grounding a quasi-guarded program.
	MaxGroundAtoms int64
	// MaxStates caps interned MSO k-types during compilation.
	MaxStates int64
	// MaxTableEntries caps the total states across all DP tables of one
	// RunUp/RunDown pass.
	MaxTableEntries int64
	// MaxStreamTuples caps the rows streamed through the datalog
	// engine's relational-algebra operator pipelines during one
	// evaluation — the streaming engine's work meter, replacing the
	// buffered-tuple counts it no longer accumulates. Charged in
	// batches, so a violation may be detected up to one poll interval
	// (~1024 rows) past the cap.
	MaxStreamTuples int64
	// MaxGamePositions caps interned game positions (behavior-tree
	// nodes) explored by the game-theoretic backend — that backend's
	// blowup point, playing the role MaxStates plays for the automaton
	// backend. Same contract as the other caps: the first charge past
	// the limit stops the run with a *BudgetError reporting
	// Used = Limit+1.
	MaxGamePositions int64
	// Deadline, when nonzero, bounds wall-clock time: the pipeline
	// derives a context deadline from it at the run boundary.
	Deadline time.Time

	groundAtoms   atomic.Int64
	states        atomic.Int64
	tableEntries  atomic.Int64
	streamTuples  atomic.Int64
	gamePositions atomic.Int64
}

// BudgetError reports which dimension of a Budget was exhausted. It
// unwraps to ErrBudgetExceeded.
type BudgetError struct {
	// Dimension is "ground-atoms", "states", "table-entries",
	// "stream-tuples" or "game-positions".
	Dimension string
	// Used and Limit are the consumption at the moment of violation.
	Used, Limit int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("%s: %s %d exceeds limit %d", ErrBudgetExceeded, e.Dimension, e.Used, e.Limit)
}

func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

func charge(counter *atomic.Int64, limit int64, n int, dim string) error {
	if limit <= 0 {
		return nil
	}
	used := counter.Add(int64(n))
	if used > limit {
		return &BudgetError{Dimension: dim, Used: used, Limit: limit}
	}
	return nil
}

// AddGroundAtoms charges n ground atoms against the budget and returns
// a *BudgetError once the cap is exceeded. Nil-safe.
func (b *Budget) AddGroundAtoms(n int) error {
	if b == nil {
		return nil
	}
	return charge(&b.groundAtoms, b.MaxGroundAtoms, n, "ground-atoms")
}

// AddStates charges n interned types/states against the budget.
func (b *Budget) AddStates(n int) error {
	if b == nil {
		return nil
	}
	return charge(&b.states, b.MaxStates, n, "states")
}

// AddTableEntries charges n DP table entries against the budget.
func (b *Budget) AddTableEntries(n int) error {
	if b == nil {
		return nil
	}
	return charge(&b.tableEntries, b.MaxTableEntries, n, "table-entries")
}

// AddStreamTuples charges n streamed rows against the budget.
func (b *Budget) AddStreamTuples(n int64) error {
	if b == nil {
		return nil
	}
	if b.MaxStreamTuples <= 0 {
		return nil
	}
	used := b.streamTuples.Add(n)
	if used > b.MaxStreamTuples {
		return &BudgetError{Dimension: "stream-tuples", Used: used, Limit: b.MaxStreamTuples}
	}
	return nil
}

// AddGamePositions charges n interned game positions against the
// budget.
func (b *Budget) AddGamePositions(n int) error {
	if b == nil {
		return nil
	}
	return charge(&b.gamePositions, b.MaxGamePositions, n, "game-positions")
}

// GamePositionsUsed reports the game positions tallied so far. It is a
// separate accessor rather than a fourth Used() return so existing
// callers keep compiling.
func (b *Budget) GamePositionsUsed() int64 {
	if b == nil {
		return 0
	}
	return b.gamePositions.Load()
}

// StreamTuplesUsed reports the streamed rows tallied so far.
func (b *Budget) StreamTuplesUsed() int64 {
	if b == nil {
		return 0
	}
	return b.streamTuples.Load()
}

// CheckTableEntries reports whether extra further table entries on top
// of those already committed would exceed the cap, without committing
// them. The DP runners use it to poll mid-node, so a blowup inside one
// branch product aborts long before the node's full table exists.
func (b *Budget) CheckTableEntries(extra int) error {
	if b == nil || b.MaxTableEntries <= 0 {
		return nil
	}
	if used := b.tableEntries.Load() + int64(extra); used > b.MaxTableEntries {
		return &BudgetError{Dimension: "table-entries", Used: used, Limit: b.MaxTableEntries}
	}
	return nil
}

// Used reports the consumption tallied so far, for tests and traces.
func (b *Budget) Used() (groundAtoms, states, tableEntries int64) {
	if b == nil {
		return 0, 0, 0
	}
	return b.groundAtoms.Load(), b.states.Load(), b.tableEntries.Load()
}

// Reset zeroes the consumption counters so the Budget can meter a fresh
// run with the same caps.
func (b *Budget) Reset() {
	if b == nil {
		return
	}
	b.groundAtoms.Store(0)
	b.states.Store(0)
	b.tableEntries.Store(0)
	b.streamTuples.Store(0)
	b.gamePositions.Store(0)
}

// Uniform returns a Budget capping the materialization dimensions
// (ground atoms, states, table entries, game positions) at n (0 = nil,
// i.e. unlimited) — the shape behind the CLI tools' -budget flag.
// Stream tuples are a work meter, not a materialization, and stay
// unlimited here; set MaxStreamTuples explicitly to cap them.
func Uniform(n int64) *Budget {
	if n <= 0 {
		return nil
	}
	return &Budget{MaxGroundAtoms: n, MaxStates: n, MaxTableEntries: n, MaxGamePositions: n}
}

// budgetKey carries a *Budget through a context.
type budgetKey struct{}

// WithBudget attaches b to the context so the lower pipeline layers
// (datalog grounding, type enumeration, DP runners) can meter their
// work without widening every signature. A nil b returns ctx unchanged.
// When b carries a Deadline, the caller at the run boundary is
// responsible for deriving a context deadline (see ApplyDeadline).
func WithBudget(ctx context.Context, b *Budget) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom extracts the budget attached by WithBudget, or nil.
func BudgetFrom(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}

// ApplyDeadline derives a context honoring b.Deadline (if set and
// earlier than any existing deadline) and attaches b to the result. The
// returned cancel func must be called; it is a no-op closure when no
// deadline applies.
func ApplyDeadline(ctx context.Context, b *Budget) (context.Context, context.CancelFunc) {
	ctx = WithBudget(ctx, b)
	if b == nil || b.Deadline.IsZero() {
		return ctx, func() {}
	}
	if cur, ok := ctx.Deadline(); ok && cur.Before(b.Deadline) {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, b.Deadline)
}

package stage

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a recovered panic converted into an error at a pipeline
// stage boundary, with the stack captured at recovery time. The cmd/*
// tools map it to a dedicated exit code and print only its one-line
// message; the stack is available programmatically via Stack.
type PanicError struct {
	// Value is the value the code panicked with.
	Value any
	// Stack is the goroutine stack captured inside the recover.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("recovered panic: %v", e.Value)
}

// NewPanicError captures the current stack for a value just recovered.
// Call it inside the deferred recover, before the stack unwinds further.
func NewPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// RecoverTo converts an in-flight panic into a stage-tagged *PanicError
// assigned through errp, for use as
//
//	defer stage.RecoverTo(stage.Compile, &err)
//
// at a stage boundary. When the stage is tracked in a variable, use the
// pointer form RecoverAt so the innermost stage at panic time wins. An
// existing error is never overwritten unless a panic actually occurred.
func RecoverTo(s Stage, errp *error) {
	if r := recover(); r != nil {
		*errp = Wrap(s, NewPanicError(r))
	}
}

// RecoverAt is RecoverTo reading the stage from *sp at panic time, so a
// single deferred call can attribute the panic to whichever stage was
// running:
//
//	cur := stage.Decompose
//	defer stage.RecoverAt(&cur, &err)
//	...
//	cur = stage.Compile // advance as the pipeline progresses
func RecoverAt(sp *Stage, errp *error) {
	if r := recover(); r != nil {
		*errp = Wrap(*sp, NewPanicError(r))
	}
}

// Guard runs f, converting a panic into a stage-tagged *PanicError and
// tagging f's ordinary error with s (innermost tag wins, as in Wrap).
func Guard(s Stage, f func() error) (err error) {
	defer RecoverTo(s, &err)
	return Wrap(s, f())
}

package stage

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBudgetReuseWithoutResetAccumulates pins the single-run contract:
// a Budget that admitted a full run once rejects an identical second
// run unless Reset is called in between. This is the failure mode a
// server hits if it attaches one Budget to multiple requests.
func TestBudgetReuseWithoutResetAccumulates(t *testing.T) {
	b := &Budget{MaxGroundAtoms: 10, MaxStates: 10, MaxTableEntries: 10}

	run := func() error {
		if err := b.AddGroundAtoms(8); err != nil {
			return err
		}
		if err := b.AddStates(8); err != nil {
			return err
		}
		return b.AddTableEntries(8)
	}

	if err := run(); err != nil {
		t.Fatalf("first run within caps failed: %v", err)
	}
	err := run()
	if err == nil {
		t.Fatal("second run on a reused Budget succeeded; the tally must accumulate")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("second run error %v does not wrap ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("second run error %v is not a *BudgetError", err)
	}

	b.Reset()
	if err := run(); err != nil {
		t.Fatalf("run after Reset failed: %v (Reset must clear the tally)", err)
	}

	ga, st, te := b.Used()
	if ga != 8 || st != 8 || te != 8 {
		t.Fatalf("Used() = %d/%d/%d after one post-Reset run, want 8/8/8", ga, st, te)
	}
}

// TestBudgetCheckTableEntriesDoesNotCommit pins that the mid-node poll
// never charges the tally.
func TestBudgetCheckTableEntriesDoesNotCommit(t *testing.T) {
	b := &Budget{MaxTableEntries: 10}
	if err := b.CheckTableEntries(9); err != nil {
		t.Fatalf("check within cap failed: %v", err)
	}
	if err := b.CheckTableEntries(11); err == nil {
		t.Fatal("check beyond cap succeeded")
	}
	if _, _, te := b.Used(); te != 0 {
		t.Fatalf("CheckTableEntries committed %d entries", te)
	}
}

// TestUniformAndDeadline pins the CLI/server admission shape: Uniform(0)
// is nil (unlimited) and ApplyDeadline derives a context deadline.
func TestUniformAndDeadline(t *testing.T) {
	if Uniform(0) != nil {
		t.Fatal("Uniform(0) is not nil")
	}
	b := Uniform(5)
	if b.MaxGroundAtoms != 5 || b.MaxStates != 5 || b.MaxTableEntries != 5 {
		t.Fatalf("Uniform(5) caps = %+v", b)
	}
	b.Deadline = time.Now().Add(time.Hour)
	ctx, cancel := ApplyDeadline(context.Background(), b)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("ApplyDeadline did not set a context deadline")
	}
	if BudgetFrom(ctx) != b {
		t.Fatal("ApplyDeadline did not attach the budget")
	}
}

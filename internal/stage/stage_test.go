package stage

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestWrapNil(t *testing.T) {
	if err := Wrap(Decompose, nil); err != nil {
		t.Fatalf("Wrap(nil) = %v, want nil", err)
	}
}

func TestWrapKeepsInnermostStage(t *testing.T) {
	inner := Wrap(Eval, context.Canceled)
	outer := Wrap(Compile, inner)
	if outer != inner {
		t.Fatalf("outer wrap replaced inner tag: %v", outer)
	}
	if got := Of(outer); got != Eval {
		t.Fatalf("Of = %q, want %q", got, Eval)
	}
	if !errors.Is(outer, context.Canceled) {
		t.Fatal("stage error does not unwrap to context.Canceled")
	}
	var se *Error
	if !errors.As(outer, &se) || se.Stage != Eval {
		t.Fatalf("errors.As gave stage %q", se.Stage)
	}
}

func TestOfThroughFmtWrap(t *testing.T) {
	err := fmt.Errorf("outer: %w", Wrap(DP, context.DeadlineExceeded))
	if got := Of(err); got != DP {
		t.Fatalf("Of through %%w = %q, want %q", got, DP)
	}
	if Of(errors.New("plain")) != "" {
		t.Fatal("Of(plain) should be empty")
	}
}

func TestTraceRecordAndString(t *testing.T) {
	var tr Trace
	tr.Record(Decompose, 2*time.Millisecond, 17, false)
	tr.Record(Compile, time.Millisecond, 240, true)
	if tr.Total() != 3*time.Millisecond {
		t.Fatalf("Total = %v", tr.Total())
	}
	s := tr.String()
	if !strings.Contains(s, "decompose") || !strings.Contains(s, "(cached)") {
		t.Fatalf("unexpected trace string:\n%s", s)
	}
	var nilTrace *Trace
	nilTrace.Record(Eval, time.Second, 1, false) // must not panic
	if nilTrace.Total() != 0 || nilTrace.String() == "" {
		t.Fatal("nil trace accessors misbehaved")
	}
}

func TestTraceTime(t *testing.T) {
	var tr Trace
	err := tr.Time(BuildTD, func() int { return 5 }, func() error { return nil })
	if err != nil {
		t.Fatalf("Time = %v", err)
	}
	if len(tr.Stats) != 1 || tr.Stats[0].Stage != BuildTD || tr.Stats[0].Size != 5 {
		t.Fatalf("unexpected stats %+v", tr.Stats)
	}
	sentinel := errors.New("boom")
	err = tr.Time(Eval, nil, func() error { return sentinel })
	if Of(err) != Eval || !errors.Is(err, sentinel) {
		t.Fatalf("Time error = %v", err)
	}
}

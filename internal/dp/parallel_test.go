package dp

import (
	"math/bits"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/tree"
)

// twoColCostHandlers wraps the 2-coloring DP as an optimizing DP whose
// cost is the number of vertices assigned color 1 (so RunUpMin computes,
// per root state, the minimum size of color class 1).
func twoColCostHandlers(g *graph.Graph) CostHandlers[uint32] {
	h := twoColHandlers(g)
	lift := func(states []uint32, cost func(uint32) int) []Costed[uint32] {
		out := make([]Costed[uint32], len(states))
		for i, s := range states {
			out[i] = Costed[uint32]{State: s, Cost: cost(s)}
		}
		return out
	}
	ones := func(s uint32) int { return bits.OnesCount32(s) }
	return CostHandlers[uint32]{
		Leaf: func(node int, bag []int) []Costed[uint32] {
			return lift(h.Leaf(node, bag), ones)
		},
		Introduce: func(node int, bag []int, elem int, child uint32) []Costed[uint32] {
			return lift(h.Introduce(node, bag, elem, child), func(s uint32) int {
				return ones(s) - ones(child)
			})
		},
		Forget: func(node int, bag []int, elem int, child uint32) []Costed[uint32] {
			return lift(h.Forget(node, bag, elem, child), func(uint32) int { return 0 })
		},
		Branch: func(node int, bag []int, s1, s2 uint32) []Costed[uint32] {
			// The bag contribution is counted in both children once.
			return lift(h.Branch(node, bag, s1, s2), func(uint32) int { return -ones(s1) })
		},
	}
}

// TestParallelMatchesSequential pins the determinism contract: every
// runner produces identical tables — including the derivation Order and
// provenance — at worker counts 1, 2 and 8, on randomized partial-k-tree
// decompositions large enough to cross the parallel threshold.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	t.Cleanup(func() { SetMaxWorkers(SetMaxWorkers(1)) })
	for trial := 0; trial < 4; trial++ {
		g := graph.PartialKTree(40+trial*20, 3, 0.3, rng)
		d, err := decompose.Graph(g, decompose.MinFill)
		if err != nil {
			t.Fatal(err)
		}
		nice, err := tree.NormalizeNice(d, tree.NiceOptions{BranchGuard: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		if nice.Len() < minParallelNodes {
			t.Fatalf("trial %d: decomposition too small (%d nodes) to exercise the pool", trial, nice.Len())
		}
		h := twoColHandlers(g)
		ch := twoColCostHandlers(g)

		prev := SetMaxWorkers(1)
		upSeq, err := RunUp(nice, h)
		if err != nil {
			t.Fatal(err)
		}
		downSeq, err := RunDown(nice, h, upSeq)
		if err != nil {
			t.Fatal(err)
		}
		countSeq, err := RunUpCount(nice, h)
		if err != nil {
			t.Fatal(err)
		}
		minSeq, err := RunUpMin(nice, ch)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 8} {
			SetMaxWorkers(w)
			up, err := RunUp(nice, h)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(up, upSeq) {
				t.Fatalf("trial %d: RunUp tables differ at %d workers", trial, w)
			}
			down, err := RunDown(nice, h, up)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(down, downSeq) {
				t.Fatalf("trial %d: RunDown tables differ at %d workers", trial, w)
			}
			count, err := RunUpCount(nice, h)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(count, countSeq) {
				t.Fatalf("trial %d: RunUpCount tables differ at %d workers", trial, w)
			}
			mn, err := RunUpMin(nice, ch)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(mn, minSeq) {
				t.Fatalf("trial %d: RunUpMin tables differ at %d workers", trial, w)
			}
		}
		SetMaxWorkers(prev)
	}
}

// TestConcurrentRunUpSharedDecomposition drives several concurrent RunUp
// calls over one shared decomposition and plan — the scenario the plan
// cache and worker pool must survive; run under -race in CI.
func TestConcurrentRunUpSharedDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.PartialKTree(80, 3, 0.3, rng)
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{BranchGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	h := twoColHandlers(g)
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	want, err := RunUp(nice, h)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := RunUp(nice, h)
			if err != nil {
				errs[i] = err
				return
			}
			if !reflect.DeepEqual(got, want) {
				errs[i] = errMismatch
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}

var errMismatch = errString("concurrent RunUp produced different tables")

type errString string

func (e errString) Error() string { return string(e) }

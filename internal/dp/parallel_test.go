package dp

import (
	"context"
	"hash/fnv"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/tree"
)

// niceFor builds a nice decomposition of g for scheduler tests.
func niceFor(t testing.TB, g *graph.Graph, opts tree.NiceOptions) *tree.Decomposition {
	t.Helper()
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	nice, err := tree.NormalizeNice(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return nice
}

// hashDP is a miniature DP at the scheduler level: every node's value is
// a hash of its bag and its dependency values (children bottom-up,
// parent top-down). It is order-sensitive in exactly the way a real
// evaluator is — any node computed before its dependencies, or twice,
// changes the result — so equal outputs across worker counts pin both
// the dependency order and the exactly-once contract.
func hashDP(t *testing.T, d *tree.Decomposition, bags [][]int, down bool) []uint64 {
	t.Helper()
	vals := make([]uint64, d.Len())
	err := Schedule(context.Background(), d, down, func(v int) error {
		h := fnv.New64a()
		buf := []byte{byte(v), byte(v >> 8)}
		h.Write(buf)
		for _, e := range bags[v] {
			h.Write([]byte{byte(e), byte(e >> 8)})
		}
		mix := func(x uint64) {
			h.Write([]byte{byte(x), byte(x >> 8), byte(x >> 16), byte(x >> 24),
				byte(x >> 32), byte(x >> 40), byte(x >> 48), byte(x >> 56)})
		}
		if down {
			if p := d.Nodes[v].Parent; p >= 0 {
				mix(vals[p])
			}
		} else {
			for _, c := range d.Nodes[v].Children {
				mix(vals[c])
			}
		}
		if vals[v] != 0 {
			t.Errorf("node %d computed twice", v)
		}
		vals[v] = h.Sum64()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

// TestParallelMatchesSequential pins the determinism contract of the
// scheduler: both passes produce identical per-node values at worker
// counts 1, 2 and 8, on randomized partial-k-tree decompositions large
// enough to cross the parallel threshold. Run under -race in CI.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	t.Cleanup(func() { SetMaxWorkers(SetMaxWorkers(1)) })
	for trial := 0; trial < 4; trial++ {
		g := graph.PartialKTree(40+trial*20, 3, 0.3, rng)
		nice := niceFor(t, g, tree.NiceOptions{BranchGuard: trial%2 == 0})
		if nice.Len() < minParallelNodes {
			t.Fatalf("trial %d: decomposition too small (%d nodes) to exercise the pool", trial, nice.Len())
		}
		bags, err := Bags(nice)
		if err != nil {
			t.Fatal(err)
		}
		prev := SetMaxWorkers(1)
		upSeq := hashDP(t, nice, bags, false)
		downSeq := hashDP(t, nice, bags, true)
		for _, w := range []int{2, 8} {
			SetMaxWorkers(w)
			if up := hashDP(t, nice, bags, false); !reflect.DeepEqual(up, upSeq) {
				t.Fatalf("trial %d: bottom-up values differ at %d workers", trial, w)
			}
			if down := hashDP(t, nice, bags, true); !reflect.DeepEqual(down, downSeq) {
				t.Fatalf("trial %d: top-down values differ at %d workers", trial, w)
			}
		}
		SetMaxWorkers(prev)
	}
}

// TestScheduleDependencyOrder asserts the ordering contract directly:
// bottom-up, every node runs strictly after all of its children;
// top-down, strictly after its parent — at full parallelism.
func TestScheduleDependencyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.PartialKTree(90, 3, 0.3, rng)
	nice := niceFor(t, g, tree.NiceOptions{BranchGuard: true})
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)
	for _, down := range []bool{false, true} {
		done := make([]atomic.Bool, nice.Len())
		err := Schedule(context.Background(), nice, down, func(v int) error {
			if down {
				if p := nice.Nodes[v].Parent; p >= 0 && !done[p].Load() {
					t.Errorf("down: node %d ran before parent %d", v, p)
				}
			} else {
				for _, c := range nice.Nodes[v].Children {
					if !done[c].Load() {
						t.Errorf("up: node %d ran before child %d", v, c)
					}
				}
			}
			if done[v].Swap(true) {
				t.Errorf("node %d scheduled twice (down=%v)", v, down)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := range done {
			if !done[v].Load() {
				t.Fatalf("node %d never scheduled (down=%v)", v, down)
			}
		}
	}
}

// TestBagsSortedAndChecked pins the Bags contract: sorted copies for a
// nice decomposition, the CheckNice verdict for a raw one.
func TestBagsSortedAndChecked(t *testing.T) {
	g := graph.Cycle(6)
	nice := niceFor(t, g, tree.NiceOptions{})
	bags, err := Bags(nice)
	if err != nil {
		t.Fatal(err)
	}
	if len(bags) != nice.Len() {
		t.Fatalf("got %d bags for %d nodes", len(bags), nice.Len())
	}
	for v, bag := range bags {
		if !sort.IntsAreSorted(bag) {
			t.Fatalf("bag of node %d not sorted: %v", v, bag)
		}
		if len(bag) != len(nice.Nodes[v].Bag) {
			t.Fatalf("bag of node %d has %d elems, node has %d", v, len(bag), len(nice.Nodes[v].Bag))
		}
	}
	raw, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bags(raw); err == nil {
		t.Fatal("raw decomposition accepted")
	}
	if err := Schedule(context.Background(), raw, false, func(int) error { return nil }); err == nil {
		t.Fatal("Schedule accepted a raw decomposition")
	}
}

// TestConcurrentScheduleSharedPlan drives several concurrent Schedule
// calls over one shared decomposition and cached plan — the scenario
// the plan cache and worker pool must survive; run under -race in CI.
func TestConcurrentScheduleSharedPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.PartialKTree(80, 3, 0.3, rng)
	nice := niceFor(t, g, tree.NiceOptions{BranchGuard: true})
	bags, err := Bags(nice)
	if err != nil {
		t.Fatal(err)
	}
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	want := hashDP(t, nice, bags, false)
	var wg sync.WaitGroup
	mismatch := make([]bool, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got := hashDP(t, nice, bags, false)
			mismatch[i] = !reflect.DeepEqual(got, want)
		}(i)
	}
	wg.Wait()
	for i, bad := range mismatch {
		if bad {
			t.Fatalf("goroutine %d: concurrent Schedule produced different values", i)
		}
	}
}

// Package dp is the execution substrate for dynamic programming over
// nice tree decompositions (Section 5's modified normal form): a cached
// per-decomposition plan (sorted bags, nice check, chain schedule) and a
// deterministic chain-parallel scheduler with a shared worker pool
// (SetMaxWorkers), panic containment, and fault-injection points.
//
// The problem semantics — how DP states propagate through leaf,
// introduce, forget and branch nodes — live in the semiring engine of
// internal/solver, which runs every Problem in decision, counting and
// optimization modes on top of Schedule. This package deliberately knows
// nothing about states or tables: each node is computed exactly once,
// by exactly one goroutine, from dependencies that are complete before
// it starts, so any evaluator that iterates its inputs deterministically
// gets byte-identical results at every worker count.
package dp

import (
	"context"

	"repro/internal/tree"
)

// Bags returns one sorted copy of every bag of a nice decomposition,
// indexed by node ID, served from the cached per-decomposition plan. It
// fails with the CheckNice verdict if d is not in the modified normal
// form. Callers must treat the returned slices as immutable: they are
// shared with every other runner using the same plan.
func Bags(d *tree.Decomposition) ([][]int, error) {
	p := planFor(d)
	if p.niceErr != nil {
		return nil, p.niceErr
	}
	return p.bags, nil
}

// Schedule executes compute(v) exactly once for every node of a nice
// decomposition, in dependency order, over the shared chain-parallel
// worker pool (SetMaxWorkers). Bottom-up (down=false) every node runs
// after its children; top-down (down=true) after its parent. Evaluators
// built on it — notably the semiring engine of internal/solver — inherit
// the cached plan, the deterministic chain schedule, panic containment,
// and the dp.node/dp.chain fault-injection points without
// reimplementing them.
//
// Cancellation: ctx is polled before every node, the pool drains
// without leaking goroutines, and the first error (unwrapped — callers
// add their own stage tag) is returned.
// compute is invoked from multiple goroutines when the worker cap is
// above 1 and must be safe for concurrent use; writes to disjoint
// per-node slots are safe because the scheduler orders a node strictly
// after its dependencies.
func Schedule(ctx context.Context, d *tree.Decomposition, down bool, compute func(v int) error) error {
	p := planFor(d)
	if p.niceErr != nil {
		return p.niceErr
	}
	return runChains(ctx, p, down, compute)
}

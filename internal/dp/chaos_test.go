package dp

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/stage"
	"repro/internal/testutil/leak"
)

// TestChaosScheduleNodeFault injects a fault at the per-node point of
// the parallel scheduler: the run must abort with the injected error,
// drain the pool, and leave the scheduler reusable.
func TestChaosScheduleNodeFault(t *testing.T) {
	defer faultinject.Reset()
	_, nice := cancelNice(t, 29, 120)
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)

	snap := leak.Before()
	faultinject.FailAt("dp.node", 5)
	err := Schedule(context.Background(), nice, false, func(int) error { return nil })
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	snap.Check(t)

	faultinject.Reset()
	if err := Schedule(context.Background(), nice, false, func(int) error { return nil }); err != nil {
		t.Fatalf("scheduler poisoned after injected fault: %v", err)
	}
}

// TestChaosScheduleChainFault injects at the per-chain scheduling
// point, exercising the abort protocol of the parallel scheduler
// itself.
func TestChaosScheduleChainFault(t *testing.T) {
	defer faultinject.Reset()
	_, nice := cancelNice(t, 31, 120)
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)

	snap := leak.Before()
	faultinject.FailAt("dp.chain", 2)
	err := Schedule(context.Background(), nice, false, func(int) error { return nil })
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	snap.Check(t)
}

// TestChaosSchedulePanicContained checks that a panic in a compute
// callback — evaluator and problem code is arbitrary user code running
// on a pool goroutine — comes back as a *stage.PanicError instead of
// crashing the process, with no goroutines left behind.
func TestChaosSchedulePanicContained(t *testing.T) {
	_, nice := cancelNice(t, 37, 120)
	// Serialize so exactly one deterministic call panics under -race.
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)

	snap := leak.Before()
	calls := 0
	err := Schedule(context.Background(), nice, false, func(int) error {
		if calls++; calls == 7 {
			panic("evaluator bug")
		}
		return nil
	})
	var pe *stage.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *stage.PanicError", err)
	}
	if pe.Value != "evaluator bug" || len(pe.Stack) == 0 {
		t.Fatalf("panic value %v, stack %d bytes", pe.Value, len(pe.Stack))
	}
	snap.Check(t)

	// The panic poisoned nothing: the same decomposition runs clean.
	if err := Schedule(context.Background(), nice, false, func(int) error { return nil }); err != nil {
		t.Fatalf("scheduler poisoned after panic: %v", err)
	}
}

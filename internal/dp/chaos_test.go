package dp

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/stage"
)

// waitGoroutines polls until the goroutine count drops back to base (or
// a bounded wait expires) and fails the test on a leak.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	for i := 0; i < 40 && runtime.NumGoroutine() > base; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > base {
		t.Fatalf("goroutine leak: %d before, %d after", base, after)
	}
}

// TestChaosDPNodeFault injects a fault inside the per-node worker loop
// of the parallel DP: the run must abort with a stage-tagged injected
// error, discard partial tables, drain the pool, and leave the runner
// reusable.
func TestChaosDPNodeFault(t *testing.T) {
	defer faultinject.Reset()
	g, nice := cancelNice(t, 29, 120)
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)

	before := runtime.NumGoroutine()
	faultinject.FailAt("dp.node", 5)
	tables, err := RunUpCtx(context.Background(), nice, twoColHandlers(g))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if got := stage.Of(err); got != stage.DP {
		t.Fatalf("tagged stage %q, want %q", got, stage.DP)
	}
	if tables != nil {
		t.Fatal("partial tables not discarded after injected fault")
	}
	waitGoroutines(t, before)

	faultinject.Reset()
	if _, err := RunUpCtx(context.Background(), nice, twoColHandlers(g)); err != nil {
		t.Fatalf("runner poisoned after injected fault: %v", err)
	}
}

// TestChaosDPChainFault injects at the per-chain scheduling point,
// exercising the abort protocol of the parallel scheduler itself.
func TestChaosDPChainFault(t *testing.T) {
	defer faultinject.Reset()
	g, nice := cancelNice(t, 31, 120)
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)

	before := runtime.NumGoroutine()
	faultinject.FailAt("dp.chain", 2)
	_, err := RunUpCtx(context.Background(), nice, twoColHandlers(g))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	waitGoroutines(t, before)
}

// TestChaosDPHandlerPanicContained checks that a panic in a problem
// handler — arbitrary user code running on a pool goroutine — comes back
// as a stage-tagged *stage.PanicError instead of crashing the process,
// with no goroutines left behind.
func TestChaosDPHandlerPanicContained(t *testing.T) {
	g, nice := cancelNice(t, 37, 120)
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)

	before := runtime.NumGoroutine()
	h := twoColHandlers(g)
	inner := h.Introduce
	calls := 0
	h.Introduce = func(node int, bag []int, elem int, child uint32) []uint32 {
		if calls++; calls == 7 {
			panic("handler bug")
		}
		return inner(node, bag, elem, child)
	}
	// The counter above is racy under 8 workers only in *which* call
	// panics, not whether one does; serialize to keep -race clean.
	SetMaxWorkers(1)
	_, err := RunUpCtx(context.Background(), nice, h)
	var pe *stage.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *stage.PanicError", err)
	}
	if got := stage.Of(err); got != stage.DP {
		t.Fatalf("tagged stage %q, want %q", got, stage.DP)
	}
	if pe.Value != "handler bug" || len(pe.Stack) == 0 {
		t.Fatalf("panic value %v, stack %d bytes", pe.Value, len(pe.Stack))
	}
	waitGoroutines(t, before)

	// The panic poisoned nothing: the same decomposition runs clean.
	if _, err := RunUpCtx(context.Background(), nice, twoColHandlers(g)); err != nil {
		t.Fatalf("runner poisoned after panic: %v", err)
	}
}

// TestBudgetTableEntries caps the DP table budget below what the run
// needs: the run must stop with a stage-tagged budget error, with
// consumption bounded near the limit (the bounded-memory property — the
// periodic in-node check fires long before the tables blow past the cap).
func TestBudgetTableEntries(t *testing.T) {
	g, nice := cancelNice(t, 41, 120)
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)

	// Establish the unconstrained total so the cap is genuinely binding.
	full, err := RunUpCtx(context.Background(), nice, twoColHandlers(g))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, tbl := range full {
		total += tbl.Len()
	}
	if total < 20 {
		t.Fatalf("workload too small to test the budget (total %d states)", total)
	}

	before := runtime.NumGoroutine()
	b := &stage.Budget{MaxTableEntries: int64(total / 4)}
	ctx := stage.WithBudget(context.Background(), b)
	tables, err := RunUpCtx(ctx, nice, twoColHandlers(g))
	if !errors.Is(err, stage.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	if got := stage.Of(err); got != stage.DP {
		t.Fatalf("tagged stage %q, want %q", got, stage.DP)
	}
	if tables != nil {
		t.Fatal("partial tables not discarded after budget violation")
	}
	var be *stage.BudgetError
	if !errors.As(err, &be) || be.Dimension != "table-entries" {
		t.Fatalf("err = %v, want table-entries BudgetError", err)
	}
	waitGoroutines(t, before)

	// A sufficient budget changes nothing about the result.
	b2 := &stage.Budget{MaxTableEntries: int64(total)}
	got, err := RunUpCtx(stage.WithBudget(context.Background(), b2), nice, twoColHandlers(g))
	if err != nil {
		t.Fatalf("run within budget: %v", err)
	}
	if len(got) != len(full) {
		t.Fatalf("budgeted run has %d tables, unbudgeted %d", len(got), len(full))
	}
	for v := range full {
		if !reflect.DeepEqual(got[v].Order, full[v].Order) {
			t.Fatalf("node %d: budgeted run diverged", v)
		}
	}
	if _, _, used := b2.Used(); used != int64(total) {
		t.Fatalf("budget accounting: used %d, want %d", used, total)
	}
}

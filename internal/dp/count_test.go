package dp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/tree"
)

// count2Colorings is the brute-force oracle for the weighted DP.
func count2Colorings(g *graph.Graph) uint64 {
	n := g.N()
	colors := make([]int, n)
	var count uint64
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			count++
			return
		}
		for c := 0; c <= 1; c++ {
			ok := true
			g.Neighbors(v).ForEach(func(u int) bool {
				if u < v && colors[u] == c {
					ok = false
					return false
				}
				return true
			})
			if ok {
				colors[v] = c
				rec(v + 1)
			}
		}
	}
	rec(0)
	return count
}

func TestRunUpCountKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		{"path3", graph.Path(3), 2},
		{"even cycle", graph.Cycle(4), 2},
		{"odd cycle", graph.Cycle(5), 0},
		{"two components", disconnected(), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nice := niceDecomposition(t, tc.g, tree.NiceOptions{})
			counts, err := RunUpCount(nice, twoColHandlers(tc.g))
			if err != nil {
				t.Fatal(err)
			}
			var total uint64
			for _, c := range counts[nice.Root] {
				total += c
			}
			if total != tc.want {
				t.Fatalf("count = %d, want %d", total, tc.want)
			}
		})
	}
}

func disconnected() *graph.Graph {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	return g
}

func TestRunUpCountRejectsRaw(t *testing.T) {
	g := graph.Path(3)
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUpCount(d, twoColHandlers(g)); err == nil {
		t.Fatal("raw decomposition accepted")
	}
}

// Property: weighted DP equals brute-force counting.
func TestQuickCountAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		g := graph.RandomTree(n, rng)
		for i := rng.Intn(n); i > 0; i-- {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		d, err := decompose.Graph(g, decompose.MinFill)
		if err != nil {
			return false
		}
		nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
		if err != nil {
			return false
		}
		counts, err := RunUpCount(nice, twoColHandlers(g))
		if err != nil {
			return false
		}
		var total uint64
		for _, c := range counts[nice.Root] {
			total += c
		}
		return total == count2Colorings(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(137))}); err != nil {
		t.Fatal(err)
	}
}

// TestCopyHandlers exercises the Copy node kind in all three runners,
// both with the default pass-through and a custom handler.
func TestCopyHandlers(t *testing.T) {
	g := graph.Cycle(4)
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	// BranchGuard inserts copy nodes above branch nodes.
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{BranchGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	hasCopy := false
	for _, n := range nice.Nodes {
		if n.Kind == tree.KindCopy {
			hasCopy = true
		}
	}
	if !hasCopy {
		t.Skip("no copy node produced for this decomposition")
	}
	h := twoColHandlers(g)

	// Default pass-through.
	up, err := RunUp(nice, h)
	if err != nil {
		t.Fatal(err)
	}
	if (up[nice.Root].Len() > 0) != bipartite(g) {
		t.Fatal("copy pass-through wrong in RunUp")
	}
	counts, err := RunUpCount(nice, h)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, c := range counts[nice.Root] {
		total += c
	}
	if total != count2Colorings(g) {
		t.Fatalf("count with copy nodes = %d", total)
	}
	if _, err := RunDown(nice, h, up); err != nil {
		t.Fatal(err)
	}

	// Custom copy handler that kills everything: no root states.
	h.Copy = func(_ int, _ []int, _ uint32) []uint32 { return nil }
	up2, err := RunUp(nice, h)
	if err != nil {
		t.Fatal(err)
	}
	if up2[nice.Root].Len() != 0 {
		t.Fatal("custom copy handler ignored in RunUp")
	}
	counts2, err := RunUpCount(nice, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts2[nice.Root]) != 0 {
		t.Fatal("custom copy handler ignored in RunUpCount")
	}
	hPass := twoColHandlers(g)
	upPass, err := RunUp(nice, hPass)
	if err != nil {
		t.Fatal(err)
	}
	hPass.Copy = func(_ int, _ []int, s uint32) []uint32 { return []uint32{s} }
	down, err := RunDown(nice, hPass, upPass)
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range nice.Leaves() {
		if (down[leaf].Len() > 0) != bipartite(g) {
			t.Fatal("custom copy handler wrong in RunDown")
		}
	}
}

func TestTablesStates(t *testing.T) {
	g := graph.Path(2)
	nice := niceDecomposition(t, g, tree.NiceOptions{})
	tables, err := RunUp(nice, twoColHandlers(g))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tables.States(nice.Root)); got != tables[nice.Root].Len() {
		t.Fatalf("States length %d", got)
	}
}

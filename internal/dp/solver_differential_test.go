// Differential tests pinning the generic semiring engine against this
// package's legacy special-purpose runners (RunUp decision tables,
// RunUpCount, RunUpMin): one problem expressed both ways must produce
// identical tables node by node. An external test package so it can
// import the solver, which is built on top of dp.
package dp_test

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/decompose"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/solver"
	"repro/internal/tree"
)

// The problem: proper 2-coloring with cost = number of color-1
// vertices, expressed as legacy handlers and as a solver.Problem.

func proper(g *graph.Graph, bag []int, m uint64) bool {
	for i := 0; i < len(bag); i++ {
		for j := i + 1; j < len(bag); j++ {
			if g.HasEdge(bag[i], bag[j]) && m>>uint(i)&1 == m>>uint(j)&1 {
				return false
			}
		}
	}
	return true
}

func ones(bag []int, m uint64) int {
	c := 0
	for p := range bag {
		c += int(m >> uint(p) & 1)
	}
	return c
}

type tcProblem struct{ g *graph.Graph }

func (p tcProblem) Name() string { return "two-coloring" }

func (p tcProblem) Leaf(_ int, bag []int) []solver.Out[uint64] {
	var out []solver.Out[uint64]
	for m := uint64(0); m < 1<<uint(len(bag)); m++ {
		if proper(p.g, bag, m) {
			out = append(out, solver.Out[uint64]{State: m, Cost: ones(bag, m)})
		}
	}
	return out
}

func (p tcProblem) Introduce(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	q := solver.Position(bag, elem)
	var out []solver.Out[uint64]
	for bit := uint64(0); bit <= 1; bit++ {
		if m := solver.Width(1).Insert(child, q, bit); proper(p.g, bag, m) {
			out = append(out, solver.Out[uint64]{State: m, Cost: int(bit)})
		}
	}
	return out
}

func (p tcProblem) Forget(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	childBag := solver.InsertSorted(bag, elem)
	return []solver.Out[uint64]{{State: solver.Width(1).Drop(child, solver.Position(childBag, elem))}}
}

func (p tcProblem) Join(_ int, bag []int, s1, s2 uint64) []solver.Out[uint64] {
	if s1 != s2 {
		return nil
	}
	return []solver.Out[uint64]{{State: s1, Cost: -ones(bag, s1)}}
}

func (p tcProblem) Accept(int, []int, uint64) bool { return true }

func legacyHandlers(g *graph.Graph) dp.Handlers[uint64] {
	p := tcProblem{g}
	strip := func(outs []solver.Out[uint64]) []uint64 {
		ss := make([]uint64, len(outs))
		for i, o := range outs {
			ss[i] = o.State
		}
		return ss
	}
	return dp.Handlers[uint64]{
		Leaf:      func(n int, bag []int) []uint64 { return strip(p.Leaf(n, bag)) },
		Introduce: func(n int, bag []int, e int, c uint64) []uint64 { return strip(p.Introduce(n, bag, e, c)) },
		Forget:    func(n int, bag []int, e int, c uint64) []uint64 { return strip(p.Forget(n, bag, e, c)) },
		Branch:    func(n int, bag []int, s1, s2 uint64) []uint64 { return strip(p.Join(n, bag, s1, s2)) },
	}
}

func legacyCostHandlers(g *graph.Graph) dp.CostHandlers[uint64] {
	p := tcProblem{g}
	conv := func(outs []solver.Out[uint64]) []dp.Costed[uint64] {
		cs := make([]dp.Costed[uint64], len(outs))
		for i, o := range outs {
			cs[i] = dp.Costed[uint64]{State: o.State, Cost: o.Cost}
		}
		return cs
	}
	return dp.CostHandlers[uint64]{
		Leaf:      func(n int, bag []int) []dp.Costed[uint64] { return conv(p.Leaf(n, bag)) },
		Introduce: func(n int, bag []int, e int, c uint64) []dp.Costed[uint64] { return conv(p.Introduce(n, bag, e, c)) },
		Forget:    func(n int, bag []int, e int, c uint64) []dp.Costed[uint64] { return conv(p.Forget(n, bag, e, c)) },
		Branch:    func(n int, bag []int, s1, s2 uint64) []dp.Costed[uint64] { return conv(p.Join(n, bag, s1, s2)) },
	}
}

// TestSolverMatchesLegacyRunners compares, node by node on random
// partial k-trees, the semiring engine's three modes against RunUp /
// RunUpCount / RunUpMin.
func TestSolverMatchesLegacyRunners(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ctx := context.Background()
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(20)
		k := 1 + rng.Intn(3)
		g := graph.PartialKTree(n, k, 0.3, rng)
		d, err := decompose.Graph(g, decompose.MinFill)
		if err != nil {
			t.Fatal(err)
		}
		nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		p := tcProblem{g}

		// Decision: same states in the same first-derivation order.
		legacy, err := dp.RunUp(nice, legacyHandlers(g))
		if err != nil {
			t.Fatal(err)
		}
		dec, err := solver.Up[uint64, bool](ctx, nice, p, solver.Decision{})
		if err != nil {
			t.Fatal(err)
		}
		for v := range legacy {
			if len(legacy[v].Order) != len(dec[v].Order) {
				t.Fatalf("trial %d node %d: decision table has %d states, legacy %d",
					trial, v, dec[v].Len(), legacy[v].Len())
			}
			for i := range legacy[v].Order {
				if legacy[v].Order[i] != dec[v].Order[i] {
					t.Fatalf("trial %d node %d: Order[%d] = %d, legacy %d",
						trial, v, i, dec[v].Order[i], legacy[v].Order[i])
				}
			}
		}

		// Counting: the uint64 legacy counter vs the big-int semiring.
		counts, err := dp.RunUpCount(nice, legacyHandlers(g))
		if err != nil {
			t.Fatal(err)
		}
		cnt, err := solver.Up[uint64, *big.Int](ctx, nice, p, solver.Counting{})
		if err != nil {
			t.Fatal(err)
		}
		for v := range counts {
			if len(counts[v]) != cnt[v].Len() {
				t.Fatalf("trial %d node %d: count table sizes differ", trial, v)
			}
			for s, c := range counts[v] {
				got, ok := cnt[v].Value(s)
				if !ok || got.Cmp(new(big.Int).SetUint64(c)) != 0 {
					t.Fatalf("trial %d node %d state %d: count %v, legacy %d", trial, v, s, got, c)
				}
			}
		}

		// Optimization: min cost per state.
		mins, err := dp.RunUpMin(nice, legacyCostHandlers(g))
		if err != nil {
			t.Fatal(err)
		}
		opt, err := solver.Up[uint64, int](ctx, nice, p, solver.MinCost{})
		if err != nil {
			t.Fatal(err)
		}
		for v := range mins {
			if len(mins[v]) != opt[v].Len() {
				t.Fatalf("trial %d node %d: min table sizes differ", trial, v)
			}
			for s, c := range mins[v] {
				got, ok := opt[v].Value(s)
				if !ok || got != c {
					t.Fatalf("trial %d node %d state %d: min %d, legacy %d", trial, v, s, got, c)
				}
			}
		}
	}
}

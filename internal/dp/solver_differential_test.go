// Differential tests pinning the generic semiring engine — the sole DP
// evaluator riding this package's scheduler — against brute-force
// oracles: 2-coloring expressed as a solver.Problem must decide, count
// and optimize exactly like exhaustive enumeration, with witnesses that
// check out. An external test package so it can import the solver,
// which is built on top of dp.Schedule.
package dp_test

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/decompose"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/solver"
	"repro/internal/stage"
	"repro/internal/tree"
)

// The problem: proper 2-coloring with cost = number of color-1
// vertices, expressed as a solver.Problem.

func proper(g *graph.Graph, bag []int, m uint64) bool {
	for i := 0; i < len(bag); i++ {
		for j := i + 1; j < len(bag); j++ {
			if g.HasEdge(bag[i], bag[j]) && m>>uint(i)&1 == m>>uint(j)&1 {
				return false
			}
		}
	}
	return true
}

func ones(bag []int, m uint64) int {
	c := 0
	for p := range bag {
		c += int(m >> uint(p) & 1)
	}
	return c
}

type tcProblem struct{ g *graph.Graph }

func (p tcProblem) Name() string { return "two-coloring" }

func (p tcProblem) Leaf(_ int, bag []int) []solver.Out[uint64] {
	var out []solver.Out[uint64]
	for m := uint64(0); m < 1<<uint(len(bag)); m++ {
		if proper(p.g, bag, m) {
			out = append(out, solver.Out[uint64]{State: m, Cost: ones(bag, m)})
		}
	}
	return out
}

func (p tcProblem) Introduce(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	q := solver.Position(bag, elem)
	var out []solver.Out[uint64]
	for bit := uint64(0); bit <= 1; bit++ {
		if m := solver.Width(1).Insert(child, q, bit); proper(p.g, bag, m) {
			out = append(out, solver.Out[uint64]{State: m, Cost: int(bit)})
		}
	}
	return out
}

func (p tcProblem) Forget(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	childBag := solver.InsertSorted(bag, elem)
	return []solver.Out[uint64]{{State: solver.Width(1).Drop(child, solver.Position(childBag, elem))}}
}

func (p tcProblem) Join(_ int, bag []int, s1, s2 uint64) []solver.Out[uint64] {
	if s1 != s2 {
		return nil
	}
	return []solver.Out[uint64]{{State: s1, Cost: -ones(bag, s1)}}
}

func (p tcProblem) Accept(int, []int, uint64) bool { return true }

// brute2Colorings enumerates all 2^n assignments and reports the number
// of proper ones and the minimum count of color-1 vertices over them
// (-1 if none is proper).
func brute2Colorings(g *graph.Graph) (count uint64, minOnes int) {
	n := g.N()
	minOnes = -1
	for m := uint64(0); m < 1<<uint(n); m++ {
		ok := true
		for _, e := range g.Edges() {
			if m>>uint(e[0])&1 == m>>uint(e[1])&1 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		count++
		o := 0
		for v := 0; v < n; v++ {
			o += int(m >> uint(v) & 1)
		}
		if minOnes < 0 || o < minOnes {
			minOnes = o
		}
	}
	return count, minOnes
}

func niceTC(t *testing.T, g *graph.Graph, guard bool) *tree.Decomposition {
	t.Helper()
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{BranchGuard: guard})
	if err != nil {
		t.Fatal(err)
	}
	return nice
}

// TestSolverDifferentialBruteForce compares all three evaluation modes
// of the semiring engine against exhaustive enumeration on random
// partial k-trees, and walks the optimization witness back to a
// concrete coloring that must be proper and match the reported cost.
// Alternating BranchGuard covers the copy-node path.
func TestSolverDifferentialBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ctx := context.Background()
	p2 := func(trial int) bool { return trial%2 == 0 }
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(10)
		k := 1 + rng.Intn(3)
		g := graph.PartialKTree(n, k, 0.3, rng)
		nice := niceTC(t, g, p2(trial))
		p := tcProblem{g}
		wantCount, wantMin := brute2Colorings(g)

		got, err := solver.Decide(ctx, nice, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != (wantCount > 0) {
			t.Fatalf("trial %d: Decide = %v, brute force has %d solutions", trial, got, wantCount)
		}

		cnt, err := solver.Count(ctx, nice, p)
		if err != nil {
			t.Fatal(err)
		}
		if cnt.Cmp(new(big.Int).SetUint64(wantCount)) != 0 {
			t.Fatalf("trial %d: Count = %v, brute force %d", trial, cnt, wantCount)
		}

		opt, err := solver.Optimize(ctx, nice, p)
		if err != nil {
			t.Fatal(err)
		}
		if wantCount == 0 {
			if opt != nil {
				t.Fatalf("trial %d: Optimize found value %d on an infeasible graph", trial, opt.Value)
			}
			continue
		}
		if opt == nil || opt.Value != wantMin {
			t.Fatalf("trial %d: Optimize = %+v, brute-force min %d", trial, opt, wantMin)
		}

		// Walk the argmin witness back to vertex colors: every visited
		// (node, state) pair assigns the state's bits to the sorted bag.
		bags, err := dp.Bags(nice)
		if err != nil {
			t.Fatal(err)
		}
		colors := make(map[int]int)
		err = opt.Walk(func(node int, s uint64) error {
			for i, e := range bags[node] {
				c := int(s >> uint(i) & 1)
				if prev, seen := colors[e]; seen && prev != c {
					t.Fatalf("trial %d: witness assigns vertex %d both colors", trial, e)
				}
				colors[e] = c
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		onesTotal := 0
		for v := 0; v < g.N(); v++ {
			c, seen := colors[v]
			if !seen {
				t.Fatalf("trial %d: witness leaves vertex %d uncolored", trial, v)
			}
			onesTotal += c
		}
		for _, e := range g.Edges() {
			if colors[e[0]] == colors[e[1]] {
				t.Fatalf("trial %d: witness coloring not proper at edge %v", trial, e)
			}
		}
		if onesTotal != opt.Value {
			t.Fatalf("trial %d: witness has %d color-1 vertices, Optimize reported %d", trial, onesTotal, opt.Value)
		}
	}
}

// TestSolverDownLeafEnvelope pins the top-down pass (solve↓ of Section
// 5.3) through the scheduler: the envelope of a leaf is the entire
// tree, so a leaf's top-down table is non-empty iff the whole graph is
// 2-colorable.
func TestSolverDownLeafEnvelope(t *testing.T) {
	ctx := context.Background()
	for _, g := range []*graph.Graph{graph.Cycle(5), graph.Cycle(6), graph.Grid(2, 4)} {
		nice := niceTC(t, g, true)
		p := tcProblem{g}
		up, err := solver.Up[uint64, bool](ctx, nice, p, solver.Decision{})
		if err != nil {
			t.Fatal(err)
		}
		down, err := solver.Down[uint64, bool](ctx, nice, p, solver.Decision{}, up)
		if err != nil {
			t.Fatal(err)
		}
		count, _ := brute2Colorings(g)
		want := count > 0
		for _, leaf := range nice.Leaves() {
			if got := down[leaf].Len() > 0; got != want {
				t.Fatalf("down table at leaf %d non-empty = %v, want %v", leaf, got, want)
			}
		}
	}
}

// TestBudgetTableEntries caps the DP table budget below what the run
// needs: the engine must stop with a stage-tagged budget error, with
// consumption bounded near the limit (the bounded-memory property — the
// periodic in-node check fires long before the tables blow past the
// cap), and a sufficient budget must change nothing about the result.
func TestBudgetTableEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := graph.PartialKTree(120, 3, 0.3, rng)
	nice := niceTC(t, g, true)
	p := tcProblem{g}
	prev := dp.SetMaxWorkers(8)
	defer dp.SetMaxWorkers(prev)
	ctx := context.Background()

	// Establish the unconstrained total so the cap is genuinely binding.
	full, err := solver.Up[uint64, bool](ctx, nice, p, solver.Decision{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, tbl := range full {
		total += tbl.Len()
	}
	if total < 20 {
		t.Fatalf("workload too small to test the budget (total %d states)", total)
	}

	b := &stage.Budget{MaxTableEntries: int64(total / 4)}
	tables, err := solver.Up[uint64, bool](stage.WithBudget(ctx, b), nice, p, solver.Decision{})
	if !errors.Is(err, stage.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	if got := stage.Of(err); got != stage.Solver {
		t.Fatalf("tagged stage %q, want %q", got, stage.Solver)
	}
	var be *stage.BudgetError
	if !errors.As(err, &be) || be.Dimension != "table-entries" {
		t.Fatalf("err = %v, want table-entries BudgetError", err)
	}
	if tables != nil {
		t.Fatal("partial tables not discarded after budget violation")
	}

	// A sufficient budget changes nothing about the result.
	b2 := &stage.Budget{MaxTableEntries: int64(total)}
	got, err := solver.Up[uint64, bool](stage.WithBudget(ctx, b2), nice, p, solver.Decision{})
	if err != nil {
		t.Fatalf("run within budget: %v", err)
	}
	if len(got) != len(full) {
		t.Fatalf("budgeted run has %d tables, unbudgeted %d", len(got), len(full))
	}
	for v := range full {
		if !reflect.DeepEqual(got[v].Order, full[v].Order) {
			t.Fatalf("node %d: budgeted run diverged", v)
		}
	}
	if _, _, used := b2.Used(); used != int64(total) {
		t.Fatalf("budget accounting: used %d, want %d", used, total)
	}
}

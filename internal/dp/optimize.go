package dp

import (
	"context"
	"fmt"

	"repro/internal/stage"
	"repro/internal/tree"
)

// CostHandlers defines an optimizing DP over a nice tree decomposition:
// like Handlers, but every produced state carries a cost delta, and the
// tables keep the minimum cost per state. This supports the optimization
// problems (vertex cover, dominating set, …) whose fixed-parameter
// tractability the paper's framework targets beyond decision queries.
type CostHandlers[S comparable] struct {
	// Leaf enumerates leaf states with their base costs.
	Leaf func(node int, bag []int) []Costed[S]
	// Introduce extends a child state; the returned costs are added to
	// the child's accumulated cost.
	Introduce func(node int, bag []int, elem int, child S) []Costed[S]
	// Forget projects a child state.
	Forget func(node int, bag []int, elem int, child S) []Costed[S]
	// Branch combines two child states; the returned cost is added to the
	// SUM of the children's costs (use it to subtract double-counted bag
	// contributions).
	Branch func(node int, bag []int, s1, s2 S) []Costed[S]
	// Copy defaults to zero-cost pass-through.
	Copy func(node int, bag []int, child S) []Costed[S]
}

// Costed pairs a state with a cost delta.
type Costed[S comparable] struct {
	State S
	Cost  int
}

// RunUpMin computes, for every node and state, the minimum accumulated
// cost of a derivation. The run shares the cached plan and worker pool of
// RunUp; min-relaxation is order-independent, so the tables are identical
// at every worker count.
func RunUpMin[S comparable](d *tree.Decomposition, h CostHandlers[S]) ([]map[S]int, error) {
	return RunUpMinCtx(context.Background(), d, h)
}

// RunUpMinCtx is RunUpMin with cancellation support; see RunUpCtx for
// the cancellation contract.
func RunUpMinCtx[S comparable](ctx context.Context, d *tree.Decomposition, h CostHandlers[S]) ([]map[S]int, error) {
	p := planFor(d)
	if p.niceErr != nil {
		return nil, fmt.Errorf("dp: %w", p.niceErr)
	}
	b := stage.BudgetFrom(ctx)
	tables := make([]map[S]int, d.Len())
	err := runChains(ctx, p, false, func(v int) error {
		n := &d.Nodes[v]
		bag := p.bags[v]
		tbl := map[S]int{}
		relax := func(s S, c int) {
			if old, ok := tbl[s]; !ok || c < old {
				tbl[s] = c
			}
		}
		switch n.Kind {
		case tree.KindLeaf:
			for _, cs := range h.Leaf(v, bag) {
				relax(cs.State, cs.Cost)
			}
		case tree.KindIntroduce, tree.KindForget, tree.KindCopy:
			for child, cost := range tables[n.Children[0]] {
				var results []Costed[S]
				switch n.Kind {
				case tree.KindIntroduce:
					results = h.Introduce(v, bag, n.Elem, child)
				case tree.KindForget:
					results = h.Forget(v, bag, n.Elem, child)
				default:
					if h.Copy == nil {
						results = []Costed[S]{{State: child}}
					} else {
						results = h.Copy(v, bag, child)
					}
				}
				for _, cs := range results {
					relax(cs.State, cost+cs.Cost)
				}
			}
		case tree.KindBranch:
			for s1, c1 := range tables[n.Children[0]] {
				for s2, c2 := range tables[n.Children[1]] {
					for _, cs := range h.Branch(v, bag, s1, s2) {
						relax(cs.State, c1+c2+cs.Cost)
					}
				}
			}
		default:
			panic(fmt.Sprintf("dp: node %d has kind %v", v, n.Kind))
		}
		if err := b.AddTableEntries(len(tbl)); err != nil {
			return err
		}
		tables[v] = tbl
		return nil
	})
	if err != nil {
		return nil, stage.Wrap(stage.DP, err)
	}
	return tables, nil
}

// Package dp is a generic dynamic-programming framework over nice tree
// decompositions (Section 5's modified normal form): the execution model
// behind the paper's succinct datalog programs for 3-Colorability (Fig. 5)
// and PRIMALITY (Fig. 6).
//
// A problem plugs in handlers for the node kinds — leaf, element
// introduction, element removal, branch — describing how the states of the
// solve(·) predicate propagate. RunUp computes the bottom-up tables
// (the solve predicate); RunDown computes the top-down tables (the solve↓
// predicate of Section 5.3) by the role-swapped transitions of Lemma 3.6:
// walking down through an introduction node removes the element from the
// interface, walking down through a removal node introduces it, and
// walking down past a branch node merges the parent's top-down state with
// the sibling's bottom-up states.
package dp

import (
	"fmt"

	"repro/internal/tree"
)

// Handlers defines the state transitions of a DP over a nice tree
// decomposition, parameterized by a comparable state type. Handlers
// receive the node ID of the state's home node and its bag (sorted).
// Returning an empty slice kills the partial solution.
type Handlers[S comparable] struct {
	// Leaf enumerates the states of a leaf node.
	Leaf func(node int, bag []int) []S
	// Introduce extends a child state with a newly introduced element.
	Introduce func(node int, bag []int, elem int, child S) []S
	// Forget projects a child state after removing an element.
	Forget func(node int, bag []int, elem int, child S) []S
	// Branch combines the states of two children with identical bags.
	Branch func(node int, bag []int, s1, s2 S) []S
	// Copy handles equal-bag edges; nil defaults to pass-through.
	Copy func(node int, bag []int, child S) []S
}

// Prov records one derivation of a state, for witness extraction: the
// child states it was derived from (nil for leaf states).
type Prov[S comparable] struct {
	First  *S
	Second *S
}

// Tables holds the result of a bottom-up run: for every node, the set of
// derived states with one provenance each.
type Tables[S comparable] []map[S]Prov[S]

// States returns the states at a node as a slice (unspecified order).
func (t Tables[S]) States(node int) []S {
	out := make([]S, 0, len(t[node]))
	for s := range t[node] {
		out = append(out, s)
	}
	return out
}

// RunUp computes the bottom-up DP tables over a nice decomposition.
func RunUp[S comparable](d *tree.Decomposition, h Handlers[S]) (Tables[S], error) {
	if err := tree.CheckNice(d); err != nil {
		return nil, fmt.Errorf("dp: %w", err)
	}
	tables := make(Tables[S], d.Len())
	for _, v := range d.PostOrder() {
		n := d.Nodes[v]
		bag := sortedCopy(n.Bag)
		tbl := map[S]Prov[S]{}
		add := func(s S, p Prov[S]) {
			if _, ok := tbl[s]; !ok {
				tbl[s] = p
			}
		}
		switch n.Kind {
		case tree.KindLeaf:
			for _, s := range h.Leaf(v, bag) {
				add(s, Prov[S]{})
			}
		case tree.KindIntroduce:
			for cs := range tables[n.Children[0]] {
				cs := cs
				for _, s := range h.Introduce(v, bag, n.Elem, cs) {
					add(s, Prov[S]{First: &cs})
				}
			}
		case tree.KindForget:
			for cs := range tables[n.Children[0]] {
				cs := cs
				for _, s := range h.Forget(v, bag, n.Elem, cs) {
					add(s, Prov[S]{First: &cs})
				}
			}
		case tree.KindCopy:
			for cs := range tables[n.Children[0]] {
				cs := cs
				if h.Copy == nil {
					add(cs, Prov[S]{First: &cs})
					continue
				}
				for _, s := range h.Copy(v, bag, cs) {
					add(s, Prov[S]{First: &cs})
				}
			}
		case tree.KindBranch:
			for s1 := range tables[n.Children[0]] {
				s1 := s1
				for s2 := range tables[n.Children[1]] {
					s2 := s2
					for _, s := range h.Branch(v, bag, s1, s2) {
						add(s, Prov[S]{First: &s1, Second: &s2})
					}
				}
			}
		default:
			return nil, fmt.Errorf("dp: node %d has kind %v", v, n.Kind)
		}
		tables[v] = tbl
	}
	return tables, nil
}

// RunDown computes the top-down tables (solve↓ of Section 5.3) given the
// bottom-up tables. At the root, Leaf enumerates the base states (the
// envelope of the root is just its own bag). Order of handler roles is
// swapped relative to RunUp as described in the package comment.
func RunDown[S comparable](d *tree.Decomposition, h Handlers[S], up Tables[S]) (Tables[S], error) {
	if err := tree.CheckNice(d); err != nil {
		return nil, fmt.Errorf("dp: %w", err)
	}
	if len(up) != d.Len() {
		return nil, fmt.Errorf("dp: bottom-up tables have %d nodes, want %d", len(up), d.Len())
	}
	tables := make(Tables[S], d.Len())
	for _, v := range d.PreOrder() {
		n := d.Nodes[v]
		bag := sortedCopy(n.Bag)
		tbl := map[S]Prov[S]{}
		add := func(s S, p Prov[S]) {
			if _, ok := tbl[s]; !ok {
				tbl[s] = p
			}
		}
		if n.Parent < 0 {
			for _, s := range h.Leaf(v, bag) {
				add(s, Prov[S]{})
			}
			tables[v] = tbl
			continue
		}
		p := d.Nodes[n.Parent]
		switch p.Kind {
		case tree.KindIntroduce:
			// The parent introduced p.Elem; walking down it leaves the
			// interface: apply the Forget transition at v.
			for ps := range tables[n.Parent] {
				ps := ps
				for _, s := range h.Forget(v, bag, p.Elem, ps) {
					add(s, Prov[S]{First: &ps})
				}
			}
		case tree.KindForget:
			// The parent forgot p.Elem; walking down it (re)enters and is
			// new to the envelope: apply the Introduce transition at v.
			for ps := range tables[n.Parent] {
				ps := ps
				for _, s := range h.Introduce(v, bag, p.Elem, ps) {
					add(s, Prov[S]{First: &ps})
				}
			}
		case tree.KindCopy:
			for ps := range tables[n.Parent] {
				ps := ps
				if h.Copy == nil {
					add(ps, Prov[S]{First: &ps})
					continue
				}
				for _, s := range h.Copy(v, bag, ps) {
					add(s, Prov[S]{First: &ps})
				}
			}
		case tree.KindBranch:
			sib := p.Children[0]
			if sib == v {
				sib = p.Children[1]
			}
			for ps := range tables[n.Parent] {
				ps := ps
				for ss := range up[sib] {
					ss := ss
					for _, s := range h.Branch(v, bag, ps, ss) {
						add(s, Prov[S]{First: &ps, Second: &ss})
					}
				}
			}
		default:
			return nil, fmt.Errorf("dp: parent %d of node %d has kind %v", n.Parent, v, p.Kind)
		}
		tables[v] = tbl
	}
	return tables, nil
}

func sortedCopy(bag []int) []int {
	out := append([]int(nil), bag...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Package dp is a generic dynamic-programming framework over nice tree
// decompositions (Section 5's modified normal form): the execution model
// behind the paper's succinct datalog programs for 3-Colorability (Fig. 5)
// and PRIMALITY (Fig. 6).
//
// A problem plugs in handlers for the node kinds — leaf, element
// introduction, element removal, branch — describing how the states of the
// solve(·) predicate propagate. RunUp computes the bottom-up tables
// (the solve predicate); RunDown computes the top-down tables (the solve↓
// predicate of Section 5.3) by the role-swapped transitions of Lemma 3.6:
// walking down through an introduction node removes the element from the
// interface, walking down through a removal node introduces it, and
// walking down past a branch node merges the parent's top-down state with
// the sibling's bottom-up states.
//
// All runners share a cached per-decomposition plan (sorted bags, nice
// check, chain schedule) and fan independent subtrees across a worker
// pool (SetMaxWorkers). Tables are byte-identical at every worker count:
// states are propagated in the deterministic Table.Order, never by map
// iteration.
package dp

import (
	"context"
	"fmt"

	"repro/internal/stage"
	"repro/internal/tree"
)

// Handlers defines the state transitions of a DP over a nice tree
// decomposition, parameterized by a comparable state type. Handlers
// receive the node ID of the state's home node and its bag (sorted).
// Returning an empty slice kills the partial solution. When the worker
// cap is above 1, handlers are invoked from multiple goroutines and must
// be safe for concurrent use.
type Handlers[S comparable] struct {
	// Leaf enumerates the states of a leaf node.
	Leaf func(node int, bag []int) []S
	// Introduce extends a child state with a newly introduced element.
	Introduce func(node int, bag []int, elem int, child S) []S
	// Forget projects a child state after removing an element.
	Forget func(node int, bag []int, elem int, child S) []S
	// Branch combines the states of two children with identical bags.
	Branch func(node int, bag []int, s1, s2 S) []S
	// Copy handles equal-bag edges; nil defaults to pass-through.
	Copy func(node int, bag []int, child S) []S
}

// Prov records one derivation of a state, for witness extraction: the
// child states it was derived from (nil for leaf states). The pointers
// alias entries of the child table's Order slice.
type Prov[S comparable] struct {
	First  *S
	Second *S
}

// Table holds the states derived at one node. Order lists them in
// first-derivation order — a deterministic artifact of the run, used for
// all downstream iteration — and Prov maps each state to one provenance.
type Table[S comparable] struct {
	Order []S
	Prov  map[S]Prov[S]
}

// Len returns the number of states at the node.
func (t Table[S]) Len() int { return len(t.Order) }

// Has reports whether the state was derived at the node.
func (t Table[S]) Has(s S) bool {
	_, ok := t.Prov[s]
	return ok
}

func (t *Table[S]) init(capacity int) {
	t.Order = make([]S, 0, capacity)
	t.Prov = make(map[S]Prov[S], capacity)
}

func (t *Table[S]) add(s S, p Prov[S]) {
	if _, ok := t.Prov[s]; !ok {
		t.Prov[s] = p
		t.Order = append(t.Order, s)
	}
}

// Tables holds the result of a full run: one Table per node.
type Tables[S comparable] []Table[S]

// States returns the states at a node in derivation order.
func (t Tables[S]) States(node int) []S {
	return append([]S(nil), t[node].Order...)
}

// RunUp computes the bottom-up DP tables over a nice decomposition.
func RunUp[S comparable](d *tree.Decomposition, h Handlers[S]) (Tables[S], error) {
	return RunUpCtx(context.Background(), d, h)
}

// RunUpCtx is RunUp with cancellation support: the chain scheduler
// checks ctx before each node (serial path) or chain segment (parallel
// path), drains the worker pool without leaking goroutines, and returns
// the context error wrapped in a *stage.Error tagged stage.DP. Partial
// tables are discarded on cancellation.
func RunUpCtx[S comparable](ctx context.Context, d *tree.Decomposition, h Handlers[S]) (Tables[S], error) {
	p := planFor(d)
	if p.niceErr != nil {
		return nil, fmt.Errorf("dp: %w", p.niceErr)
	}
	b := stage.BudgetFrom(ctx)
	tables := make(Tables[S], d.Len())
	if err := runChains(ctx, p, false, func(v int) error { return upNode(d, p, h, b, tables, v) }); err != nil {
		return nil, stage.Wrap(stage.DP, err)
	}
	return tables, nil
}

// chargeEvery is how many table insertions a node accumulates between
// budget checks inside the branch double loops. It bounds the overshoot
// past MaxTableEntries to O(chargeEvery) entries per in-flight node, so
// a budget violation aborts in bounded memory rather than after the
// whole quadratic product has materialized.
const chargeEvery = 1024

func upNode[S comparable](d *tree.Decomposition, p *plan, h Handlers[S], b *stage.Budget, tables Tables[S], v int) error {
	n := &d.Nodes[v]
	bag := p.bags[v]
	var t Table[S]
	switch n.Kind {
	case tree.KindLeaf:
		states := h.Leaf(v, bag)
		t.init(len(states))
		for _, s := range states {
			t.add(s, Prov[S]{})
		}
	case tree.KindIntroduce, tree.KindForget, tree.KindCopy:
		child := &tables[n.Children[0]]
		t.init(len(child.Order))
		for i := range child.Order {
			cs := &child.Order[i]
			var results []S
			switch n.Kind {
			case tree.KindIntroduce:
				results = h.Introduce(v, bag, n.Elem, *cs)
			case tree.KindForget:
				results = h.Forget(v, bag, n.Elem, *cs)
			default:
				if h.Copy == nil {
					t.add(*cs, Prov[S]{First: cs})
					continue
				}
				results = h.Copy(v, bag, *cs)
			}
			for _, s := range results {
				t.add(s, Prov[S]{First: cs})
			}
			if i%chargeEvery == chargeEvery-1 {
				if err := b.CheckTableEntries(t.Len()); err != nil {
					return err
				}
			}
		}
	case tree.KindBranch:
		c1, c2 := &tables[n.Children[0]], &tables[n.Children[1]]
		t.init(min(len(c1.Order), len(c2.Order)))
		for i := range c1.Order {
			s1 := &c1.Order[i]
			for j := range c2.Order {
				s2 := &c2.Order[j]
				for _, s := range h.Branch(v, bag, *s1, *s2) {
					t.add(s, Prov[S]{First: s1, Second: s2})
				}
			}
			if i%chargeEvery == chargeEvery-1 {
				if err := b.CheckTableEntries(t.Len()); err != nil {
					return err
				}
			}
		}
	default:
		// Unreachable: CheckNice (cached in the plan) admits only the
		// five nice node kinds.
		panic(fmt.Sprintf("dp: node %d has kind %v", v, n.Kind))
	}
	if err := b.AddTableEntries(t.Len()); err != nil {
		return err
	}
	tables[v] = t
	return nil
}

// RunDown computes the top-down tables (solve↓ of Section 5.3) given the
// bottom-up tables. At the root, Leaf enumerates the base states (the
// envelope of the root is just its own bag). Order of handler roles is
// swapped relative to RunUp as described in the package comment.
func RunDown[S comparable](d *tree.Decomposition, h Handlers[S], up Tables[S]) (Tables[S], error) {
	return RunDownCtx(context.Background(), d, h, up)
}

// RunDownCtx is RunDown with cancellation support; see RunUpCtx for the
// cancellation contract.
func RunDownCtx[S comparable](ctx context.Context, d *tree.Decomposition, h Handlers[S], up Tables[S]) (Tables[S], error) {
	p := planFor(d)
	if p.niceErr != nil {
		return nil, fmt.Errorf("dp: %w", p.niceErr)
	}
	if len(up) != d.Len() {
		return nil, fmt.Errorf("dp: bottom-up tables have %d nodes, want %d", len(up), d.Len())
	}
	b := stage.BudgetFrom(ctx)
	tables := make(Tables[S], d.Len())
	if err := runChains(ctx, p, true, func(v int) error { return downNode(d, p, h, b, up, tables, v) }); err != nil {
		return nil, stage.Wrap(stage.DP, err)
	}
	return tables, nil
}

func downNode[S comparable](d *tree.Decomposition, p *plan, h Handlers[S], b *stage.Budget, up, tables Tables[S], v int) error {
	n := &d.Nodes[v]
	bag := p.bags[v]
	var t Table[S]
	if n.Parent < 0 {
		states := h.Leaf(v, bag)
		t.init(len(states))
		for _, s := range states {
			t.add(s, Prov[S]{})
		}
		if err := b.AddTableEntries(t.Len()); err != nil {
			return err
		}
		tables[v] = t
		return nil
	}
	pn := &d.Nodes[n.Parent]
	parent := &tables[n.Parent]
	t.init(len(parent.Order))
	switch pn.Kind {
	case tree.KindIntroduce:
		// The parent introduced pn.Elem; walking down it leaves the
		// interface: apply the Forget transition at v.
		for i := range parent.Order {
			ps := &parent.Order[i]
			for _, s := range h.Forget(v, bag, pn.Elem, *ps) {
				t.add(s, Prov[S]{First: ps})
			}
		}
	case tree.KindForget:
		// The parent forgot pn.Elem; walking down it (re)enters and is
		// new to the envelope: apply the Introduce transition at v.
		for i := range parent.Order {
			ps := &parent.Order[i]
			for _, s := range h.Introduce(v, bag, pn.Elem, *ps) {
				t.add(s, Prov[S]{First: ps})
			}
		}
	case tree.KindCopy:
		for i := range parent.Order {
			ps := &parent.Order[i]
			if h.Copy == nil {
				t.add(*ps, Prov[S]{First: ps})
				continue
			}
			for _, s := range h.Copy(v, bag, *ps) {
				t.add(s, Prov[S]{First: ps})
			}
		}
	case tree.KindBranch:
		sib := pn.Children[0]
		if sib == v {
			sib = pn.Children[1]
		}
		sibT := &up[sib]
		for i := range parent.Order {
			ps := &parent.Order[i]
			for j := range sibT.Order {
				ss := &sibT.Order[j]
				for _, s := range h.Branch(v, bag, *ps, *ss) {
					t.add(s, Prov[S]{First: ps, Second: ss})
				}
			}
			if i%chargeEvery == chargeEvery-1 {
				if err := b.CheckTableEntries(t.Len()); err != nil {
					return err
				}
			}
		}
	default:
		panic(fmt.Sprintf("dp: parent %d of node %d has kind %v", n.Parent, v, pn.Kind))
	}
	if err := b.AddTableEntries(t.Len()); err != nil {
		return err
	}
	tables[v] = t
	return nil
}

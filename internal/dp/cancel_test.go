package dp

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/testutil/leak"
	"repro/internal/tree"
)

// cancelNice builds a nice decomposition large enough to cross the
// parallel threshold.
func cancelNice(t testing.TB, seed int64, n int) (*graph.Graph, *tree.Decomposition) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.PartialKTree(n, 3, 0.3, rng)
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{BranchGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	if nice.Len() < minParallelNodes {
		t.Fatalf("decomposition too small (%d nodes) to exercise the pool", nice.Len())
	}
	return g, nice
}

// TestScheduleCancelMidRun cancels the context from inside a compute
// callback once the run is under way, with the full worker pool active.
// Schedule must stop with context.Canceled (unwrapped — evaluators add
// their own stage tag) and leave no worker goroutines behind. Run under
// -race in CI.
func TestScheduleCancelMidRun(t *testing.T) {
	_, nice := cancelNice(t, 13, 120)
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)

	snap := leak.Before()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	err := Schedule(ctx, nice, false, func(v int) error {
		if calls.Add(1) == 10 { // let the pool spin up, then pull the plug
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	snap.Check(t)
	// The pool is reusable after a cancelled run.
	if err := Schedule(context.Background(), nice, false, func(int) error { return nil }); err != nil {
		t.Fatalf("pool poisoned after cancellation: %v", err)
	}
}

// TestScheduleDownCancelled pins cancellation of the top-down pass.
func TestScheduleDownCancelled(t *testing.T) {
	_, nice := cancelNice(t, 17, 80)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Schedule(ctx, nice, true, func(int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestScheduleSerialCancelled pins the serial (below-threshold) path.
func TestScheduleSerialCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.PartialKTree(8, 2, 0.3, rng)
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	visited := 0
	err = Schedule(ctx, nice, false, func(int) error { visited++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if visited != 0 {
		t.Fatalf("pre-cancelled run still computed %d nodes", visited)
	}
}

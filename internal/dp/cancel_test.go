package dp

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/stage"
	"repro/internal/tree"
)

// cancelNice builds a nice decomposition large enough to cross the
// parallel threshold.
func cancelNice(t testing.TB, seed int64, n int) (*graph.Graph, *tree.Decomposition) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.PartialKTree(n, 3, 0.3, rng)
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{BranchGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	if nice.Len() < minParallelNodes {
		t.Fatalf("decomposition too small (%d nodes) to exercise the pool", nice.Len())
	}
	return g, nice
}

// TestRunUpCtxCancelMidDP cancels the context from inside a handler
// once the DP is under way, with the full worker pool active. The run
// must stop with a stage-tagged context.Canceled, discard partial
// tables, and leave no worker goroutines behind. Run under -race in CI.
func TestRunUpCtxCancelMidDP(t *testing.T) {
	g, nice := cancelNice(t, 13, 120)
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	h := twoColHandlers(g)
	inner := h.Introduce
	h.Introduce = func(node int, bag []int, elem int, child uint32) []uint32 {
		if calls.Add(1) == 10 { // let the pool spin up, then pull the plug
			cancel()
		}
		return inner(node, bag, elem, child)
	}
	tables, err := RunUpCtx(ctx, nice, h)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *stage.Error
	if !errors.As(err, &se) || se.Stage != stage.DP {
		t.Fatalf("err = %v, want stage %q", err, stage.DP)
	}
	if tables != nil {
		t.Fatal("partial tables not discarded on cancellation")
	}
	for i := 0; i < 40 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after cancellation", before, after)
	}
	// The pool is reusable after a cancelled run.
	if _, err := RunUpCtx(context.Background(), nice, twoColHandlers(g)); err != nil {
		t.Fatalf("pool poisoned after cancellation: %v", err)
	}
}

// TestRunDownCtxCancelled pins cancellation of the top-down pass.
func TestRunDownCtxCancelled(t *testing.T) {
	g, nice := cancelNice(t, 17, 80)
	h := twoColHandlers(g)
	up, err := RunUp(nice, h)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunDownCtx(ctx, nice, h, up); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunUpCountAndMinCtxCancelled pins the counting and optimizing
// variants.
func TestRunUpCountAndMinCtxCancelled(t *testing.T) {
	g, nice := cancelNice(t, 19, 80)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunUpCountCtx(ctx, nice, twoColHandlers(g)); !errors.Is(err, context.Canceled) {
		t.Fatalf("count err = %v, want context.Canceled", err)
	}
	if _, err := RunUpMinCtx(ctx, nice, twoColCostHandlers(g)); !errors.Is(err, context.Canceled) {
		t.Fatalf("min err = %v, want context.Canceled", err)
	}
}

// TestRunUpCtxSerialCancelled pins the serial (below-threshold) path.
func TestRunUpCtxSerialCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.PartialKTree(8, 2, 0.3, rng)
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RunUpCtx(ctx, nice, twoColHandlers(g))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *stage.Error
	if !errors.As(err, &se) || se.Stage != stage.DP {
		t.Fatalf("err = %v, want stage %q", err, stage.DP)
	}
}

package dp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/tree"
)

// twoColHandlers builds the classic 2-colorability DP over a graph: a
// state is a bitmask assigning colors to the sorted bag vertices such
// that the assignment extends to a proper 2-coloring of the subtree.
func twoColHandlers(g *graph.Graph) Handlers[uint32] {
	pos := func(bag []int, e int) int {
		for i, b := range bag {
			if b == e {
				return i
			}
		}
		return -1
	}
	ok := func(bag []int, mask uint32) bool {
		for i := 0; i < len(bag); i++ {
			for j := i + 1; j < len(bag); j++ {
				if g.HasEdge(bag[i], bag[j]) && (mask>>uint(i))&1 == (mask>>uint(j))&1 {
					return false
				}
			}
		}
		return true
	}
	insertBit := func(mask uint32, p int, bit uint32) uint32 {
		low := mask & ((1 << uint(p)) - 1)
		high := mask >> uint(p)
		return low | bit<<uint(p) | high<<uint(p+1)
	}
	removeBit := func(mask uint32, p int) uint32 {
		low := mask & ((1 << uint(p)) - 1)
		high := mask >> uint(p+1)
		return low | high<<uint(p)
	}
	return Handlers[uint32]{
		Leaf: func(_ int, bag []int) []uint32 {
			var out []uint32
			for mask := uint32(0); mask < 1<<uint(len(bag)); mask++ {
				if ok(bag, mask) {
					out = append(out, mask)
				}
			}
			return out
		},
		Introduce: func(_ int, bag []int, elem int, child uint32) []uint32 {
			p := pos(bag, elem)
			var out []uint32
			for bit := uint32(0); bit <= 1; bit++ {
				m := insertBit(child, p, bit)
				if ok(bag, m) {
					out = append(out, m)
				}
			}
			return out
		},
		Forget: func(_ int, bag []int, elem int, child uint32) []uint32 {
			// The removed element's position in the child's (larger) bag.
			cb := append([]int(nil), bag...)
			cb = append(cb, elem)
			sortInts(cb)
			return []uint32{removeBit(child, pos(cb, elem))}
		},
		Branch: func(_ int, _ []int, s1, s2 uint32) []uint32 {
			if s1 == s2 {
				return []uint32{s1}
			}
			return nil
		},
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func bipartite(g *graph.Graph) bool {
	color := make([]int, g.N())
	for i := range color {
		color[i] = -1
	}
	for s := 0; s < g.N(); s++ {
		if color[s] >= 0 {
			continue
		}
		color[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			bad := false
			g.Neighbors(v).ForEach(func(u int) bool {
				if color[u] < 0 {
					color[u] = 1 - color[v]
					queue = append(queue, u)
				} else if color[u] == color[v] {
					bad = true
					return false
				}
				return true
			})
			if bad {
				return false
			}
		}
	}
	return true
}

func niceDecomposition(t testing.TB, g *graph.Graph, opts tree.NiceOptions) *tree.Decomposition {
	t.Helper()
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	nice, err := tree.NormalizeNice(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return nice
}

func TestRunUpTwoColoring(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"path", graph.Path(6), true},
		{"even cycle", graph.Cycle(6), true},
		{"odd cycle", graph.Cycle(5), false},
		{"grid", graph.Grid(3, 3), true},
		{"triangle", graph.Complete(3), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nice := niceDecomposition(t, tc.g, tree.NiceOptions{})
			tables, err := RunUp(nice, twoColHandlers(tc.g))
			if err != nil {
				t.Fatal(err)
			}
			got := tables[nice.Root].Len() > 0
			if got != tc.want {
				t.Fatalf("2-colorable = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestRunUpRejectsRawDecomposition(t *testing.T) {
	g := graph.Path(3)
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunUp(d, twoColHandlers(g)); err == nil {
		t.Fatal("raw decomposition accepted")
	}
}

func TestWitnessExtraction(t *testing.T) {
	g := graph.Cycle(6)
	nice := niceDecomposition(t, g, tree.NiceOptions{})
	tables, err := RunUp(nice, twoColHandlers(g))
	if err != nil {
		t.Fatal(err)
	}
	colors := extractColoring(nice, tables)
	for _, e := range g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			t.Fatalf("extracted coloring not proper at edge %v", e)
		}
	}
}

// extractColoring walks the provenance chains from an accepting root
// state, reading off bag-local assignments.
func extractColoring(d *tree.Decomposition, tables Tables[uint32]) map[int]int {
	colors := map[int]int{}
	var assign func(v int, s uint32)
	assign = func(v int, s uint32) {
		bag := sortedCopy(d.Nodes[v].Bag)
		for i, e := range bag {
			colors[e] = int((s >> uint(i)) & 1)
		}
		prov := tables[v].Prov[s]
		n := d.Nodes[v]
		if prov.First != nil && len(n.Children) >= 1 {
			assign(n.Children[0], *prov.First)
		}
		if prov.Second != nil && len(n.Children) == 2 {
			assign(n.Children[1], *prov.Second)
		}
	}
	if tables[d.Root].Len() > 0 {
		assign(d.Root, tables[d.Root].Order[0])
	}
	return colors
}

func TestRunDownEnvelope(t *testing.T) {
	// The envelope of a leaf is the entire tree, so a leaf's top-down
	// table is non-empty iff the whole graph is 2-colorable.
	for _, g := range []*graph.Graph{graph.Cycle(5), graph.Cycle(6), graph.Grid(2, 4)} {
		nice := niceDecomposition(t, g, tree.NiceOptions{BranchGuard: true})
		h := twoColHandlers(g)
		up, err := RunUp(nice, h)
		if err != nil {
			t.Fatal(err)
		}
		down, err := RunDown(nice, h, up)
		if err != nil {
			t.Fatal(err)
		}
		want := bipartite(g)
		for _, leaf := range nice.Leaves() {
			if got := down[leaf].Len() > 0; got != want {
				t.Fatalf("down table at leaf %d non-empty = %v, want %v", leaf, got, want)
			}
		}
		// And at every node: solve↓ non-empty iff solve non-empty iff
		// bipartite (2-colorability is monotone under substructures, so
		// tables can only die where a conflict exists).
		if want {
			for v := range nice.Nodes {
				if down[v].Len() == 0 {
					t.Fatalf("down table empty at node %d of bipartite graph", v)
				}
			}
		}
	}
}

func TestRunDownNeedsMatchingTables(t *testing.T) {
	g := graph.Path(3)
	nice := niceDecomposition(t, g, tree.NiceOptions{})
	h := twoColHandlers(g)
	if _, err := RunDown(nice, h, make(Tables[uint32], 1)); err == nil {
		t.Fatal("mismatched tables accepted")
	}
}

// Property: the DP agrees with BFS bipartiteness on random graphs, both
// bottom-up at the root and top-down at every leaf.
func TestQuickTwoColoringAgreesWithBFS(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		g := graph.RandomTree(n, rng)
		for i := rng.Intn(n); i > 0; i-- {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		d, err := decompose.Graph(g, decompose.MinFill)
		if err != nil {
			return false
		}
		nice, err := tree.NormalizeNice(d, tree.NiceOptions{LeafElems: allElems(n), BranchGuard: true})
		if err != nil {
			return false
		}
		h := twoColHandlers(g)
		up, err := RunUp(nice, h)
		if err != nil {
			return false
		}
		want := bipartite(g)
		if (up[nice.Root].Len() > 0) != want {
			return false
		}
		down, err := RunDown(nice, h, up)
		if err != nil {
			return false
		}
		for _, leaf := range nice.Leaves() {
			if (down[leaf].Len() > 0) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(59))}); err != nil {
		t.Fatal(err)
	}
}

func allElems(n int) *bitset.Set {
	s := bitset.New(n)
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}

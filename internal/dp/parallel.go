package dp

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/stage"
)

// maxWorkers caps the goroutine fan-out of the scheduler, mirroring the
// datalog engine's knob. Results are byte-identical at every setting:
// each node is computed exactly once, by exactly one goroutine, from
// dependencies that are complete before it starts, and evaluators built
// on Schedule iterate their inputs in a deterministic order.
var maxWorkers atomic.Int32

func init() { maxWorkers.Store(int32(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers sets the worker cap for the parallel scheduler and
// returns the previous value. Values below 1 are treated as 1 (serial).
// With more than one worker, compute callbacks may be invoked
// concurrently from multiple goroutines and must be safe for concurrent
// use (all evaluators in this repository are: they only read shared
// problem data or write disjoint per-node slots).
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int32(n)))
}

// minParallelNodes keeps tiny decompositions serial: below this node
// count the scheduling overhead exceeds the DP work.
const minParallelNodes = 64

// runChains executes compute(v) once for every node of the plan. Bottom-up
// (down=false), a chain runs after its feeder chains — the two subtrees
// below its branch head — so independent subtrees fan out across the
// worker pool; top-down (down=true) the dependencies reverse and chains
// run top node first.
//
// Cancellation: ctx is polled before every node. On cancellation (or a
// compute error, e.g. a budget violation) the workers stop computing but
// keep propagating chain completions, so the ready channel still closes,
// every goroutine exits and the pool drains without leaks; the
// (unwrapped) first error is returned.
//
// Panic containment: a panic in compute — a problem handler is arbitrary
// user code — is recovered into a *stage.PanicError instead of killing
// the worker goroutine (which would crash the process: an unrecovered
// panic in a goroutine cannot be caught anywhere else).
func runChains(ctx context.Context, p *plan, down bool, compute func(v int) error) error {
	safe := func(v int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = stage.NewPanicError(r)
			}
		}()
		if err := faultinject.Check("dp.node"); err != nil {
			return err
		}
		return compute(v)
	}
	workers := int(maxWorkers.Load())
	if workers > len(p.chains) {
		workers = len(p.chains)
	}
	if workers <= 1 || p.nodes < minParallelNodes {
		if down {
			for i := len(p.post) - 1; i >= 0; i-- {
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := safe(p.post[i]); err != nil {
					return err
				}
			}
		} else {
			for _, v := range p.post {
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := safe(v); err != nil {
					return err
				}
			}
		}
		return nil
	}
	pending := make([]int32, len(p.chains))
	ready := make(chan int, len(p.chains))
	if down {
		for id := range p.chains {
			if p.consumer[id] >= 0 {
				pending[id] = 1
			} else {
				ready <- id
			}
		}
	} else {
		copy(pending, p.branchDeps)
		for id := range p.chains {
			if p.branchDeps[id] == 0 {
				ready <- id
			}
		}
	}
	var aborted atomic.Bool
	var abortErr error
	var abortOnce sync.Once
	abort := func(err error) {
		abortOnce.Do(func() { abortErr = err })
		aborted.Store(true)
	}
	var done atomic.Int32
	total := int32(len(p.chains))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ready {
				chain := p.chains[id]
				// When aborted, skip the compute but keep the scheduling
				// bookkeeping below: successors must still become ready and
				// the completion count must still reach total, or close(ready)
				// would never fire and the pool would leak.
				if !aborted.Load() {
					if err := ctx.Err(); err != nil {
						abort(err)
					} else if err := faultinject.Check("dp.chain"); err != nil {
						// Per-chain injection point: exercises the abort
						// protocol of the parallel scheduler itself.
						abort(err)
					} else if down {
						for i := len(chain) - 1; i >= 0; i-- {
							if aborted.Load() {
								break
							}
							if err := safe(chain[i]); err != nil {
								abort(err)
								break
							}
						}
					} else {
						for _, v := range chain {
							if aborted.Load() {
								break
							}
							if err := safe(v); err != nil {
								abort(err)
								break
							}
						}
					}
				}
				if down {
					for _, f := range p.feeders[id] {
						if atomic.AddInt32(&pending[f], -1) == 0 {
							ready <- f
						}
					}
				} else {
					if c := p.consumer[id]; c >= 0 && atomic.AddInt32(&pending[c], -1) == 0 {
						ready <- c
					}
				}
				// Successor sends (above) happen before the completion count,
				// so the close below cannot race a pending send.
				if done.Add(1) == total {
					close(ready)
				}
			}
		}()
	}
	wg.Wait()
	if aborted.Load() {
		return abortErr
	}
	return ctx.Err()
}

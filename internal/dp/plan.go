package dp

import (
	"sync"
	"sync/atomic"

	"repro/internal/tree"
)

// plan caches the per-decomposition precomputation shared by every
// Schedule and Bags call: the CheckNice verdict, one sorted copy of
// every bag, the post-order, and the chain schedule driving the worker
// pool. The seed re-derived all of this — including an insertion sort
// of every bag — on every single run.
//
// Plans are cached per *tree.Decomposition identity. A decomposition must
// not be structurally mutated between scheduled runs; every in-repo call
// site treats nice decompositions as immutable once normalized.
type plan struct {
	nodes   int
	root    int
	niceErr error
	bags    [][]int // node → sorted bag
	post    []int   // children before parents

	// Chain schedule: a chain is a maximal path of unary (introduce /
	// forget / copy) nodes above a head node (leaf or branch), listed
	// bottom-to-top. Chains are the unit of work of the worker pool —
	// fine enough to expose every independent subtree, coarse enough
	// that scheduling overhead stays off the per-node path.
	chains     [][]int // chain → node IDs, bottom-to-top
	consumer   []int   // chain → chain containing its top node's parent (-1 for the root chain)
	feeders    [][]int // chain → chains it unblocks in a top-down pass
	branchDeps []int32 // chain → number of feeder chains (0 for leaf-headed, 2 for branch-headed)
}

func buildPlan(d *tree.Decomposition) *plan {
	p := &plan{nodes: d.Len(), root: d.Root}
	p.niceErr = tree.CheckNice(d)
	if p.niceErr != nil {
		return p
	}
	n := d.Len()
	p.bags = make([][]int, n)
	for v := 0; v < n; v++ {
		p.bags[v] = sortedCopy(d.Nodes[v].Bag)
	}
	p.post = d.PostOrder()

	chainOf := make([]int, n)
	for _, v := range p.post {
		if len(d.Nodes[v].Children) == 1 {
			continue // unary nodes are absorbed by the chain rising from below
		}
		id := len(p.chains)
		chain := []int{v}
		chainOf[v] = id
		cur := v
		for {
			pa := d.Nodes[cur].Parent
			if pa < 0 || len(d.Nodes[pa].Children) != 1 {
				break
			}
			chain = append(chain, pa)
			chainOf[pa] = id
			cur = pa
		}
		p.chains = append(p.chains, chain)
	}
	p.consumer = make([]int, len(p.chains))
	p.feeders = make([][]int, len(p.chains))
	p.branchDeps = make([]int32, len(p.chains))
	for id, chain := range p.chains {
		top := chain[len(chain)-1]
		pa := d.Nodes[top].Parent
		if pa < 0 {
			p.consumer[id] = -1
			continue
		}
		c := chainOf[pa] // pa has two children, so it heads its own chain
		p.consumer[id] = c
		p.feeders[c] = append(p.feeders[c], id)
	}
	for id := range p.chains {
		p.branchDeps[id] = int32(len(p.feeders[id]))
	}
	return p
}

const planCacheLimit = 512

var (
	planCache     sync.Map // *tree.Decomposition → *plan
	planCacheSize atomic.Int32
)

// planFor returns the cached plan for d, building it on first use. The
// cache is bounded: past the limit it is dropped wholesale rather than
// tracked LRU — plans rebuild cheaply relative to the DP they front.
func planFor(d *tree.Decomposition) *plan {
	if v, ok := planCache.Load(d); ok {
		p := v.(*plan)
		if p.nodes == d.Len() && p.root == d.Root {
			return p
		}
	}
	p := buildPlan(d)
	if planCacheSize.Add(1) > planCacheLimit {
		planCache.Range(func(k, _ any) bool { planCache.Delete(k); return true })
		planCacheSize.Store(1)
	}
	planCache.Store(d, p)
	return p
}

func sortedCopy(bag []int) []int {
	out := append([]int(nil), bag...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

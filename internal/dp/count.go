package dp

import (
	"context"
	"fmt"

	"repro/internal/stage"
	"repro/internal/tree"
)

// RunUpCount computes weighted bottom-up tables: count[v][s] is the
// number of distinct derivations of state s at node v — for partition
// problems like k-coloring, the number of solutions of the subtree whose
// bag restriction is s. Leaves contribute one derivation per state,
// unary transitions inherit and sum, and branch nodes multiply (the two
// subtrees agree exactly on the bag, which the shared state fixes).
//
// Counts use uint64 and may overflow for astronomically many solutions;
// callers needing exact large counts should layer big.Int accumulation on
// the plain RunUp tables. The run shares the cached plan and worker pool
// of RunUp; accumulation by sum and product is order-independent, so the
// tables are identical at every worker count.
func RunUpCount[S comparable](d *tree.Decomposition, h Handlers[S]) ([]map[S]uint64, error) {
	return RunUpCountCtx(context.Background(), d, h)
}

// RunUpCountCtx is RunUpCount with cancellation support; see RunUpCtx
// for the cancellation contract.
func RunUpCountCtx[S comparable](ctx context.Context, d *tree.Decomposition, h Handlers[S]) ([]map[S]uint64, error) {
	p := planFor(d)
	if p.niceErr != nil {
		return nil, fmt.Errorf("dp: %w", p.niceErr)
	}
	b := stage.BudgetFrom(ctx)
	tables := make([]map[S]uint64, d.Len())
	err := runChains(ctx, p, false, func(v int) error {
		n := &d.Nodes[v]
		bag := p.bags[v]
		tbl := map[S]uint64{}
		switch n.Kind {
		case tree.KindLeaf:
			for _, s := range h.Leaf(v, bag) {
				tbl[s]++
			}
		case tree.KindIntroduce, tree.KindForget, tree.KindCopy:
			for cs, count := range tables[n.Children[0]] {
				var results []S
				switch n.Kind {
				case tree.KindIntroduce:
					results = h.Introduce(v, bag, n.Elem, cs)
				case tree.KindForget:
					results = h.Forget(v, bag, n.Elem, cs)
				default:
					if h.Copy == nil {
						results = []S{cs}
					} else {
						results = h.Copy(v, bag, cs)
					}
				}
				for _, s := range results {
					tbl[s] += count
				}
			}
		case tree.KindBranch:
			for s1, c1 := range tables[n.Children[0]] {
				for s2, c2 := range tables[n.Children[1]] {
					for _, s := range h.Branch(v, bag, s1, s2) {
						tbl[s] += c1 * c2
					}
				}
			}
		default:
			panic(fmt.Sprintf("dp: node %d has kind %v", v, n.Kind))
		}
		if err := b.AddTableEntries(len(tbl)); err != nil {
			return err
		}
		tables[v] = tbl
		return nil
	})
	if err != nil {
		return nil, stage.Wrap(stage.DP, err)
	}
	return tables, nil
}

package solver

import (
	"reflect"
	"testing"
)

func TestPosition(t *testing.T) {
	tests := []struct {
		bag  []int
		elem int
		want int
	}{
		{nil, 0, -1},
		{[]int{}, 3, -1},
		{[]int{5}, 5, 0},
		{[]int{5}, 4, -1},
		{[]int{5}, 6, -1},
		{[]int{1, 3, 7}, 1, 0},
		{[]int{1, 3, 7}, 3, 1},
		{[]int{1, 3, 7}, 7, 2},
		{[]int{1, 3, 7}, 0, -1},
		{[]int{1, 3, 7}, 2, -1},
		{[]int{1, 3, 7}, 9, -1},
	}
	for _, tc := range tests {
		if got := Position(tc.bag, tc.elem); got != tc.want {
			t.Errorf("Position(%v, %d) = %d, want %d", tc.bag, tc.elem, got, tc.want)
		}
		if got := Contains(tc.bag, tc.elem); got != (tc.want >= 0) {
			t.Errorf("Contains(%v, %d) = %v, want %v", tc.bag, tc.elem, got, tc.want >= 0)
		}
	}
}

func TestInsertRemoveSorted(t *testing.T) {
	tests := []struct {
		xs         []int
		v          int
		insert     []int
		insertUniq []int
		remove     []int
	}{
		{nil, 4, []int{4}, []int{4}, []int{}},
		{[]int{2}, 1, []int{1, 2}, []int{1, 2}, []int{2}},
		{[]int{2}, 3, []int{2, 3}, []int{2, 3}, []int{2}},
		{[]int{2}, 2, []int{2, 2}, []int{2}, []int{}},
		{[]int{1, 3, 5}, 4, []int{1, 3, 4, 5}, []int{1, 3, 4, 5}, []int{1, 3, 5}},
		{[]int{1, 3, 5}, 3, []int{1, 3, 3, 5}, []int{1, 3, 5}, []int{1, 5}},
		{[]int{1, 3, 5}, 0, []int{0, 1, 3, 5}, []int{0, 1, 3, 5}, []int{1, 3, 5}},
		{[]int{1, 3, 5}, 6, []int{1, 3, 5, 6}, []int{1, 3, 5, 6}, []int{1, 3, 5}},
	}
	for _, tc := range tests {
		orig := append([]int(nil), tc.xs...)
		if got := InsertSorted(tc.xs, tc.v); !reflect.DeepEqual(got, tc.insert) {
			t.Errorf("InsertSorted(%v, %d) = %v, want %v", tc.xs, tc.v, got, tc.insert)
		}
		if got := InsertSortedUnique(tc.xs, tc.v); !reflect.DeepEqual(got, tc.insertUniq) {
			t.Errorf("InsertSortedUnique(%v, %d) = %v, want %v", tc.xs, tc.v, got, tc.insertUniq)
		}
		if got := RemoveSorted(tc.xs, tc.v); !reflect.DeepEqual(got, tc.remove) {
			t.Errorf("RemoveSorted(%v, %d) = %v, want %v", tc.xs, tc.v, got, tc.remove)
		}
		if !reflect.DeepEqual(tc.xs, orig) {
			t.Errorf("input %v mutated to %v", orig, tc.xs)
		}
	}
}

func TestWidthPacking(t *testing.T) {
	tests := []struct{ w Width }{{1}, {2}, {4}, {8}}
	for _, tc := range tests {
		w := tc.w
		if got, want := w.Max(), 64/int(w); got != want {
			t.Errorf("Width(%d).Max() = %d, want %d", w, got, want)
		}
		// Fill every position with a distinct value and read them back.
		var s uint64
		for p := 0; p < w.Max(); p++ {
			s = w.Set(s, p, uint64(p)%(1<<w))
		}
		for p := 0; p < w.Max(); p++ {
			if got := w.At(s, p); got != uint64(p)%(1<<w) {
				t.Fatalf("Width(%d): At(%d) = %d after Set, want %d", w, p, got, uint64(p)%(1<<w))
			}
		}
		// Set overwrites without disturbing neighbors.
		s2 := w.Set(s, 1, 0)
		for p := 0; p < w.Max(); p++ {
			want := uint64(p) % (1 << w)
			if p == 1 {
				want = 0
			}
			if got := w.At(s2, p); got != want {
				t.Fatalf("Width(%d): At(%d) = %d after overwrite, want %d", w, p, got, want)
			}
		}
	}
}

// TestWidthInsertDropMirrorsSortedBags pins the defining property:
// Insert/Drop keep packed statuses aligned with their bag elements
// under the corresponding InsertSorted/RemoveSorted bag edit.
func TestWidthInsertDropMirrorsSortedBags(t *testing.T) {
	const w = Width(2)
	bag := []int{2, 5, 9}
	status := map[int]uint64{2: 1, 5: 3, 9: 2}
	var s uint64
	for p, e := range bag {
		s = w.Set(s, p, status[e])
	}
	for _, elem := range []int{0, 4, 7, 11} { // before, between, between, after
		grown := InsertSorted(bag, elem)
		p := Position(grown, elem)
		s2 := w.Insert(s, p, 0)
		for q, e := range grown {
			want := status[e] // 0 for the new elem
			if got := w.At(s2, q); got != want {
				t.Fatalf("insert %d: position %d (elem %d) = %d, want %d", elem, q, e, got, want)
			}
		}
		// Dropping it again restores the original packed state.
		if back := w.Drop(s2, p); back != s {
			t.Fatalf("insert %d then drop: %b, want %b", elem, back, s)
		}
	}
}

func TestWidthInsertAtBoundary(t *testing.T) {
	const w = Width(2)
	// Inserting at the last representable position must not clobber the
	// low positions (the shifted-out high bits are beyond capacity).
	var s uint64
	for p := 0; p < w.Max(); p++ {
		s = w.Set(s, p, 3)
	}
	s2 := w.Insert(s, 0, 1)
	if got := w.At(s2, 0); got != 1 {
		t.Fatalf("At(0) = %d after boundary insert, want 1", got)
	}
	for p := 1; p < w.Max(); p++ {
		if got := w.At(s2, p); got != 3 {
			t.Fatalf("At(%d) = %d after boundary insert, want 3", p, got)
		}
	}
}

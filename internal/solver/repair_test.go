package solver_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dp"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/solver"
	"repro/internal/tree"
)

// sameTables asserts byte-identity of two table sets: Order, Vals and
// Provs all equal, node by node.
func sameTables(t *testing.T, got, want solver.Tables[uint64, int], context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tables, want %d", context, len(got), len(want))
	}
	for v := range got {
		if !reflect.DeepEqual(got[v].Order, want[v].Order) {
			t.Fatalf("%s: node %d Order differs:\n  got  %v\n  want %v", context, v, got[v].Order, want[v].Order)
		}
		if !reflect.DeepEqual(got[v].Vals, want[v].Vals) {
			t.Fatalf("%s: node %d Vals differ", context, v)
		}
		if !reflect.DeepEqual(got[v].Provs, want[v].Provs) {
			t.Fatalf("%s: node %d Provs differ", context, v)
		}
	}
}

// withinBagEdges lists vertex pairs co-resident in some bag — the edge
// flips a decomposition can absorb without a shape change.
func withinBagEdges(d *tree.Decomposition) [][2]int {
	seen := map[[2]int]bool{}
	var out [][2]int
	for _, n := range d.Nodes {
		for i := 0; i < len(n.Bag); i++ {
			for j := i + 1; j < len(n.Bag); j++ {
				u, v := n.Bag[i], n.Bag[j]
				if u > v {
					u, v = v, u
				}
				if !seen[[2]int{u, v}] {
					seen[[2]int{u, v}] = true
					out = append(out, [2]int{u, v})
				}
			}
		}
	}
	return out
}

// TestRepairByteIdentical is the solver-layer differential: over random
// partial k-trees and random within-bag edge flips, Repair over the
// dirty bags must produce tables byte-identical to a cold Up of the
// edited problem — for every semiring mode, at several worker counts,
// through a 50-edit sequence.
func TestRepairByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctx := context.Background()
	for trial := 0; trial < 6; trial++ {
		g := graph.PartialKTree(18+rng.Intn(12), 2, 0.3, rng)
		nice := niceFor(t, g)
		edges := withinBagEdges(nice)
		cur, err := solver.Up[uint64, int](ctx, nice, twoCol{g}, solver.MinCost{})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 50; step++ {
			e := edges[rng.Intn(len(edges))]
			if g.HasEdge(e[0], e[1]) {
				g.RemoveEdge(e[0], e[1])
			} else {
				g.AddEdge(e[0], e[1])
			}
			dirty := solver.DirtyBags(nice, []int{e[0], e[1]})
			if len(dirty) == 0 {
				t.Fatalf("within-bag edge %v has no dirty bags", e)
			}
			cur, err = solver.Repair(ctx, nice, twoCol{g}, solver.MinCost{}, cur, dirty)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				prev := dp.SetMaxWorkers(workers)
				cold, err := solver.Up[uint64, int](ctx, nice, twoCol{g}, solver.MinCost{})
				dp.SetMaxWorkers(prev)
				if err != nil {
					t.Fatal(err)
				}
				sameTables(t, cur, cold, "trial/step/workers")
			}
		}
	}
}

// TestRepairFaultFallsBackClean proves the chaos property for the new
// injection point: a faulted Repair surfaces a stage-tagged error, and a
// retry (the caller's cold recompute) over the same inputs still matches
// a cold Up — the previous tables are not poisoned.
func TestRepairFaultFallsBackClean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.PartialKTree(20, 2, 0.3, rng)
	nice := niceFor(t, g)
	ctx := context.Background()
	up, err := solver.Up[uint64, int](ctx, nice, twoCol{g}, solver.MinCost{})
	if err != nil {
		t.Fatal(err)
	}
	e := withinBagEdges(nice)[0]
	g.AddEdge(e[0], e[1])
	dirty := solver.DirtyBags(nice, []int{e[0], e[1]})

	faultinject.FailAt("solver.repair", 1)
	defer faultinject.Reset()
	if _, err := solver.Repair(ctx, nice, twoCol{g}, solver.MinCost{}, up, dirty); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed repair: got %v, want injected fault", err)
	}
	faultinject.Reset()

	// The fallback path: prev tables are intact, so a retry succeeds and
	// matches cold.
	repaired, err := solver.Repair(ctx, nice, twoCol{g}, solver.MinCost{}, up, dirty)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := solver.Up[uint64, int](ctx, nice, twoCol{g}, solver.MinCost{})
	if err != nil {
		t.Fatal(err)
	}
	sameTables(t, repaired, cold, "post-fault retry")
}

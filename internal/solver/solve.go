package solver

import (
	"context"
	"fmt"
	"math/big"

	"repro/internal/dp"
	"repro/internal/faultinject"
	"repro/internal/stage"
	"repro/internal/tree"
)

// Mode names an evaluation mode, for session memoization keys and
// diagnostics. Each mode is a (semiring, root aggregation) pair.
type Mode string

const (
	// ModeDecide asks whether any accepting root state is derivable.
	ModeDecide Mode = "decide"
	// ModeCount asks for the exact number of solutions.
	ModeCount Mode = "count"
	// ModeOptimize asks for the minimum cost and an argmin witness.
	ModeOptimize Mode = "optimize"
)

// Decide reports whether the problem has a solution: it evaluates the
// decision semiring bottom-up and scans the root table for an accepting
// state. Unlike Witness it skips provenance tracking — the yes/no
// answer needs no derivation.
func Decide[S comparable](ctx context.Context, d *tree.Decomposition, p Problem[S]) (bool, error) {
	tables, err := upWith(ctx, d, p, Decision{}, false)
	if err != nil {
		return false, err
	}
	bags, err := dp.Bags(d)
	if err != nil {
		return false, stage.Wrap(stage.Solver, err)
	}
	root, rootBag := d.Root, bags[d.Root]
	for _, s := range tables[root].Order {
		if p.Accept(root, rootBag, s) {
			return true, nil
		}
	}
	return false, nil
}

// Witness is Decide with a derivation: it returns a walkable derivation
// of the first accepting root state (in the deterministic table order),
// or nil if the problem has no solution.
func Witness[S comparable](ctx context.Context, d *tree.Decomposition, p Problem[S]) (*Derivation[S, bool], error) {
	tables, err := Up(ctx, d, p, Decision{})
	if err != nil {
		return nil, err
	}
	bags, err := dp.Bags(d)
	if err != nil {
		return nil, stage.Wrap(stage.Solver, err)
	}
	root, rootBag := d.Root, bags[d.Root]
	for _, s := range tables[root].Order {
		if p.Accept(root, rootBag, s) {
			return &Derivation[S, bool]{Root: s, Value: true, d: d, tables: tables}, nil
		}
	}
	return nil, nil
}

// Count returns the exact number of solutions: the sum, over accepting
// root states, of the number of distinct derivations, evaluated in the
// big-int counting semiring.
func Count[S comparable](ctx context.Context, d *tree.Decomposition, p Problem[S]) (*big.Int, error) {
	tables, err := upWith(ctx, d, p, Counting{}, false)
	if err != nil {
		return nil, err
	}
	bags, err := dp.Bags(d)
	if err != nil {
		return nil, stage.Wrap(stage.Solver, err)
	}
	root, rootBag := d.Root, bags[d.Root]
	total := new(big.Int)
	rt := &tables[root]
	for i, s := range rt.Order {
		if p.Accept(root, rootBag, s) {
			total.Add(total, rt.Vals[i])
		}
	}
	return total, nil
}

// Optimize returns a minimum-cost solution: the tropical semiring's
// value at the best accepting root state, with a walkable argmin
// derivation. It returns nil if no accepting root state is derivable
// (the problem is infeasible). Ties keep the earliest state in the
// deterministic table order, so the witness is identical at every
// worker count.
func Optimize[S comparable](ctx context.Context, d *tree.Decomposition, p Problem[S]) (*Derivation[S, int], error) {
	tables, err := Up(ctx, d, p, MinCost{})
	if err != nil {
		return nil, err
	}
	bags, err := dp.Bags(d)
	if err != nil {
		return nil, stage.Wrap(stage.Solver, err)
	}
	root, rootBag := d.Root, bags[d.Root]
	rt := &tables[root]
	best := -1
	for i, s := range rt.Order {
		if !p.Accept(root, rootBag, s) {
			continue
		}
		if best < 0 || rt.Vals[i] < rt.Vals[best] {
			best = i
		}
	}
	if best < 0 {
		return nil, nil
	}
	return &Derivation[S, int]{Root: rt.Order[best], Value: rt.Vals[best], d: d, tables: tables}, nil
}

// Derivation is one complete derivation tree rooted at an accepting
// root state, reconstructed lazily from the bottom-up tables'
// provenance. Value is the state's accumulated semiring value (true for
// decision, the minimum cost for optimization).
type Derivation[S comparable, V any] struct {
	Root  S
	Value V

	d      *tree.Decomposition
	tables Tables[S, V]
}

// Nice returns the nice decomposition the derivation was computed
// over, so callers can pair Walk's node IDs with bags (dp.Bags)
// without re-deriving the decomposition.
func (dv *Derivation[S, V]) Nice() *tree.Decomposition { return dv.d }

// Walk visits every (node, state) pair of the derivation, parents
// before children, following each table's preferred provenance. The
// visit callback receives the node ID (bags are available via dp.Bags)
// and the state the derivation assigns there.
func (dv *Derivation[S, V]) Walk(visit func(node int, s S) error) error {
	return WalkProv(dv.d, dv.tables, dv.d.Root, dv.Root, visit)
}

// WalkProv walks the preferred derivation of state s at node v through
// bottom-up tables, visiting parents before children. It is the shared
// witness-reconstruction core behind Derivation.Walk and the problem
// packages' typed witness accessors (coloring assignments, cover sets,
// …).
func WalkProv[S comparable, V any](d *tree.Decomposition, tables Tables[S, V], v int, s S, visit func(node int, s S) error) error {
	if err := faultinject.Check("solver.witness"); err != nil {
		return stage.Wrap(stage.Solver, err)
	}
	if err := visit(v, s); err != nil {
		return err
	}
	prov, ok := tables[v].Prov(s)
	if !ok {
		return stage.Wrap(stage.Solver, fmt.Errorf("solver: derivation walk reached a state missing from the table at node %d (tables from a different run?)", v))
	}
	n := &d.Nodes[v]
	if prov.First < 0 {
		return nil // leaf state
	}
	c1 := n.Children[0]
	if err := WalkProv(d, tables, c1, tables[c1].Order[prov.First], visit); err != nil {
		return err
	}
	if prov.Second >= 0 {
		c2 := n.Children[1]
		return WalkProv(d, tables, c2, tables[c2].Order[prov.Second], visit)
	}
	return nil
}

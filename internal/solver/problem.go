package solver

// Out is one transition output: a produced state together with the cost
// delta of producing it. Decision and counting semirings ignore the
// cost; the optimization semiring accumulates it. Problems that are pure
// decision problems return Out{State: s} (zero cost) everywhere.
type Out[S comparable] struct {
	State S
	Cost  int
}

// Problem is the algebra a workload implements once to run in every
// mode. The hooks mirror the node kinds of the Section 5 modified
// normal form; each receives the node ID and its sorted bag, and
// returns the states the transition produces (empty kills the partial
// solution). When the dp worker cap is above 1 the hooks are invoked
// from multiple goroutines and must be safe for concurrent use.
type Problem[S comparable] interface {
	// Name identifies the problem, e.g. for session memoization keys.
	Name() string
	// Leaf enumerates the base states of a leaf node with their costs.
	Leaf(node int, bag []int) []Out[S]
	// Introduce extends a child state with a newly introduced element;
	// the returned costs are deltas on top of the child's accumulation.
	Introduce(node int, bag []int, elem int, child S) []Out[S]
	// Forget projects a child state after elem leaves the bag.
	Forget(node int, bag []int, elem int, child S) []Out[S]
	// Join combines the states of two children with identical bags. The
	// returned cost is added to the SUM of the children's accumulated
	// costs — use it to subtract contributions the two subtrees both
	// counted for the shared bag.
	Join(node int, bag []int, s1, s2 S) []Out[S]
	// Accept reports whether a root state represents a full solution.
	// The mode front-ends (Decide, Count, Optimize) quantify over
	// accepting root states only.
	Accept(node int, bag []int, s S) bool
}

// Copier is an optional extension for problems that transform states at
// equal-bag copy edges. Problems that do not implement it get zero-cost
// pass-through, which is what every current workload wants.
type Copier[S comparable] interface {
	Copy(node int, bag []int, child S) []Out[S]
}

// Appender is an optional fast path: problems that implement it receive
// a scratch slice to append transition outputs to, and the evaluator
// reuses that slice across every child state of a node — one transition
// buffer per node instead of one allocation per (state, transition).
// Each method is the append-form twin of the Problem hook of the same
// base name: append outputs to dst (always passed with len 0) and
// return it. Implementations must not retain dst across calls; the
// engine recycles it immediately. Hot workloads implement both
// interfaces, with the Problem hooks delegating to the append forms.
type Appender[S comparable] interface {
	AppendLeaf(dst []Out[S], node int, bag []int) []Out[S]
	AppendIntroduce(dst []Out[S], node int, bag []int, elem int, child S) []Out[S]
	AppendForget(dst []Out[S], node int, bag []int, elem int, child S) []Out[S]
	AppendJoin(dst []Out[S], node int, bag []int, s1, s2 S) []Out[S]
}

package solver

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dp"
	"repro/internal/faultinject"
	"repro/internal/stage"
	"repro/internal/tree"
)

// Repair re-evaluates bottom-up tables after a local change to the
// problem's inputs that left the decomposition's shape intact: every
// dirty node and each of its ancestors up to the root is recomputed from
// its (reused or already-recomputed) child tables, and every other table
// is carried over from prev untouched — O(dirty · depth) node
// evaluations instead of O(n). The problem p must reflect the new state;
// prev must come from an Up (or previous Repair) of the same
// decomposition with the same provenance setting.
//
// Because a node's table is a deterministic function of its children's
// tables and the problem, the result is byte-identical (values, Order,
// provenance) to a cold Up over the new state at any worker count —
// provided dirty includes every node whose transition outputs changed.
// For within-bag edits (a fact over elements already co-resident in a
// bag, the only edits that leave a decomposition intact) DirtyBags
// computes such a set. The returned tables share unchanged entries with
// prev; prev itself is not modified.
func Repair[S comparable, V any](ctx context.Context, d *tree.Decomposition, p Problem[S], r Semiring[V], prev Tables[S, V], dirty []int) (Tables[S, V], error) {
	if err := faultinject.Check("solver.repair"); err != nil {
		return nil, stage.Wrap(stage.Solver, err)
	}
	if len(prev) != d.Len() {
		return nil, stage.Wrap(stage.Solver, fmt.Errorf("solver: previous tables have %d nodes, decomposition %d", len(prev), d.Len()))
	}
	bags, err := dp.Bags(d)
	if err != nil {
		return nil, stage.Wrap(stage.Solver, fmt.Errorf("solver: %w", err))
	}
	redo := make([]bool, d.Len())
	for _, v := range dirty {
		if v < 0 || v >= d.Len() {
			return nil, stage.Wrap(stage.Solver, fmt.Errorf("solver: dirty node %d out of range", v))
		}
		for x := v; x >= 0 && !redo[x]; x = d.Nodes[x].Parent {
			redo[x] = true
		}
	}
	trackProv := false
	for i := range prev {
		if prev[i].Provs != nil {
			trackProv = true
			break
		}
	}
	tables := make(Tables[S, V], d.Len())
	copy(tables, prev)
	b := stage.BudgetFrom(ctx)
	// Root paths are chains: recompute serially in post-order (children
	// before parents). Determinism is inherited from upNode, so the
	// worker-count independence of a cold Up carries over trivially.
	for _, v := range d.PostOrder() {
		if !redo[v] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, stage.Wrap(stage.Solver, err)
		}
		if err := upNode(d, bags, p, r, b, tables, trackProv, v); err != nil {
			return nil, stage.Wrap(stage.Solver, err)
		}
	}
	return tables, nil
}

// DirtyBags returns the nodes whose bag contains all of elems — for a
// fact edit over those elements, the nodes whose transition outputs may
// differ, i.e. the dirty set to pass to Repair. Problems evaluate
// constraints among co-resident elements only, so a bag missing one of
// the fact's elements cannot observe the edit.
func DirtyBags(d *tree.Decomposition, elems []int) []int {
	var out []int
	for v := range d.Nodes {
		all := true
		for _, e := range elems {
			found := false
			for _, b := range d.Nodes[v].Bag {
				if b == e {
					found = true
					break
				}
			}
			if !found {
				all = false
				break
			}
		}
		if all {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// Package solver is the generic semiring problem algebra behind the
// Section 5 solvers: a Problem describes how partial solutions propagate
// through the nodes of a nice tree decomposition (leaf / introduce /
// forget / join), and a Semiring fixes what is accumulated per state —
// reachability (decision), derivation counts (counting) or minimum cost
// with an argmin witness (optimization). A problem is written once and
// runs in all three modes by swapping the semiring; the evaluator rides
// dp's cached plans and chain-parallel worker pool, so tables are
// byte-identical at every worker count.
//
// This file holds the shared bag utilities: position maps, sorted-slice
// editing, and fixed-width bit-packed per-element status vectors. These
// subsume the private near-copies that the problem packages (threecol,
// vcover, domset, primality) each grew independently.
package solver

// Position returns the index of elem in the sorted bag, or -1 if the
// bag does not contain it. Bags have at most width+1 entries, so a
// linear scan beats binary search in practice.
func Position(bag []int, elem int) int {
	for i, e := range bag {
		if e == elem {
			return i
		}
		if e > elem {
			return -1
		}
	}
	return -1
}

// Contains reports whether the sorted bag contains elem.
func Contains(bag []int, elem int) bool { return Position(bag, elem) >= 0 }

// InsertSorted returns a new sorted slice with v inserted, keeping the
// input intact. Duplicates are preserved; use InsertSortedUnique for
// set semantics.
func InsertSorted(xs []int, v int) []int {
	out := make([]int, 0, len(xs)+1)
	i := 0
	for ; i < len(xs) && xs[i] < v; i++ {
		out = append(out, xs[i])
	}
	out = append(out, v)
	out = append(out, xs[i:]...)
	return out
}

// InsertSortedUnique returns a new sorted slice with v inserted unless
// already present, keeping the input intact.
func InsertSortedUnique(xs []int, v int) []int {
	if Position(xs, v) >= 0 {
		return append([]int(nil), xs...)
	}
	return InsertSorted(xs, v)
}

// RemoveSorted returns a new sorted slice with the first occurrence of
// v removed, keeping the input intact. The input is returned copied
// unchanged if v is absent.
func RemoveSorted(xs []int, v int) []int {
	out := make([]int, 0, len(xs))
	removed := false
	for _, x := range xs {
		if !removed && x == v {
			removed = true
			continue
		}
		out = append(out, x)
	}
	return out
}

// Width is the number of bits a packed status vector spends per bag
// position. A uint64 state then holds up to 64/Width positions, with
// position 0 in the lowest bits — so iterating combinations by
// incrementing an integer varies position 0 fastest, the enumeration
// order the decision tables' first-derivation determinism pins.
type Width uint

// Max returns how many positions a uint64 can hold at this width.
func (w Width) Max() int { return 64 / int(w) }

func (w Width) mask() uint64 { return 1<<w - 1 }

// At extracts the status at position p.
func (w Width) At(s uint64, p int) uint64 {
	return s >> (uint(p) * uint(w)) & w.mask()
}

// Set overwrites the status at an existing position p.
func (w Width) Set(s uint64, p int, v uint64) uint64 {
	shift := uint(p) * uint(w)
	return s&^(w.mask()<<shift) | v<<shift
}

// Insert makes room at position p — shifting positions p and above up by
// one — and stores v there. It is the packed mirror of InsertSorted:
// when elem lands at Position(bag, elem)=p of the grown bag, the old
// statuses keep their elements.
func (w Width) Insert(s uint64, p int, v uint64) uint64 {
	shift := uint(p) * uint(w)
	low := s & (1<<shift - 1)
	high := s >> shift << (shift + uint(w))
	return high | low | v<<shift
}

// Drop removes position p, shifting positions above it down by one —
// the packed mirror of RemoveSorted.
func (w Width) Drop(s uint64, p int) uint64 {
	shift := uint(p) * uint(w)
	low := s & (1<<shift - 1)
	high := s >> (shift + uint(w)) << shift
	return high | low
}

package solver

import "math/big"

// Semiring fixes what the evaluator accumulates per (node, state). The
// engine computes, for every derivation of a state, the Times-product
// of the child values and the lifted transition cost, and folds
// alternative derivations with Plus.
//
// Contracts the engine relies on:
//
//   - Weight and Times must NOT mutate their arguments and must return
//     a value safe for the caller to own: child values are shared by
//     every derivation that reads them, and leaf weights are stored
//     directly in table cells (return a fresh value for reference
//     types).
//   - Plus(acc, alt) owns acc (the value stored in the table) and may
//     mutate it in place for reference types. It returns the value to
//     keep and whether the stored cell must be REPLACED — value and
//     provenance — because alt displaced acc as the preferred
//     derivation. Returning false means the stored cell already reflects
//     the fold (either unchanged, or mutated in place).
//   - Both must be order-independent up to the replacement rule, so the
//     chain-parallel schedule yields identical tables at any worker
//     count. All three semirings below fold by ∨, + or min, which are
//     associative and commutative.
type Semiring[V any] interface {
	// Weight lifts a transition's cost delta into the value domain.
	Weight(cost int) V
	// Times combines a child value with another factor (a second child
	// value, or a lifted cost).
	Times(a, b V) V
	// Plus folds an alternative derivation into the accumulated value.
	Plus(acc, alt V) (V, bool)
	// Extend is Times(child, Weight(cost)) fused: the unary-transition
	// fast path, one dynamic call per output instead of two. Same
	// ownership contract as Times.
	Extend(child V, cost int) V
	// Merge is Times(Times(v1, v2), Weight(cost)) fused: the branch fast
	// path. Same ownership contract as Times.
	Merge(v1, v2 V, cost int) V
}

// Decision is the boolean semiring (∨, ∧): a state's value is simply
// "derivable", and the first derivation's provenance is kept, so the
// witness follows the table's deterministic first-derivation order.
type Decision struct{}

// Weight lifts any cost to true (derivable).
func (Decision) Weight(int) bool { return true }

// Times is logical and.
func (Decision) Times(a, b bool) bool { return a && b }

// Plus is logical or; the stored cell never needs replacing, so the
// first derivation's provenance wins.
func (Decision) Plus(acc, alt bool) (bool, bool) { return acc || alt, false }

// Extend of a derivable child is derivable.
func (Decision) Extend(child bool, _ int) bool { return child }

// Merge is logical and.
func (Decision) Merge(v1, v2 bool, _ int) bool { return v1 && v2 }

// Counting is the arithmetic semiring over big.Int (+, ×): a state's
// value is its number of distinct derivations — for partition problems,
// the number of solutions of the subtree whose bag restriction is the
// state. Exact at any magnitude, unlike the uint64 counters this
// replaces.
type Counting struct{}

// Weight lifts any cost to 1 (one derivation). The value is fresh on
// every call: leaf weights are stored directly in table cells, which
// Plus later mutates in place.
func (Counting) Weight(int) *big.Int { return big.NewInt(1) }

// Times multiplies into a fresh value — child values are shared and
// must not be aliased by the result (Plus mutates accumulators).
func (Counting) Times(a, b *big.Int) *big.Int { return new(big.Int).Mul(a, b) }

// Plus adds in place into the accumulator it owns.
func (Counting) Plus(acc, alt *big.Int) (*big.Int, bool) {
	return acc.Add(acc, alt), false
}

// Extend multiplies by Weight(cost) = 1 — but must still return a fresh
// value: the result lands in a table cell that Plus mutates in place,
// and the child is shared.
func (Counting) Extend(child *big.Int, _ int) *big.Int { return new(big.Int).Set(child) }

// Merge multiplies the two child counts into a fresh value.
func (Counting) Merge(v1, v2 *big.Int, _ int) *big.Int { return new(big.Int).Mul(v1, v2) }

// MinCost is the tropical semiring (min, +): a state's value is the
// minimum accumulated cost over its derivations, and the provenance
// tracks one argmin derivation — strictly-better replacement, so ties
// keep the first derivation and the witness stays deterministic.
type MinCost struct{}

// Weight lifts a cost delta to itself.
func (MinCost) Weight(cost int) int { return cost }

// Times adds costs.
func (MinCost) Times(a, b int) int { return a + b }

// Plus keeps the minimum, replacing the stored cell only on strict
// improvement.
func (MinCost) Plus(acc, alt int) (int, bool) {
	if alt < acc {
		return alt, true
	}
	return acc, false
}

// Extend adds the cost delta to the child's accumulated cost.
func (MinCost) Extend(child, cost int) int { return child + cost }

// Merge sums the children's costs and the delta.
func (MinCost) Merge(v1, v2, cost int) int { return v1 + v2 + cost }

package solver_test

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/decompose"
	"repro/internal/dp"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/solver"
	"repro/internal/stage"
	"repro/internal/testutil/leak"
	"repro/internal/tree"
)

// twoCol is proper 2-coloring: one bit per sorted-bag position, cost =
// number of vertices colored 1 (so Optimize minimizes color-1 usage).
type twoCol struct {
	g *graph.Graph
}

const w1 = solver.Width(1)

func (p twoCol) Name() string { return "two-coloring" }

func (p twoCol) proper(bag []int, m uint64) bool {
	for i := 0; i < len(bag); i++ {
		for j := i + 1; j < len(bag); j++ {
			if p.g.HasEdge(bag[i], bag[j]) && m>>uint(i)&1 == m>>uint(j)&1 {
				return false
			}
		}
	}
	return true
}

func (p twoCol) Leaf(_ int, bag []int) []solver.Out[uint64] {
	var out []solver.Out[uint64]
	for m := uint64(0); m < 1<<uint(len(bag)); m++ {
		if p.proper(bag, m) {
			cost := 0
			for q := range bag {
				cost += int(m >> uint(q) & 1)
			}
			out = append(out, solver.Out[uint64]{State: m, Cost: cost})
		}
	}
	return out
}

func (p twoCol) Introduce(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	q := solver.Position(bag, elem)
	var out []solver.Out[uint64]
	for bit := uint64(0); bit <= 1; bit++ {
		if m := w1.Insert(child, q, bit); p.proper(bag, m) {
			out = append(out, solver.Out[uint64]{State: m, Cost: int(bit)})
		}
	}
	return out
}

func (p twoCol) Forget(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	childBag := solver.InsertSorted(bag, elem)
	return []solver.Out[uint64]{{State: w1.Drop(child, solver.Position(childBag, elem))}}
}

func (p twoCol) Join(_ int, bag []int, s1, s2 uint64) []solver.Out[uint64] {
	if s1 != s2 {
		return nil
	}
	dup := 0
	for q := range bag {
		dup += int(s1 >> uint(q) & 1)
	}
	return []solver.Out[uint64]{{State: s1, Cost: -dup}}
}

func (p twoCol) Accept(int, []int, uint64) bool { return true }

func niceFor(t *testing.T, g *graph.Graph) *tree.Decomposition {
	t.Helper()
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return nice
}

// bipartiteness / 2-coloring counts for known graphs.
func TestModesOnKnownGraphs(t *testing.T) {
	ctx := context.Background()
	tests := []struct {
		name  string
		g     *graph.Graph
		count int64
	}{
		{"path4", graph.Path(4), 2},
		{"cycle4", graph.Cycle(4), 2},
		{"cycle5", graph.Cycle(5), 0}, // odd cycle: not bipartite
		{"triangle", graph.Complete(3), 0},
		{"single", graph.Path(1), 2},
	}
	for _, tc := range tests {
		nice := niceFor(t, tc.g)
		p := twoCol{tc.g}

		ok, err := solver.Decide(ctx, nice, p)
		if err != nil {
			t.Fatalf("%s: Decide: %v", tc.name, err)
		}
		if ok != (tc.count > 0) {
			t.Errorf("%s: Decide = %v, want %v", tc.name, ok, tc.count > 0)
		}

		n, err := solver.Count(ctx, nice, p)
		if err != nil {
			t.Fatalf("%s: Count: %v", tc.name, err)
		}
		if n.Cmp(big.NewInt(tc.count)) != 0 {
			t.Errorf("%s: Count = %v, want %d", tc.name, n, tc.count)
		}

		der, err := solver.Optimize(ctx, nice, p)
		if err != nil {
			t.Fatalf("%s: Optimize: %v", tc.name, err)
		}
		if (der != nil) != (tc.count > 0) {
			t.Errorf("%s: Optimize feasible = %v, want %v", tc.name, der != nil, tc.count > 0)
		}
		if der != nil {
			// Walk the witness into a full coloring and check it is proper
			// and uses der.Value ones.
			bags, err := dp.Bags(nice)
			if err != nil {
				t.Fatal(err)
			}
			colors := make([]int, tc.g.N())
			if err := der.Walk(func(v int, s uint64) error {
				for q, e := range bags[v] {
					colors[e] = int(s >> uint(q) & 1)
				}
				return nil
			}); err != nil {
				t.Fatalf("%s: Walk: %v", tc.name, err)
			}
			ones := 0
			for _, c := range colors {
				ones += c
			}
			if ones != der.Value {
				t.Errorf("%s: witness uses %d ones, Optimize said %d", tc.name, ones, der.Value)
			}
			for _, e := range tc.g.Edges() {
				if colors[e[0]] == colors[e[1]] {
					t.Errorf("%s: witness not proper at edge %v", tc.name, e)
				}
			}
		}
	}
}

// TestDeterministicAcrossWorkers pins the byte-identity guarantee: the
// tables of every semiring — Order, Vals and resolved provenance — are
// identical at every worker count, on a decomposition large enough to
// engage the parallel scheduler.
func TestDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.PartialKTree(120, 3, 0.3, rng)
	nice := niceFor(t, g)
	if nice.Len() < 64 {
		t.Fatalf("decomposition too small (%d nodes) to engage the worker pool", nice.Len())
	}
	p := twoCol{g}
	ctx := context.Background()

	defer dp.SetMaxWorkers(dp.SetMaxWorkers(1))
	base, err := solver.Up[uint64, int](ctx, nice, p, solver.MinCost{})
	if err != nil {
		t.Fatal(err)
	}
	baseCount, err := solver.Up[uint64, *big.Int](ctx, nice, p, solver.Counting{})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 8} {
		dp.SetMaxWorkers(workers)
		got, err := solver.Up[uint64, int](ctx, nice, p, solver.MinCost{})
		if err != nil {
			t.Fatal(err)
		}
		for v := range base {
			if !reflect.DeepEqual(base[v].Order, got[v].Order) {
				t.Fatalf("%d workers: node %d Order differs", workers, v)
			}
			if !reflect.DeepEqual(base[v].Vals, got[v].Vals) {
				t.Fatalf("%d workers: node %d Vals differ", workers, v)
			}
			for i, s := range base[v].Order {
				bp, _ := base[v].Prov(s)
				gp, _ := got[v].Prov(s)
				if bp != gp {
					t.Fatalf("%d workers: node %d state %d provenance differs", workers, v, i)
				}
			}
		}
		gotCount, err := solver.Up[uint64, *big.Int](ctx, nice, p, solver.Counting{})
		if err != nil {
			t.Fatal(err)
		}
		for v := range baseCount {
			for i := range baseCount[v].Vals {
				if baseCount[v].Vals[i].Cmp(gotCount[v].Vals[i]) != 0 {
					t.Fatalf("%d workers: node %d count differs", workers, v)
				}
			}
		}
	}
}

// TestDownMatchesUpAtLeaves cross-checks the two passes: for every
// leaf, combining its up states with the down tables must reproduce
// exactly the root-accepted derivations (here: every leaf state that
// extends to a full solution appears in the down table).
func TestDownMatchesUpAtLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.PartialKTree(30, 2, 0.3, rng)
	nice := niceFor(t, g)
	p := twoCol{g}
	ctx := context.Background()

	up, err := solver.Up[uint64, bool](ctx, nice, p, solver.Decision{})
	if err != nil {
		t.Fatal(err)
	}
	down, err := solver.Down[uint64, bool](ctx, nice, p, solver.Decision{}, up)
	if err != nil {
		t.Fatal(err)
	}
	feasible := false
	for v := range nice.Nodes {
		if nice.Nodes[v].Kind == tree.KindLeaf && down[v].Len() > 0 && up[v].Len() > 0 {
			feasible = true
		}
	}
	ok, err := solver.Decide(ctx, nice, p)
	if err != nil {
		t.Fatal(err)
	}
	if ok != feasible {
		t.Fatalf("Decide = %v but leaf up∧down feasibility = %v", ok, feasible)
	}
}

// TestChaosSolverPoints injects a fault at each evaluator point and
// checks stage tagging, a clean retry, and no goroutine leaks.
func TestChaosSolverPoints(t *testing.T) {
	defer faultinject.Reset()
	g := graph.Grid(6, 7) // bipartite, so the witness walk has a derivation
	nice := niceFor(t, g)
	p := twoCol{g}
	ctx := context.Background()

	want, err := solver.Count(ctx, nice, p)
	if err != nil {
		t.Fatal(err)
	}

	snap := leak.Before()
	// dp.chain is exercised by dp's own chaos tests: it only fires on the
	// parallel path, which this decomposition is too small to engage.
	for _, point := range []string{"solver.introduce", "solver.forget", "solver.join", "solver.witness", "dp.node"} {
		faultinject.Reset()
		faultinject.FailAt(point, 1)
		var ferr error
		if point == "solver.witness" {
			der, err := solver.Witness(ctx, nice, p)
			if err != nil {
				t.Fatalf("%s: up pass failed before the witness walk: %v", point, err)
			}
			ferr = der.Walk(func(int, uint64) error { return nil })
		} else {
			_, ferr = solver.Count(ctx, nice, p)
		}
		if !errors.Is(ferr, faultinject.ErrInjected) {
			t.Fatalf("%s: err = %v, want injected fault", point, ferr)
		}
		if got := stage.Of(ferr); got != stage.Solver {
			t.Fatalf("%s: tagged stage %q, want %q", point, got, stage.Solver)
		}
		faultinject.Reset()
		n, err := solver.Count(ctx, nice, p)
		if err != nil {
			t.Fatalf("%s: retry failed: %v", point, err)
		}
		if n.Cmp(want) != 0 {
			t.Fatalf("%s: retry count = %v, want %v", point, n, want)
		}
	}
	faultinject.Reset()
	snap.Check(t)
}

// TestCancellation: a cancelled context surfaces context.Canceled
// under a solver stage tag from every mode.
func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.PartialKTree(40, 2, 0.3, rng)
	nice := niceFor(t, g)
	p := twoCol{g}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := solver.Decide(ctx, nice, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("Decide: err = %v, want context.Canceled", err)
	}
	if _, err := solver.Count(ctx, nice, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("Count: err = %v, want context.Canceled", err)
	}
	if _, err := solver.Optimize(ctx, nice, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("Optimize: err = %v, want context.Canceled", err)
	}
}

// TestProblemPanicContained: a panic inside a problem hook comes back
// as a stage-tagged error, not a crash.
func TestProblemPanicContained(t *testing.T) {
	g := graph.Path(4)
	nice := niceFor(t, g)
	p := panicky{twoCol{g}}
	_, err := solver.Count(context.Background(), nice, p)
	if err == nil {
		t.Fatal("panicking problem returned nil error")
	}
	var perr *stage.PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want a stage.PanicError", err)
	}
}

type panicky struct{ twoCol }

func (p panicky) Forget(node int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	panic("kaboom")
}

package solver

import (
	"context"
	"fmt"

	"repro/internal/dp"
	"repro/internal/faultinject"
	"repro/internal/stage"
	"repro/internal/tree"
)

// Prov records one derivation of a state, for witness extraction: the
// positions in the child tables' Order slices of the states it was
// derived from, or -1 (leaf states have neither; unary and copy
// transitions have no Second). Indices rather than pointers keep the
// provenance slices pointer-free — the decision-mode tables are then
// entirely noscan, which the garbage collector rewards on the hot
// Figure 5/Figure 6 paths.
type Prov struct {
	First  int32
	Second int32
}

// leafProv marks a state with no derivation inputs.
var leafProv = Prov{First: -1, Second: -1}

// Table holds the states derived at one node. Order lists them in
// first-derivation order — a deterministic artifact of the run used for
// all downstream iteration — and Vals/Provs are aligned with it: the
// semiring value accumulated over all derivations of Order[i] is
// Vals[i], and Provs[i] is the provenance of the preferred derivation
// (the first, unless the semiring's Plus replaced it). The aligned-slice
// layout keeps the evaluator's read path free of map lookups; the index
// map exists only to deduplicate on insert.
type Table[S comparable, V any] struct {
	Order []S
	Vals  []V
	Provs []Prov

	index map[S]int32
}

// Len returns the number of states at the node.
func (t Table[S, V]) Len() int { return len(t.Order) }

// Has reports whether the state was derived at the node.
func (t Table[S, V]) Has(s S) bool {
	_, ok := t.index[s]
	return ok
}

// Value returns the accumulated semiring value of a state.
func (t Table[S, V]) Value(s S) (V, bool) {
	i, ok := t.index[s]
	if !ok {
		var zero V
		return zero, false
	}
	return t.Vals[i], true
}

// Prov returns the preferred provenance of a state. Tables evaluated
// without provenance tracking (Decide, Count) report false.
func (t Table[S, V]) Prov(s S) (Prov, bool) {
	i, ok := t.index[s]
	if !ok || int(i) >= len(t.Provs) {
		return Prov{}, false
	}
	return t.Provs[i], true
}

func (t *Table[S, V]) init(capacity int, trackProv bool) {
	t.Order = make([]S, 0, capacity)
	t.Vals = make([]V, 0, capacity)
	if trackProv {
		t.Provs = make([]Prov, 0, capacity)
	}
	t.index = make(map[S]int32, capacity)
}

func (t *Table[S, V]) add(r Semiring[V], s S, v V, p Prov) {
	if i, ok := t.index[s]; ok {
		nv, replace := r.Plus(t.Vals[i], v)
		t.Vals[i] = nv
		if replace {
			t.Provs[i] = p
		}
		return
	}
	t.index[s] = int32(len(t.Order))
	t.Order = append(t.Order, s)
	t.Vals = append(t.Vals, v)
	if t.Provs != nil { // nil when the run skips provenance (Decide, Count)
		t.Provs = append(t.Provs, p)
	}
}

// Tables holds the result of a full run: one Table per node.
type Tables[S comparable, V any] []Table[S, V]

// chargeEvery is how many outer-loop iterations a node accumulates
// between budget checks inside the join double loop, bounding the
// overshoot past MaxTableEntries to O(chargeEvery) entries per
// in-flight node, so a budget violation aborts in bounded memory.
const chargeEvery = 1024

// Up evaluates the problem bottom-up over a nice decomposition in the
// given semiring, producing one table per node. The run rides dp's
// cached plan and chain-parallel worker pool: each node is computed
// exactly once, from complete inputs, iterating child tables in their
// deterministic Order — so tables (values, Order and provenance) are
// byte-identical at every worker count. Errors are stage-tagged
// stage.Solver; cancellation, budget and panic containment follow the
// dp.Schedule contract.
func Up[S comparable, V any](ctx context.Context, d *tree.Decomposition, p Problem[S], r Semiring[V]) (Tables[S, V], error) {
	return upWith(ctx, d, p, r, true)
}

// upWith is Up with provenance tracking optional: the scalar front-ends
// (Decide, Count) never read Provs, so they skip allocating and filling
// one slice per node.
func upWith[S comparable, V any](ctx context.Context, d *tree.Decomposition, p Problem[S], r Semiring[V], trackProv bool) (Tables[S, V], error) {
	bags, err := dp.Bags(d)
	if err != nil {
		return nil, stage.Wrap(stage.Solver, fmt.Errorf("solver: %w", err))
	}
	b := stage.BudgetFrom(ctx)
	tables := make(Tables[S, V], d.Len())
	err = dp.Schedule(ctx, d, false, func(v int) error {
		return upNode(d, bags, p, r, b, tables, trackProv, v)
	})
	if err != nil {
		return nil, stage.Wrap(stage.Solver, err)
	}
	return tables, nil
}

func upNode[S comparable, V any](d *tree.Decomposition, bags [][]int, p Problem[S], r Semiring[V], b *stage.Budget, tables Tables[S, V], trackProv bool, v int) error {
	n := &d.Nodes[v]
	bag := bags[v]
	ap, _ := p.(Appender[S])
	var scratch []Out[S] // reused per child state when the problem is an Appender
	var t Table[S, V]
	switch n.Kind {
	case tree.KindLeaf:
		var outs []Out[S]
		if ap != nil {
			outs = ap.AppendLeaf(nil, v, bag)
		} else {
			outs = p.Leaf(v, bag)
		}
		t.init(len(outs), trackProv)
		for _, o := range outs {
			t.add(r, o.State, r.Weight(o.Cost), leafProv)
		}
	case tree.KindIntroduce, tree.KindForget:
		if err := checkUnary(n.Kind); err != nil {
			return err
		}
		child := &tables[n.Children[0]]
		t.init(len(child.Order), trackProv)
		intro := n.Kind == tree.KindIntroduce
		for i := range child.Order {
			cs := &child.Order[i]
			cv := child.Vals[i]
			var outs []Out[S]
			switch {
			case ap != nil && intro:
				scratch = ap.AppendIntroduce(scratch[:0], v, bag, n.Elem, *cs)
				outs = scratch
			case ap != nil:
				scratch = ap.AppendForget(scratch[:0], v, bag, n.Elem, *cs)
				outs = scratch
			case intro:
				outs = p.Introduce(v, bag, n.Elem, *cs)
			default:
				outs = p.Forget(v, bag, n.Elem, *cs)
			}
			for _, o := range outs {
				t.add(r, o.State, r.Extend(cv, o.Cost), Prov{First: int32(i), Second: -1})
			}
			if i%chargeEvery == chargeEvery-1 {
				if err := b.CheckTableEntries(t.Len()); err != nil {
					return err
				}
			}
		}
	case tree.KindCopy:
		child := &tables[n.Children[0]]
		t.init(len(child.Order), trackProv)
		copier, _ := p.(Copier[S])
		for i := range child.Order {
			cs := &child.Order[i]
			cv := child.Vals[i]
			if copier == nil {
				t.add(r, *cs, r.Extend(cv, 0), Prov{First: int32(i), Second: -1})
				continue
			}
			for _, o := range copier.Copy(v, bag, *cs) {
				t.add(r, o.State, r.Extend(cv, o.Cost), Prov{First: int32(i), Second: -1})
			}
		}
	case tree.KindBranch:
		if err := faultinject.Check("solver.join"); err != nil {
			return err
		}
		c1, c2 := &tables[n.Children[0]], &tables[n.Children[1]]
		t.init(min(len(c1.Order), len(c2.Order)), trackProv)
		for i := range c1.Order {
			s1 := &c1.Order[i]
			v1 := c1.Vals[i]
			for j := range c2.Order {
				s2 := &c2.Order[j]
				var outs []Out[S]
				if ap != nil {
					scratch = ap.AppendJoin(scratch[:0], v, bag, *s1, *s2)
					outs = scratch
				} else {
					outs = p.Join(v, bag, *s1, *s2)
				}
				for _, o := range outs {
					val := r.Merge(v1, c2.Vals[j], o.Cost)
					t.add(r, o.State, val, Prov{First: int32(i), Second: int32(j)})
				}
			}
			if i%chargeEvery == chargeEvery-1 {
				if err := b.CheckTableEntries(t.Len()); err != nil {
					return err
				}
			}
		}
	default:
		// Unreachable: dp.Bags admits only nice decompositions.
		panic(fmt.Sprintf("solver: node %d has kind %v", v, n.Kind))
	}
	if err := b.AddTableEntries(t.Len()); err != nil {
		return err
	}
	tables[v] = t
	return nil
}

// checkUnary is the fault-injection hook for the unary transitions:
// "solver.introduce" fires mid-pass at introduce nodes, "solver.forget"
// at forget nodes. One atomic load each when disarmed.
func checkUnary(k tree.Kind) error {
	if k == tree.KindIntroduce {
		return faultinject.Check("solver.introduce")
	}
	return faultinject.Check("solver.forget")
}

// Down evaluates the top-down pass (the solve↓ predicate of Section
// 5.3) given the bottom-up tables, by the role-swapped transitions of
// Lemma 3.6: walking down through an introduce node applies Forget,
// walking down through a forget node applies Introduce, and walking
// down past a branch merges the parent's top-down state with the
// sibling's bottom-up states via Join. At the root, Leaf enumerates the
// base states.
func Down[S comparable, V any](ctx context.Context, d *tree.Decomposition, p Problem[S], r Semiring[V], up Tables[S, V]) (Tables[S, V], error) {
	bags, err := dp.Bags(d)
	if err != nil {
		return nil, stage.Wrap(stage.Solver, fmt.Errorf("solver: %w", err))
	}
	if len(up) != d.Len() {
		return nil, stage.Wrap(stage.Solver, fmt.Errorf("solver: bottom-up tables have %d nodes, want %d", len(up), d.Len()))
	}
	b := stage.BudgetFrom(ctx)
	tables := make(Tables[S, V], d.Len())
	err = dp.Schedule(ctx, d, true, func(v int) error {
		return downNode(d, bags, p, r, b, up, tables, v)
	})
	if err != nil {
		return nil, stage.Wrap(stage.Solver, err)
	}
	return tables, nil
}

func downNode[S comparable, V any](d *tree.Decomposition, bags [][]int, p Problem[S], r Semiring[V], b *stage.Budget, up, tables Tables[S, V], v int) error {
	n := &d.Nodes[v]
	bag := bags[v]
	ap, _ := p.(Appender[S])
	var scratch []Out[S]
	var t Table[S, V]
	if n.Parent < 0 {
		var outs []Out[S]
		if ap != nil {
			outs = ap.AppendLeaf(nil, v, bag)
		} else {
			outs = p.Leaf(v, bag)
		}
		t.init(len(outs), true)
		for _, o := range outs {
			t.add(r, o.State, r.Weight(o.Cost), leafProv)
		}
		if err := b.AddTableEntries(t.Len()); err != nil {
			return err
		}
		tables[v] = t
		return nil
	}
	pn := &d.Nodes[n.Parent]
	parent := &tables[n.Parent]
	t.init(len(parent.Order), true)
	switch pn.Kind {
	case tree.KindIntroduce, tree.KindForget:
		// Role swap: the parent's introduce leaves the downward
		// interface (Forget at v), the parent's forget re-enters it
		// (Introduce at v).
		swapped := tree.KindForget
		if pn.Kind == tree.KindForget {
			swapped = tree.KindIntroduce
		}
		if err := checkUnary(swapped); err != nil {
			return err
		}
		forget := swapped == tree.KindForget
		for i := range parent.Order {
			ps := &parent.Order[i]
			pv := parent.Vals[i]
			var outs []Out[S]
			switch {
			case ap != nil && forget:
				scratch = ap.AppendForget(scratch[:0], v, bag, pn.Elem, *ps)
				outs = scratch
			case ap != nil:
				scratch = ap.AppendIntroduce(scratch[:0], v, bag, pn.Elem, *ps)
				outs = scratch
			case forget:
				outs = p.Forget(v, bag, pn.Elem, *ps)
			default:
				outs = p.Introduce(v, bag, pn.Elem, *ps)
			}
			for _, o := range outs {
				t.add(r, o.State, r.Extend(pv, o.Cost), Prov{First: int32(i), Second: -1})
			}
		}
	case tree.KindCopy:
		copier, _ := p.(Copier[S])
		for i := range parent.Order {
			ps := &parent.Order[i]
			pv := parent.Vals[i]
			if copier == nil {
				t.add(r, *ps, r.Extend(pv, 0), Prov{First: int32(i), Second: -1})
				continue
			}
			for _, o := range copier.Copy(v, bag, *ps) {
				t.add(r, o.State, r.Extend(pv, o.Cost), Prov{First: int32(i), Second: -1})
			}
		}
	case tree.KindBranch:
		if err := faultinject.Check("solver.join"); err != nil {
			return err
		}
		sib := pn.Children[0]
		if sib == v {
			sib = pn.Children[1]
		}
		sibT := &up[sib]
		for i := range parent.Order {
			ps := &parent.Order[i]
			pv := parent.Vals[i]
			for j := range sibT.Order {
				ss := &sibT.Order[j]
				var outs []Out[S]
				if ap != nil {
					scratch = ap.AppendJoin(scratch[:0], v, bag, *ps, *ss)
					outs = scratch
				} else {
					outs = p.Join(v, bag, *ps, *ss)
				}
				for _, o := range outs {
					val := r.Merge(pv, sibT.Vals[j], o.Cost)
					t.add(r, o.State, val, Prov{First: int32(i), Second: int32(j)})
				}
			}
			if i%chargeEvery == chargeEvery-1 {
				if err := b.CheckTableEntries(t.Len()); err != nil {
					return err
				}
			}
		}
	default:
		panic(fmt.Sprintf("solver: parent %d of node %d has kind %v", n.Parent, v, pn.Kind))
	}
	if err := b.AddTableEntries(t.Len()); err != nil {
		return err
	}
	tables[v] = t
	return nil
}

// Package client is the typed Go client for monadicd (internal/server):
// one method per endpoint, JSON encoding handled, errors mapped back
// into the cli exit taxonomy, and a retry loop tuned to the server's
// overload control — capped exponential backoff with full jitter,
// honoring the Retry-After hint on 429/503 so a fleet of clients backs
// off exactly as hard as the server asks instead of stampeding the
// moment a slot frees up.
//
// Retries are per call: each method makes at most MaxAttempts tries and
// respects ctx throughout (including mid-backoff). Only overload
// answers (429 admission shed, 503 breaker open) and transport errors
// are retried — a 400 is wrong no matter how often it is sent, a 504
// already consumed its deadline, and a 500 is a bug to surface, not to
// hammer.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/server"
)

// Defaults for zero Client fields.
const (
	DefaultMaxAttempts = 5
	DefaultBaseBackoff = 100 * time.Millisecond
	DefaultMaxBackoff  = 5 * time.Second
)

// ErrRetriesExhausted wraps the final error once a call's retry budget
// is spent; test with errors.Is.
var ErrRetriesExhausted = errors.New("client: retries exhausted")

// APIError is a non-2xx answer from the server, decoded from its
// ErrorResponse body.
type APIError struct {
	// Status is the HTTP status; Code the cli exit-taxonomy class the
	// server derived it from; Stage the pipeline stage when the error
	// carries one.
	Status  int
	Code    int
	Stage   string
	Message string
	// RetryAfter is the parsed Retry-After header on 429/503 (zero when
	// absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("server: %d [%s] %s", e.Status, e.Stage, e.Message)
	}
	return fmt.Sprintf("server: %d %s", e.Status, e.Message)
}

// Retryable reports whether the answer is worth retrying: the server's
// overload rejections, which both promise capacity later.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests && e.Code == 6 ||
		e.Status == http.StatusServiceUnavailable
}

// Client calls one monadicd server. The zero value is not usable: use
// New. Fields may be adjusted before the first call; the Client is safe
// for concurrent use afterwards.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// HTTP is the underlying transport client (default: a fresh
	// http.Client with no timeout — per-call deadlines come from ctx).
	HTTP *http.Client
	// MaxAttempts is the per-call retry budget, counting the first try.
	MaxAttempts int
	// BaseBackoff and MaxBackoff bound the exponential backoff: attempt
	// n sleeps a uniform random duration in [0, min(MaxBackoff,
	// BaseBackoff·2ⁿ)] (full jitter), raised to the server's Retry-After
	// hint when one is present.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Budget and Timeout, when nonzero, are sent as X-Budget and
	// X-Timeout headers on every request.
	Budget  int64
	Timeout time.Duration
	// Backend, when nonempty, is sent as the X-Backend header on every
	// request, selecting the server-side evaluation backend for /eval
	// and /batch (e.g. "automaton", "game"). Unknown names answer 400.
	Backend string

	rngMu sync.Mutex
	rng   *rand.Rand
	// sleep is a seam for tests; default sleeps or returns early with
	// ctx's error.
	sleep func(ctx context.Context, d time.Duration) error
}

// New returns a Client for the server at baseURL with default retry
// policy.
func New(baseURL string) *Client {
	return &Client{
		BaseURL:     baseURL,
		HTTP:        &http.Client{},
		MaxAttempts: DefaultMaxAttempts,
		BaseBackoff: DefaultBaseBackoff,
		MaxBackoff:  DefaultMaxBackoff,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
		sleep:       sleepCtx,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff computes the attempt'th sleep (attempt counts from 0): full
// jitter over the capped exponential, floored at the server's hint.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	base := c.BaseBackoff
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	maxB := c.MaxBackoff
	if maxB <= 0 {
		maxB = DefaultMaxBackoff
	}
	ceil := base << uint(attempt)
	if ceil > maxB || ceil <= 0 {
		ceil = maxB
	}
	c.rngMu.Lock()
	d := time.Duration(c.rng.Int63n(int64(ceil) + 1))
	c.rngMu.Unlock()
	if d < hint {
		d = hint
	}
	return d
}

// do runs one retrying call: POST (or GET when body is nil and path is
// a read endpoint) to path, decoding a T on 200.
func do[T any](ctx context.Context, c *Client, method, path string, body any) (*T, error) {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	sleep := c.sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var raw []byte
	if body != nil {
		var err error
		raw, err = json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("client: encode request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			hint := time.Duration(0)
			var apiErr *APIError
			if errors.As(lastErr, &apiErr) {
				hint = apiErr.RetryAfter
			}
			if err := sleep(ctx, c.backoff(attempt-1, hint)); err != nil {
				return nil, err
			}
		}
		body, err := onceRaw(ctx, c, method, path, raw)
		if err == nil {
			var out T
			if err := json.Unmarshal(body, &out); err != nil {
				return nil, fmt.Errorf("client: decode response: %w", err)
			}
			return &out, nil
		}
		lastErr = err
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			if !apiErr.Retryable() {
				return nil, err
			}
			continue
		}
		if ctx.Err() != nil {
			return nil, err
		}
		// Transport error with a live context: the server may be
		// restarting or drain-refusing connections; retry.
	}
	return nil, fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempts, lastErr)
}

// onceRaw makes a single HTTP exchange, returning the 200 body or an
// *APIError / transport error.
func onceRaw(ctx context.Context, c *Client, method, path string, raw []byte) ([]byte, error) {
	var rd io.Reader
	if raw != nil {
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	if raw != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Budget > 0 {
		req.Header.Set("X-Budget", strconv.FormatInt(c.Budget, 10))
	}
	if c.Timeout > 0 {
		req.Header.Set("X-Timeout", c.Timeout.String())
	}
	if c.Backend != "" {
		req.Header.Set("X-Backend", c.Backend)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: resp.StatusCode, Message: string(body)}
		var er server.ErrorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			apiErr.Message = er.Error
			apiErr.Code = er.Code
			apiErr.Stage = er.Stage
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, apiErr
	}
	return body, nil
}

// Eval evaluates one MSO query over one structure.
func (c *Client) Eval(ctx context.Context, req server.EvalRequest) (*server.EvalResponse, error) {
	return do[server.EvalResponse](ctx, c, http.MethodPost, "/eval", req)
}

// Solve runs a named solver problem (decide/count/optimize).
func (c *Client) Solve(ctx context.Context, req server.SolveRequest) (*server.SolveResponse, error) {
	return do[server.SolveResponse](ctx, c, http.MethodPost, "/solve", req)
}

// Batch evaluates many queries grouped per structure.
func (c *Client) Batch(ctx context.Context, req server.BatchRequest) (*server.BatchResponse, error) {
	return do[server.BatchResponse](ctx, c, http.MethodPost, "/batch", req)
}

// Mutate edits a resident structure, keeping its session warm.
func (c *Client) Mutate(ctx context.Context, req server.MutateRequest) (*server.MutateResponse, error) {
	return do[server.MutateResponse](ctx, c, http.MethodPost, "/mutate", req)
}

// Healthz checks liveness (no retries beyond the standard loop).
func (c *Client) Healthz(ctx context.Context) error {
	_, err := do[map[string]string](ctx, c, http.MethodGet, "/healthz", nil)
	return err
}

// Statsz fetches the server's counters.
func (c *Client) Statsz(ctx context.Context) (*server.StatszResponse, error) {
	return do[server.StatszResponse](ctx, c, http.MethodGet, "/statsz", nil)
}

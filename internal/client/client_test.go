package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// newFakeServer serves scripted responses: each call pops the next
// (status, retryAfter) pair, falling through to 200 with a fixed eval
// body once the script is spent.
func newFakeServer(t *testing.T, script []struct {
	status     int
	retryAfter string
}) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n < len(script) {
			step := script[n]
			if step.retryAfter != "" {
				w.Header().Set("Retry-After", step.retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(step.status)
			json.NewEncoder(w).Encode(server.ErrorResponse{ //nolint:errcheck
				Error:  "scripted failure",
				Status: step.status,
				Code:   6,
			})
			return
		}
		holds := true
		json.NewEncoder(w).Encode(server.EvalResponse{Holds: &holds, Width: 1}) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// instant replaces the backoff sleep, recording requested durations.
func instant(c *Client) *[]time.Duration {
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	return &slept
}

func TestRetryConvergesAfterOverload(t *testing.T) {
	ts, calls := newFakeServer(t, []struct {
		status     int
		retryAfter string
	}{
		{http.StatusTooManyRequests, "1"},
		{http.StatusServiceUnavailable, "2"},
	})
	c := New(ts.URL)
	slept := instant(c)
	resp, err := c.Eval(context.Background(), server.EvalRequest{Structure: "dom a.", Formula: "c(x)", Var: "x"})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if resp.Holds == nil || !*resp.Holds {
		t.Errorf("holds = %v, want true", resp.Holds)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (two rejections, one success)", got)
	}
	// Retry-After floors the jittered backoff: the first sleep honors
	// the 1s hint, the second the 2s hint.
	if len(*slept) != 2 || (*slept)[0] < time.Second || (*slept)[1] < 2*time.Second {
		t.Errorf("sleeps = %v, want [>=1s >=2s] honoring Retry-After", *slept)
	}
}

func TestNonRetryableFailsFast(t *testing.T) {
	ts, calls := newFakeServer(t, []struct {
		status     int
		retryAfter string
	}{
		{http.StatusBadRequest, ""},
	})
	c := New(ts.URL)
	instant(c)
	_, err := c.Eval(context.Background(), server.EvalRequest{Structure: "dom a.", Formula: "c(x"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want a 400 APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (400 is not retryable)", got)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	script := make([]struct {
		status     int
		retryAfter string
	}, 10)
	for i := range script {
		script[i] = struct {
			status     int
			retryAfter string
		}{http.StatusTooManyRequests, "1"}
	}
	ts, calls := newFakeServer(t, script)
	c := New(ts.URL)
	c.MaxAttempts = 3
	instant(c)
	_, err := c.Eval(context.Background(), server.EvalRequest{Structure: "dom a.", Formula: "c(x)", Var: "x"})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want it to wrap the final 429", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want exactly MaxAttempts=3", got)
	}
}

func TestContextCancelStopsBackoff(t *testing.T) {
	ts, _ := newFakeServer(t, []struct {
		status     int
		retryAfter string
	}{
		{http.StatusTooManyRequests, "1"},
		{http.StatusTooManyRequests, "1"},
	})
	c := New(ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // canceled mid-backoff
		return ctx.Err()
	}
	_, err := c.Eval(ctx, server.EvalRequest{Structure: "dom a.", Formula: "c(x)", Var: "x"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTransportErrorRetries(t *testing.T) {
	// A server that drops the first connection, then answers.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		holds := true
		json.NewEncoder(w).Encode(server.EvalResponse{Holds: &holds}) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	instant(c)
	resp, err := c.Eval(context.Background(), server.EvalRequest{Structure: "dom a.", Formula: "c(x)", Var: "x"})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if resp.Holds == nil || !*resp.Holds {
		t.Errorf("holds = %v, want true after a transport retry", resp.Holds)
	}
}

func TestHeadersSent(t *testing.T) {
	var gotBudget, gotTimeout string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotBudget = r.Header.Get("X-Budget")
		gotTimeout = r.Header.Get("X-Timeout")
		holds := true
		json.NewEncoder(w).Encode(server.EvalResponse{Holds: &holds}) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	c.Budget = 5000
	c.Timeout = 2 * time.Second
	if _, err := c.Eval(context.Background(), server.EvalRequest{Structure: "dom a.", Formula: "c(x)", Var: "x"}); err != nil {
		t.Fatal(err)
	}
	if gotBudget != "5000" || gotTimeout != "2s" {
		t.Errorf("headers = (%q, %q), want (5000, 2s)", gotBudget, gotTimeout)
	}
}

// TestEndToEndAgainstRealServer drives the real server through the
// client: typed round trips for all five endpoints.
func TestEndToEndAgainstRealServer(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	ctx := context.Background()

	const path = "dom v0 v1 v2 v3.\nedge(v0, v1). edge(v1, v2). edge(v2, v3).\nc(v0). c(v2).\n"
	ev, err := c.Eval(ctx, server.EvalRequest{Structure: path, Formula: "c(x)", Var: "x"})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if len(ev.Selected) != 2 {
		t.Errorf("selected = %v, want 2 elements", ev.Selected)
	}
	sv, err := c.Solve(ctx, server.SolveRequest{Structure: path, Problem: "vcover", Mode: "optimize"})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if sv.Feasible == nil || !*sv.Feasible {
		t.Errorf("solve feasible = %v, want true", sv.Feasible)
	}
	bt, err := c.Batch(ctx, server.BatchRequest{
		Structures: []string{path},
		Queries:    []server.BatchQuery{{Structure: 0, Formula: "c(x)", Var: "x"}},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(bt.Results) != 1 || bt.Results[0].Status != http.StatusOK {
		t.Errorf("batch results = %+v, want one 200", bt.Results)
	}
	mu, err := c.Mutate(ctx, server.MutateRequest{
		Structure: path,
		Insert:    []server.MutateFact{{Pred: "c", Args: []string{"v3"}}},
	})
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	if mu.Changes != 1 {
		t.Errorf("mutate changes = %d, want 1", mu.Changes)
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	stats, err := c.Statsz(ctx)
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if stats.Requests < 4 {
		t.Errorf("statsz requests = %d, want >= 4", stats.Requests)
	}
}

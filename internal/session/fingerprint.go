package session

import (
	"repro/internal/schema"
	"repro/internal/structure"
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	h ^= uint64(len(s)) // length marker: separates adjacent strings
	h *= fnvPrime64
	return h
}

func fnvInt(h uint64, v int) uint64 {
	h ^= uint64(v)
	h *= fnvPrime64
	return h
}

// Fingerprint hashes a structure's full content — element names,
// predicates and all tuples — into a 64-bit FNV-1a digest. Sessions use
// it to detect mutation between evaluations and invalidate cached
// artifacts; it is a change detector, not an equality proof (collisions
// are astronomically unlikely but possible).
func Fingerprint(st *structure.Structure) uint64 {
	h := uint64(fnvOffset64)
	h = fnvInt(h, st.Size())
	for i := 0; i < st.Size(); i++ {
		h = fnvString(h, st.Name(i))
	}
	for pi, p := range st.Sig().Predicates() {
		h = fnvString(h, p.Name)
		h = fnvInt(h, p.Arity)
		for _, t := range st.TuplesIdx(pi) {
			for _, e := range t {
				h = fnvInt(h, e)
			}
			h = fnvInt(h, -1) // tuple separator
		}
	}
	return h
}

// SchemaFingerprint hashes a relational schema (attributes and
// functional dependencies) the same way.
func SchemaFingerprint(s *schema.Schema) uint64 {
	h := uint64(fnvOffset64)
	h = fnvInt(h, s.NumAttrs())
	for i := 0; i < s.NumAttrs(); i++ {
		h = fnvString(h, s.AttrName(i))
	}
	for _, fd := range s.FDs() {
		h = fnvString(h, fd.Name)
		for _, a := range fd.LHS {
			h = fnvInt(h, a)
		}
		h = fnvInt(h, -1)
		h = fnvInt(h, fd.RHS)
	}
	return h
}

package session

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mso"
)

// TestEvalPathDirectMatchesGrounded pins the direct evaluation path:
// streaming the compiled program through the datalog engine computes
// the same answers as the Theorem 4.4 grounding pipeline, and only the
// direct path moves tuples through the streaming engine — which is
// exactly what the session's engine stats must reflect.
func TestEvalPathDirectMatchesGrounded(t *testing.T) {
	defer SetEvalPath(SetEvalPath(EvalGrounded))
	rng := rand.New(rand.NewSource(11))
	st := randColored(rng, 7)
	ctx := context.Background()
	for _, q := range tenQueries {
		phi := mso.MustParse(q)

		SetEvalPath(EvalGrounded)
		grounded := NewWithCache(st, NewProgramCache())
		gres, err := grounded.Eval(ctx, phi, "x", core.Options{})
		if err != nil {
			t.Fatalf("grounded %q: %v", q, err)
		}

		SetEvalPath(EvalDirect)
		direct := NewWithCache(st, NewProgramCache())
		dres, err := direct.Eval(ctx, phi, "x", core.Options{})
		if err != nil {
			t.Fatalf("direct %q: %v", q, err)
		}

		if !gres.Selected.Equal(dres.Selected) {
			t.Fatalf("query %q: direct selected %v, grounded %v", q, dres.Selected.Elems(), gres.Selected.Elems())
		}
		if gs := grounded.Stats(); gs.TuplesStreamed != 0 {
			t.Fatalf("query %q: grounded path streamed %d tuples, want 0 (grounding bypasses the engine)", q, gs.TuplesStreamed)
		}
		if ds := direct.Stats(); ds.TuplesStreamed == 0 {
			t.Fatalf("query %q: direct path reported no streamed tuples", q)
		}
	}
}

// TestEvalPathDirectDecision checks the 0-ary decision variant under
// the direct path.
func TestEvalPathDirectDecision(t *testing.T) {
	defer SetEvalPath(SetEvalPath(EvalDirect))
	rng := rand.New(rand.NewSource(12))
	st := randColored(rng, 6)
	ctx := context.Background()
	for _, q := range []string{"exists x (c(x))", "forall x (c(x) | ~c(x))"} {
		phi := mso.MustParse(q)
		s := NewWithCache(st, NewProgramCache())
		res, err := s.Eval(ctx, phi, "", core.Options{Decision: true})
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		want, err := mso.Sentence(st, phi, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Holds != want {
			t.Fatalf("%q: holds = %v, want %v", q, res.Holds, want)
		}
	}
}

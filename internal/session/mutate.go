// Incremental evaluation under mutation (see DESIGN.md "Incremental
// evaluation"): Session.Mutate applies an edit batch to the bound
// structure and patches the cached artifacts in place instead of
// discarding them. The structure's change-log (structure.ChangesSince)
// keys the maintenance: a shape-preserving edit keeps the raw, tuple
// and nice decompositions, rebuilds only the τ_td structure, and
// maintains retained query results through datalog.ApplyDelta; an edit
// absorbed by decompose.Repair keeps the (repaired) raw decomposition
// and rebuilds downstream lazily; everything else — repair fallback,
// lost change-log window, failed edit function — degrades to the
// wholesale invalidation a fingerprint mismatch would have caused.
package session

import (
	"context"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/decompose"
	"repro/internal/stage"
	"repro/internal/structure"
	"repro/internal/tree"
)

// MutationStats reports how one Mutate call was absorbed.
type MutationStats struct {
	// Changes is the number of change-log entries the edit produced.
	Changes int
	// DeltaApplied reports that the cached artifacts were retained (and
	// patched) rather than discarded.
	DeltaApplied bool
	// RepairFallback reports that the local decomposition repair
	// declined the edit and the session invalidated wholesale.
	RepairFallback bool
	// Invalidated reports a wholesale artifact discard.
	Invalidated bool
	// ResultsMaintained and ResultsDropped count the cached query
	// results carried through the edit incrementally versus evicted.
	ResultsMaintained int
	ResultsDropped    int
}

// Mutate runs fn against the bound structure under the session's write
// lock — serialized against every in-flight build and evaluation, which
// is the supported way to edit a session-bound structure (see the
// Structure mutation contract) — then re-synchronizes the cached
// artifacts with the edit. fn must confine itself to structure edits
// (AddElem / AddTuple / AddFact / RemoveTuple / RemoveFact) and must
// not call back into the session. fn's error is returned verbatim; the
// structure keeps whatever edits fn made before failing, and the
// session stays coherent (a partial edit invalidates wholesale).
func (s *Session) Mutate(fn func(*structure.Structure) error) (MutationStats, error) {
	s.stMu.Lock()
	defer s.stMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Absorb any earlier direct (non-Mutate) edit first, exactly as the
	// next evaluation's revalidation would have.
	s.revalidateLocked()
	rev := s.st.Rev()
	ferr := fn(s.st)
	changes, ok := s.st.ChangesSince(rev)
	ms := MutationStats{Changes: len(changes)}
	defer func() { s.fp = Fingerprint(s.st) }()
	if ok && len(changes) == 0 {
		return ms, ferr // no-op edit: every cache stays valid
	}
	if ferr != nil || !ok {
		// A partially-applied edit function, or an edit burst larger
		// than the change-log window: no delta to trust.
		s.discardLocked(&ms)
		return ms, ferr
	}
	if s.raw == nil {
		// Cold session — nothing cached to maintain. (Artifacts and
		// result caches are populated together and discarded together,
		// so no raw decomposition means no downstream state either.)
		return ms, nil
	}
	rd, dirty, rerr := decompose.Repair(s.raw, s.st, changes)
	if rerr != nil {
		// Fallback (width excess, wide tuple) and injected faults alike:
		// the repair did not happen, so invalidate wholesale. The edit
		// itself succeeded — callers see the degradation in the stats,
		// not as an error.
		s.stats.RepairFallbacks++
		ms.RepairFallback = true
		s.discardLocked(&ms)
		return ms, nil
	}
	// Shape-preserving edits (covered tuple inserts, any retraction)
	// change no bag and add no node: the tuple and nice normal forms —
	// functions of the raw tree alone — stay valid, and the τ_td
	// structure keeps its node set, so results can be maintained by
	// fact-level delta. Repairs that widened bags or added nodes keep
	// the repaired raw tree but rebuild downstream lazily.
	same := rd.Len() == s.raw.Len()
	if same {
		for _, v := range dirty {
			if len(rd.Nodes[v].Bag) != len(s.raw.Nodes[v].Bag) {
				same = false
				break
			}
		}
	}
	// Solver outcomes read the structure through their problem closures;
	// conservatively re-solve after any mutation (solver.Repair keeps
	// per-table maintenance available to direct solver users).
	s.solverResults, s.solverSeq = nil, nil
	if !same {
		s.raw = rd
		s.tuple, s.nice, s.td, s.edb = nil, nil, nil, nil
		s.width, s.tdNodes = 0, 0
		s.valid = false
		ms.ResultsDropped += len(s.results)
		s.results, s.resultSeq, s.dbSeq = nil, nil, nil
		s.stats.DeltasApplied++
		ms.DeltaApplied = true
		return ms, nil
	}
	if s.td != nil {
		td, _, err := tree.BuildTDCtx(context.Background(), s.st, s.tuple, s.width)
		if err != nil {
			s.discardLocked(&ms)
			return ms, nil
		}
		edb := datalog.FromStructure(td, "")
		ins, del := diffFacts(s.edb, edb)
		s.td, s.edb = td, edb
		s.maintainResultsLocked(ins, del, &ms)
	}
	s.stats.DeltasApplied++
	ms.DeltaApplied = true
	return ms, nil
}

// discardLocked is the wholesale path: drop everything, count it.
func (s *Session) discardLocked(ms *MutationStats) {
	ms.ResultsDropped += len(s.results)
	s.invalidateLocked()
	s.stats.Invalidations++
	ms.Invalidated = true
}

// maintainResultsLocked carries the cached query results through a τ_td
// EDB delta: entries that retained their fixpoint are re-derived by
// datalog.ApplyDelta and re-finished; entries without one (or whose
// delta fails — unsupported fragment, injected fault) are dropped and
// recompute cold on their next request, so a failed delta can never
// poison the cache.
func (s *Session) maintainResultsLocked(ins, del []datalog.Fact, ms *MutationStats) {
	if len(s.results) == 0 {
		s.results, s.resultSeq, s.dbSeq = nil, nil, nil
		return
	}
	if len(ins) == 0 && len(del) == 0 {
		return // identical EDB: the fixpoints are already correct
	}
	keep := make([]progKey, 0, len(s.resultSeq))
	var dbs []progKey
	for _, key := range s.resultSeq {
		e := s.results[key]
		if e == nil {
			continue
		}
		if e.out == nil || e.compiled == nil {
			delete(s.results, key)
			ms.ResultsDropped++
			continue
		}
		if _, err := datalog.ApplyDelta(e.compiled.Program, e.out, ins, del); err != nil {
			delete(s.results, key)
			ms.ResultsDropped++
			continue
		}
		res, err := core.FinishResult(s.st, e.compiled, e.opts, e.out, s.tdNodes, s.width, &stage.Trace{})
		if err != nil {
			delete(s.results, key)
			ms.ResultsDropped++
			continue
		}
		e.res, e.evalSize = res, e.out.NumFacts()
		keep = append(keep, key)
		dbs = append(dbs, key)
		ms.ResultsMaintained++
	}
	s.resultSeq, s.dbSeq = keep, dbs
}

// diffFacts computes the fact-level edit turning old into new, per
// predicate. The τ_td rebuild after a shape-preserving edit differs
// only in the per-node atom encoding of the touched bags, so the delta
// is proportional to the edit, not the structure.
func diffFacts(old, new *datalog.DB) (ins, del []datalog.Fact) {
	preds := map[string]bool{}
	for _, p := range old.Preds() {
		preds[p] = true
	}
	for _, p := range new.Preds() {
		preds[p] = true
	}
	for p := range preds {
		stale := map[string][]string{}
		for _, t := range old.Tuples(p) {
			stale[factArgsKey(t)] = t
		}
		for _, t := range new.Tuples(p) {
			k := factArgsKey(t)
			if _, present := stale[k]; present {
				delete(stale, k)
			} else {
				ins = append(ins, datalog.Fact{Pred: p, Args: t})
			}
		}
		for _, t := range stale {
			del = append(del, datalog.Fact{Pred: p, Args: t})
		}
	}
	return ins, del
}

func factArgsKey(args []string) string {
	n := 0
	for _, a := range args {
		n += len(a) + 1
	}
	b := make([]byte, 0, n)
	for _, a := range args {
		b = append(b, a...)
		b = append(b, 0)
	}
	return string(b)
}

// View runs fn with read access to the bound structure, serialized
// against Mutate. Callers deriving data from a session-bound structure
// outside an evaluation (building a solver problem over its primal
// graph, rendering it) use View to avoid racing concurrent mutations.
// fn must not call back into session methods.
func (s *Session) View(fn func(*structure.Structure)) {
	s.stMu.RLock()
	defer s.stMu.RUnlock()
	fn(s.st)
}

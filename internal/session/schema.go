package session

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/primality"
	"repro/internal/schema"
	"repro/internal/structure"
)

// SchemaSession binds a relational schema for the PRIMALITY programs of
// Sections 5.2–5.3: it caches the decomposed primality.Instance and
// memoizes the full prime-attribute enumeration, keyed by a schema
// fingerprint for invalidation. Safe for concurrent use.
type SchemaSession struct {
	s *schema.Schema

	mu     sync.Mutex
	fp     uint64
	valid  bool
	inst   *primality.Instance
	primes *bitset.Set
	stats  Stats
}

// NewSchemaSession creates a session bound to s.
func NewSchemaSession(s *schema.Schema) *SchemaSession {
	return &SchemaSession{s: s}
}

// Schema returns the bound schema.
func (ss *SchemaSession) Schema() *schema.Schema { return ss.s }

// Stats returns a snapshot of the session's operation counters
// (Decompositions counts primality instance builds here).
func (ss *SchemaSession) Stats() Stats {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.stats
}

// Instance returns the cached primality instance (decomposition of the
// schema's τ-structure), building it on first use or after the schema
// changed.
func (ss *SchemaSession) Instance(ctx context.Context) (*primality.Instance, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.instanceLocked(ctx)
}

func (ss *SchemaSession) instanceLocked(ctx context.Context) (*primality.Instance, error) {
	fp := SchemaFingerprint(ss.s)
	if ss.valid && fp != ss.fp {
		ss.inst, ss.primes = nil, nil
		ss.valid = false
		ss.stats.Invalidations++
	}
	ss.fp = fp
	if ss.inst == nil {
		in, err := primality.NewInstanceCtx(ctx, ss.s)
		if err != nil {
			return nil, err
		}
		ss.inst = in
		ss.stats.Decompositions++
	}
	ss.valid = true
	return ss.inst, nil
}

// Primes returns the set of prime attributes by the linear enumeration
// algorithm of Section 5.3, memoized until the schema changes. The
// returned set is a copy.
func (ss *SchemaSession) Primes(ctx context.Context) (*bitset.Set, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	in, err := ss.instanceLocked(ctx)
	if err != nil {
		return nil, err
	}
	if ss.primes == nil {
		primes, err := in.EnumerateCtx(ctx)
		if err != nil {
			return nil, err
		}
		ss.primes = primes
		ss.stats.Evals++
	}
	return ss.primes.Clone(), nil
}

// IsPrime decides primality of a single attribute by name, through the
// cached instance.
func (ss *SchemaSession) IsPrime(ctx context.Context, attr string) (bool, error) {
	a, ok := ss.s.Attr(attr)
	if !ok {
		return false, fmt.Errorf("session: unknown attribute %s", attr)
	}
	ss.mu.Lock()
	in, err := ss.instanceLocked(ctx)
	ss.mu.Unlock()
	if err != nil {
		return false, err
	}
	return in.DecideCtx(ctx, a)
}

// ---- package-level registries ----
//
// The compatibility wrappers (monadic.RunMSO, monadic.Primes, …) take a
// bare structure or schema, so they reach their session through these
// bounded identity-keyed registries: repeated calls on the same object
// reuse one session (and its artifacts) instead of rebuilding the
// pipeline. Entries are evicted FIFO beyond registryCap; content
// changes are handled by the sessions' own fingerprint invalidation.

const registryCap = 64

var (
	regMu        sync.Mutex
	structReg    = map[*structure.Structure]*Session{}
	structOrder  []*structure.Structure
	schemaReg    = map[*schema.Schema]*SchemaSession{}
	schemaOrder  []*schema.Schema
	registryHits int
)

// For returns the registry session for st, creating it on first use.
func For(st *structure.Structure) *Session {
	regMu.Lock()
	defer regMu.Unlock()
	if s, ok := structReg[st]; ok {
		registryHits++
		return s
	}
	s := New(st)
	structReg[st] = s
	structOrder = append(structOrder, st)
	if len(structOrder) > registryCap {
		evict := structOrder[0]
		structOrder = structOrder[1:]
		delete(structReg, evict)
	}
	return s
}

// ForSchema returns the registry session for s, creating it on first
// use.
func ForSchema(s *schema.Schema) *SchemaSession {
	regMu.Lock()
	defer regMu.Unlock()
	if ss, ok := schemaReg[s]; ok {
		registryHits++
		return ss
	}
	ss := NewSchemaSession(s)
	schemaReg[s] = ss
	schemaOrder = append(schemaOrder, s)
	if len(schemaOrder) > registryCap {
		evict := schemaOrder[0]
		schemaOrder = schemaOrder[1:]
		delete(schemaReg, evict)
	}
	return ss
}

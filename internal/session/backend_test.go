package session

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/mso"
	"repro/internal/stage"
	"repro/internal/structure"
)

func backendColoredPath(n int, seed int64) *structure.Structure {
	sig := structure.MustSignature(
		structure.Predicate{Name: "e", Arity: 2},
		structure.Predicate{Name: "c", Arity: 1},
	)
	rng := rand.New(rand.NewSource(seed))
	st := structure.New(sig)
	for i := 0; i < n; i++ {
		st.AddElem(fmt.Sprintf("v%d", i))
	}
	for i := 0; i+1 < n; i++ {
		st.MustAddTuple("e", i, i+1)
	}
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			st.MustAddTuple("c", i)
		}
	}
	return st
}

func backendColorsOnly(n int, seed int64) *structure.Structure {
	sig := structure.MustSignature(structure.Predicate{Name: "c", Arity: 1})
	rng := rand.New(rand.NewSource(seed))
	st := structure.New(sig)
	for i := 0; i < n; i++ {
		st.AddElem(fmt.Sprintf("v%d", i))
		if rng.Intn(2) == 0 {
			st.MustAddTuple("c", i)
		}
	}
	return st
}

// TestBackendDifferentialWarmSession is the warm half of the
// differential suite: both backends evaluated through a session (cached
// artifacts, result cache) against the cold core pipeline, on colored
// paths (rank 0, binary signature) and colors-only structures (up to
// rank 2, including set quantifiers).
func TestBackendDifferentialWarmSession(t *testing.T) {
	ctx := context.Background()
	type workload struct {
		st      *structure.Structure
		queries []string
	}
	workloads := []workload{
		{backendColoredPath(12, 31), []string{"c(x)", "~c(x)", "c(x) | ~c(x)"}},
		{backendColorsOnly(10, 37), []string{
			"c(x) & exists y ~c(y)",
			"c(x) | forall y c(y)",
			"exists Y (x in Y & forall z (z in Y -> c(z)))",
		}},
	}
	for wi, w := range workloads {
		sess := NewWithCache(w.st, NewProgramCache())
		for _, q := range w.queries {
			phi := mso.MustParse(q)
			for _, backend := range []string{"", "game"} {
				warm, err := sess.Eval(ctx, phi, "x", core.Options{Backend: backend})
				if err != nil {
					t.Fatalf("workload %d, %q, backend %q: session: %v", wi, q, backend, err)
				}
				cold, err := core.RunCtx(ctx, w.st, phi, "x", core.Options{Backend: backend})
				if err != nil {
					t.Fatalf("workload %d, %q, backend %q: cold: %v", wi, q, backend, err)
				}
				if !warm.Selected.Equal(cold.Selected) {
					t.Fatalf("workload %d, %q, backend %q: warm %v, cold %v", wi, q, backend, warm.Selected, cold.Selected)
				}
			}
		}
	}
}

// TestBackendCacheIsolation is the cross-backend cache-isolation
// regression: one session, one formula, evaluated under both backends —
// each must run its own evaluation (distinct result-cache keys), and a
// repeat under either backend must hit its own entry, never the
// other's.
func TestBackendCacheIsolation(t *testing.T) {
	ctx := context.Background()
	st := backendColoredPath(10, 41)
	sess := NewWithCache(st, NewProgramCache())
	phi := mso.MustParse("c(x)")

	ares, err := sess.Eval(ctx, phi, "x", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := sess.Eval(ctx, phi, "x", core.Options{Backend: "game"})
	if err != nil {
		t.Fatal(err)
	}
	if !ares.Selected.Equal(gres.Selected) {
		t.Fatalf("backends disagree: automaton %v, game %v", ares.Selected, gres.Selected)
	}
	stats := sess.Stats()
	if stats.Evals != 2 {
		t.Fatalf("Evals = %d after one query under two backends, want 2 (keys must be backend-distinct)", stats.Evals)
	}
	if stats.ResultCacheHits != 0 {
		t.Fatalf("ResultCacheHits = %d before any repeat, want 0", stats.ResultCacheHits)
	}
	if got := stats.EvalsByBackend["automaton"]; got != 1 {
		t.Fatalf("EvalsByBackend[automaton] = %d, want 1", got)
	}
	if got := stats.EvalsByBackend["game"]; got != 1 {
		t.Fatalf("EvalsByBackend[game] = %d, want 1", got)
	}

	// Repeats hit the per-backend entries without re-evaluating.
	if _, err := sess.Eval(ctx, phi, "x", core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Eval(ctx, phi, "x", core.Options{Backend: "game"}); err != nil {
		t.Fatal(err)
	}
	stats = sess.Stats()
	if stats.Evals != 2 || stats.ResultCacheHits != 2 {
		t.Fatalf("after repeats: Evals = %d, ResultCacheHits = %d, want 2 and 2", stats.Evals, stats.ResultCacheHits)
	}

	// The explicit default name and the empty string are the same key.
	if _, err := sess.Eval(ctx, phi, "x", core.Options{Backend: core.DefaultBackend}); err != nil {
		t.Fatal(err)
	}
	if hits := sess.Stats().ResultCacheHits; hits != 3 {
		t.Fatalf("explicit %q backend missed the default entry (hits = %d, want 3)", core.DefaultBackend, hits)
	}
}

// TestBackendDifferentialConcurrent hammers one session with both
// backends concurrently under -race: every answer must match the
// sequential baseline, and the result cache must end with exactly one
// evaluation per (query, backend).
func TestBackendDifferentialConcurrent(t *testing.T) {
	ctx := context.Background()
	st := backendColoredPath(10, 43)
	queries := []string{"c(x)", "~c(x)"}
	baseline := make(map[string]*core.Result)
	for _, q := range queries {
		res, err := core.RunCtx(ctx, st, mso.MustParse(q), "x", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		baseline[q] = res
	}

	sess := NewWithCache(st, NewProgramCache())
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		for _, q := range queries {
			for _, backend := range []string{"", "game"} {
				wg.Add(1)
				go func(q, backend string) {
					defer wg.Done()
					res, err := sess.Eval(ctx, mso.MustParse(q), "x", core.Options{Backend: backend})
					if err != nil {
						errc <- fmt.Errorf("%q backend %q: %w", q, backend, err)
						return
					}
					if !res.Selected.Equal(baseline[q].Selected) {
						errc <- fmt.Errorf("%q backend %q: diverged from baseline", q, backend)
					}
				}(q, backend)
			}
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	stats := sess.Stats()
	want := len(queries) * 2 // one eval per (query, backend)
	if stats.Evals != want {
		t.Fatalf("Evals = %d, want %d (single-flight per backend-keyed query)", stats.Evals, want)
	}
}

// TestChaosGameBackendSession injects game faults through the session
// layer: the failure must surface stage-tagged, must not be cached, and
// the post-fault retry must evaluate fresh and agree with the cold
// pipeline.
func TestChaosGameBackendSession(t *testing.T) {
	defer faultinject.Reset()
	ctx := context.Background()
	st := backendColoredPath(10, 47)
	phi := mso.MustParse("c(x)")
	cold, err := core.RunCtx(ctx, st, phi, "x", core.Options{Backend: "game"})
	if err != nil {
		t.Fatal(err)
	}

	for _, point := range []string{"game.expand", "game.memo"} {
		t.Run(point, func(t *testing.T) {
			sess := NewWithCache(backendColoredPath(10, 47), NewProgramCache())
			// Warm the artifacts so the fault lands in the evaluation, not
			// the front end.
			if _, err := sess.NiceForm(ctx); err != nil {
				t.Fatal(err)
			}
			faultinject.Reset()
			faultinject.FailAt(point, 1)
			_, err := sess.Eval(ctx, phi, "x", core.Options{Backend: "game"})
			if err == nil {
				t.Fatalf("injected fault at %s did not surface through the session", point)
			}
			if got := stage.Of(err); got == "" {
				t.Fatalf("fault at %s lost its stage tag: %v", point, err)
			}
			faultinject.Reset()
			res, err := sess.Eval(ctx, phi, "x", core.Options{Backend: "game"})
			if err != nil {
				t.Fatalf("retry after %s fault: %v", point, err)
			}
			if !res.Selected.Equal(cold.Selected) {
				t.Fatalf("retry after %s fault diverged from cold answer", point)
			}
			stats := sess.Stats()
			if stats.Evals != 1 {
				t.Fatalf("Evals = %d after fault+retry, want 1 (the failed run must not count or cache)", stats.Evals)
			}
		})
	}
}

// TestBackendUnknownInSession pins the error shape for a bogus backend
// name reaching Session.Eval.
func TestBackendUnknownInSession(t *testing.T) {
	sess := NewWithCache(backendColorsOnly(4, 3), NewProgramCache())
	_, err := sess.Eval(context.Background(), mso.MustParse("c(x)"), "x", core.Options{Backend: "quantum"})
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	var se *stage.Error
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want a stage-tagged error", err, err)
	}
}

package session

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/solver"
	"repro/internal/stage"
)

// freeSelect is the free-selection algebra over a structure's
// decomposition: every subset of the elements is a solution, each
// selected element costs 1. Counting it yields exactly 2^n for a
// structure with n elements, which makes the memoized answers easy to
// pin without a second oracle.
type freeSelect struct{}

func (freeSelect) Name() string { return "free-select" }

func (freeSelect) Leaf(_ int, bag []int) []solver.Out[uint64] {
	var out []solver.Out[uint64]
	for m := uint64(0); m < 1<<uint(len(bag)); m++ {
		cost := 0
		for p := range bag {
			cost += int(m >> uint(p) & 1)
		}
		out = append(out, solver.Out[uint64]{State: m, Cost: cost})
	}
	return out
}

func (freeSelect) Introduce(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	p := solver.Position(bag, elem)
	w := solver.Width(1)
	return []solver.Out[uint64]{
		{State: w.Insert(child, p, 0)},
		{State: w.Insert(child, p, 1), Cost: 1},
	}
}

func (freeSelect) Forget(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	childBag := solver.InsertSorted(bag, elem)
	return []solver.Out[uint64]{{State: solver.Width(1).Drop(child, solver.Position(childBag, elem))}}
}

func (freeSelect) Join(_ int, bag []int, s1, s2 uint64) []solver.Out[uint64] {
	if s1 != s2 {
		return nil
	}
	dup := 0
	for p := range bag {
		dup += int(s1 >> uint(p) & 1)
	}
	return []solver.Out[uint64]{{State: s1, Cost: -dup}}
}

func (freeSelect) Accept(int, []int, uint64) bool { return true }

// TestSolverMemoization pins the cache guarantee: repeating each mode
// on an unchanged structure solves once and hits the cache after.
func TestSolverMemoization(t *testing.T) {
	st := randColored(rand.New(rand.NewSource(53)), 7)
	s := NewWithCache(st, NewProgramCache())
	ctx := context.Background()

	want := new(big.Int).Lsh(big.NewInt(1), 7) // 2^7 subsets

	for i := 0; i < 3; i++ {
		ok, err := SolveDecide(ctx, s, freeSelect{})
		if err != nil || !ok {
			t.Fatalf("decide #%d: %v %v", i, ok, err)
		}
		n, err := SolveCount(ctx, s, freeSelect{})
		if err != nil || n.Cmp(want) != 0 {
			t.Fatalf("count #%d: %v, want %v (%v)", i, n, want, err)
		}
		der, err := SolveOptimize(ctx, s, freeSelect{})
		if err != nil || der == nil || der.Value != 0 {
			t.Fatalf("optimize #%d: %v, %v", i, der, err)
		}
	}
	stats := s.Stats()
	if stats.SolverSolves != 3 {
		t.Errorf("SolverSolves = %d, want 3 (one per mode)", stats.SolverSolves)
	}
	if stats.SolverCacheHits != 6 {
		t.Errorf("SolverCacheHits = %d, want 6", stats.SolverCacheHits)
	}

	// The count is caller-owned: mutating it must not poison the cache.
	n, _ := SolveCount(ctx, s, freeSelect{})
	n.SetInt64(-1)
	n2, err := SolveCount(ctx, s, freeSelect{})
	if err != nil || n2.Cmp(want) != 0 {
		t.Fatalf("cache poisoned by caller mutation: %v (%v)", n2, err)
	}
}

// TestSolverInvalidation: mutating the structure empties the solver
// cache along with the other artifacts.
func TestSolverInvalidation(t *testing.T) {
	st := randColored(rand.New(rand.NewSource(59)), 5)
	s := NewWithCache(st, NewProgramCache())
	ctx := context.Background()

	n, err := SolveCount(ctx, s, freeSelect{})
	if err != nil {
		t.Fatal(err)
	}
	if want := big.NewInt(1 << 5); n.Cmp(want) != 0 {
		t.Fatalf("count = %v, want %v", n, want)
	}

	st.AddElem("fresh")
	n, err = SolveCount(ctx, s, freeSelect{})
	if err != nil {
		t.Fatal(err)
	}
	if want := big.NewInt(1 << 6); n.Cmp(want) != 0 {
		t.Fatalf("count after mutation = %v, want %v (stale cache?)", n, want)
	}
	stats := s.Stats()
	if stats.SolverSolves != 2 {
		t.Errorf("SolverSolves = %d, want 2", stats.SolverSolves)
	}
	if stats.Invalidations == 0 {
		t.Error("mutation did not count an invalidation")
	}
}

// TestChaosSessionSolver injects faults at the session.solver boundary
// and inside the solver engine reached through the session path, and
// checks stage tagging plus a clean, correct retry (no poisoned cache).
func TestChaosSessionSolver(t *testing.T) {
	defer faultinject.Reset()
	points := []string{"session.solver", "solver.introduce", "solver.forget", "solver.join"}
	for _, point := range points {
		faultinject.Reset()
		faultinject.FailAt(point, 1)
		st := randColored(rand.New(rand.NewSource(61)), 6)
		s := NewWithCache(st, NewProgramCache())
		ctx := context.Background()

		_, err := SolveCount(ctx, s, freeSelect{})
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("%s: err = %v, want injected fault", point, err)
		}
		if got := stage.Of(err); got != stage.Solver {
			t.Fatalf("%s: tagged stage %q, want %q", point, got, stage.Solver)
		}

		// The plan is exhausted; the retry must compute the right answer
		// and the failed run must not have stored anything.
		n, err := SolveCount(ctx, s, freeSelect{})
		if err != nil {
			t.Fatalf("%s: retry failed: %v", point, err)
		}
		if want := big.NewInt(1 << 6); n.Cmp(want) != 0 {
			t.Fatalf("%s: retry count = %v, want %v", point, n, want)
		}
		stats := s.Stats()
		if stats.SolverSolves != 1 || stats.SolverCacheHits != 0 {
			t.Fatalf("%s: stats after fault+retry = %+v, want 1 solve 0 hits", point, stats)
		}
	}
}

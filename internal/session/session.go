// Package session provides the staged solver pipeline of Corollary 4.6
// as a reusable, cancellable, instrumented service. A Session binds one
// structure and memoizes the per-structure artifacts — tree
// decomposition, tuple normal form (Def. 2.3), nice normal form, τ_td
// structure (Section 4) and its datalog EDB — keyed by a content
// fingerprint, while compiled MSO programs are cached per (formula,
// width, options) in a ProgramCache shared across sessions. Evaluating
// k queries over one structure therefore pays for decomposition,
// normalization and τ_td construction once, and one query over k
// structures compiles once. Evaluation is deterministic, so each
// session additionally memoizes query results per (formula, options):
// repeating a query on an unchanged structure is a pure cache hit,
// invalidated by the same fingerprint mechanism as the artifacts.
//
// Concurrency: all methods are safe for concurrent use, and the session
// mutex is held only for cache lookups and inserts — never across
// artifact construction, compilation or evaluation. Expensive work runs
// under per-key single-flight: concurrent requests for the same missing
// artifact, compiled program or evaluation result share one in-flight
// computation, while requests answerable from cache complete
// immediately even when a cold computation is running on the same
// session. If an in-flight leader fails, waiting requests with live
// contexts retry (resuming after any stages the failed run completed)
// rather than inheriting the leader's error.
//
// Every stage accepts a context.Context; cancellation and deadline
// errors come back wrapped in a *stage.Error (aliased here as
// StageError) naming the stage that observed them, and each evaluation
// carries a stage.Trace of per-stage wall time, output size and cache
// hits.
//
// Mutation: Session.Mutate edits the bound structure under the
// session's write lock (serialized against every in-flight build and
// evaluation) and re-synchronizes the caches incrementally — local
// decomposition repair, τ_td rebuild and DRed-style result maintenance
// — falling back to wholesale invalidation only when the edit cannot be
// absorbed (see mutate.go). Editing a session-bound structure directly
// still works but is detected by fingerprint and always pays the
// wholesale invalidation, and racing such edits against concurrent
// evaluations is the caller's responsibility.
package session

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	// Register the game backend so any session user (server, CLIs,
	// tests) can select it by name without its own import.
	_ "repro/internal/backend/game"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/decompose"
	"repro/internal/faultinject"
	"repro/internal/mso"
	"repro/internal/stage"
	"repro/internal/structure"
	"repro/internal/tree"
)

// StageError is the stage-tagged error taxonomy of the pipeline; see
// stage.Error. Use errors.As to recover it and errors.Is to test for
// context.Canceled / context.DeadlineExceeded underneath.
type StageError = stage.Error

// Trace records per-stage wall time, output size and cache hits for
// one evaluation; see stage.Trace.
type Trace = stage.Trace

// Stats counts the expensive operations a session has performed. The
// cache guarantees are expressed in these counters: evaluating any
// number of queries over an unchanged structure keeps Decompositions,
// TupleNormalizations and TDBuilds at 1.
type Stats struct {
	// Decompositions counts min-fill tree decompositions computed.
	Decompositions int
	// TupleNormalizations counts tuple-normal-form constructions.
	TupleNormalizations int
	// NiceNormalizations counts nice-normal-form constructions.
	NiceNormalizations int
	// TDBuilds counts τ_td structure constructions (incl. EDB load).
	TDBuilds int
	// Compiles counts MSO compilations this session triggered;
	// CompileCacheHits counts the ones served from the program cache.
	Compiles, CompileCacheHits int
	// Evals counts evaluations (one per Eval call that reached the
	// evaluation stage, regardless of backend); ResultCacheHits counts
	// Eval calls answered from the per-session result cache — or from
	// another request's in-flight evaluation of the same key — instead.
	Evals, ResultCacheHits int
	// EvalsByBackend splits Evals by the backend that performed them
	// (core.Options.Backend; "automaton" for the default pipeline). Nil
	// until the first evaluation completes.
	EvalsByBackend map[string]int
	// SolverSolves counts semiring-solver runs performed by the Solve*
	// helpers; SolverCacheHits counts the Solve* calls answered from the
	// per-session solver cache instead.
	SolverSolves, SolverCacheHits int
	// Invalidations counts wholesale artifact discards: fingerprint
	// mismatches from direct (non-Mutate) structure edits, and Mutate
	// calls that could not be absorbed incrementally.
	Invalidations int
	// DeltasApplied counts Mutate calls absorbed incrementally — cached
	// artifacts retained and patched instead of discarded.
	DeltasApplied int
	// RepairFallbacks counts Mutate calls whose local decomposition
	// repair declined (width excess, wide uncovered tuple, injected
	// fault) and degraded to a wholesale invalidation.
	RepairFallbacks int
	// TuplesStreamed, JoinsPushedDown and PeakBufferedTuples mirror the
	// datalog streaming engine's counters for this session's evaluations
	// (see datalog.EngineStats). The grounded evaluation path (Theorem
	// 4.4) bypasses the rule engine, so these advance only under the
	// direct path (SetEvalPath / monadicd -eval direct).
	TuplesStreamed, JoinsPushedDown, PeakBufferedTuples int64
}

// EvalPath selects how Session.Eval computes the datalog fixpoint.
type EvalPath int32

const (
	// EvalGrounded (the default) is the paper-faithful Theorem 4.4
	// pipeline: materialize the quasi-guarded ground program (|P|·|A|
	// atoms, metered by Budget.MaxGroundAtoms) and solve it as a Horn
	// theory.
	EvalGrounded EvalPath = iota
	// EvalDirect runs the compiled program straight through the datalog
	// engine's semi-naive fixpoint — with the streaming backend, rule
	// bodies evaluate in O(1) rows in flight instead of materializing
	// the ground program, so structures whose grounding exceeds
	// MaxGroundAtoms can still complete (metered by MaxStreamTuples).
	EvalDirect
)

var evalPath atomic.Int32 // EvalPath, zero value = EvalGrounded

// SetEvalPath selects the evaluation path for subsequent Session.Eval
// calls and returns the previous setting. Both paths compute the same
// least model, so cached results remain valid across a switch.
func SetEvalPath(p EvalPath) EvalPath { return EvalPath(evalPath.Swap(int32(p))) }

// CurrentEvalPath reports the selected evaluation path.
func CurrentEvalPath() EvalPath { return EvalPath(evalPath.Load()) }

// Session binds a structure and caches its pipeline artifacts. All
// methods are safe for concurrent use; the mutex guards only cache
// state, and construction/evaluation run outside it under per-key
// single-flight (see the package comment).
type Session struct {
	st    *structure.Structure
	progs *ProgramCache

	// stMu serializes structure access: builds and evaluations read the
	// bound structure under RLock, and Mutate edits it (and re-syncs the
	// caches) under Lock. Lock order is stMu before mu; nothing acquires
	// stMu while holding mu.
	stMu sync.RWMutex

	mu    sync.Mutex
	fp    uint64
	valid bool
	stats Stats

	// engine accumulates the datalog streaming engine's counters for
	// this session's evaluations (attached to the evaluation context in
	// runEval); it has its own atomics and is read outside s.mu.
	engine datalog.StatsCollector

	raw     *tree.Decomposition  // ladder decomposition of st
	rung    string               // degradation-ladder rung that produced raw
	tuple   *tree.Decomposition  // tuple normal form
	nice    *tree.Decomposition  // nice normal form (built on demand)
	width   int                  // normalized width
	td      *structure.Structure // τ_td structure
	edb     *datalog.DB          // EDB of td (cloned per evaluation)
	tdNodes int

	// building is the in-flight front-end build, if any; niceFlight the
	// in-flight nice normalization; evalFlights the in-flight
	// evaluations per program key; solverFlights the in-flight solver
	// runs per (problem, mode). Concurrent requests for the same
	// missing entry wait on the flight instead of recomputing.
	building      *artifactFlight
	niceFlight    *opFlight
	evalFlights   map[progKey]*evalFlight
	solverFlights map[solverKey]*opFlight

	// results memoizes evaluated queries per program key; evaluation is
	// deterministic, so an unchanged structure makes a repeat of the
	// same (formula, options) a pure cache hit. Bounded FIFO. dbSeq
	// tracks the entries still holding their evaluated fixpoint (at most
	// deltaCap, FIFO), the ones Mutate can maintain incrementally.
	results   map[progKey]*resultEntry
	resultSeq []progKey
	dbSeq     []progKey

	// solverResults memoizes semiring-solver outcomes per (problem name,
	// mode); see SolveDecide / SolveCount / SolveOptimize. Invalidated
	// with the other artifacts on fingerprint change. Bounded FIFO.
	solverResults map[solverKey]any
	solverSeq     []solverKey
}

// resultCap bounds the per-session result cache; deltaCap bounds how
// many entries keep their evaluated fixpoint database for incremental
// maintenance under Mutate (the fixpoint dominates an entry's memory, so
// only the most recent few retain it).
const (
	resultCap = 256
	deltaCap  = 8
)

type resultEntry struct {
	res      *core.Result
	evalSize int // NumFacts of the evaluation output, for trace replay
	// compiled, opts and out let Mutate maintain this entry through a
	// structure edit (datalog.ApplyDelta on the retained fixpoint, then
	// core.FinishResult); out is retained for the deltaCap most recent
	// entries only — older entries are dropped on mutation instead.
	compiled *core.Compiled
	opts     core.Options
	out      *datalog.DB
}

// artifactFlight is one in-flight front-end build, shared by every
// request that arrives while it runs. full distinguishes a
// decomposition-only build from the full decompose → normalize-tuple →
// build-td chain; a waiter that needs more than the flight is building
// loops and leads its own (resumed) build when the flight completes.
type artifactFlight struct {
	full bool
	done chan struct{}
	art  artifacts // stages built, valid once done is closed
	rung string
	err  error
}

// opFlight is one in-flight single-value computation (nice form,
// solver run).
type opFlight struct {
	done chan struct{}
	val  any
	err  error
}

// evalFlight is one in-flight evaluation of a program key.
type evalFlight struct {
	done     chan struct{}
	res      *core.Result
	evalSize int
	err      error
}

// testHookEvalStart, when non-nil, runs at the start of every uncached
// evaluation (after this request became the key's single-flight leader,
// outside the session mutex). The concurrency regression tests use it
// to hold a cold evaluation open while asserting that warm cache hits
// on the same session still complete.
var testHookEvalStart func()

// New creates a session bound to st, using the shared default program
// cache.
func New(st *structure.Structure) *Session {
	return NewWithCache(st, defaultProgramCache)
}

// NewWithCache creates a session with a caller-provided program cache
// (useful to isolate cache statistics in tests).
func NewWithCache(st *structure.Structure, pc *ProgramCache) *Session {
	if pc == nil {
		pc = defaultProgramCache
	}
	return &Session{st: st, progs: pc}
}

// Structure returns the bound structure.
func (s *Session) Structure() *structure.Structure { return s.st }

// Stats returns a snapshot of the session's operation counters,
// including the engine counters of its evaluations.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	if s.stats.EvalsByBackend != nil {
		st.EvalsByBackend = make(map[string]int, len(s.stats.EvalsByBackend))
		for k, v := range s.stats.EvalsByBackend {
			st.EvalsByBackend[k] = v
		}
	}
	s.mu.Unlock()
	es := s.engine.Snapshot()
	st.TuplesStreamed = es.TuplesStreamed
	st.JoinsPushedDown = es.JoinsPushedDown
	st.PeakBufferedTuples = es.PeakBufferedTuples
	return st
}

// EngineStats returns the datalog streaming-engine counters accumulated
// by this session's evaluations.
func (s *Session) EngineStats() datalog.EngineStats { return s.engine.Snapshot() }

// ProgramCacheStats reports the hit/miss counters of the session's
// program cache (shared across sessions unless NewWithCache was used).
func (s *Session) ProgramCacheStats() (hits, misses int) { return s.progs.Stats() }

// Invalidate drops all cached artifacts; the next evaluation rebuilds
// them. Called automatically when the structure's fingerprint changes.
func (s *Session) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalidateLocked()
}

func (s *Session) invalidateLocked() {
	s.valid = false
	s.raw, s.tuple, s.nice, s.td, s.edb = nil, nil, nil, nil, nil
	s.rung = ""
	s.tdNodes, s.width = 0, 0
	s.results, s.resultSeq, s.dbSeq = nil, nil, nil
	s.solverResults, s.solverSeq = nil, nil
}

// ShedResults drops the per-session result and solver caches —
// the memory-dominant state: retained evaluation fixpoints, full
// core.Results, solver outcomes — while keeping the structural
// artifacts (decomposition, τ_td, EDB), which are cheap to hold and
// expensive to rebuild. It returns how many cached entries were
// released. The server's memory watchdog calls it as the first
// shedding tier; subsequent evaluations recompute and re-populate.
// In-flight evaluations are unaffected (their results re-enter the
// cache when they complete).
func (s *Session) ShedResults() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.results) + len(s.solverResults)
	s.results, s.resultSeq, s.dbSeq = nil, nil, nil
	s.solverResults, s.solverSeq = nil, nil
	return n
}

// revalidateLocked discards the cached artifacts if the structure's
// fingerprint changed since they were built. It deliberately does NOT
// gate on s.valid: after a failed run (valid never set) the session may
// still hold artifacts from the stages that succeeded, and a structure
// mutation in between must not let them leak into the next run.
func (s *Session) revalidateLocked() {
	fp := Fingerprint(s.st)
	hasArtifacts := s.raw != nil || s.tuple != nil || s.nice != nil || s.td != nil || s.results != nil || s.solverResults != nil
	if fp != s.fp && hasArtifacts {
		s.invalidateLocked()
		s.stats.Invalidations++
	}
	s.fp = fp
}

// artifacts holds the per-structure products of the pipeline front end.
type artifacts struct {
	raw     *tree.Decomposition
	tuple   *tree.Decomposition
	width   int
	td      *structure.Structure
	edb     *datalog.DB
	tdNodes int
}

// ensure builds (or revalidates) the cached decomposition, tuple form,
// τ_td structure and EDB, recording stage stats into trace. Cached
// stages are recorded with CacheHit set and zero wall time.
func (s *Session) ensure(ctx context.Context, trace *stage.Trace) (artifacts, error) {
	return s.frontEnd(ctx, trace, true)
}

// frontEnd returns the front-end artifacts, building missing stages
// under single-flight. With full unset only the raw decomposition is
// guaranteed. The mutex is held for lookups and inserts only; at most
// one build runs at a time, every stage stores its artifact on success
// (so a failed build leaves exactly the completed stages behind and a
// retry resumes after them), and concurrent callers share the in-flight
// build instead of queueing behind the lock.
func (s *Session) frontEnd(ctx context.Context, trace *stage.Trace, full bool) (artifacts, error) {
	for {
		if err := ctx.Err(); err != nil {
			return artifacts{}, stage.Wrap(stage.Decompose, err)
		}
		s.mu.Lock()
		s.revalidateLocked()
		if s.raw != nil && (!full || (s.tuple != nil && s.td != nil)) {
			art := artifacts{raw: s.raw, tuple: s.tuple, width: s.width, td: s.td, edb: s.edb, tdNodes: s.tdNodes}
			rung := s.rung
			s.mu.Unlock()
			recordFrontEndHits(trace, art, rung, full)
			return art, nil
		}
		if f := s.building; f != nil {
			covers := f.full || !full
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return artifacts{}, stage.Wrap(stage.Decompose, ctx.Err())
			}
			if covers && f.err == nil {
				recordFrontEndHits(trace, f.art, f.rung, full)
				return f.art, nil
			}
			// The flight was narrower than we need, or its leader
			// failed: loop and either hit the now-populated cache, join
			// a newer flight, or lead a (resumed) build ourselves.
			continue
		}
		f := &artifactFlight{full: full, done: make(chan struct{})}
		s.building = f
		fp := s.fp
		have := artifacts{raw: s.raw, tuple: s.tuple, width: s.width, td: s.td, edb: s.edb, tdNodes: s.tdNodes}
		rung := s.rung
		s.mu.Unlock()

		s.stMu.RLock()
		art, rung, built, err := s.buildFrontEnd(ctx, trace, have, rung, full)
		s.stMu.RUnlock()

		s.mu.Lock()
		s.building = nil
		if built.decompose {
			s.stats.Decompositions++
		}
		if built.tuple {
			s.stats.TupleNormalizations++
		}
		if built.td {
			s.stats.TDBuilds++
		}
		// Store only if the structure still matches the fingerprint the
		// build started from: a mutation mid-build must not poison the
		// cache with artifacts for a structure that no longer exists.
		if Fingerprint(s.st) == fp {
			if art.raw != nil {
				s.raw, s.rung = art.raw, rung
			}
			if art.tuple != nil {
				s.tuple, s.width = art.tuple, art.width
			}
			if art.td != nil {
				s.td, s.edb, s.tdNodes = art.td, art.edb, art.tdNodes
			}
			if err == nil && full {
				s.valid = true
			}
		}
		f.art, f.rung, f.err = art, rung, err
		s.mu.Unlock()
		close(f.done)
		if err != nil {
			return artifacts{}, err
		}
		return art, nil
	}
}

// recordFrontEndHits records cache-hit trace entries for artifacts this
// request did not build itself (served from cache or from another
// request's in-flight build).
func recordFrontEndHits(trace *stage.Trace, art artifacts, rung string, full bool) {
	trace.RecordDetail(stage.Decompose, 0, art.raw.Len(), true, rung)
	if !full {
		return
	}
	trace.Record(stage.NormalizeTuple, 0, art.tuple.Len(), true)
	trace.Record(stage.BuildTD, 0, art.td.Size(), true)
}

// builtStages reports which stages a build actually performed, for
// stats accounting.
type builtStages struct {
	decompose, tuple, td bool
}

// buildFrontEnd runs the missing front-end stages starting from the
// artifacts in have. It runs outside the session mutex; a stage panic
// is recovered into a stage-tagged error here so the caller's flight
// bookkeeping always runs.
func (s *Session) buildFrontEnd(ctx context.Context, trace *stage.Trace, have artifacts, rung string, full bool) (art artifacts, outRung string, built builtStages, err error) {
	cur := stage.Decompose
	defer stage.RecoverAt(&cur, &err)
	art, outRung = have, rung
	if art.raw == nil {
		if err := faultinject.Check("session.decompose"); err != nil {
			return art, outRung, built, stage.Wrap(stage.Decompose, err)
		}
		start := timeNow()
		d, r, err := decompose.StructureLadderCtx(ctx, s.st)
		if err != nil {
			return art, outRung, built, stage.Wrap(stage.Decompose, err)
		}
		art.raw, outRung = d, r
		built.decompose = true
		trace.RecordDetail(stage.Decompose, timeNow().Sub(start), d.Len(), false, r)
	} else {
		trace.RecordDetail(stage.Decompose, 0, art.raw.Len(), true, outRung)
	}
	if !full {
		return art, outRung, built, nil
	}
	cur = stage.NormalizeTuple
	if art.tuple == nil {
		if err := faultinject.Check("session.normalize-tuple"); err != nil {
			return art, outRung, built, stage.Wrap(stage.NormalizeTuple, err)
		}
		if err := art.raw.Validate(s.st); err != nil {
			return art, outRung, built, fmt.Errorf("session: invalid decomposition: %w", err)
		}
		start := timeNow()
		norm, err := tree.NormalizeTupleCtx(ctx, art.raw)
		if err != nil {
			return art, outRung, built, stage.Wrap(stage.NormalizeTuple, err)
		}
		art.tuple = norm
		art.width = norm.Width()
		built.tuple = true
		trace.Record(stage.NormalizeTuple, timeNow().Sub(start), norm.Len(), false)
	} else {
		trace.Record(stage.NormalizeTuple, 0, art.tuple.Len(), true)
	}
	cur = stage.BuildTD
	if art.td == nil {
		if err := faultinject.Check("session.build-td"); err != nil {
			return art, outRung, built, stage.Wrap(stage.BuildTD, err)
		}
		start := timeNow()
		td, _, err := tree.BuildTDCtx(ctx, s.st, art.tuple, art.width)
		if err != nil {
			return art, outRung, built, stage.Wrap(stage.BuildTD, err)
		}
		art.td = td
		art.edb = datalog.FromStructure(td, "")
		art.tdNodes = art.tuple.Len()
		built.td = true
		trace.Record(stage.BuildTD, timeNow().Sub(start), td.Size(), false)
	} else {
		trace.Record(stage.BuildTD, 0, art.td.Size(), true)
	}
	return art, outRung, built, nil
}

// Warm builds (or revalidates) every front-end artifact and returns the
// stage trace of doing so — cached stages appear with CacheHit set.
// CLIs use it to surface per-stage timings without running a query.
func (s *Session) Warm(ctx context.Context) (*Trace, error) {
	trace := &stage.Trace{}
	if _, err := s.ensure(ctx, trace); err != nil {
		return trace, err
	}
	return trace, nil
}

// Decomposition returns the session's cached raw tree decomposition
// (computed on first use by the degradation ladder; see
// decompose.GraphLadderCtx).
func (s *Session) Decomposition(ctx context.Context) (*tree.Decomposition, error) {
	trace := &stage.Trace{}
	art, err := s.frontEnd(ctx, trace, false)
	if err != nil {
		return nil, err
	}
	return art.raw, nil
}

// TupleForm returns the cached tuple normal form (Def. 2.3) and its
// width, normalizing on first use.
func (s *Session) TupleForm(ctx context.Context) (*tree.Decomposition, int, error) {
	trace := &stage.Trace{}
	art, err := s.ensure(ctx, trace)
	if err != nil {
		return nil, 0, err
	}
	return art.tuple, art.width, nil
}

// NiceForm returns the cached nice normal form (Section 5), normalizing
// the raw decomposition on first use. Concurrent callers share one
// in-flight normalization.
func (s *Session) NiceForm(ctx context.Context) (*tree.Decomposition, error) {
	trace := &stage.Trace{}
	art, err := s.frontEnd(ctx, trace, false)
	if err != nil {
		return nil, err
	}
	for {
		s.mu.Lock()
		if s.nice != nil {
			nice := s.nice
			s.mu.Unlock()
			return nice, nil
		}
		if f := s.niceFlight; f != nil {
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, stage.Wrap(stage.NormalizeNice, ctx.Err())
			}
			if f.err == nil {
				return f.val.(*tree.Decomposition), nil
			}
			if ctx.Err() != nil {
				return nil, stage.Wrap(stage.NormalizeNice, ctx.Err())
			}
			continue
		}
		f := &opFlight{done: make(chan struct{})}
		s.niceFlight = f
		fp := s.fp
		s.mu.Unlock()

		nice, err := s.normalizeNice(ctx, art.raw)

		s.mu.Lock()
		s.niceFlight = nil
		if err == nil {
			s.stats.NiceNormalizations++
			if Fingerprint(s.st) == fp {
				s.nice = nice
			}
		}
		s.mu.Unlock()
		f.val, f.err = nice, err
		close(f.done)
		return nice, err
	}
}

func (s *Session) normalizeNice(ctx context.Context, raw *tree.Decomposition) (nice *tree.Decomposition, err error) {
	defer stage.RecoverTo(stage.NormalizeNice, &err)
	return tree.NormalizeNiceCtx(ctx, raw, tree.NiceOptions{})
}

// TauTD returns the cached τ_td structure of Section 4.
func (s *Session) TauTD(ctx context.Context) (*structure.Structure, error) {
	trace := &stage.Trace{}
	art, err := s.ensure(ctx, trace)
	if err != nil {
		return nil, err
	}
	return art.td, nil
}

// Width returns the normalized decomposition width.
func (s *Session) Width(ctx context.Context) (int, error) {
	_, w, err := s.TupleForm(ctx)
	return w, err
}

// Eval runs the MSO query phi (free element variable xVar, or a
// sentence when opts.Decision is set) over the session's structure:
// cached artifacts feed a (possibly cached) compiled program, and only
// the quasi-guarded evaluation of Theorem 4.4 runs per call. The
// Result's Trace shows which stages were served from cache. Concurrent
// Eval calls for the same (formula, options) share one evaluation;
// calls answerable from the result cache complete without waiting on
// any in-flight work.
func (s *Session) Eval(ctx context.Context, phi *mso.Formula, xVar string, opts core.Options) (res *core.Result, err error) {
	defer stage.RecoverTo(stage.Compile, &err)
	trace := &stage.Trace{}
	art, err := s.ensure(ctx, trace)
	if err != nil {
		return nil, err
	}
	if opts.RequestedWidth != nil && *opts.RequestedWidth != art.width {
		return nil, fmt.Errorf("session: decomposition width %d does not match requested width %d", art.width, *opts.RequestedWidth)
	}
	opts.Width = art.width
	if opts.BackendName() != core.DefaultBackend {
		// Alternate backends evaluate lazily on the cached nice
		// decomposition: no datalog compilation, no program cache.
		return s.evalBackend(ctx, phi, xVar, opts, trace)
	}
	if err := faultinject.Check("session.compile"); err != nil {
		return nil, stage.Wrap(stage.Compile, err)
	}
	start := timeNow()
	compiled, hit, err := s.progs.Get(ctx, s.st.Sig(), phi, xVar, opts)
	if err != nil {
		return nil, stage.Wrap(stage.Compile, err)
	}
	trace.Record(stage.Compile, timeNow().Sub(start), len(compiled.Program.Rules), hit)
	key := keyFor(s.st.Sig(), phi, xVar, opts)
	s.mu.Lock()
	s.stats.Compiles++
	if hit {
		s.stats.CompileCacheHits++
	}
	s.mu.Unlock()

	for {
		s.mu.Lock()
		// Evaluation is deterministic, so a repeat of the same query on
		// the unchanged structure is answered from the result cache
		// (ensure has already revalidated the fingerprint).
		if entry, ok := s.results[key]; ok {
			s.stats.ResultCacheHits++
			s.mu.Unlock()
			trace.Record(stage.Eval, 0, entry.evalSize, true)
			return cachedResult(entry.res, trace), nil
		}
		if f := s.evalFlights[key]; f != nil {
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, stage.Wrap(stage.Eval, ctx.Err())
			}
			if f.err == nil {
				s.mu.Lock()
				s.stats.ResultCacheHits++
				s.mu.Unlock()
				trace.Record(stage.Eval, 0, f.evalSize, true)
				return cachedResult(f.res, trace), nil
			}
			if ctx.Err() != nil {
				return nil, stage.Wrap(stage.Eval, ctx.Err())
			}
			continue
		}
		if s.evalFlights == nil {
			s.evalFlights = map[progKey]*evalFlight{}
		}
		f := &evalFlight{done: make(chan struct{})}
		s.evalFlights[key] = f
		fp := s.fp
		s.mu.Unlock()

		s.stMu.RLock()
		res, out, err := s.runEval(ctx, compiled, art, opts, trace)
		s.stMu.RUnlock()
		var evalSize int
		if out != nil {
			evalSize = out.NumFacts()
		}

		s.mu.Lock()
		delete(s.evalFlights, key)
		if err == nil {
			s.stats.Evals++
			s.bumpBackendLocked(core.DefaultBackend)
			if Fingerprint(s.st) == fp {
				s.storeResultLocked(key, &resultEntry{res: res, evalSize: evalSize, compiled: compiled, opts: opts, out: out})
			}
		}
		s.mu.Unlock()
		f.res, f.evalSize, f.err = res, evalSize, err
		close(f.done)
		if err != nil {
			return nil, err
		}
		return cachedResult(res, trace), nil
	}
}

// bumpBackendLocked increments the per-backend eval counter under s.mu.
func (s *Session) bumpBackendLocked(name string) {
	if s.stats.EvalsByBackend == nil {
		s.stats.EvalsByBackend = map[string]int{}
	}
	s.stats.EvalsByBackend[name]++
}

// evalBackend is Eval's path for non-default backends: it resolves the
// named backend, feeds it the session's cached nice decomposition, and
// mirrors the default path's result cache and single-flight discipline.
// Result-cache keys include the backend name (see keyFor), so the same
// formula evaluated under different backends occupies distinct entries
// and a backend switch can never serve another backend's result.
func (s *Session) evalBackend(ctx context.Context, phi *mso.Formula, xVar string, opts core.Options, trace *stage.Trace) (*core.Result, error) {
	b, err := core.BackendByName(opts.BackendName())
	if err != nil {
		return nil, stage.Wrap(stage.Compile, err)
	}
	nb, ok := b.(core.NiceBackend)
	if !ok {
		return nil, stage.Wrap(stage.Compile, fmt.Errorf("session: backend %q cannot evaluate on cached session artifacts", b.Name()))
	}
	nice, err := s.NiceForm(ctx)
	if err != nil {
		return nil, err
	}
	key := keyFor(s.st.Sig(), phi, xVar, opts)
	for {
		s.mu.Lock()
		if entry, ok := s.results[key]; ok {
			s.stats.ResultCacheHits++
			s.mu.Unlock()
			trace.Record(stage.Eval, 0, entry.evalSize, true)
			return cachedResult(entry.res, trace), nil
		}
		if f := s.evalFlights[key]; f != nil {
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, stage.Wrap(stage.Eval, ctx.Err())
			}
			if f.err == nil {
				s.mu.Lock()
				s.stats.ResultCacheHits++
				s.mu.Unlock()
				trace.Record(stage.Eval, 0, f.evalSize, true)
				return cachedResult(f.res, trace), nil
			}
			if ctx.Err() != nil {
				return nil, stage.Wrap(stage.Eval, ctx.Err())
			}
			continue
		}
		if s.evalFlights == nil {
			s.evalFlights = map[progKey]*evalFlight{}
		}
		f := &evalFlight{done: make(chan struct{})}
		s.evalFlights[key] = f
		fp := s.fp
		s.mu.Unlock()

		s.stMu.RLock()
		res, err := s.runEvalBackend(ctx, nb, nice, phi, xVar, opts, trace)
		s.stMu.RUnlock()
		evalSize := 0
		if res != nil && res.Selected != nil {
			evalSize = res.Selected.Len()
		}

		s.mu.Lock()
		delete(s.evalFlights, key)
		if err == nil {
			s.stats.Evals++
			s.bumpBackendLocked(nb.Name())
			if Fingerprint(s.st) == fp {
				// compiled and out stay nil: there is no datalog program
				// or fixpoint to maintain, so Mutate drops the entry
				// instead of patching it.
				s.storeResultLocked(key, &resultEntry{res: res, evalSize: evalSize, opts: opts})
			}
		}
		s.mu.Unlock()
		f.res, f.evalSize, f.err = res, evalSize, err
		close(f.done)
		if err != nil {
			return nil, err
		}
		return cachedResult(res, trace), nil
	}
}

// runEvalBackend performs one uncached alternate-backend evaluation
// outside the session mutex, under the structure read lock.
func (s *Session) runEvalBackend(ctx context.Context, nb core.NiceBackend, nice *tree.Decomposition, phi *mso.Formula, xVar string, opts core.Options, trace *stage.Trace) (res *core.Result, err error) {
	defer stage.RecoverTo(stage.Eval, &err)
	if testHookEvalStart != nil {
		testHookEvalStart()
	}
	if err := faultinject.Check("session.eval"); err != nil {
		return nil, stage.Wrap(stage.Eval, err)
	}
	return nb.EvalNiceCtx(ctx, s.st, nice, phi, xVar, opts, trace)
}

// storeResultLocked inserts a result entry under s.mu, evicting FIFO
// beyond resultCap. A duplicate key keeps the existing entry
// (evaluation is deterministic, so the values agree).
func (s *Session) storeResultLocked(key progKey, entry *resultEntry) {
	if s.results == nil {
		s.results = map[progKey]*resultEntry{}
	}
	if _, dup := s.results[key]; dup {
		return
	}
	if len(s.resultSeq) >= resultCap {
		delete(s.results, s.resultSeq[0])
		s.resultSeq = s.resultSeq[1:]
	}
	s.results[key] = entry
	s.resultSeq = append(s.resultSeq, key)
	if entry.out == nil {
		return
	}
	// Only the deltaCap most recent entries keep their fixpoint; evicted
	// keys may linger in dbSeq after a results eviction, hence the
	// existence check.
	for len(s.dbSeq) >= deltaCap {
		if old, ok := s.results[s.dbSeq[0]]; ok {
			old.out = nil
		}
		s.dbSeq = s.dbSeq[1:]
	}
	s.dbSeq = append(s.dbSeq, key)
}

// runEval performs the uncached evaluation stage outside the session
// mutex. A panic is recovered into a stage-tagged error here so the
// caller's flight bookkeeping always runs.
func (s *Session) runEval(ctx context.Context, compiled *core.Compiled, art artifacts, opts core.Options, trace *stage.Trace) (res *core.Result, out *datalog.DB, err error) {
	defer stage.RecoverTo(stage.Eval, &err)
	if testHookEvalStart != nil {
		testHookEvalStart()
	}
	if err := faultinject.Check("session.eval"); err != nil {
		return nil, nil, stage.Wrap(stage.Eval, err)
	}
	// Both paths intern program constants into the EDB, so the cached
	// EDB is cloned per evaluation (DB.Clone is a flat copy). The
	// session's engine collector rides the context so the streaming
	// engine's traffic lands in this session's stats.
	ctx = datalog.WithStatsCollector(ctx, &s.engine)
	start := timeNow()
	if CurrentEvalPath() == EvalDirect {
		out, err = datalog.EvalCtx(ctx, compiled.Program, art.edb.Clone())
	} else {
		out, err = datalog.EvalQuasiGuardedCtx(ctx, compiled.Program, art.edb.Clone(), datalog.TDFuncDeps(art.width))
	}
	if err != nil {
		return nil, nil, stage.Wrap(stage.Eval, err)
	}
	trace.Record(stage.Eval, timeNow().Sub(start), out.NumFacts(), false)
	res, err = core.FinishResult(s.st, compiled, opts, out, art.tdNodes, art.width, trace)
	if err != nil {
		return nil, nil, err
	}
	return res, out, nil
}

// cachedResult returns a caller-owned view of a cached Result: the
// shared Selected set is cloned so callers cannot corrupt the cache,
// and the trace is this call's trace.
func cachedResult(res *core.Result, trace *stage.Trace) *core.Result {
	cp := *res
	if cp.Selected != nil {
		cp.Selected = cp.Selected.Clone()
	}
	cp.Trace = trace
	return &cp
}

// Package session provides the staged solver pipeline of Corollary 4.6
// as a reusable, cancellable, instrumented service. A Session binds one
// structure and memoizes the per-structure artifacts — tree
// decomposition, tuple normal form (Def. 2.3), nice normal form, τ_td
// structure (Section 4) and its datalog EDB — keyed by a content
// fingerprint, while compiled MSO programs are cached per (formula,
// width, options) in a ProgramCache shared across sessions. Evaluating
// k queries over one structure therefore pays for decomposition,
// normalization and τ_td construction once, and one query over k
// structures compiles once. Evaluation is deterministic, so each
// session additionally memoizes query results per (formula, options):
// repeating a query on an unchanged structure is a pure cache hit,
// invalidated by the same fingerprint mechanism as the artifacts.
//
// Every stage accepts a context.Context; cancellation and deadline
// errors come back wrapped in a *stage.Error (aliased here as
// StageError) naming the stage that observed them, and each evaluation
// carries a stage.Trace of per-stage wall time, output size and cache
// hits.
package session

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/decompose"
	"repro/internal/faultinject"
	"repro/internal/mso"
	"repro/internal/stage"
	"repro/internal/structure"
	"repro/internal/tree"
)

// StageError is the stage-tagged error taxonomy of the pipeline; see
// stage.Error. Use errors.As to recover it and errors.Is to test for
// context.Canceled / context.DeadlineExceeded underneath.
type StageError = stage.Error

// Trace records per-stage wall time, output size and cache hits for
// one evaluation; see stage.Trace.
type Trace = stage.Trace

// Stats counts the expensive operations a session has performed. The
// cache guarantees are expressed in these counters: evaluating any
// number of queries over an unchanged structure keeps Decompositions,
// TupleNormalizations and TDBuilds at 1.
type Stats struct {
	// Decompositions counts min-fill tree decompositions computed.
	Decompositions int
	// TupleNormalizations counts tuple-normal-form constructions.
	TupleNormalizations int
	// NiceNormalizations counts nice-normal-form constructions.
	NiceNormalizations int
	// TDBuilds counts τ_td structure constructions (incl. EDB load).
	TDBuilds int
	// Compiles counts MSO compilations this session triggered;
	// CompileCacheHits counts the ones served from the program cache.
	Compiles, CompileCacheHits int
	// Evals counts datalog evaluations (one per Eval call that reached
	// the evaluation stage); ResultCacheHits counts Eval calls answered
	// from the per-session result cache instead.
	Evals, ResultCacheHits int
	// SolverSolves counts semiring-solver runs performed by the Solve*
	// helpers; SolverCacheHits counts the Solve* calls answered from the
	// per-session solver cache instead.
	SolverSolves, SolverCacheHits int
	// Invalidations counts fingerprint mismatches that discarded the
	// cached artifacts.
	Invalidations int
}

// Session binds a structure and caches its pipeline artifacts. All
// methods are safe for concurrent use; artifact construction is
// serialized per session, evaluation runs outside the lock.
type Session struct {
	st    *structure.Structure
	progs *ProgramCache

	mu    sync.Mutex
	fp    uint64
	valid bool
	stats Stats

	raw     *tree.Decomposition  // ladder decomposition of st
	rung    string               // degradation-ladder rung that produced raw
	tuple   *tree.Decomposition  // tuple normal form
	nice    *tree.Decomposition  // nice normal form (built on demand)
	width   int                  // normalized width
	td      *structure.Structure // τ_td structure
	edb     *datalog.DB          // EDB of td (cloned per evaluation)
	tdNodes int

	// results memoizes evaluated queries per program key; evaluation is
	// deterministic, so an unchanged structure makes a repeat of the
	// same (formula, options) a pure cache hit. Bounded FIFO.
	results   map[progKey]*resultEntry
	resultSeq []progKey

	// solverResults memoizes semiring-solver outcomes per (problem name,
	// mode); see SolveDecide / SolveCount / SolveOptimize. Invalidated
	// with the other artifacts on fingerprint change. Bounded FIFO.
	solverResults map[solverKey]any
	solverSeq     []solverKey
}

// resultCap bounds the per-session result cache.
const resultCap = 256

type resultEntry struct {
	res      *core.Result
	evalSize int // NumFacts of the evaluation output, for trace replay
}

// New creates a session bound to st, using the shared default program
// cache.
func New(st *structure.Structure) *Session {
	return NewWithCache(st, defaultProgramCache)
}

// NewWithCache creates a session with a caller-provided program cache
// (useful to isolate cache statistics in tests).
func NewWithCache(st *structure.Structure, pc *ProgramCache) *Session {
	if pc == nil {
		pc = defaultProgramCache
	}
	return &Session{st: st, progs: pc}
}

// Structure returns the bound structure.
func (s *Session) Structure() *structure.Structure { return s.st }

// Stats returns a snapshot of the session's operation counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ProgramCacheStats reports the hit/miss counters of the session's
// program cache (shared across sessions unless NewWithCache was used).
func (s *Session) ProgramCacheStats() (hits, misses int) { return s.progs.Stats() }

// Invalidate drops all cached artifacts; the next evaluation rebuilds
// them. Called automatically when the structure's fingerprint changes.
func (s *Session) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalidateLocked()
}

func (s *Session) invalidateLocked() {
	s.valid = false
	s.raw, s.tuple, s.nice, s.td, s.edb = nil, nil, nil, nil, nil
	s.rung = ""
	s.tdNodes, s.width = 0, 0
	s.results, s.resultSeq = nil, nil
	s.solverResults, s.solverSeq = nil, nil
}

// revalidateLocked discards the cached artifacts if the structure's
// fingerprint changed since they were built. It deliberately does NOT
// gate on s.valid: after a failed run (valid never set) the session may
// still hold artifacts from the stages that succeeded, and a structure
// mutation in between must not let them leak into the next run.
func (s *Session) revalidateLocked() {
	fp := Fingerprint(s.st)
	hasArtifacts := s.raw != nil || s.tuple != nil || s.nice != nil || s.td != nil || s.results != nil || s.solverResults != nil
	if fp != s.fp && hasArtifacts {
		s.invalidateLocked()
		s.stats.Invalidations++
	}
	s.fp = fp
}

// artifacts holds the per-structure products of the pipeline front end.
type artifacts struct {
	raw     *tree.Decomposition
	tuple   *tree.Decomposition
	width   int
	td      *structure.Structure
	edb     *datalog.DB
	tdNodes int
}

// ensure builds (or revalidates) the cached decomposition, tuple form,
// τ_td structure and EDB, recording stage stats into trace. Cached
// stages are recorded with CacheHit set and zero wall time. Each stage
// stores its artifact only on success, so a failed ensure leaves the
// caches holding exactly the artifacts of the stages that completed —
// a retry resumes after them, and revalidateLocked discards them if
// the structure changed in between. A stage panic is recovered into a
// stage-tagged error; no partial artifact is stored.
func (s *Session) ensure(ctx context.Context, trace *stage.Trace) (art artifacts, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := stage.Decompose
	defer stage.RecoverAt(&cur, &err)
	s.revalidateLocked()
	if s.raw == nil {
		if err := faultinject.Check("session.decompose"); err != nil {
			return artifacts{}, stage.Wrap(stage.Decompose, err)
		}
		start := timeNow()
		d, rung, err := decompose.StructureLadderCtx(ctx, s.st)
		if err != nil {
			return artifacts{}, stage.Wrap(stage.Decompose, err)
		}
		s.raw = d
		s.rung = rung
		s.stats.Decompositions++
		trace.RecordDetail(stage.Decompose, timeNow().Sub(start), d.Len(), false, rung)
	} else {
		trace.RecordDetail(stage.Decompose, 0, s.raw.Len(), true, s.rung)
	}
	cur = stage.NormalizeTuple
	if s.tuple == nil {
		if err := faultinject.Check("session.normalize-tuple"); err != nil {
			return artifacts{}, stage.Wrap(stage.NormalizeTuple, err)
		}
		if err := s.raw.Validate(s.st); err != nil {
			return artifacts{}, fmt.Errorf("session: invalid decomposition: %w", err)
		}
		start := timeNow()
		norm, err := tree.NormalizeTupleCtx(ctx, s.raw)
		if err != nil {
			return artifacts{}, stage.Wrap(stage.NormalizeTuple, err)
		}
		s.tuple = norm
		s.width = norm.Width()
		s.stats.TupleNormalizations++
		trace.Record(stage.NormalizeTuple, timeNow().Sub(start), norm.Len(), false)
	} else {
		trace.Record(stage.NormalizeTuple, 0, s.tuple.Len(), true)
	}
	cur = stage.BuildTD
	if s.td == nil {
		if err := faultinject.Check("session.build-td"); err != nil {
			return artifacts{}, stage.Wrap(stage.BuildTD, err)
		}
		start := timeNow()
		td, _, err := tree.BuildTDCtx(ctx, s.st, s.tuple, s.width)
		if err != nil {
			return artifacts{}, stage.Wrap(stage.BuildTD, err)
		}
		s.td = td
		s.edb = datalog.FromStructure(td, "")
		s.tdNodes = s.tuple.Len()
		s.stats.TDBuilds++
		trace.Record(stage.BuildTD, timeNow().Sub(start), td.Size(), false)
	} else {
		trace.Record(stage.BuildTD, 0, s.td.Size(), true)
	}
	s.valid = true
	return artifacts{raw: s.raw, tuple: s.tuple, width: s.width, td: s.td, edb: s.edb, tdNodes: s.tdNodes}, nil
}

// Warm builds (or revalidates) every front-end artifact and returns the
// stage trace of doing so — cached stages appear with CacheHit set.
// CLIs use it to surface per-stage timings without running a query.
func (s *Session) Warm(ctx context.Context) (*Trace, error) {
	trace := &stage.Trace{}
	if _, err := s.ensure(ctx, trace); err != nil {
		return trace, err
	}
	return trace, nil
}

// Decomposition returns the session's cached raw tree decomposition
// (computed on first use by the degradation ladder; see
// decompose.GraphLadderCtx).
func (s *Session) Decomposition(ctx context.Context) (d *tree.Decomposition, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer stage.RecoverTo(stage.Decompose, &err)
	s.revalidateLocked()
	if s.raw == nil {
		if err := faultinject.Check("session.decompose"); err != nil {
			return nil, stage.Wrap(stage.Decompose, err)
		}
		d, rung, err := decompose.StructureLadderCtx(ctx, s.st)
		if err != nil {
			return nil, stage.Wrap(stage.Decompose, err)
		}
		s.raw = d
		s.rung = rung
		s.stats.Decompositions++
	}
	s.valid = true
	return s.raw, nil
}

// TupleForm returns the cached tuple normal form (Def. 2.3) and its
// width, normalizing on first use.
func (s *Session) TupleForm(ctx context.Context) (*tree.Decomposition, int, error) {
	trace := &stage.Trace{}
	art, err := s.ensure(ctx, trace)
	if err != nil {
		return nil, 0, err
	}
	return art.tuple, art.width, nil
}

// NiceForm returns the cached nice normal form (Section 5), normalizing
// the raw decomposition on first use.
func (s *Session) NiceForm(ctx context.Context) (*tree.Decomposition, error) {
	if _, err := s.Decomposition(ctx); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nice == nil {
		nice, err := tree.NormalizeNiceCtx(ctx, s.raw, tree.NiceOptions{})
		if err != nil {
			return nil, err
		}
		s.nice = nice
		s.stats.NiceNormalizations++
	}
	return s.nice, nil
}

// TauTD returns the cached τ_td structure of Section 4.
func (s *Session) TauTD(ctx context.Context) (*structure.Structure, error) {
	trace := &stage.Trace{}
	art, err := s.ensure(ctx, trace)
	if err != nil {
		return nil, err
	}
	return art.td, nil
}

// Width returns the normalized decomposition width.
func (s *Session) Width(ctx context.Context) (int, error) {
	_, w, err := s.TupleForm(ctx)
	return w, err
}

// Eval runs the MSO query phi (free element variable xVar, or a
// sentence when opts.Decision is set) over the session's structure:
// cached artifacts feed a (possibly cached) compiled program, and only
// the quasi-guarded evaluation of Theorem 4.4 runs per call. The
// Result's Trace shows which stages were served from cache.
func (s *Session) Eval(ctx context.Context, phi *mso.Formula, xVar string, opts core.Options) (res *core.Result, err error) {
	cur := stage.Compile
	defer stage.RecoverAt(&cur, &err)
	trace := &stage.Trace{}
	art, err := s.ensure(ctx, trace)
	if err != nil {
		return nil, err
	}
	if opts.RequestedWidth != nil && *opts.RequestedWidth != art.width {
		return nil, fmt.Errorf("session: decomposition width %d does not match requested width %d", art.width, *opts.RequestedWidth)
	}
	opts.Width = art.width
	if err := faultinject.Check("session.compile"); err != nil {
		return nil, stage.Wrap(stage.Compile, err)
	}
	start := timeNow()
	compiled, hit, err := s.progs.Get(ctx, s.st.Sig(), phi, xVar, opts)
	if err != nil {
		return nil, stage.Wrap(stage.Compile, err)
	}
	trace.Record(stage.Compile, timeNow().Sub(start), len(compiled.Program.Rules), hit)
	key := keyFor(s.st.Sig(), phi, xVar, opts)
	s.mu.Lock()
	s.stats.Compiles++
	if hit {
		s.stats.CompileCacheHits++
	}
	// Evaluation is deterministic, so a repeat of the same query on the
	// unchanged structure is answered from the result cache (ensure has
	// already revalidated the fingerprint under this same lock).
	if entry, ok := s.results[key]; ok {
		s.stats.ResultCacheHits++
		s.mu.Unlock()
		trace.Record(stage.Eval, 0, entry.evalSize, true)
		return cachedResult(entry.res, trace), nil
	}
	s.mu.Unlock()
	cur = stage.Eval
	if err := faultinject.Check("session.eval"); err != nil {
		return nil, stage.Wrap(stage.Eval, err)
	}
	// Grounding interns program constants into the EDB, so the cached
	// EDB is cloned per evaluation (DB.Clone is a flat copy).
	start = timeNow()
	out, err := datalog.EvalQuasiGuardedCtx(ctx, compiled.Program, art.edb.Clone(), datalog.TDFuncDeps(art.width))
	if err != nil {
		return nil, stage.Wrap(stage.Eval, err)
	}
	trace.Record(stage.Eval, timeNow().Sub(start), out.NumFacts(), false)
	res, err = core.FinishResult(s.st, compiled, opts, out, art.tdNodes, art.width, trace)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.stats.Evals++
	if s.results == nil {
		s.results = map[progKey]*resultEntry{}
	}
	if _, dup := s.results[key]; !dup {
		if len(s.resultSeq) >= resultCap {
			delete(s.results, s.resultSeq[0])
			s.resultSeq = s.resultSeq[1:]
		}
		s.results[key] = &resultEntry{res: res, evalSize: out.NumFacts()}
		s.resultSeq = append(s.resultSeq, key)
	}
	s.mu.Unlock()
	return cachedResult(res, trace), nil
}

// cachedResult returns a caller-owned view of a cached Result: the
// shared Selected set is cloned so callers cannot corrupt the cache,
// and the trace is this call's trace.
func cachedResult(res *core.Result, trace *stage.Trace) *core.Result {
	cp := *res
	if cp.Selected != nil {
		cp.Selected = cp.Selected.Clone()
	}
	cp.Trace = trace
	return &cp
}

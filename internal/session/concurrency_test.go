package session

// Regression tests for the session-layer concurrency contract: the
// mutex is held for cache lookups/inserts only, warm cache hits
// complete while cold work is in flight on the same session, and
// concurrent requests for the same key share one in-flight
// computation. All of these run under -race in CI.

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mso"
)

// TestWarmHitDuringColdEval pins the single-flight fix: a warm
// result-cache hit completes while a slow cold evaluation on the same
// session is still running, instead of serializing behind it.
func TestWarmHitDuringColdEval(t *testing.T) {
	st := randColored(rand.New(rand.NewSource(71)), 6)
	s := NewWithCache(st, NewProgramCache())
	ctx := context.Background()
	warmQ := mso.MustParse("c(x)")
	coldQ := mso.MustParse("~c(x)")

	// Pre-warm: artifacts built, warmQ's result cached.
	if _, err := s.Eval(ctx, warmQ, "x", core.Options{}); err != nil {
		t.Fatal(err)
	}

	// Hold the next uncached evaluation open.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	testHookEvalStart = func() {
		once.Do(func() { close(started) })
		<-release
	}
	defer func() { testHookEvalStart = nil }()

	coldDone := make(chan error, 1)
	go func() {
		_, err := s.Eval(ctx, coldQ, "x", core.Options{})
		coldDone <- err
	}()
	<-started

	// The cold evaluation is in flight and blocked. A warm hit must
	// complete anyway — bounded only by a generous watchdog so a
	// regression fails fast instead of hanging the suite.
	warmDone := make(chan error, 1)
	go func() {
		res, err := s.Eval(ctx, warmQ, "x", core.Options{})
		if err == nil && res == nil {
			t.Error("warm hit returned nil result")
		}
		warmDone <- err
	}()
	select {
	case err := <-warmDone:
		if err != nil {
			t.Fatalf("warm hit failed during cold eval: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("warm cache hit blocked behind an in-flight cold evaluation")
	}

	close(release)
	if err := <-coldDone; err != nil {
		t.Fatalf("cold eval failed: %v", err)
	}
	stats := s.Stats()
	if stats.Evals != 2 {
		t.Errorf("Evals = %d, want 2", stats.Evals)
	}
	if stats.ResultCacheHits != 1 {
		t.Errorf("ResultCacheHits = %d, want 1", stats.ResultCacheHits)
	}
}

// TestConcurrentSameKeyEvalShares pins per-key single-flight: many
// concurrent Eval calls for one formula perform exactly one evaluation
// and agree on the answer.
func TestConcurrentSameKeyEvalShares(t *testing.T) {
	st := randColored(rand.New(rand.NewSource(72)), 6)
	s := NewWithCache(st, NewProgramCache())
	phi := mso.MustParse("c(x) | ~c(x)")
	const n = 8
	var wg sync.WaitGroup
	results := make([]*core.Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Eval(context.Background(), phi, "x", core.Options{})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("eval %d: %v", i, errs[i])
		}
		if !results[i].Selected.Equal(results[0].Selected) {
			t.Fatalf("eval %d disagrees: %v vs %v", i, results[i].Selected.Elems(), results[0].Selected.Elems())
		}
	}
	stats := s.Stats()
	if stats.Evals != 1 {
		t.Errorf("Evals = %d, want 1 (concurrent same-key calls must share)", stats.Evals)
	}
	if stats.ResultCacheHits != n-1 {
		t.Errorf("ResultCacheHits = %d, want %d", stats.ResultCacheHits, n-1)
	}
	if stats.Decompositions != 1 {
		t.Errorf("Decompositions = %d, want 1", stats.Decompositions)
	}
}

// TestConcurrentDistinctQueriesOneBuild pins artifact single-flight:
// ten distinct queries arriving at once on a cold session build the
// front end exactly once.
func TestConcurrentDistinctQueriesOneBuild(t *testing.T) {
	st := randColored(rand.New(rand.NewSource(73)), 6)
	s := NewWithCache(st, NewProgramCache())
	var wg sync.WaitGroup
	errs := make([]error, len(tenQueries))
	for i, q := range tenQueries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			_, errs[i] = s.Eval(context.Background(), mso.MustParse(q), "x", core.Options{})
		}(i, q)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	stats := s.Stats()
	if stats.Decompositions != 1 || stats.TupleNormalizations != 1 || stats.TDBuilds != 1 {
		t.Errorf("front-end builds = %d/%d/%d, want 1/1/1",
			stats.Decompositions, stats.TupleNormalizations, stats.TDBuilds)
	}
	if stats.Evals != len(tenQueries) {
		t.Errorf("Evals = %d, want %d", stats.Evals, len(tenQueries))
	}
}

// TestProgramCacheSingleFlight pins that concurrent Get calls for one
// key compile exactly once without serializing other keys behind the
// compilation (the compile runs outside the cache lock).
func TestProgramCacheSingleFlight(t *testing.T) {
	st := randColored(rand.New(rand.NewSource(74)), 5)
	pc := NewProgramCache()
	phi := mso.MustParse("c(x)")
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = pc.Get(context.Background(), st.Sig(), phi, "x", core.Options{MaxWitnessDomain: 12, MaxTypes: 2000, MaxEDBSubsets: 65536})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	hits, misses := pc.Stats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (shared in-flight compile)", misses)
	}
	if hits != n-1 {
		t.Errorf("hits = %d, want %d", hits, n-1)
	}
}

// TestProgramCacheFloodBounded pins the eviction fix: flooding the
// shared program cache with 10k distinct keys never grows it past its
// FIFO cap (before this fix the map was unbounded).
func TestProgramCacheFloodBounded(t *testing.T) {
	pc := NewProgramCacheSize(64)
	for i := 0; i < 10000; i++ {
		pc.mu.Lock()
		pc.put(progKey{formula: "f", width: i}, &core.Compiled{})
		pc.mu.Unlock()
	}
	if got := pc.Len(); got > 64 {
		t.Fatalf("cache holds %d entries after 10k inserts, cap is 64", got)
	}
	pc.mu.Lock()
	orderLen := len(pc.order)
	pc.mu.Unlock()
	if orderLen != pc.Len() {
		t.Fatalf("order length %d != map length %d (leak)", orderLen, pc.Len())
	}
	// An evicted key is recompiled, not lost: Get still works end to end.
	st := randColored(rand.New(rand.NewSource(75)), 4)
	if _, _, err := pc.Get(context.Background(), st.Sig(), mso.MustParse("c(x)"), "x", core.Options{}); err != nil {
		t.Fatalf("get after flood: %v", err)
	}
}

// TestSessionResultCacheBounded pins the per-session result FIFO cap
// against a flood of distinct keys through the insert path.
func TestSessionResultCacheBounded(t *testing.T) {
	st := randColored(rand.New(rand.NewSource(76)), 4)
	s := NewWithCache(st, NewProgramCache())
	s.mu.Lock()
	for i := 0; i < 10000; i++ {
		s.storeResultLocked(progKey{formula: "f", width: i}, &resultEntry{})
	}
	n, seq := len(s.results), len(s.resultSeq)
	s.mu.Unlock()
	if n > resultCap || seq > resultCap {
		t.Fatalf("result cache holds %d entries (seq %d) after 10k inserts, cap is %d", n, seq, resultCap)
	}
}

// TestConcurrentSolveShares pins solver single-flight: concurrent
// SolveCount calls for one problem run one solve.
func TestConcurrentSolveShares(t *testing.T) {
	st := randColored(rand.New(rand.NewSource(77)), 7)
	s := NewWithCache(st, NewProgramCache())
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = SolveCount(context.Background(), s, freeSelect{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	stats := s.Stats()
	if stats.SolverSolves != 1 {
		t.Errorf("SolverSolves = %d, want 1", stats.SolverSolves)
	}
	if stats.SolverCacheHits != n-1 {
		t.Errorf("SolverCacheHits = %d, want %d", stats.SolverCacheHits, n-1)
	}
}

package session

// Session memoization for the generic semiring solver: SolveDecide,
// SolveCount and SolveOptimize evaluate a solver.Problem over the
// session's nice decomposition and cache the outcome per (structure
// fingerprint, problem name, mode). Evaluation is deterministic, so a
// repeat of the same problem and mode on an unchanged structure is a
// pure cache hit; the cache is invalidated by the same fingerprint
// mechanism as the pipeline artifacts. These are package functions
// rather than methods because Go methods cannot introduce type
// parameters.

import (
	"context"
	"math/big"

	"repro/internal/faultinject"
	"repro/internal/solver"
	"repro/internal/stage"
)

// solverKey identifies a memoized solver outcome. The structure
// fingerprint is not part of the key: a fingerprint change empties the
// whole cache (invalidateLocked), so surviving entries are always for
// the current structure.
type solverKey struct {
	problem string
	mode    solver.Mode
}

// solverCap bounds the per-session solver cache.
const solverCap = 64

// solverLookup revalidates the fingerprint and returns the cached
// outcome for k, counting a hit.
func (s *Session) solverLookup(k solverKey) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revalidateLocked()
	v, ok := s.solverResults[k]
	if ok {
		s.stats.SolverCacheHits++
	}
	return v, ok
}

// solverStore records a successful solve. The outcome is stored only
// if the structure's fingerprint is unchanged since the lookup that
// missed — a mutation mid-solve must not poison the cache with tables
// for a structure that no longer exists.
func (s *Session) solverStore(k solverKey, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.SolverSolves++
	if Fingerprint(s.st) != s.fp {
		return
	}
	if s.solverResults == nil {
		s.solverResults = map[solverKey]any{}
	}
	if _, dup := s.solverResults[k]; !dup {
		if len(s.solverSeq) >= solverCap {
			delete(s.solverResults, s.solverSeq[0])
			s.solverSeq = s.solverSeq[1:]
		}
		s.solverSeq = append(s.solverSeq, k)
	}
	s.solverResults[k] = v
}

// SolveDecide reports whether p has a solution over the session's nice
// decomposition, memoized per (structure fingerprint, problem, mode).
func SolveDecide[S comparable](ctx context.Context, s *Session, p solver.Problem[S]) (bool, error) {
	k := solverKey{problem: p.Name(), mode: solver.ModeDecide}
	if v, ok := s.solverLookup(k); ok {
		if b, ok := v.(bool); ok {
			return b, nil
		}
	}
	if err := faultinject.Check("session.solver"); err != nil {
		return false, stage.Wrap(stage.Solver, err)
	}
	nice, err := s.NiceForm(ctx)
	if err != nil {
		return false, err
	}
	ok, err := solver.Decide(ctx, nice, p)
	if err != nil {
		return false, err
	}
	s.solverStore(k, ok)
	return ok, nil
}

// SolveCount returns p's exact solution count over the session's nice
// decomposition, memoized per (structure fingerprint, problem, mode).
// The returned big.Int is caller-owned.
func SolveCount[S comparable](ctx context.Context, s *Session, p solver.Problem[S]) (*big.Int, error) {
	k := solverKey{problem: p.Name(), mode: solver.ModeCount}
	if v, ok := s.solverLookup(k); ok {
		if n, ok := v.(*big.Int); ok {
			return new(big.Int).Set(n), nil
		}
	}
	if err := faultinject.Check("session.solver"); err != nil {
		return nil, stage.Wrap(stage.Solver, err)
	}
	nice, err := s.NiceForm(ctx)
	if err != nil {
		return nil, err
	}
	n, err := solver.Count(ctx, nice, p)
	if err != nil {
		return nil, err
	}
	s.solverStore(k, n)
	return new(big.Int).Set(n), nil
}

// SolveOptimize returns p's minimum-cost derivation over the session's
// nice decomposition (nil if infeasible), memoized per (structure
// fingerprint, problem, mode). The cached derivation is immutable
// (Walk only reads), so hits share it.
func SolveOptimize[S comparable](ctx context.Context, s *Session, p solver.Problem[S]) (*solver.Derivation[S, int], error) {
	k := solverKey{problem: p.Name(), mode: solver.ModeOptimize}
	if v, ok := s.solverLookup(k); ok {
		if der, ok := v.(*solver.Derivation[S, int]); ok {
			return der, nil
		}
	}
	if err := faultinject.Check("session.solver"); err != nil {
		return nil, stage.Wrap(stage.Solver, err)
	}
	nice, err := s.NiceForm(ctx)
	if err != nil {
		return nil, err
	}
	der, err := solver.Optimize(ctx, nice, p)
	if err != nil {
		return nil, err
	}
	s.solverStore(k, der)
	return der, nil
}

package session

// Session memoization for the generic semiring solver: SolveDecide,
// SolveCount and SolveOptimize evaluate a solver.Problem over the
// session's nice decomposition and cache the outcome per (structure
// fingerprint, problem name, mode). Evaluation is deterministic, so a
// repeat of the same problem and mode on an unchanged structure is a
// pure cache hit; the cache is invalidated by the same fingerprint
// mechanism as the pipeline artifacts. Concurrent Solve* calls for the
// same (problem, mode) share one in-flight solve, and calls answerable
// from the cache complete without waiting on in-flight work. These are
// package functions rather than methods because Go methods cannot
// introduce type parameters.

import (
	"context"
	"math/big"

	"repro/internal/faultinject"
	"repro/internal/solver"
	"repro/internal/stage"
)

// solverKey identifies a memoized solver outcome. The structure
// fingerprint is not part of the key: a fingerprint change empties the
// whole cache (invalidateLocked), so surviving entries are always for
// the current structure.
type solverKey struct {
	problem string
	mode    solver.Mode
}

// solverCap bounds the per-session solver cache.
const solverCap = 64

// solveShared answers k from the solver cache, or runs compute under
// per-key single-flight: the mutex is held only for lookup and insert,
// concurrent calls for the same key share one computation, and a
// successful outcome is stored unless the structure mutated mid-solve
// (which must not poison the cache with tables for a structure that no
// longer exists). If an in-flight leader fails, waiters with live
// contexts retry instead of inheriting the error.
func (s *Session) solveShared(ctx context.Context, k solverKey, compute func() (any, error)) (any, error) {
	for {
		s.mu.Lock()
		s.revalidateLocked()
		if v, ok := s.solverResults[k]; ok {
			s.stats.SolverCacheHits++
			s.mu.Unlock()
			return v, nil
		}
		if f := s.solverFlights[k]; f != nil {
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, stage.Wrap(stage.Solver, ctx.Err())
			}
			if f.err == nil {
				s.mu.Lock()
				s.stats.SolverCacheHits++
				s.mu.Unlock()
				return f.val, nil
			}
			if ctx.Err() != nil {
				return nil, stage.Wrap(stage.Solver, ctx.Err())
			}
			continue
		}
		if s.solverFlights == nil {
			s.solverFlights = map[solverKey]*opFlight{}
		}
		f := &opFlight{done: make(chan struct{})}
		s.solverFlights[k] = f
		fp := s.fp
		s.mu.Unlock()

		v, err := runSolve(compute)

		s.mu.Lock()
		delete(s.solverFlights, k)
		if err == nil {
			s.stats.SolverSolves++
			if Fingerprint(s.st) == fp {
				if s.solverResults == nil {
					s.solverResults = map[solverKey]any{}
				}
				if _, dup := s.solverResults[k]; !dup {
					if len(s.solverSeq) >= solverCap {
						delete(s.solverResults, s.solverSeq[0])
						s.solverSeq = s.solverSeq[1:]
					}
					s.solverSeq = append(s.solverSeq, k)
				}
				s.solverResults[k] = v
			}
		}
		s.mu.Unlock()
		f.val, f.err = v, err
		close(f.done)
		return v, err
	}
}

// runSolve runs compute outside the session mutex, recovering a panic
// into a stage-tagged error so the caller's flight bookkeeping always
// runs.
func runSolve(compute func() (any, error)) (v any, err error) {
	defer stage.RecoverTo(stage.Solver, &err)
	return compute()
}

// SolveDecide reports whether p has a solution over the session's nice
// decomposition, memoized per (structure fingerprint, problem, mode).
func SolveDecide[S comparable](ctx context.Context, s *Session, p solver.Problem[S]) (bool, error) {
	k := solverKey{problem: p.Name(), mode: solver.ModeDecide}
	v, err := s.solveShared(ctx, k, func() (any, error) {
		if err := faultinject.Check("session.solver"); err != nil {
			return nil, stage.Wrap(stage.Solver, err)
		}
		nice, err := s.NiceForm(ctx)
		if err != nil {
			return nil, err
		}
		ok, err := solver.Decide(ctx, nice, p)
		if err != nil {
			return nil, err
		}
		return ok, nil
	})
	if err != nil {
		return false, err
	}
	b, _ := v.(bool)
	return b, nil
}

// SolveCount returns p's exact solution count over the session's nice
// decomposition, memoized per (structure fingerprint, problem, mode).
// The returned big.Int is caller-owned.
func SolveCount[S comparable](ctx context.Context, s *Session, p solver.Problem[S]) (*big.Int, error) {
	k := solverKey{problem: p.Name(), mode: solver.ModeCount}
	v, err := s.solveShared(ctx, k, func() (any, error) {
		if err := faultinject.Check("session.solver"); err != nil {
			return nil, stage.Wrap(stage.Solver, err)
		}
		nice, err := s.NiceForm(ctx)
		if err != nil {
			return nil, err
		}
		n, err := solver.Count(ctx, nice, p)
		if err != nil {
			return nil, err
		}
		return n, nil
	})
	if err != nil {
		return nil, err
	}
	n, ok := v.(*big.Int)
	if !ok {
		return new(big.Int), nil
	}
	return new(big.Int).Set(n), nil
}

// SolveOptimize returns p's minimum-cost derivation over the session's
// nice decomposition (nil if infeasible), memoized per (structure
// fingerprint, problem, mode). The cached derivation is immutable
// (Walk only reads), so hits share it.
func SolveOptimize[S comparable](ctx context.Context, s *Session, p solver.Problem[S]) (*solver.Derivation[S, int], error) {
	k := solverKey{problem: p.Name(), mode: solver.ModeOptimize}
	v, err := s.solveShared(ctx, k, func() (any, error) {
		if err := faultinject.Check("session.solver"); err != nil {
			return nil, stage.Wrap(stage.Solver, err)
		}
		nice, err := s.NiceForm(ctx)
		if err != nil {
			return nil, err
		}
		der, err := solver.Optimize(ctx, nice, p)
		if err != nil {
			return nil, err
		}
		return der, nil
	})
	if err != nil {
		return nil, err
	}
	der, _ := v.(*solver.Derivation[S, int])
	return der, nil
}

package session

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mso"
)

// diffFormulas is the randomized-differential pool: unary queries of
// rank ≤ 1 over {c/1} (binary signatures blow up the generic rank-1
// compilation; see core.TestBinarySignatureBlowUp).
var diffFormulas = []string{
	"c(x)",
	"~c(x)",
	"c(x) & exists y ~c(y)",
	"c(x) | forall y c(y)",
	"~c(x) & exists y c(y)",
	"c(x) -> exists y ~c(y)",
}

// diffSentences are decision instances for the same differential check.
var diffSentences = []string{
	"forall x c(x)",
	"exists x c(x)",
	"exists x ~c(x)",
}

// TestSessionDifferentialAgainstColdRun cross-checks the cached path
// against the cold pipeline: over randomized structures and formulas, a
// warm Session.Eval must return exactly the set (and decision) that a
// fresh core.Run computes.
func TestSessionDifferentialAgainstColdRun(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()
	for trial := 0; trial < 6; trial++ {
		st := randColored(rng, rng.Intn(4)+2)
		s := NewWithCache(st, NewProgramCache())
		for _, q := range diffFormulas {
			phi := mso.MustParse(q)
			warm, err := s.Eval(ctx, phi, "x", core.Options{})
			if err != nil {
				t.Fatalf("trial %d, session eval %q: %v", trial, q, err)
			}
			cold, err := core.Run(st, phi, "x", core.Options{})
			if err != nil {
				t.Fatalf("trial %d, cold run %q: %v", trial, q, err)
			}
			if !warm.Selected.Equal(cold.Selected) {
				t.Fatalf("trial %d, query %q: session selected %v, cold selected %v\n(structure:\n%s)",
					trial, q, warm.Selected.Elems(), cold.Selected.Elems(), st)
			}
			if warm.Width != cold.Width {
				t.Fatalf("trial %d, query %q: session width %d, cold width %d", trial, q, warm.Width, cold.Width)
			}
			// The repeat is served from the result cache and must be
			// identical to the cold run too.
			cached, err := s.Eval(ctx, phi, "x", core.Options{})
			if err != nil {
				t.Fatalf("trial %d, cached eval %q: %v", trial, q, err)
			}
			if !cached.Selected.Equal(cold.Selected) || cached.Holds != cold.Holds {
				t.Fatalf("trial %d, query %q: result-cache hit diverged from cold run", trial, q)
			}
		}
		for _, q := range diffSentences {
			phi := mso.MustParse(q)
			warm, err := s.Eval(ctx, phi, "", core.Options{Decision: true})
			if err != nil {
				t.Fatalf("trial %d, session decision %q: %v", trial, q, err)
			}
			cold, err := core.Run(st, phi, "", core.Options{Decision: true})
			if err != nil {
				t.Fatalf("trial %d, cold decision %q: %v", trial, q, err)
			}
			if warm.Holds != cold.Holds {
				t.Fatalf("trial %d, sentence %q: session %v, cold %v\n(structure:\n%s)",
					trial, q, warm.Holds, cold.Holds, st)
			}
		}
		// After the whole pool, the front end still ran exactly once and
		// every repeat hit the result cache.
		stats := s.Stats()
		if stats.Decompositions != 1 || stats.TupleNormalizations != 1 || stats.TDBuilds != 1 {
			t.Fatalf("trial %d: front end reran: %+v", trial, stats)
		}
		if stats.ResultCacheHits != len(diffFormulas) {
			t.Fatalf("trial %d: ResultCacheHits = %d, want %d", trial, stats.ResultCacheHits, len(diffFormulas))
		}
	}
}

// BenchmarkSessionReuse measures the tentpole speedup: ten queries over
// one structure through a warm Session versus ten cold core.Run calls
// that redo decomposition, normalization, τ_td build, compilation and
// evaluation each time. The warm path is the steady state of a repeated
// workload — artifacts, compiled programs and memoized results all hit.
// (`benchtable -session n` reports the first-pass number instead, where
// every query still evaluates.)
func BenchmarkSessionReuse(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	st := randColored(rng, 40)
	phis := make([]*mso.Formula, len(tenQueries))
	for i, q := range tenQueries {
		phis[i] = mso.MustParse(q)
	}
	ctx := context.Background()

	b.Run("warm-session", func(b *testing.B) {
		s := NewWithCache(st, NewProgramCache())
		// Prime artifacts and programs once, outside the timer.
		for _, phi := range phis {
			if _, err := s.Eval(ctx, phi, "x", core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, phi := range phis {
				if _, err := s.Eval(ctx, phi, "x", core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("cold-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, phi := range phis {
				if _, err := core.Run(st, phi, "x", core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

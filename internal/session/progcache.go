package session

import (
	"context"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mso"
	"repro/internal/stage"
	"repro/internal/structure"
)

// progKey identifies a compiled program: the formula's canonical
// rendering plus every Options field that influences compilation. Two
// structurally identical formulas hash to the same key even when built
// as distinct ASTs.
type progKey struct {
	sig      string
	formula  string
	xVar     string
	backend  string
	width    int
	depth    int
	decision bool
	maxDom   int
	maxTypes int
	maxEDB   int
	budget   int64
}

func keyFor(sig *structure.Signature, phi *mso.Formula, xVar string, opts core.Options) progKey {
	sigKey := ""
	for _, p := range sig.Predicates() {
		sigKey += p.Name + "/" + strconv.Itoa(p.Arity) + ";"
	}
	return progKey{
		sig:      sigKey,
		formula:  phi.String(),
		xVar:     xVar,
		backend:  opts.BackendName(),
		width:    opts.Width,
		depth:    opts.QuantifierDepth,
		decision: opts.Decision,
		maxDom:   opts.MaxWitnessDomain,
		maxTypes: opts.MaxTypes,
		maxEDB:   opts.MaxEDBSubsets,
		budget:   opts.EvalBudget,
	}
}

// progCacheCap is the default FIFO bound on cached compiled programs.
// Compiled programs are a few KB each; the cap keeps an adversarial
// stream of distinct formulas from growing the shared cache without
// bound while comfortably covering any realistic working set.
const progCacheCap = 512

// ProgramCache memoizes MSO-to-datalog compilations per (formula,
// width, options), bounded FIFO. It is safe for concurrent use; the
// lock is held for lookups and inserts only, compilation runs outside
// it, and concurrent requests for the same key share one in-flight
// compilation while requests for cached keys are served immediately. A
// compiled program is immutable and shared by every session that
// evaluates the same query, regardless of structure.
type ProgramCache struct {
	mu      sync.Mutex
	cap     int
	m       map[progKey]*core.Compiled
	order   []progKey
	flights map[progKey]*compileFlight
	hits    int
	misses  int
}

// compileFlight is one in-flight compilation shared by every request
// for the same key while it runs.
type compileFlight struct {
	done chan struct{}
	c    *core.Compiled
	err  error
}

// NewProgramCache returns an empty cache with the default capacity.
func NewProgramCache() *ProgramCache {
	return NewProgramCacheSize(progCacheCap)
}

// NewProgramCacheSize returns an empty cache evicting FIFO beyond n
// entries (n <= 0 means the default capacity).
func NewProgramCacheSize(n int) *ProgramCache {
	if n <= 0 {
		n = progCacheCap
	}
	return &ProgramCache{cap: n, m: map[progKey]*core.Compiled{}}
}

// defaultProgramCache backs every session that is not given its own
// cache, so compiled programs are shared across structures.
var defaultProgramCache = NewProgramCache()

// Get returns the compiled program for the key, compiling on a miss.
// The bool result reports whether it was served without compiling in
// this call (a cache hit or a share of another request's in-flight
// compilation). If an in-flight leader fails, waiters with live
// contexts retry the compilation themselves.
func (pc *ProgramCache) Get(ctx context.Context, sig *structure.Signature, phi *mso.Formula, xVar string, opts core.Options) (*core.Compiled, bool, error) {
	key := keyFor(sig, phi, xVar, opts)
	for {
		pc.mu.Lock()
		if c, ok := pc.m[key]; ok {
			pc.hits++
			pc.mu.Unlock()
			return c, true, nil
		}
		if f := pc.flights[key]; f != nil {
			pc.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				pc.mu.Lock()
				pc.hits++
				pc.mu.Unlock()
				return f.c, true, nil
			}
			if ctx.Err() != nil {
				return nil, false, ctx.Err()
			}
			continue
		}
		if pc.flights == nil {
			pc.flights = map[progKey]*compileFlight{}
		}
		f := &compileFlight{done: make(chan struct{})}
		pc.flights[key] = f
		pc.mu.Unlock()

		c, err := compileSafe(ctx, sig, phi, xVar, opts)

		pc.mu.Lock()
		delete(pc.flights, key)
		if err == nil {
			pc.misses++
			pc.put(key, c)
		}
		pc.mu.Unlock()
		f.c, f.err = c, err
		close(f.done)
		return c, false, err
	}
}

// compileSafe compiles outside the cache lock, recovering a panic into
// a stage-tagged error so the caller's flight bookkeeping always runs.
func compileSafe(ctx context.Context, sig *structure.Signature, phi *mso.Formula, xVar string, opts core.Options) (c *core.Compiled, err error) {
	defer stage.RecoverTo(stage.Compile, &err)
	return core.CompileCtx(ctx, sig, phi, xVar, opts)
}

// put inserts under pc.mu, evicting the oldest entry beyond the cap.
func (pc *ProgramCache) put(key progKey, c *core.Compiled) {
	if _, dup := pc.m[key]; !dup {
		if len(pc.order) >= pc.cap {
			delete(pc.m, pc.order[0])
			pc.order = pc.order[1:]
		}
		pc.order = append(pc.order, key)
	}
	pc.m[key] = c
}

// Shed drops every cached program and returns how many were released,
// keeping hit/miss counters and in-flight compilations intact. The
// server's memory watchdog calls it as the second shedding tier;
// subsequent Gets recompile (or re-enter the cache from a flight
// completing after the shed).
func (pc *ProgramCache) Shed() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	n := len(pc.m)
	pc.m = map[progKey]*core.Compiled{}
	pc.order = nil
	return n
}

// Stats reports hit/miss counts.
func (pc *ProgramCache) Stats() (hits, misses int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses
}

// Len returns the number of cached programs.
func (pc *ProgramCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.m)
}

// Cap returns the cache's FIFO capacity.
func (pc *ProgramCache) Cap() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.cap
}

// timeNow is a seam kept in one place so stage timing in this package
// is easy to audit.
func timeNow() time.Time { return time.Now() }

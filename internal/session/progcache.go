package session

import (
	"context"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mso"
	"repro/internal/structure"
)

// progKey identifies a compiled program: the formula's canonical
// rendering plus every Options field that influences compilation. Two
// structurally identical formulas hash to the same key even when built
// as distinct ASTs.
type progKey struct {
	sig      string
	formula  string
	xVar     string
	width    int
	depth    int
	decision bool
	maxDom   int
	maxTypes int
	maxEDB   int
	budget   int64
}

func keyFor(sig *structure.Signature, phi *mso.Formula, xVar string, opts core.Options) progKey {
	sigKey := ""
	for _, p := range sig.Predicates() {
		sigKey += p.Name + "/" + strconv.Itoa(p.Arity) + ";"
	}
	return progKey{
		sig:      sigKey,
		formula:  phi.String(),
		xVar:     xVar,
		width:    opts.Width,
		depth:    opts.QuantifierDepth,
		decision: opts.Decision,
		maxDom:   opts.MaxWitnessDomain,
		maxTypes: opts.MaxTypes,
		maxEDB:   opts.MaxEDBSubsets,
		budget:   opts.EvalBudget,
	}
}

// ProgramCache memoizes MSO-to-datalog compilations per (formula,
// width, options). It is safe for concurrent use; compilation happens
// under the cache lock, so concurrent requests for the same key compile
// exactly once. A compiled program is immutable and shared by every
// session that evaluates the same query, regardless of structure.
type ProgramCache struct {
	mu     sync.Mutex
	m      map[progKey]*core.Compiled
	hits   int
	misses int
}

// NewProgramCache returns an empty cache.
func NewProgramCache() *ProgramCache {
	return &ProgramCache{m: map[progKey]*core.Compiled{}}
}

// defaultProgramCache backs every session that is not given its own
// cache, so compiled programs are shared across structures.
var defaultProgramCache = NewProgramCache()

// Get returns the compiled program for the key, compiling on a miss.
// The bool result reports whether it was a cache hit.
func (pc *ProgramCache) Get(ctx context.Context, sig *structure.Signature, phi *mso.Formula, xVar string, opts core.Options) (*core.Compiled, bool, error) {
	key := keyFor(sig, phi, xVar, opts)
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if c, ok := pc.m[key]; ok {
		pc.hits++
		return c, true, nil
	}
	c, err := core.CompileCtx(ctx, sig, phi, xVar, opts)
	if err != nil {
		return nil, false, err
	}
	pc.misses++
	pc.m[key] = c
	return c, false, nil
}

// Stats reports hit/miss counts.
func (pc *ProgramCache) Stats() (hits, misses int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses
}

// Len returns the number of cached programs.
func (pc *ProgramCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.m)
}

// timeNow is a seam kept in one place so stage timing in this package
// is easy to audit.
func timeNow() time.Time { return time.Now() }

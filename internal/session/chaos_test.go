package session

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/mso"
	"repro/internal/stage"
	"repro/internal/testutil/leak"
)

// sessionPoints maps each session-path injection point to the stage tag
// an injected fault must surface with.
var sessionPoints = []struct {
	point string
	stage stage.Stage
}{
	{"session.decompose", stage.Decompose},
	{"session.normalize-tuple", stage.NormalizeTuple},
	{"session.build-td", stage.BuildTD},
	{"session.compile", stage.Compile},
	{"session.eval", stage.Eval},
}

// corePoints is the same inventory for the cold core.RunCtx path.
var corePoints = []struct {
	point string
	stage stage.Stage
}{
	{"core.decompose", stage.Decompose},
	{"core.normalize-tuple", stage.NormalizeTuple},
	{"core.build-td", stage.BuildTD},
	{"core.compile", stage.Compile},
	{"core.eval", stage.Eval},
}

// TestChaosSessionEveryPointFires injects one fault at each session
// stage boundary in turn and checks it surfaces as an ordinary error
// wrapping faultinject.ErrInjected, tagged with the stage it fired in.
func TestChaosSessionEveryPointFires(t *testing.T) {
	defer faultinject.Reset()
	phi := mso.MustParse("c(x)")
	for _, tc := range sessionPoints {
		faultinject.Reset()
		faultinject.FailAt(tc.point, 1)
		st := randColored(rand.New(rand.NewSource(31)), 6)
		s := NewWithCache(st, NewProgramCache())
		_, err := s.Eval(context.Background(), phi, "x", core.Options{})
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("%s: err = %v, want injected fault", tc.point, err)
		}
		if got := stage.Of(err); got != tc.stage {
			t.Fatalf("%s: tagged stage %q, want %q", tc.point, got, tc.stage)
		}
	}
}

// TestChaosCoreEveryPointFires is the same sweep over the cold
// core.RunCtx pipeline.
func TestChaosCoreEveryPointFires(t *testing.T) {
	defer faultinject.Reset()
	phi := mso.MustParse("c(x)")
	for _, tc := range corePoints {
		faultinject.Reset()
		faultinject.FailAt(tc.point, 1)
		st := randColored(rand.New(rand.NewSource(31)), 6)
		_, err := core.RunCtx(context.Background(), st, phi, "x", core.Options{})
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("%s: err = %v, want injected fault", tc.point, err)
		}
		if got := stage.Of(err); got != tc.stage {
			t.Fatalf("%s: tagged stage %q, want %q", tc.point, got, tc.stage)
		}
	}
}

// TestChaosRetryMatchesColdRun pins the acceptance property of the
// chaos suite: after a fault at any stage boundary, a retry on the SAME
// session must return exactly what a cold core.Run over the same
// structure returns — the failed run may leave completed artifacts
// behind, but never a corrupted one.
func TestChaosRetryMatchesColdRun(t *testing.T) {
	defer faultinject.Reset()
	phi := mso.MustParse("c(x) | ~c(x)")
	for _, tc := range sessionPoints {
		faultinject.Reset()
		st := randColored(rand.New(rand.NewSource(37)), 8)
		cold, err := core.Run(st, phi, "x", core.Options{})
		if err != nil {
			t.Fatal(err)
		}

		faultinject.FailAt(tc.point, 1)
		s := NewWithCache(st, NewProgramCache())
		if _, err := s.Eval(context.Background(), phi, "x", core.Options{}); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("%s: first eval err = %v, want injected fault", tc.point, err)
		}
		// The plan is exhausted (nth=1 already fired); the retry runs clean.
		res, err := s.Eval(context.Background(), phi, "x", core.Options{})
		if err != nil {
			t.Fatalf("%s: retry failed: %v", tc.point, err)
		}
		if !res.Selected.Equal(cold.Selected) {
			t.Fatalf("%s: retry selected %v, cold run %v", tc.point, res.Selected.Elems(), cold.Selected.Elems())
		}
		if res.Width != cold.Width || res.TDNodes != cold.TDNodes {
			t.Fatalf("%s: retry width/nodes %d/%d, cold %d/%d",
				tc.point, res.Width, res.TDNodes, cold.Width, cold.TDNodes)
		}
		// And the retry's cached result is equally clean: a third call is a
		// pure result-cache hit with the same answer.
		again, err := s.Eval(context.Background(), phi, "x", core.Options{})
		if err != nil {
			t.Fatalf("%s: cached retry failed: %v", tc.point, err)
		}
		if !again.Selected.Equal(cold.Selected) {
			t.Fatalf("%s: cache poisoned: %v vs cold %v", tc.point, again.Selected.Elems(), cold.Selected.Elems())
		}
		if hits := s.Stats().ResultCacheHits; hits != 1 {
			t.Fatalf("%s: ResultCacheHits = %d, want 1", tc.point, hits)
		}
	}
}

// TestChaosMutationBetweenFaultAndRetry pins the cache-poisoning guard:
// a failed run leaves partial artifacts, the structure then changes, and
// the retry must answer for the NEW structure, not the cached artifacts
// of the old one.
func TestChaosMutationBetweenFaultAndRetry(t *testing.T) {
	defer faultinject.Reset()
	phi := mso.MustParse("c(x)")
	st := randColored(rand.New(rand.NewSource(41)), 6)
	s := NewWithCache(st, NewProgramCache())

	// Fail late: decompose and normalize succeed and are cached.
	faultinject.FailAt("session.build-td", 1)
	if _, err := s.Eval(context.Background(), phi, "x", core.Options{}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	faultinject.Reset()

	// Mutate the bound structure, then retry on the same session.
	id := st.AddElem("fresh")
	st.MustAddTuple("c", id)
	res, err := s.Eval(context.Background(), phi, "x", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := core.Run(st, phi, "x", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Selected.Equal(cold.Selected) {
		t.Fatalf("stale artifacts leaked into retry: %v, want %v", res.Selected.Elems(), cold.Selected.Elems())
	}
	if s.Stats().Invalidations == 0 {
		t.Fatal("fingerprint change after failed run did not invalidate")
	}
}

// TestChaosSeededSweep runs a seeded random fault plan over repeated
// session evaluations and checks the two chaos invariants: no goroutine
// leaks, and a clean evaluation after disarming matches the cold run.
func TestChaosSeededSweep(t *testing.T) {
	defer faultinject.Reset()
	phi := mso.MustParse("c(x) & (c(x) | ~c(x))")
	st := randColored(rand.New(rand.NewSource(43)), 10)
	cold, err := core.Run(st, phi, "x", core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	snap := leak.Before()
	for seed := int64(1); seed <= 5; seed++ {
		faultinject.Reset()
		faultinject.Seed(seed, 0.05)
		s := NewWithCache(st, NewProgramCache())
		var failed, succeeded int
		for i := 0; i < 6; i++ {
			res, err := s.Eval(context.Background(), phi, "x", core.Options{})
			switch {
			case err == nil:
				succeeded++
				if !res.Selected.Equal(cold.Selected) {
					t.Fatalf("seed %d eval %d: wrong answer under chaos: %v, want %v",
						seed, i, res.Selected.Elems(), cold.Selected.Elems())
				}
			case errors.Is(err, faultinject.ErrInjected):
				failed++
			default:
				t.Fatalf("seed %d eval %d: non-injected error %v", seed, i, err)
			}
		}
		t.Logf("seed %d: %d failed, %d succeeded, hits %d", seed, failed, succeeded, len(faultinject.Hits()))
	}
	faultinject.Reset()

	// Clean run after the sweep: correct, and no workers left behind.
	s := NewWithCache(st, NewProgramCache())
	res, err := s.Eval(context.Background(), phi, "x", core.Options{})
	if err != nil {
		t.Fatalf("clean run after sweep: %v", err)
	}
	if !res.Selected.Equal(cold.Selected) {
		t.Fatalf("clean run after sweep: %v, want %v", res.Selected.Elems(), cold.Selected.Elems())
	}
	snap.Check(t)
}

// TestChaosDecompositionLadderVisible checks that a fault in the
// min-fill rung degrades to min-degree and the session records the rung
// in its trace detail.
func TestChaosDecompositionLadderVisible(t *testing.T) {
	defer faultinject.Reset()
	faultinject.FailAt("decompose.min-fill", 1)
	st := randColored(rand.New(rand.NewSource(47)), 6)
	s := NewWithCache(st, NewProgramCache())
	trace, err := s.Warm(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, stat := range trace.Stats {
		if stat.Stage == stage.Decompose {
			if stat.Detail != "min-degree" {
				t.Fatalf("decompose rung = %q, want min-degree after min-fill fault", stat.Detail)
			}
			return
		}
	}
	t.Fatal("no decompose stat in trace")
}

package session

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mso"
	"repro/internal/schema"
	"repro/internal/stage"
	"repro/internal/structure"
	"repro/internal/testutil/leak"
)

var sigColor = structure.MustSignature(structure.Predicate{Name: "c", Arity: 1})

func randColored(rng *rand.Rand, n int) *structure.Structure {
	st := structure.New(sigColor)
	for i := 0; i < n; i++ {
		id := st.AddElem(fmt.Sprintf("v%d", i))
		if rng.Intn(2) == 0 {
			st.MustAddTuple("c", id)
		}
	}
	return st
}

// tenQueries are ten syntactically distinct quantifier-free queries, so
// each one misses the program cache while sharing every per-structure
// artifact.
var tenQueries = []string{
	"c(x)",
	"~c(x)",
	"c(x) | ~c(x)",
	"c(x) & c(x)",
	"c(x) -> c(x)",
	"~(c(x) & ~c(x))",
	"c(x) & (c(x) | ~c(x))",
	"~c(x) | c(x)",
	"c(x) & c(x) & c(x)",
	"(c(x) -> c(x)) & c(x)",
}

// TestSessionTenQueriesOneDecomposition pins the tentpole cache
// guarantee: 10 MSO queries over one structure through a Session
// perform exactly 1 decomposition, 1 tuple normalization and 1 τ_td
// build.
func TestSessionTenQueriesOneDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	st := randColored(rng, 6)
	s := NewWithCache(st, NewProgramCache())
	ctx := context.Background()
	for _, q := range tenQueries {
		phi := mso.MustParse(q)
		res, err := s.Eval(ctx, phi, "x", core.Options{})
		if err != nil {
			t.Fatalf("eval %q: %v", q, err)
		}
		want, err := mso.Query(st, phi, "x", nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Selected.Equal(want) {
			t.Fatalf("query %q: selected %v, want %v", q, res.Selected.Elems(), want.Elems())
		}
		if res.Trace == nil || len(res.Trace.Stats) == 0 {
			t.Fatalf("query %q: no trace recorded", q)
		}
	}
	stats := s.Stats()
	if stats.Decompositions != 1 {
		t.Errorf("Decompositions = %d, want 1", stats.Decompositions)
	}
	if stats.TupleNormalizations != 1 {
		t.Errorf("TupleNormalizations = %d, want 1", stats.TupleNormalizations)
	}
	if stats.TDBuilds != 1 {
		t.Errorf("TDBuilds = %d, want 1", stats.TDBuilds)
	}
	if stats.Evals != 10 {
		t.Errorf("Evals = %d, want 10", stats.Evals)
	}
	if stats.Compiles != 10 || stats.CompileCacheHits != 0 {
		t.Errorf("Compiles = %d (hits %d), want 10 distinct compiles", stats.Compiles, stats.CompileCacheHits)
	}
}

// TestSessionProgramCacheHit pins the per-query cache: re-evaluating
// the same formula hits the program cache.
func TestSessionProgramCacheHit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	st := randColored(rng, 5)
	s := NewWithCache(st, NewProgramCache())
	phi := mso.MustParse("c(x)")
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := s.Eval(ctx, phi, "x", core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	stats := s.Stats()
	if stats.CompileCacheHits != 2 {
		t.Errorf("CompileCacheHits = %d, want 2", stats.CompileCacheHits)
	}
	if stats.Evals != 1 || stats.ResultCacheHits != 2 {
		t.Errorf("Evals = %d, ResultCacheHits = %d, want 1 and 2", stats.Evals, stats.ResultCacheHits)
	}
	hits, misses := s.ProgramCacheStats()
	if hits != 2 || misses != 1 {
		t.Errorf("program cache hits/misses = %d/%d, want 2/1", hits, misses)
	}
	// The trace of a warm run marks the front-end stages as cached.
	res, err := s.Eval(ctx, phi, "x", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, st := range res.Trace.Stats {
		if st.CacheHit {
			cached++
		}
	}
	if cached < 4 { // decompose, normalize-tuple, build-td, compile
		t.Errorf("warm trace has %d cached stages, want >= 4:\n%s", cached, res.Trace)
	}
}

// TestSessionInvalidation pins fingerprint-based invalidation: mutating
// the structure forces a fresh decomposition.
func TestSessionInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	st := randColored(rng, 5)
	s := NewWithCache(st, NewProgramCache())
	phi := mso.MustParse("c(x)")
	ctx := context.Background()
	if _, err := s.Eval(ctx, phi, "x", core.Options{}); err != nil {
		t.Fatal(err)
	}
	id := st.AddElem("fresh")
	st.MustAddTuple("c", id)
	res, err := s.Eval(ctx, phi, "x", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Selected.Has(id) {
		t.Fatal("stale artifacts: new element not selected")
	}
	stats := s.Stats()
	if stats.Invalidations != 1 || stats.Decompositions != 2 {
		t.Errorf("Invalidations = %d, Decompositions = %d, want 1 and 2", stats.Invalidations, stats.Decompositions)
	}
}

// TestSessionRequestedWidth pins the width-assertion fix: zero is a
// legitimate requested width (structures whose primal graph is
// edgeless), and the nil pointer means no assertion.
func TestSessionRequestedWidth(t *testing.T) {
	st := structure.New(sigColor)
	for i := 0; i < 4; i++ {
		id := st.AddElem(fmt.Sprintf("v%d", i))
		if i%2 == 0 {
			st.MustAddTuple("c", id)
		}
	}
	s := NewWithCache(st, NewProgramCache())
	ctx := context.Background()
	phi := mso.MustParse("c(x)")
	// Width 0 must be assertable and pass.
	res, err := s.Eval(ctx, phi, "x", core.Options{}.RequestWidth(0))
	if err != nil {
		t.Fatalf("RequestWidth(0): %v", err)
	}
	if res.Width != 0 {
		t.Fatalf("width = %d, want 0", res.Width)
	}
	// A wrong assertion must fail.
	if _, err := s.Eval(ctx, phi, "x", core.Options{}.RequestWidth(3)); err == nil {
		t.Fatal("RequestWidth(3) on a width-0 decomposition succeeded")
	}
}

// TestSessionDeadlineStageTagged pins the cancellation taxonomy: an
// expired deadline surfaces as a *StageError wrapping
// context.DeadlineExceeded, and no goroutines leak.
func TestSessionDeadlineStageTagged(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	st := randColored(rng, 300)
	snap := leak.Before()
	s := NewWithCache(st, NewProgramCache())
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond) // guarantee expiry at the first poll
	_, err := s.Eval(ctx, mso.MustParse("c(x)"), "x", core.Options{})
	if err == nil {
		t.Fatal("expired deadline did not fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not stage-tagged", err)
	}
	if se.Stage == "" {
		t.Fatal("stage tag is empty")
	}
	snap.Check(t)
	// A live context on the same session still succeeds (no poisoning).
	if _, err := s.Eval(context.Background(), mso.MustParse("c(x)"), "x", core.Options{}); err != nil {
		t.Fatalf("session poisoned after cancellation: %v", err)
	}
}

// TestSchemaSessionMemoizes pins SchemaSession: one instance build and
// one enumeration across repeated calls, invalidated on schema change.
func TestSchemaSessionMemoizes(t *testing.T) {
	s := schema.MustParse("attrs A B C\nfd f1: A B -> C\nfd f2: C -> A\n")
	ss := NewSchemaSession(s)
	ctx := context.Background()
	first, err := ss.Primes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ss.Primes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(second) {
		t.Fatal("memoized primes differ")
	}
	stats := ss.Stats()
	if stats.Decompositions != 1 || stats.Evals != 1 {
		t.Errorf("Decompositions = %d, Evals = %d, want 1 and 1", stats.Decompositions, stats.Evals)
	}
	want, err := s.PrimesBruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(want) {
		t.Fatalf("primes %v, want %v", first.Elems(), want.Elems())
	}
	// Mutating the schema invalidates.
	s.AddAttr("D")
	if _, err := ss.Primes(ctx); err != nil {
		t.Fatal(err)
	}
	if got := ss.Stats().Invalidations; got != 1 {
		t.Errorf("Invalidations = %d, want 1", got)
	}
}

// TestRegistryIdentity pins the registry: same object, same session.
func TestRegistryIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st := randColored(rng, 4)
	if For(st) != For(st) {
		t.Fatal("registry returned distinct sessions for one structure")
	}
	other := randColored(rng, 4)
	if For(st) == For(other) {
		t.Fatal("registry shared a session across structures")
	}
	sch := schema.MustParse("attrs A B\nfd f: A -> B\n")
	if ForSchema(sch) != ForSchema(sch) {
		t.Fatal("schema registry returned distinct sessions")
	}
}

// TestStageErrorAlias pins that the session aliases are the stage
// package's types (one taxonomy, no conversion needed).
func TestStageErrorAlias(t *testing.T) {
	err := stage.Wrap(stage.Eval, context.Canceled)
	var se *StageError
	if !errors.As(err, &se) || se.Stage != stage.Eval {
		t.Fatal("StageError alias does not match stage.Error")
	}
	var tr Trace
	tr.Record(stage.Eval, time.Millisecond, 1, false)
	if tr.Total() != time.Millisecond {
		t.Fatal("Trace alias does not match stage.Trace")
	}
}

package session

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/mso"
	"repro/internal/structure"
)

var sigMutate = structure.MustSignature(
	structure.Predicate{Name: "e", Arity: 2},
	structure.Predicate{Name: "c", Arity: 1},
)

// randMutable builds a random {e/2, c/1} path structure with random
// colors. The e-graph must stay a forest throughout the tests: over a
// binary signature the compiler is only feasible at width 1 (see
// core.TestBinarySignatureBlowUp), so edits may never raise the
// treewidth.
func randMutable(rng *rand.Rand, n int) *structure.Structure {
	st := structure.New(sigMutate)
	for i := 0; i < n; i++ {
		st.AddElem(fmt.Sprintf("v%d", i))
	}
	for i := 0; i+1 < n; i++ {
		st.MustAddTuple("e", i, i+1)
	}
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			st.MustAddTuple("c", i)
		}
	}
	return st
}

// Quantifier-free unary queries: rank-1 quantification over a binary
// signature exceeds the compiler's type space by design.
var mutateQueries = []string{
	"c(x)",
	"~c(x)",
	"c(x) | ~c(x)",
}

// connected reports whether u and v are joined in the undirected view
// of st's e-relation — the test-side forest guard for edge inserts.
func connected(st *structure.Structure, u, v int) bool {
	parent := make([]int, st.Size())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, t := range st.Tuples("e") {
		if ra, rb := find(t[0]), find(t[1]); ra != rb {
			parent[ra] = rb
		}
	}
	return find(u) == find(v)
}

// checkMutateAnswers evaluates every query on the warm session and on
// the naive reference, failing on any disagreement.
func checkMutateAnswers(t *testing.T, s *Session, st *structure.Structure, label string) {
	t.Helper()
	ctx := context.Background()
	for _, q := range mutateQueries {
		phi := mso.MustParse(q)
		res, err := s.Eval(ctx, phi, "x", core.Options{})
		if err != nil {
			t.Fatalf("%s: eval %q: %v", label, q, err)
		}
		want, err := mso.Query(st, phi, "x", nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Selected.Equal(want) {
			t.Fatalf("%s: query %q: selected %v, want %v", label, q, res.Selected.Elems(), want.Elems())
		}
	}
}

// TestMutateDifferentialSequence is the session half of the mutation
// differential suite: a 50-edit random insert/retract/add-element
// sequence through Session.Mutate, with every query re-checked against
// the naive MSO reference after every single edit. Both the incremental
// fast path and the fallback paths must be exercised.
func TestMutateDifferentialSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	st := randMutable(rng, 12)
	s := NewWithCache(st, NewProgramCache())
	checkMutateAnswers(t, s, st, "initial")

	for step := 0; step < 50; step++ {
		ms, err := s.Mutate(func(st *structure.Structure) error {
			switch rng.Intn(5) {
			case 0: // toggle a color — always covered by some bag
				v := rng.Intn(st.Size())
				if st.Has("c", v) {
					st.RemoveTuple("c", v)
				} else {
					st.MustAddTuple("c", v)
				}
			case 1: // retract a random edge
				tuples := st.Tuples("e")
				if len(tuples) > 0 {
					e := tuples[rng.Intn(len(tuples))]
					st.RemoveTuple("e", e[0], e[1])
				}
			case 2: // fresh element wired to an existing one
				v := st.AddElem(fmt.Sprintf("w%d", step))
				st.MustAddTuple("e", rng.Intn(v), v)
			case 3: // reverse of an existing edge: covered, no primal change
				tuples := st.Tuples("e")
				if len(tuples) > 0 {
					e := tuples[rng.Intn(len(tuples))]
					if !st.Has("e", e[1], e[0]) {
						st.MustAddTuple("e", e[1], e[0])
					}
				}
			default: // bridge two components: uncovered insert, still a forest
				u, v := rng.Intn(st.Size()), rng.Intn(st.Size())
				if u != v && !connected(st, u, v) {
					st.MustAddTuple("e", u, v)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		_ = ms
		checkMutateAnswers(t, s, st, fmt.Sprintf("step %d", step))
	}
	stats := s.Stats()
	if stats.DeltasApplied == 0 {
		t.Error("50 edits applied no deltas — the incremental path never ran")
	}
	t.Logf("deltas applied %d, repair fallbacks %d, invalidations %d, decompositions %d",
		stats.DeltasApplied, stats.RepairFallbacks, stats.Invalidations, stats.Decompositions)
}

// TestMutateFastPathStats pins the shape-preserving fast path: a
// covered single-tuple edit keeps every artifact (no new decomposition,
// no invalidation), maintains the cached result incrementally, and the
// requery is a pure cache hit with the updated answer.
func TestMutateFastPathStats(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	st := randMutable(rng, 10)
	s := NewWithCache(st, NewProgramCache())
	ctx := context.Background()
	phi := mso.MustParse("c(x)")
	if _, err := s.Eval(ctx, phi, "x", core.Options{}); err != nil {
		t.Fatal(err)
	}

	// Make v0 flip its answer.
	wasColored := st.Has("c", 0)
	ms, err := s.Mutate(func(st *structure.Structure) error {
		if wasColored {
			st.RemoveTuple("c", 0)
		} else {
			st.MustAddTuple("c", 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ms.DeltaApplied || ms.Invalidated || ms.RepairFallback {
		t.Fatalf("covered edit: %+v, want a pure delta", ms)
	}
	if ms.ResultsMaintained != 1 || ms.ResultsDropped != 0 {
		t.Fatalf("ResultsMaintained=%d ResultsDropped=%d, want 1 and 0", ms.ResultsMaintained, ms.ResultsDropped)
	}

	res, err := s.Eval(ctx, phi, "x", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected.Has(0) == wasColored {
		t.Fatal("maintained result did not absorb the edit")
	}
	stats := s.Stats()
	if stats.Decompositions != 1 || stats.TupleNormalizations != 1 || stats.TDBuilds != 1 {
		t.Errorf("front end rebuilt: decompositions=%d normalizations=%d tdbuilds=%d, want 1 each",
			stats.Decompositions, stats.TupleNormalizations, stats.TDBuilds)
	}
	if stats.Invalidations != 0 || stats.DeltasApplied != 1 || stats.RepairFallbacks != 0 {
		t.Errorf("Invalidations=%d DeltasApplied=%d RepairFallbacks=%d, want 0/1/0",
			stats.Invalidations, stats.DeltasApplied, stats.RepairFallbacks)
	}
	if stats.Evals != 1 || stats.ResultCacheHits != 1 {
		t.Errorf("Evals=%d ResultCacheHits=%d, want 1 and 1 (requery must hit the maintained cache)",
			stats.Evals, stats.ResultCacheHits)
	}
}

// TestMutateRepairFallbackStats pins the degradation path: an edit the
// local repair cannot absorb invalidates wholesale, counts as a repair
// fallback, and the next query rebuilds and still answers correctly.
// The fallback edit bridges two path components — uncovered (its
// endpoints share no bag, and connecting them within width 1 is
// impossible) yet the structure stays a forest, so the post-fallback
// rebuild is still feasible.
func TestMutateRepairFallbackStats(t *testing.T) {
	st := structure.New(sigMutate)
	for i := 0; i < 12; i++ {
		st.AddElem(fmt.Sprintf("v%d", i))
	}
	for i := 0; i+1 < 12; i++ {
		st.MustAddTuple("e", i, i+1)
	}
	st.MustAddTuple("c", 0)
	s := NewWithCache(st, NewProgramCache())
	checkMutateAnswers(t, s, st, "initial")

	// Split the path in the middle — a retraction is always absorbed.
	ms, err := s.Mutate(func(st *structure.Structure) error {
		st.RemoveTuple("e", 5, 6)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ms.DeltaApplied || ms.Invalidated {
		t.Fatalf("retraction: %+v, want a pure delta", ms)
	}

	// Bridging the far ends cannot be absorbed within width 1.
	ms, err = s.Mutate(func(st *structure.Structure) error {
		st.MustAddTuple("e", 0, 11)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ms.RepairFallback || !ms.Invalidated || ms.DeltaApplied {
		t.Fatalf("bridge edit: %+v, want repair fallback + invalidation", ms)
	}
	checkMutateAnswers(t, s, st, "post-fallback")
	stats := s.Stats()
	if stats.RepairFallbacks != 1 || stats.Invalidations != 1 {
		t.Errorf("RepairFallbacks=%d Invalidations=%d, want 1 and 1", stats.RepairFallbacks, stats.Invalidations)
	}
	if stats.Decompositions != 2 {
		t.Errorf("Decompositions=%d, want 2 (fallback forces a rebuild)", stats.Decompositions)
	}
}

// TestMutateChaosNoPoisoning proves the no-cache-poisoning property for
// the two incremental injection points the session consumes: a faulted
// decomposition repair degrades to wholesale invalidation, and a
// faulted result delta drops the entry — in both cases the next queries
// recompute cold and match the naive reference.
func TestMutateChaosNoPoisoning(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(29))
	st := randMutable(rng, 10)
	s := NewWithCache(st, NewProgramCache())
	checkMutateAnswers(t, s, st, "initial")

	faultinject.FailAt("decompose.repair", 1)
	ms, err := s.Mutate(func(st *structure.Structure) error {
		st.MustAddTuple("c", 0)
		return nil
	})
	faultinject.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if !ms.RepairFallback || !ms.Invalidated {
		t.Fatalf("faulted repair: %+v, want fallback + invalidation", ms)
	}
	checkMutateAnswers(t, s, st, "post repair fault")

	faultinject.FailAt("datalog.delta", 1)
	ms, err = s.Mutate(func(st *structure.Structure) error {
		st.RemoveTuple("c", 0)
		return nil
	})
	faultinject.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if !ms.DeltaApplied || ms.ResultsDropped == 0 {
		t.Fatalf("faulted result delta: %+v, want delta applied with dropped results", ms)
	}
	checkMutateAnswers(t, s, st, "post delta fault")
}

// TestConcurrentMutateEval is the -race regression for the structure
// mutation contract: Mutate edits racing concurrent evaluations and
// views must serialize, and the session must answer correctly after the
// dust settles.
func TestConcurrentMutateEval(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	st := randMutable(rng, 10)
	s := NewWithCache(st, NewProgramCache())
	ctx := context.Background()
	phi := mso.MustParse("c(x)")
	if _, err := s.Eval(ctx, phi, "x", core.Options{}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			v := i % 10
			if _, err := s.Mutate(func(st *structure.Structure) error {
				if st.Has("c", v) {
					st.RemoveTuple("c", v)
				} else {
					st.MustAddTuple("c", v)
				}
				return nil
			}); err != nil {
				t.Errorf("mutate %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			if _, err := s.Eval(ctx, phi, "x", core.Options{}); err != nil {
				t.Errorf("eval %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			s.View(func(st *structure.Structure) { _ = st.NumTuples() })
		}
	}()
	wg.Wait()
	checkMutateAnswers(t, s, st, "post-race")
}

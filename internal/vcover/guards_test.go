package vcover

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

func TestBruteForceGuard(t *testing.T) {
	if _, err := BruteForceVC(graph.New(23)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	g := graph.New(2)
	g.AddEdge(0, 1)
	got, err := BruteForceVC(g)
	if err != nil || got != 1 {
		t.Fatalf("K2: got %d, %v; want 1, nil", got, err)
	}
}

// Package vcover implements minimum vertex cover (and by complement,
// maximum independent set) on bounded-treewidth graphs — a further FPT
// problem on the paper's framework (Section 7: "We are therefore planning
// to tackle many more problems, whose FPT was established via Courcelle's
// Theorem, with this new approach"). The solver is a cost-optimizing
// dynamic program over the nice tree decompositions of internal/dp,
// following the same solve-predicate style as Figures 5 and 6.
package vcover

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/decompose"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/tree"
)

// state is the in-cover bitmask over the sorted bag positions.
type state uint32

func position(bag []int, e int) int {
	for i, b := range bag {
		if b == e {
			return i
		}
	}
	return -1
}

func insertBit(m state, p int, bit state) state {
	low := m & ((1 << uint(p)) - 1)
	high := m >> uint(p)
	return low | bit<<uint(p) | high<<uint(p+1)
}

func removeBit(m state, p int) state {
	low := m & ((1 << uint(p)) - 1)
	high := m >> uint(p+1)
	return low | high<<uint(p)
}

// covered reports whether every bag-internal edge has an endpoint in the
// cover mask.
func covered(g *graph.Graph, bag []int, m state) bool {
	for i := 0; i < len(bag); i++ {
		for j := i + 1; j < len(bag); j++ {
			if g.HasEdge(bag[i], bag[j]) && m>>uint(i)&1 == 0 && m>>uint(j)&1 == 0 {
				return false
			}
		}
	}
	return true
}

func handlers(g *graph.Graph) dp.CostHandlers[state] {
	popcount := func(m state, n int) int {
		c := 0
		for p := 0; p < n; p++ {
			c += int(m >> uint(p) & 1)
		}
		return c
	}
	return dp.CostHandlers[state]{
		Leaf: func(_ int, bag []int) []dp.Costed[state] {
			var out []dp.Costed[state]
			for m := state(0); m < 1<<uint(len(bag)); m++ {
				if covered(g, bag, m) {
					out = append(out, dp.Costed[state]{State: m, Cost: popcount(m, len(bag))})
				}
			}
			return out
		},
		Introduce: func(_ int, bag []int, elem int, child state) []dp.Costed[state] {
			p := position(bag, elem)
			var out []dp.Costed[state]
			for bit := state(0); bit <= 1; bit++ {
				m := insertBit(child, p, bit)
				if covered(g, bag, m) {
					out = append(out, dp.Costed[state]{State: m, Cost: int(bit)})
				}
			}
			return out
		},
		Forget: func(_ int, bag []int, elem int, child state) []dp.Costed[state] {
			childBag := insertSorted(bag, elem)
			return []dp.Costed[state]{{State: removeBit(child, position(childBag, elem))}}
		},
		Branch: func(_ int, bag []int, s1, s2 state) []dp.Costed[state] {
			if s1 != s2 {
				return nil
			}
			// The bag's cover members are counted in both children;
			// subtract one copy.
			dup := 0
			for p := range bag {
				dup += int(s1 >> uint(p) & 1)
			}
			return []dp.Costed[state]{{State: s1, Cost: -dup}}
		},
	}
}

func insertSorted(bag []int, e int) []int {
	out := make([]int, 0, len(bag)+1)
	placed := false
	for _, b := range bag {
		if !placed && e < b {
			out = append(out, e)
			placed = true
		}
		out = append(out, b)
	}
	if !placed {
		out = append(out, e)
	}
	return out
}

// MinVertexCover returns the size of a minimum vertex cover of g.
func MinVertexCover(g *graph.Graph) (int, error) {
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		return 0, err
	}
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
	if err != nil {
		return 0, err
	}
	tables, err := dp.RunUpMin(nice, handlers(g))
	if err != nil {
		return 0, err
	}
	best := math.MaxInt
	for _, c := range tables[nice.Root] {
		if c < best {
			best = c
		}
	}
	if best == math.MaxInt {
		return 0, fmt.Errorf("vcover: no feasible state at the root")
	}
	return best, nil
}

// MaxIndependentSet returns the size of a maximum independent set
// (|V| − minimum vertex cover).
func MaxIndependentSet(g *graph.Graph) (int, error) {
	vc, err := MinVertexCover(g)
	if err != nil {
		return 0, err
	}
	return g.N() - vc, nil
}

// ErrTooLarge reports that the exponential oracle was asked about a
// graph beyond its hard size limit; test with errors.Is.
var ErrTooLarge = errors.New("vcover: graph too large for brute force")

// BruteForceVC is the exponential oracle for tests; beyond 22 vertices
// it returns ErrTooLarge.
func BruteForceVC(g *graph.Graph) (int, error) {
	n := g.N()
	if n > 22 {
		return 0, fmt.Errorf("%w: limited to 22 vertices, got %d", ErrTooLarge, n)
	}
	edges := g.Edges()
	best := n
	for mask := 0; mask < 1<<uint(n); mask++ {
		size := 0
		for v := 0; v < n; v++ {
			size += mask >> uint(v) & 1
		}
		if size >= best {
			continue
		}
		ok := true
		for _, e := range edges {
			if mask>>uint(e[0])&1 == 0 && mask>>uint(e[1])&1 == 0 {
				ok = false
				break
			}
		}
		if ok {
			best = size
		}
	}
	return best, nil
}

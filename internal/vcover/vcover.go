// Package vcover implements minimum vertex cover (and by complement,
// maximum independent set) on bounded-treewidth graphs — a further FPT
// problem on the paper's framework (Section 7: "We are therefore planning
// to tackle many more problems, whose FPT was established via Courcelle's
// Theorem, with this new approach"). The transitions are one
// solver.Problem instance evaluated by the generic semiring engine: the
// tropical semiring yields the minimum cover (with a witness set), the
// counting semiring the number of covers, the boolean semiring the
// trivial decision.
package vcover

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/decompose"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/solver"
	"repro/internal/tree"
)

// width packs one bit per sorted-bag position: the in-cover bitmask.
const width = solver.Width(1)

// Problem returns the vertex-cover algebra over g as a generic
// solver.Problem, for callers (like the decision service) that run
// named problems through the session Solve* helpers on an existing
// decomposition. Vertex IDs of g must match the decomposition's bag
// elements.
func Problem(g *graph.Graph) solver.Problem[uint64] {
	return coverProblem{g}
}

// coverProblem is the vertex-cover algebra: states are in-cover
// bitmasks over the sorted bag, costs count selected vertices exactly
// once (on introduction or in a leaf; joins subtract the bag overlap
// both children counted).
type coverProblem struct {
	g *graph.Graph
}

func (cp coverProblem) Name() string { return "vertex-cover" }

// covered reports whether every bag-internal edge has an endpoint in
// the cover mask.
func (cp coverProblem) covered(bag []int, m uint64) bool {
	for i := 0; i < len(bag); i++ {
		for j := i + 1; j < len(bag); j++ {
			if cp.g.HasEdge(bag[i], bag[j]) && m>>uint(i)&1 == 0 && m>>uint(j)&1 == 0 {
				return false
			}
		}
	}
	return true
}

func (cp coverProblem) Leaf(_ int, bag []int) []solver.Out[uint64] {
	var out []solver.Out[uint64]
	for m := uint64(0); m < 1<<uint(len(bag)); m++ {
		if cp.covered(bag, m) {
			cost := 0
			for p := range bag {
				cost += int(m >> uint(p) & 1)
			}
			out = append(out, solver.Out[uint64]{State: m, Cost: cost})
		}
	}
	return out
}

func (cp coverProblem) Introduce(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	p := solver.Position(bag, elem)
	var out []solver.Out[uint64]
	for bit := uint64(0); bit <= 1; bit++ {
		m := width.Insert(child, p, bit)
		if cp.covered(bag, m) {
			out = append(out, solver.Out[uint64]{State: m, Cost: int(bit)})
		}
	}
	return out
}

func (cp coverProblem) Forget(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	childBag := solver.InsertSorted(bag, elem)
	return []solver.Out[uint64]{{State: width.Drop(child, solver.Position(childBag, elem))}}
}

func (cp coverProblem) Join(_ int, bag []int, s1, s2 uint64) []solver.Out[uint64] {
	if s1 != s2 {
		return nil
	}
	// The bag's cover members are counted in both children; subtract one
	// copy.
	dup := 0
	for p := range bag {
		dup += int(s1 >> uint(p) & 1)
	}
	return []solver.Out[uint64]{{State: s1, Cost: -dup}}
}

// Accept: cover constraints are enforced edge-locally throughout, so
// every surviving root state is a full cover.
func (cp coverProblem) Accept(int, []int, uint64) bool { return true }

func niceFor(g *graph.Graph) (*tree.Decomposition, error) {
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		return nil, err
	}
	return tree.NormalizeNice(d, tree.NiceOptions{})
}

// MinVertexCover returns the size of a minimum vertex cover of g.
func MinVertexCover(g *graph.Graph) (int, error) {
	nice, err := niceFor(g)
	if err != nil {
		return 0, err
	}
	der, err := solver.Optimize(context.Background(), nice, coverProblem{g})
	if err != nil {
		return 0, err
	}
	if der == nil {
		return 0, fmt.Errorf("vcover: no feasible state at the root")
	}
	return der.Value, nil
}

// CoverSet returns a minimum vertex cover itself, by walking the argmin
// derivation of the tropical-semiring tables.
func CoverSet(g *graph.Graph) ([]int, error) {
	nice, err := niceFor(g)
	if err != nil {
		return nil, err
	}
	der, err := solver.Optimize(context.Background(), nice, coverProblem{g})
	if err != nil {
		return nil, err
	}
	if der == nil {
		return nil, fmt.Errorf("vcover: no feasible state at the root")
	}
	bags, err := dp.Bags(nice)
	if err != nil {
		return nil, fmt.Errorf("vcover: %w", err)
	}
	in := make([]bool, g.N())
	err = der.Walk(func(v int, s uint64) error {
		for p, e := range bags[v] {
			if s>>uint(p)&1 == 1 {
				in[e] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var cover []int
	for v, ok := range in {
		if ok {
			cover = append(cover, v)
		}
	}
	return cover, nil
}

// MaxIndependentSet returns the size of a maximum independent set
// (|V| − minimum vertex cover).
func MaxIndependentSet(g *graph.Graph) (int, error) {
	vc, err := MinVertexCover(g)
	if err != nil {
		return 0, err
	}
	return g.N() - vc, nil
}

// ErrTooLarge reports that the exponential oracle was asked about a
// graph beyond its hard size limit; test with errors.Is.
var ErrTooLarge = errors.New("vcover: graph too large for brute force")

// BruteForceVC is the exponential oracle for tests; beyond 22 vertices
// it returns ErrTooLarge.
func BruteForceVC(g *graph.Graph) (int, error) {
	n := g.N()
	if n > 22 {
		return 0, fmt.Errorf("%w: limited to 22 vertices, got %d", ErrTooLarge, n)
	}
	edges := g.Edges()
	best := n
	for mask := 0; mask < 1<<uint(n); mask++ {
		size := 0
		for v := 0; v < n; v++ {
			size += mask >> uint(v) & 1
		}
		if size >= best {
			continue
		}
		ok := true
		for _, e := range edges {
			if mask>>uint(e[0])&1 == 0 && mask>>uint(e[1])&1 == 0 {
				ok = false
				break
			}
		}
		if ok {
			best = size
		}
	}
	return best, nil
}

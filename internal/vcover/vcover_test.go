package vcover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestKnownCovers(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path4", graph.Path(4), 2},   // cover {v1, v2}
		{"cycle5", graph.Cycle(5), 3}, // ⌈5/2⌉
		{"K4", graph.Complete(4), 3},
		{"star", star(6), 1},
		{"edgeless", graph.New(5), 0},
		{"single edge", graph.Path(2), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := MinVertexCover(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("VC = %d, want %d", got, tc.want)
			}
		})
	}
}

func star(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

func TestMaxIndependentSet(t *testing.T) {
	got, err := MaxIndependentSet(graph.Cycle(6))
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("MIS(C6) = %d, want 3", got)
	}
}

func TestScalesOnBoundedTreewidth(t *testing.T) {
	// Far beyond brute-force range.
	rng := rand.New(rand.NewSource(5))
	g := graph.PartialKTree(120, 3, 0.3, rng)
	vc, err := MinVertexCover(g)
	if err != nil {
		t.Fatal(err)
	}
	if vc <= 0 || vc >= g.N() {
		t.Fatalf("implausible VC %d", vc)
	}
}

// Property: the DP agrees with brute force on random graphs.
func TestQuickAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		g := graph.RandomTree(n, rng)
		for i := rng.Intn(2 * n); i > 0; i-- {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		got, err := MinVertexCover(g)
		if err != nil {
			return false
		}
		want, err := BruteForceVC(g)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(157))}); err != nil {
		t.Fatal(err)
	}
}

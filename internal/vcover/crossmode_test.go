package vcover

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/solver"
)

// TestCrossModeVertexCover pins the three evaluation modes of the
// cover algebra against each other on random partial k-trees:
// decision == (count > 0) == (optimization finds a feasible witness),
// the witness covers every edge, and its size is the brute-force
// optimum. (A full cover always exists, so all three must be
// feasible — the interesting content is the witness and the optimum.)
func TestCrossModeVertexCover(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ctx := context.Background()
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(12)
		k := 1 + rng.Intn(3)
		g := graph.PartialKTree(n, k, 0.3, rng)
		nice, err := niceFor(g)
		if err != nil {
			t.Fatal(err)
		}
		cp := coverProblem{g}

		dec, err := solver.Decide(ctx, nice, cp)
		if err != nil {
			t.Fatal(err)
		}
		cnt, err := solver.Count(ctx, nice, cp)
		if err != nil {
			t.Fatal(err)
		}
		der, err := solver.Optimize(ctx, nice, cp)
		if err != nil {
			t.Fatal(err)
		}
		if !dec || cnt.Sign() <= 0 || der == nil {
			t.Fatalf("trial %d: modes disagree: decide=%v count=%v optimize-feasible=%v",
				trial, dec, cnt, der != nil)
		}

		want, err := BruteForceVC(g)
		if err != nil {
			t.Fatal(err)
		}
		if der.Value != want {
			t.Fatalf("trial %d: Optimize=%d, brute force=%d", trial, der.Value, want)
		}
		cover, err := CoverSet(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(cover) != want {
			t.Fatalf("trial %d: witness size %d, optimum %d", trial, len(cover), want)
		}
		in := make([]bool, g.N())
		for _, v := range cover {
			in[v] = true
		}
		for _, e := range g.Edges() {
			if !in[e[0]] && !in[e[1]] {
				t.Fatalf("trial %d: witness misses edge %v", trial, e)
			}
		}
	}
}

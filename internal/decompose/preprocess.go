package decompose

import (
	"repro/internal/bitset"
	"repro/internal/graph"
)

// Preprocessing reductions for exact treewidth computation — the standard
// safe rules used by practical solvers: a simplicial vertex v (its
// neighborhood is a clique) can be removed, since
//
//	tw(G) = max(deg(v), tw(G − v)).
//
// Isolated and degree-1 vertices are special cases. The reductions often
// shrink bounded-treewidth inputs dramatically before the exponential
// search runs.

// PreprocessResult reports a reduction pass.
type PreprocessResult struct {
	// Reduced is the graph after exhaustively removing simplicial
	// vertices (renumbered; vertices of the original graph).
	Reduced *graph.Graph
	// Removed lists the removed original vertices in elimination order.
	Removed []int
	// LowerBound is max degree-at-removal over removed vertices: a lower
	// bound on tw(G) contributed by the reductions.
	LowerBound int
	// Mapping maps reduced-graph vertices to original vertices.
	Mapping []int
}

// Preprocess exhaustively removes simplicial vertices.
func Preprocess(g *graph.Graph) *PreprocessResult {
	n := g.N()
	adj := make([]*bitset.Set, n)
	alive := bitset.New(n)
	for v := 0; v < n; v++ {
		adj[v] = g.Neighbors(v).Clone()
		alive.Add(v)
	}
	res := &PreprocessResult{}
	for {
		removed := -1
		alive.ForEach(func(v int) bool {
			nb := adj[v].Intersect(alive)
			if isClique(adj, nb) {
				removed = v
				if d := nb.Len(); d > res.LowerBound {
					res.LowerBound = d
				}
				return false
			}
			return true
		})
		if removed < 0 {
			break
		}
		alive.Remove(removed)
		res.Removed = append(res.Removed, removed)
	}
	res.Reduced = graph.New(alive.Len())
	res.Mapping = alive.Elems()
	index := map[int]int{}
	for i, v := range res.Mapping {
		index[v] = i
		res.Reduced.SetName(i, g.Name(v))
	}
	for i, v := range res.Mapping {
		adj[v].ForEach(func(u int) bool {
			if j, ok := index[u]; ok {
				res.Reduced.AddEdge(i, j)
			}
			return true
		})
	}
	return res
}

func isClique(adj []*bitset.Set, vs *bitset.Set) bool {
	elems := vs.Elems()
	for i := 0; i < len(elems); i++ {
		for j := i + 1; j < len(elems); j++ {
			if !adj[elems[i]].Has(elems[j]) {
				return false
			}
		}
	}
	return true
}

// TreewidthPreprocessed computes the exact treewidth using simplicial
// preprocessing before the exponential search: tw(G) is the maximum of
// the reduction lower bound and the treewidth of the reduced graph. The
// size limit applies to the reduced graph only, so much larger
// bounded-treewidth inputs become exactly solvable.
func TreewidthPreprocessed(g *graph.Graph) (int, error) {
	res := Preprocess(g)
	if res.Reduced.N() == 0 {
		return res.LowerBound, nil
	}
	tw, err := Treewidth(res.Reduced)
	if err != nil {
		return 0, err
	}
	if res.LowerBound > tw {
		tw = res.LowerBound
	}
	return tw, nil
}

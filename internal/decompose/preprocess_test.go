package decompose

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestPreprocessKillsKTrees(t *testing.T) {
	// Full k-trees reduce to nothing: every construction step added a
	// simplicial vertex.
	rng := rand.New(rand.NewSource(3))
	g := graph.KTree(30, 3, rng)
	res := Preprocess(g)
	if res.Reduced.N() != 0 {
		t.Fatalf("k-tree not fully reduced: %d vertices left", res.Reduced.N())
	}
	if res.LowerBound != 3 {
		t.Fatalf("lower bound = %d, want 3", res.LowerBound)
	}
	tw, err := TreewidthPreprocessed(g)
	if err != nil || tw != 3 {
		t.Fatalf("tw = %d, %v", tw, err)
	}
}

func TestPreprocessTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomTree(50, rng)
	res := Preprocess(g)
	if res.Reduced.N() != 0 {
		t.Fatalf("tree not fully reduced: %d left", res.Reduced.N())
	}
	tw, err := TreewidthPreprocessed(g)
	if err != nil || tw != 1 {
		t.Fatalf("tw(tree) = %d, %v", tw, err)
	}
}

func TestPreprocessGridIrreducible(t *testing.T) {
	// Grids have no simplicial vertices (corner neighborhoods are
	// independent pairs).
	g := graph.Grid(4, 4)
	res := Preprocess(g)
	if res.Reduced.N() != 16 {
		t.Fatalf("grid reduced to %d vertices", res.Reduced.N())
	}
	if len(res.Removed) != 0 || res.LowerBound != 0 {
		t.Fatalf("unexpected removals %v", res.Removed)
	}
}

func TestPreprocessedLargerThanExactLimit(t *testing.T) {
	// A graph too large for the raw exact search becomes solvable after
	// preprocessing.
	rng := rand.New(rand.NewSource(7))
	g := graph.KTree(MaxExactVertices+20, 2, rng)
	if _, err := Treewidth(g); err == nil {
		t.Fatal("raw exact search should refuse this size")
	}
	tw, err := TreewidthPreprocessed(g)
	if err != nil || tw != 2 {
		t.Fatalf("tw = %d, %v", tw, err)
	}
}

// Property: preprocessing preserves the exact treewidth.
func TestQuickPreprocessPreservesTreewidth(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		g := graph.RandomTree(n, rng)
		for i := rng.Intn(2 * n); i > 0; i-- {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		plain, err := Treewidth(g)
		if err != nil {
			return false
		}
		pre, err := TreewidthPreprocessed(g)
		if err != nil {
			return false
		}
		return plain == pre
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(151))}); err != nil {
		t.Fatal(err)
	}
}

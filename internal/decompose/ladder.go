package decompose

import (
	"context"
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/stage"
	"repro/internal/structure"
	"repro/internal/tree"
)

// The degradation ladder: when a decomposition heuristic fails — its
// sub-deadline fires, it panics, or a fault is injected at its rung —
// the pipeline falls back to a cheaper heuristic instead of failing the
// whole run. Width may degrade rung by rung, but every rung still
// returns a *valid* decomposition (any elimination order does, see
// FromOrder), so downstream correctness is unaffected; only the
// parameter k the FPT machinery pays for may grow.
//
// Rungs, in order of decreasing quality and cost:
//
//	min-fill    best widths, costliest scoring
//	min-degree  cheaper scoring, usually slightly worse widths
//	greedy-bfs  linear-time reverse-BFS order, the rung of last resort
//
// Each rung is guarded by the fault-injection point "decompose.<rung>".

// Rung names, exported for trace/test assertions.
const (
	RungMinFill   = "min-fill"
	RungMinDegree = "min-degree"
	RungGreedyBFS = "greedy-bfs"
)

// LadderRungs lists the ladder's rungs in descent order.
var LadderRungs = []string{RungMinFill, RungMinDegree, RungGreedyBFS}

// GraphLadderCtx decomposes g by descending the degradation ladder. It
// returns the decomposition, the name of the rung that produced it, and
// an error only if every rung failed or the parent context was done.
// Errors are stage-tagged stage.Decompose.
//
// When ctx carries a deadline, each rung gets an equal share of the
// time remaining at its start (the last rung gets all of it), so a
// heuristic that stalls cannot starve its fallbacks. A rung failure
// whose cause is the *parent* context (cancelled or past its own
// deadline) aborts the ladder immediately — retrying could not succeed.
func GraphLadderCtx(ctx context.Context, g *graph.Graph) (*tree.Decomposition, string, error) {
	type rung struct {
		name  string
		order func(context.Context) ([]int, error)
	}
	rungs := []rung{
		{RungMinFill, func(c context.Context) ([]int, error) { return OrderCtx(c, g, MinFill) }},
		{RungMinDegree, func(c context.Context) ([]int, error) { return OrderCtx(c, g, MinDegree) }},
		{RungGreedyBFS, func(c context.Context) ([]int, error) { return GreedyBFSOrderCtx(c, g) }},
	}
	var lastErr error
	for i, r := range rungs {
		if err := ctx.Err(); err != nil {
			return nil, "", stage.Wrap(stage.Decompose, err)
		}
		rctx, cancel := rungContext(ctx, len(rungs)-i)
		d, err := runRung(rctx, g, r.name, r.order)
		cancel()
		if err == nil {
			return d, r.name, nil
		}
		lastErr = err
		if perr := ctx.Err(); perr != nil {
			// The parent run is over; the rung error is just its echo.
			return nil, "", stage.Wrap(stage.Decompose, perr)
		}
	}
	return nil, "", stage.Wrap(stage.Decompose,
		fmt.Errorf("all decomposition rungs failed, last (%s): %w", rungs[len(rungs)-1].name, lastErr))
}

// rungContext derives the sub-deadline context for a rung with
// remaining rungs (including itself) left on the ladder.
func rungContext(ctx context.Context, remaining int) (context.Context, context.CancelFunc) {
	dl, ok := ctx.Deadline()
	if !ok || remaining <= 1 {
		return ctx, func() {}
	}
	share := time.Until(dl) / time.Duration(remaining)
	return context.WithDeadline(ctx, time.Now().Add(share))
}

// runRung executes one rung with fault injection and panic containment:
// a panicking heuristic is a failed rung, not a crashed process.
func runRung(ctx context.Context, g *graph.Graph, name string, order func(context.Context) ([]int, error)) (d *tree.Decomposition, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = stage.NewPanicError(r)
		}
	}()
	if err := faultinject.Check("decompose." + name); err != nil {
		return nil, err
	}
	o, err := order(ctx)
	if err != nil {
		return nil, err
	}
	return FromOrderCtx(ctx, g, o)
}

// StructureLadderCtx is GraphLadderCtx over the primal graph of a
// τ-structure.
func StructureLadderCtx(ctx context.Context, st *structure.Structure) (*tree.Decomposition, string, error) {
	return GraphLadderCtx(ctx, graph.Primal(st))
}

// GreedyBFSOrderCtx computes the ladder's last-resort elimination
// order: the reverse of a BFS visit order, per connected component from
// the lowest-numbered unvisited vertex. Eliminating leaves of the BFS
// tree first keeps bags small on tree-like graphs and costs O(n+m) with
// no scoring structures at all — it cannot stall, only yield worse
// widths than the scored heuristics.
func GreedyBFSOrderCtx(ctx context.Context, g *graph.Graph) ([]int, error) {
	n := g.N()
	visited := make([]bool, n)
	visit := make([]int, 0, n)
	queue := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			if len(visit)%ctxCheckRounds == 0 {
				if err := ctx.Err(); err != nil {
					return nil, stage.Wrap(stage.Decompose, err)
				}
			}
			v := queue[0]
			queue = queue[1:]
			visit = append(visit, v)
			g.Neighbors(v).ForEach(func(u int) bool {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
				return true
			})
		}
	}
	for i, j := 0, len(visit)-1; i < j; i, j = i+1, j-1 {
		visit[i], visit[j] = visit[j], visit[i]
	}
	return visit, nil
}

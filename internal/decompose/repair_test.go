package decompose

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/structure"
)

// TestRepairRandomEdits drives Repair over random edit sequences on
// random partial k-trees: after every absorbed edit the repaired
// decomposition must validate against the edited structure without
// exceeding the original width, and fallbacks must leave the input
// decomposition untouched.
func TestRepairRandomEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	repaired, fallbacks := 0, 0
	for trial := 0; trial < 30; trial++ {
		g := graph.PartialKTree(20+rng.Intn(20), 2+rng.Intn(2), 0.3, rng)
		st := g.ToStructure()
		d, err := Structure(st, MinFill)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(st); err != nil {
			t.Fatal(err)
		}
		for edit := 0; edit < 10; edit++ {
			rev := st.Rev()
			switch rng.Intn(4) {
			case 0: // retract a random present edge
				tuples := st.Tuples("e")
				if len(tuples) == 0 {
					continue
				}
				e := tuples[rng.Intn(len(tuples))]
				u, v := e[0], e[1]
				st.RemoveTuple("e", u, v)
				st.RemoveTuple("e", v, u)
			case 1: // fresh element plus an edge to an existing one
				u := st.AddElem("w" + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26))))
				v := rng.Intn(st.Size())
				st.MustAddTuple("e", u, v)
				st.MustAddTuple("e", v, u)
			default: // random edge insert (possibly a duplicate)
				u, v := rng.Intn(st.Size()), rng.Intn(st.Size())
				if u == v {
					continue
				}
				st.MustAddTuple("e", u, v)
				st.MustAddTuple("e", v, u)
			}
			changes, ok := st.ChangesSince(rev)
			if !ok {
				t.Fatal("change log lost a fresh window")
			}
			if len(changes) == 0 {
				continue
			}
			before := d.Width()
			rd, dirty, err := Repair(d, st, changes)
			if err != nil {
				if !errors.Is(err, ErrRepairFallback) {
					t.Fatalf("trial %d edit %d: %v", trial, edit, err)
				}
				fallbacks++
				// Fallback: full re-elimination, as the session would do.
				d, err = Structure(st, MinFill)
				if err != nil {
					t.Fatal(err)
				}
				continue
			}
			repaired++
			if err := rd.Validate(st); err != nil {
				t.Fatalf("trial %d edit %d: repaired decomposition invalid: %v", trial, edit, err)
			}
			if rd.Width() > before {
				t.Fatalf("trial %d edit %d: repair widened %d → %d", trial, edit, before, rd.Width())
			}
			for _, v := range dirty {
				if v < 0 || v >= rd.Len() {
					t.Fatalf("dirty node %d out of range", v)
				}
			}
			d = rd
		}
	}
	if repaired == 0 || fallbacks == 0 {
		t.Fatalf("suite exercised repaired=%d fallbacks=%d; want both paths", repaired, fallbacks)
	}
	t.Logf("repaired %d edits locally, %d fallbacks", repaired, fallbacks)
}

// TestRepairCoveredInsertIsLocal pins the fast path: inserting a tuple
// already covered by a bag changes no bags and dirties one node.
func TestRepairCoveredInsertIsLocal(t *testing.T) {
	sig := structure.MustSignature(structure.Predicate{Name: "e", Arity: 2})
	st := structure.New(sig)
	a, b, c := st.AddElem("a"), st.AddElem("b"), st.AddElem("c")
	st.MustAddTuple("e", a, b)
	st.MustAddTuple("e", b, c)
	d, err := Structure(st, MinFill)
	if err != nil {
		t.Fatal(err)
	}
	rev := st.Rev()
	st.MustAddTuple("e", b, a) // reverse edge: covered by the {a,b} bag
	changes, _ := st.ChangesSince(rev)
	rd, dirty, err := Repair(d, st, changes)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 1 {
		t.Fatalf("dirty = %v, want exactly one node", dirty)
	}
	for i := range rd.Nodes {
		if len(rd.Nodes[i].Bag) != len(d.Nodes[i].Bag) {
			t.Fatalf("covered insert modified bag of node %d", i)
		}
	}
	if err := rd.Validate(st); err != nil {
		t.Fatal(err)
	}
}

// TestRepairWidthFallback pins the fallback condition: forcing an edge
// between the two ends of a long path must either widen within the
// original bound or report ErrRepairFallback.
func TestRepairWidthFallback(t *testing.T) {
	g := graph.Path(12)
	st := g.ToStructure()
	d, err := Structure(st, MinFill)
	if err != nil {
		t.Fatal(err)
	}
	rev := st.Rev()
	st.MustAddTuple("e", 0, 11)
	st.MustAddTuple("e", 11, 0)
	changes, _ := st.ChangesSince(rev)
	if _, _, err := Repair(d, st, changes); !errors.Is(err, ErrRepairFallback) {
		t.Fatalf("got %v, want ErrRepairFallback (width-1 path cannot absorb a chord)", err)
	}
}

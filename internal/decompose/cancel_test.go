package decompose

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/stage"
)

// TestOrderCtxCancelledMidElimination pins cancellation inside the
// min-fill elimination loop: the ordering is abandoned with a
// stage-tagged context.Canceled.
func TestOrderCtxCancelledMidElimination(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := graph.PartialKTree(400, 4, 0.4, rng)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := OrderCtx(ctx, g, MinFill)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *stage.Error
	if !errors.As(err, &se) || se.Stage != stage.Decompose {
		t.Fatalf("err = %v, want stage %q", err, stage.Decompose)
	}
}

// TestGraphCtxDeadlineOnLargeGraph pins the end-to-end deadline path: a
// short deadline on a graph large enough that ordering takes longer
// than the deadline comes back as DeadlineExceeded, observed at one of
// the periodic checks.
func TestGraphCtxDeadlineOnLargeGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.PartialKTree(3000, 5, 0.5, rng)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	_, err := GraphCtx(ctx, g, MinFill)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	var se *stage.Error
	if !errors.As(err, &se) || se.Stage != stage.Decompose {
		t.Fatalf("err = %v, want stage %q", err, stage.Decompose)
	}
}

// TestOrderCtxBackgroundMatchesOrder pins that the ctx variant with a
// live context is the same algorithm as the original entry point.
func TestOrderCtxBackgroundMatchesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := graph.PartialKTree(60, 3, 0.3, rng)
	want := Order(g, MinFill)
	got, err := OrderCtx(context.Background(), g, MinFill)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("order lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("orders diverge at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

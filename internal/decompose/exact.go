package decompose

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/tree"
)

// MaxExactVertices bounds the graph size accepted by the exact search;
// the memoization is exponential in the number of vertices.
const MaxExactVertices = 22

// Treewidth computes the exact treewidth of g by iterative deepening over
// elimination orders with memoization on the eliminated set. It is
// exponential and restricted to graphs with at most MaxExactVertices
// vertices; use the heuristics for anything larger.
func Treewidth(g *graph.Graph) (int, error) {
	order, err := ExactOrder(g)
	if err != nil {
		return 0, err
	}
	return orderWidth(g, order), nil
}

// ExactOrder returns an elimination order of minimal width.
func ExactOrder(g *graph.Graph) ([]int, error) {
	n := g.N()
	if n > MaxExactVertices {
		return nil, fmt.Errorf("decompose: exact search limited to %d vertices, got %d", MaxExactVertices, n)
	}
	if n == 0 {
		return nil, nil
	}
	lb := LowerBoundMMD(g)
	ub := orderWidth(g, Order(g, MinFill))
	for k := lb; k <= ub; k++ {
		if order := orderWithWidth(g, k); order != nil {
			return order, nil
		}
	}
	return Order(g, MinFill), nil // unreachable: ub always succeeds
}

// orderWithWidth searches for an elimination order in which every vertex
// has at most k live "fill neighbors" at elimination time; such an order
// exists iff tw(g) ≤ k.
func orderWithWidth(g *graph.Graph, k int) []int {
	n := g.N()
	// Only infeasible eliminated-sets are memoized: a memoized success
	// would short-circuit without reconstructing the order suffix.
	dead := map[uint64]bool{}
	var order []int

	// fillDegree computes the number of live neighbors of v in the fill
	// graph: vertices u ≠ v reachable from v via paths whose interior
	// lies entirely in the eliminated set.
	fillDegree := func(eliminated uint64, v int) int {
		seen := bitset.New(n)
		seen.Add(v)
		stack := []int{v}
		deg := 0
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			broken := false
			g.Neighbors(x).ForEach(func(u int) bool {
				if seen.Has(u) {
					return true
				}
				seen.Add(u)
				if eliminated&(1<<uint(u)) != 0 {
					stack = append(stack, u)
				} else {
					deg++
					if deg > k {
						broken = true
						return false
					}
				}
				return true
			})
			if broken {
				return deg
			}
		}
		return deg
	}

	var search func(eliminated uint64, remaining int) bool
	search = func(eliminated uint64, remaining int) bool {
		if remaining == 0 {
			return true
		}
		if dead[eliminated] {
			return false
		}
		for v := 0; v < n; v++ {
			if eliminated&(1<<uint(v)) != 0 {
				continue
			}
			if fillDegree(eliminated, v) > k {
				continue
			}
			order = append(order, v)
			if search(eliminated|1<<uint(v), remaining-1) {
				return true
			}
			order = order[:len(order)-1]
		}
		dead[eliminated] = true
		return false
	}
	if search(0, n) {
		out := make([]int, len(order))
		copy(out, order)
		return out
	}
	return nil
}

// LowerBoundMMD computes the maximum-minimum-degree lower bound on the
// treewidth: repeatedly delete a minimum-degree vertex and record the
// largest minimum degree seen.
func LowerBoundMMD(g *graph.Graph) int {
	n := g.N()
	adj := make([]*bitset.Set, n)
	alive := bitset.New(n)
	for v := 0; v < n; v++ {
		adj[v] = g.Neighbors(v).Clone()
		alive.Add(v)
	}
	bound := 0
	for alive.Len() > 1 {
		best, bestDeg := -1, n+1
		alive.ForEach(func(v int) bool {
			if d := adj[v].Intersect(alive).Len(); d < bestDeg {
				best, bestDeg = v, d
			}
			return true
		})
		if bestDeg > bound {
			bound = bestDeg
		}
		alive.Remove(best)
	}
	return bound
}

// Exact returns an exact minimum-width tree decomposition of g (small
// graphs only; see MaxExactVertices).
func Exact(g *graph.Graph) (*tree.Decomposition, error) {
	order, err := ExactOrder(g)
	if err != nil {
		return nil, err
	}
	return FromOrder(g, order)
}

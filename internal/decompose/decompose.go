// Package decompose constructs tree decompositions of graphs and
// τ-structures. The paper relies on Bodlaender's linear-time algorithm [3]
// as a black box; as documented in DESIGN.md we substitute the standard
// practical toolkit — elimination-order heuristics (min-degree, min-fill)
// plus an exact branch-and-bound for small graphs — since any valid
// decomposition of the stated width preserves all downstream behaviour.
package decompose

import (
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/structure"
	"repro/internal/tree"
)

// Heuristic selects an elimination-order heuristic.
type Heuristic int

const (
	// MinDegree eliminates a vertex of minimum current degree.
	MinDegree Heuristic = iota
	// MinFill eliminates a vertex whose elimination adds the fewest
	// fill-in edges; slower but usually yields smaller width.
	MinFill
)

// Order computes an elimination order of g using the given heuristic.
func Order(g *graph.Graph, h Heuristic) []int {
	n := g.N()
	adj := make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		adj[v] = g.Neighbors(v).Clone()
	}
	alive := bitset.New(n)
	for v := 0; v < n; v++ {
		alive.Add(v)
	}
	order := make([]int, 0, n)
	for k := 0; k < n; k++ {
		best, bestScore := -1, int(^uint(0)>>1)
		alive.ForEach(func(v int) bool {
			var score int
			switch h {
			case MinFill:
				score = fillIn(adj, alive, v)
			default:
				score = adj[v].Intersect(alive).Len()
			}
			if score < bestScore {
				best, bestScore = v, score
			}
			return true
		})
		order = append(order, best)
		// Eliminate: make the live neighborhood a clique.
		nb := adj[best].Intersect(alive)
		nbs := nb.Elems()
		for i := 0; i < len(nbs); i++ {
			for j := i + 1; j < len(nbs); j++ {
				adj[nbs[i]].Add(nbs[j])
				adj[nbs[j]].Add(nbs[i])
			}
		}
		alive.Remove(best)
	}
	return order
}

func fillIn(adj []*bitset.Set, alive *bitset.Set, v int) int {
	nbs := adj[v].Intersect(alive).Elems()
	fill := 0
	for i := 0; i < len(nbs); i++ {
		for j := i + 1; j < len(nbs); j++ {
			if !adj[nbs[i]].Has(nbs[j]) {
				fill++
			}
		}
	}
	return fill
}

// FromOrder builds a tree decomposition of g from an elimination order
// using the standard fill-in construction. The returned decomposition is
// raw (no normal form) and valid for g.
func FromOrder(g *graph.Graph, order []int) (*tree.Decomposition, error) {
	n := g.N()
	if n == 0 {
		d := tree.New()
		d.SetRoot(d.AddNode(nil))
		return d, nil
	}
	if len(order) != n {
		return nil, fmt.Errorf("decompose: order has %d entries for %d vertices", len(order), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range order {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("decompose: vertex %d out of range in order", v)
		}
		pos[v] = i
	}
	for v, p := range pos {
		if p < 0 {
			return nil, fmt.Errorf("decompose: vertex %d missing from order", v)
		}
	}

	// Simulate elimination to obtain, for each vertex, its set of later
	// neighbors in the fill graph.
	adj := make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		adj[v] = g.Neighbors(v).Clone()
	}
	alive := bitset.New(n)
	for v := 0; v < n; v++ {
		alive.Add(v)
	}
	later := make([][]int, n) // later[v] = live neighbors at elimination time
	for _, v := range order {
		nb := adj[v].Intersect(alive)
		nb.Remove(v)
		later[v] = nb.Elems()
		nbs := later[v]
		for i := 0; i < len(nbs); i++ {
			for j := i + 1; j < len(nbs); j++ {
				adj[nbs[i]].Add(nbs[j])
				adj[nbs[j]].Add(nbs[i])
			}
		}
		alive.Remove(v)
	}

	// Bag of v = {v} ∪ later(v). Parent bag: the bag of the earliest
	// eliminated vertex among later(v); vertices with no later neighbors
	// become component roots, chained under the last vertex's bag.
	parent := make([]int, n)
	for v := 0; v < n; v++ {
		parent[v] = -1
	}
	for _, v := range order {
		first := -1
		for _, u := range later[v] {
			if first < 0 || pos[u] < pos[first] {
				first = u
			}
		}
		parent[v] = first
	}
	rootVertex := order[n-1]
	for v := 0; v < n; v++ {
		if parent[v] < 0 && v != rootVertex {
			parent[v] = rootVertex // join forest components under one root
		}
	}

	children := make([][]int, n)
	for v := 0; v < n; v++ {
		if parent[v] >= 0 {
			children[parent[v]] = append(children[parent[v]], v)
		}
	}
	d := tree.New()
	ids := make([]int, n)
	var build func(v int) int
	build = func(v int) int {
		kids := make([]int, 0, len(children[v]))
		for _, c := range children[v] {
			kids = append(kids, build(c))
		}
		bag := append([]int{v}, later[v]...)
		ids[v] = d.AddNode(bag, kids...)
		return ids[v]
	}
	d.SetRoot(build(rootVertex))
	return d, nil
}

// Graph decomposes g with the given heuristic and returns a valid raw
// tree decomposition.
func Graph(g *graph.Graph, h Heuristic) (*tree.Decomposition, error) {
	return FromOrder(g, Order(g, h))
}

// Structure decomposes a τ-structure via its primal graph; the result is
// a valid tree decomposition of the structure (same bags cover all
// tuples, since every tuple induces a clique in the primal graph).
func Structure(st *structure.Structure, h Heuristic) (*tree.Decomposition, error) {
	return Graph(graph.Primal(st), h)
}

// BestOrder tries min-degree, min-fill and a few randomized restarts and
// returns the order achieving the smallest width.
func BestOrder(g *graph.Graph, restarts int, rng *rand.Rand) []int {
	best := Order(g, MinDegree)
	bestW := orderWidth(g, best)
	if o := Order(g, MinFill); orderWidth(g, o) < bestW {
		best, bestW = o, orderWidth(g, o)
	}
	for r := 0; r < restarts; r++ {
		o := randomizedMinFill(g, rng)
		if w := orderWidth(g, o); w < bestW {
			best, bestW = o, w
		}
	}
	return best
}

func randomizedMinFill(g *graph.Graph, rng *rand.Rand) []int {
	n := g.N()
	adj := make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		adj[v] = g.Neighbors(v).Clone()
	}
	alive := bitset.New(n)
	for v := 0; v < n; v++ {
		alive.Add(v)
	}
	order := make([]int, 0, n)
	for k := 0; k < n; k++ {
		// Pick uniformly among the 3 best fill-in scores.
		type cand struct{ v, score int }
		var cands []cand
		alive.ForEach(func(v int) bool {
			cands = append(cands, cand{v, fillIn(adj, alive, v)})
			return true
		})
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				if cands[j].score < cands[i].score {
					cands[i], cands[j] = cands[j], cands[i]
				}
			}
		}
		top := 3
		if len(cands) < top {
			top = len(cands)
		}
		best := cands[rng.Intn(top)].v
		order = append(order, best)
		nb := adj[best].Intersect(alive)
		nbs := nb.Elems()
		for i := 0; i < len(nbs); i++ {
			for j := i + 1; j < len(nbs); j++ {
				adj[nbs[i]].Add(nbs[j])
				adj[nbs[j]].Add(nbs[i])
			}
		}
		alive.Remove(best)
	}
	return order
}

func orderWidth(g *graph.Graph, order []int) int {
	d, err := FromOrder(g, order)
	if err != nil {
		return int(^uint(0) >> 1)
	}
	return d.Width()
}

// Package decompose constructs tree decompositions of graphs and
// τ-structures. The paper relies on Bodlaender's linear-time algorithm [3]
// as a black box; as documented in DESIGN.md we substitute the standard
// practical toolkit — elimination-order heuristics (min-degree, min-fill)
// plus an exact branch-and-bound for small graphs — since any valid
// decomposition of the stated width preserves all downstream behaviour.
//
// The heuristics run on an incremental eliminator: live adjacency sets are
// maintained under elimination (so a vertex's current neighborhood is one
// lookup, never an Intersect with the alive set), degrees and fill-in
// scores are updated only for the vertices whose neighborhood actually
// changed, and the next vertex comes off a lazy min-heap. This turns the
// seed's O(n²·d²) min-fill loop into one whose per-round cost is bounded
// by the size of the eliminated vertex's second neighborhood.
package decompose

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/stage"
	"repro/internal/structure"
	"repro/internal/tree"
)

// ctxCheckRounds is how many elimination rounds pass between context
// polls: frequent enough that a deadline fires within microseconds of
// work, rare enough to be invisible in profiles.
const ctxCheckRounds = 64

// Heuristic selects an elimination-order heuristic.
type Heuristic int

const (
	// MinDegree eliminates a vertex of minimum current degree.
	MinDegree Heuristic = iota
	// MinFill eliminates a vertex whose elimination adds the fewest
	// fill-in edges; slower but usually yields smaller width.
	MinFill
)

// scoreEntry is a lazy heap entry: stale entries (score no longer
// current, or vertex already eliminated) are discarded on pop.
type scoreEntry struct {
	score, v int
}

type scoreHeap []scoreEntry

func (h scoreHeap) Len() int { return len(h) }
func (h scoreHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	return h[i].v < h[j].v
}
func (h scoreHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *scoreHeap) Push(x any)        { *h = append(*h, x.(scoreEntry)) }
func (h *scoreHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *scoreHeap) push(e scoreEntry) { heap.Push(h, e) }

// eliminator maintains the fill graph of an elimination process
// incrementally. adj[v] is always the *live* neighborhood of v (eliminated
// vertices removed, fill edges added), deg[v] its cardinality, and — when
// scores are tracked — fill[v] the number of fill edges eliminating v
// would create right now.
type eliminator struct {
	n     int
	adj   []*bitset.Set
	alive *bitset.Set
	deg   []int

	h        Heuristic
	scored   bool // maintain fill/deg scores and the heap
	fill     []int
	heap     scoreHeap
	scratch  *bitset.Set
	dirty    *bitset.Set
	newEdges [][2]int
}

func newEliminator(g *graph.Graph, h Heuristic, scored bool) *eliminator {
	n := g.N()
	e := &eliminator{
		n:      n,
		adj:    make([]*bitset.Set, n),
		alive:  bitset.New(n),
		deg:    make([]int, n),
		h:      h,
		scored: scored,
	}
	for v := 0; v < n; v++ {
		e.adj[v] = g.Neighbors(v).Clone()
		e.adj[v].Remove(v) // drop self-loops defensively
		e.deg[v] = e.adj[v].Len()
		e.alive.Add(v)
	}
	if scored {
		e.scratch = bitset.New(n)
		e.dirty = bitset.New(n)
		e.heap = make(scoreHeap, 0, 2*n)
		if h == MinFill {
			e.fill = make([]int, n)
			for v := 0; v < n; v++ {
				e.fill[v] = e.fillOf(v)
			}
		}
		for v := 0; v < n; v++ {
			e.heap = append(e.heap, scoreEntry{e.score(v), v})
		}
		heap.Init(&e.heap)
	}
	return e
}

func (e *eliminator) score(v int) int {
	if e.h == MinFill {
		return e.fill[v]
	}
	return e.deg[v]
}

// fillOf counts the non-adjacent pairs inside v's live neighborhood by
// word-parallel intersection counting: for each live neighbor u, the
// neighbors of v NOT adjacent to u number deg(v) - 1 - |N(v) ∩ N(u)|
// (u itself excluded); summing double-counts each missing pair.
func (e *eliminator) fillOf(v int) int {
	d := e.deg[v]
	if d < 2 {
		return 0
	}
	nb := e.adj[v]
	missing := 0
	nb.ForEach(func(u int) bool {
		missing += d - 1 - nb.IntersectLen(e.adj[u])
		return true
	})
	return missing / 2
}

// popBest returns the live vertex of minimal current score (ties to the
// smallest vertex ID), discarding stale heap entries.
func (e *eliminator) popBest() int {
	for e.heap.Len() > 0 {
		top := heap.Pop(&e.heap).(scoreEntry)
		if e.alive.Has(top.v) && e.score(top.v) == top.score {
			return top.v
		}
	}
	return -1
}

// popCandidates pops up to k distinct live minimal-score vertices (in
// (score, v) order). The caller must push back the ones it keeps alive.
func (e *eliminator) popCandidates(k int) []scoreEntry {
	var out []scoreEntry
	seen := map[int]bool{}
	for e.heap.Len() > 0 && len(out) < k {
		top := heap.Pop(&e.heap).(scoreEntry)
		if !e.alive.Has(top.v) || e.score(top.v) != top.score || seen[top.v] {
			continue
		}
		seen[top.v] = true
		out = append(out, top)
	}
	return out
}

// eliminate removes v: its live neighborhood becomes a clique, degrees
// are adjusted in place, and (when scores are tracked) the fill scores of
// exactly the vertices whose neighborhood changed — v's neighbors plus
// the common neighbors of each new edge — are recomputed and re-pushed.
// It returns v's live neighborhood at elimination time.
func (e *eliminator) eliminate(v int) []int {
	nbs := e.adj[v].Elems()
	for _, u := range nbs {
		e.adj[u].Remove(v)
		e.deg[u]--
	}
	e.alive.Remove(v)
	e.newEdges = e.newEdges[:0]
	for i, a := range nbs {
		for j := i + 1; j < len(nbs); j++ {
			b := nbs[j]
			if !e.adj[a].Has(b) {
				e.adj[a].Add(b)
				e.adj[b].Add(a)
				e.deg[a]++
				e.deg[b]++
				e.newEdges = append(e.newEdges, [2]int{a, b})
			}
		}
	}
	if !e.scored {
		return nbs
	}
	if e.h == MinFill {
		e.dirty.Clear()
		for _, u := range nbs {
			e.dirty.Add(u)
		}
		for _, ne := range e.newEdges {
			e.scratch.CopyFrom(e.adj[ne[0]])
			e.scratch.IntersectWith(e.adj[ne[1]])
			e.dirty.UnionWith(e.scratch)
		}
		e.dirty.ForEach(func(u int) bool {
			e.fill[u] = e.fillOf(u)
			e.heap.push(scoreEntry{e.fill[u], u})
			return true
		})
	} else {
		// Degrees changed only inside N(v) (new edges join neighbors).
		for _, u := range nbs {
			e.heap.push(scoreEntry{e.deg[u], u})
		}
	}
	return nbs
}

// Order computes an elimination order of g using the given heuristic.
func Order(g *graph.Graph, h Heuristic) []int {
	order, _ := OrderCtx(context.Background(), g, h)
	return order
}

// OrderCtx is Order with cancellation support: the elimination loop
// polls ctx every ctxCheckRounds rounds and returns the context error
// wrapped in a *stage.Error tagged stage.Decompose.
func OrderCtx(ctx context.Context, g *graph.Graph, h Heuristic) ([]int, error) {
	n := g.N()
	e := newEliminator(g, h, true)
	order := make([]int, 0, n)
	for k := 0; k < n; k++ {
		if k%ctxCheckRounds == 0 {
			if err := ctx.Err(); err != nil {
				return nil, stage.Wrap(stage.Decompose, err)
			}
		}
		best := e.popBest()
		order = append(order, best)
		e.eliminate(best)
	}
	return order, nil
}

// FromOrder builds a tree decomposition of g from an elimination order
// using the standard fill-in construction. The returned decomposition is
// raw (no normal form) and valid for g.
func FromOrder(g *graph.Graph, order []int) (*tree.Decomposition, error) {
	return FromOrderCtx(context.Background(), g, order)
}

// FromOrderCtx is FromOrder with cancellation support: the elimination
// simulation polls ctx every ctxCheckRounds rounds (see OrderCtx).
func FromOrderCtx(ctx context.Context, g *graph.Graph, order []int) (*tree.Decomposition, error) {
	n := g.N()
	if n == 0 {
		d := tree.New()
		d.SetRoot(d.AddNode(nil))
		return d, nil
	}
	if len(order) != n {
		return nil, fmt.Errorf("decompose: order has %d entries for %d vertices", len(order), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range order {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("decompose: vertex %d out of range in order", v)
		}
		if pos[v] >= 0 {
			return nil, fmt.Errorf("decompose: vertex %d appears twice in order", v)
		}
		pos[v] = i
	}
	for v, p := range pos {
		if p < 0 {
			return nil, fmt.Errorf("decompose: vertex %d missing from order", v)
		}
	}

	// Simulate elimination to obtain, for each vertex, its set of later
	// neighbors in the fill graph.
	e := newEliminator(g, MinDegree, false)
	later := make([][]int, n) // later[v] = live neighbors at elimination time
	for k, v := range order {
		if k%ctxCheckRounds == 0 {
			if err := ctx.Err(); err != nil {
				return nil, stage.Wrap(stage.Decompose, err)
			}
		}
		later[v] = e.eliminate(v)
	}

	// Bag of v = {v} ∪ later(v). Parent bag: the bag of the earliest
	// eliminated vertex among later(v); vertices with no later neighbors
	// become component roots, chained under the last vertex's bag.
	parent := make([]int, n)
	for v := 0; v < n; v++ {
		parent[v] = -1
	}
	for _, v := range order {
		first := -1
		for _, u := range later[v] {
			if first < 0 || pos[u] < pos[first] {
				first = u
			}
		}
		parent[v] = first
	}
	rootVertex := order[n-1]
	for v := 0; v < n; v++ {
		if parent[v] < 0 && v != rootVertex {
			parent[v] = rootVertex // join forest components under one root
		}
	}

	children := make([][]int, n)
	for v := 0; v < n; v++ {
		if parent[v] >= 0 {
			children[parent[v]] = append(children[parent[v]], v)
		}
	}
	d := tree.New()
	ids := make([]int, n)
	var build func(v int) int
	build = func(v int) int {
		kids := make([]int, 0, len(children[v]))
		for _, c := range children[v] {
			kids = append(kids, build(c))
		}
		bag := append([]int{v}, later[v]...)
		ids[v] = d.AddNode(bag, kids...)
		return ids[v]
	}
	d.SetRoot(build(rootVertex))
	return d, nil
}

// Graph decomposes g with the given heuristic and returns a valid raw
// tree decomposition.
func Graph(g *graph.Graph, h Heuristic) (*tree.Decomposition, error) {
	return GraphCtx(context.Background(), g, h)
}

// GraphCtx is Graph with cancellation support (see OrderCtx).
func GraphCtx(ctx context.Context, g *graph.Graph, h Heuristic) (*tree.Decomposition, error) {
	order, err := OrderCtx(ctx, g, h)
	if err != nil {
		return nil, err
	}
	return FromOrderCtx(ctx, g, order)
}

// Structure decomposes a τ-structure via its primal graph; the result is
// a valid tree decomposition of the structure (same bags cover all
// tuples, since every tuple induces a clique in the primal graph).
func Structure(st *structure.Structure, h Heuristic) (*tree.Decomposition, error) {
	return StructureCtx(context.Background(), st, h)
}

// StructureCtx is Structure with cancellation support (see OrderCtx).
func StructureCtx(ctx context.Context, st *structure.Structure, h Heuristic) (*tree.Decomposition, error) {
	return GraphCtx(ctx, graph.Primal(st), h)
}

// BestOrder tries min-degree, min-fill and a few randomized restarts and
// returns the order achieving the smallest width.
func BestOrder(g *graph.Graph, restarts int, rng *rand.Rand) []int {
	best := Order(g, MinDegree)
	bestW := orderWidth(g, best)
	if o := Order(g, MinFill); orderWidth(g, o) < bestW {
		best, bestW = o, orderWidth(g, o)
	}
	for r := 0; r < restarts; r++ {
		o := randomizedMinFill(g, rng)
		if w := orderWidth(g, o); w < bestW {
			best, bestW = o, w
		}
	}
	return best
}

// randomizedMinFill eliminates a uniformly random vertex among the (up
// to) 3 best fill-in scores each round.
func randomizedMinFill(g *graph.Graph, rng *rand.Rand) []int {
	n := g.N()
	e := newEliminator(g, MinFill, true)
	order := make([]int, 0, n)
	for k := 0; k < n; k++ {
		cands := e.popCandidates(3)
		pick := rng.Intn(len(cands))
		for i, c := range cands {
			if i != pick {
				e.heap.push(c)
			}
		}
		best := cands[pick].v
		order = append(order, best)
		e.eliminate(best)
	}
	return order
}

func orderWidth(g *graph.Graph, order []int) int {
	d, err := FromOrder(g, order)
	if err != nil {
		return int(^uint(0) >> 1)
	}
	return d.Width()
}

package decompose

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/structure"
	"repro/internal/tree"
)

func TestKnownTreewidths(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path10", graph.Path(10), 1},
		{"cycle8", graph.Cycle(8), 2},
		{"K5", graph.Complete(5), 4},
		{"grid3x3", graph.Grid(3, 3), 3},
		{"grid2x5", graph.Grid(2, 5), 2},
		{"single", graph.New(1), 0},
		{"tree", graph.RandomTree(12, rand.New(rand.NewSource(1))), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Treewidth(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("Treewidth = %d, want %d", got, tc.want)
			}
			d, err := Exact(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.ValidateGraph(tc.g); err != nil {
				t.Fatalf("exact decomposition invalid: %v", err)
			}
			if d.Width() != tc.want {
				t.Fatalf("exact decomposition width = %d, want %d", d.Width(), tc.want)
			}
		})
	}
}

func TestExactRejectsLarge(t *testing.T) {
	if _, err := Treewidth(graph.Path(MaxExactVertices + 1)); err == nil {
		t.Fatal("exact search accepted a too-large graph")
	}
}

func TestHeuristicsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.PartialKTree(60, 3, 0.2, rng)
	for _, h := range []Heuristic{MinDegree, MinFill} {
		d, err := Graph(g, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.ValidateGraph(g); err != nil {
			t.Fatalf("heuristic %v invalid: %v", h, err)
		}
		if d.Width() < 3 {
			t.Fatalf("width %d below partial 3-tree possibility is suspicious", d.Width())
		}
	}
}

func TestHeuristicExactOnKTrees(t *testing.T) {
	// Min-fill recovers the exact width on full k-trees.
	rng := rand.New(rand.NewSource(9))
	for _, k := range []int{1, 2, 3} {
		g := graph.KTree(25, k, rng)
		d, err := Graph(g, MinFill)
		if err != nil {
			t.Fatal(err)
		}
		if d.Width() != k {
			t.Fatalf("min-fill width on %d-tree = %d", k, d.Width())
		}
	}
}

func TestStructureDecomposition(t *testing.T) {
	st := structure.MustParse(`
att(a). att(b). att(c). fd(f1). fd(f2).
lh(a,f1). lh(b,f1). rh(c,f1). lh(c,f2). rh(b,f2).
`, nil)
	d, err := Structure(st, MinFill)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(st); err != nil {
		t.Fatalf("structure decomposition invalid: %v", err)
	}
}

func TestFromOrderErrors(t *testing.T) {
	g := graph.Path(3)
	if _, err := FromOrder(g, []int{0, 1}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := FromOrder(g, []int{0, 1, 5}); err == nil {
		t.Fatal("out-of-range order accepted")
	}
	if _, err := FromOrder(g, []int{0, 0, 1}); err == nil {
		t.Fatal("duplicate order accepted")
	}
	d, err := FromOrder(graph.New(0), nil)
	if err != nil || d.Len() != 1 {
		t.Fatalf("empty graph: %v, len %d", err, d.Len())
	}
}

func TestLowerBound(t *testing.T) {
	if lb := LowerBoundMMD(graph.Complete(6)); lb != 5 {
		t.Fatalf("MMD(K6) = %d, want 5", lb)
	}
	if lb := LowerBoundMMD(graph.Path(10)); lb != 1 {
		t.Fatalf("MMD(path) = %d, want 1", lb)
	}
	if lb := LowerBoundMMD(graph.Grid(4, 4)); lb < 2 {
		t.Fatalf("MMD(grid4) = %d, want ≥ 2", lb)
	}
}

func TestBestOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.PartialKTree(30, 2, 0.3, rng)
	o := BestOrder(g, 4, rng)
	d, err := FromOrder(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ValidateGraph(g); err != nil {
		t.Fatal(err)
	}
}

// Property: any permutation yields a valid decomposition, the heuristics
// never beat the exact width, and MMD never exceeds it.
func TestQuickEliminationProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		g := graph.RandomTree(n, rng)
		for i := rng.Intn(2 * n); i > 0; i-- {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		perm := rng.Perm(n)
		d, err := FromOrder(g, perm)
		if err != nil || d.ValidateGraph(g) != nil {
			return false
		}
		exact, err := Treewidth(g)
		if err != nil {
			return false
		}
		if d.Width() < exact {
			return false
		}
		for _, h := range []Heuristic{MinDegree, MinFill} {
			hd, err := Graph(g, h)
			if err != nil || hd.ValidateGraph(g) != nil || hd.Width() < exact {
				return false
			}
		}
		return LowerBoundMMD(g) <= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}

// Property: normalized forms of heuristic decompositions remain valid.
func TestQuickNormalizeAfterDecompose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.PartialKTree(rng.Intn(15)+5, rng.Intn(3)+1, 0.2, rng)
		st := g.ToStructure()
		d, err := Structure(st, MinFill)
		if err != nil || d.Validate(st) != nil {
			return false
		}
		norm, err := tree.NormalizeTuple(d)
		if err != nil {
			return false
		}
		return tree.CheckTuple(norm, d.Width()) == nil && norm.Validate(st) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Fatal(err)
	}
}

// naiveOrder recomputes every score from scratch each round — the seed's
// O(n²·d²) reference semantics the incremental eliminator must reproduce
// exactly (including (score, vertex) tie-breaking).
func naiveOrder(g *graph.Graph, h Heuristic) []int {
	n := g.N()
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int]bool{}
		g.Neighbors(v).ForEach(func(u int) bool {
			if u != v {
				adj[v][u] = true
			}
			return true
		})
	}
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	score := func(v int) int {
		var nbs []int
		for u := range adj[v] {
			if alive[u] {
				nbs = append(nbs, u)
			}
		}
		if h == MinDegree {
			return len(nbs)
		}
		fill := 0
		for i, a := range nbs {
			for _, b := range nbs[i+1:] {
				if !adj[a][b] {
					fill++
				}
			}
		}
		return fill
	}
	order := make([]int, 0, n)
	for k := 0; k < n; k++ {
		best, bestScore := -1, 0
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			if s := score(v); best < 0 || s < bestScore {
				best, bestScore = v, s
			}
		}
		order = append(order, best)
		var nbs []int
		for u := range adj[best] {
			if alive[u] {
				nbs = append(nbs, u)
			}
		}
		for i, a := range nbs {
			for _, b := range nbs[i+1:] {
				adj[a][b] = true
				adj[b][a] = true
			}
		}
		alive[best] = false
	}
	return order
}

// TestQuickIncrementalMatchesNaive pins the incremental eliminator to the
// naive rescan reference on random graphs, for both heuristics.
func TestQuickIncrementalMatchesNaive(t *testing.T) {
	for _, h := range []Heuristic{MinDegree, MinFill} {
		h := h
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := rng.Intn(25) + 1
			g := graph.RandomTree(n, rng)
			for i := rng.Intn(2 * n); i > 0; i-- {
				g.AddEdge(rng.Intn(n), rng.Intn(n))
			}
			got := Order(g, h)
			want := naiveOrder(g, h)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(int64(17 + h)))}); err != nil {
			t.Fatalf("heuristic %v: %v", h, err)
		}
	}
}

// Decomposition repair: local maintenance of a raw tree decomposition
// under structure edits, the decompose-layer piece of the incremental
// pipeline (see DESIGN.md "Incremental evaluation"). A tuple retraction
// never invalidates a decomposition; an element addition becomes a fresh
// singleton leaf; a tuple insertion already covered by some bag is free;
// an uncovered binary insertion is repaired by widening the bags along
// the tree path between the two endpoints' occurrence subtrees. The
// repair falls back (returns an error) instead of degrading quality:
// when a widened bag would push the width beyond the original, or for
// an uncovered insertion over more than two distinct elements, callers
// re-run full elimination and record the fallback in the stage trace.
package decompose

import (
	"fmt"
	"sort"

	"repro/internal/faultinject"
	"repro/internal/stage"
	"repro/internal/structure"
	"repro/internal/tree"
)

// ErrRepairFallback marks edits a local repair cannot absorb; callers
// fall back to full re-elimination.
var ErrRepairFallback = fmt.Errorf("decompose: local repair not applicable")

// Repair returns a repaired copy of the raw decomposition d reflecting
// the given change-log suffix of st (st must already include the
// changes), together with the IDs — in the returned decomposition — of
// every node whose bag was modified or created. The input decomposition
// is never mutated. On fallback the error wraps ErrRepairFallback and
// the caller should re-run elimination from scratch; the width of the
// repaired decomposition never exceeds the original's.
func Repair(d *tree.Decomposition, st *structure.Structure, changes []structure.Change) (*tree.Decomposition, []int, error) {
	if err := faultinject.Check("decompose.repair"); err != nil {
		return nil, nil, stage.Wrap(stage.Decompose, err)
	}
	if len(d.Nodes) == 0 {
		return nil, nil, fmt.Errorf("%w: empty decomposition", ErrRepairFallback)
	}
	origWidth := d.Width()
	r := d.Clone()
	dirty := map[int]bool{}
	for _, c := range changes {
		switch c.Op {
		case structure.ElemAdded:
			// A singleton leaf anywhere preserves all three decomposition
			// conditions and never widens the tree.
			id := r.AddNode([]int{c.Tuple[0]})
			r.Nodes[id].Parent = r.Root
			r.Nodes[r.Root].Children = append(r.Nodes[r.Root].Children, id)
			dirty[id] = true
		case structure.TupleRemoved:
			// The decomposition stays valid (bags cover a superset of the
			// remaining tuples), but the fact vanished from the induced
			// subinstances: every bag holding the whole tuple is dirty.
			for _, v := range coveringNodes(r, c.Tuple) {
				dirty[v] = true
			}
		case structure.TupleAdded:
			elems := distinctElems(c.Tuple)
			if v := firstCovering(r, elems); v >= 0 {
				dirty[v] = true
				continue
			}
			if len(elems) != 2 {
				return nil, nil, fmt.Errorf("%w: uncovered insertion over %d distinct elements", ErrRepairFallback, len(elems))
			}
			widened, err := widenPath(r, elems[0], elems[1], origWidth)
			if err != nil {
				return nil, nil, err
			}
			for _, v := range widened {
				dirty[v] = true
			}
		}
	}
	out := make([]int, 0, len(dirty))
	for v := range dirty {
		out = append(out, v)
	}
	sort.Ints(out)
	return r, out, nil
}

func distinctElems(tuple []int) []int {
	out := tuple[:0:0]
	for _, e := range tuple {
		dup := false
		for _, o := range out {
			if o == e {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e)
		}
	}
	return out
}

// firstCovering returns some node whose bag contains all elems, or -1.
func firstCovering(d *tree.Decomposition, elems []int) int {
	for v := range d.Nodes {
		if bagHasAll(d.Nodes[v].Bag, elems) {
			return v
		}
	}
	return -1
}

// coveringNodes returns every node whose bag contains all of tuple.
func coveringNodes(d *tree.Decomposition, tuple []int) []int {
	elems := distinctElems(tuple)
	var out []int
	for v := range d.Nodes {
		if bagHasAll(d.Nodes[v].Bag, elems) {
			out = append(out, v)
		}
	}
	return out
}

func bagHasAll(bag, elems []int) bool {
	for _, e := range elems {
		found := false
		for _, b := range bag {
			if b == e {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// widenPath makes some bag contain both u and v by adding u to every bag
// on the shortest tree path from u's occurrence subtree to v's, keeping
// u's occurrences connected and creating one bag covering {u,v}. Bags
// are kept sorted (the raw-form invariant). Fails without mutating d
// beyond already-applied changes if any widened bag would exceed the
// original width.
func widenPath(d *tree.Decomposition, u, v, origWidth int) ([]int, error) {
	// Multi-source BFS from every node containing u to the nearest node
	// containing v, over the undirected tree adjacency.
	prev := make([]int, len(d.Nodes))
	inQueue := make([]bool, len(d.Nodes))
	var queue []int
	for i := range d.Nodes {
		prev[i] = -2
		if bagHasAll(d.Nodes[i].Bag, []int{u}) {
			prev[i] = -1
			inQueue[i] = true
			queue = append(queue, i)
		}
	}
	if len(queue) == 0 {
		return nil, fmt.Errorf("%w: element %d occurs in no bag", ErrRepairFallback, u)
	}
	goal := -1
	for head := 0; head < len(queue) && goal < 0; head++ {
		x := queue[head]
		if bagHasAll(d.Nodes[x].Bag, []int{v}) {
			goal = x
			break
		}
		neigh := append([]int(nil), d.Nodes[x].Children...)
		if p := d.Nodes[x].Parent; p >= 0 {
			neigh = append(neigh, p)
		}
		for _, y := range neigh {
			if !inQueue[y] {
				inQueue[y] = true
				prev[y] = x
				queue = append(queue, y)
			}
		}
	}
	if goal < 0 {
		return nil, fmt.Errorf("%w: element %d occurs in no bag", ErrRepairFallback, v)
	}
	// Walk back from the goal collecting the path, check the width bound
	// for every bag to widen, then apply — so a fallback never leaves a
	// half-widened path behind.
	var widened []int
	for x := goal; x >= 0; x = prev[x] {
		if bagHasAll(d.Nodes[x].Bag, []int{u}) {
			continue
		}
		if len(d.Nodes[x].Bag)+1 > origWidth+1 {
			return nil, fmt.Errorf("%w: widening bag %d would exceed width %d", ErrRepairFallback, x, origWidth)
		}
		widened = append(widened, x)
	}
	for _, x := range widened {
		d.Nodes[x].Bag = append(d.Nodes[x].Bag, u)
		sort.Ints(d.Nodes[x].Bag)
	}
	return widened, nil
}

package decompose

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/stage"
)

func ladderTestGraph() *graph.Graph {
	g := graph.New(8)
	for v := 1; v < 8; v++ {
		g.AddEdge(v-1, v)
	}
	g.AddEdge(0, 7)
	return g
}

func TestLadderTopRung(t *testing.T) {
	g := ladderTestGraph()
	d, rung, err := GraphLadderCtx(context.Background(), g)
	if err != nil {
		t.Fatalf("ladder: %v", err)
	}
	if rung != RungMinFill {
		t.Fatalf("rung = %q, want %q", rung, RungMinFill)
	}
	if err := d.ValidateGraph(g); err != nil {
		t.Fatalf("invalid decomposition: %v", err)
	}
}

func TestLadderFallsThroughRungs(t *testing.T) {
	g := ladderTestGraph()

	faultinject.Reset()
	defer faultinject.Reset()
	faultinject.FailAt("decompose."+RungMinFill, 1)
	d, rung, err := GraphLadderCtx(context.Background(), g)
	if err != nil {
		t.Fatalf("ladder after min-fill fault: %v", err)
	}
	if rung != RungMinDegree {
		t.Fatalf("rung = %q, want %q", rung, RungMinDegree)
	}
	if err := d.ValidateGraph(g); err != nil {
		t.Fatalf("invalid decomposition: %v", err)
	}

	faultinject.Reset()
	faultinject.FailAt("decompose."+RungMinFill, 1)
	faultinject.FailAt("decompose."+RungMinDegree, 1)
	d, rung, err = GraphLadderCtx(context.Background(), g)
	if err != nil {
		t.Fatalf("ladder after two faults: %v", err)
	}
	if rung != RungGreedyBFS {
		t.Fatalf("rung = %q, want %q", rung, RungGreedyBFS)
	}
	if err := d.ValidateGraph(g); err != nil {
		t.Fatalf("invalid decomposition: %v", err)
	}
}

func TestLadderAllRungsFail(t *testing.T) {
	g := ladderTestGraph()
	faultinject.Reset()
	defer faultinject.Reset()
	for _, r := range LadderRungs {
		faultinject.FailAlways("decompose." + r)
	}
	_, _, err := GraphLadderCtx(context.Background(), g)
	if err == nil {
		t.Fatal("ladder succeeded with every rung armed to fail")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	if stage.Of(err) != stage.Decompose {
		t.Fatalf("stage = %v, want Decompose", stage.Of(err))
	}
}

func TestLadderParentCancelStopsDescent(t *testing.T) {
	g := ladderTestGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := GraphLadderCtx(ctx, g)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stage.Of(err) != stage.Decompose {
		t.Fatalf("stage = %v, want Decompose", stage.Of(err))
	}
	// No rung must have been attempted: the parent was already dead.
	if pts := faultinject.PointsSeen(); len(pts) != 0 && faultinject.Armed() {
		t.Fatalf("rungs attempted under dead parent: %v", pts)
	}
}

func TestLadderContainsRungPanic(t *testing.T) {
	// A nil-order panic inside FromOrderCtx territory is hard to provoke
	// without breaking invariants; instead verify runRung's containment
	// directly with an order func that panics.
	g := ladderTestGraph()
	_, err := runRung(context.Background(), g, "test", func(context.Context) ([]int, error) {
		panic("heuristic bug")
	})
	var pe *stage.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *stage.PanicError", err)
	}
}

func TestGreedyBFSOrderValid(t *testing.T) {
	// Two components; order must cover both and yield a valid
	// decomposition.
	g := graph.New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	order, err := GreedyBFSOrderCtx(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 7 {
		t.Fatalf("order covers %d of 7 vertices", len(order))
	}
	d, err := FromOrder(g, order)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ValidateGraph(g); err != nil {
		t.Fatalf("invalid decomposition: %v", err)
	}
	// On a path forest the reverse-BFS order should keep width 1.
	if w := d.Width(); w > 1 {
		t.Fatalf("width %d on a path forest, want 1", w)
	}
}

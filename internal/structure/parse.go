package structure

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a structure from the fact-list text format:
//
//	% comment lines start with '%' (or '#')
//	dom a b c.          % optional: declares elements (needed for isolated ones)
//	edge(a, b).
//	edge(b, c).
//
// If sig is nil, the signature is inferred: each predicate gets the arity
// of its first occurrence, and later occurrences must agree. If sig is
// non-nil, all facts must use predicates of the signature with correct
// arity.
// Errors name the 1-based source line. A bug in the parser is recovered
// and returned as an error rather than escaping as a panic, so
// untrusted input can never crash a caller.
func Parse(src string, sig *Signature) (st *Structure, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("structure: internal parser error: %v", r)
		}
	}()
	type fact struct {
		pred string
		args []string
		line int
	}
	var facts []fact
	var domNames []string

	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		// A line may hold several period-terminated facts.
		for _, stmt := range splitStatements(line) {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if rest, ok := strings.CutPrefix(stmt, "dom "); ok {
				for _, n := range strings.Fields(rest) {
					if !validName(n) {
						return nil, fmt.Errorf("structure: line %d: malformed element name %q", lineNo+1, n)
					}
					domNames = append(domNames, n)
				}
				continue
			}
			if stmt == "dom" {
				continue
			}
			pred, args, err := parseAtom(stmt)
			if err != nil {
				return nil, fmt.Errorf("structure: line %d: %w", lineNo+1, err)
			}
			facts = append(facts, fact{pred, args, lineNo + 1})
		}
	}

	if sig == nil {
		arity := map[string]int{}
		var order []string
		for _, f := range facts {
			if a, seen := arity[f.pred]; seen {
				if a != len(f.args) {
					return nil, fmt.Errorf("structure: line %d: predicate %s used with arity %d and %d", f.line, f.pred, a, len(f.args))
				}
			} else {
				arity[f.pred] = len(f.args)
				order = append(order, f.pred)
			}
		}
		preds := make([]Predicate, len(order))
		for i, name := range order {
			preds[i] = Predicate{Name: name, Arity: arity[name]}
		}
		var err error
		if sig, err = NewSignature(preds...); err != nil {
			return nil, err
		}
	}

	st = New(sig)
	for _, n := range domNames {
		st.AddElem(n)
	}
	for _, f := range facts {
		if err := st.AddFact(f.pred, f.args...); err != nil {
			return nil, fmt.Errorf("structure: line %d: %w", f.line, err)
		}
	}
	return st, nil
}

// MustParse is Parse that panics on error; for tests and fixed examples.
func MustParse(src string, sig *Signature) *Structure {
	st, err := Parse(src, sig)
	if err != nil {
		panic(err)
	}
	return st
}

// splitStatements splits on '.' terminators that are outside parentheses.
func splitStatements(line string) []string {
	var out []string
	depth := 0
	start := 0
	for i, r := range line {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case '.':
			if depth == 0 {
				out = append(out, line[start:i])
				start = i + 1
			}
		}
	}
	if strings.TrimSpace(line[start:]) != "" {
		out = append(out, line[start:])
	}
	return out
}

// parseAtom parses "pred(a, b, c)" or a 0-ary "pred".
func parseAtom(s string) (pred string, args []string, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if !validName(s) {
			return "", nil, fmt.Errorf("malformed fact %q", s)
		}
		return s, nil, nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("missing ')' in fact %q", s)
	}
	pred = strings.TrimSpace(s[:open])
	if !validName(pred) {
		return "", nil, fmt.Errorf("malformed predicate name %q", pred)
	}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if inner == "" {
		return pred, nil, nil
	}
	for _, a := range strings.Split(inner, ",") {
		a = strings.TrimSpace(a)
		if !validName(a) {
			return "", nil, fmt.Errorf("malformed argument %q in fact %q", a, s)
		}
		args = append(args, a)
	}
	return pred, args, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' && r != '\'' {
			return false
		}
	}
	return true
}

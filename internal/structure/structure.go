// Package structure implements finite relational structures (τ-structures)
// as defined in Section 2.2 of the paper: a finite domain together with a
// relation for every predicate symbol of a signature τ.
//
// Elements are identified by dense integer IDs so that sets of elements can
// be represented as bit sets; every element also carries a human-readable
// name used by parsers, printers and error messages.
package structure

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitset"
)

// Predicate is a predicate symbol with its arity.
type Predicate struct {
	Name  string
	Arity int
}

// Signature is an ordered list of predicate symbols (a vocabulary τ).
type Signature struct {
	preds []Predicate
	index map[string]int
}

// NewSignature builds a signature from the given predicate symbols.
// Predicate names must be distinct.
func NewSignature(preds ...Predicate) (*Signature, error) {
	s := &Signature{index: make(map[string]int, len(preds))}
	for _, p := range preds {
		if p.Name == "" {
			return nil, fmt.Errorf("structure: empty predicate name")
		}
		if p.Arity < 0 {
			return nil, fmt.Errorf("structure: predicate %s has negative arity", p.Name)
		}
		if _, dup := s.index[p.Name]; dup {
			return nil, fmt.Errorf("structure: duplicate predicate %s", p.Name)
		}
		s.index[p.Name] = len(s.preds)
		s.preds = append(s.preds, p)
	}
	return s, nil
}

// MustSignature is NewSignature that panics on error; for tests and
// package-level variables describing fixed vocabularies.
func MustSignature(preds ...Predicate) *Signature {
	s, err := NewSignature(preds...)
	if err != nil {
		panic(err)
	}
	return s
}

// Predicates returns the predicate symbols in declaration order.
func (s *Signature) Predicates() []Predicate { return s.preds }

// Lookup returns the index and definition of the named predicate.
func (s *Signature) Lookup(name string) (int, Predicate, bool) {
	i, ok := s.index[name]
	if !ok {
		return -1, Predicate{}, false
	}
	return i, s.preds[i], true
}

// Arity returns the arity of the named predicate, or -1 if unknown.
func (s *Signature) Arity(name string) int {
	if i, ok := s.index[name]; ok {
		return s.preds[i].Arity
	}
	return -1
}

// Extend returns a new signature with the additional predicates appended.
func (s *Signature) Extend(preds ...Predicate) (*Signature, error) {
	all := make([]Predicate, 0, len(s.preds)+len(preds))
	all = append(all, s.preds...)
	all = append(all, preds...)
	return NewSignature(all...)
}

// ChangeOp classifies one entry of a structure's change-log.
type ChangeOp int

const (
	// ElemAdded records a new domain element; Tuple holds its ID.
	ElemAdded ChangeOp = iota
	// TupleAdded records an inserted fact.
	TupleAdded
	// TupleRemoved records a retracted fact.
	TupleRemoved
)

func (op ChangeOp) String() string {
	switch op {
	case ElemAdded:
		return "elem+"
	case TupleAdded:
		return "tuple+"
	case TupleRemoved:
		return "tuple-"
	}
	return fmt.Sprintf("ChangeOp(%d)", int(op))
}

// Change is one entry of the change-log: an element addition or a fact
// insert/retract. Tuple must not be modified by consumers.
type Change struct {
	Op    ChangeOp
	Pred  string // empty for ElemAdded
	Tuple []int  // element IDs; for ElemAdded, Tuple[0] is the new ID
}

// maxLog bounds the in-memory change-log; when exceeded the oldest half
// is trimmed and ChangesSince for pre-trim revisions reports !ok,
// forcing consumers to fall back to wholesale re-derivation.
const maxLog = 1 << 16

// Structure is a finite τ-structure: a domain of named elements plus one
// relation per predicate of the signature.
//
// Mutation contract: a Structure is NOT safe for concurrent mutation, or
// for mutation concurrent with reads. Layers that cache artifacts keyed
// on structure content (session.Session in particular) require all edits
// after binding to go through their serialized entry point
// (Session.Mutate); direct AddElem/AddTuple/RemoveTuple calls on a bound
// structure race with in-flight builds. Every successful mutation
// advances Rev() and appends to the change-log so downstream layers can
// maintain artifacts by delta instead of rebuilding from the new
// fingerprint.
type Structure struct {
	sig    *Signature
	names  []string
	byName map[string]int
	rels   [][][]int        // rels[p] = list of tuples (element IDs)
	relSet []map[string]int // relSet[p] = tupleKey → index into rels[p]

	rev     uint64   // count of successful mutations since creation
	log     []Change // suffix of the change history; log[i] produced rev logBase+i+1
	logBase uint64   // revision preceding log[0]
}

// New returns an empty structure over the given signature.
func New(sig *Signature) *Structure {
	st := &Structure{
		sig:    sig,
		byName: make(map[string]int),
		rels:   make([][][]int, len(sig.preds)),
		relSet: make([]map[string]int, len(sig.preds)),
	}
	for i := range st.relSet {
		st.relSet[i] = make(map[string]int)
	}
	return st
}

// Rev returns the structure's revision: the number of successful
// mutations (element additions, tuple inserts, tuple retractions) since
// creation. Deduplicated re-inserts and failed mutations do not advance
// the revision.
func (st *Structure) Rev() uint64 { return st.rev }

// ChangesSince returns the changes that advanced the structure from
// revision rev to the current revision, oldest first. ok is false when
// rev is in the future or predates the retained log window (the log is
// bounded; see maxLog) — consumers must then treat the structure as
// wholly changed. The returned slice and its tuples must not be
// modified.
func (st *Structure) ChangesSince(rev uint64) (changes []Change, ok bool) {
	if rev > st.rev || rev < st.logBase {
		return nil, false
	}
	return st.log[rev-st.logBase:], true
}

func (st *Structure) record(c Change) {
	st.rev++
	if len(st.log) >= maxLog {
		half := len(st.log) / 2
		st.logBase += uint64(half)
		st.log = append(st.log[:0], st.log[half:]...)
	}
	st.log = append(st.log, c)
}

// Sig returns the structure's signature.
func (st *Structure) Sig() *Signature { return st.sig }

// Size returns the number of domain elements.
func (st *Structure) Size() int { return len(st.names) }

// AddElem adds a fresh element with the given name and returns its ID.
// Adding an existing name returns the existing ID.
func (st *Structure) AddElem(name string) int {
	if id, ok := st.byName[name]; ok {
		return id
	}
	id := len(st.names)
	st.names = append(st.names, name)
	st.byName[name] = id
	st.record(Change{Op: ElemAdded, Tuple: []int{id}})
	return id
}

// Name returns the name of element id.
func (st *Structure) Name(id int) string {
	if id < 0 || id >= len(st.names) {
		return fmt.Sprintf("#%d", id)
	}
	return st.names[id]
}

// Names translates a tuple of element IDs to their names.
func (st *Structure) Names(tuple []int) []string {
	out := make([]string, len(tuple))
	for i, e := range tuple {
		out[i] = st.Name(e)
	}
	return out
}

// Elem returns the ID of the named element.
func (st *Structure) Elem(name string) (int, bool) {
	id, ok := st.byName[name]
	return id, ok
}

// Dom returns all element IDs (0..Size-1) as a slice.
func (st *Structure) Dom() []int {
	out := make([]int, len(st.names))
	for i := range out {
		out[i] = i
	}
	return out
}

// DomSet returns the domain as a bit set.
func (st *Structure) DomSet() *bitset.Set {
	s := bitset.New(len(st.names))
	for i := range st.names {
		s.Add(i)
	}
	return s
}

func tupleKey(tuple []int) string {
	var b strings.Builder
	for i, e := range tuple {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(e))
	}
	return b.String()
}

// AddTuple inserts a tuple into the relation of the named predicate.
// All elements must already exist in the domain.
func (st *Structure) AddTuple(pred string, tuple ...int) error {
	pi, p, ok := st.sig.Lookup(pred)
	if !ok {
		return fmt.Errorf("structure: unknown predicate %s", pred)
	}
	if len(tuple) != p.Arity {
		return fmt.Errorf("structure: %s expects %d arguments, got %d", pred, p.Arity, len(tuple))
	}
	for _, e := range tuple {
		if e < 0 || e >= len(st.names) {
			return fmt.Errorf("structure: element %d out of range in %s tuple", e, pred)
		}
	}
	key := tupleKey(tuple)
	if _, dup := st.relSet[pi][key]; dup {
		return nil
	}
	cp := make([]int, len(tuple))
	copy(cp, tuple)
	st.relSet[pi][key] = len(st.rels[pi])
	st.rels[pi] = append(st.rels[pi], cp)
	st.record(Change{Op: TupleAdded, Pred: pred, Tuple: cp})
	return nil
}

// RemoveTuple retracts a tuple from the relation of the named predicate,
// reporting whether it was present. Removing an absent tuple (or one
// over an unknown predicate) is a no-op and does not advance Rev. The
// relation's stored tuple order is not preserved (swap-remove), so the
// content fingerprint after remove+re-add generally differs from the
// original even though the structures are equal as sets of facts.
func (st *Structure) RemoveTuple(pred string, tuple ...int) bool {
	pi, _, ok := st.sig.Lookup(pred)
	if !ok {
		return false
	}
	key := tupleKey(tuple)
	idx, present := st.relSet[pi][key]
	if !present {
		return false
	}
	removed := st.rels[pi][idx]
	last := len(st.rels[pi]) - 1
	if idx != last {
		moved := st.rels[pi][last]
		st.rels[pi][idx] = moved
		st.relSet[pi][tupleKey(moved)] = idx
	}
	st.rels[pi][last] = nil
	st.rels[pi] = st.rels[pi][:last]
	delete(st.relSet[pi], key)
	st.record(Change{Op: TupleRemoved, Pred: pred, Tuple: removed})
	return true
}

// RemoveFact is RemoveTuple given element names; unknown names report
// false (such a tuple cannot be present).
func (st *Structure) RemoveFact(pred string, names ...string) bool {
	tuple := make([]int, len(names))
	for i, n := range names {
		id, ok := st.byName[n]
		if !ok {
			return false
		}
		tuple[i] = id
	}
	return st.RemoveTuple(pred, tuple...)
}

// MustAddTuple is AddTuple that panics on error.
func (st *Structure) MustAddTuple(pred string, tuple ...int) {
	if err := st.AddTuple(pred, tuple...); err != nil {
		panic(err)
	}
}

// AddFact adds a tuple given element names, creating elements as needed.
func (st *Structure) AddFact(pred string, names ...string) error {
	tuple := make([]int, len(names))
	for i, n := range names {
		tuple[i] = st.AddElem(n)
	}
	return st.AddTuple(pred, tuple...)
}

// Has reports whether the tuple is in the relation of pred.
func (st *Structure) Has(pred string, tuple ...int) bool {
	pi, _, ok := st.sig.Lookup(pred)
	if !ok {
		return false
	}
	_, in := st.relSet[pi][tupleKey(tuple)]
	return in
}

// HasIdx is Has by predicate index (hot path for evaluators).
func (st *Structure) HasIdx(pi int, tuple []int) bool {
	_, in := st.relSet[pi][tupleKey(tuple)]
	return in
}

// Tuples returns the tuples of the named predicate. The returned slice
// must not be modified.
func (st *Structure) Tuples(pred string) [][]int {
	pi, _, ok := st.sig.Lookup(pred)
	if !ok {
		return nil
	}
	return st.rels[pi]
}

// TuplesIdx returns the tuples of the predicate with the given index.
func (st *Structure) TuplesIdx(pi int) [][]int { return st.rels[pi] }

// NumTuples returns the total number of tuples across all relations.
func (st *Structure) NumTuples() int {
	n := 0
	for _, r := range st.rels {
		n += len(r)
	}
	return n
}

// Induced returns the substructure induced by the given element set, along
// with the mapping from old element IDs to new ones. Element names are
// preserved. This implements the I(A, S, s) construction of Definition 3.2
// (the distinguished tuple is handled by the caller via the mapping).
func (st *Structure) Induced(elems *bitset.Set) (*Structure, map[int]int) {
	sub := New(st.sig)
	oldToNew := make(map[int]int, elems.Len())
	elems.ForEach(func(e int) bool {
		if e < len(st.names) {
			oldToNew[e] = sub.AddElem(st.names[e])
		}
		return true
	})
	for pi := range st.rels {
		name := st.sig.preds[pi].Name
		for _, tuple := range st.rels[pi] {
			inside := true
			for _, e := range tuple {
				if !elems.Has(e) {
					inside = false
					break
				}
			}
			if !inside {
				continue
			}
			mapped := make([]int, len(tuple))
			for i, e := range tuple {
				mapped[i] = oldToNew[e]
			}
			// Tuples of an existing structure are always valid in the image.
			if err := sub.AddTuple(name, mapped...); err != nil {
				panic(err)
			}
		}
	}
	return sub, oldToNew
}

// Clone returns a deep copy of the structure, including its revision
// counter and retained change-log window.
func (st *Structure) Clone() *Structure {
	c := New(st.sig)
	c.names = append([]string(nil), st.names...)
	for n, id := range st.byName {
		c.byName[n] = id
	}
	for pi, tuples := range st.rels {
		for i, t := range tuples {
			cp := make([]int, len(t))
			copy(cp, t)
			c.rels[pi] = append(c.rels[pi], cp)
			c.relSet[pi][tupleKey(t)] = i
		}
	}
	c.rev = st.rev
	c.logBase = st.logBase
	c.log = append([]Change(nil), st.log...)
	return c
}

// AtomicTypeKey returns a canonical key describing which relations hold
// among the positions of the given tuple — the "equivalence of bags"
// relation of Definition 3.4 extended with the equality pattern of the
// tuple. Two tuples ā, b̄ satisfy ā ≡ b̄ (Def. 3.4) over their structures
// iff their AtomicTypeKeys coincide.
func (st *Structure) AtomicTypeKey(tuple []int) string {
	var b strings.Builder
	// Equality pattern between positions.
	for i := range tuple {
		for j := i + 1; j < len(tuple); j++ {
			if tuple[i] == tuple[j] {
				fmt.Fprintf(&b, "=%d.%d;", i, j)
			}
		}
	}
	for pi, p := range st.sig.preds {
		args := make([]int, p.Arity)
		var rec func(pos int)
		rec = func(pos int) {
			if pos == p.Arity {
				actual := make([]int, p.Arity)
				for i, idx := range args {
					actual[i] = tuple[idx]
				}
				if st.HasIdx(pi, actual) {
					fmt.Fprintf(&b, "%d(", pi)
					for i, idx := range args {
						if i > 0 {
							b.WriteByte(',')
						}
						fmt.Fprintf(&b, "%d", idx)
					}
					b.WriteString(");")
				}
				return
			}
			for idx := range tuple {
				args[pos] = idx
				rec(pos + 1)
			}
		}
		rec(0)
	}
	return b.String()
}

// String renders the structure in the fact-list text format accepted by
// Parse, with elements and tuples in deterministic order.
func (st *Structure) String() string {
	var b strings.Builder
	b.WriteString("dom")
	for _, n := range st.names {
		b.WriteByte(' ')
		b.WriteString(n)
	}
	b.WriteString(".\n")
	for pi, p := range st.sig.preds {
		lines := make([]string, 0, len(st.rels[pi]))
		for _, t := range st.rels[pi] {
			lines = append(lines, fmt.Sprintf("%s(%s).", p.Name, strings.Join(st.Names(t), ",")))
		}
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

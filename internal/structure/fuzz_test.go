package structure

import "testing"

// FuzzParse checks the fact-list parser never panics and accepted inputs
// survive a print/reparse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"e(a,b). e(b,c).",
		"dom x y.\nflag. p(x).",
		"% comment\natt(a).",
		"e(a,b",
		"e(a,,b).",
		"dom.",
		"p(). q.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src, nil)
		if err != nil {
			return
		}
		st2, err := Parse(st.String(), st.Sig())
		if err != nil {
			t.Fatalf("reparse failed: %v\noriginal: %q\nprinted: %q", err, src, st.String())
		}
		if st2.Size() != st.Size() || st2.NumTuples() != st.NumTuples() {
			t.Fatalf("round trip changed structure for %q", src)
		}
	})
}

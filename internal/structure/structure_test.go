package structure

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func TestSignature(t *testing.T) {
	sig, err := NewSignature(Predicate{"e", 2}, Predicate{"v", 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := sig.Arity("e"); got != 2 {
		t.Fatalf("Arity(e) = %d", got)
	}
	if got := sig.Arity("nope"); got != -1 {
		t.Fatalf("Arity(nope) = %d", got)
	}
	i, p, ok := sig.Lookup("v")
	if !ok || i != 1 || p.Arity != 1 {
		t.Fatalf("Lookup(v) = %d,%v,%v", i, p, ok)
	}
	if _, err := NewSignature(Predicate{"e", 2}, Predicate{"e", 1}); err == nil {
		t.Fatal("duplicate predicate accepted")
	}
	if _, err := NewSignature(Predicate{"", 0}); err == nil {
		t.Fatal("empty predicate name accepted")
	}
	if _, err := NewSignature(Predicate{"p", -1}); err == nil {
		t.Fatal("negative arity accepted")
	}
	ext, err := sig.Extend(Predicate{"root", 1})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Arity("root") != 1 || ext.Arity("e") != 2 {
		t.Fatal("Extend lost predicates")
	}
}

func TestAddAndQuery(t *testing.T) {
	sig := MustSignature(Predicate{"e", 2})
	st := New(sig)
	a := st.AddElem("a")
	b := st.AddElem("b")
	if again := st.AddElem("a"); again != a {
		t.Fatal("AddElem not idempotent")
	}
	if err := st.AddTuple("e", a, b); err != nil {
		t.Fatal(err)
	}
	if err := st.AddTuple("e", a, b); err != nil { // duplicate is a no-op
		t.Fatal(err)
	}
	if len(st.Tuples("e")) != 1 {
		t.Fatal("duplicate tuple stored twice")
	}
	if !st.Has("e", a, b) || st.Has("e", b, a) {
		t.Fatal("Has wrong")
	}
	if st.Has("nope", a) {
		t.Fatal("Has on unknown predicate")
	}
	if err := st.AddTuple("e", a); err == nil {
		t.Fatal("arity violation accepted")
	}
	if err := st.AddTuple("e", a, 99); err == nil {
		t.Fatal("out-of-range element accepted")
	}
	if err := st.AddTuple("nope", a, b); err == nil {
		t.Fatal("unknown predicate accepted")
	}
	if st.NumTuples() != 1 || st.Size() != 2 {
		t.Fatal("NumTuples/Size wrong")
	}
}

// runningExample builds the τ-structure of Example 2.2: schema
// R = abcdeg, F = {f1: ab→c, f2: c→b, f3: cd→e, f4: de→g, f5: g→e}.
func runningExample(t *testing.T) *Structure {
	t.Helper()
	src := `
% Example 2.2
att(a). att(b). att(c). att(d). att(e). att(g).
fd(f1). fd(f2). fd(f3). fd(f4). fd(f5).
lh(a,f1). lh(b,f1). lh(c,f2). lh(c,f3). lh(d,f3). lh(d,f4). lh(e,f4). lh(g,f5).
rh(c,f1). rh(b,f2). rh(e,f3). rh(g,f4). rh(e,f5).
`
	st, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRunningExample(t *testing.T) {
	st := runningExample(t)
	if st.Size() != 11 { // 6 attributes + 5 FDs
		t.Fatalf("Size = %d, want 11", st.Size())
	}
	if got := len(st.Tuples("lh")); got != 8 {
		t.Fatalf("|lh| = %d, want 8", got)
	}
	if got := len(st.Tuples("rh")); got != 5 {
		t.Fatalf("|rh| = %d, want 5", got)
	}
	c, _ := st.Elem("c")
	f1, _ := st.Elem("f1")
	if !st.Has("rh", c, f1) {
		t.Fatal("rh(c,f1) missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"e(a,b",         // missing paren
		"e(a,,b).",      // empty arg
		"(a).",          // empty predicate
		"e(a). e(a,b).", // inconsistent arity (inferred)
		"e%(a).",        // bad name
	}
	for _, src := range cases {
		if _, err := Parse(src, nil); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
	// With fixed signature: unknown predicate and wrong arity rejected.
	sig := MustSignature(Predicate{"e", 2})
	if _, err := Parse("f(a).", sig); err == nil {
		t.Error("unknown predicate accepted under fixed signature")
	}
	if _, err := Parse("e(a).", sig); err == nil {
		t.Error("wrong arity accepted under fixed signature")
	}
}

func TestParseZeroAryAndDom(t *testing.T) {
	st, err := Parse("dom x y.\nflag. p(x).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 2 {
		t.Fatalf("Size = %d, want 2", st.Size())
	}
	if !st.Has("flag") {
		t.Fatal("0-ary fact missing")
	}
	if _, ok := st.Elem("y"); !ok {
		t.Fatal("isolated dom element missing")
	}
}

func TestRoundTrip(t *testing.T) {
	st := runningExample(t)
	st2, err := Parse(st.String(), st.Sig())
	if err != nil {
		t.Fatal(err)
	}
	if st2.Size() != st.Size() || st2.NumTuples() != st.NumTuples() {
		t.Fatal("round trip changed size")
	}
	for _, p := range st.Sig().Predicates() {
		for _, tup := range st.Tuples(p.Name) {
			mapped := make([]int, len(tup))
			for i, e := range tup {
				id, ok := st2.Elem(st.Name(e))
				if !ok {
					t.Fatalf("element %s lost", st.Name(e))
				}
				mapped[i] = id
			}
			if !st2.Has(p.Name, mapped...) {
				t.Fatalf("tuple %s(%v) lost", p.Name, st.Names(tup))
			}
		}
	}
}

func TestInduced(t *testing.T) {
	st := runningExample(t)
	b, _ := st.Elem("b")
	c, _ := st.Elem("c")
	f1, _ := st.Elem("f1")
	f2, _ := st.Elem("f2")
	sub, m := st.Induced(bitset.FromSlice([]int{b, c, f1, f2}))
	if sub.Size() != 4 {
		t.Fatalf("induced size = %d", sub.Size())
	}
	// lh(b,f1), lh(c,f2), rh(c,f1), rh(b,f2) survive; lh(a,f1) does not.
	if got := len(sub.Tuples("lh")); got != 2 {
		t.Fatalf("|lh| induced = %d, want 2", got)
	}
	if got := len(sub.Tuples("rh")); got != 2 {
		t.Fatalf("|rh| induced = %d, want 2", got)
	}
	if !sub.Has("lh", m[b], m[f1]) {
		t.Fatal("lh(b,f1) missing in induced substructure")
	}
	if sub.Name(m[b]) != "b" {
		t.Fatal("names not preserved")
	}
}

func TestAtomicTypeKey(t *testing.T) {
	sig := MustSignature(Predicate{"e", 2})
	a := New(sig)
	x, y := a.AddElem("x"), a.AddElem("y")
	a.MustAddTuple("e", x, y)

	b := New(sig)
	u, v := b.AddElem("u"), b.AddElem("v")
	b.MustAddTuple("e", u, v)

	if a.AtomicTypeKey([]int{x, y}) != b.AtomicTypeKey([]int{u, v}) {
		t.Fatal("isomorphic tuples have different atomic type keys")
	}
	if a.AtomicTypeKey([]int{x, y}) == a.AtomicTypeKey([]int{y, x}) {
		t.Fatal("reversed edge has same atomic type key")
	}
	// Equality pattern matters.
	if a.AtomicTypeKey([]int{x, x}) == a.AtomicTypeKey([]int{x, y}) {
		t.Fatal("equality pattern ignored")
	}
}

func TestCloneIndependent(t *testing.T) {
	st := runningExample(t)
	c := st.Clone()
	c.AddFact("att", "zz")
	if _, ok := st.Elem("zz"); ok {
		t.Fatal("Clone shares domain")
	}
	if c.NumTuples() != st.NumTuples()+1 {
		t.Fatal("Clone tuple count wrong")
	}
}

// Property: parsing the printed form of a random structure is lossless.
func TestQuickRoundTrip(t *testing.T) {
	sig := MustSignature(Predicate{"e", 2}, Predicate{"v", 1})
	f := func(edges [][2]uint8, marks []uint8) bool {
		st := New(sig)
		for i := 0; i < 6; i++ {
			st.AddElem("n" + string(rune('a'+i)))
		}
		for _, e := range edges {
			st.MustAddTuple("e", int(e[0])%6, int(e[1])%6)
		}
		for _, m := range marks {
			st.MustAddTuple("v", int(m)%6)
		}
		st2, err := Parse(st.String(), sig)
		if err != nil {
			return false
		}
		return st2.String() == st.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestStringDeterministic(t *testing.T) {
	st := runningExample(t)
	if st.String() != st.String() {
		t.Fatal("String not deterministic")
	}
	if !strings.Contains(st.String(), "lh(a,f1).") {
		t.Fatal("String missing fact")
	}
}

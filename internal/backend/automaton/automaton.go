// Package automaton names the paper's Theorem 4.4/4.5 pipeline — MSO
// k-type enumeration compiled to quasi-guarded monadic datalog — as a
// core.Backend. The implementation lives inside internal/core (the
// pipeline predates the seam, and core's dispatchers must reach it
// without an import cycle); this package is its addressable home in the
// backend tree, mirroring backend/game.
package automaton

import "repro/internal/core"

// Name is the backend's registry identifier; it doubles as
// core.DefaultBackend.
const Name = core.DefaultBackend

// Backend returns the registered automaton backend.
func Backend() core.Backend {
	b, err := core.BackendByName(Name)
	if err != nil {
		// The automaton backend self-registers from core's init; failing
		// to resolve it is a wiring bug, not a runtime condition.
		panic(err)
	}
	return b
}

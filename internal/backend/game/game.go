// Package game implements the game-theoretic MSO backend after
// Kneis–Langer–Rossmanith ("Courcelle's Theorem — A Game-Theoretic
// Approach"): instead of enumerating all MSO k-types up front and
// compiling them to datalog (the automaton backend, Theorems 4.4/4.5),
// it explores the model-checking game lazily over the nice tree
// decomposition.
//
// The central object is the behavior: a hash-consed game position
// recording, for a structure with a distinguished tuple and chosen
// sets, the atomic facts over the tuple plus — up to the remaining
// quantifier rank — the behaviors reachable by one point move (to a
// tuple element, or to some element outside the tuple) or one set move.
// Behaviors of subtrees are computed bottom-up along the decomposition:
// leaves and introduce nodes by brute force over the bag (at most w+1
// elements), branch and introduce nodes by synchronized composition,
// forget nodes by projecting the position out of the tuple. Because
// behaviors are interned, isomorphic subgames collapse; the memo table
// is keyed by (decomposition node, subformula, interpretation) at the
// evaluation layer and by the behavior's canonical serialization at the
// exploration layer.
//
// The backend never materializes the type space, so it is metered by
// Budget.MaxGamePositions (positions interned) rather than MaxStates —
// on formulas whose type count blows past MaxStates, the game backend
// routinely completes within a modest position budget. Fault injection
// points: "game.expand" (each behavior expansion) and "game.memo" (each
// new interned position). All errors are stage-tagged stage.Game except
// decomposition failures, which keep stage.Decompose.
package game

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/mso"
	"repro/internal/stage"
	"repro/internal/structure"
	"repro/internal/tree"
)

// Name is the backend's registry identifier.
const Name = "game"

type backend struct{}

func init() { core.RegisterBackend(backend{}) }

// Backend returns the registered game backend.
func Backend() core.Backend { return backend{} }

func (backend) Name() string { return Name }

// CompileCtx fails: the game backend evaluates lazily and materializes
// no datalog program. Compile with the automaton backend instead.
func (backend) CompileCtx(ctx context.Context, sig *structure.Signature, phi *mso.Formula, xVar string, opts core.Options) (*core.Compiled, error) {
	return nil, fmt.Errorf("game: backend evaluates lazily and has no compiled datalog form (compile with the automaton backend)")
}

// RunCtx evaluates phi over st: decompose via the degradation ladder,
// normalize to nice form, then explore the model-checking game.
func (backend) RunCtx(ctx context.Context, st *structure.Structure, phi *mso.Formula, xVar string, opts core.Options) (res *core.Result, err error) {
	defer stage.RecoverTo(stage.Game, &err)
	trace := &stage.Trace{}
	start := time.Now()
	d, rung, err := decompose.StructureLadderCtx(ctx, st)
	if err != nil {
		return nil, stage.Wrap(stage.Decompose, err)
	}
	trace.RecordDetail(stage.Decompose, time.Since(start), d.Len(), false, rung)
	return run(ctx, st, d, phi, xVar, opts, trace)
}

// RunWithDecompositionCtx is RunCtx with a caller-provided (raw, valid)
// tree decomposition.
func (backend) RunWithDecompositionCtx(ctx context.Context, st *structure.Structure, d *tree.Decomposition, phi *mso.Formula, xVar string, opts core.Options) (res *core.Result, err error) {
	defer stage.RecoverTo(stage.Game, &err)
	return run(ctx, st, d, phi, xVar, opts, &stage.Trace{})
}

// EvalNiceCtx implements core.NiceBackend: evaluate directly on an
// already-normalized nice decomposition (the session layer's cached
// artifact), recording the game stat on the caller's trace.
func (backend) EvalNiceCtx(ctx context.Context, st *structure.Structure, nice *tree.Decomposition, phi *mso.Formula, xVar string, opts core.Options, trace *stage.Trace) (res *core.Result, err error) {
	defer stage.RecoverTo(stage.Game, &err)
	return evalNice(ctx, st, nice, phi, xVar, opts, trace)
}

func run(ctx context.Context, st *structure.Structure, d *tree.Decomposition, phi *mso.Formula, xVar string, opts core.Options, trace *stage.Trace) (*core.Result, error) {
	if err := d.Validate(st); err != nil {
		return nil, fmt.Errorf("game: invalid decomposition: %w", err)
	}
	start := time.Now()
	nice, err := tree.NormalizeNiceCtx(ctx, d, tree.NiceOptions{})
	if err != nil {
		return nil, stage.Wrap(stage.NormalizeNice, err)
	}
	trace.Record(stage.NormalizeNice, time.Since(start), nice.Len(), false)
	if opts.RequestedWidth != nil && *opts.RequestedWidth != nice.Width() {
		return nil, fmt.Errorf("game: decomposition width %d does not match requested width %d", nice.Width(), *opts.RequestedWidth)
	}
	return evalNice(ctx, st, nice, phi, xVar, opts, trace)
}

func evalNice(ctx context.Context, st *structure.Structure, nice *tree.Decomposition, phi *mso.Formula, xVar string, opts core.Options, trace *stage.Trace) (*core.Result, error) {
	elems, sets := phi.FreeVars()
	if len(sets) > 0 {
		return nil, fmt.Errorf("game: free set variables %v not supported", sets)
	}
	if opts.Decision {
		if len(elems) != 0 {
			return nil, fmt.Errorf("game: decision variant requires a sentence, got free variables %v", elems)
		}
	} else if len(elems) != 1 || elems[0] != xVar {
		return nil, fmt.Errorf("game: expected exactly the free variable %q, got %v", xVar, elems)
	}
	q := phi.QuantifierDepth()
	if opts.QuantifierDepth > q {
		q = opts.QuantifierDepth
	}
	e := newEvaluator(ctx, st, nice, q)
	e.indexFormula(phi)
	start := time.Now()
	res := &core.Result{Width: nice.Width(), TDNodes: nice.Len(), Trace: trace}
	if opts.Decision {
		id, _, err := e.walk(nice.Root, -1)
		if err != nil {
			return nil, stage.Wrap(stage.Game, err)
		}
		holds, err := e.eval(id, phi, map[string]int{})
		if err != nil {
			return nil, stage.Wrap(stage.Game, err)
		}
		res.Holds = holds
	} else {
		res.Selected = bitset.New(st.Size())
		for a := 0; a < st.Size(); a++ {
			id, tuple, err := e.walk(nice.Root, a)
			if err != nil {
				return nil, stage.Wrap(stage.Game, err)
			}
			idx := indexOf(tuple, a)
			if idx < 0 {
				return nil, stage.Wrap(stage.Game, fmt.Errorf("game: internal: pinned element %d missing from root tuple", a))
			}
			sel, err := e.eval(id, phi, map[string]int{xVar: idx})
			if err != nil {
				return nil, stage.Wrap(stage.Game, err)
			}
			if sel {
				res.Selected.Add(a)
			}
		}
	}
	trace.RecordDetail(stage.Game, time.Since(start), len(e.nodes), false,
		fmt.Sprintf("positions=%d", len(e.nodes)))
	return res, nil
}

package game

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitset"
	"repro/internal/mso"
	"repro/internal/stage"
	"repro/internal/structure"
	"repro/internal/tree"
)

// evaluator holds the shared state of one game evaluation: the interned
// behavior table plus every memo layer. All tables are shared across
// the per-element pins of a unary query, which is what keeps the query
// loop from re-exploring unaffected subtrees.
type evaluator struct {
	ctx    context.Context
	st     *structure.Structure
	nice   *tree.Decomposition
	q      int // rank: max(formula depth, opts.QuantifierDepth)
	budget *stage.Budget
	sig    *structure.Signature
	preds  []structure.Predicate

	nodes []*behavior    // interned behaviors by id
	ids   map[string]int // canonical serialization → id

	directMemo  map[string]int
	composeMemo map[string]int
	truncMemo   map[int]int
	projMemo    map[[2]int]int

	walkMemo map[walkKey]walkRes
	evalMemo map[evalKey]bool
	fidx     map[*mso.Formula]int

	subtree []*bitset.Set // per decomposition node: elements in its subtree's bags

	steps   int
	scratch []byte
}

type walkKey struct{ v, pin int }

type walkRes struct {
	id    int
	elems []int // tuple elements in position order
}

type evalKey struct {
	id  int
	f   int
	env string
}

func newEvaluator(ctx context.Context, st *structure.Structure, nice *tree.Decomposition, q int) *evaluator {
	e := &evaluator{
		ctx:         ctx,
		st:          st,
		nice:        nice,
		q:           q,
		budget:      stage.BudgetFrom(ctx),
		sig:         st.Sig(),
		preds:       st.Sig().Predicates(),
		ids:         map[string]int{},
		directMemo:  map[string]int{},
		composeMemo: map[string]int{},
		truncMemo:   map[int]int{},
		projMemo:    map[[2]int]int{},
		walkMemo:    map[walkKey]walkRes{},
		evalMemo:    map[evalKey]bool{},
		fidx:        map[*mso.Formula]int{},
		scratch:     make([]byte, 0, 256),
	}
	// Subtree element sets, bottom-up: they decide whether a pin can
	// affect a subtree's walk, so pin-independent subtrees share one
	// memo entry across all pins.
	e.subtree = make([]*bitset.Set, nice.Len())
	for _, v := range nice.PostOrder() {
		s := bitset.New(st.Size())
		for _, el := range nice.Nodes[v].Bag {
			s.Add(el)
		}
		for _, c := range nice.Nodes[v].Children {
			s.UnionWith(e.subtree[c])
		}
		e.subtree[v] = s
	}
	return e
}

func (e *evaluator) indexFormula(f *mso.Formula) {
	if _, ok := e.fidx[f]; ok {
		return
	}
	e.fidx[f] = len(e.fidx)
	for _, s := range f.Sub {
		e.indexFormula(s)
	}
}

// walk computes the behavior of the structure induced by node v's
// subtree, with the subtree's bag-and-pin elements as the distinguished
// tuple. pin names one element that must survive forget nodes (so a
// unary query can be read off at the root), or -1. The returned slice
// lists the tuple's elements in position order and must not be
// modified.
func (e *evaluator) walk(v, pin int) (int, []int, error) {
	if pin >= 0 && !e.subtree[v].Has(pin) {
		// The pin cannot occur below v, so the walk is pin-independent;
		// normalizing the key shares the result across all such pins.
		pin = -1
	}
	key := walkKey{v, pin}
	if r, ok := e.walkMemo[key]; ok {
		return r.id, r.elems, nil
	}
	n := &e.nice.Nodes[v]
	var id int
	var elems []int
	switch n.Kind {
	case tree.KindLeaf:
		tuple := append([]int(nil), n.Bag...)
		sort.Ints(tuple)
		var err error
		id, err = e.direct(tuple, nil, e.q)
		if err != nil {
			return 0, nil, err
		}
		elems = tuple

	case tree.KindCopy:
		var err error
		id, elems, err = e.walk(n.Children[0], pin)
		if err != nil {
			return 0, nil, err
		}

	case tree.KindIntroduce:
		cid, celems, err := e.walk(n.Children[0], pin)
		if err != nil {
			return 0, nil, err
		}
		local := append([]int(nil), n.Bag...)
		sort.Ints(local)
		lid, err := e.direct(local, nil, e.q)
		if err != nil {
			return 0, nil, err
		}
		// Shared elements are exactly the child's bag: the introduced
		// element cannot occur below (connectedness), and the child's
		// pinned extras cannot occur in this bag.
		pm := make([]posPair, 0, len(celems)+1)
		for i, el := range celems {
			pm = append(pm, posPair{i, indexOf(local, el)})
		}
		pm = append(pm, posPair{-1, indexOf(local, n.Elem)})
		id, err = e.compose(cid, lid, pm)
		if err != nil {
			return 0, nil, err
		}
		elems = append(append([]int(nil), celems...), n.Elem)

	case tree.KindForget:
		cid, celems, err := e.walk(n.Children[0], pin)
		if err != nil {
			return 0, nil, err
		}
		if n.Elem == pin {
			id, elems = cid, celems
			break
		}
		p := indexOf(celems, n.Elem)
		if p < 0 {
			return 0, nil, fmt.Errorf("game: internal: forget of element %d absent from tuple", n.Elem)
		}
		id, err = e.project(cid, p)
		if err != nil {
			return 0, nil, err
		}
		elems = append(append([]int(nil), celems[:p]...), celems[p+1:]...)

	case tree.KindBranch:
		lid, lel, err := e.walk(n.Children[0], pin)
		if err != nil {
			return 0, nil, err
		}
		rid, rel, err := e.walk(n.Children[1], pin)
		if err != nil {
			return 0, nil, err
		}
		// Shared elements are exactly this bag (both children's bags
		// equal it); a pinned element in one subtree is private to that
		// side unless it sits in the bag itself.
		pm := make([]posPair, 0, len(lel)+len(rel))
		elems = append([]int(nil), lel...)
		for i, el := range lel {
			pm = append(pm, posPair{i, indexOf(rel, el)})
		}
		for j, el := range rel {
			if indexOf(lel, el) < 0 {
				pm = append(pm, posPair{-1, j})
				elems = append(elems, el)
			}
		}
		id, err = e.compose(lid, rid, pm)
		if err != nil {
			return 0, nil, err
		}

	default:
		return 0, nil, fmt.Errorf("game: node %d has kind %v: decomposition is not in nice form", v, n.Kind)
	}
	e.walkMemo[key] = walkRes{id: id, elems: elems}
	return id, elems, nil
}

// eval decides formula f on behavior id under env, which binds element
// variables to tuple positions and set variables to set indices. This
// is the ISSUE's game-position memo table: results are memoized on
// (behavior, subformula, interpretation).
func (e *evaluator) eval(id int, f *mso.Formula, env map[string]int) (bool, error) {
	if err := e.poll(); err != nil {
		return false, err
	}
	key := evalKey{id: id, f: e.fidx[f], env: envKey(env)}
	if v, ok := e.evalMemo[key]; ok {
		return v, nil
	}
	b := e.nodes[id]
	var out bool
	switch f.Kind {
	case mso.KTrue:
		out = true
	case mso.KFalse:
		out = false
	case mso.KAtom:
		pi, p, ok := e.sig.Lookup(f.Pred)
		if !ok {
			return false, fmt.Errorf("game: unknown predicate %q", f.Pred)
		}
		if len(f.Args) != p.Arity {
			return false, fmt.Errorf("game: predicate %q wants %d arguments, got %d", f.Pred, p.Arity, len(f.Args))
		}
		flat := 0
		for _, a := range f.Args {
			pos, bound := env[a]
			if !bound {
				return false, fmt.Errorf("game: unbound element variable %q", a)
			}
			flat = flat*b.m + pos
		}
		out = b.rels[pi][flat]
	case mso.KEq:
		xi, okx := env[f.X]
		yi, oky := env[f.Y]
		if !okx || !oky {
			return false, fmt.Errorf("game: unbound element variable in %s = %s", f.X, f.Y)
		}
		out = b.eq[xi*b.m+yi]
	case mso.KIn:
		xi, okx := env[f.X]
		si, oks := env[f.Y]
		if !okx || !oks {
			return false, fmt.Errorf("game: unbound variable in %s in %s", f.X, f.Y)
		}
		out = b.mems[si]&(1<<uint(xi)) != 0
	case mso.KNot:
		v, err := e.eval(id, f.Sub[0], env)
		if err != nil {
			return false, err
		}
		out = !v
	case mso.KAnd, mso.KOr:
		stop := f.Kind == mso.KOr // short-circuit value
		out = !stop
		for _, s := range f.Sub {
			v, err := e.eval(id, s, env)
			if err != nil {
				return false, err
			}
			if v == stop {
				out = stop
				break
			}
		}
	case mso.KImpl:
		a, err := e.eval(id, f.Sub[0], env)
		if err != nil {
			return false, err
		}
		if !a {
			out = true
			break
		}
		out, err = e.eval(id, f.Sub[1], env)
		if err != nil {
			return false, err
		}
	case mso.KIff:
		a, err := e.eval(id, f.Sub[0], env)
		if err != nil {
			return false, err
		}
		c, err := e.eval(id, f.Sub[1], env)
		if err != nil {
			return false, err
		}
		out = a == c
	case mso.KExistsE, mso.KForallE:
		if b.rank == 0 {
			return false, fmt.Errorf("game: internal: quantifier at rank 0")
		}
		forall := f.Kind == mso.KForallE
		out = forall
		// The bound variable lands on the child's appended position,
		// index b.m; existing bindings keep their indices.
		candidates := b.pointAt
		for _, lst := range [][]int{candidates, b.pointNew} {
			for _, c := range lst {
				env2 := cloneEnv(env)
				env2[f.Var] = b.m
				v, err := e.eval(c, f.Sub[0], env2)
				if err != nil {
					return false, err
				}
				if v != forall {
					out = v
					goto done
				}
			}
		}
	case mso.KExistsS, mso.KForallS:
		if b.rank == 0 {
			return false, fmt.Errorf("game: internal: quantifier at rank 0")
		}
		forall := f.Kind == mso.KForallS
		out = forall
		for _, c := range b.sets {
			env2 := cloneEnv(env)
			env2[f.Var] = b.nsets
			v, err := e.eval(c, f.Sub[0], env2)
			if err != nil {
				return false, err
			}
			if v != forall {
				out = v
				break
			}
		}
	default:
		return false, fmt.Errorf("game: unsupported formula kind %d", f.Kind)
	}
done:
	e.evalMemo[key] = out
	return out, nil
}

func cloneEnv(env map[string]int) map[string]int {
	out := make(map[string]int, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	return out
}

func envKey(env map[string]int) string {
	if len(env) == 0 {
		return ""
	}
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(env[k]))
		sb.WriteByte(';')
	}
	return sb.String()
}

package game

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/mso"
	"repro/internal/structure"
	"repro/internal/tree"
)

// randColored builds an n-element structure over {c/1} alone. The
// differential suite pairs it with explicit partial-k-tree
// decompositions: the primal graph of a unary signature is empty, so
// the decomposition — not the relations — sets the width both backends
// must process, which is what lets the suite reach widths 3 and 4
// (where a binary EDB would blow the automaton's MaxEDBSubsets).
func randColored(rng *rand.Rand, n int) *structure.Structure {
	sig := structure.MustSignature(structure.Predicate{Name: "c", Arity: 1})
	st := structure.New(sig)
	for i := 0; i < n; i++ {
		st.AddElem(fmt.Sprintf("v%d", i))
		if rng.Intn(2) == 0 {
			st.MustAddTuple("c", i)
		}
	}
	return st
}

// ktreeDecomposition decomposes a random partial k-tree on st's
// elements, giving a valid width-≤k decomposition of st.
func ktreeDecomposition(t *testing.T, ctx context.Context, rng *rand.Rand, st *structure.Structure, k int) *decomposeResult {
	t.Helper()
	g := graph.PartialKTree(st.Size(), k, 0.2, rng)
	d, rung, err := decompose.GraphLadderCtx(ctx, g)
	if err != nil {
		t.Fatalf("decompose partial %d-tree: %v", k, err)
	}
	if err := d.Validate(st); err != nil {
		t.Fatalf("decomposition invalid for structure: %v", err)
	}
	return &decomposeResult{d: d, rung: rung}
}

type decomposeResult struct {
	d    *tree.Decomposition
	rung string
}

// The formula tiers are calibrated to the automaton backend's cost
// growth in width: quantifier rank 1 costs ~50ms at width 2 but several
// seconds at width 4, so higher widths run the rank-0 tier only.
var (
	diffRank0Queries = []string{"c(x)", "~c(x)"}
	diffRank1Query   = "c(x) & exists y ~c(y)"
	diffRank1Sent    = "exists x c(x)"
)

// TestBackendDifferentialPartialKTrees is the cold differential suite:
// 50 random partial k-trees at widths 2–4, every point evaluated by the
// automaton backend and the game backend through the same explicit
// decomposition, answers compared exactly.
func TestBackendDifferentialPartialKTrees(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(23))
	tiers := []struct {
		k          int
		structures int
		rank1Every int // run the rank-1 tier on every m-th structure (0 = never)
	}{
		{k: 2, structures: 20, rank1Every: 1},
		{k: 3, structures: 15, rank1Every: 5},
		{k: 4, structures: 15, rank1Every: 0},
	}
	total := 0
	for _, tier := range tiers {
		for s := 0; s < tier.structures; s++ {
			total++
			n := 6 + rng.Intn(9)
			st := randColored(rng, n)
			dr := ktreeDecomposition(t, ctx, rng, st, tier.k)
			queries := append([]string(nil), diffRank0Queries...)
			var sentences []string
			if tier.rank1Every > 0 && s%tier.rank1Every == 0 {
				queries = append(queries, diffRank1Query)
				sentences = append(sentences, diffRank1Sent)
			}
			for _, q := range queries {
				phi := mso.MustParse(q)
				ares, err := core.RunWithDecompositionCtx(ctx, st, dr.d, phi, "x", core.Options{})
				if err != nil {
					t.Fatalf("k=%d s=%d (%s) automaton %q: %v", tier.k, s, dr.rung, q, err)
				}
				gres, err := core.RunWithDecompositionCtx(ctx, st, dr.d, phi, "x", core.Options{Backend: Name})
				if err != nil {
					t.Fatalf("k=%d s=%d (%s) game %q: %v", tier.k, s, dr.rung, q, err)
				}
				if !ares.Selected.Equal(gres.Selected) {
					t.Fatalf("k=%d s=%d %q: automaton %v, game %v", tier.k, s, q, ares.Selected, gres.Selected)
				}
			}
			for _, snt := range sentences {
				phi := mso.MustParse(snt)
				ares, err := core.RunWithDecompositionCtx(ctx, st, dr.d, phi, "", core.Options{Decision: true})
				if err != nil {
					t.Fatalf("k=%d s=%d automaton sentence %q: %v", tier.k, s, snt, err)
				}
				gres, err := core.RunWithDecompositionCtx(ctx, st, dr.d, phi, "", core.Options{Decision: true, Backend: Name})
				if err != nil {
					t.Fatalf("k=%d s=%d game sentence %q: %v", tier.k, s, snt, err)
				}
				if ares.Holds != gres.Holds {
					t.Fatalf("k=%d s=%d sentence %q: automaton %v, game %v", tier.k, s, snt, ares.Holds, gres.Holds)
				}
			}
		}
	}
	if total < 50 {
		t.Fatalf("differential suite covered %d structures, want ≥ 50", total)
	}
}

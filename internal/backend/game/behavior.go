package game

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/faultinject"
)

// behavior is a hash-consed game position: the rank-limited
// model-checking behavior of a structure with a distinguished tuple of
// m (not necessarily distinct) elements and nsets chosen sets. The
// atomic layer records everything quantifier-free formulas can observe
// on the tuple; the child layers record, down to the remaining rank,
// which behaviors one more quantifier move can reach. Two subgames with
// equal behaviors are indistinguishable by any MSO formula of
// quantifier depth ≤ rank, which is what makes interning sound.
type behavior struct {
	rank  int // remaining quantifier moves
	m     int // tuple length
	nsets int // sets chosen so far (== len(mems))

	eq   []bool   // m×m: tuple[i] == tuple[j], row-major
	rels [][]bool // per signature predicate: m^arity truth table, odometer order
	mems []uint64 // per chosen set: membership bitmask over tuple positions

	// Children exist only at rank > 0; all have rank-1.
	pointAt  []int // per position i: behavior after pointing at tuple[i] (tuple grows to m+1)
	pointNew []int // behaviors after pointing at some element equal to NO tuple element; sorted, deduped
	sets     []int // behaviors after choosing one more set; sorted, deduped
}

// posPair maps one combined tuple position onto the operand positions
// of a composition: x/y are positions in the left/right behavior, -1
// when the element is private to the other side. Shared elements are
// always both-mapped — the invariant composition soundness rests on.
type posPair struct{ x, y int }

// serialize renders the behavior canonically. Children are referenced
// by interned id, so equal serializations mean equal behavior trees
// (hash-consing: children are always interned before their parent).
func (b *behavior) serialize(buf []byte) []byte {
	buf = binary.AppendVarint(buf, int64(b.rank))
	buf = binary.AppendVarint(buf, int64(b.m))
	buf = binary.AppendVarint(buf, int64(b.nsets))
	for _, v := range b.eq {
		buf = append(buf, boolByte(v))
	}
	buf = binary.AppendVarint(buf, int64(len(b.rels)))
	for _, tab := range b.rels {
		buf = binary.AppendVarint(buf, int64(len(tab)))
		for _, v := range tab {
			buf = append(buf, boolByte(v))
		}
	}
	for _, m := range b.mems {
		buf = binary.AppendUvarint(buf, m)
	}
	for _, c := range b.pointAt {
		buf = binary.AppendVarint(buf, int64(c))
	}
	buf = binary.AppendVarint(buf, int64(len(b.pointNew)))
	for _, c := range b.pointNew {
		buf = binary.AppendVarint(buf, int64(c))
	}
	buf = binary.AppendVarint(buf, int64(len(b.sets)))
	for _, c := range b.sets {
		buf = binary.AppendVarint(buf, int64(c))
	}
	return buf
}

// atomicKey serializes only the quantifier-free layer plus rank — the
// full determinant of a brute-forced behavior (see direct).
func (b *behavior) atomicKey(buf []byte) []byte {
	buf = binary.AppendVarint(buf, int64(b.rank))
	buf = binary.AppendVarint(buf, int64(b.m))
	buf = binary.AppendVarint(buf, int64(b.nsets))
	for _, v := range b.eq {
		buf = append(buf, boolByte(v))
	}
	for _, tab := range b.rels {
		for _, v := range tab {
			buf = append(buf, boolByte(v))
		}
	}
	for _, m := range b.mems {
		buf = binary.AppendUvarint(buf, m)
	}
	return buf
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// intern returns the canonical id of b, charging the game-positions
// budget (and the game.memo fault point) for each genuinely new
// position.
func (e *evaluator) intern(b *behavior) (int, error) {
	key := string(b.serialize(e.scratch[:0]))
	if id, ok := e.ids[key]; ok {
		return id, nil
	}
	if err := faultinject.Check("game.memo"); err != nil {
		return 0, err
	}
	if err := e.budget.AddGamePositions(1); err != nil {
		return 0, err
	}
	id := len(e.nodes)
	e.nodes = append(e.nodes, b)
	e.ids[key] = id
	return id, nil
}

// expand gates every behavior construction: context poll, fault point.
func (e *evaluator) expand() error {
	if err := e.poll(); err != nil {
		return err
	}
	return faultinject.Check("game.expand")
}

func (e *evaluator) poll() error {
	e.steps++
	if e.steps&255 == 0 {
		if err := e.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// direct brute-forces the behavior of the structure induced by the
// (distinct elements of the) tuple — used at leaves and introduce
// nodes, where the domain is one bag of at most w+1 elements. mems
// gives the membership masks of the sets already chosen. Because the
// whole domain sits in the tuple, pointNew is always empty here.
func (e *evaluator) direct(tuple []int, mems []uint64, rank int) (int, error) {
	if err := e.expand(); err != nil {
		return 0, err
	}
	m := len(tuple)
	b := &behavior{rank: rank, m: m, nsets: len(mems), mems: append([]uint64(nil), mems...)}
	b.eq = make([]bool, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			b.eq[i*m+j] = tuple[i] == tuple[j]
		}
	}
	b.rels = make([][]bool, len(e.preds))
	for pi, p := range e.preds {
		size := ipow(m, p.Arity)
		tab := make([]bool, size)
		idx := make([]int, p.Arity)
		args := make([]int, p.Arity)
		for flat := 0; flat < size; flat++ {
			for i := range idx {
				args[i] = tuple[idx[i]]
			}
			tab[flat] = e.st.HasIdx(pi, args)
			odometer(idx, m)
		}
		b.rels[pi] = tab
	}
	key := string(b.atomicKey(e.scratch[:0]))
	if id, ok := e.directMemo[key]; ok {
		return id, nil
	}
	if rank > 0 {
		// Point moves. Every domain element equals some tuple element, so
		// all point moves land in pointAt and pointNew stays empty.
		b.pointAt = make([]int, m)
		for i := 0; i < m; i++ {
			cm := make([]uint64, len(mems))
			for s, mask := range mems {
				cm[s] = mask
				if mask&(1<<uint(i)) != 0 {
					cm[s] |= 1 << uint(m)
				}
			}
			ct := make([]int, m+1)
			copy(ct, tuple)
			ct[m] = tuple[i]
			cid, err := e.direct(ct, cm, rank-1)
			if err != nil {
				return 0, err
			}
			b.pointAt[i] = cid
		}
		// Set moves: one child per subset of the domain. Enumerate over
		// representative positions (first occurrence of each element) and
		// expand each choice to a full position mask.
		var reps []int
		seen := map[int]int{}
		for i, el := range tuple {
			if _, ok := seen[el]; !ok {
				seen[el] = i
				reps = append(reps, i)
			}
		}
		var setChildren []int
		for mask := 0; mask < 1<<uint(len(reps)); mask++ {
			var pmask uint64
			for i, el := range tuple {
				ri := 0
				for k, r := range reps {
					if tuple[r] == el {
						ri = k
						break
					}
				}
				if mask&(1<<uint(ri)) != 0 {
					pmask |= 1 << uint(i)
				}
			}
			cm := append(append([]uint64(nil), mems...), pmask)
			cid, err := e.direct(tuple, cm, rank-1)
			if err != nil {
				return 0, err
			}
			setChildren = append(setChildren, cid)
		}
		b.sets = dedupSorted(setChildren)
	}
	id, err := e.intern(b)
	if err != nil {
		return 0, err
	}
	e.directMemo[key] = id
	return id, nil
}

// compose glues the behaviors of two structures that overlap exactly in
// their shared tuple elements (both-mapped positions of pm). Soundness
// rests on two consequences of tree-decomposition connectivity: no
// relation tuple spans both private sides, and elements private to one
// side never equal elements private to the other.
func (e *evaluator) compose(x, y int, pm []posPair) (int, error) {
	if err := e.expand(); err != nil {
		return 0, err
	}
	key := composeKey(x, y, pm)
	if id, ok := e.composeMemo[key]; ok {
		return id, nil
	}
	bx, by := e.nodes[x], e.nodes[y]
	if bx.rank != by.rank || bx.nsets != by.nsets {
		return 0, fmt.Errorf("game: internal: compose rank/nsets mismatch (%d/%d vs %d/%d)", bx.rank, bx.nsets, by.rank, by.nsets)
	}
	m := len(pm)
	b := &behavior{rank: bx.rank, m: m, nsets: bx.nsets}
	b.eq = make([]bool, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			switch {
			case pm[i].x >= 0 && pm[j].x >= 0:
				b.eq[i*m+j] = bx.eq[pm[i].x*bx.m+pm[j].x]
			case pm[i].y >= 0 && pm[j].y >= 0:
				b.eq[i*m+j] = by.eq[pm[i].y*by.m+pm[j].y]
			}
		}
	}
	b.rels = make([][]bool, len(e.preds))
	for pi, p := range e.preds {
		size := ipow(m, p.Arity)
		tab := make([]bool, size)
		idx := make([]int, p.Arity)
		for flat := 0; flat < size; flat++ {
			allX, allY := true, true
			for _, pos := range idx {
				if pm[pos].x < 0 {
					allX = false
				}
				if pm[pos].y < 0 {
					allY = false
				}
			}
			if allX {
				sub := 0
				for _, pos := range idx {
					sub = sub*bx.m + pm[pos].x
				}
				tab[flat] = bx.rels[pi][sub]
			} else if allY {
				sub := 0
				for _, pos := range idx {
					sub = sub*by.m + pm[pos].y
				}
				tab[flat] = by.rels[pi][sub]
			}
			odometer(idx, m)
		}
		b.rels[pi] = tab
	}
	b.mems = make([]uint64, b.nsets)
	for s := 0; s < b.nsets; s++ {
		for i, pp := range pm {
			var bit bool
			if pp.x >= 0 {
				bit = bx.mems[s]&(1<<uint(pp.x)) != 0
			} else {
				bit = by.mems[s]&(1<<uint(pp.y)) != 0
			}
			if bit {
				b.mems[s] |= 1 << uint(i)
			}
		}
	}
	if b.rank > 0 {
		// Point moves at an existing position: both sides advance when the
		// element is shared; a side blind to the element loses one rank
		// (truncate) and leaves the new position unmapped on its side.
		b.pointAt = make([]int, m)
		for i, pp := range pm {
			var cid int
			var err error
			switch {
			case pp.x >= 0 && pp.y >= 0:
				cpm := append(append([]posPair(nil), pm...), posPair{bx.m, by.m})
				cid, err = e.compose(bx.pointAt[pp.x], by.pointAt[pp.y], cpm)
			case pp.x >= 0:
				ty, terr := e.truncate(y)
				if terr != nil {
					return 0, terr
				}
				cpm := append(append([]posPair(nil), pm...), posPair{bx.m, -1})
				cid, err = e.compose(bx.pointAt[pp.x], ty, cpm)
			default:
				tx, terr := e.truncate(x)
				if terr != nil {
					return 0, terr
				}
				cpm := append(append([]posPair(nil), pm...), posPair{-1, by.m})
				cid, err = e.compose(tx, by.pointAt[pp.y], cpm)
			}
			if err != nil {
				return 0, err
			}
			b.pointAt[i] = cid
		}
		// Point moves to fresh elements: private to one side, invisible to
		// the other.
		var fresh []int
		for _, cx := range bx.pointNew {
			ty, err := e.truncate(y)
			if err != nil {
				return 0, err
			}
			cpm := append(append([]posPair(nil), pm...), posPair{bx.m, -1})
			cid, err := e.compose(cx, ty, cpm)
			if err != nil {
				return 0, err
			}
			fresh = append(fresh, cid)
		}
		for _, cy := range by.pointNew {
			tx, err := e.truncate(x)
			if err != nil {
				return 0, err
			}
			cpm := append(append([]posPair(nil), pm...), posPair{-1, by.m})
			cid, err := e.compose(tx, cy, cpm)
			if err != nil {
				return 0, err
			}
			fresh = append(fresh, cid)
		}
		b.pointNew = dedupSorted(fresh)
		// Set moves: any pair of side-local set choices agreeing on the
		// shared positions glues to a combined set — membership on tuple
		// positions is pinned by the behaviors, and shared elements are
		// always tuple positions, so agreement on both-mapped bits is
		// exactly agreement on the shared elements.
		var setChildren []int
		for _, cxid := range bx.sets {
			cx := e.nodes[cxid]
			for _, cyid := range by.sets {
				cy := e.nodes[cyid]
				ok := true
				for _, pp := range pm {
					if pp.x < 0 || pp.y < 0 {
						continue
					}
					if (cx.mems[b.nsets]&(1<<uint(pp.x)) != 0) != (cy.mems[b.nsets]&(1<<uint(pp.y)) != 0) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				cid, err := e.compose(cxid, cyid, pm)
				if err != nil {
					return 0, err
				}
				setChildren = append(setChildren, cid)
			}
		}
		b.sets = dedupSorted(setChildren)
	}
	id, err := e.intern(b)
	if err != nil {
		return 0, err
	}
	e.composeMemo[key] = id
	return id, nil
}

// truncate lowers a behavior's rank by one: same atomic layer, children
// truncated in turn (none at the new rank 0). Composition uses it when
// one side cannot see a move the other side makes.
func (e *evaluator) truncate(id int) (int, error) {
	if v, ok := e.truncMemo[id]; ok {
		return v, nil
	}
	b := e.nodes[id]
	if b.rank == 0 {
		return 0, fmt.Errorf("game: internal: truncate at rank 0")
	}
	nb := &behavior{rank: b.rank - 1, m: b.m, nsets: b.nsets, eq: b.eq, rels: b.rels, mems: b.mems}
	if nb.rank > 0 {
		nb.pointAt = make([]int, b.m)
		for i, c := range b.pointAt {
			tc, err := e.truncate(c)
			if err != nil {
				return 0, err
			}
			nb.pointAt[i] = tc
		}
		var err error
		if nb.pointNew, err = e.truncateAll(b.pointNew); err != nil {
			return 0, err
		}
		if nb.sets, err = e.truncateAll(b.sets); err != nil {
			return 0, err
		}
	}
	tid, err := e.intern(nb)
	if err != nil {
		return 0, err
	}
	e.truncMemo[id] = tid
	return tid, nil
}

func (e *evaluator) truncateAll(ids []int) ([]int, error) {
	out := make([]int, 0, len(ids))
	for _, c := range ids {
		tc, err := e.truncate(c)
		if err != nil {
			return nil, err
		}
		out = append(out, tc)
	}
	return dedupSorted(out), nil
}

// project forgets tuple position p: the element stays in the structure
// but stops being distinguished. Pointing at it afterwards is a move to
// a fresh element — unless it duplicates a surviving position, in which
// case that pointAt child already covers the move.
func (e *evaluator) project(id, p int) (int, error) {
	if err := e.expand(); err != nil {
		return 0, err
	}
	key := [2]int{id, p}
	if v, ok := e.projMemo[key]; ok {
		return v, nil
	}
	b := e.nodes[id]
	m := b.m - 1
	old := func(i int) int {
		if i < p {
			return i
		}
		return i + 1
	}
	nb := &behavior{rank: b.rank, m: m, nsets: b.nsets}
	nb.eq = make([]bool, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			nb.eq[i*m+j] = b.eq[old(i)*b.m+old(j)]
		}
	}
	nb.rels = make([][]bool, len(e.preds))
	for pi, pr := range e.preds {
		size := ipow(m, pr.Arity)
		tab := make([]bool, size)
		idx := make([]int, pr.Arity)
		for flat := 0; flat < size; flat++ {
			sub := 0
			for _, pos := range idx {
				sub = sub*b.m + old(pos)
			}
			tab[flat] = b.rels[pi][sub]
			odometer(idx, m)
		}
		nb.rels[pi] = tab
	}
	nb.mems = make([]uint64, b.nsets)
	for s, mask := range b.mems {
		low := mask & (1<<uint(p) - 1)
		high := (mask >> uint(p+1)) << uint(p)
		nb.mems[s] = low | high
	}
	if b.rank > 0 {
		nb.pointAt = make([]int, m)
		for i := 0; i < m; i++ {
			c, err := e.project(b.pointAt[old(i)], p)
			if err != nil {
				return 0, err
			}
			nb.pointAt[i] = c
		}
		var fresh []int
		for _, c := range b.pointNew {
			pc, err := e.project(c, p)
			if err != nil {
				return 0, err
			}
			fresh = append(fresh, pc)
		}
		dup := false
		for j := 0; j < b.m; j++ {
			if j != p && b.eq[p*b.m+j] {
				dup = true
				break
			}
		}
		if !dup {
			pc, err := e.project(b.pointAt[p], p)
			if err != nil {
				return 0, err
			}
			fresh = append(fresh, pc)
		}
		nb.pointNew = dedupSorted(fresh)
		var setChildren []int
		for _, c := range b.sets {
			pc, err := e.project(c, p)
			if err != nil {
				return 0, err
			}
			setChildren = append(setChildren, pc)
		}
		nb.sets = dedupSorted(setChildren)
	}
	nid, err := e.intern(nb)
	if err != nil {
		return 0, err
	}
	e.projMemo[key] = nid
	return nid, nil
}

// ---- small helpers ----

func composeKey(x, y int, pm []posPair) string {
	buf := make([]byte, 0, 16+len(pm)*4)
	buf = binary.AppendVarint(buf, int64(x))
	buf = binary.AppendVarint(buf, int64(y))
	for _, pp := range pm {
		buf = binary.AppendVarint(buf, int64(pp.x))
		buf = binary.AppendVarint(buf, int64(pp.y))
	}
	return string(buf)
}

func dedupSorted(ids []int) []int {
	if len(ids) == 0 {
		return nil
	}
	sort.Ints(ids)
	out := ids[:1]
	for _, v := range ids[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func ipow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// odometer advances idx (each digit in [0, base)) to the next tuple in
// row-major order; callers iterate exactly base^len(idx) times.
func odometer(idx []int, base int) {
	for i := len(idx) - 1; i >= 0; i-- {
		idx[i]++
		if idx[i] < base {
			return
		}
		idx[i] = 0
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

package game

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/mso"
	"repro/internal/stage"
	"repro/internal/testutil/leak"
)

// TestBudgetGamePositionsExceeded pins the MaxGamePositions contract:
// a cap below what the evaluation needs surfaces as a stage-tagged
// BudgetError on the game-positions dimension, and the tally stops at
// limit+1 instead of recording the full would-be exploration.
func TestBudgetGamePositionsExceeded(t *testing.T) {
	st := randomStructure(rand.New(rand.NewSource(3)), 6)
	phi := mso.MustParse("exists y (e(x,y) & ~c(y))")

	b := &stage.Budget{MaxGamePositions: 5}
	ctx := stage.WithBudget(context.Background(), b)
	_, err := core.RunCtx(ctx, st, phi, "x", core.Options{Backend: Name})
	if !errors.Is(err, stage.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	var be *stage.BudgetError
	if !errors.As(err, &be) || be.Dimension != "game-positions" {
		t.Fatalf("err = %v, want game-positions BudgetError", err)
	}
	if got := stage.Of(err); got != stage.Game {
		t.Fatalf("tagged stage %q, want %q", got, stage.Game)
	}
	if used := b.GamePositionsUsed(); used != be.Limit+1 {
		t.Fatalf("tally = %d after violation, want limit+1 = %d", used, be.Limit+1)
	}
}

// TestBudgetGameSufficientIsInvisible pins that a generous position
// budget changes nothing and the tally records real consumption.
func TestBudgetGameSufficientIsInvisible(t *testing.T) {
	st := randomStructure(rand.New(rand.NewSource(5)), 6)
	phi := mso.MustParse("c(x)")

	plain, err := core.RunCtx(context.Background(), st, phi, "x", core.Options{Backend: Name})
	if err != nil {
		t.Fatal(err)
	}
	b := &stage.Budget{MaxGamePositions: 1 << 20}
	res, err := core.RunCtx(stage.WithBudget(context.Background(), b), st, phi, "x", core.Options{Backend: Name})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Selected.Equal(res.Selected) {
		t.Fatal("budgeted run changed the answer")
	}
	if used := b.GamePositionsUsed(); used <= 0 {
		t.Fatalf("tally = %d, want > 0", used)
	}
}

// TestGameCancellation pins that a canceled context aborts the
// exploration with a stage-tagged cancellation error.
func TestGameCancellation(t *testing.T) {
	st := randomStructure(rand.New(rand.NewSource(9)), 7)
	phi := mso.MustParse("exists Y (x in Y & forall z (z in Y -> c(z)))")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := core.RunCtx(ctx, st, phi, "x", core.Options{Backend: Name})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := stage.Of(err); got == "" {
		t.Fatalf("cancellation lost its stage tag: %v", err)
	}
}

// TestChaosGameFaultPoints injects a failure at each game fault point
// and asserts the chaos suite's guarantees: the fault surfaces as a
// stage-tagged error (stage.Game), no goroutines leak, and a retry
// after disarming matches an uninjected cold run — a failed exploration
// can never poison later evaluations.
func TestChaosGameFaultPoints(t *testing.T) {
	defer faultinject.Reset()
	st := randomStructure(rand.New(rand.NewSource(17)), 6)
	phi := mso.MustParse("exists y (e(x,y) & ~c(y))")
	ctx := context.Background()

	faultinject.Reset()
	want, err := core.RunCtx(ctx, st, phi, "x", core.Options{Backend: Name})
	if err != nil {
		t.Fatalf("uninjected run: %v", err)
	}

	for _, point := range []string{"game.expand", "game.memo"} {
		t.Run(point, func(t *testing.T) {
			snap := leak.Before()
			faultinject.Reset()
			faultinject.FailAt(point, 1)
			_, err := core.RunCtx(ctx, st, phi, "x", core.Options{Backend: Name})
			if err == nil {
				t.Fatalf("injected fault at %s did not surface", point)
			}
			if got := stage.Of(err); got != stage.Game {
				t.Fatalf("fault at %s tagged stage %q, want %q", point, got, stage.Game)
			}
			faultinject.Reset()
			res, err := core.RunCtx(ctx, st, phi, "x", core.Options{Backend: Name})
			if err != nil {
				t.Fatalf("retry after %s fault: %v", point, err)
			}
			if !res.Selected.Equal(want.Selected) {
				t.Fatalf("retry after %s fault diverged from the cold answer", point)
			}
			snap.Check(t)
		})
	}
}

package game

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mso"
	"repro/internal/structure"
)

func randomStructure(rng *rand.Rand, n int) *structure.Structure {
	sig := structure.MustSignature(
		structure.Predicate{Name: "e", Arity: 2},
		structure.Predicate{Name: "c", Arity: 1},
	)
	st := structure.New(sig)
	for i := 0; i < n; i++ {
		st.AddElem(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			st.MustAddTuple("c", i)
		}
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.3 {
				st.MustAddTuple("e", i, j)
			}
		}
	}
	return st
}

// Unary queries covering atoms, equality, negation, element and set
// quantifiers up to rank 3.
var oracleQueries = []string{
	"c(x)",
	"~c(x)",
	"x = x",
	"exists y e(x, y)",
	"exists y (e(x,y) & ~c(y))",
	"forall y (e(x,y) -> c(y))",
	"exists y (y != x & e(x,y))",
	"exists y exists z (y != z & e(x,y) & e(x,z))",
	"exists Y (x in Y & forall z (z in Y -> c(z)))",
	"forall Y (x in Y -> exists z (z in Y & c(z)))",
}

// Sentences for the decision variant.
var oracleSentences = []string{
	"exists x c(x)",
	"forall x (c(x) | exists y e(x,y))",
	"exists x exists y (e(x,y) & x != y)",
	"forall x forall y (e(x,y) -> e(y,x))",
	"exists X (exists x (x in X) & forall y (y in X -> c(y)))",
}

// TestGameMatchesNaiveOracle cross-checks the game backend against the
// naive MSO model checker on random structures: same Selected set for
// unary queries, same truth value for sentences. The naive checker is
// exact, so any divergence is a game-backend bug.
func TestGameMatchesNaiveOracle(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(7)
		st := randomStructure(rng, n)
		for _, q := range oracleQueries {
			phi := mso.MustParse(q)
			got, err := core.RunCtx(ctx, st, phi, "x", core.Options{Backend: Name})
			if err != nil {
				t.Fatalf("trial %d, query %q: game: %v", trial, q, err)
			}
			want, err := mso.QueryCtx(ctx, st, phi, "x", nil)
			if err != nil {
				t.Fatalf("trial %d, query %q: naive: %v", trial, q, err)
			}
			for a := 0; a < st.Size(); a++ {
				if got.Selected.Has(a) != want.Has(a) {
					t.Fatalf("trial %d, query %q, elem %s: game=%v naive=%v\nstructure:\n%s",
						trial, q, st.Name(a), got.Selected.Has(a), want.Has(a), st)
				}
			}
		}
		for _, s := range oracleSentences {
			phi := mso.MustParse(s)
			got, err := core.RunCtx(ctx, st, phi, "", core.Options{Backend: Name, Decision: true})
			if err != nil {
				t.Fatalf("trial %d, sentence %q: game: %v", trial, s, err)
			}
			want, err := mso.SentenceCtx(ctx, st, phi, nil)
			if err != nil {
				t.Fatalf("trial %d, sentence %q: naive: %v", trial, s, err)
			}
			if got.Holds != want {
				t.Fatalf("trial %d, sentence %q: game=%v naive=%v\nstructure:\n%s",
					trial, s, got.Holds, want, st)
			}
		}
	}
}

// Package threecol implements the paper's 3-Colorability algorithm
// (Section 5.1, Figure 5) for graphs of bounded treewidth: a dynamic
// program over a nice tree decomposition whose states are the partitions
// (R, G, B) of the current bag — the solve(s, R, G, B) predicate of the
// figure — plus a brute-force baseline, witness extraction, and a full
// grounding to a propositional Horn program.
package threecol

import (
	"context"
	"fmt"

	"repro/internal/decompose"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/horn"
	"repro/internal/tree"
)

// Figure5 is the paper's datalog program for reference. Its set-valued
// arguments (R, G, B range over subsets of the bag) make it a succinct
// representation of a monadic program with predicates solve⟨r1,r2,r3⟩(s);
// this package executes it as the equivalent dynamic program.
const Figure5 = `
% leaf node.
solve(S, R, G, B) :- leaf(S), bag(S, X), partition(S, R, G, B),
                     allowed(S, R), allowed(S, G), allowed(S, B).
% element introduction node.
solve(S, R+{V}, G, B) :- bag(S, X+{V}), child1(S1, S), bag(S1, X),
                         solve(S1, R, G, B), allowed(S, R+{V}).
solve(S, R, G+{V}, B) :- bag(S, X+{V}), child1(S1, S), bag(S1, X),
                         solve(S1, R, G, B), allowed(S, G+{V}).
solve(S, R, G, B+{V}) :- bag(S, X+{V}), child1(S1, S), bag(S1, X),
                         solve(S1, R, G, B), allowed(S, B+{V}).
% element removal node.
solve(S, R, G, B) :- bag(S, X), child1(S1, S), bag(S1, X+{V}), solve(S1, R+{V}, G, B).
solve(S, R, G, B) :- bag(S, X), child1(S1, S), bag(S1, X+{V}), solve(S1, R, G+{V}, B).
solve(S, R, G, B) :- bag(S, X), child1(S1, S), bag(S1, X+{V}), solve(S1, R, G, B+{V}).
% branch node.
solve(S, R, G, B) :- bag(S, X), child1(S1, S), child2(S2, S), bag(S1, X), bag(S2, X),
                     solve(S1, R, G, B), solve(S2, R, G, B).
% result (at the root node).
success :- root(S), solve(S, R, G, B).
`

// coloring is a DP state: the color (0, 1, 2) of each sorted-bag position,
// packed two bits per position.
type coloring uint64

func colorOf(s coloring, p int) int { return int(s>>(2*uint(p))) & 3 }
func withColor(s coloring, p, c int) coloring {
	low := s & ((1 << (2 * uint(p))) - 1)
	high := s >> (2 * uint(p))
	return low | coloring(c)<<(2*uint(p)) | high<<(2*uint(p)+2)
}
func dropColor(s coloring, p int) coloring {
	low := s & ((1 << (2 * uint(p))) - 1)
	high := s >> (2*uint(p) + 2)
	return low | high<<(2*uint(p))
}

func position(bag []int, e int) int {
	for i, b := range bag {
		if b == e {
			return i
		}
	}
	return -1
}

// allowed reports whether no edge inside the bag is monochromatic — the
// allowed predicate of Figure 5 applied to all three classes at once.
func allowed(g *graph.Graph, bag []int, s coloring) bool {
	for i := 0; i < len(bag); i++ {
		for j := i + 1; j < len(bag); j++ {
			if g.HasEdge(bag[i], bag[j]) && colorOf(s, i) == colorOf(s, j) {
				return false
			}
		}
	}
	return true
}

// handlers builds the Figure 5 transitions for graph g.
func handlers(g *graph.Graph) dp.Handlers[coloring] {
	return dp.Handlers[coloring]{
		Leaf: func(_ int, bag []int) []coloring {
			var out []coloring
			n := len(bag)
			total := 1
			for i := 0; i < n; i++ {
				total *= 3
			}
			for combo := 0; combo < total; combo++ {
				var s coloring
				x := combo
				for p := 0; p < n; p++ {
					s |= coloring(x%3) << (2 * uint(p))
					x /= 3
				}
				if allowed(g, bag, s) {
					out = append(out, s)
				}
			}
			return out
		},
		Introduce: func(_ int, bag []int, elem int, child coloring) []coloring {
			p := position(bag, elem)
			var out []coloring
			for c := 0; c < 3; c++ {
				s := withColor(child, p, c)
				if allowed(g, bag, s) {
					out = append(out, s)
				}
			}
			return out
		},
		Forget: func(_ int, bag []int, elem int, child coloring) []coloring {
			childBag := insertSorted(bag, elem)
			return []coloring{dropColor(child, position(childBag, elem))}
		},
		Branch: func(_ int, _ []int, s1, s2 coloring) []coloring {
			if s1 == s2 {
				return []coloring{s1}
			}
			return nil
		},
	}
}

func insertSorted(bag []int, e int) []int {
	out := make([]int, 0, len(bag)+1)
	placed := false
	for _, b := range bag {
		if !placed && e < b {
			out = append(out, e)
			placed = true
		}
		out = append(out, b)
	}
	if !placed {
		out = append(out, e)
	}
	return out
}

// Instance bundles a graph with a nice tree decomposition.
type Instance struct {
	g    *graph.Graph
	nice *tree.Decomposition
}

// NewInstance decomposes g with the min-fill heuristic and normalizes to
// the nice form of Section 5.
func NewInstance(g *graph.Graph) (*Instance, error) {
	return NewInstanceCtx(context.Background(), g)
}

// NewInstanceCtx is NewInstance with cancellation support: the
// decomposition and normalization stages poll ctx and context errors
// come back wrapped in a *stage.Error.
func NewInstanceCtx(ctx context.Context, g *graph.Graph) (*Instance, error) {
	d, err := decompose.GraphCtx(ctx, g, decompose.MinFill)
	if err != nil {
		return nil, err
	}
	if err := d.ValidateGraph(g); err != nil {
		return nil, fmt.Errorf("threecol: %w", err)
	}
	nice, err := tree.NormalizeNiceCtx(ctx, d, tree.NiceOptions{})
	if err != nil {
		return nil, err
	}
	return &Instance{g: g, nice: nice}, nil
}

// NewInstanceWithDecomposition uses a caller-provided raw decomposition.
func NewInstanceWithDecomposition(g *graph.Graph, d *tree.Decomposition) (*Instance, error) {
	if err := d.ValidateGraph(g); err != nil {
		return nil, fmt.Errorf("threecol: %w", err)
	}
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
	if err != nil {
		return nil, err
	}
	return &Instance{g: g, nice: nice}, nil
}

// Width returns the decomposition width.
func (in *Instance) Width() int { return in.nice.Width() }

// Decide reports whether the graph is 3-colorable (the success rule of
// Figure 5: any state surviving at the root).
func (in *Instance) Decide() (bool, error) {
	return in.DecideCtx(context.Background())
}

// DecideCtx is Decide with cancellation support (see dp.RunUpCtx).
func (in *Instance) DecideCtx(ctx context.Context) (bool, error) {
	tables, err := dp.RunUpCtx(ctx, in.nice, handlers(in.g))
	if err != nil {
		return false, err
	}
	return tables[in.nice.Root].Len() > 0, nil
}

// Coloring returns a proper 3-coloring (vertex → 0/1/2) if one exists, by
// walking the provenance of an accepting root state — the witness
// extension the paper lists under future extensions of the decision
// program.
func (in *Instance) Coloring() ([]int, bool, error) {
	return in.ColoringCtx(context.Background())
}

// ColoringCtx is Coloring with cancellation support (see dp.RunUpCtx).
func (in *Instance) ColoringCtx(ctx context.Context) ([]int, bool, error) {
	tables, err := dp.RunUpCtx(ctx, in.nice, handlers(in.g))
	if err != nil {
		return nil, false, err
	}
	if tables[in.nice.Root].Len() == 0 {
		return nil, false, nil
	}
	colors := make([]int, in.g.N())
	for i := range colors {
		colors[i] = -1
	}
	var assign func(v int, s coloring)
	assign = func(v int, s coloring) {
		bag := sortedBag(in.nice.Nodes[v].Bag)
		for p, e := range bag {
			colors[e] = colorOf(s, p)
		}
		prov := tables[v].Prov[s]
		n := in.nice.Nodes[v]
		if prov.First != nil && len(n.Children) >= 1 {
			assign(n.Children[0], *prov.First)
		}
		if prov.Second != nil && len(n.Children) == 2 {
			assign(n.Children[1], *prov.Second)
		}
	}
	assign(in.nice.Root, tables[in.nice.Root].Order[0])
	// Isolated vertices may be uncolored only if they appear in no bag;
	// a valid decomposition covers every vertex, so color any stragglers
	// defensively.
	for i := range colors {
		if colors[i] < 0 {
			colors[i] = 0
		}
	}
	return colors, true, nil
}

// GroundDecide decides 3-colorability by full grounding of the Figure 5
// program: one propositional variable per (node, bag coloring) pair, one
// Horn clause per rule instance, solved by unit resolution. The baseline
// of experiment E7's architecture comparison.
func (in *Instance) GroundDecide() (bool, error) {
	prog := &horn.Program{}
	varID := map[string]int{}
	id := func(node int, s coloring) int {
		k := fmt.Sprintf("%d/%d", node, s)
		if v, ok := varID[k]; ok {
			return v
		}
		v := len(varID)
		varID[k] = v
		return v
	}
	h := handlers(in.g)
	allColorings := func(bag []int) []coloring {
		var out []coloring
		n := len(bag)
		total := 1
		for i := 0; i < n; i++ {
			total *= 3
		}
		for combo := 0; combo < total; combo++ {
			var s coloring
			x := combo
			for p := 0; p < n; p++ {
				s |= coloring(x%3) << (2 * uint(p))
				x /= 3
			}
			out = append(out, s)
		}
		return out
	}
	for _, v := range in.nice.PostOrder() {
		n := in.nice.Nodes[v]
		bag := sortedBag(n.Bag)
		switch n.Kind {
		case tree.KindLeaf:
			for _, s := range h.Leaf(v, bag) {
				prog.AddClause(id(v, s))
			}
		case tree.KindIntroduce, tree.KindForget, tree.KindCopy:
			child := n.Children[0]
			for _, cs := range allColorings(sortedBag(in.nice.Nodes[child].Bag)) {
				var results []coloring
				switch n.Kind {
				case tree.KindIntroduce:
					results = h.Introduce(v, bag, n.Elem, cs)
				case tree.KindForget:
					results = h.Forget(v, bag, n.Elem, cs)
				default:
					results = []coloring{cs}
				}
				for _, s := range results {
					prog.AddClause(id(v, s), id(child, cs))
				}
			}
		case tree.KindBranch:
			for _, s := range allColorings(bag) {
				prog.AddClause(id(v, s), id(n.Children[0], s), id(n.Children[1], s))
			}
		default:
			return false, fmt.Errorf("threecol: unexpected node kind %v", n.Kind)
		}
	}
	success := len(varID)
	varID["success"] = success
	for _, s := range allColorings(sortedBag(in.nice.Nodes[in.nice.Root].Bag)) {
		prog.AddClause(success, id(in.nice.Root, s))
	}
	truth := prog.Solve()
	return truth[success], nil
}

func sortedBag(bag []int) []int {
	out := append([]int(nil), bag...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Decide is a convenience wrapper.
func Decide(g *graph.Graph) (bool, error) {
	in, err := NewInstance(g)
	if err != nil {
		return false, err
	}
	return in.Decide()
}

// BruteForce decides 3-colorability by backtracking over all colorings;
// the exponential reference oracle.
func BruteForce(g *graph.Graph) bool {
	n := g.N()
	colors := make([]int, n)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return true
		}
		for c := 0; c < 3; c++ {
			ok := true
			g.Neighbors(v).ForEach(func(u int) bool {
				if u < v && colors[u] == c {
					ok = false
					return false
				}
				return true
			})
			if ok {
				colors[v] = c
				if rec(v + 1) {
					return true
				}
			}
		}
		return false
	}
	return rec(0)
}

// Package threecol implements the paper's 3-Colorability algorithm
// (Section 5.1, Figure 5) for graphs of bounded treewidth: a dynamic
// program over a nice tree decomposition whose states are the partitions
// (R, G, B) of the current bag — the solve(s, R, G, B) predicate of the
// figure — plus a brute-force baseline, witness extraction, and a full
// grounding to a propositional Horn program. The transitions are a
// solver.Problem instance (problem.go) evaluated by the generic semiring
// engine, which also powers k-coloring and exact counting (kcolor.go).
package threecol

import (
	"context"
	"fmt"

	"repro/internal/decompose"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/horn"
	"repro/internal/solver"
	"repro/internal/tree"
)

// Figure5 is the paper's datalog program for reference. Its set-valued
// arguments (R, G, B range over subsets of the bag) make it a succinct
// representation of a monadic program with predicates solve⟨r1,r2,r3⟩(s);
// this package executes it as the equivalent dynamic program.
const Figure5 = `
% leaf node.
solve(S, R, G, B) :- leaf(S), bag(S, X), partition(S, R, G, B),
                     allowed(S, R), allowed(S, G), allowed(S, B).
% element introduction node.
solve(S, R+{V}, G, B) :- bag(S, X+{V}), child1(S1, S), bag(S1, X),
                         solve(S1, R, G, B), allowed(S, R+{V}).
solve(S, R, G+{V}, B) :- bag(S, X+{V}), child1(S1, S), bag(S1, X),
                         solve(S1, R, G, B), allowed(S, G+{V}).
solve(S, R, G, B+{V}) :- bag(S, X+{V}), child1(S1, S), bag(S1, X),
                         solve(S1, R, G, B), allowed(S, B+{V}).
% element removal node.
solve(S, R, G, B) :- bag(S, X), child1(S1, S), bag(S1, X+{V}), solve(S1, R+{V}, G, B).
solve(S, R, G, B) :- bag(S, X), child1(S1, S), bag(S1, X+{V}), solve(S1, R, G+{V}, B).
solve(S, R, G, B) :- bag(S, X), child1(S1, S), bag(S1, X+{V}), solve(S1, R, G, B+{V}).
% branch node.
solve(S, R, G, B) :- bag(S, X), child1(S1, S), child2(S2, S), bag(S1, X), bag(S2, X),
                     solve(S1, R, G, B), solve(S2, R, G, B).
% result (at the root node).
success :- root(S), solve(S, R, G, B).
`

// Instance bundles a graph with a nice tree decomposition.
type Instance struct {
	g    *graph.Graph
	nice *tree.Decomposition
}

// NewInstance decomposes g with the min-fill heuristic and normalizes to
// the nice form of Section 5.
func NewInstance(g *graph.Graph) (*Instance, error) {
	return NewInstanceCtx(context.Background(), g)
}

// NewInstanceCtx is NewInstance with cancellation support: the
// decomposition and normalization stages poll ctx and context errors
// come back wrapped in a *stage.Error.
func NewInstanceCtx(ctx context.Context, g *graph.Graph) (*Instance, error) {
	d, err := decompose.GraphCtx(ctx, g, decompose.MinFill)
	if err != nil {
		return nil, err
	}
	if err := d.ValidateGraph(g); err != nil {
		return nil, fmt.Errorf("threecol: %w", err)
	}
	nice, err := tree.NormalizeNiceCtx(ctx, d, tree.NiceOptions{})
	if err != nil {
		return nil, err
	}
	return &Instance{g: g, nice: nice}, nil
}

// NewInstanceWithDecomposition uses a caller-provided raw decomposition.
func NewInstanceWithDecomposition(g *graph.Graph, d *tree.Decomposition) (*Instance, error) {
	if err := d.ValidateGraph(g); err != nil {
		return nil, fmt.Errorf("threecol: %w", err)
	}
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
	if err != nil {
		return nil, err
	}
	return &Instance{g: g, nice: nice}, nil
}

// Width returns the decomposition width.
func (in *Instance) Width() int { return in.nice.Width() }

// Decide reports whether the graph is 3-colorable (the success rule of
// Figure 5: any state surviving at the root).
func (in *Instance) Decide() (bool, error) {
	return in.DecideCtx(context.Background())
}

// DecideCtx is Decide with cancellation support (see solver.Up).
func (in *Instance) DecideCtx(ctx context.Context) (bool, error) {
	return solver.Decide(ctx, in.nice, newColorProblem(in.g, 3))
}

// Coloring returns a proper 3-coloring (vertex → 0/1/2) if one exists, by
// walking the provenance of an accepting root state — the witness
// extension the paper lists under future extensions of the decision
// program.
func (in *Instance) Coloring() ([]int, bool, error) {
	return in.ColoringCtx(context.Background())
}

// ColoringCtx is Coloring with cancellation support (see solver.Up).
func (in *Instance) ColoringCtx(ctx context.Context) ([]int, bool, error) {
	cp := newColorProblem(in.g, 3)
	der, err := solver.Witness(ctx, in.nice, cp)
	if err != nil || der == nil {
		return nil, false, err
	}
	bags, err := dp.Bags(in.nice)
	if err != nil {
		return nil, false, fmt.Errorf("threecol: %w", err)
	}
	colors := make([]int, in.g.N())
	for i := range colors {
		colors[i] = -1
	}
	err = der.Walk(func(v int, s uint64) error {
		for p, e := range bags[v] {
			colors[e] = int(cp.w.At(s, p))
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	// Isolated vertices may be uncolored only if they appear in no bag;
	// a valid decomposition covers every vertex, so color any stragglers
	// defensively.
	for i := range colors {
		if colors[i] < 0 {
			colors[i] = 0
		}
	}
	return colors, true, nil
}

// GroundDecide decides 3-colorability by full grounding of the Figure 5
// program: one propositional variable per (node, bag coloring) pair, one
// Horn clause per rule instance, solved by unit resolution. The baseline
// of experiment E7's architecture comparison.
func (in *Instance) GroundDecide() (bool, error) {
	prog := &horn.Program{}
	varID := map[string]int{}
	id := func(node int, s uint64) int {
		k := fmt.Sprintf("%d/%d", node, s)
		if v, ok := varID[k]; ok {
			return v
		}
		v := len(varID)
		varID[k] = v
		return v
	}
	cp := newColorProblem(in.g, 3)
	for _, v := range in.nice.PostOrder() {
		n := in.nice.Nodes[v]
		bag := sortedBag(n.Bag)
		switch n.Kind {
		case tree.KindLeaf:
			for _, o := range cp.Leaf(v, bag) {
				prog.AddClause(id(v, o.State))
			}
		case tree.KindIntroduce, tree.KindForget, tree.KindCopy:
			child := n.Children[0]
			for _, cs := range cp.allStates(sortedBag(in.nice.Nodes[child].Bag)) {
				var results []solver.Out[uint64]
				switch n.Kind {
				case tree.KindIntroduce:
					results = cp.Introduce(v, bag, n.Elem, cs)
				case tree.KindForget:
					results = cp.Forget(v, bag, n.Elem, cs)
				default:
					results = []solver.Out[uint64]{{State: cs}}
				}
				for _, o := range results {
					prog.AddClause(id(v, o.State), id(child, cs))
				}
			}
		case tree.KindBranch:
			for _, s := range cp.allStates(bag) {
				prog.AddClause(id(v, s), id(n.Children[0], s), id(n.Children[1], s))
			}
		default:
			return false, fmt.Errorf("threecol: unexpected node kind %v", n.Kind)
		}
	}
	success := len(varID)
	varID["success"] = success
	for _, s := range cp.allStates(sortedBag(in.nice.Nodes[in.nice.Root].Bag)) {
		prog.AddClause(success, id(in.nice.Root, s))
	}
	truth := prog.Solve()
	return truth[success], nil
}

func sortedBag(bag []int) []int {
	out := append([]int(nil), bag...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Decide is a convenience wrapper.
func Decide(g *graph.Graph) (bool, error) {
	in, err := NewInstance(g)
	if err != nil {
		return false, err
	}
	return in.Decide()
}

// BruteForce decides 3-colorability by backtracking over all colorings;
// the exponential reference oracle.
func BruteForce(g *graph.Graph) bool {
	n := g.N()
	colors := make([]int, n)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return true
		}
		for c := 0; c < 3; c++ {
			ok := true
			g.Neighbors(v).ForEach(func(u int) bool {
				if u < v && colors[u] == c {
					ok = false
					return false
				}
				return true
			})
			if ok {
				colors[v] = c
				if rec(v + 1) {
					return true
				}
			}
		}
		return false
	}
	return rec(0)
}

package threecol

// This file materializes what Theorem 5.1's proof only argues: the
// Figure 5 program "is essentially a succinct representation of a
// quasi-guarded monadic datalog program" whose predicates solve⟨r1,r2,r3⟩
// index the bag positions of each color class. MonadicProgram expands the
// representation for a fixed width w into genuine monadic datalog over
// τ_td (tuple normal form: leaf / permutation / element-replacement /
// branch nodes), and DecideMonadic runs it through the linear-time
// quasi-guarded evaluation of Theorem 4.4 — the fully interpreted route,
// against which the direct dynamic program of this package is the
// "implemented directly on C++ level" optimization the paper's prototype
// chose.

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/tree"
)

// solvePred names the monadic predicate for a position-coloring m over
// w+1 bag positions (m in base 3).
func solvePred(m, w int) string {
	name := "solve"
	for p := 0; p <= w; p++ {
		name += string(rune('0' + (m / pow3(p) % 3)))
	}
	return name
}

func pow3(p int) int {
	out := 1
	for i := 0; i < p; i++ {
		out *= 3
	}
	return out
}

func colorAt(m, p int) int { return m / pow3(p) % 3 }

// sameColorGuards returns the negated edge atoms forbidding monochromatic
// edges among the bag positions colored by m (both directions, matching
// the symmetric {e/2} encoding).
func sameColorGuards(m, w int, varName func(int) string) []datalog.Atom {
	var out []datalog.Atom
	for i := 0; i <= w; i++ {
		for j := i + 1; j <= w; j++ {
			if colorAt(m, i) != colorAt(m, j) {
				continue
			}
			out = append(out,
				datalog.NewAtom("e", datalog.V(varName(i)), datalog.V(varName(j))).Not(),
				datalog.NewAtom("e", datalog.V(varName(j)), datalog.V(varName(i))).Not(),
			)
		}
	}
	return out
}

// newElemGuards forbids monochromatic edges between the replaced position
// 0 and the other bag positions only (the rest was verified below).
func newElemGuards(m, w int) []datalog.Atom {
	var out []datalog.Atom
	for j := 1; j <= w; j++ {
		if colorAt(m, 0) != colorAt(m, j) {
			continue
		}
		out = append(out,
			datalog.NewAtom("e", datalog.V(xv(0)), datalog.V(xv(j))).Not(),
			datalog.NewAtom("e", datalog.V(xv(j)), datalog.V(xv(0))).Not(),
		)
	}
	return out
}

func xv(i int) string { return fmt.Sprintf("X%d", i) }

func bagAtom(node string, vars []datalog.Term) datalog.Atom {
	return datalog.NewAtom("bag", append([]datalog.Term{datalog.V(node)}, vars...)...)
}

func bagVarTerms(w int) []datalog.Term {
	out := make([]datalog.Term, w+1)
	for i := range out {
		out[i] = datalog.V(xv(i))
	}
	return out
}

// MonadicProgram expands the Figure 5 program into monadic datalog over
// τ_td for width w. The program has Θ((w+1)!·3^(w+1)) rules — constant
// for fixed w, as Theorem 5.1 requires.
func MonadicProgram(w int) *datalog.Program {
	p := &datalog.Program{}
	states := pow3(w + 1)

	// Leaf rules: every proper position-coloring of the bag.
	for m := 0; m < states; m++ {
		body := []datalog.Atom{
			bagAtom("V", bagVarTerms(w)),
			datalog.NewAtom("leaf", datalog.V("V")),
		}
		body = append(body, sameColorGuards(m, w, xv)...)
		p.Add(datalog.NewAtom(solvePred(m, w), datalog.V("V")), body...)
	}

	// Permutation rules: parent bag = π(child bag); the parent state's
	// position i colors the child's position π(i).
	for _, pi := range permutationsOf(w + 1) {
		for m := 0; m < states; m++ {
			childState := 0
			for i := 0; i <= w; i++ {
				childState += colorAt(m, i) * pow3(pi[i])
			}
			permVars := make([]datalog.Term, w+1)
			for i := range permVars {
				permVars[i] = datalog.V(xv(pi[i]))
			}
			p.Add(datalog.NewAtom(solvePred(m, w), datalog.V("V")),
				bagAtom("V", permVars),
				datalog.NewAtom("child1", datalog.V("V1"), datalog.V("V")),
				datalog.NewAtom("single", datalog.V("V")),
				datalog.NewAtom(solvePred(childState, w), datalog.V("V1")),
				bagAtom("V1", bagVarTerms(w)),
			)
		}
	}

	// Element replacement rules: position 0 replaced; the child may have
	// held any color at position 0.
	for m := 0; m < states; m++ {
		for c0 := 0; c0 < 3; c0++ {
			childState := m - colorAt(m, 0)*pow3(0) + c0*pow3(0)
			childVars := append([]datalog.Term{datalog.V("Y0")}, bagVarTerms(w)[1:]...)
			body := []datalog.Atom{
				bagAtom("V", bagVarTerms(w)),
				datalog.NewAtom("child1", datalog.V("V1"), datalog.V("V")),
				datalog.NewAtom("single", datalog.V("V")),
				datalog.NewAtom(solvePred(childState, w), datalog.V("V1")),
				bagAtom("V1", childVars),
				datalog.NewAtom("neq", datalog.V(xv(0)), datalog.V("Y0")),
			}
			body = append(body, newElemGuards(m, w)...)
			p.Add(datalog.NewAtom(solvePred(m, w), datalog.V("V")), body...)
		}
	}

	// Branch rules: identical bags, identical states.
	for m := 0; m < states; m++ {
		p.Add(datalog.NewAtom(solvePred(m, w), datalog.V("V")),
			bagAtom("V", bagVarTerms(w)),
			datalog.NewAtom("child1", datalog.V("V1"), datalog.V("V")),
			datalog.NewAtom(solvePred(m, w), datalog.V("V1")),
			datalog.NewAtom("child2", datalog.V("V2"), datalog.V("V")),
			datalog.NewAtom(solvePred(m, w), datalog.V("V2")),
			bagAtom("V1", bagVarTerms(w)),
			bagAtom("V2", bagVarTerms(w)),
		)
	}

	// Result rule at the root.
	for m := 0; m < states; m++ {
		p.Add(datalog.NewAtom("success"),
			datalog.NewAtom("root", datalog.V("V")),
			datalog.NewAtom(solvePred(m, w), datalog.V("V")),
		)
	}
	return p
}

func permutationsOf(n int) [][]int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := k; i < n; i++ {
			idx[k], idx[i] = idx[i], idx[k]
			rec(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	rec(0)
	return out
}

// DecideMonadic decides 3-colorability by the fully interpreted route:
// tuple-normalize a decomposition, build the τ_td structure, expand the
// monadic program for the decomposition's width, and evaluate it with the
// quasi-guarded engine (Theorem 4.4).
func DecideMonadic(g *graph.Graph) (bool, error) {
	st := g.ToStructure()
	d, err := decompose.Structure(st, decompose.MinFill)
	if err != nil {
		return false, err
	}
	norm, err := tree.NormalizeTuple(d)
	if err != nil {
		return false, err
	}
	w := norm.Width()
	td, _, err := tree.BuildTD(st, norm, w)
	if err != nil {
		return false, err
	}
	prog := MonadicProgram(w)
	if !prog.IsMonadic() {
		return false, fmt.Errorf("threecol: internal error: expanded program is not monadic")
	}
	edb := datalog.FromStructure(td, "")
	out, err := datalog.EvalQuasiGuarded(prog, edb, datalog.TDFuncDeps(w))
	if err != nil {
		return false, err
	}
	return out.Has("success"), nil
}

package threecol

// The single problem-algebra instance behind this package: proper
// k-coloring as a solver.Problem. threecol.Decide runs it with k=3 in
// the decision semiring (Figure 5 verbatim), KColorable with arbitrary
// k, CountColorings in the counting semiring, and Coloring extracts a
// witness from the same tables — one set of transitions for every mode,
// where the seed had three hand-written near-copies (threecol handlers,
// kcolor handlers, and the counting pass) that had already drifted in
// leaf enumeration order and state packing.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/solver"
)

// maxColors bounds k: wide states pack 4 bits per bag position.
const maxColors = 16

// colorProblem is proper k-coloring over the sorted-bag position
// states of Figure 5: a state assigns each bag position a color,
// packed w bits per position (2 bits while k ≤ 4 — the Figure 5
// layout, which keeps 3-coloring states byte-compatible with the seed
// and supports bags of up to 32 positions — 4 bits beyond).
type colorProblem struct {
	g *graph.Graph
	k int
	w solver.Width
}

// Problem returns the k-coloring algebra over g as a generic
// solver.Problem, for callers (like the decision service) that run
// named problems through the session Solve* helpers on an existing
// decomposition. Vertex IDs of g must match the decomposition's bag
// elements.
func Problem(g *graph.Graph, k int) solver.Problem[uint64] {
	return newColorProblem(g, k)
}

func newColorProblem(g *graph.Graph, k int) colorProblem {
	w := solver.Width(4)
	if k <= 4 {
		w = 2
	}
	return colorProblem{g: g, k: k, w: w}
}

func (cp colorProblem) Name() string { return fmt.Sprintf("coloring(k=%d)", cp.k) }

// allowed reports whether no edge inside the bag is monochromatic — the
// allowed predicate of Figure 5 applied to all color classes at once.
func (cp colorProblem) allowed(bag []int, s uint64) bool {
	for i := 0; i < len(bag); i++ {
		for j := i + 1; j < len(bag); j++ {
			if cp.g.HasEdge(bag[i], bag[j]) && cp.w.At(s, i) == cp.w.At(s, j) {
				return false
			}
		}
	}
	return true
}

// allStates enumerates every position-coloring of the bag, allowed or
// not, in the canonical order: combos count up in base k with position
// 0 varying fastest. GroundDecide needs the unfiltered enumeration.
func (cp colorProblem) allStates(bag []int) []uint64 {
	n := len(bag)
	total := 1
	for i := 0; i < n; i++ {
		total *= cp.k
	}
	out := make([]uint64, 0, total)
	for combo := 0; combo < total; combo++ {
		var s uint64
		x := combo
		for p := 0; p < n; p++ {
			s |= uint64(x%cp.k) << (uint(p) * uint(cp.w))
			x /= cp.k
		}
		out = append(out, s)
	}
	return out
}

// The Problem hooks delegate to the solver.Appender fast path below, so
// the evaluator reuses one transition buffer per node instead of
// allocating a fresh slice per child state.

// Leaf enumerates the proper position-colorings of a leaf bag.
func (cp colorProblem) Leaf(node int, bag []int) []solver.Out[uint64] {
	return cp.AppendLeaf(nil, node, bag)
}

// Introduce tries every color for the new element, keeping proper
// states.
func (cp colorProblem) Introduce(node int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	return cp.AppendIntroduce(nil, node, bag, elem, child)
}

// Forget projects the forgotten element's position out of the state.
func (cp colorProblem) Forget(node int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	return cp.AppendForget(nil, node, bag, elem, child)
}

// Join requires the two subtrees to agree on the bag coloring.
func (cp colorProblem) Join(node int, bag []int, s1, s2 uint64) []solver.Out[uint64] {
	return cp.AppendJoin(nil, node, bag, s1, s2)
}

// AppendLeaf appends the proper position-colorings of a leaf bag.
func (cp colorProblem) AppendLeaf(dst []solver.Out[uint64], _ int, bag []int) []solver.Out[uint64] {
	for _, s := range cp.allStates(bag) {
		if cp.allowed(bag, s) {
			dst = append(dst, solver.Out[uint64]{State: s})
		}
	}
	return dst
}

// AppendIntroduce appends the proper extensions of a child state.
func (cp colorProblem) AppendIntroduce(dst []solver.Out[uint64], _ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	p := solver.Position(bag, elem)
	for c := 0; c < cp.k; c++ {
		s := cp.w.Insert(child, p, uint64(c))
		if cp.allowed(bag, s) {
			dst = append(dst, solver.Out[uint64]{State: s})
		}
	}
	return dst
}

// AppendForget appends the projection of the forgotten element.
func (cp colorProblem) AppendForget(dst []solver.Out[uint64], _ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	childBag := solver.InsertSorted(bag, elem)
	return append(dst, solver.Out[uint64]{State: cp.w.Drop(child, solver.Position(childBag, elem))})
}

// AppendJoin appends the agreement state, if the subtrees agree.
func (cp colorProblem) AppendJoin(dst []solver.Out[uint64], _ int, _ []int, s1, s2 uint64) []solver.Out[uint64] {
	if s1 == s2 {
		dst = append(dst, solver.Out[uint64]{State: s1})
	}
	return dst
}

// Accept: every root state is a full solution (the success rule of
// Figure 5 fires on any surviving state).
func (cp colorProblem) Accept(int, []int, uint64) bool { return true }

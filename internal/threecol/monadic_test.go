package threecol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datalog"
	"repro/internal/graph"
)

func TestMonadicProgramShape(t *testing.T) {
	p := MonadicProgram(1)
	if !p.IsMonadic() {
		t.Fatal("expanded program not monadic")
	}
	// Quasi-guarded over the τ_td functional dependencies (Theorem 5.1's
	// argument for the linear time bound).
	if _, err := datalog.QuasiGuards(p, datalog.TDFuncDeps(1)); err != nil {
		t.Fatalf("not quasi-guarded: %v", err)
	}
	// Rule count is constant in the data: 3^2 leaf + 2!·9 perm + 9·3 repl
	// + 9 branch + 9 result.
	want := 9 + 2*9 + 27 + 9 + 9
	if len(p.Rules) != want {
		t.Fatalf("rules = %d, want %d", len(p.Rules), want)
	}
}

func TestDecideMonadicKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"triangle", graph.Cycle(3), true},
		{"C5", graph.Cycle(5), true},
		{"K4", graph.Complete(4), false},
		{"path", graph.Path(5), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecideMonadic(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("DecideMonadic = %v, want %v", got, tc.want)
			}
		})
	}
}

// Property: the interpreted monadic program agrees with the direct DP.
func TestQuickMonadicAgreesWithDP(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(7) + 2
		g := graph.RandomTree(n, rng)
		for i := rng.Intn(n); i > 0; i-- {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		viaMonadic, err := DecideMonadic(g)
		if err != nil {
			return false
		}
		viaDP, err := Decide(g)
		if err != nil {
			return false
		}
		return viaMonadic == viaDP
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(139))}); err != nil {
		t.Fatal(err)
	}
}

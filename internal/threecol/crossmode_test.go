package threecol

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/solver"
)

// TestCrossModeColoring pins the three evaluation modes of the
// coloring algebra against each other on random partial k-trees:
// decision == (count > 0) == (optimization finds a feasible witness),
// and the witness is a proper coloring.
func TestCrossModeColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ctx := context.Background()
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(12)
		k := 1 + rng.Intn(4)
		g := graph.PartialKTree(n, k, 0.4, rng)
		nice, err := niceFor(g)
		if err != nil {
			t.Fatal(err)
		}
		cp := newColorProblem(g, 3)

		dec, err := solver.Decide(ctx, nice, cp)
		if err != nil {
			t.Fatal(err)
		}
		cnt, err := solver.Count(ctx, nice, cp)
		if err != nil {
			t.Fatal(err)
		}
		der, err := solver.Optimize(ctx, nice, cp)
		if err != nil {
			t.Fatal(err)
		}
		if dec != (cnt.Sign() > 0) || dec != (der != nil) {
			t.Fatalf("trial %d: modes disagree: decide=%v count=%v optimize-feasible=%v",
				trial, dec, cnt, der != nil)
		}
		if dec != BruteForce(g) {
			t.Fatalf("trial %d: decide=%v, brute force=%v", trial, dec, BruteForce(g))
		}

		colors, ok, err := KColoring(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ok != dec {
			t.Fatalf("trial %d: KColoring feasible=%v, decide=%v", trial, ok, dec)
		}
		if ok {
			for _, e := range g.Edges() {
				if colors[e[0]] == colors[e[1]] {
					t.Fatalf("trial %d: witness not a proper coloring at edge %v", trial, e)
				}
			}
		}
	}
}

// TestKColorEquivalentToThreeCol is the regression pin for the handler
// drift the unification fixed: at q=3 the generalized k-coloring path
// and the dedicated 3-colorability path must agree on every randomized
// graph — decision, count and witness feasibility.
func TestKColorEquivalentToThreeCol(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(12)
		g := graph.PartialKTree(n, 1+rng.Intn(3), 0.35, rng)

		want, err := Decide(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := KColorable(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: KColorable(g,3)=%v, threecol.Decide=%v", trial, got, want)
		}
		count, err := CountColorings(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		if (count > 0) != want {
			t.Fatalf("trial %d: CountColorings=%d, threecol.Decide=%v", trial, count, want)
		}
		if bf := CountBruteForce(g, 3); count != bf {
			t.Fatalf("trial %d: CountColorings=%d, brute force=%d", trial, count, bf)
		}
	}
}

package threecol

// k-colorability and coloring counting: the paper highlights datalog's
// flexibility ("many relevant properties can be expressed by really short
// programs"); the Figure 5 program generalizes to any fixed number of
// color classes by widening the solve predicate, and to counting by
// evaluating the same transitions over weights.

import (
	"fmt"

	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/tree"
)

// maxColors bounds k: states pack 4 bits per bag position.
const maxColors = 16

// kcoloring assigns one of k colors (4 bits) per sorted-bag position.
type kcoloring uint64

func kColorOf(s kcoloring, p int) int { return int(s>>(4*uint(p))) & 15 }

func kWithColor(s kcoloring, p, c int) kcoloring {
	low := s & ((1 << (4 * uint(p))) - 1)
	high := s >> (4 * uint(p))
	return low | kcoloring(c)<<(4*uint(p)) | high<<(4*uint(p)+4)
}

func kDropColor(s kcoloring, p int) kcoloring {
	low := s & ((1 << (4 * uint(p))) - 1)
	high := s >> (4*uint(p) + 4)
	return low | high<<(4*uint(p))
}

func kAllowed(g *graph.Graph, bag []int, s kcoloring) bool {
	for i := 0; i < len(bag); i++ {
		for j := i + 1; j < len(bag); j++ {
			if g.HasEdge(bag[i], bag[j]) && kColorOf(s, i) == kColorOf(s, j) {
				return false
			}
		}
	}
	return true
}

// kHandlers builds the k-coloring transitions for graph g.
func kHandlers(g *graph.Graph, k int) dp.Handlers[kcoloring] {
	return dp.Handlers[kcoloring]{
		Leaf: func(_ int, bag []int) []kcoloring {
			var out []kcoloring
			var rec func(p int, s kcoloring)
			rec = func(p int, s kcoloring) {
				if p == len(bag) {
					if kAllowed(g, bag, s) {
						out = append(out, s)
					}
					return
				}
				for c := 0; c < k; c++ {
					rec(p+1, s|kcoloring(c)<<(4*uint(p)))
				}
			}
			rec(0, 0)
			return out
		},
		Introduce: func(_ int, bag []int, elem int, child kcoloring) []kcoloring {
			p := position(bag, elem)
			var out []kcoloring
			for c := 0; c < k; c++ {
				s := kWithColor(child, p, c)
				if kAllowed(g, bag, s) {
					out = append(out, s)
				}
			}
			return out
		},
		Forget: func(_ int, bag []int, elem int, child kcoloring) []kcoloring {
			childBag := insertSorted(bag, elem)
			return []kcoloring{kDropColor(child, position(childBag, elem))}
		},
		Branch: func(_ int, _ []int, s1, s2 kcoloring) []kcoloring {
			if s1 == s2 {
				return []kcoloring{s1}
			}
			return nil
		},
	}
}

// KColorable decides whether g has a proper coloring with k colors.
func KColorable(g *graph.Graph, k int) (bool, error) {
	if k < 1 || k > maxColors {
		return false, fmt.Errorf("threecol: k must be in 1..%d, got %d", maxColors, k)
	}
	nice, err := niceFor(g)
	if err != nil {
		return false, err
	}
	tables, err := dp.RunUp(nice, kHandlers(g, k))
	if err != nil {
		return false, err
	}
	return tables[nice.Root].Len() > 0, nil
}

// CountColorings returns the number of proper k-colorings of g, by the
// weighted bottom-up pass over the same Figure 5 transitions.
func CountColorings(g *graph.Graph, k int) (uint64, error) {
	if k < 1 || k > maxColors {
		return 0, fmt.Errorf("threecol: k must be in 1..%d, got %d", maxColors, k)
	}
	nice, err := niceFor(g)
	if err != nil {
		return 0, err
	}
	counts, err := dp.RunUpCount(nice, kHandlers(g, k))
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, c := range counts[nice.Root] {
		total += c
	}
	return total, nil
}

// ChromaticNumber returns the least k with a proper k-coloring (≤
// maxColors; errors beyond — bounded-treewidth graphs satisfy
// χ ≤ tw+1, so this only fails for very dense inputs).
func ChromaticNumber(g *graph.Graph) (int, error) {
	if g.N() == 0 {
		return 0, nil
	}
	for k := 1; k <= maxColors; k++ {
		ok, err := KColorable(g, k)
		if err != nil {
			return 0, err
		}
		if ok {
			return k, nil
		}
	}
	return 0, fmt.Errorf("threecol: chromatic number exceeds %d", maxColors)
}

func niceFor(g *graph.Graph) (*tree.Decomposition, error) {
	in, err := NewInstance(g)
	if err != nil {
		return nil, err
	}
	return in.nice, nil
}

// CountBruteForce counts proper k-colorings by exhaustive enumeration
// (test oracle; exponential).
func CountBruteForce(g *graph.Graph, k int) uint64 {
	n := g.N()
	colors := make([]int, n)
	var count uint64
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			count++
			return
		}
		for c := 0; c < k; c++ {
			ok := true
			g.Neighbors(v).ForEach(func(u int) bool {
				if u < v && colors[u] == c {
					ok = false
					return false
				}
				return true
			})
			if ok {
				colors[v] = c
				rec(v + 1)
			}
		}
	}
	rec(0)
	return count
}

package threecol

// k-colorability and coloring counting: the paper highlights datalog's
// flexibility ("many relevant properties can be expressed by really short
// programs"); the Figure 5 program generalizes to any fixed number of
// color classes by widening the solve predicate, and to counting by
// evaluating the same transitions in the counting semiring. Both run the
// one colorProblem of problem.go — the seed's separate kHandlers copy
// (which had drifted from the Figure 5 handlers in leaf enumeration
// order and bit packing) is gone.

import (
	"context"
	"fmt"
	"math/big"

	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/solver"
	"repro/internal/tree"
)

// KColorable decides whether g has a proper coloring with k colors.
func KColorable(g *graph.Graph, k int) (bool, error) {
	if k < 1 || k > maxColors {
		return false, fmt.Errorf("threecol: k must be in 1..%d, got %d", maxColors, k)
	}
	nice, err := niceFor(g)
	if err != nil {
		return false, err
	}
	return solver.Decide(context.Background(), nice, newColorProblem(g, k))
}

// KColoring returns a proper k-coloring (vertex → 0..k-1) if one
// exists, from the same witness walk that backs Coloring.
func KColoring(g *graph.Graph, k int) ([]int, bool, error) {
	if k < 1 || k > maxColors {
		return nil, false, fmt.Errorf("threecol: k must be in 1..%d, got %d", maxColors, k)
	}
	in, err := NewInstance(g)
	if err != nil {
		return nil, false, err
	}
	return in.kColoring(context.Background(), k)
}

func (in *Instance) kColoring(ctx context.Context, k int) ([]int, bool, error) {
	cp := newColorProblem(in.g, k)
	der, err := solver.Witness(ctx, in.nice, cp)
	if err != nil || der == nil {
		return nil, false, err
	}
	bags, err := dp.Bags(in.nice)
	if err != nil {
		return nil, false, fmt.Errorf("threecol: %w", err)
	}
	colors := make([]int, in.g.N())
	err = der.Walk(func(v int, s uint64) error {
		for p, e := range bags[v] {
			colors[e] = int(cp.w.At(s, p))
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return colors, true, nil
}

// CountColoringsBig returns the exact number of proper k-colorings of
// g, by the counting-semiring pass over the same Figure 5 transitions.
func CountColoringsBig(g *graph.Graph, k int) (*big.Int, error) {
	if k < 1 || k > maxColors {
		return nil, fmt.Errorf("threecol: k must be in 1..%d, got %d", maxColors, k)
	}
	nice, err := niceFor(g)
	if err != nil {
		return nil, err
	}
	return solver.Count(context.Background(), nice, newColorProblem(g, k))
}

// CountColorings returns the number of proper k-colorings of g,
// truncated to uint64 (counts beyond 2^64 wrap, as with the seed's
// uint64 accumulation; use CountColoringsBig for exact large counts).
func CountColorings(g *graph.Graph, k int) (uint64, error) {
	n, err := CountColoringsBig(g, k)
	if err != nil {
		return 0, err
	}
	var mask big.Int
	mask.SetUint64(^uint64(0))
	return new(big.Int).And(n, &mask).Uint64(), nil
}

// ChromaticNumber returns the least k with a proper k-coloring (≤
// maxColors; errors beyond — bounded-treewidth graphs satisfy
// χ ≤ tw+1, so this only fails for very dense inputs). The graph is
// decomposed once and the nice form reused for every k probe.
func ChromaticNumber(g *graph.Graph) (int, error) {
	if g.N() == 0 {
		return 0, nil
	}
	nice, err := niceFor(g)
	if err != nil {
		return 0, err
	}
	for k := 1; k <= maxColors; k++ {
		ok, err := solver.Decide(context.Background(), nice, newColorProblem(g, k))
		if err != nil {
			return 0, err
		}
		if ok {
			return k, nil
		}
	}
	return 0, fmt.Errorf("threecol: chromatic number exceeds %d", maxColors)
}

func niceFor(g *graph.Graph) (*tree.Decomposition, error) {
	in, err := NewInstance(g)
	if err != nil {
		return nil, err
	}
	return in.nice, nil
}

// CountBruteForce counts proper k-colorings by exhaustive enumeration
// (test oracle; exponential).
func CountBruteForce(g *graph.Graph, k int) uint64 {
	n := g.N()
	colors := make([]int, n)
	var count uint64
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			count++
			return
		}
		for c := 0; c < k; c++ {
			ok := true
			g.Neighbors(v).ForEach(func(u int) bool {
				if u < v && colors[u] == c {
					ok = false
					return false
				}
				return true
			})
			if ok {
				colors[v] = c
				rec(v + 1)
			}
		}
	}
	rec(0)
	return count
}

package threecol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/mso"
	"repro/internal/tree"
)

func TestDecideKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"triangle", graph.Cycle(3), true},
		{"odd cycle", graph.Cycle(7), true},
		{"K4", graph.Complete(4), false},
		{"K3", graph.Complete(3), true},
		{"grid", graph.Grid(3, 4), true},
		{"path", graph.Path(10), true},
		{"single", graph.New(1), true},
		{"empty-ish", graph.New(3), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Decide(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("Decide = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestColoringWitness(t *testing.T) {
	g := graph.Grid(3, 3)
	in, err := NewInstance(g)
	if err != nil {
		t.Fatal(err)
	}
	colors, ok, err := in.Coloring()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("grid not 3-colorable?")
	}
	for _, e := range g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			t.Fatalf("improper coloring at edge %v", e)
		}
	}
	for v, c := range colors {
		if c < 0 || c > 2 {
			t.Fatalf("vertex %d has color %d", v, c)
		}
	}
	// No witness for K4.
	in4, err := NewInstance(graph.Complete(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := in4.Coloring(); err != nil || ok {
		t.Fatalf("K4 coloring = %v, %v", ok, err)
	}
}

func TestGroundDecide(t *testing.T) {
	for _, tc := range []struct {
		g    *graph.Graph
		want bool
	}{
		{graph.Cycle(5), true},
		{graph.Complete(4), false},
		{graph.Grid(2, 4), true},
	} {
		in, err := NewInstance(tc.g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := in.GroundDecide()
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("GroundDecide = %v, want %v", got, tc.want)
		}
	}
}

func TestRejectsInvalidDecomposition(t *testing.T) {
	g := graph.Cycle(4)
	d := tree.New()
	d.SetRoot(d.AddNode([]int{0, 1})) // misses vertices 2, 3 and two edges
	if _, err := NewInstanceWithDecomposition(g, d); err == nil {
		t.Fatal("invalid decomposition accepted")
	}
}

func randGraph(rng *rand.Rand) *graph.Graph {
	n := rng.Intn(9) + 2
	g := graph.RandomTree(n, rng)
	for i := rng.Intn(2 * n); i > 0; i-- {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

// Property: DP, grounding and brute force agree on random graphs.
func TestQuickAllPathsAgree(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng)
		in, err := NewInstance(g)
		if err != nil {
			return false
		}
		dpAns, err := in.Decide()
		if err != nil {
			return false
		}
		groundAns, err := in.GroundDecide()
		if err != nil {
			return false
		}
		want := BruteForce(g)
		if dpAns != want || groundAns != want {
			return false
		}
		// When colorable, the witness must be proper.
		colors, ok, err := in.Coloring()
		if err != nil || ok != want {
			return false
		}
		if ok {
			for _, e := range g.Edges() {
				if colors[e[0]] == colors[e[1]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(79))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the DP agrees with the naive evaluation of the Section 5.1
// MSO sentence on tiny graphs.
func TestQuickAgainstMSO(t *testing.T) {
	sentence := mso.ThreeColorability()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 2
		g := graph.RandomTree(n, rng)
		for i := rng.Intn(n); i > 0; i-- {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		got, err := Decide(g)
		if err != nil {
			return false
		}
		want, err := mso.Sentence(g.ToStructure(), sentence, nil)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(83))}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure5Constant(t *testing.T) {
	if len(Figure5) == 0 {
		t.Fatal("Figure5 program text missing")
	}
}

package threecol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestKColorableKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
		want bool
	}{
		{"path k=2", graph.Path(6), 2, true},
		{"odd cycle k=2", graph.Cycle(5), 2, false},
		{"odd cycle k=3", graph.Cycle(5), 3, true},
		{"K4 k=3", graph.Complete(4), 3, false},
		{"K4 k=4", graph.Complete(4), 4, true},
		{"grid k=2", graph.Grid(3, 3), 2, true},
		{"single k=1", graph.New(1), 1, true},
		{"edge k=1", graph.Path(2), 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := KColorable(tc.g, tc.k)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("KColorable = %v, want %v", got, tc.want)
			}
		})
	}
	if _, err := KColorable(graph.Path(2), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KColorable(graph.Path(2), 99); err == nil {
		t.Fatal("k=99 accepted")
	}
}

func TestCountColoringsKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
		want uint64
	}{
		{"triangle k=3", graph.Cycle(3), 3, 6},
		{"edgeless k=3", graph.New(3), 3, 27},
		{"path2 k=2", graph.Path(2), 2, 2},
		{"path3 k=2", graph.Path(3), 2, 2},
		{"odd cycle k=2", graph.Cycle(5), 2, 0},
		// Chromatic polynomial of C5 at 3: (3-1)^5 + (3-1)·(-1)^5 = 30.
		{"C5 k=3", graph.Cycle(5), 3, 30},
		{"K4 k=4", graph.Complete(4), 4, 24},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := CountColorings(tc.g, tc.k)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("CountColorings = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestChromaticNumber(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.New(0), 0},
		{"edgeless", graph.New(4), 1},
		{"path", graph.Path(5), 2},
		{"odd cycle", graph.Cycle(7), 3},
		{"K5", graph.Complete(5), 5},
		{"grid", graph.Grid(3, 3), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ChromaticNumber(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("χ = %d, want %d", got, tc.want)
			}
		})
	}
}

// Property: counting agrees with brute force, decision agrees with
// count > 0, and KColorable(3) agrees with Decide.
func TestQuickCountingAgreement(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(7) + 2
		g := graph.RandomTree(n, rng)
		for i := rng.Intn(n); i > 0; i-- {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		k := rng.Intn(3) + 1
		count, err := CountColorings(g, k)
		if err != nil {
			return false
		}
		if count != CountBruteForce(g, k) {
			return false
		}
		dec, err := KColorable(g, k)
		if err != nil {
			return false
		}
		if dec != (count > 0) {
			return false
		}
		if k == 3 {
			plain, err := Decide(g)
			if err != nil || plain != dec {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(107))}); err != nil {
		t.Fatal(err)
	}
}

package schema

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/structure"
)

// runningExample is the schema of Example 2.1: R = abcdeg,
// F = {f1: ab→c, f2: c→b, f3: cd→e, f4: de→g, f5: g→e}.
func runningExample() *Schema {
	return MustParse(`
attrs a b c d e g
a b -> c
c -> b
c d -> e
d e -> g
g -> e
`)
}

func (s *Schema) set(t *testing.T, names ...string) *bitset.Set {
	t.Helper()
	out := bitset.New(s.NumAttrs())
	for _, n := range names {
		i, ok := s.Attr(n)
		if !ok {
			t.Fatalf("attribute %s missing", n)
		}
		out.Add(i)
	}
	return out
}

func TestParseAndString(t *testing.T) {
	s := runningExample()
	if s.NumAttrs() != 6 || s.NumFDs() != 5 {
		t.Fatalf("parsed %d attrs, %d FDs", s.NumAttrs(), s.NumFDs())
	}
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if s2.String() != s.String() {
		t.Fatal("round trip changed schema")
	}
	if _, err := Parse("a b c"); err == nil {
		t.Fatal("missing arrow accepted")
	}
	if _, err := Parse("a -> b c"); err == nil {
		t.Fatal("multi-attribute rhs accepted")
	}
	if _, err := Parse("a a -> b"); err == nil {
		t.Fatal("duplicate lhs attribute accepted")
	}
}

func TestClosure(t *testing.T) {
	s := runningExample()
	cases := []struct {
		from []string
		want []string
	}{
		{[]string{"a", "b"}, []string{"a", "b", "c"}},
		{[]string{"a", "b", "d"}, []string{"a", "b", "c", "d", "e", "g"}},
		{[]string{"c"}, []string{"b", "c"}},
		{[]string{"g"}, []string{"e", "g"}},
		{[]string{"d", "e"}, []string{"d", "e", "g"}},
		{nil, nil},
	}
	for _, tc := range cases {
		got := s.Closure(s.set(t, tc.from...))
		want := s.set(t, tc.want...)
		if !got.Equal(want) {
			t.Errorf("Closure(%v): got %v, want %v", tc.from, got.Elems(), want.Elems())
		}
	}
}

func TestEmptyLHS(t *testing.T) {
	// An FD with empty LHS makes its RHS derivable from anything.
	s := New()
	s.AddAttr("a")
	s.AddAttr("b")
	if err := s.AddFD("", nil, 1); err != nil {
		t.Fatal(err)
	}
	got := s.Closure(bitset.New(2))
	if !got.Has(1) || got.Has(0) {
		t.Fatalf("closure of ∅ = %v", got.Elems())
	}
}

func TestKeysOfRunningExample(t *testing.T) {
	// The paper: "there are two keys for the schema: abd and acd".
	s := runningExample()
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("found %d keys, want 2", len(keys))
	}
	want1 := s.set(t, "a", "b", "d")
	want2 := s.set(t, "a", "c", "d")
	found1, found2 := false, false
	for _, k := range keys {
		if k.Equal(want1) {
			found1 = true
		}
		if k.Equal(want2) {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Fatalf("keys wrong: %v", keys)
	}
}

func TestPrimesOfRunningExample(t *testing.T) {
	// The paper: "the attributes a, b, c and d are prime, while e and g
	// are not prime."
	s := runningExample()
	primes, err := s.PrimesBruteForce()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"a": true, "b": true, "c": true, "d": true, "e": false, "g": false}
	for name, isPrime := range want {
		i, _ := s.Attr(name)
		if primes.Has(i) != isPrime {
			t.Errorf("prime(%s) = %v, want %v", name, primes.Has(i), isPrime)
		}
	}
}

func TestSuperkeyKeyClosed(t *testing.T) {
	s := runningExample()
	if !s.IsSuperkey(s.set(t, "a", "b", "d")) {
		t.Fatal("abd not a superkey")
	}
	if !s.IsKey(s.set(t, "a", "b", "d")) {
		t.Fatal("abd not a key")
	}
	if s.IsKey(s.set(t, "a", "b", "c", "d")) {
		t.Fatal("abcd reported as minimal key")
	}
	if !s.IsClosed(s.set(t, "b", "c")) {
		t.Fatal("bc should be closed")
	}
	if s.IsClosed(s.set(t, "a", "b")) {
		t.Fatal("ab should not be closed (derives c)")
	}
}

func TestStructureRoundTrip(t *testing.T) {
	s := runningExample()
	st := s.ToStructure()
	if st.Size() != 11 {
		t.Fatalf("structure size = %d, want 11", st.Size())
	}
	if len(st.Tuples("lh")) != 8 || len(st.Tuples("rh")) != 5 {
		t.Fatal("lh/rh counts wrong")
	}
	back, elemOf, err := FromStructure(st)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != s.String() {
		t.Fatalf("round trip changed schema:\n%s\nvs\n%s", back, s)
	}
	for i := 0; i < back.NumAttrs(); i++ {
		if st.Name(elemOf[i]) != back.AttrName(i) {
			t.Fatal("element mapping wrong")
		}
	}
}

func TestFromStructureErrors(t *testing.T) {
	bad := []string{
		"att(a). fd(f1). lh(a,f1).",                   // FD without rhs
		"att(a). fd(f1). rh(a,f1). rh(a,f1).",         // ok: duplicate tuple deduped
		"att(a). att(b). fd(f1). rh(a,f1). rh(b,f1).", // two rhs
		"att(a). lh(a,a).",                            // lh references non-FD
		"fd(f1). rh(f1,f1).",                          // rh references non-attribute
	}
	for i, src := range bad {
		st, err := structure.Parse(src, Sig)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		_, _, err = FromStructure(st)
		if i == 1 {
			if err != nil {
				t.Errorf("case %d should be accepted: %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Property: closure is extensive, monotone, idempotent; keys found by
// enumeration are superkeys; primality via keys matches brute force.
func TestQuickClosureLaws(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchema(rng)
		n := s.NumAttrs()
		x := bitset.New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				x.Add(i)
			}
		}
		cx := s.Closure(x)
		if !x.SubsetOf(cx) { // extensive
			return false
		}
		if !s.Closure(cx).Equal(cx) { // idempotent
			return false
		}
		y := cx.Clone()
		y.Add(rng.Intn(n))
		if !cx.SubsetOf(s.Closure(y)) { // monotone
			return false
		}
		// Primality via key enumeration agrees with the closed-set
		// characterization used by IsPrimeBruteForce.
		inSomeKey := bitset.New(n)
		keys, err := s.Keys()
		if err != nil {
			return false
		}
		for _, k := range keys {
			inSomeKey.UnionWith(k)
		}
		primes, err := s.PrimesBruteForce()
		if err != nil {
			return false
		}
		return inSomeKey.Equal(primes)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(61))}); err != nil {
		t.Fatal(err)
	}
}

func randomSchema(rng *rand.Rand) *Schema {
	s := New()
	n := rng.Intn(5) + 2
	for i := 0; i < n; i++ {
		s.AddAttr(string(rune('a' + i)))
	}
	for k := rng.Intn(2 * n); k > 0; k-- {
		var lhs []int
		for a := 0; a < n; a++ {
			if rng.Intn(3) == 0 {
				lhs = append(lhs, a)
			}
		}
		if err := s.AddFD("", lhs, rng.Intn(n)); err != nil {
			panic(err)
		}
	}
	return s
}

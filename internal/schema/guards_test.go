package schema

import (
	"errors"
	"fmt"
	"testing"
)

// wideSchema builds a schema with n attributes and no FDs.
func wideSchema(t *testing.T, n int) *Schema {
	t.Helper()
	src := "attrs"
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(" a%d", i)
	}
	s, err := Parse(src + "\n")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBruteForceGuards(t *testing.T) {
	// At the limit the oracles run; one attribute past it they refuse
	// with ErrTooLarge instead of panicking or allocating 2^n work.
	atKeyLimit := wideSchema(t, 20)
	if _, err := atKeyLimit.Keys(); err != nil {
		t.Fatalf("Keys at limit: %v", err)
	}
	overKey := wideSchema(t, 21)
	if _, err := overKey.Keys(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Keys over limit: err = %v, want ErrTooLarge", err)
	}

	overPrime := wideSchema(t, 25)
	if _, err := overPrime.IsPrimeBruteForce(0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("IsPrimeBruteForce over limit: err = %v, want ErrTooLarge", err)
	}
	if _, err := overPrime.PrimesBruteForce(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("PrimesBruteForce over limit: err = %v, want ErrTooLarge", err)
	}
}

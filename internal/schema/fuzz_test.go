package schema

import "testing"

// FuzzParse checks the schema parser never panics and accepted inputs
// survive a print/reparse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"a b -> c\nc -> b",
		"attrs a b c\na -> b",
		"-> a",
		"a ->",
		"a -> b -> c",
		"a a -> b",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			return
		}
		s2, err := Parse(s.String())
		if err != nil {
			t.Fatalf("reparse failed: %v (printed %q)", err, s.String())
		}
		if s2.String() != s.String() {
			t.Fatalf("print/reparse not stable for %q", src)
		}
	})
}

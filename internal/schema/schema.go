// Package schema implements relational schemas (R, F) from database
// design theory (Section 2.1): attribute sets, functional dependencies,
// attribute-set closure, keys and prime attributes, plus the encoding of
// schemas as τ-structures over τ = {fd, att, lh, rh} (Section 2.2).
//
// The brute-force primality test here is the exponential reference oracle
// used to validate the paper's fixed-parameter tractable algorithms in
// internal/primality.
package schema

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/structure"
)

// ErrTooLarge reports that an exponential reference oracle was asked
// about a schema beyond its hard size limit; test with errors.Is.
var ErrTooLarge = errors.New("schema: instance too large for brute force")

// FD is a functional dependency LHS → RHS with a single right-hand-side
// attribute (w.l.o.g., as in the paper). Attributes are indices into the
// schema's attribute list.
type FD struct {
	Name string
	LHS  []int
	RHS  int
}

// Schema is a relational schema (R, F).
type Schema struct {
	attrs  []string
	byName map[string]int
	fds    []FD
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{byName: map[string]int{}}
}

// AddAttr adds (or finds) an attribute by name and returns its index.
func (s *Schema) AddAttr(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	i := len(s.attrs)
	s.attrs = append(s.attrs, name)
	s.byName[name] = i
	return i
}

// Attr returns the index of the named attribute.
func (s *Schema) Attr(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// AttrName returns the name of attribute i.
func (s *Schema) AttrName(i int) string {
	if i < 0 || i >= len(s.attrs) {
		return fmt.Sprintf("#%d", i)
	}
	return s.attrs[i]
}

// NumAttrs returns |R|.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// NumFDs returns |F|.
func (s *Schema) NumFDs() int { return len(s.fds) }

// FDs returns the functional dependencies (not to be modified).
func (s *Schema) FDs() []FD { return s.fds }

// AddFD appends an FD over existing attribute indices. An empty name is
// replaced by f<k>.
func (s *Schema) AddFD(name string, lhs []int, rhs int) error {
	if rhs < 0 || rhs >= len(s.attrs) {
		return fmt.Errorf("schema: rhs attribute %d out of range", rhs)
	}
	seen := map[int]bool{}
	for _, a := range lhs {
		if a < 0 || a >= len(s.attrs) {
			return fmt.Errorf("schema: lhs attribute %d out of range", a)
		}
		if seen[a] {
			return fmt.Errorf("schema: duplicate lhs attribute %s", s.AttrName(a))
		}
		seen[a] = true
	}
	if name == "" {
		name = fmt.Sprintf("f%d", len(s.fds)+1)
	}
	s.fds = append(s.fds, FD{Name: name, LHS: append([]int(nil), lhs...), RHS: rhs})
	return nil
}

// AddFDByNames adds an FD given attribute names, creating attributes as
// needed.
func (s *Schema) AddFDByNames(name string, lhs []string, rhs string) error {
	lidx := make([]int, len(lhs))
	for i, n := range lhs {
		lidx[i] = s.AddAttr(n)
	}
	return s.AddFD(name, lidx, s.AddAttr(rhs))
}

// Parse reads a schema in the text format:
//
//	% comment
//	attrs a b c d e g        % optional; declares attribute order
//	a b -> c
//	c -> b
//
// Each FD line lists left-hand-side attributes, "->", and a single
// right-hand-side attribute. FDs are named f1, f2, … in order.
func Parse(src string) (sch *Schema, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("schema: internal parser error: %v", r)
		}
	}()
	s := New()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "attrs "); ok {
			for _, n := range strings.Fields(rest) {
				s.AddAttr(n)
			}
			continue
		}
		parts := strings.Split(line, "->")
		if len(parts) != 2 {
			return nil, fmt.Errorf("schema: line %d: expected 'lhs -> rhs'", lineNo+1)
		}
		lhs := strings.Fields(parts[0])
		rhs := strings.Fields(parts[1])
		if len(rhs) != 1 {
			return nil, fmt.Errorf("schema: line %d: expected a single rhs attribute", lineNo+1)
		}
		if err := s.AddFDByNames("", lhs, rhs[0]); err != nil {
			return nil, fmt.Errorf("schema: line %d: %w", lineNo+1, err)
		}
	}
	return s, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Schema {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// String renders the schema in the format accepted by Parse.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString("attrs")
	for _, a := range s.attrs {
		b.WriteByte(' ')
		b.WriteString(a)
	}
	b.WriteByte('\n')
	for _, f := range s.fds {
		names := make([]string, len(f.LHS))
		for i, a := range f.LHS {
			names[i] = s.AttrName(a)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "%s -> %s\n", strings.Join(names, " "), s.AttrName(f.RHS))
	}
	return b.String()
}

// Closure computes X⁺, the set of attributes determined by X, by the
// linear-time counting algorithm (Beeri–Bernstein): each FD keeps a count
// of left-hand-side attributes not yet derived; when it reaches zero the
// right-hand side is derived.
func (s *Schema) Closure(x *bitset.Set) *bitset.Set {
	closure := x.Clone()
	remaining := make([]int, len(s.fds))
	occ := make([][]int, len(s.attrs)) // attribute → FDs with it on the left
	var queue []int
	for fi, f := range s.fds {
		remaining[fi] = len(f.LHS)
		for _, a := range f.LHS {
			occ[a] = append(occ[a], fi)
		}
		if remaining[fi] == 0 && !closure.Has(f.RHS) {
			closure.Add(f.RHS)
			queue = append(queue, f.RHS)
		}
	}
	x.ForEach(func(a int) bool {
		if a < len(s.attrs) {
			queue = append(queue, a)
		}
		return true
	})
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, fi := range occ[a] {
			remaining[fi]--
			if remaining[fi] == 0 {
				rhs := s.fds[fi].RHS
				if !closure.Has(rhs) {
					closure.Add(rhs)
					queue = append(queue, rhs)
				}
			}
		}
	}
	return closure
}

// AllAttrs returns R as a bit set.
func (s *Schema) AllAttrs() *bitset.Set {
	out := bitset.New(len(s.attrs))
	for i := range s.attrs {
		out.Add(i)
	}
	return out
}

// IsSuperkey reports whether X⁺ = R.
func (s *Schema) IsSuperkey(x *bitset.Set) bool {
	return s.Closure(x).Equal(s.AllAttrs())
}

// IsKey reports whether X is a minimal superkey.
func (s *Schema) IsKey(x *bitset.Set) bool {
	if !s.IsSuperkey(x) {
		return false
	}
	ok := true
	x.ForEach(func(a int) bool {
		smaller := x.Clone()
		smaller.Remove(a)
		if s.IsSuperkey(smaller) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// IsClosed reports whether X⁺ = X.
func (s *Schema) IsClosed(x *bitset.Set) bool {
	return s.Closure(x).Equal(x)
}

// IsPrimeBruteForce decides primality of attribute a by the exponential
// characterization of Example 2.6: a is prime iff some closed Y ⊆ R with
// a ∉ Y has (Y ∪ {a})⁺ = R. Only for small schemas (reference oracle);
// beyond 24 attributes it returns ErrTooLarge.
func (s *Schema) IsPrimeBruteForce(a int) (bool, error) {
	n := len(s.attrs)
	if n > 24 {
		return false, fmt.Errorf("%w: brute-force primality limited to 24 attributes, got %d", ErrTooLarge, n)
	}
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		if mask&(1<<uint(a)) != 0 {
			continue
		}
		y := bitset.New(n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				y.Add(i)
			}
		}
		if !s.IsClosed(y) {
			continue
		}
		y.Add(a)
		if s.IsSuperkey(y) {
			return true, nil
		}
	}
	return false, nil
}

// PrimesBruteForce returns all prime attributes via IsPrimeBruteForce.
func (s *Schema) PrimesBruteForce() (*bitset.Set, error) {
	out := bitset.New(len(s.attrs))
	for a := range s.attrs {
		prime, err := s.IsPrimeBruteForce(a)
		if err != nil {
			return nil, err
		}
		if prime {
			out.Add(a)
		}
	}
	return out, nil
}

// Keys enumerates all keys (minimal superkeys) by checking every subset;
// exponential, for small schemas only — beyond 20 attributes it returns
// ErrTooLarge.
func (s *Schema) Keys() ([]*bitset.Set, error) {
	n := len(s.attrs)
	if n > 20 {
		return nil, fmt.Errorf("%w: key enumeration limited to 20 attributes, got %d", ErrTooLarge, n)
	}
	var out []*bitset.Set
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		x := bitset.New(n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				x.Add(i)
			}
		}
		if s.IsKey(x) {
			out = append(out, x)
		}
	}
	return out, nil
}

// Sig is the schema signature τ = {fd, att, lh, rh} of Section 2.2.
var Sig = structure.MustSignature(
	structure.Predicate{Name: "fd", Arity: 1},
	structure.Predicate{Name: "att", Arity: 1},
	structure.Predicate{Name: "lh", Arity: 2},
	structure.Predicate{Name: "rh", Arity: 2},
)

// ToStructure encodes the schema as a τ-structure (Example 2.2): the
// domain is R ∪ F with att/fd marking the two sorts and lh/rh relating
// attributes to the FDs they occur in.
func (s *Schema) ToStructure() *structure.Structure {
	st := structure.New(Sig)
	attrElem := make([]int, len(s.attrs))
	for i, name := range s.attrs {
		attrElem[i] = st.AddElem(name)
		st.MustAddTuple("att", attrElem[i])
	}
	for _, f := range s.fds {
		fe := st.AddElem(f.Name)
		st.MustAddTuple("fd", fe)
		for _, a := range f.LHS {
			st.MustAddTuple("lh", attrElem[a], fe)
		}
		st.MustAddTuple("rh", attrElem[f.RHS], fe)
	}
	return st
}

// FromStructure decodes a τ-structure over Sig back into a schema,
// together with the mapping from attribute indices to domain elements.
func FromStructure(st *structure.Structure) (*Schema, []int, error) {
	s := New()
	elemOf := []int{}
	attrIdx := map[int]int{}
	for _, t := range st.Tuples("att") {
		idx := s.AddAttr(st.Name(t[0]))
		attrIdx[t[0]] = idx
		for len(elemOf) <= idx {
			elemOf = append(elemOf, 0)
		}
		elemOf[idx] = t[0]
	}
	type protoFD struct {
		lhs []int
		rhs int
	}
	fds := map[int]*protoFD{}
	order := []int{}
	for _, t := range st.Tuples("fd") {
		fds[t[0]] = &protoFD{rhs: -1}
		order = append(order, t[0])
	}
	sort.Ints(order)
	for _, t := range st.Tuples("lh") {
		f, ok := fds[t[1]]
		if !ok {
			return nil, nil, fmt.Errorf("schema: lh references non-FD %s", st.Name(t[1]))
		}
		a, ok := attrIdx[t[0]]
		if !ok {
			return nil, nil, fmt.Errorf("schema: lh references non-attribute %s", st.Name(t[0]))
		}
		f.lhs = append(f.lhs, a)
	}
	for _, t := range st.Tuples("rh") {
		f, ok := fds[t[1]]
		if !ok {
			return nil, nil, fmt.Errorf("schema: rh references non-FD %s", st.Name(t[1]))
		}
		a, ok := attrIdx[t[0]]
		if !ok {
			return nil, nil, fmt.Errorf("schema: rh references non-attribute %s", st.Name(t[0]))
		}
		if f.rhs >= 0 {
			return nil, nil, fmt.Errorf("schema: FD %s has two right-hand sides", st.Name(t[1]))
		}
		f.rhs = a
	}
	for _, fe := range order {
		f := fds[fe]
		if f.rhs < 0 {
			return nil, nil, fmt.Errorf("schema: FD %s has no right-hand side", st.Name(fe))
		}
		sort.Ints(f.lhs)
		if err := s.AddFD(st.Name(fe), f.lhs, f.rhs); err != nil {
			return nil, nil, err
		}
	}
	return s, elemOf, nil
}

package schema

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/decompose"
	"repro/internal/graph"
)

func TestIncidenceGraphShape(t *testing.T) {
	s := MustParse("a b -> c\nc -> b")
	g := s.IncidenceGraph()
	// 3 attributes + 2 hyperedges ({a,b,c} and {b,c}).
	if g.N() != 5 {
		t.Fatalf("N = %d, want 5", g.N())
	}
	// abc-hyperedge has degree 3, bc-hyperedge degree 2.
	degs := []int{g.Degree(3), g.Degree(4)}
	if !(degs[0] == 3 && degs[1] == 2) && !(degs[0] == 2 && degs[1] == 3) {
		t.Fatalf("hyperedge degrees = %v", degs)
	}
	// One hyperedge per FD even for equal attribute sets (see the
	// package comment on why identification would break the Remark).
	s2 := MustParse("a -> b\nb -> a")
	if got := s2.IncidenceGraph().N(); got != 4 {
		t.Fatalf("N = %d, want 4", got)
	}
}

// Property (Section 2.2, Remark): the treewidth of the schema's
// τ-structure and of the incidence graph of H(R, F) coincide.
func TestQuickIncidenceTreewidthRemark(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchema(rng)
		inc := s.IncidenceGraph()
		primal := graph.Primal(s.ToStructure())
		if inc.N() > decompose.MaxExactVertices || primal.N() > decompose.MaxExactVertices {
			return true
		}
		twInc, err := decompose.Treewidth(inc)
		if err != nil {
			return false
		}
		twPrimal, err := decompose.Treewidth(primal)
		if err != nil {
			return false
		}
		return twInc == twPrimal
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(109))}); err != nil {
		t.Fatal(err)
	}
}

package schema

import (
	"sort"
	"strconv"

	"repro/internal/graph"
)

// IncidenceGraph returns the incidence graph of the hypergraph H(R, F) of
// the Section 2.2 Remark: the hypergraph's vertices are the attributes
// and its hyperedges the attribute sets of the FDs (lhs ∪ rhs, one
// hyperedge per FD); the incidence graph connects each attribute to the
// hyperedges containing it. The Remark observes that its treewidth
// coincides with the treewidth of the schema's τ-structure — verified as
// a property test in this package.
//
// One hyperedge per FD matters: identifying two FDs with the same
// attribute set would lower the incidence graph's treewidth below the
// τ-structure's (two FDs over attribute set {a, b} give a 4-cycle in the
// τ-structure's primal graph but only a path after identification), so
// the Remark holds for the multiset reading of "the sets of attributes
// jointly occurring in at least one FD".
//
// Vertices 0..NumAttrs-1 are the attributes; higher vertices are
// hyperedges in FD order.
func (s *Schema) IncidenceGraph() *graph.Graph {
	g := graph.New(s.NumAttrs() + s.NumFDs())
	for i := 0; i < s.NumAttrs(); i++ {
		g.SetName(i, s.AttrName(i))
	}
	for fi, f := range s.FDs() {
		v := s.NumAttrs() + fi
		g.SetName(v, "h"+strconv.Itoa(fi+1))
		attrs := append([]int(nil), f.LHS...)
		attrs = append(attrs, f.RHS)
		sort.Ints(attrs)
		for _, a := range attrs {
			g.AddEdge(a, v)
		}
	}
	return g
}

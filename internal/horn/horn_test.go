package horn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimpleChain(t *testing.T) {
	var p Program
	p.AddClause(0)       // fact 0
	p.AddClause(1, 0)    // 1 ← 0
	p.AddClause(2, 1, 0) // 2 ← 1,0
	p.AddClause(3, 4)    // 3 ← 4 (underivable)
	m := p.Solve()
	want := []bool{true, true, true, false, false}
	for i, w := range want {
		if m[i] != w {
			t.Fatalf("var %d = %v, want %v", i, m[i], w)
		}
	}
	if p.Size() != 1+2+3+2 {
		t.Fatalf("Size = %d", p.Size())
	}
}

func TestDuplicateBodyLiterals(t *testing.T) {
	var p Program
	p.AddClause(0)
	p.AddClause(1, 0, 0, 0)
	m := p.Solve()
	if !m[1] {
		t.Fatal("duplicate body literals break propagation")
	}
}

func TestCycle(t *testing.T) {
	var p Program
	p.AddClause(0, 1)
	p.AddClause(1, 0)
	m := p.Solve()
	if m[0] || m[1] {
		t.Fatal("cyclic support derived without base fact")
	}
	p.AddClause(0)
	m = p.Solve()
	if !m[0] || !m[1] {
		t.Fatal("cycle with base fact not derived")
	}
}

func TestEmpty(t *testing.T) {
	var p Program
	if got := p.Solve(); len(got) != 0 {
		t.Fatal("empty program should have empty model")
	}
}

// Property: LTUR and the naive fixpoint agree on random programs.
func TestQuickSolveAgreesWithNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := rng.Intn(30) + 1
		var p Program
		p.NumVars = nVars
		nClauses := rng.Intn(60)
		for i := 0; i < nClauses; i++ {
			head := rng.Intn(nVars)
			body := make([]int, rng.Intn(4))
			for j := range body {
				body[j] = rng.Intn(nVars)
			}
			p.AddClause(head, body...)
		}
		a, b := p.Solve(), p.SolveNaive()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

// Package horn implements propositional definite Horn programs and their
// least models. Ground (propositional) datalog can be evaluated in linear
// time ([7, 27] in the paper: Dowling–Gallier / Minoux' LTUR); this is the
// back-end of the quasi-guarded evaluation of Theorem 4.4, where a
// quasi-guarded program is first grounded in time O(|P|·|A|) and the
// ground program is then solved here in time linear in its size.
package horn

// Clause is a definite Horn clause: Head ← Body[0] ∧ … ∧ Body[n-1].
// Variables are identified by dense non-negative integers. A clause with
// an empty body is a fact.
type Clause struct {
	Head int
	Body []int
}

// Program is a set of definite Horn clauses over variables 0..NumVars-1.
type Program struct {
	NumVars int
	Clauses []Clause
}

// AddClause appends a clause, growing NumVars as needed.
func (p *Program) AddClause(head int, body ...int) {
	if head >= p.NumVars {
		p.NumVars = head + 1
	}
	for _, b := range body {
		if b >= p.NumVars {
			p.NumVars = b + 1
		}
	}
	p.Clauses = append(p.Clauses, Clause{Head: head, Body: append([]int(nil), body...)})
}

// Size returns the total number of literal occurrences, the |P'| of
// Theorem 4.4's complexity bound.
func (p *Program) Size() int {
	n := 0
	for _, c := range p.Clauses {
		n += 1 + len(c.Body)
	}
	return n
}

// Solve computes the least model by linear-time unit resolution (LTUR):
// each clause keeps a counter of unsatisfied body literals; when it drops
// to zero the head is derived and propagated through an occurrence list.
// Runs in time O(Size()).
func (p *Program) Solve() []bool {
	truth := make([]bool, p.NumVars)
	remaining := make([]int, len(p.Clauses))
	occ := make([][]int, p.NumVars) // variable → clauses with it in the body
	var queue []int

	for ci, c := range p.Clauses {
		remaining[ci] = len(c.Body)
		for _, b := range c.Body {
			occ[b] = append(occ[b], ci)
		}
		if len(c.Body) == 0 && !truth[c.Head] {
			truth[c.Head] = true
			queue = append(queue, c.Head)
		}
	}
	// Account for body literals that may repeat: remaining counts
	// occurrences, which is safe because each occurrence is decremented
	// exactly once when its variable becomes true.
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ci := range occ[v] {
			remaining[ci]--
			if remaining[ci] == 0 {
				h := p.Clauses[ci].Head
				if !truth[h] {
					truth[h] = true
					queue = append(queue, h)
				}
			}
		}
	}
	return truth
}

// SolveNaive computes the least model by iterating the immediate
// consequence operator to fixpoint. Quadratic; used to cross-check Solve
// in tests.
func (p *Program) SolveNaive() []bool {
	truth := make([]bool, p.NumVars)
	for changed := true; changed; {
		changed = false
		for _, c := range p.Clauses {
			if truth[c.Head] {
				continue
			}
			all := true
			for _, b := range c.Body {
				if !truth[b] {
					all = false
					break
				}
			}
			if all {
				truth[c.Head] = true
				changed = true
			}
		}
	}
	return truth
}

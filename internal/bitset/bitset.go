// Package bitset provides a compact growable bit set used throughout the
// library to represent sets of domain elements, vertices and attributes.
//
// The zero value is an empty set ready for use. All operations treat bits
// beyond the last stored word as zero, so sets of different capacities can
// be combined freely.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a set of non-negative integers backed by a []uint64.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity for n elements preallocated.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice returns a set containing exactly the given elements.
func FromSlice(elems []int) *Set {
	s := &Set{}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts i into the set. i must be non-negative.
func (s *Set) Add(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: negative element %d", i))
	}
	w := i / wordBits
	s.grow(w)
	s.words[w] |= 1 << (i % wordBits)
}

// Remove deletes i from the set; removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << (i % wordBits)
	}
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<(i%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Clear removes all elements, keeping the allocated capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// CopyFrom makes s equal to t, reusing s's storage when possible.
func (s *Set) CopyFrom(t *Set) {
	if cap(s.words) < len(t.words) {
		s.words = make([]uint64, len(t.words))
	} else {
		s.words = s.words[:len(t.words)]
	}
	copy(s.words, t.words)
}

// IntersectLen returns |s ∩ t| without allocating.
func (s *Set) IntersectLen(t *Set) int {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	count := 0
	for i := 0; i < n; i++ {
		count += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return count
}

// UnionWith adds every element of t to s.
func (s *Set) UnionWith(t *Set) {
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// DifferenceWith removes every element of t from s.
func (s *Set) DifferenceWith(t *Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &^= t.words[i]
		}
	}
}

// Union returns a new set s ∪ t.
func (s *Set) Union(t *Set) *Set {
	c := s.Clone()
	c.UnionWith(t)
	return c
}

// Intersect returns a new set s ∩ t.
func (s *Set) Intersect(t *Set) *Set {
	c := s.Clone()
	c.IntersectWith(t)
	return c
}

// Difference returns a new set s \ t.
func (s *Set) Difference(t *Set) *Set {
	c := s.Clone()
	c.DifferenceWith(t)
	return c
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var sw, tw uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if i < len(t.words) {
			tw = t.words[i]
		}
		if sw != tw {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t is non-empty.
func (s *Set) Intersects(t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Elems returns the elements of the set in increasing order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &^= 1 << b
		}
	}
	return out
}

// ForEach calls f for every element in increasing order; if f returns
// false, iteration stops.
func (s *Set) ForEach(f func(int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &^= 1 << b
		}
	}
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Key returns a canonical string key for use in maps. Two sets have the
// same key iff they are Equal.
func (s *Set) Key() string {
	// Trim trailing zero words so capacity does not affect the key.
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%016x", s.words[i])
	}
	return b.String()
}

// String renders the set as "{e1 e2 ...}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(10)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	s.Add(3)
	s.Add(70) // forces growth
	s.Add(3)  // duplicate
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if !s.Has(3) || !s.Has(70) || s.Has(4) || s.Has(-1) {
		t.Fatal("membership wrong")
	}
	s.Remove(3)
	s.Remove(1000) // absent, no-op
	if s.Has(3) || s.Len() != 1 {
		t.Fatal("Remove failed")
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var s Set
	s.Add(-1)
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice([]int{1, 2, 3, 64, 65})
	b := FromSlice([]int{2, 64, 200})

	if got := a.Union(b).Elems(); !equalInts(got, []int{1, 2, 3, 64, 65, 200}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Elems(); !equalInts(got, []int{2, 64}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Difference(b).Elems(); !equalInts(got, []int{1, 3, 65}) {
		t.Errorf("Difference = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	if a.Intersect(b).Empty() {
		t.Error("intersection reported empty")
	}
	if FromSlice([]int{1}).Intersects(FromSlice([]int{2})) {
		t.Error("disjoint sets reported intersecting")
	}
}

func TestSubsetEqualKey(t *testing.T) {
	a := FromSlice([]int{1, 5})
	b := FromSlice([]int{1, 5, 9})
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("SubsetOf wrong")
	}
	// Equal/Key must ignore capacity differences.
	c := New(1000)
	c.Add(1)
	c.Add(5)
	if !a.Equal(c) || a.Key() != c.Key() {
		t.Fatal("Equal/Key sensitive to capacity")
	}
	if a.Equal(b) || a.Key() == b.Key() {
		t.Fatal("unequal sets compare equal")
	}
	if !a.SubsetOf(a) {
		t.Fatal("set not subset of itself")
	}
}

func TestElemsMinForEach(t *testing.T) {
	s := FromSlice([]int{9, 0, 128, 63, 64})
	want := []int{0, 9, 63, 64, 128}
	if got := s.Elems(); !equalInts(got, want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	if s.Min() != 0 {
		t.Fatalf("Min = %d, want 0", s.Min())
	}
	var empty Set
	if empty.Min() != -1 {
		t.Fatal("Min of empty set should be -1")
	}
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 3
	})
	if !equalInts(seen, []int{0, 9, 63}) {
		t.Fatalf("ForEach early stop = %v", seen)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := a.Clone()
	b.Add(3)
	if a.Has(3) {
		t.Fatal("Clone shares storage")
	}
}

// Property: set operations agree with a map-based model.
func TestQuickAgainstModel(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, ma := buildBoth(xs)
		b, mb := buildBoth(ys)

		union := map[int]bool{}
		inter := map[int]bool{}
		diff := map[int]bool{}
		for k := range ma {
			union[k] = true
			if mb[k] {
				inter[k] = true
			} else {
				diff[k] = true
			}
		}
		for k := range mb {
			union[k] = true
		}
		return equalInts(a.Union(b).Elems(), sortedKeys(union)) &&
			equalInts(a.Intersect(b).Elems(), sortedKeys(inter)) &&
			equalInts(a.Difference(b).Elems(), sortedKeys(diff)) &&
			a.SubsetOf(b) == (len(diff) == 0) &&
			a.Intersects(b) == (len(inter) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is injective on set contents.
func TestQuickKeyInjective(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, _ := buildBoth(xs)
		b, _ := buildBoth(ys)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func buildBoth(xs []uint8) (*Set, map[int]bool) {
	s := &Set{}
	m := map[int]bool{}
	for _, x := range xs {
		s.Add(int(x))
		m[int(x)] = true
	}
	return s, m
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestClear(t *testing.T) {
	s := FromSlice([]int{1, 65, 200})
	s.Clear()
	if !s.Empty() || s.Len() != 0 {
		t.Fatalf("Clear left %v", s)
	}
	s.Add(65)
	if !s.Has(65) || s.Len() != 1 {
		t.Fatal("set unusable after Clear")
	}
}

func TestCopyFrom(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 300})
	s.CopyFrom(FromSlice([]int{7, 64}))
	if !equalInts(s.Elems(), []int{7, 64}) {
		t.Fatalf("CopyFrom shrink got %v", s.Elems())
	}
	small := New(1)
	small.CopyFrom(FromSlice([]int{500}))
	if !equalInts(small.Elems(), []int{500}) {
		t.Fatalf("CopyFrom grow got %v", small.Elems())
	}
	// Mutating the copy must not touch the source.
	src := FromSlice([]int{9})
	dst := &Set{}
	dst.CopyFrom(src)
	dst.Add(10)
	if src.Has(10) {
		t.Fatal("CopyFrom aliased the source")
	}
}

func TestQuickIntersectLen(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, am := buildBoth(xs)
		b, bm := buildBoth(ys)
		want := 0
		for k := range am {
			if bm[k] {
				want++
			}
		}
		return a.IntersectLen(b) == want && b.IntersectLen(a) == want &&
			a.IntersectLen(b) == a.Intersect(b).Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

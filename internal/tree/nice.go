package tree

import (
	"fmt"

	"repro/internal/bitset"
)

// NiceOptions controls NormalizeNice.
type NiceOptions struct {
	// LeafElems, if non-nil, requests that every element of the set occurs
	// in the bag of at least one leaf node (needed by the PRIMALITY
	// enumeration algorithm of Section 5.3, where prime(a) is decided at a
	// leaf containing a).
	LeafElems *bitset.Set
	// BranchGuard requests the Section 5.3 discipline: every branch node
	// has a parent with an identical bag (a copy node is inserted where
	// needed), so a branch node always has two identical-bag children no
	// matter where the tree is rooted, and the root is never a branch.
	BranchGuard bool
}

// NormalizeNice transforms a valid tree decomposition into the modified
// ("nice") normal form of Section 5: bags are sets, and every node is a
// leaf, an element introduction node (bag = child's bag plus one element),
// an element removal node (bag = child's bag minus one element), a copy
// node (bag identical to the only child's), or a branch node (two children
// with bags identical to its own). Width is preserved and the output size
// is linear in the input size.
func NormalizeNice(d *Decomposition, opts NiceOptions) (*Decomposition, error) {
	if err := d.checkTree(); err != nil {
		return nil, err
	}
	work := d.Clone()

	// Ensure requested elements occur in leaf bags by attaching a fresh
	// leaf (with the same bag) below some node containing the element.
	if opts.LeafElems != nil {
		inLeaf := &bitset.Set{}
		for _, l := range work.Leaves() {
			for _, e := range work.Nodes[l].Bag {
				inLeaf.Add(e)
			}
		}
		opts.LeafElems.ForEach(func(e int) bool {
			if inLeaf.Has(e) {
				return true
			}
			t := work.NodeWithElem(e)
			if t < 0 {
				return true // not in the decomposition at all; Validate will catch it elsewhere
			}
			leaf := work.AddNode(work.Nodes[t].Bag)
			work.Nodes[t].Children = append(work.Nodes[t].Children, leaf)
			work.Nodes[leaf].Parent = t
			for _, e2 := range work.Nodes[leaf].Bag {
				inLeaf.Add(e2)
			}
			return true
		})
	}

	out := New()

	// chainTo builds forget/introduce nodes from (fromID, fromSet) up to
	// the target bag set, one element per node, and returns the top node.
	// Forgets run in descending element order and introductions in
	// ascending order: clients that pair elements (like the PRIMALITY
	// algorithms, where a bag holding an FD must also hold its rhs
	// attribute, and FD elements have larger IDs than attributes) then get
	// dependents removed before and added after their anchors.
	chainTo := func(fromID int, fromSet *bitset.Set, target *bitset.Set) (int, *bitset.Set) {
		cur, curSet := fromID, fromSet.Clone()
		for _, e := range reversed(fromSet.Difference(target).Elems()) {
			curSet.Remove(e)
			id := out.AddNode(curSet.Elems(), cur)
			out.Nodes[id].Kind = KindForget
			out.Nodes[id].Elem = e
			cur = id
		}
		for _, e := range target.Difference(fromSet).Elems() {
			curSet.Add(e)
			id := out.AddNode(curSet.Elems(), cur)
			out.Nodes[id].Kind = KindIntroduce
			out.Nodes[id].Elem = e
			cur = id
		}
		return cur, curSet
	}

	var norm func(v int, children []int) (int, *bitset.Set)
	norm = func(v int, children []int) (int, *bitset.Set) {
		bag := bitset.FromSlice(work.Nodes[v].Bag)
		switch len(children) {
		case 0:
			id := out.AddNode(bag.Elems())
			out.Nodes[id].Kind = KindLeaf
			return id, bag
		case 1:
			cid, cset := norm(children[0], work.Nodes[children[0]].Children)
			return chainTo(cid, cset, bag)
		case 2:
			var tops []int
			for _, c := range children {
				cid, cset := norm(c, work.Nodes[c].Children)
				top, _ := chainTo(cid, cset, bag)
				tops = append(tops, top)
			}
			id := out.AddNode(bag.Elems(), tops[0], tops[1])
			out.Nodes[id].Kind = KindBranch
			return id, bag
		default:
			restID, restSet := norm(v, children[1:])
			restTop, _ := chainTo(restID, restSet, bag)
			cid, cset := norm(children[0], work.Nodes[children[0]].Children)
			firstTop, _ := chainTo(cid, cset, bag)
			id := out.AddNode(bag.Elems(), firstTop, restTop)
			out.Nodes[id].Kind = KindBranch
			return id, bag
		}
	}

	rootID, _ := norm(work.Root, work.Nodes[work.Root].Children)
	out.SetRoot(rootID)

	if opts.BranchGuard {
		// Insert an identical-bag copy node above every branch node whose
		// parent bag differs (or which is the root).
		for v := 0; v < len(out.Nodes); v++ {
			n := out.Nodes[v]
			if n.Kind != KindBranch {
				continue
			}
			p := n.Parent
			if p >= 0 && bitset.FromSlice(out.Nodes[p].Bag).Equal(bitset.FromSlice(n.Bag)) {
				continue
			}
			out.insertAbove(v, n.Bag, KindCopy, -1)
		}
	}
	return out, nil
}

func reversed(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[len(xs)-1-i] = x
	}
	return out
}

// insertAbove creates a new node with the given bag between v and its
// parent (or above the root) and returns its ID.
func (d *Decomposition) insertAbove(v int, bag []int, kind Kind, elem int) int {
	p := d.Nodes[v].Parent
	id := len(d.Nodes)
	d.Nodes = append(d.Nodes, Node{
		Bag:      append([]int(nil), bag...),
		Children: []int{v},
		Parent:   p,
		Kind:     kind,
		Elem:     elem,
	})
	d.Nodes[v].Parent = id
	if p >= 0 {
		for i, c := range d.Nodes[p].Children {
			if c == v {
				d.Nodes[p].Children[i] = id
			}
		}
	} else {
		d.Root = id
	}
	return id
}

// CheckNice verifies the nice-form node discipline of Section 5.
func CheckNice(d *Decomposition) error {
	if err := d.checkTree(); err != nil {
		return err
	}
	for id, n := range d.Nodes {
		bag := bitset.FromSlice(n.Bag)
		if bag.Len() != len(n.Bag) {
			return fmt.Errorf("tree: node %d bag has duplicates", id)
		}
		switch len(n.Children) {
		case 0:
			if n.Kind != KindLeaf {
				return fmt.Errorf("tree: leaf node %d marked %v", id, n.Kind)
			}
		case 1:
			cbag := bitset.FromSlice(d.Nodes[n.Children[0]].Bag)
			switch n.Kind {
			case KindIntroduce:
				want := cbag.Clone()
				want.Add(n.Elem)
				if cbag.Has(n.Elem) || !bag.Equal(want) {
					return fmt.Errorf("tree: introduce node %d inconsistent", id)
				}
			case KindForget:
				want := cbag.Clone()
				want.Remove(n.Elem)
				if !cbag.Has(n.Elem) || !bag.Equal(want) {
					return fmt.Errorf("tree: forget node %d inconsistent", id)
				}
			case KindCopy:
				if !bag.Equal(cbag) {
					return fmt.Errorf("tree: copy node %d changes bag", id)
				}
			default:
				return fmt.Errorf("tree: one-child node %d has kind %v", id, n.Kind)
			}
		case 2:
			if n.Kind != KindBranch {
				return fmt.Errorf("tree: two-child node %d has kind %v", id, n.Kind)
			}
			for _, c := range n.Children {
				if !bag.Equal(bitset.FromSlice(d.Nodes[c].Bag)) {
					return fmt.Errorf("tree: branch node %d child %d bag differs", id, c)
				}
			}
		default:
			return fmt.Errorf("tree: node %d has %d children", id, len(n.Children))
		}
	}
	return nil
}

// CheckEnumerable verifies the additional Section 5.3 discipline on top of
// CheckNice: every element of elems occurs in some leaf bag, every branch
// node's parent has an identical bag, and the root is not a branch node.
func CheckEnumerable(d *Decomposition, elems *bitset.Set) error {
	if err := CheckNice(d); err != nil {
		return err
	}
	inLeaf := &bitset.Set{}
	for _, l := range d.Leaves() {
		for _, e := range d.Nodes[l].Bag {
			inLeaf.Add(e)
		}
	}
	if elems != nil && !elems.SubsetOf(inLeaf) {
		missing := elems.Difference(inLeaf)
		return fmt.Errorf("tree: elements %v not in any leaf bag", missing.Elems())
	}
	for id, n := range d.Nodes {
		if n.Kind != KindBranch {
			continue
		}
		if n.Parent < 0 {
			return fmt.Errorf("tree: root %d is a branch node", id)
		}
		if !bitset.FromSlice(d.Nodes[n.Parent].Bag).Equal(bitset.FromSlice(n.Bag)) {
			return fmt.Errorf("tree: branch node %d parent bag differs", id)
		}
	}
	return nil
}

package tree

import (
	"fmt"

	"repro/internal/bitset"
)

// NormalizeTuple transforms a valid tree decomposition of width w into the
// tuple normal form of Definition 2.3 (via the construction of
// Proposition 2.4): every bag is a tuple of exactly w+1 pairwise distinct
// elements, every internal node has 1 or 2 children, one-child nodes are
// permutation or element-replacement nodes (position 0 replaced), and
// branch nodes have two children with bags identical to their own.
//
// The transformation is linear in the size of d and preserves the width.
// The domain must have at least w+1 elements, which holds automatically
// because some bag of a width-w decomposition has w+1 distinct elements.
func NormalizeTuple(d *Decomposition) (*Decomposition, error) {
	if err := d.checkTree(); err != nil {
		return nil, err
	}
	w := d.Width()
	padded, err := padBags(d, w)
	if err != nil {
		return nil, err
	}

	out := New()

	// chainTo extends the output tree upward from node fromID (whose bag
	// tuple is fromTuple) to a node whose bag is the element set target,
	// inserting permutation and replacement nodes (Prop. 2.4 steps 4–5).
	// It returns the topmost node added and its tuple. If the sets already
	// agree, it returns the input unchanged.
	chainTo := func(fromID int, fromTuple []int, target *bitset.Set) (int, []int) {
		from := bitset.FromSlice(fromTuple)
		outgoing := from.Difference(target).Elems()
		incoming := target.Difference(from).Elems()
		cur, curTuple := fromID, fromTuple
		for i := range outgoing {
			x, y := outgoing[i], incoming[i]
			// Permutation bringing x to position 0 (skipped if in place).
			if curTuple[0] != x {
				perm := rotateToFront(curTuple, x)
				id := out.AddNode(perm, cur)
				out.Nodes[id].Kind = KindPermutation
				cur, curTuple = id, perm
			}
			// Replacement of position 0: x → y.
			repl := append([]int{y}, curTuple[1:]...)
			id := out.AddNode(repl, cur)
			out.Nodes[id].Kind = KindReplacement
			out.Nodes[id].Elem = y
			cur, curTuple = id, repl
		}
		return cur, curTuple
	}

	// permuteTo places an exact tuple above cur if needed.
	permuteTo := func(cur int, curTuple, want []int) int {
		if tuplesEqual(curTuple, want) {
			return cur
		}
		id := out.AddNode(want, cur)
		out.Nodes[id].Kind = KindPermutation
		return id
	}

	// norm builds the gadget for node v (with children already binarized
	// on the fly) and returns the topmost output node and its tuple.
	var norm func(v int, children []int) (int, []int)
	norm = func(v int, children []int) (int, []int) {
		bag := padded[v]
		bagSet := bitset.FromSlice(bag)
		switch len(children) {
		case 0:
			id := out.AddNode(bag)
			out.Nodes[id].Kind = KindLeaf
			return id, bag
		case 1:
			c := children[0]
			cid, ctuple := norm(c, d.Nodes[c].Children)
			top, tuple := chainTo(cid, ctuple, bagSet)
			if top == cid {
				// Bags agree as sets; represent v as a permutation node so
				// every original node keeps a counterpart.
				id := out.AddNode(tuple, top)
				out.Nodes[id].Kind = KindPermutation
				return id, tuple
			}
			return top, tuple
		case 2:
			want := bag
			var tops []int
			for _, c := range children {
				cid, ctuple := norm(c, d.Nodes[c].Children)
				top, tuple := chainTo(cid, ctuple, bagSet)
				tops = append(tops, permuteTo(top, tuple, want))
			}
			id := out.AddNode(want, tops[0], tops[1])
			out.Nodes[id].Kind = KindBranch
			return id, want
		default:
			// Binarize (Prop. 2.4 step 2): v keeps its first child; a copy
			// of v takes the rest.
			restID, restTuple := norm(v, children[1:])
			restTop := permuteTo(restID, restTuple, bag)
			cid, ctuple := norm(children[0], d.Nodes[children[0]].Children)
			top, tuple := chainTo(cid, ctuple, bitset.FromSlice(bag))
			firstTop := permuteTo(top, tuple, bag)
			id := out.AddNode(bag, firstTop, restTop)
			out.Nodes[id].Kind = KindBranch
			return id, bag
		}
	}

	rootID, _ := norm(d.Root, d.Nodes[d.Root].Children)
	out.SetRoot(rootID)
	return out, nil
}

func rotateToFront(tuple []int, x int) []int {
	outT := make([]int, 0, len(tuple))
	outT = append(outT, x)
	for _, e := range tuple {
		if e != x {
			outT = append(outT, e)
		}
	}
	return outT
}

func tuplesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// padBags returns, for every node of d, a bag extended to exactly w+1
// pairwise distinct elements by borrowing elements from already padded
// neighbors (Prop. 2.4 step 1). Padding preserves validity because each
// borrowed element is present in an adjacent bag.
func padBags(d *Decomposition, w int) ([][]int, error) {
	full := w + 1
	padded := make([][]int, len(d.Nodes))
	// Find a node whose bag is already full; one exists by definition of
	// the width.
	start := -1
	for i, n := range d.Nodes {
		if len(uniqueInts(n.Bag)) == full {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("tree: no bag of full size %d; width inconsistent", full)
	}
	// Undirected adjacency for BFS.
	adj := make([][]int, len(d.Nodes))
	for i, n := range d.Nodes {
		for _, c := range n.Children {
			adj[i] = append(adj[i], c)
			adj[c] = append(adj[c], i)
		}
	}
	visited := make([]bool, len(d.Nodes))
	visited[start] = true
	padded[start] = sortedBag(uniqueInts(d.Nodes[start].Bag))
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if visited[u] {
				continue
			}
			visited[u] = true
			bag := uniqueInts(d.Nodes[u].Bag)
			have := bitset.FromSlice(bag)
			for _, e := range padded[v] {
				if len(bag) >= full {
					break
				}
				if !have.Has(e) {
					have.Add(e)
					bag = append(bag, e)
				}
			}
			if len(bag) != full {
				return nil, fmt.Errorf("tree: cannot pad bag of node %d to size %d", u, full)
			}
			padded[u] = sortedBag(bag)
			queue = append(queue, u)
		}
	}
	for i := range d.Nodes {
		if !visited[i] {
			return nil, fmt.Errorf("tree: node %d unreachable during padding", i)
		}
	}
	return padded, nil
}

func uniqueInts(xs []int) []int {
	seen := map[int]bool{}
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// CheckTuple verifies that d is in the tuple normal form of Definition 2.3
// for width w: full-size duplicate-free tuple bags, 1–2 children per
// internal node, permutation/replacement discipline on one-child nodes,
// and identical bags at branch nodes.
func CheckTuple(d *Decomposition, w int) error {
	if err := d.checkTree(); err != nil {
		return err
	}
	for id, n := range d.Nodes {
		if len(n.Bag) != w+1 {
			return fmt.Errorf("tree: node %d bag has size %d, want %d", id, len(n.Bag), w+1)
		}
		if len(uniqueInts(n.Bag)) != len(n.Bag) {
			return fmt.Errorf("tree: node %d bag has duplicate elements", id)
		}
		switch len(n.Children) {
		case 0:
			if n.Kind != KindLeaf {
				return fmt.Errorf("tree: node %d is a leaf but marked %v", id, n.Kind)
			}
		case 1:
			c := d.Nodes[n.Children[0]]
			switch n.Kind {
			case KindPermutation:
				if !bitset.FromSlice(n.Bag).Equal(bitset.FromSlice(c.Bag)) {
					return fmt.Errorf("tree: permutation node %d changes bag contents", id)
				}
			case KindReplacement:
				if !tuplesEqual(n.Bag[1:], c.Bag[1:]) {
					return fmt.Errorf("tree: replacement node %d modifies positions beyond 0", id)
				}
				if n.Bag[0] == c.Bag[0] {
					return fmt.Errorf("tree: replacement node %d replaces nothing", id)
				}
				if n.Elem != n.Bag[0] {
					return fmt.Errorf("tree: replacement node %d has Elem %d, want %d", id, n.Elem, n.Bag[0])
				}
			default:
				return fmt.Errorf("tree: one-child node %d has kind %v", id, n.Kind)
			}
		case 2:
			if n.Kind != KindBranch {
				return fmt.Errorf("tree: two-child node %d has kind %v", id, n.Kind)
			}
			for _, ci := range n.Children {
				if !tuplesEqual(n.Bag, d.Nodes[ci].Bag) {
					return fmt.Errorf("tree: branch node %d child %d has different bag", id, ci)
				}
			}
		default:
			return fmt.Errorf("tree: node %d has %d children", id, len(n.Children))
		}
	}
	return nil
}

package tree

import (
	"strings"
	"testing"
)

// TestGoldenTupleNormalForm pins the normalized form of the running
// example (the construction behind Figure 2): normalization is
// deterministic, so the rendered tree is a stable artifact. If this test
// fails after an intentional algorithm change, inspect the new output for
// validity (the structural tests do that independently) and update the
// snapshot.
func TestGoldenTupleNormalForm(t *testing.T) {
	st := exampleStructure(t)
	d := exampleDecomposition(t, st)
	norm, err := NormalizeTuple(d)
	if err != nil {
		t.Fatal(err)
	}
	got := norm.Format(st.Name)

	// Structural facts pinned by the snapshot below.
	if err := CheckTuple(norm, 2); err != nil {
		t.Fatal(err)
	}
	want := strings.TrimLeft(`
s20 [branch] (d e f3)
  s11 [perm] (d e f3)
    s10 [repl e] (e f3 d)
      s9 [perm] (c f3 d)
        s8 [repl f3] (f3 d c)
          s7 [perm] (f2 d c)
            s6 [repl d] (d f2 c)
              s5 [perm] (b f2 c)
                s4 [repl f2] (f2 c b)
                  s3 [perm] (f1 c b)
                    s2 [repl c] (c b f1)
                      s1 [leaf] (a b f1)
  s19 [perm] (d e f3)
    s18 [repl f3] (f3 d e)
      s17 [perm] (f4 d e)
        s16 [repl d] (d f4 e)
          s15 [perm] (g f4 e)
            s14 [repl f4] (f4 e g)
              s13 [perm] (f5 e g)
                s12 [leaf] (e g f5)
`, "\n")
	if got != want {
		t.Fatalf("normalized form changed:\n%s", got)
	}
}

package tree

import (
	"context"

	"repro/internal/stage"
	"repro/internal/structure"
)

// The Ctx variants below put the tree-normalization stages under the
// same cancellation and error-tagging contract as the heavy pipeline
// stages. Normalization is linear in the decomposition size, so a
// single poll before the work keeps deadlines honest without
// instrumenting the gadget-construction recursion; errors come back
// wrapped in a *stage.Error carrying the stage that produced them.

// NormalizeTupleCtx is NormalizeTuple with cancellation support and
// stage-tagged errors (stage.NormalizeTuple).
func NormalizeTupleCtx(ctx context.Context, d *Decomposition) (*Decomposition, error) {
	if err := ctx.Err(); err != nil {
		return nil, stage.Wrap(stage.NormalizeTuple, err)
	}
	out, err := NormalizeTuple(d)
	return out, stage.Wrap(stage.NormalizeTuple, err)
}

// NormalizeNiceCtx is NormalizeNice with cancellation support and
// stage-tagged errors (stage.NormalizeNice).
func NormalizeNiceCtx(ctx context.Context, d *Decomposition, opts NiceOptions) (*Decomposition, error) {
	if err := ctx.Err(); err != nil {
		return nil, stage.Wrap(stage.NormalizeNice, err)
	}
	out, err := NormalizeNice(d, opts)
	return out, stage.Wrap(stage.NormalizeNice, err)
}

// BuildTDCtx is BuildTD with cancellation support and stage-tagged
// errors (stage.BuildTD).
func BuildTDCtx(ctx context.Context, st *structure.Structure, d *Decomposition, w int) (*structure.Structure, []int, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, stage.Wrap(stage.BuildTD, err)
	}
	td, nodeElem, err := BuildTD(st, d, w)
	return td, nodeElem, stage.Wrap(stage.BuildTD, err)
}

// Package tree implements tree decompositions of finite structures and
// graphs (Section 2.2), their validation, the two normal forms used by the
// paper — the tuple normal form of Definition 2.3 and the "nice" normal
// form of Section 5 (leaf / introduce / forget / branch nodes) — and the
// construction of the extended τ_td structure of Section 4.
package tree

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/structure"
)

// Kind classifies a node of a normalized tree decomposition.
type Kind int

// Node kinds. Raw decompositions use KindUnknown throughout; the tuple
// normal form (Def. 2.3) uses Leaf/Permutation/Replacement/Branch; the
// nice normal form (Sec. 5) uses Leaf/Introduce/Forget/Copy/Branch.
const (
	KindUnknown     Kind = iota
	KindLeaf             // no children
	KindPermutation      // tuple form: child bag is a permutation of this bag
	KindReplacement      // tuple form: position 0 of the child bag replaced
	KindIntroduce        // nice form: bag = child bag ∪ {Elem}
	KindForget           // nice form: bag = child bag \ {Elem}
	KindCopy             // nice form: bag identical to the only child's bag
	KindBranch           // two children with bags identical to this bag
)

func (k Kind) String() string {
	switch k {
	case KindLeaf:
		return "leaf"
	case KindPermutation:
		return "perm"
	case KindReplacement:
		return "repl"
	case KindIntroduce:
		return "intro"
	case KindForget:
		return "forget"
	case KindCopy:
		return "copy"
	case KindBranch:
		return "branch"
	default:
		return "node"
	}
}

// Node is one node of a rooted tree decomposition.
type Node struct {
	// Bag lists the elements of the node's bag. In the tuple normal form
	// the order is significant (the bag is a tuple of pairwise distinct
	// elements); in raw and nice decompositions it is kept sorted.
	Bag []int
	// Children lists child node IDs; order is significant (child1/child2).
	Children []int
	// Parent is the parent node ID, or -1 for the root.
	Parent int
	// Kind is the node's role in a normal form (KindUnknown if raw).
	Kind Kind
	// Elem is the element introduced (KindIntroduce), forgotten
	// (KindForget), or placed at position 0 (KindReplacement); -1 otherwise.
	Elem int
}

// Decomposition is a rooted tree decomposition: a tree of bags over the
// element IDs of some structure or graph.
type Decomposition struct {
	Nodes []Node
	Root  int
}

// New returns an empty decomposition with no nodes and an unset root.
func New() *Decomposition {
	return &Decomposition{Root: -1}
}

// AddNode appends a node with the given bag and (already added) children
// and returns its ID. Parent pointers of the children are set. The bag
// slice is copied.
func (d *Decomposition) AddNode(bag []int, children ...int) int {
	id := len(d.Nodes)
	n := Node{
		Bag:      append([]int(nil), bag...),
		Children: append([]int(nil), children...),
		Parent:   -1,
		Elem:     -1,
	}
	d.Nodes = append(d.Nodes, n)
	for _, c := range children {
		d.Nodes[c].Parent = id
	}
	return id
}

// SetRoot marks the given node as root.
func (d *Decomposition) SetRoot(id int) {
	d.Root = id
	d.Nodes[id].Parent = -1
}

// Len returns the number of nodes.
func (d *Decomposition) Len() int { return len(d.Nodes) }

// Width returns max |bag| - 1, or -1 for an empty decomposition.
func (d *Decomposition) Width() int {
	w := 0
	for _, n := range d.Nodes {
		if len(n.Bag) > w {
			w = len(n.Bag)
		}
	}
	return w - 1
}

// BagSet returns node id's bag as a bit set.
func (d *Decomposition) BagSet(id int) *bitset.Set {
	return bitset.FromSlice(d.Nodes[id].Bag)
}

// Leaves returns the IDs of all leaf nodes.
func (d *Decomposition) Leaves() []int {
	var out []int
	for i, n := range d.Nodes {
		if len(n.Children) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// PostOrder returns all node IDs so that children precede parents.
func (d *Decomposition) PostOrder() []int {
	out := make([]int, 0, len(d.Nodes))
	var rec func(int)
	rec = func(v int) {
		for _, c := range d.Nodes[v].Children {
			rec(c)
		}
		out = append(out, v)
	}
	if d.Root >= 0 {
		rec(d.Root)
	}
	return out
}

// PreOrder returns all node IDs so that parents precede children.
func (d *Decomposition) PreOrder() []int {
	post := d.PostOrder()
	out := make([]int, len(post))
	for i, v := range post {
		out[len(post)-1-i] = v
	}
	return out
}

// checkTree verifies that the decomposition is a tree rooted at Root with
// consistent parent/child pointers and every node reachable from the root.
func (d *Decomposition) checkTree() error {
	if len(d.Nodes) == 0 {
		return fmt.Errorf("tree: empty decomposition")
	}
	if d.Root < 0 || d.Root >= len(d.Nodes) {
		return fmt.Errorf("tree: root %d out of range", d.Root)
	}
	if d.Nodes[d.Root].Parent != -1 {
		return fmt.Errorf("tree: root has a parent")
	}
	seen := make([]bool, len(d.Nodes))
	var rec func(int) error
	rec = func(v int) error {
		if seen[v] {
			return fmt.Errorf("tree: node %d visited twice (cycle or shared child)", v)
		}
		seen[v] = true
		for _, c := range d.Nodes[v].Children {
			if c < 0 || c >= len(d.Nodes) {
				return fmt.Errorf("tree: child %d of node %d out of range", c, v)
			}
			if d.Nodes[c].Parent != v {
				return fmt.Errorf("tree: node %d has parent %d, expected %d", c, d.Nodes[c].Parent, v)
			}
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(d.Root); err != nil {
		return err
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("tree: node %d unreachable from root", i)
		}
	}
	return nil
}

// bagSets materializes every bag as a bit set once, shared by the
// validation passes (the seed rebuilt a bit set per tuple/edge probe).
func (d *Decomposition) bagSets() []*bitset.Set {
	bags := make([]*bitset.Set, len(d.Nodes))
	for i := range d.Nodes {
		bags[i] = bitset.FromSlice(d.Nodes[i].Bag)
	}
	return bags
}

// checkConnectedness verifies condition (3) of the tree decomposition
// definition: for every element, the nodes whose bags contain it induce a
// connected subtree. An element's occurrence nodes form a forest whose
// roots are exactly the occurrences whose parent bag lacks the element;
// the subtree is connected iff there is exactly one such root, so one
// linear sweep over all bags suffices.
func (d *Decomposition) checkConnectedness(bags []*bitset.Set) error {
	tops := map[int]int{}
	for v := range d.Nodes {
		pa := d.Nodes[v].Parent
		for _, e := range d.Nodes[v].Bag {
			if pa < 0 || !bags[pa].Has(e) {
				tops[e]++
			}
		}
	}
	for e, t := range tops {
		if t != 1 {
			return fmt.Errorf("tree: element %d violates connectedness (%d disjoint occurrence subtrees)", e, t)
		}
	}
	return nil
}

func containsElem(bag []int, e int) bool {
	for _, b := range bag {
		if b == e {
			return true
		}
	}
	return false
}

// Validate checks that d is a tree decomposition of the structure st:
// tree shape, every element covered, every tuple covered by some bag, and
// connectedness.
func (d *Decomposition) Validate(st *structure.Structure) error {
	if err := d.checkTree(); err != nil {
		return err
	}
	covered := bitset.New(st.Size())
	for _, n := range d.Nodes {
		for _, e := range n.Bag {
			if e < 0 || e >= st.Size() {
				return fmt.Errorf("tree: bag element %d outside domain", e)
			}
			covered.Add(e)
		}
	}
	if covered.Len() != st.Size() {
		return fmt.Errorf("tree: %d of %d elements not covered by any bag", st.Size()-covered.Len(), st.Size())
	}
	bags := d.bagSets()
	// Element → nodes whose bag contains it: a tuple is covered iff some
	// node holding its first element holds all of it, so each tuple probes
	// only that element's occurrence list instead of every node.
	nodesOf := make([][]int32, st.Size())
	for v := range d.Nodes {
		for _, e := range d.Nodes[v].Bag {
			nodesOf[e] = append(nodesOf[e], int32(v))
		}
	}
	for _, p := range st.Sig().Predicates() {
	tuples:
		for _, tuple := range st.Tuples(p.Name) {
			if len(tuple) == 0 {
				continue
			}
			for _, v := range nodesOf[tuple[0]] {
				all := true
				for _, e := range tuple[1:] {
					if !bags[v].Has(e) {
						all = false
						break
					}
				}
				if all {
					continue tuples
				}
			}
			return fmt.Errorf("tree: tuple %s(%v) not covered by any bag", p.Name, st.Names(tuple))
		}
	}
	return d.checkConnectedness(bags)
}

// ValidateGraph checks that d is a tree decomposition of the graph g.
func (d *Decomposition) ValidateGraph(g *graph.Graph) error {
	if err := d.checkTree(); err != nil {
		return err
	}
	covered := bitset.New(g.N())
	for _, n := range d.Nodes {
		for _, e := range n.Bag {
			if e < 0 || e >= g.N() {
				return fmt.Errorf("tree: bag vertex %d outside graph", e)
			}
			covered.Add(e)
		}
	}
	if covered.Len() != g.N() {
		return fmt.Errorf("tree: %d vertices not covered", g.N()-covered.Len())
	}
	// Mark every vertex pair co-resident in some bag (Σ|bag|² work), then
	// check each edge with one bit probe instead of scanning all nodes.
	cov := make([]*bitset.Set, g.N())
	for i := range d.Nodes {
		bag := d.Nodes[i].Bag
		for a, x := range bag {
			for _, y := range bag[a+1:] {
				lo, hi := x, y
				if lo > hi {
					lo, hi = hi, lo
				}
				if cov[lo] == nil {
					cov[lo] = &bitset.Set{}
				}
				cov[lo].Add(hi)
			}
		}
	}
	for _, e := range g.Edges() {
		lo, hi := e[0], e[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo != hi && (cov[lo] == nil || !cov[lo].Has(hi)) {
			return fmt.Errorf("tree: edge {%d,%d} not covered", e[0], e[1])
		}
	}
	return d.checkConnectedness(d.bagSets())
}

// Clone returns a deep copy of the decomposition.
func (d *Decomposition) Clone() *Decomposition {
	c := &Decomposition{Root: d.Root, Nodes: make([]Node, len(d.Nodes))}
	for i, n := range d.Nodes {
		c.Nodes[i] = Node{
			Bag:      append([]int(nil), n.Bag...),
			Children: append([]int(nil), n.Children...),
			Parent:   n.Parent,
			Kind:     n.Kind,
			Elem:     n.Elem,
		}
	}
	return c
}

// ReRoot reorients the tree so that newRoot becomes the root. Node kinds
// are reset to KindUnknown (normal forms are direction-dependent).
func (d *Decomposition) ReRoot(newRoot int) {
	if newRoot == d.Root {
		return
	}
	// Build undirected adjacency, then redo parent/children from newRoot.
	adj := make([][]int, len(d.Nodes))
	for i, n := range d.Nodes {
		for _, c := range n.Children {
			adj[i] = append(adj[i], c)
			adj[c] = append(adj[c], i)
		}
	}
	for i := range d.Nodes {
		d.Nodes[i].Children = nil
		d.Nodes[i].Parent = -1
		d.Nodes[i].Kind = KindUnknown
		d.Nodes[i].Elem = -1
	}
	var rec func(v, parent int)
	rec = func(v, parent int) {
		d.Nodes[v].Parent = parent
		for _, w := range adj[v] {
			if w != parent {
				d.Nodes[v].Children = append(d.Nodes[v].Children, w)
				rec(w, v)
			}
		}
	}
	rec(newRoot, -1)
	d.Root = newRoot
}

// NodeWithElem returns some node whose bag contains e, or -1.
func (d *Decomposition) NodeWithElem(e int) int {
	for i, n := range d.Nodes {
		if containsElem(n.Bag, e) {
			return i
		}
	}
	return -1
}

// SubtreeElems returns the set of elements occurring in any bag of the
// subtree rooted at v (the elements of the induced substructure
// I(A, T_v, v) of Definition 3.2).
func (d *Decomposition) SubtreeElems(v int) *bitset.Set {
	s := &bitset.Set{}
	var rec func(int)
	rec = func(u int) {
		for _, e := range d.Nodes[u].Bag {
			s.Add(e)
		}
		for _, c := range d.Nodes[u].Children {
			rec(c)
		}
	}
	rec(v)
	return s
}

// EnvelopeElems returns the set of elements occurring in any bag of the
// envelope T̄_v (everything except the strict subtree below v; v's own bag
// is included), per Definition 3.1.
func (d *Decomposition) EnvelopeElems(v int) *bitset.Set {
	inSubtree := make([]bool, len(d.Nodes))
	var mark func(int)
	mark = func(u int) {
		inSubtree[u] = true
		for _, c := range d.Nodes[u].Children {
			mark(c)
		}
	}
	mark(v)
	s := &bitset.Set{}
	for i, n := range d.Nodes {
		if inSubtree[i] && i != v {
			continue
		}
		for _, e := range n.Bag {
			s.Add(e)
		}
	}
	return s
}

func sortedBag(bag []int) []int {
	out := append([]int(nil), bag...)
	sort.Ints(out)
	return out
}

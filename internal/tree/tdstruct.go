package tree

import (
	"fmt"
	"strings"

	"repro/internal/structure"
)

// TDPredicates returns the extra predicate symbols of the extended
// signature τ_td of Section 4 for width w: root/1, leaf/1, child1/2,
// child2/2 and bag/(w+2), plus single/1 marking nodes with exactly one
// child. The paper's rules implicitly assume that permutation/replacement
// rules only apply at one-child nodes; since branch children carry bags
// identical to their parent, a literal datalog reading of those rules
// would also fire at branch nodes, so the node kind is made explicit
// (computable in linear time while building the decomposition).
func TDPredicates(w int) []structure.Predicate {
	return []structure.Predicate{
		{Name: "root", Arity: 1},
		{Name: "leaf", Arity: 1},
		{Name: "single", Arity: 1},
		{Name: "child1", Arity: 2},
		{Name: "child2", Arity: 2},
		{Name: "bag", Arity: w + 2},
	}
}

// BuildTD constructs the τ_td-structure A_td of Section 4 from a
// τ-structure and a tree decomposition in tuple normal form of width w:
// the domain is extended with one fresh element per tree node, and the
// relations root, leaf, child1, child2 and bag represent the tree. The
// returned slice maps decomposition node IDs to their domain element IDs.
func BuildTD(st *structure.Structure, d *Decomposition, w int) (*structure.Structure, []int, error) {
	if err := CheckTuple(d, w); err != nil {
		return nil, nil, fmt.Errorf("tree: decomposition not in tuple normal form: %w", err)
	}
	sig, err := st.Sig().Extend(TDPredicates(w)...)
	if err != nil {
		return nil, nil, err
	}
	td := structure.New(sig)
	// Copy the original structure.
	for i := 0; i < st.Size(); i++ {
		td.AddElem(st.Name(i))
	}
	for _, p := range st.Sig().Predicates() {
		for _, tuple := range st.Tuples(p.Name) {
			if err := td.AddTuple(p.Name, tuple...); err != nil {
				return nil, nil, err
			}
		}
	}
	// Fresh elements for tree nodes.
	nodeElem := make([]int, len(d.Nodes))
	for i := range d.Nodes {
		name := fmt.Sprintf("s%d", i+1)
		for {
			if _, exists := td.Elem(name); !exists {
				break
			}
			name = "_" + name
		}
		nodeElem[i] = td.AddElem(name)
	}
	// Tree relations.
	if err := td.AddTuple("root", nodeElem[d.Root]); err != nil {
		return nil, nil, err
	}
	for i, n := range d.Nodes {
		if len(n.Children) == 0 {
			if err := td.AddTuple("leaf", nodeElem[i]); err != nil {
				return nil, nil, err
			}
		}
		if len(n.Children) == 1 {
			if err := td.AddTuple("single", nodeElem[i]); err != nil {
				return nil, nil, err
			}
		}
		if len(n.Children) >= 1 {
			if err := td.AddTuple("child1", nodeElem[n.Children[0]], nodeElem[i]); err != nil {
				return nil, nil, err
			}
		}
		if len(n.Children) == 2 {
			if err := td.AddTuple("child2", nodeElem[n.Children[1]], nodeElem[i]); err != nil {
				return nil, nil, err
			}
		}
		args := make([]int, 0, w+2)
		args = append(args, nodeElem[i])
		args = append(args, n.Bag...)
		if err := td.AddTuple("bag", args...); err != nil {
			return nil, nil, err
		}
	}
	return td, nodeElem, nil
}

// Format renders the decomposition as an indented tree; name translates
// element IDs to display names (pass nil for numeric IDs). Used to
// reproduce the figures of the paper in examples and golden tests.
func (d *Decomposition) Format(name func(int) string) string {
	if name == nil {
		name = func(e int) string { return fmt.Sprintf("%d", e) }
	}
	var b strings.Builder
	var rec func(v int, depth int)
	rec = func(v int, depth int) {
		n := d.Nodes[v]
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "s%d", v+1)
		if n.Kind != KindUnknown {
			fmt.Fprintf(&b, " [%s", n.Kind)
			if n.Elem >= 0 {
				fmt.Fprintf(&b, " %s", name(n.Elem))
			}
			b.WriteString("]")
		}
		b.WriteString(" (")
		for i, e := range n.Bag {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(name(e))
		}
		b.WriteString(")\n")
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	if d.Root >= 0 {
		rec(d.Root, 0)
	}
	return b.String()
}

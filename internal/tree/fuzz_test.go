// Fuzz properties of the nice normal form. Lives in an external test
// package so it can drive the decompose pipeline (decompose imports tree).
package tree_test

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/tree"
)

// FuzzNormalizeNice checks, on random partial k-tree decompositions, that
// NormalizeNice always emits a decomposition that (a) passes CheckNice,
// (b) is still a valid tree decomposition of the source graph, (c) never
// increases the width, and (d) honors the LeafElems/CheckEnumerable
// contract when requested.
func FuzzNormalizeNice(f *testing.F) {
	f.Add(int64(42), byte(18), byte(3), byte(77), byte(0))
	f.Add(int64(1), byte(5), byte(1), byte(0), byte(1))
	f.Add(int64(-7), byte(33), byte(2), byte(200), byte(2))
	f.Add(int64(99), byte(60), byte(4), byte(128), byte(3))
	f.Fuzz(func(t *testing.T, seed int64, n, k, drop, opts byte) {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + int(n)%60
		kk := 1 + int(k)%4
		g := graph.PartialKTree(nv, kk, float64(drop)/255.0, rng)
		d, err := decompose.Graph(g, decompose.MinFill)
		if err != nil {
			t.Fatalf("decompose: %v", err)
		}
		if err := d.ValidateGraph(g); err != nil {
			t.Fatalf("raw decomposition invalid: %v", err)
		}
		no := tree.NiceOptions{BranchGuard: opts&1 != 0}
		var attrElems *bitset.Set
		if opts&2 != 0 {
			attrElems = bitset.New(nv)
			for i := 0; i < nv; i++ {
				attrElems.Add(i)
			}
			no.LeafElems = attrElems
		}
		nice, err := tree.NormalizeNice(d, no)
		if err != nil {
			t.Fatalf("NormalizeNice: %v", err)
		}
		if err := tree.CheckNice(nice); err != nil {
			t.Fatalf("CheckNice after normalization: %v", err)
		}
		if err := nice.ValidateGraph(g); err != nil {
			t.Fatalf("normalized decomposition invalid: %v", err)
		}
		if nice.Width() > d.Width() {
			t.Fatalf("normalization increased width: %d > %d", nice.Width(), d.Width())
		}
		if attrElems != nil {
			if no.BranchGuard {
				// The full enumeration form needs branch guards too.
				if err := tree.CheckEnumerable(nice, attrElems); err != nil {
					t.Fatalf("CheckEnumerable: %v", err)
				}
			} else {
				inLeaf := bitset.New(nv)
				for _, l := range nice.Leaves() {
					for _, e := range nice.Nodes[l].Bag {
						inLeaf.Add(e)
					}
				}
				if !attrElems.SubsetOf(inLeaf) {
					t.Fatal("LeafElems not all covered by leaf bags")
				}
			}
		}
	})
}

package tree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/structure"
)

// exampleStructure is the τ-structure of Example 2.2 (schema R = abcdeg,
// F = {f1: ab→c, f2: c→b, f3: cd→e, f4: de→g, f5: g→e}).
func exampleStructure(t testing.TB) *structure.Structure {
	t.Helper()
	return structure.MustParse(`
att(a). att(b). att(c). att(d). att(e). att(g).
fd(f1). fd(f2). fd(f3). fd(f4). fd(f5).
lh(a,f1). lh(b,f1). lh(c,f2). lh(c,f3). lh(d,f3). lh(d,f4). lh(e,f4). lh(g,f5).
rh(c,f1). rh(b,f2). rh(e,f3). rh(g,f4). rh(e,f5).
`, nil)
}

// exampleDecomposition builds a width-2 tree decomposition of the running
// example in the spirit of Figure 1, rooted at the bag {d,e,f3}.
func exampleDecomposition(t testing.TB, st *structure.Structure) *Decomposition {
	t.Helper()
	id := func(name string) int {
		e, ok := st.Elem(name)
		if !ok {
			t.Fatalf("element %s missing", name)
		}
		return e
	}
	bag := func(names ...string) []int {
		out := make([]int, len(names))
		for i, n := range names {
			out[i] = id(n)
		}
		return out
	}
	d := New()
	// Left chain: {a,b,f1} - {b,c,f1} - {b,c,f2} - {c,d,f3}
	n1 := d.AddNode(bag("a", "b", "f1"))
	n2 := d.AddNode(bag("b", "c", "f1"), n1)
	n3 := d.AddNode(bag("b", "c", "f2"), n2)
	n4 := d.AddNode(bag("c", "d", "f3"), n3)
	// Right chain: {e,g,f5} - {e,g,f4} - {d,e,f4}
	m1 := d.AddNode(bag("e", "g", "f5"))
	m2 := d.AddNode(bag("e", "g", "f4"), m1)
	m3 := d.AddNode(bag("d", "e", "f4"), m2)
	root := d.AddNode(bag("d", "e", "f3"), n4, m3)
	d.SetRoot(root)
	return d
}

func TestValidateExample(t *testing.T) {
	st := exampleStructure(t)
	d := exampleDecomposition(t, st)
	if err := d.Validate(st); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if w := d.Width(); w != 2 {
		t.Fatalf("Width = %d, want 2 (the paper's tw(A))", w)
	}
}

func TestValidateDetectsViolations(t *testing.T) {
	st := exampleStructure(t)

	// Missing element coverage.
	d := exampleDecomposition(t, st)
	a, _ := st.Elem("a")
	d.Nodes[0].Bag = removeElem(d.Nodes[0].Bag, a)
	if err := d.Validate(st); err == nil || !strings.Contains(err.Error(), "not covered") {
		t.Fatalf("uncovered element not detected: %v", err)
	}

	// Missing tuple coverage: drop f1 from the bag where rh(c,f1) lives.
	d = exampleDecomposition(t, st)
	f1, _ := st.Elem("f1")
	c, _ := st.Elem("c")
	d.Nodes[1].Bag = removeElem(d.Nodes[1].Bag, c)
	_ = f1
	if err := d.Validate(st); err == nil {
		t.Fatal("uncovered tuple not detected")
	}

	// Connectedness violation: put element a into a far-away bag.
	d = exampleDecomposition(t, st)
	d.Nodes[4].Bag = append(d.Nodes[4].Bag, a)
	if err := d.Validate(st); err == nil || !strings.Contains(err.Error(), "connectedness") {
		t.Fatalf("connectedness violation not detected: %v", err)
	}

	// Broken tree: cycle.
	d = exampleDecomposition(t, st)
	d.Nodes[0].Children = []int{d.Root}
	if err := d.Validate(st); err == nil {
		t.Fatal("cycle not detected")
	}
}

func removeElem(bag []int, e int) []int {
	out := bag[:0]
	for _, x := range bag {
		if x != e {
			out = append(out, x)
		}
	}
	return out
}

func TestTraversals(t *testing.T) {
	st := exampleStructure(t)
	d := exampleDecomposition(t, st)
	post := d.PostOrder()
	if len(post) != d.Len() || post[len(post)-1] != d.Root {
		t.Fatal("PostOrder wrong")
	}
	pre := d.PreOrder()
	if pre[0] != d.Root {
		t.Fatal("PreOrder wrong")
	}
	seen := map[int]bool{}
	for _, v := range post {
		for _, c := range d.Nodes[v].Children {
			if !seen[c] {
				t.Fatal("child after parent in PostOrder")
			}
		}
		seen[v] = true
	}
	if got := len(d.Leaves()); got != 2 {
		t.Fatalf("Leaves = %d, want 2", got)
	}
}

func TestReRoot(t *testing.T) {
	st := exampleStructure(t)
	d := exampleDecomposition(t, st)
	d.ReRoot(0)
	if d.Root != 0 {
		t.Fatal("ReRoot did not move root")
	}
	if err := d.Validate(st); err != nil {
		t.Fatalf("re-rooted decomposition invalid: %v", err)
	}
	d.ReRoot(0) // no-op
	if err := d.Validate(st); err != nil {
		t.Fatal(err)
	}
}

func TestSubtreeAndEnvelope(t *testing.T) {
	// Figure 3: at the node with bag {b,c,...}, the subtree contains the
	// a/b/c/f1/f2 part and the envelope the rest plus the bag.
	st := exampleStructure(t)
	d := exampleDecomposition(t, st)
	// Node 2 has bag {b,c,f2}; its subtree is nodes 0..2.
	sub := d.SubtreeElems(2)
	for _, name := range []string{"a", "b", "c", "f1", "f2"} {
		e, _ := st.Elem(name)
		if !sub.Has(e) {
			t.Fatalf("subtree missing %s", name)
		}
	}
	if e, _ := st.Elem("g"); sub.Has(e) {
		t.Fatal("subtree contains g")
	}
	env := d.EnvelopeElems(2)
	for _, name := range []string{"b", "c", "f2", "d", "e", "g", "f3", "f4", "f5"} {
		e, _ := st.Elem(name)
		if !env.Has(e) {
			t.Fatalf("envelope missing %s", name)
		}
	}
	for _, name := range []string{"a", "f1"} {
		if e, _ := st.Elem(name); env.Has(e) {
			t.Fatalf("envelope contains %s", name)
		}
	}
	// Subtree ∪ envelope = whole domain; intersection = bag elements only
	// for elements, since node 2's bag is the interface.
	if sub.Union(env).Len() != st.Size() {
		t.Fatal("subtree ∪ envelope != domain")
	}
}

func TestNormalizeTupleExample(t *testing.T) {
	st := exampleStructure(t)
	d := exampleDecomposition(t, st)
	norm, err := NormalizeTuple(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTuple(norm, 2); err != nil {
		t.Fatalf("CheckTuple: %v", err)
	}
	if err := norm.Validate(st); err != nil {
		t.Fatalf("normalized decomposition invalid: %v", err)
	}
	if norm.Width() != 2 {
		t.Fatalf("width changed to %d", norm.Width())
	}
}

func TestNormalizeNiceExample(t *testing.T) {
	st := exampleStructure(t)
	d := exampleDecomposition(t, st)
	nice, err := NormalizeNice(d, NiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckNice(nice); err != nil {
		t.Fatalf("CheckNice: %v", err)
	}
	if err := nice.Validate(st); err != nil {
		t.Fatalf("nice decomposition invalid: %v", err)
	}
	if nice.Width() != 2 {
		t.Fatalf("width changed to %d", nice.Width())
	}
}

func TestEnumerationForm(t *testing.T) {
	st := exampleStructure(t)
	d := exampleDecomposition(t, st)
	attrs := &bitset.Set{}
	for _, tup := range st.Tuples("att") {
		attrs.Add(tup[0])
	}
	nice, err := NormalizeNice(d, NiceOptions{LeafElems: attrs, BranchGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEnumerable(nice, attrs); err != nil {
		t.Fatalf("CheckEnumerable: %v", err)
	}
	if err := nice.Validate(st); err != nil {
		t.Fatalf("enumeration-form decomposition invalid: %v", err)
	}
	if nice.Width() != 2 {
		t.Fatalf("width changed to %d", nice.Width())
	}
}

func TestBuildTD(t *testing.T) {
	st := exampleStructure(t)
	d := exampleDecomposition(t, st)
	norm, err := NormalizeTuple(d)
	if err != nil {
		t.Fatal(err)
	}
	td, nodeElem, err := BuildTD(st, norm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Tuples("root")) != 1 {
		t.Fatal("root relation wrong")
	}
	if got := len(td.Tuples("bag")); got != norm.Len() {
		t.Fatalf("|bag| = %d, want %d", got, norm.Len())
	}
	// child1 holds for every non-root node that is a first/only child.
	nChild1 := 0
	nChild2 := 0
	for _, n := range norm.Nodes {
		if len(n.Children) >= 1 {
			nChild1++
		}
		if len(n.Children) == 2 {
			nChild2++
		}
	}
	if got := len(td.Tuples("child1")); got != nChild1 {
		t.Fatalf("|child1| = %d, want %d", got, nChild1)
	}
	if got := len(td.Tuples("child2")); got != nChild2 {
		t.Fatalf("|child2| = %d, want %d", got, nChild2)
	}
	// Original facts survive.
	c, _ := td.Elem("c")
	f1, _ := td.Elem("f1")
	if !td.Has("rh", c, f1) {
		t.Fatal("original relation lost in τ_td structure")
	}
	// Raw (non-normalized) decompositions are rejected.
	if _, _, err := BuildTD(st, d, 2); err == nil {
		t.Fatal("BuildTD accepted a raw decomposition")
	}
	_ = nodeElem
}

func TestFormat(t *testing.T) {
	st := exampleStructure(t)
	d := exampleDecomposition(t, st)
	out := d.Format(st.Name)
	if !strings.Contains(out, "(d e f3)") && !strings.Contains(out, "(d e f3") {
		t.Fatalf("Format output unexpected:\n%s", out)
	}
	if strings.Count(out, "\n") != d.Len() {
		t.Fatalf("Format line count = %d, want %d", strings.Count(out, "\n"), d.Len())
	}
}

// Property: normalizing a heuristic decomposition of a random structure
// yields valid normal forms of the same width.
func TestQuickNormalization(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		st := g.ToStructure()
		d := greedyDecomposition(g)
		if d.Validate(st) != nil {
			return false
		}
		w := d.Width()

		norm, err := NormalizeTuple(d)
		if err != nil || CheckTuple(norm, w) != nil || norm.Validate(st) != nil || norm.Width() != w {
			return false
		}
		nice, err := NormalizeNice(d, NiceOptions{LeafElems: st.DomSet(), BranchGuard: true})
		if err != nil || CheckEnumerable(nice, st.DomSet()) != nil || nice.Validate(st) != nil || nice.Width() != w {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

// randomGraph returns a small random connected graph.
func randomGraph(rng *rand.Rand) *graph.Graph {
	n := rng.Intn(8) + 3
	g := graph.RandomTree(n, rng)
	extra := rng.Intn(n)
	for i := 0; i < extra; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

// greedyDecomposition builds a raw decomposition via min-degree
// elimination; duplicated here to avoid an import cycle with decompose.
func greedyDecomposition(g *graph.Graph) *Decomposition {
	n := g.N()
	adj := make([]*bitset.Set, n)
	alive := bitset.New(n)
	for v := 0; v < n; v++ {
		adj[v] = g.Neighbors(v).Clone()
		alive.Add(v)
	}
	later := make([][]int, n)
	var order []int
	for k := 0; k < n; k++ {
		best, bestDeg := -1, n+1
		alive.ForEach(func(v int) bool {
			if deg := adj[v].Intersect(alive).Len(); deg < bestDeg {
				best, bestDeg = v, deg
			}
			return true
		})
		nb := adj[best].Intersect(alive)
		nb.Remove(best)
		later[best] = nb.Elems()
		for i := 0; i < len(later[best]); i++ {
			for j := i + 1; j < len(later[best]); j++ {
				adj[later[best][i]].Add(later[best][j])
				adj[later[best][j]].Add(later[best][i])
			}
		}
		alive.Remove(best)
		order = append(order, best)
	}
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	parent := make([]int, n)
	for v := range parent {
		parent[v] = -1
	}
	for _, v := range order {
		first := -1
		for _, u := range later[v] {
			if first < 0 || pos[u] < pos[first] {
				first = u
			}
		}
		parent[v] = first
	}
	rootV := order[n-1]
	for v := 0; v < n; v++ {
		if parent[v] < 0 && v != rootV {
			parent[v] = rootV
		}
	}
	children := make([][]int, n)
	for v := 0; v < n; v++ {
		if parent[v] >= 0 {
			children[parent[v]] = append(children[parent[v]], v)
		}
	}
	d := New()
	var build func(v int) int
	build = func(v int) int {
		var kids []int
		for _, c := range children[v] {
			kids = append(kids, build(c))
		}
		return d.AddNode(append([]int{v}, later[v]...), kids...)
	}
	d.SetRoot(build(rootV))
	return d
}

package tree

import (
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// Negative-path tests for the normal-form validators: each discipline
// violation must be reported.

func TestCheckTupleViolations(t *testing.T) {
	st := exampleStructure(t)
	base := func() *Decomposition {
		d := exampleDecomposition(t, st)
		norm, err := NormalizeTuple(d)
		if err != nil {
			t.Fatal(err)
		}
		return norm
	}

	cases := []struct {
		name   string
		break_ func(*Decomposition)
		want   string
	}{
		{"short bag", func(d *Decomposition) { d.Nodes[0].Bag = d.Nodes[0].Bag[:2] }, "size"},
		{"duplicate entries", func(d *Decomposition) { d.Nodes[0].Bag[1] = d.Nodes[0].Bag[0] }, "duplicate"},
		{"wrong leaf kind", func(d *Decomposition) { d.Nodes[0].Kind = KindBranch }, "marked"},
		{"permutation changes content", func(d *Decomposition) {
			v := findKind(d, KindPermutation)
			d.Nodes[v].Bag = append([]int(nil), d.Nodes[d.Nodes[v].Children[0]].Bag...)
			d.Nodes[v].Bag[0] = freshElem(d)
		}, "changes bag"},
		{"replacement touches tail", func(d *Decomposition) {
			v := findKind(d, KindReplacement)
			c := d.Nodes[v].Children[0]
			d.Nodes[v].Bag = append([]int(nil), d.Nodes[c].Bag...)
			d.Nodes[v].Bag[1] = freshElem(d)
			d.Nodes[v].Bag[0] = d.Nodes[c].Bag[0]
		}, "positions beyond 0"},
		{"replacement replaces nothing", func(d *Decomposition) {
			v := findKind(d, KindReplacement)
			c := d.Nodes[v].Children[0]
			d.Nodes[v].Bag = append([]int(nil), d.Nodes[c].Bag...)
		}, "replaces nothing"},
		{"replacement Elem wrong", func(d *Decomposition) {
			v := findKind(d, KindReplacement)
			d.Nodes[v].Elem = d.Nodes[v].Bag[1]
		}, "has Elem"},
		{"one-child wrong kind", func(d *Decomposition) {
			v := findKind(d, KindPermutation)
			d.Nodes[v].Kind = KindBranch
		}, "has kind"},
		{"branch wrong kind", func(d *Decomposition) {
			v := findKind(d, KindBranch)
			d.Nodes[v].Kind = KindPermutation
		}, "has kind"},
		{"branch child bag differs", func(d *Decomposition) {
			v := findKind(d, KindBranch)
			c := d.Nodes[v].Children[0]
			d.Nodes[c].Bag = append([]int(nil), d.Nodes[c].Bag...)
			d.Nodes[c].Bag[0], d.Nodes[c].Bag[1] = d.Nodes[c].Bag[1], d.Nodes[c].Bag[0]
		}, "different bag"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := base()
			tc.break_(d)
			err := CheckTuple(d, 2)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("CheckTuple = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func findKind(d *Decomposition, k Kind) int {
	for i, n := range d.Nodes {
		if n.Kind == k {
			return i
		}
	}
	panic("kind not found")
}

// freshElem returns an element ID not occurring in any bag.
func freshElem(d *Decomposition) int {
	max := 0
	for _, n := range d.Nodes {
		for _, e := range n.Bag {
			if e >= max {
				max = e + 1
			}
		}
	}
	return max
}

func TestCheckNiceViolations(t *testing.T) {
	st := exampleStructure(t)
	base := func() *Decomposition {
		d := exampleDecomposition(t, st)
		nice, err := NormalizeNice(d, NiceOptions{BranchGuard: true})
		if err != nil {
			t.Fatal(err)
		}
		return nice
	}

	cases := []struct {
		name   string
		break_ func(*Decomposition)
		want   string
	}{
		{"duplicates", func(d *Decomposition) {
			v := findKind(d, KindIntroduce)
			d.Nodes[v].Bag = append(d.Nodes[v].Bag, d.Nodes[v].Bag[0])
		}, "duplicates"},
		{"introduce inconsistent", func(d *Decomposition) {
			v := findKind(d, KindIntroduce)
			d.Nodes[v].Elem = freshElem(d)
		}, "introduce"},
		{"forget inconsistent", func(d *Decomposition) {
			v := findKind(d, KindForget)
			d.Nodes[v].Elem = freshElem(d)
		}, "forget"},
		{"copy changes bag", func(d *Decomposition) {
			v := findKind(d, KindCopy)
			d.Nodes[v].Bag = append([]int(nil), d.Nodes[v].Bag[1:]...)
			d.Nodes[v].Kind = KindCopy
		}, "copy"},
		{"leaf kind wrong", func(d *Decomposition) {
			v := d.Leaves()[0]
			d.Nodes[v].Kind = KindForget
		}, "leaf"},
		{"one-child kind wrong", func(d *Decomposition) {
			v := findKind(d, KindForget)
			d.Nodes[v].Kind = KindBranch
		}, "kind"},
		// Shrinking a branch child's bag violates the discipline at the
		// child itself or at the branch, depending on the child's kind;
		// any error suffices.
		{"branch child differs", func(d *Decomposition) {
			v := findKind(d, KindBranch)
			c := d.Nodes[v].Children[0]
			d.Nodes[c].Bag = d.Nodes[c].Bag[1:]
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := base()
			tc.break_(d)
			if err := CheckNice(d); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("CheckNice = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestCheckEnumerableViolations(t *testing.T) {
	st := exampleStructure(t)
	d := exampleDecomposition(t, st)
	attrs := st.DomSet()
	nice, err := NormalizeNice(d, NiceOptions{LeafElems: attrs, BranchGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	// Branch parent with differing bag.
	broken := nice.Clone()
	v := findKind(broken, KindBranch)
	p := broken.Nodes[v].Parent
	broken.Nodes[p].Bag = broken.Nodes[p].Bag[1:]
	// The parent edit also breaks CheckNice; CheckEnumerable must fail
	// either way.
	if err := CheckEnumerable(broken, attrs); err == nil {
		t.Fatal("broken branch guard accepted")
	}
	// Element missing from every leaf.
	extra := attrs.Clone()
	extra.Add(10_000)
	if err := CheckEnumerable(nice, extra); err == nil || !strings.Contains(err.Error(), "leaf") {
		t.Fatalf("missing leaf element accepted: %v", err)
	}
}

func TestKindStringAndBagSet(t *testing.T) {
	for k, want := range map[Kind]string{
		KindLeaf: "leaf", KindPermutation: "perm", KindReplacement: "repl",
		KindIntroduce: "intro", KindForget: "forget", KindCopy: "copy",
		KindBranch: "branch", KindUnknown: "node",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q", k, k.String())
		}
	}
	d := New()
	id := d.AddNode([]int{3, 1})
	if !d.BagSet(id).Equal(bitset.FromSlice([]int{1, 3})) {
		t.Fatal("BagSet wrong")
	}
}

func TestValidateGraphErrors(t *testing.T) {
	g := graph.Cycle(4)
	good := New()
	n1 := good.AddNode([]int{0, 1, 2})
	n2 := good.AddNode([]int{0, 2, 3}, n1)
	good.SetRoot(n2)
	if err := good.ValidateGraph(g); err != nil {
		t.Fatalf("valid decomposition rejected: %v", err)
	}

	// Vertex out of range.
	bad := good.Clone()
	bad.Nodes[0].Bag = append(bad.Nodes[0].Bag, 99)
	if err := bad.ValidateGraph(g); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	// Uncovered vertex.
	bad2 := New()
	m := bad2.AddNode([]int{0, 1})
	bad2.SetRoot(m)
	if err := bad2.ValidateGraph(g); err == nil || !strings.Contains(err.Error(), "not covered") {
		t.Fatalf("uncovered vertices accepted: %v", err)
	}
	// Uncovered edge.
	bad3 := New()
	m1 := bad3.AddNode([]int{0, 1})
	m2 := bad3.AddNode([]int{2}, m1)
	m3 := bad3.AddNode([]int{3}, m2)
	bad3.SetRoot(m3)
	if err := bad3.ValidateGraph(g); err == nil || !strings.Contains(err.Error(), "edge") {
		t.Fatalf("uncovered edge accepted: %v", err)
	}
}

func TestNodeWithElemMissing(t *testing.T) {
	d := New()
	d.SetRoot(d.AddNode([]int{1}))
	if d.NodeWithElem(99) != -1 {
		t.Fatal("missing element found")
	}
	if d.NodeWithElem(1) != 0 {
		t.Fatal("present element not found")
	}
}

package wis

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/vcover"
)

func randWeights(n int, rng *rand.Rand) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = rng.Intn(20) - 3 // mostly positive, some negative
	}
	return w
}

// TestDifferential pins MaxWeight, MaxWeightSet and CountSets against
// the exponential oracle on random partial k-trees.
func TestDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(12)
		k := 1 + rng.Intn(3)
		g := graph.PartialKTree(n, k, 0.3, rng)
		weights := randWeights(n, rng)

		wantBest, wantCount, err := BruteForce(g, weights)
		if err != nil {
			t.Fatalf("trial %d: brute force: %v", trial, err)
		}

		got, err := MaxWeight(g, weights)
		if err != nil {
			t.Fatalf("trial %d: MaxWeight: %v", trial, err)
		}
		if got != wantBest {
			t.Fatalf("trial %d (n=%d k=%d): MaxWeight=%d, brute force=%d", trial, n, k, got, wantBest)
		}

		set, err := MaxWeightSet(g, weights)
		if err != nil {
			t.Fatalf("trial %d: MaxWeightSet: %v", trial, err)
		}
		total := 0
		for _, v := range set {
			total += weights[v]
		}
		if total != wantBest {
			t.Fatalf("trial %d: witness weight %d, want %d", trial, total, wantBest)
		}
		for i, u := range set {
			for _, v := range set[i+1:] {
				if g.HasEdge(u, v) {
					t.Fatalf("trial %d: witness not independent: edge %d-%d", trial, u, v)
				}
			}
		}

		count, err := CountSets(g)
		if err != nil {
			t.Fatalf("trial %d: CountSets: %v", trial, err)
		}
		if count.Cmp(new(big.Int).SetUint64(wantCount)) != 0 {
			t.Fatalf("trial %d: CountSets=%v, brute force=%d", trial, count, wantCount)
		}
	}
}

// TestUnitWeightsComplementVertexCover cross-checks the two packages:
// with unit weights, max independent set size = n − min vertex cover.
func TestUnitWeightsComplementVertexCover(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(10)
		g := graph.PartialKTree(n, 2, 0.25, rng)
		mis, err := MaxWeight(g, nil)
		if err != nil {
			t.Fatalf("trial %d: MaxWeight: %v", trial, err)
		}
		vc, err := vcover.MinVertexCover(g)
		if err != nil {
			t.Fatalf("trial %d: MinVertexCover: %v", trial, err)
		}
		if mis != n-vc {
			t.Fatalf("trial %d: MIS=%d but n−VC=%d", trial, mis, n-vc)
		}
	}
}

// TestAllNegativeWeights: the empty set (weight 0) must win when every
// vertex hurts.
func TestAllNegativeWeights(t *testing.T) {
	g := graph.Cycle(6)
	w := []int{-1, -2, -3, -1, -2, -3}
	got, err := MaxWeight(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("MaxWeight=%d, want 0 (empty set)", got)
	}
	set, err := MaxWeightSet(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 0 {
		t.Fatalf("witness %v, want empty", set)
	}
}

func TestEdgeCases(t *testing.T) {
	empty := graph.New(0)
	if got, err := MaxWeight(empty, nil); err != nil || got != 0 {
		t.Fatalf("empty graph: got %d, %v", got, err)
	}
	if c, err := CountSets(empty); err != nil || c.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("empty graph count: got %v, %v", c, err)
	}
	single := graph.New(1)
	if got, err := MaxWeight(single, []int{42}); err != nil || got != 42 {
		t.Fatalf("single vertex: got %d, %v", got, err)
	}
	if _, err := MaxWeight(graph.Path(3), []int{1, 2}); err == nil {
		t.Fatal("mismatched weight length: want error")
	}
	if _, _, err := BruteForce(graph.New(30), nil); err == nil {
		t.Fatal("oversized brute force: want ErrTooLarge")
	}
}

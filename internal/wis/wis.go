// Package wis implements maximum-weight independent set on
// bounded-treewidth graphs — the first workload written directly
// against the solver algebra rather than migrated to it. The problem
// is one solver.Problem instance; maximization rides the tropical
// (min-cost) semiring by negating vertex weights, so the same three
// evaluation modes are available for free: Decide (is any independent
// set expressible — trivially yes), Count (how many independent sets),
// Optimize (the heaviest one, with a witness).
package wis

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/decompose"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/solver"
	"repro/internal/tree"
)

// width packs one bit per sorted-bag position: the selected bitmask.
const width = solver.Width(1)

// wisProblem is the independent-set algebra: states are selection
// bitmasks over the sorted bag, independence is enforced edge-locally
// (every edge of the graph appears inside some bag), and costs are the
// negated weights of selected vertices, paid exactly once (on
// introduction or in a leaf; joins refund the bag overlap both
// children paid).
type wisProblem struct {
	g *graph.Graph
	w []int // per-vertex weight; len == g.N()
}

func (ip wisProblem) Name() string { return "weighted-independent-set" }

// independent reports whether no bag-internal edge has both endpoints
// selected.
func (ip wisProblem) independent(bag []int, m uint64) bool {
	for i := 0; i < len(bag); i++ {
		if m>>uint(i)&1 == 0 {
			continue
		}
		for j := i + 1; j < len(bag); j++ {
			if m>>uint(j)&1 == 1 && ip.g.HasEdge(bag[i], bag[j]) {
				return false
			}
		}
	}
	return true
}

func (ip wisProblem) Leaf(_ int, bag []int) []solver.Out[uint64] {
	var out []solver.Out[uint64]
	for m := uint64(0); m < 1<<uint(len(bag)); m++ {
		if ip.independent(bag, m) {
			cost := 0
			for p := range bag {
				if m>>uint(p)&1 == 1 {
					cost -= ip.w[bag[p]]
				}
			}
			out = append(out, solver.Out[uint64]{State: m, Cost: cost})
		}
	}
	return out
}

func (ip wisProblem) Introduce(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	p := solver.Position(bag, elem)
	out := []solver.Out[uint64]{{State: width.Insert(child, p, 0)}}
	if m := width.Insert(child, p, 1); ip.independent(bag, m) {
		out = append(out, solver.Out[uint64]{State: m, Cost: -ip.w[elem]})
	}
	return out
}

func (ip wisProblem) Forget(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	childBag := solver.InsertSorted(bag, elem)
	return []solver.Out[uint64]{{State: width.Drop(child, solver.Position(childBag, elem))}}
}

func (ip wisProblem) Join(_ int, bag []int, s1, s2 uint64) []solver.Out[uint64] {
	if s1 != s2 {
		return nil
	}
	// Both children paid (negative) weight for the bag's selected
	// vertices; refund one copy.
	dup := 0
	for p := range bag {
		if s1>>uint(p)&1 == 1 {
			dup += ip.w[bag[p]]
		}
	}
	return []solver.Out[uint64]{{State: s1, Cost: dup}}
}

// Accept: independence is enforced edge-locally throughout, so every
// surviving root state extends to an independent set.
func (ip wisProblem) Accept(int, []int, uint64) bool { return true }

// Problem returns the weighted-independent-set algebra over g as a
// generic solver.Problem, for callers (like the decision service) that
// run named problems through the session Solve* helpers on an existing
// decomposition. weights[v] is the weight of vertex v; nil means unit
// weights. Vertex IDs of g must match the decomposition's bag elements.
func Problem(g *graph.Graph, weights []int) (solver.Problem[uint64], error) {
	return problemFor(g, weights)
}

func problemFor(g *graph.Graph, weights []int) (wisProblem, error) {
	w := weights
	if w == nil {
		w = make([]int, g.N())
		for v := range w {
			w[v] = 1
		}
	} else if len(w) != g.N() {
		return wisProblem{}, fmt.Errorf("wis: %d weights for %d vertices", len(w), g.N())
	}
	return wisProblem{g: g, w: w}, nil
}

func niceFor(g *graph.Graph) (*tree.Decomposition, error) {
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		return nil, err
	}
	return tree.NormalizeNice(d, tree.NiceOptions{})
}

// MaxWeight returns the maximum total weight of an independent set of
// g. weights[v] is the weight of vertex v; nil means unit weights (so
// the result is the maximum independent set size). Negative weights
// are allowed — such vertices are simply never worth selecting, and
// the empty set (weight 0) is always available.
func MaxWeight(g *graph.Graph, weights []int) (int, error) {
	if g.N() == 0 {
		return 0, nil
	}
	der, err := solve(g, weights)
	if err != nil {
		return 0, err
	}
	return -der.Value, nil
}

// MaxWeightSet returns a maximum-weight independent set itself, by
// walking the argmin derivation of the tropical-semiring tables
// (weights negated, so argmin = argmax).
func MaxWeightSet(g *graph.Graph, weights []int) ([]int, error) {
	if g.N() == 0 {
		return nil, nil
	}
	der, err := solve(g, weights)
	if err != nil {
		return nil, err
	}
	bags, err := dp.Bags(der.Nice())
	if err != nil {
		return nil, fmt.Errorf("wis: %w", err)
	}
	in := make([]bool, g.N())
	err = der.Walk(func(v int, s uint64) error {
		for p, e := range bags[v] {
			if s>>uint(p)&1 == 1 {
				in[e] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var set []int
	for v, ok := range in {
		if ok {
			set = append(set, v)
		}
	}
	return set, nil
}

// CountSets returns the number of independent sets of g (including the
// empty set), exactly.
func CountSets(g *graph.Graph) (*big.Int, error) {
	if g.N() == 0 {
		return big.NewInt(1), nil
	}
	nice, err := niceFor(g)
	if err != nil {
		return nil, err
	}
	p, err := problemFor(g, nil)
	if err != nil {
		return nil, err
	}
	return solver.Count(context.Background(), nice, p)
}

func solve(g *graph.Graph, weights []int) (*solver.Derivation[uint64, int], error) {
	p, err := problemFor(g, weights)
	if err != nil {
		return nil, err
	}
	nice, err := niceFor(g)
	if err != nil {
		return nil, err
	}
	der, err := solver.Optimize(context.Background(), nice, p)
	if err != nil {
		return nil, err
	}
	if der == nil {
		// Unreachable: the all-unselected state survives every node.
		return nil, fmt.Errorf("wis: no feasible state at the root")
	}
	return der, nil
}

// ErrTooLarge reports that the exponential oracle was asked about a
// graph beyond its hard size limit; test with errors.Is.
var ErrTooLarge = errors.New("wis: graph too large for brute force")

// BruteForce is the exponential oracle for tests; beyond 22 vertices
// it returns ErrTooLarge. It returns the maximum weight and the number
// of independent sets.
func BruteForce(g *graph.Graph, weights []int) (best int, count uint64, err error) {
	n := g.N()
	if n > 22 {
		return 0, 0, fmt.Errorf("%w: limited to 22 vertices, got %d", ErrTooLarge, n)
	}
	w := weights
	if w == nil {
		w = make([]int, n)
		for v := range w {
			w[v] = 1
		}
	} else if len(w) != n {
		return 0, 0, fmt.Errorf("wis: %d weights for %d vertices", len(w), n)
	}
	edges := g.Edges()
	for mask := 0; mask < 1<<uint(n); mask++ {
		ok := true
		for _, e := range edges {
			if mask>>uint(e[0])&1 == 1 && mask>>uint(e[1])&1 == 1 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		count++
		weight := 0
		for v := 0; v < n; v++ {
			if mask>>uint(v)&1 == 1 {
				weight += w[v]
			}
		}
		if weight > best {
			best = weight
		}
	}
	return best, count, nil
}

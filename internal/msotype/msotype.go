// Package msotype computes rank-k MSO types (Hintikka types) of finite
// structures with distinguished elements: canonical, finitely-represented
// objects such that two structures are ≡^MSO_k-equivalent (Section 2.3) iff
// their rank-k types coincide.
//
// The type is defined by back-and-forth recursion mirroring the k-round
// MSO Ehrenfeucht–Fraïssé game the paper uses in Lemmas 3.5–3.7:
//
//	type_0(A, ā, P̄)  =  atomic type of ā (relations, equalities, and
//	                     membership of each a_i in each P_j)
//	type_k(A, ā, P̄)  =  ( type_0,
//	                      { type_{k-1}(A, ā·c, P̄) : c ∈ dom(A) },     point moves
//	                      { type_{k-1}(A, ā, P̄·S) : S ⊆ dom(A) } )    set moves
//
// The duplicator wins the k-round game on (A,ā) and (B,b̄) iff every move
// on one side is matched by a move on the other reaching equal
// (k-1)-types, which is exactly equality of the reachable-type sets.
// Types are interned so equality is integer comparison — they serve as the
// "tokens ϑ" of Theorem 4.5's construction.
package msotype

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitset"
	"repro/internal/stage"
	"repro/internal/structure"
)

// TypeID identifies an interned type. IDs are comparable across structures
// for types produced by the same Computer.
type TypeID int

// Computer computes and interns rank-k types. The zero value is not
// usable; use NewComputer.
type Computer struct {
	ids map[string]TypeID
	// MaxDomain bounds the domain size of structures whose types may be
	// computed; the set-move enumeration is 2^|dom| per quantifier level.
	MaxDomain int
	// Budget, when non-nil, charges every newly interned type against
	// its MaxStates cap. Once the cap is exceeded the computer goes
	// sticky-failed: the enumeration recursion short-circuits and every
	// subsequent Type call returns the budget error, so a non-elementary
	// type blowup (Theorem 4.5) is cut off in bounded memory.
	Budget *stage.Budget

	err error // sticky budget violation
}

// DefaultMaxDomain is the default bound on witness-structure domains.
const DefaultMaxDomain = 14

// NewComputer returns a Computer with the default domain bound.
func NewComputer() *Computer {
	return &Computer{ids: map[string]TypeID{}, MaxDomain: DefaultMaxDomain}
}

func (c *Computer) intern(key string) TypeID {
	if id, ok := c.ids[key]; ok {
		return id
	}
	if cerr := c.Budget.AddStates(1); cerr != nil {
		c.err = cerr
		return 0
	}
	id := TypeID(len(c.ids))
	c.ids[key] = id
	return id
}

// Err returns the sticky budget violation, if any.
func (c *Computer) Err() error { return c.err }

// NumTypes returns the number of distinct interned types (across all
// ranks and structures seen so far).
func (c *Computer) NumTypes() int { return len(c.ids) }

// Type computes the rank-k type of (st, tuple).
func (c *Computer) Type(st *structure.Structure, tuple []int, k int) (TypeID, error) {
	if st.Size() > c.MaxDomain {
		return 0, fmt.Errorf("msotype: domain size %d exceeds bound %d (the type computation enumerates all subsets)", st.Size(), c.MaxDomain)
	}
	if st.Size() > 63 {
		return 0, fmt.Errorf("msotype: domain size %d exceeds subset-mask limit", st.Size())
	}
	if c.err != nil {
		return 0, c.err
	}
	e := &env{st: st, tuple: append([]int(nil), tuple...)}
	id := c.typeOf(e, k)
	if c.err != nil {
		return 0, c.err
	}
	return id, nil
}

// Equivalent reports whether (stA, tupleA) ≡^MSO_k (stB, tupleB).
func (c *Computer) Equivalent(stA *structure.Structure, tupleA []int, stB *structure.Structure, tupleB []int, k int) (bool, error) {
	ta, err := c.Type(stA, tupleA, k)
	if err != nil {
		return false, err
	}
	tb, err := c.Type(stB, tupleB, k)
	if err != nil {
		return false, err
	}
	return ta == tb, nil
}

// env is the game position: a structure, the point-move history appended
// to the distinguished tuple, and the set-move history.
type env struct {
	st    *structure.Structure
	tuple []int
	sets  []*bitset.Set
}

func (c *Computer) typeOf(e *env, k int) TypeID {
	if c.err != nil {
		return 0
	}
	if k == 0 {
		return c.intern("0|" + c.atomicKey(e))
	}
	n := e.st.Size()
	// Point moves.
	pointTypes := map[TypeID]bool{}
	for elem := 0; elem < n && c.err == nil; elem++ {
		e.tuple = append(e.tuple, elem)
		pointTypes[c.typeOf(e, k-1)] = true
		e.tuple = e.tuple[:len(e.tuple)-1]
	}
	// Set moves.
	setTypes := map[TypeID]bool{}
	for mask := uint64(0); mask < 1<<uint(n) && c.err == nil; mask++ {
		s := bitset.New(n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Add(i)
			}
		}
		e.sets = append(e.sets, s)
		setTypes[c.typeOf(e, k-1)] = true
		e.sets = e.sets[:len(e.sets)-1]
	}
	if c.err != nil {
		return 0
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%s|p", k, c.atomicKey(e))
	for _, id := range sortedIDs(pointTypes) {
		fmt.Fprintf(&b, ",%d", id)
	}
	b.WriteString("|s")
	for _, id := range sortedIDs(setTypes) {
		fmt.Fprintf(&b, ",%d", id)
	}
	return c.intern(b.String())
}

// atomicKey is the rank-0 information: the atomic type of the tuple plus
// the membership pattern of every tuple element in every chosen set.
func (c *Computer) atomicKey(e *env) string {
	var b strings.Builder
	b.WriteString(e.st.AtomicTypeKey(e.tuple))
	for si, s := range e.sets {
		for ti, elem := range e.tuple {
			if s.Has(elem) {
				fmt.Fprintf(&b, "m%d.%d;", si, ti)
			}
		}
	}
	// The cardinality information carried by a set relative to the other
	// sets is visible to later point moves only; nothing else is atomic.
	return b.String()
}

func sortedIDs(m map[TypeID]bool) []TypeID {
	out := make([]TypeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KeyOf renders a TypeID for debugging (linear scan; test/tool use only).
func (c *Computer) KeyOf(id TypeID) string {
	for k, v := range c.ids {
		if v == id {
			return k
		}
	}
	return strconv.Itoa(int(id))
}

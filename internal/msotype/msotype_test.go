package msotype

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/mso"
	"repro/internal/structure"
)

var sigE = structure.MustSignature(structure.Predicate{Name: "e", Arity: 2})

func randStructure(rng *rand.Rand, n int) *structure.Structure {
	st := structure.New(sigE)
	for i := 0; i < n; i++ {
		st.AddElem("v" + string(rune('a'+i)))
	}
	for k := rng.Intn(2 * n); k > 0; k-- {
		st.MustAddTuple("e", rng.Intn(n), rng.Intn(n))
	}
	return st
}

// permuted returns an isomorphic copy of st with element IDs permuted,
// and the image of the given tuple.
func permuted(st *structure.Structure, tuple []int, rng *rand.Rand) (*structure.Structure, []int) {
	n := st.Size()
	perm := rng.Perm(n)
	out := structure.New(st.Sig())
	names := make([]string, n)
	for old := 0; old < n; old++ {
		names[perm[old]] = st.Name(old)
	}
	for i := 0; i < n; i++ {
		out.AddElem(names[i] + "x") // fresh names; only shape matters
	}
	for _, p := range st.Sig().Predicates() {
		for _, t := range st.Tuples(p.Name) {
			mapped := make([]int, len(t))
			for i, e := range t {
				mapped[i] = perm[e]
			}
			out.MustAddTuple(p.Name, mapped...)
		}
	}
	mt := make([]int, len(tuple))
	for i, e := range tuple {
		mt[i] = perm[e]
	}
	return out, mt
}

func TestIsomorphismInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewComputer()
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(4) + 2
		st := randStructure(rng, n)
		tuple := []int{rng.Intn(n), rng.Intn(n)}
		iso, isoTuple := permuted(st, tuple, rng)
		for k := 0; k <= 2; k++ {
			eq, err := c.Equivalent(st, tuple, iso, isoTuple, k)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatalf("isomorphic structures have different %d-types", k)
			}
		}
	}
}

func TestAtomicDistinguishes(t *testing.T) {
	st := structure.New(sigE)
	x := st.AddElem("x")
	y := st.AddElem("y")
	st.MustAddTuple("e", x, y)
	c := NewComputer()
	t0xy, err := c.Type(st, []int{x, y}, 0)
	if err != nil {
		t.Fatal(err)
	}
	t0yx, err := c.Type(st, []int{y, x}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if t0xy == t0yx {
		t.Fatal("edge direction not distinguished at rank 0")
	}
}

func TestSizeDistinguishedAtRankTwo(t *testing.T) {
	one := structure.New(sigE)
	one.AddElem("a")
	two := structure.New(sigE)
	two.AddElem("a")
	two.AddElem("b")
	c := NewComputer()
	eq1, err := c.Equivalent(one, nil, two, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !eq1 {
		t.Fatal("singleton vs pair distinguished at rank 1, but no depth-1 sentence separates them")
	}
	eq2, err := c.Equivalent(one, nil, two, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eq2 {
		t.Fatal("singleton vs pair not distinguished at rank 2 (∃x∃y x≠y separates them)")
	}
}

func TestPathsDistinguished(t *testing.T) {
	p2 := graph.Path(2).ToStructure()
	p3 := graph.Path(3).ToStructure()
	c := NewComputer()
	eq1, err := c.Equivalent(p2, nil, p3, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !eq1 {
		t.Fatal("P2 vs P3 distinguished at rank 1")
	}
	eq2, err := c.Equivalent(p2, nil, p3, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eq2 {
		t.Fatal("P2 vs P3 not distinguished at rank 2 (a non-adjacent pair exists only in P3)")
	}
}

func TestDomainBound(t *testing.T) {
	c := NewComputer()
	c.MaxDomain = 3
	st := randStructure(rand.New(rand.NewSource(1)), 5)
	if _, err := c.Type(st, nil, 1); err == nil {
		t.Fatal("domain bound not enforced")
	}
}

// randFormula generates a random MSO formula of quantifier depth ≤ depth
// over signature {e/2} with free element variables drawn from frees.
func randFormula(rng *rand.Rand, depth int, elemVars, setVars []string) *mso.Formula {
	// Base cases when depth exhausted or by chance.
	if depth == 0 || rng.Intn(3) == 0 {
		switch {
		case len(elemVars) >= 2 && rng.Intn(2) == 0:
			x := elemVars[rng.Intn(len(elemVars))]
			y := elemVars[rng.Intn(len(elemVars))]
			if rng.Intn(2) == 0 {
				return mso.Atom("e", x, y)
			}
			return mso.Eq(x, y)
		case len(elemVars) >= 1 && len(setVars) >= 1 && rng.Intn(2) == 0:
			return mso.In(elemVars[rng.Intn(len(elemVars))], setVars[rng.Intn(len(setVars))])
		case len(elemVars) >= 1:
			x := elemVars[rng.Intn(len(elemVars))]
			return mso.Atom("e", x, x)
		default:
			return mso.True()
		}
	}
	switch rng.Intn(6) {
	case 0:
		return mso.Not(randFormula(rng, depth, elemVars, setVars))
	case 1:
		return mso.And(randFormula(rng, depth, elemVars, setVars), randFormula(rng, depth, elemVars, setVars))
	case 2:
		return mso.Or(randFormula(rng, depth, elemVars, setVars), randFormula(rng, depth, elemVars, setVars))
	case 3:
		v := "q" + string(rune('a'+len(elemVars)))
		return mso.ExistsE(v, randFormula(rng, depth-1, append(append([]string{}, elemVars...), v), setVars))
	case 4:
		v := "Q" + string(rune('A'+len(setVars)))
		return mso.ForallS(v, randFormula(rng, depth-1, elemVars, append(append([]string{}, setVars...), v)))
	default:
		v := "q" + string(rune('a'+len(elemVars)))
		return mso.ForallE(v, randFormula(rng, depth-1, append(append([]string{}, elemVars...), v), setVars))
	}
}

// Property: if two structures have equal rank-k types, then every MSO
// formula of quantifier depth ≤ k has the same truth value on both.
// (The converse — different types imply some distinguishing formula —
// holds too but is not efficiently checkable here.)
func TestQuickTypesRefineFormulas(t *testing.T) {
	c := NewComputer()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(2) + 1
		stA := randStructure(rng, rng.Intn(3)+2)
		stB := randStructure(rng, rng.Intn(3)+2)
		a := rng.Intn(stA.Size())
		b := rng.Intn(stB.Size())
		eq, err := c.Equivalent(stA, []int{a}, stB, []int{b}, k)
		if err != nil {
			return false
		}
		if !eq {
			return true // nothing to check (see comment above)
		}
		for trial := 0; trial < 20; trial++ {
			f := randFormula(rng, k, []string{"x0"}, nil)
			va, err := mso.Eval(stA, f, mso.Interp{Elem: map[string]int{"x0": a}}, nil)
			if err != nil {
				return false
			}
			vb, err := mso.Eval(stB, f, mso.Interp{Elem: map[string]int{"x0": b}}, nil)
			if err != nil {
				return false
			}
			if va != vb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(47))}); err != nil {
		t.Fatal(err)
	}
}

func TestNumTypesGrows(t *testing.T) {
	c := NewComputer()
	st := graph.Path(3).ToStructure()
	if _, err := c.Type(st, nil, 1); err != nil {
		t.Fatal(err)
	}
	if c.NumTypes() == 0 {
		t.Fatal("no types interned")
	}
	id, err := c.Type(st, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.KeyOf(id) == "" {
		t.Fatal("KeyOf returned empty")
	}
}

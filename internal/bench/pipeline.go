package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/threecol"
	"repro/internal/workload"
)

// PipelineResult reports the outcome of one end-to-end FPT pipeline run.
type PipelineResult struct {
	Width     int
	Colorable bool
}

// Pipeline exercises the full FPT stack end to end on a deterministic
// workload: generate a bounded-treewidth graph (a random partial 3-tree,
// which may or may not be 3-colorable), compute a min-fill tree
// decomposition, normalize it to the nice form of Section 5 and run the
// Figure 5 decision DP. It is the health-check path behind
// BenchmarkPipeline and benchtable -pipeline: a regression in any layer
// (heuristic, normalization, DP scheduling) shows up here. The width must
// stay within the padded bound of the generator's treewidth.
func Pipeline(n int, seed int64) (PipelineResult, error) {
	rng := rand.New(rand.NewSource(seed))
	g := workload.ColorableGraph(n, 3, rng)
	in, err := threecol.NewInstance(g)
	if err != nil {
		return PipelineResult{}, err
	}
	ok, err := in.Decide()
	if err != nil {
		return PipelineResult{}, err
	}
	if w := in.Width(); w < 0 || w > 3*4 {
		return PipelineResult{}, fmt.Errorf("bench: pipeline width %d out of range for a partial 3-tree (n=%d seed=%d)", w, n, seed)
	}
	return PipelineResult{Width: in.Width(), Colorable: ok}, nil
}

package bench

import (
	"fmt"
	"strconv"

	"repro/internal/datalog"
)

// TCProgram is left-linear transitive closure, the standard stress test
// for semi-naive evaluation: over an n-vertex path it derives Θ(n²) facts
// in Θ(n) rounds, so it punishes any per-round index rebuild or per-tuple
// allocation in the engine hot path.
var TCProgram = datalog.MustParse(`
path(X, Y) :- e(X, Y).
path(X, Z) :- path(X, Y), e(Y, Z).
`)

// TCPathEDB builds the edge relation of a directed path on n vertices:
// e(v0, v1), …, e(v_{n-2}, v_{n-1}).
func TCPathEDB(n int) *datalog.DB {
	db := datalog.NewDB()
	for i := 0; i < n-1; i++ {
		db.AddFact("e", "v"+strconv.Itoa(i), "v"+strconv.Itoa(i+1))
	}
	return db
}

// TCPath runs transitive closure over an n-vertex path and returns the
// number of derived path facts, checking it against the closed form
// n·(n−1)/2.
func TCPath(n int) (int, error) {
	out, err := datalog.Eval(TCProgram, TCPathEDB(n))
	if err != nil {
		return 0, err
	}
	got := out.Count("path")
	if want := n * (n - 1) / 2; got != want {
		return got, fmt.Errorf("bench: TC over path(%d): got %d path facts, want %d", n, got, want)
	}
	return got, nil
}

package bench

import (
	"context"
	"os"
	"testing"

	"repro/internal/datalog"
)

// TestRACompareSmoke runs the full -ra comparison at a small size: all
// three legs must produce the accepted fixpoint, the grounding must die
// under the ground-atom cap while the direct path completes, and the
// engine counters must be live.
func TestRACompareSmoke(t *testing.T) {
	res, err := RACompare(context.Background(), 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.GroundLits == 0 || res.Facts == 0 {
		t.Fatalf("empty workload: %+v", res)
	}
	if !res.DirectUnderCap {
		t.Fatal("direct path did not complete under the ground-atom cap")
	}
	if res.GroundedBudget == "" {
		t.Fatal("grounded path survived the ground-atom cap")
	}
	if res.TuplesStreamed == 0 || res.JoinsPushedDown == 0 {
		t.Fatalf("engine counters dead: %+v", res)
	}
}

// TestRAAllocGate is the CI allocation-regression gate (set
// BENCH_ALLOC_GATE=1 to run; it is skipped otherwise so ordinary test
// runs — and -race runs, whose instrumentation skews allocation volume
// — stay unaffected). It pins the streaming backend's B/op on the two
// acceptance workloads: transitive closure (BenchmarkTCPath1000's
// shape) and the τ_td grounding comparison (BenchmarkTDGrounding's
// shape).
func TestRAAllocGate(t *testing.T) {
	if os.Getenv("BENCH_ALLOC_GATE") == "" {
		t.Skip("set BENCH_ALLOC_GATE=1 to run the allocation gate")
	}
	measure := func(eng datalog.Engine, f func() error) int64 {
		defer datalog.SetEngine(datalog.SetEngine(eng))
		// Warm once (index builds, arena growth), then measure.
		if err := f(); err != nil {
			t.Fatal(err)
		}
		_, bytes, err := measureAlloc(f)
		if err != nil {
			t.Fatal(err)
		}
		return bytes
	}

	// Gate 1: streaming must not regress allocation volume on TC
	// against the materialized backend (10% headroom for allocator
	// noise; both sides allocate the Θ(n²) derived facts).
	tcEDB := TCPathEDB(1000)
	tc := func() error { _, err := datalog.Eval(TCProgram, tcEDB); return err }
	tcStream := measure(datalog.EngineStreaming, tc)
	tcMat := measure(datalog.EngineMaterialized, tc)
	if float64(tcStream) > 1.10*float64(tcMat) {
		t.Errorf("TC alloc regression: streaming %d B vs materialized %d B", tcStream, tcMat)
	}

	// Gate 2: on the τ_td grounding workload the direct streaming path
	// must allocate at most half of what the Theorem 4.4 grounding
	// does, and no more than the materialized backend (+10%).
	prog, edb := TDChainProgram(RATypes), TDChain(2000)
	direct := func() error { _, err := datalog.Eval(prog, edb); return err }
	tdStream := measure(datalog.EngineStreaming, direct)
	tdMat := measure(datalog.EngineMaterialized, direct)
	grounded := measure(datalog.EngineStreaming, func() error {
		_, err := datalog.EvalQuasiGuarded(prog, edb.Clone(), datalog.TDFuncDeps(1))
		return err
	})
	if float64(tdStream) > 0.5*float64(grounded) {
		t.Errorf("grounding gate: streaming %d B not ≤ half of grounded %d B", tdStream, grounded)
	}
	if float64(tdStream) > 1.10*float64(tdMat) {
		t.Errorf("τ_td alloc regression: streaming %d B vs materialized %d B", tdStream, tdMat)
	}
}

package bench

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/overload"
	"repro/internal/server"
)

// ServeLoadResult reports the monadicd load experiment: an in-process
// server, one cold request to warm the session, then clients×perClient
// concurrent requests against the warm structure. The serving claim is
// expressed in the invariants: Errors is 0, Decompositions is 1 (every
// request shared one session's artifacts), Drained is true (shutdown
// completed cleanly under load).
type ServeLoadResult struct {
	Clients   int `json:"clients"`
	PerClient int `json:"per_client"`
	Requests  int `json:"requests"`
	Errors    int `json:"errors"`
	// ColdNS is the first request: decomposition + compile + eval.
	ColdNS int64 `json:"cold_ns"`
	// Warm latency percentiles across all load requests.
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
	// TotalNS and ThroughputRPS cover the load phase wall clock.
	TotalNS       int64   `json:"total_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// Decompositions is the server-wide session total after the run.
	Decompositions int  `json:"decompositions"`
	Drained        bool `json:"drained"`
}

// serveWorkload is the load-generator structure: a colored path
// (treewidth 1) long enough to make a cold evaluation measurable.
func serveWorkload(n int) string {
	var b bytes.Buffer
	b.WriteString("dom")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, " v%d", i)
	}
	b.WriteString(".\n")
	for i := 0; i+1 < n; i++ {
		fmt.Fprintf(&b, "edge(v%d, v%d).\n", i, i+1)
	}
	for i := 0; i < n; i += 2 {
		fmt.Fprintf(&b, "c(v%d).\n", i)
	}
	return b.String()
}

// ServeLoad starts an in-process monadicd server, drives clients
// concurrent clients with perClient sequential /eval requests each
// against one warm structure, and shuts the server down gracefully. Any
// non-200 answer or transport error fails the run.
func ServeLoad(ctx context.Context, clients, perClient int) (ServeLoadResult, error) {
	res := ServeLoadResult{Clients: clients, PerClient: perClient}
	if clients <= 0 || perClient <= 0 {
		return res, fmt.Errorf("bench: serve load needs positive clients and requests, got %d×%d", clients, perClient)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	// A generous admission config for a throughput benchmark: the wait
	// queue absorbs the full client herd (this bench measures warm-path
	// latency, not shedding — the soak harness covers that), and the
	// retrying client mops up any shed that still happens.
	srv := server.New(server.Config{
		MaxSessions: 16,
		Limiter: overload.LimiterConfig{
			Initial:  64,
			Max:      1024,
			QueueCap: 4 * clients * perClient,
		},
	})
	runCtx, stop := context.WithCancel(ctx)
	defer stop()
	runDone := make(chan error, 1)
	go func() { runDone <- server.Run(runCtx, l, srv, 30*time.Second) }()

	req := server.EvalRequest{
		Structure: serveWorkload(40),
		Formula:   "c(x)",
		Var:       "x",
	}
	c := client.New("http://" + l.Addr().String())
	c.HTTP = &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}
	c.MaxAttempts = 8
	post := func() (int64, error) {
		t0 := time.Now()
		if _, err := c.Eval(ctx, req); err != nil {
			return 0, err
		}
		return time.Since(t0).Nanoseconds(), nil
	}

	cold, err := post()
	if err != nil {
		return res, fmt.Errorf("bench: cold request: %w", err)
	}
	res.ColdNS = cold

	lat := make([]int64, clients*perClient)
	var errCount atomic.Int64
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				ns, err := post()
				if err != nil {
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, &err)
					continue
				}
				lat[c*perClient+i] = ns
			}
		}(c)
	}
	wg.Wait()
	total := time.Since(start)

	stop()
	drainErr := <-runDone
	res.Drained = drainErr == nil

	res.Requests = clients * perClient
	res.Errors = int(errCount.Load())
	res.TotalNS = total.Nanoseconds()
	if total > 0 {
		res.ThroughputRPS = float64(res.Requests-res.Errors) / total.Seconds()
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	pct := func(p float64) int64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	res.P50NS, res.P90NS, res.P99NS, res.MaxNS = pct(0.50), pct(0.90), pct(0.99), lat[len(lat)-1]
	res.Decompositions = srv.SessionTotals().Decompositions

	if res.Errors > 0 {
		err := *firstErr.Load()
		return res, fmt.Errorf("bench: %d/%d requests failed, first: %w", res.Errors, res.Requests, err)
	}
	if drainErr != nil {
		return res, fmt.Errorf("bench: shutdown: %w", drainErr)
	}
	return res, nil
}

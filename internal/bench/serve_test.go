package bench

import (
	"context"
	"testing"
)

// TestServeLoadSmall runs a CI-sized load burst through the in-process
// server: every request must answer 200, all requests must share one
// decomposition, and shutdown must drain cleanly.
func TestServeLoadSmall(t *testing.T) {
	res, err := ServeLoad(context.Background(), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Requests != 16 {
		t.Errorf("requests %d, errors %d, want 16 and 0", res.Requests, res.Errors)
	}
	if res.Decompositions != 1 {
		t.Errorf("decompositions = %d, want 1 (one warm structure)", res.Decompositions)
	}
	if !res.Drained {
		t.Error("server did not drain cleanly")
	}
	if res.ThroughputRPS <= 0 {
		t.Errorf("throughput = %f, want > 0", res.ThroughputRPS)
	}
	if res.ColdNS <= 0 || res.P50NS <= 0 || res.MaxNS < res.P99NS {
		t.Errorf("latency stats inconsistent: cold %d, p50 %d, p99 %d, max %d",
			res.ColdNS, res.P50NS, res.P99NS, res.MaxNS)
	}
}

package bench

import (
	"strings"
	"testing"
)

func TestTable1SmallRows(t *testing.T) {
	rows, err := Table1(Table1Opts{FDs: []int{1, 2}, Seed: 1, MonaBudget: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].NumAtt != 3 || rows[0].NumFD != 1 || rows[0].TW != 3 {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if rows[1].NumAtt != 6 {
		t.Fatalf("row 1 = %+v", rows[1])
	}
	if rows[0].TreeNodes == 0 || rows[0].MD == 0 {
		t.Fatal("missing measurements")
	}
	// Small instances must fit in the baseline budget.
	if rows[0].MonaOOM {
		t.Fatal("baseline out of budget on the smallest instance")
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "#Att") || !strings.Contains(out, "ms") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestTable1BaselineDies(t *testing.T) {
	// With a tiny budget the baseline must report OOM — and stay dead on
	// larger rows (the paper's "–" entries).
	rows, err := Table1(Table1Opts{FDs: []int{4, 7}, Seed: 1, MonaBudget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if !r.MonaOOM {
			t.Fatalf("row %d baseline survived a 1000-step budget", i)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "-") {
		t.Fatalf("OOM marker missing:\n%s", out)
	}
}

func TestSkipMona(t *testing.T) {
	rows, err := Table1(Table1Opts{FDs: []int{1}, Seed: 1, SkipMona: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0].MonaOOM {
		t.Fatal("SkipMona should mark the baseline column as unavailable")
	}
}

func TestMeasure(t *testing.T) {
	d, err := Measure(func() error { return nil })
	if err != nil || d < 0 {
		t.Fatal("Measure wrong")
	}
}

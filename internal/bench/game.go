package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	// Register the game backend for the head-to-head run.
	_ "repro/internal/backend/game"
	"repro/internal/core"
	"repro/internal/mso"
	"repro/internal/stage"
	"repro/internal/structure"
)

// GamePoint is one head-to-head measurement: the same (structure,
// formula) evaluated by the automaton backend and the game backend, with
// answers compared element-for-element.
type GamePoint struct {
	Structure   string `json:"structure"`
	Formula     string `json:"formula"`
	Var         string `json:"var,omitempty"`
	AutomatonNS int64  `json:"automaton_ns"`
	GameNS      int64  `json:"game_ns"`
	Agreed      bool   `json:"agreed"`
}

// GameResult reports the backend head-to-head plus the MaxStates-escape
// demonstration: a point where the automaton backend dies on its states
// budget while the game backend completes — correctly, per the naive
// model checker — within a position budget.
type GameResult struct {
	Elems       int         `json:"elems"`
	Points      []GamePoint `json:"points"`
	Comparisons int         `json:"comparisons"`
	Agreements  int         `json:"agreements"`

	EscapeFormula        string `json:"escape_formula"`
	EscapeMaxStates      int64  `json:"escape_max_states"`
	AutomatonBudgetError bool   `json:"automaton_budget_error"`
	GameCompleted        bool   `json:"game_completed"`
	GameCorrect          bool   `json:"game_correct"`
	GamePositions        int64  `json:"game_positions"`
	GameNS               int64  `json:"escape_game_ns"`
	EscapeDemonstrated   bool   `json:"escape_demonstrated"`
}

// gameComparePath queries run on the colored path ({e/2, c/1}, width 1):
// quantifier-free, where the automaton compilation stays cheap on a
// binary signature.
var gameComparePath = []string{
	"c(x)",
	"~c(x)",
	"c(x) | ~c(x)",
	"c(x) & ~c(x)",
}

// gameCompareColored queries run on the colors-only structure (width 0),
// where the automaton affords quantifier rank 1.
var gameCompareColored = []string{
	"c(x) & exists y ~c(y)",
	"c(x) | forall y c(y)",
	"~c(x) & exists y c(y)",
}

// escapeFormula is the MaxStates-wall point: a rank-2 sentence over the
// binary signature. Its k-type space at width 1 blows through a small
// MaxStates before compilation finishes; the game backend explores only
// the positions the colored path actually realizes.
const escapeFormula = "exists x exists y (e(x,y) & c(x))"

// escapeMaxStates is the automaton's states budget at the escape point —
// generous for the feasible points above, hopeless for escapeFormula.
const escapeMaxStates = 200

// GameCompare runs the automaton/game head-to-head on n-element
// workloads: agreement on every feasible point, then the escape point
// under a deliberately tight MaxStates. It errors on any disagreement or
// if the escape is not demonstrated, so receipts can assert
// agreements == comparisons and escape_demonstrated.
func GameCompare(ctx context.Context, n int) (GameResult, error) {
	res := GameResult{Elems: n, EscapeFormula: escapeFormula, EscapeMaxStates: escapeMaxStates}
	if n < 2 {
		return res, fmt.Errorf("bench: game compare needs ≥2 elements, got %d", n)
	}
	path := mutateWorkload(n)
	colored := structure.New(structure.MustSignature(structure.Predicate{Name: "c", Arity: 1}))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		id := colored.AddElem(fmt.Sprintf("v%d", i))
		if rng.Intn(2) == 0 {
			colored.MustAddTuple("c", id)
		}
	}
	type workload struct {
		name    string
		st      *structure.Structure
		queries []string
	}
	for _, w := range []workload{
		{"colored-path", path, gameComparePath},
		{"colors-only", colored, gameCompareColored},
	} {
		for _, q := range w.queries {
			phi, err := mso.Parse(q)
			if err != nil {
				return res, err
			}
			pt := GamePoint{Structure: w.name, Formula: q, Var: "x"}
			t0 := time.Now()
			ares, err := core.RunCtx(ctx, w.st, phi, "x", core.Options{})
			if err != nil {
				return res, fmt.Errorf("bench: automaton %s %q: %w", w.name, q, err)
			}
			pt.AutomatonNS = time.Since(t0).Nanoseconds()
			t0 = time.Now()
			gres, err := core.RunCtx(ctx, w.st, phi, "x", core.Options{Backend: "game"})
			if err != nil {
				return res, fmt.Errorf("bench: game %s %q: %w", w.name, q, err)
			}
			pt.GameNS = time.Since(t0).Nanoseconds()
			pt.Agreed = ares.Selected.Equal(gres.Selected)
			res.Points = append(res.Points, pt)
			res.Comparisons++
			if pt.Agreed {
				res.Agreements++
			} else {
				return res, fmt.Errorf("bench: %s %q: backends disagree", w.name, q)
			}
		}
	}

	// The escape point: automaton under a tight states budget must die
	// with a states BudgetError; the game backend, metered by positions
	// instead, must complete and agree with the naive model checker.
	phi := mso.MustParse(escapeFormula)
	actx := stage.WithBudget(ctx, &stage.Budget{MaxStates: escapeMaxStates})
	_, aerr := core.RunCtx(actx, path, phi, "", core.Options{Decision: true})
	var be *stage.BudgetError
	res.AutomatonBudgetError = errors.Is(aerr, stage.ErrBudgetExceeded) && errors.As(aerr, &be) && be.Dimension == "states"
	if aerr == nil {
		return res, fmt.Errorf("bench: automaton completed the escape point under MaxStates=%d; raise the formula's rank", escapeMaxStates)
	}
	if !res.AutomatonBudgetError {
		return res, fmt.Errorf("bench: automaton failed the escape point with %v, want a states budget violation", aerr)
	}
	gb := &stage.Budget{MaxGamePositions: 1 << 20}
	t0 := time.Now()
	gres, gerr := core.RunCtx(stage.WithBudget(ctx, gb), path, phi, "", core.Options{Decision: true, Backend: "game"})
	res.GameNS = time.Since(t0).Nanoseconds()
	if gerr != nil {
		return res, fmt.Errorf("bench: game backend failed the escape point: %w", gerr)
	}
	res.GameCompleted = true
	res.GamePositions = gb.GamePositionsUsed()
	want, err := mso.SentenceCtx(ctx, path, phi, nil)
	if err != nil {
		return res, fmt.Errorf("bench: naive oracle: %w", err)
	}
	res.GameCorrect = gres.Holds == want
	if !res.GameCorrect {
		return res, fmt.Errorf("bench: game backend answered %v at the escape point, naive says %v", gres.Holds, want)
	}
	res.EscapeDemonstrated = res.AutomatonBudgetError && res.GameCompleted && res.GameCorrect
	return res, nil
}

package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/faultinject"
	"repro/internal/overload"
	"repro/internal/server"
	"repro/internal/testutil/leak"
)

// Soak harness parameters: a deliberately tight server so a modest
// client herd is a genuine 2× overload, and enough distinct structures
// that the session registry churns (cold decompositions keep happening)
// for the whole run.
const (
	soakConcurrency = 8  // limiter Max: ceiling the AIMD may grow into
	soakSessions    = 8  // resident-session cap → constant FIFO eviction
	soakStructures  = 32 // distinct workload fingerprints (4× the cap)

	soakBreakerThreshold = 3
	soakBreakerCooldown  = time.Second

	// soakHeapBound is the "bounded heap" invariant: the sampled
	// HeapAlloc maximum must stay under it for the whole run.
	soakHeapBound = 256 << 20
	// soakMemWatermark arms the watchdog well under the bound so tiered
	// shedding gets a chance to act before the invariant is at risk.
	soakMemWatermark = 96 << 20

	// soakLatencyFloor: below this, the 2× admitted-p50 comparison is
	// scheduler noise, not a signal; the bound is max(2×unloaded, floor).
	soakLatencyFloor = 50 * time.Millisecond

	// soakOverload is the offered-load multiple over the calibrated
	// sequential throughput: "sustained traffic at ~2× capacity".
	soakOverload = 2.0

	// soakFaultRate is the seeded injection rate armed when the caller
	// (or the FAULTINJECT environment) has not armed a plan already.
	// The rate is per Check site and one request crosses hundreds of
	// sites (per-bag DP nodes, per-rule grounding), so even 0.0003
	// fails several percent of all requests.
	soakFaultSeed = 1
	soakFaultRate = 0.0003
)

// SoakResult is the BENCH_soak.json artifact: every overload-control
// invariant the CI soak-smoke job asserts, plus the raw counts behind
// them. Violations lists each failed invariant; Passed is their
// conjunction.
type SoakResult struct {
	Clients           int   `json:"clients"`
	DurationNS        int64 `json:"duration_ns"`
	TargetConcurrency int   `json:"target_concurrency"`
	Structures        int   `json:"structures"`
	OpIntervalNS      int64 `json:"op_interval_ns"`

	// Operation-level accounting (one op = one client call incl. its
	// internal retries).
	Ops          int `json:"ops"`
	OpsOK        int `json:"ops_ok"`
	OpsInjected  int `json:"ops_injected"`
	OpsExhausted int `json:"ops_retries_exhausted"`
	OpsOther     int `json:"ops_other_failures"`

	// Transport-level accounting (one attempt = one HTTP exchange).
	Attempts          int `json:"attempts"`
	OK200             int `json:"ok_200"`
	Shed429           int `json:"shed_429"`
	Budget429         int `json:"budget_429"`
	Breaker503        int `json:"breaker_503"`
	Injected5xx       int `json:"injected_5xx"`
	NonInjected5xx    int `json:"non_injected_5xx"`
	MissingRetryAfter int `json:"missing_retry_after"`
	OtherStatus       int `json:"other_status"`

	// Admitted-request latency over the /eval SLO class: p50 of
	// 200-answered /eval exchanges, loaded vs a single-client
	// calibration pass over the same op mix. The other op classes are
	// orders of magnitude apart (sub-ms solves vs 100ms+ cold batch
	// evals), so a whole-mix percentile would sit on the knife edge
	// between the modes and measure composition, not latency.
	UnloadedP50NS  int64 `json:"unloaded_eval_p50_ns"`
	LoadedP50NS    int64 `json:"loaded_eval_p50_ns"`
	LoadedP99NS    int64 `json:"loaded_eval_p99_ns"`
	LatencyBoundNS int64 `json:"latency_bound_ns"`

	// Self-healing evidence.
	BreakerCycles  int `json:"breaker_cycles"`
	FaultsInjected int `json:"faults_injected"`

	HeapMaxBytes   uint64 `json:"heap_max_bytes"`
	HeapBoundBytes uint64 `json:"heap_bound_bytes"`

	GoroutinesBefore int  `json:"goroutines_before"`
	GoroutinesAfter  int  `json:"goroutines_after"`
	GoroutineLeak    bool `json:"goroutine_leak"`

	Drained   bool `json:"drained"`
	Converged bool `json:"converged"`

	Statsz *server.StatszResponse `json:"statsz,omitempty"`

	Violations []string `json:"violations"`
	Passed     bool     `json:"passed"`
}

// soakCounts is the transport-level tally shared by every client in the
// run: statuses, Retry-After presence on overload answers, and the
// latency of each admitted (200) exchange.
type soakCounts struct {
	mu                sync.Mutex
	attempts          int
	ok200             int
	shed429           int
	budget429         int
	breaker503        int
	injected5xx       int
	nonInjected5xx    int
	missingRetryAfter int
	otherStatus       int
	latencies         []int64
}

// countingTransport classifies every HTTP exchange into the soak's
// invariant buckets. Non-200 bodies are sniffed (and restored) to tell
// a budget 429 from an admission shed and an injected 500 from a real
// one — the same ErrorResponse the client decodes.
type countingTransport struct {
	base   http.RoundTripper
	counts *soakCounts
}

func (t *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t0 := time.Now()
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(t0)
	c := t.counts
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attempts++
	if resp.StatusCode == http.StatusOK {
		c.ok200++
		if req.URL.Path == "/eval" {
			c.latencies = append(c.latencies, elapsed.Nanoseconds())
		}
		return resp, nil
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		body = nil
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	var er server.ErrorResponse
	_ = json.Unmarshal(body, &er)
	hasRetryAfter := resp.Header.Get("Retry-After") != ""
	switch {
	case resp.StatusCode == http.StatusTooManyRequests && er.Code == 3:
		// A per-request budget blowup: the client's own doing (the
		// poison driver), not an overload rejection — exempt from the
		// Retry-After invariant.
		c.budget429++
	case resp.StatusCode == http.StatusTooManyRequests:
		c.shed429++
		if !hasRetryAfter {
			c.missingRetryAfter++
		}
	case resp.StatusCode == http.StatusServiceUnavailable:
		c.breaker503++
		if !hasRetryAfter {
			c.missingRetryAfter++
		}
	case resp.StatusCode >= 500:
		if strings.Contains(er.Error, "injected") {
			c.injected5xx++
		} else {
			c.nonInjected5xx++
		}
	default:
		c.otherStatus++
	}
	return resp, nil
}

// p50 of a latency sample (destructive sort); 0 when empty.
func percentileNS(lat []int64, p float64) int64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	return lat[int(p*float64(len(lat)-1))]
}

// soakOp issues the iter'th operation of one worker: a deterministic
// mixed workload over the shared structure pool, weighted so the
// latency profile the limiter sees is dominated by the cold-eval class
// (sub-ms solver hits would dilute the latency EWMA and over-admit).
// Mutate re-keys the session to the post-edit fingerprint, so the next
// touch of the original text is a cold rebuild — deliberate churn.
func soakOp(ctx context.Context, c *client.Client, structs []string, worker, iter int) error {
	st := structs[(worker*31+iter)%len(structs)]
	var err error
	switch [8]int{0, 1, 0, 2, 0, 3, 1, 2}[iter%8] {
	case 0: // eval: the SLO class
		_, err = c.Eval(ctx, server.EvalRequest{Structure: st, Formula: "c(x)", Var: "x"})
	case 1: // batch: one query, same weight class as eval
		_, err = c.Batch(ctx, server.BatchRequest{
			Structures: []string{st},
			Queries:    []server.BatchQuery{{Structure: 0, Formula: "c(x) | c(x)", Var: "x"}},
		})
	case 2: // mutate: churn — evicts and re-keys
		_, err = c.Mutate(ctx, server.MutateRequest{
			Structure: st,
			Insert:    []server.MutateFact{{Pred: "c", Args: []string{"v3"}}},
		})
	case 3: // solve: the fast class, deliberately rare
		_, err = c.Solve(ctx, server.SolveRequest{Structure: st, Problem: "vcover", Mode: "optimize"})
	}
	return err
}

// poisonFormula mints a formula never used by the workload mix (which
// stays at 1–2 disjuncts), so every budget-1 request charges real work
// instead of hitting the result cache, and each blowup counts as a
// breaker failure.
func poisonFormula(variant int) string {
	parts := make([]string, 4+variant%64)
	for i := range parts {
		parts[i] = "c(x)"
	}
	return strings.Join(parts, " | ")
}

// runPoison drives the poison structure through full breaker cycles
// until the deadline: budget-1 requests with fresh formulas blow their
// budget until the breaker opens (503 observed), then — after the
// cooldown — normal-budget probes close it again (200 observed). Each
// observed open→probe→200 sequence counts one cycle.
func runPoison(ctx context.Context, poison, probe *client.Client, st string, deadline time.Time) int {
	cycles := 0
	variant := 0
	for time.Now().Before(deadline) && ctx.Err() == nil {
		opened := false
		for i := 0; i < 50 && time.Now().Before(deadline); i++ {
			variant++
			_, err := poison.Eval(ctx, server.EvalRequest{Structure: st, Formula: poisonFormula(variant), Var: "x"})
			var apiErr *client.APIError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
				opened = true
				break
			}
		}
		if !opened {
			return cycles
		}
		// Let the cooldown elapse, then probe until the breaker closes.
		// Injected faults can fail a probe and re-open it; keep probing —
		// that re-heal is exactly what the soak is for.
		sleepUntil(ctx, time.Now().Add(soakBreakerCooldown+50*time.Millisecond), deadline)
		for time.Now().Before(deadline) && ctx.Err() == nil {
			if _, err := probe.Eval(ctx, server.EvalRequest{Structure: st, Formula: "c(x)", Var: "x"}); err == nil {
				cycles++
				break
			}
			// A failed probe is either a limiter shed (retry soon — a
			// shed is cheap) or a re-open after an injected fault (the
			// next window is a cooldown away); 150ms splits the
			// difference without hammering.
			sleepUntil(ctx, time.Now().Add(150*time.Millisecond), deadline)
		}
	}
	return cycles
}

func sleepUntil(ctx context.Context, t, deadline time.Time) {
	if t.After(deadline) {
		t = deadline
	}
	d := time.Until(t)
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
}

// Soak runs the sustained-overload chaos experiment: clients workers of
// mixed traffic against an in-process monadicd sized for ~half that
// concurrency, with fault injection armed, a poison driver forcing
// breaker cycles, and a heap sampler — then shuts down and checks that
// everything healed: no unexplained 5xx, every overload rejection
// carried Retry-After, at least one full breaker cycle, admitted-p50
// within bound, heap bounded, goroutines back to baseline.
func Soak(ctx context.Context, clients int, dur time.Duration) (SoakResult, error) {
	res := SoakResult{
		Clients:           clients,
		DurationNS:        dur.Nanoseconds(),
		TargetConcurrency: soakConcurrency,
		Structures:        soakStructures,
		HeapBoundBytes:    soakHeapBound,
	}
	if clients <= 0 || dur <= 0 {
		return res, fmt.Errorf("bench: soak needs positive clients and duration, got %d over %v", clients, dur)
	}

	// Distinct fingerprints with a tight size band (cold-eval cost grows
	// with n; a wide band makes the p50 comparison composition-bound):
	// sizes 10..25, each in a base and an extra-color variant.
	structs := make([]string, soakStructures)
	for i := range structs {
		structs[i] = serveWorkload(10 + i/2)
		if i%2 == 1 {
			structs[i] += "c(v1).\n"
		}
	}
	poisonStruct := serveWorkload(9) // distinct fingerprint from every workload structure

	snap := leak.Before()
	res.GoroutinesBefore = int(snap)

	base := &http.Transport{
		MaxIdleConns:        clients + 4,
		MaxIdleConnsPerHost: clients + 4,
	}
	defer base.CloseIdleConnections()
	newClient := func(url string, counts *soakCounts, attempts int) *client.Client {
		c := client.New(url)
		c.HTTP = &http.Client{Transport: &countingTransport{base: base, counts: counts}}
		c.MaxAttempts = attempts
		c.BaseBackoff = 25 * time.Millisecond
		c.MaxBackoff = time.Second
		return c
	}

	// Calibration: one sequential client, same op mix and session cap,
	// against a throwaway server — yielding the unloaded /eval p50 the
	// loaded run is held to and the sequential throughput that defines
	// "capacity". Failures (env-armed fault plans fire here too) are
	// skipped; only admitted latencies matter.
	calL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	calSrv := server.New(server.Config{MaxSessions: soakSessions})
	calCtx, calStop := context.WithCancel(ctx)
	calDone := make(chan error, 1)
	go func() { calDone <- server.Run(calCtx, calL, calSrv, 30*time.Second) }()
	calCounts := &soakCounts{}
	cal := newClient("http://"+calL.Addr().String(), calCounts, 1)
	calOps := 4 * soakStructures
	calStart := time.Now()
	for iter := 0; iter < calOps; iter++ {
		if ctx.Err() != nil {
			calStop()
			<-calDone
			return res, ctx.Err()
		}
		_ = soakOp(ctx, cal, structs, 0, iter)
	}
	calWall := time.Since(calStart)
	calStop()
	if err := <-calDone; err != nil {
		return res, fmt.Errorf("bench: calibration server: %w", err)
	}
	res.UnloadedP50NS = percentileNS(calCounts.latencies, 0.50)
	// The latency bound the run is held to — and, deliberately, the
	// AIMD target the limiter is given: the soak asserts the limiter
	// delivered the SLO it was configured with.
	res.LatencyBoundNS = 2 * res.UnloadedP50NS
	if floor := soakLatencyFloor.Nanoseconds(); res.LatencyBoundNS < floor {
		res.LatencyBoundNS = floor
	}
	// Offered load: soakOverload × the sequential op rate, spread over
	// the herd — each worker paces its ops on a fixed interval, falling
	// behind (rather than bursting) when an op or its retries run long.
	opInterval := time.Duration(float64(calWall) * float64(clients) / (float64(calOps) * soakOverload))
	res.OpIntervalNS = opInterval.Nanoseconds()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	srv := server.New(server.Config{
		MaxSessions: soakSessions,
		// Start the limit at 1 and let AIMD grow it: on a small machine
		// concurrent CPU-bound evals inflate each other's latency, and
		// discovering the sustainable concurrency is the limiter's job —
		// the soak asserts the outcome (admitted p50 within the bound),
		// not a preconceived limit. The AIMD setpoint is a third of the
		// bound: the setpoint is where the EWMA settles, the EWMA is
		// diluted by the sub-ms op classes (it reads well under the eval
		// p50) and lags behind load spikes, so aiming at the bound
		// itself — or even half of it — parks the eval p50 on the knife
		// edge. The cost is a few more sheds, which the retrying client
		// absorbs. The queue is disabled (shed, don't wait):
		// under sustained overload any FIFO wait adds a full service
		// time ahead of every admitted request, busting a latency SLO
		// that shedding keeps for free — the retrying client turns
		// those sheds into later capacity.
		Limiter: overload.LimiterConfig{
			Initial:       1,
			Min:           1,
			Max:           soakConcurrency,
			QueueCap:      -1,
			LatencyTarget: time.Duration(res.LatencyBoundNS / 3),
		},
		Breaker: overload.BreakerConfig{
			Threshold:      soakBreakerThreshold,
			Cooldown:       soakBreakerCooldown,
			ProbeSuccesses: 1,
		},
		MemWatermark: soakMemWatermark,
	})
	runCtx, stop := context.WithCancel(ctx)
	defer stop()
	runDone := make(chan error, 1)
	go func() { runDone <- server.Run(runCtx, l, srv, 30*time.Second) }()
	url := "http://" + l.Addr().String()

	// Arm fault injection unless the caller (FAULTINJECT) already did.
	if !faultinject.Armed() {
		faultinject.Seed(soakFaultSeed, soakFaultRate)
		defer faultinject.Reset()
	}

	// Heap sampler: max observed HeapAlloc over the load phase.
	var heapMax uint64
	samplerDone := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > heapMax {
				heapMax = ms.HeapAlloc
			}
			select {
			case <-samplerDone:
				return
			case <-time.After(25 * time.Millisecond):
			}
		}
	}()

	// Load phase: the herd, plus the poison driver.
	counts := &soakCounts{}
	deadline := time.Now().Add(dur)
	var opMu, vioMu sync.Mutex
	var violations []string
	addViolation := func(format string, args ...any) {
		vioMu.Lock()
		if len(violations) < 8 {
			violations = append(violations, fmt.Sprintf(format, args...))
		}
		vioMu.Unlock()
	}
	var ops, opsOK, opsInjected, opsExhausted, opsOther int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newClient(url, counts, 4)
			// Stagger starts across one interval so the herd offers a
			// steady rate instead of synchronized bursts.
			next := time.Now().Add(opInterval * time.Duration(w) / time.Duration(clients))
			sleepUntil(ctx, next, deadline)
			for iter := 0; time.Now().Before(deadline) && ctx.Err() == nil; iter++ {
				err := soakOp(ctx, c, structs, w, iter)
				next = next.Add(opInterval)
				sleepUntil(ctx, next, deadline)
				opMu.Lock()
				ops++
				switch {
				case err == nil:
					opsOK++
				case errors.Is(err, client.ErrRetriesExhausted):
					// Allowed: the retry budget is the convergence
					// guarantee — exhausting it is giving up cleanly.
					opsExhausted++
				default:
					var apiErr *client.APIError
					if errors.As(err, &apiErr) && apiErr.Status >= 500 && strings.Contains(apiErr.Message, "injected") {
						opsInjected++
					} else if ctx.Err() == nil {
						opsOther++
						addViolation("worker %d op %d: %v", w, iter, err)
					}
				}
				opMu.Unlock()
			}
		}(w)
	}
	poisonCycles := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		poison := newClient(url, counts, 1)
		poison.Budget = 1
		probe := newClient(url, counts, 1)
		poisonCycles = runPoison(ctx, poison, probe, poisonStruct, deadline)
	}()
	wg.Wait()
	res.Converged = true // every worker returned; none hung on a retry loop

	close(samplerDone)
	samplerWG.Wait()
	res.HeapMaxBytes = heapMax

	// Server-side truth before shutdown.
	statsClient := newClient(url, &soakCounts{}, 1)
	if st, err := statsClient.Statsz(ctx); err == nil {
		res.Statsz = st
	}

	stop()
	drainErr := <-runDone
	res.Drained = drainErr == nil && ctx.Err() == nil
	base.CloseIdleConnections()

	settled, after := snap.Settled(leak.DefaultSettle)
	res.GoroutinesAfter = after
	res.GoroutineLeak = !settled

	res.Ops = int(ops)
	res.OpsOK = int(opsOK)
	res.OpsInjected = int(opsInjected)
	res.OpsExhausted = int(opsExhausted)
	res.OpsOther = int(opsOther)
	res.BreakerCycles = poisonCycles
	res.FaultsInjected = len(faultinject.Hits())

	counts.mu.Lock()
	res.Attempts = counts.attempts
	res.OK200 = counts.ok200
	res.Shed429 = counts.shed429
	res.Budget429 = counts.budget429
	res.Breaker503 = counts.breaker503
	res.Injected5xx = counts.injected5xx
	res.NonInjected5xx = counts.nonInjected5xx
	res.MissingRetryAfter = counts.missingRetryAfter
	res.OtherStatus = counts.otherStatus
	lat := counts.latencies
	counts.mu.Unlock()
	res.LoadedP50NS = percentileNS(lat, 0.50)
	res.LoadedP99NS = percentileNS(lat, 0.99)

	res.Violations = violations
	res.evaluate()
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("bench: soak aborted: %w", err)
	}
	return res, nil
}

// evaluate checks every soak invariant, filling Violations and Passed.
func (r *SoakResult) evaluate() {
	add := func(format string, args ...any) {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
	if r.OpsOK == 0 {
		add("no operation succeeded")
	}
	if r.OpsOther > 0 {
		add("%d operations failed outside the allowed classes", r.OpsOther)
	}
	if r.NonInjected5xx > 0 {
		add("%d non-injected 5xx answers", r.NonInjected5xx)
	}
	if r.MissingRetryAfter > 0 {
		add("%d overload rejections missing Retry-After", r.MissingRetryAfter)
	}
	if r.Shed429+r.Breaker503 == 0 {
		add("overload path never exercised: no 429 shed or 503 fast-fail observed")
	}
	if r.BreakerCycles < 1 {
		add("no full breaker open→half-open→close cycle observed by the driver")
	}
	if r.Statsz != nil {
		c := r.Statsz.Breakers.Counters
		if c.Opened < 1 || c.HalfOpens < 1 || c.Closed < 1 {
			add("server breaker counters incomplete: opened=%d half_opens=%d closed=%d",
				c.Opened, c.HalfOpens, c.Closed)
		}
	} else {
		add("no /statsz snapshot captured")
	}
	if r.GoroutineLeak {
		add("goroutine leak: %d before, %d after", r.GoroutinesBefore, r.GoroutinesAfter)
	}
	if r.HeapMaxBytes >= r.HeapBoundBytes {
		add("heap unbounded: max %d B >= bound %d B", r.HeapMaxBytes, r.HeapBoundBytes)
	}
	if !r.Drained {
		add("server did not drain cleanly")
	}
	if !r.Converged {
		add("workers did not all converge")
	}
	if r.LatencyBoundNS == 0 {
		r.LatencyBoundNS = 2 * r.UnloadedP50NS
		if floor := soakLatencyFloor.Nanoseconds(); r.LatencyBoundNS < floor {
			r.LatencyBoundNS = floor
		}
	}
	if r.LoadedP50NS > r.LatencyBoundNS {
		add("admitted p50 %v exceeds bound %v (unloaded p50 %v)",
			time.Duration(r.LoadedP50NS), time.Duration(r.LatencyBoundNS), time.Duration(r.UnloadedP50NS))
	}
	r.Passed = len(r.Violations) == 0
}

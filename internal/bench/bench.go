// Package bench regenerates the paper's evaluation (Section 6, Table 1)
// and the additional ablation experiments listed in DESIGN.md: timed runs
// of the monadic-datalog PRIMALITY algorithm against the budget-capped
// naive MSO baseline (the MONA substitute), with the paper's table layout.
package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/mso"
	"repro/internal/primality"
	"repro/internal/schema"
	"repro/internal/tree"
	"repro/internal/workload"
)

// Table1Row is one line of Table 1: treewidth, #Att, #FD, #tn (tree
// nodes), the monadic-datalog time and the baseline time (OOM when the
// budget is exhausted — the paper's "–" entries).
type Table1Row struct {
	TW, NumAtt, NumFD, TreeNodes int
	MD                           time.Duration
	Mona                         time.Duration
	MonaOOM                      bool
}

// MonaBudget is the default step budget of the naive MSO baseline; it
// models MONA's 512 MB memory limit in the paper's setup. At this value
// the baseline survives exactly the rows MONA survived in Table 1
// (#Att ≤ 9) and reports out-of-budget from #Att = 12 on.
const MonaBudget = 10_000_000

// Table1Opts configures Table1.
type Table1Opts struct {
	// FDs lists the #FD column (defaults to the paper's values).
	FDs []int
	// Seed drives workload generation.
	Seed int64
	// MonaBudget caps the baseline (0 = MonaBudget); the baseline is
	// skipped entirely (reported as OOM) once a smaller instance has
	// already exhausted the budget.
	MonaBudget int64
	// SkipMona disables the baseline column.
	SkipMona bool
}

// Table1 regenerates Table 1: for each #FD, generate the balanced
// workload, run the PRIMALITY decision program (the MD column), and run
// the naive MSO evaluation of the Example 2.6 formula under a budget (the
// MONA column).
func Table1(opts Table1Opts) ([]Table1Row, error) {
	fds := opts.FDs
	if fds == nil {
		fds = workload.Table1FDs
	}
	budget := opts.MonaBudget
	if budget == 0 {
		budget = MonaBudget
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var rows []Table1Row
	monaDead := false
	for _, nFD := range fds {
		s, d, err := workload.BalancedSchema(nFD, rng)
		if err != nil {
			return nil, err
		}
		row := Table1Row{TW: 3, NumAtt: s.NumAttrs(), NumFD: s.NumFDs()}

		// MD column: the Figure 6 decision program for a fixed attribute
		// (the first attribute, as a stand-in for the paper's fixed a).
		in, err := primality.NewInstanceWithDecomposition(s, d)
		if err != nil {
			return nil, err
		}
		nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
		if err != nil {
			return nil, err
		}
		row.TreeNodes = nice.Len()
		start := time.Now()
		if _, err := in.Decide(0); err != nil {
			return nil, err
		}
		row.MD = time.Since(start)

		// MONA column.
		if opts.SkipMona || monaDead {
			row.MonaOOM = true
		} else {
			dur, oom, err := MonaPrimality(s, 0, budget)
			if err != nil {
				return nil, err
			}
			row.Mona = dur
			row.MonaOOM = oom
			if oom {
				monaDead = true // larger instances can only be worse
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MonaPrimality runs the naive MSO evaluation of the primality query for
// one attribute under a step budget, reporting duration and whether the
// budget (the stand-in for MONA's memory) was exhausted.
func MonaPrimality(s *schema.Schema, attr int, budget int64) (time.Duration, bool, error) {
	st := s.ToStructure()
	e, ok := st.Elem(s.AttrName(attr))
	if !ok {
		return 0, false, fmt.Errorf("bench: attribute %d missing", attr)
	}
	if st.Size() > 63 {
		// The mask-based subset enumeration cannot even start — report as
		// out of memory, like MONA on large inputs.
		return 0, true, nil
	}
	start := time.Now()
	_, err := mso.Eval(st, mso.Primality(), mso.Interp{Elem: map[string]int{"x": e}}, &mso.Budget{MaxSteps: budget})
	dur := time.Since(start)
	if errors.Is(err, mso.ErrBudget) {
		return dur, true, nil
	}
	if err != nil {
		return 0, false, err
	}
	return dur, false, nil
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-6s %-6s %-6s %12s %12s\n", "tw", "#Att", "#FD", "#tn", "MD", "MONA*")
	for _, r := range rows {
		mona := "-"
		if !r.MonaOOM {
			mona = fmtMillis(r.Mona)
		}
		fmt.Fprintf(&b, "%-4d %-6d %-6d %-6d %12s %12s\n",
			r.TW, r.NumAtt, r.NumFD, r.TreeNodes, fmtMillis(r.MD), mona)
	}
	b.WriteString("MONA* = naive MSO model checker under a step budget (see DESIGN.md)\n")
	return b.String()
}

func fmtMillis(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

// Measure times f once and returns the duration.
func Measure(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/mso"
	"repro/internal/session"
	"repro/internal/structure"
)

// Report is the envelope of a machine-readable benchmark artifact
// (BENCH_<name>.json): what ran, when, and the mode-specific results.
type Report struct {
	Name      string `json:"name"`
	Timestamp string `json:"timestamp"`
	Results   any    `json:"results"`
}

// WriteJSON writes payload as BENCH_<name>.json under dir (dir "" means
// the current directory) and returns the path written.
func WriteJSON(dir, name string, payload any) (string, error) {
	rep := Report{
		Name:      name,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Results:   payload,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: marshal %s: %w", name, err)
	}
	data = append(data, '\n')
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// SessionReuseResult reports the artifact-reuse experiment: the same
// query set evaluated cold (full pipeline per query via core.Run) and
// warm (through one session that builds the decomposition, normal form
// and τ_td once).
type SessionReuseResult struct {
	Elems            int           `json:"elems"`
	Queries          int           `json:"queries"`
	Cold             time.Duration `json:"cold_ns"`
	Warm             time.Duration `json:"warm_ns"`
	Speedup          float64       `json:"speedup"`
	Decompositions   int           `json:"decompositions"`
	Compiles         int           `json:"compiles"`
	CompileCacheHits int           `json:"compile_cache_hits"`
}

// sessionReuseQueries is the fixed workload: ten distinct unary queries
// of rank ≤ 1 over the {c/1} signature (higher ranks or binary
// signatures make the generic compilation dominate both columns).
var sessionReuseQueries = []string{
	"c(x)",
	"~c(x)",
	"c(x) | ~c(x)",
	"c(x) & exists y ~c(y)",
	"c(x) | forall y c(y)",
	"~c(x) & exists y c(y)",
	"c(x) -> exists y ~c(y)",
	"c(x) & (c(x) | ~c(x))",
	"~c(x) | c(x)",
	"(c(x) -> c(x)) & c(x)",
}

// SessionReuse measures the session architecture's reuse win on an
// n-element random colored structure with the given seed.
func SessionReuse(ctx context.Context, n int, seed int64) (SessionReuseResult, error) {
	sig := structure.MustSignature(structure.Predicate{Name: "c", Arity: 1})
	rng := rand.New(rand.NewSource(seed))
	st := structure.New(sig)
	for i := 0; i < n; i++ {
		id := st.AddElem(fmt.Sprintf("v%d", i))
		if rng.Intn(2) == 0 {
			st.MustAddTuple("c", id)
		}
	}
	phis := make([]*mso.Formula, len(sessionReuseQueries))
	for i, q := range sessionReuseQueries {
		f, err := mso.Parse(q)
		if err != nil {
			return SessionReuseResult{}, err
		}
		phis[i] = f
	}

	coldStart := time.Now()
	for _, phi := range phis {
		if _, err := core.RunCtx(ctx, st, phi, "x", core.Options{}); err != nil {
			return SessionReuseResult{}, err
		}
	}
	cold := time.Since(coldStart)

	s := session.NewWithCache(st, session.NewProgramCache())
	warmStart := time.Now()
	for _, phi := range phis {
		if _, err := s.Eval(ctx, phi, "x", core.Options{}); err != nil {
			return SessionReuseResult{}, err
		}
	}
	warm := time.Since(warmStart)

	stats := s.Stats()
	res := SessionReuseResult{
		Elems:            n,
		Queries:          len(phis),
		Cold:             cold,
		Warm:             warm,
		Decompositions:   stats.Decompositions,
		Compiles:         stats.Compiles,
		CompileCacheHits: stats.CompileCacheHits,
	}
	if warm > 0 {
		res.Speedup = float64(cold) / float64(warm)
	}
	return res, nil
}

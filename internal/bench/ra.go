package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"time"

	"repro/internal/datalog"
	"repro/internal/stage"
)

// TDChainProgram builds the τ_td workload of the streaming-engine A/B:
// a monadic program in the style of Theorem 4.5's output — k type
// predicates, each propagating bottom-up along child1 — over a
// chain-shaped tree decomposition. Compiled MSO programs carry one rule
// family per k-type, so k scales the |P| factor of Theorem 4.4's
// |P|·|A| grounding exactly the way real compilations do: the grounding
// materializes Θ(k·n) Horn clauses while the streaming engine's direct
// path holds O(1) rows in flight per rule.
func TDChainProgram(k int) *datalog.Program {
	src := ""
	for i := 0; i < k; i++ {
		src += fmt.Sprintf("theta%d(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).\n", i)
		src += fmt.Sprintf("theta%d(V) :- bag(V, X0, X1), child1(V1, V), theta%d(V1), bag(V1, Y0, Y1), e(X0, X1).\n", i, i)
	}
	src += "accept :- root(V), theta0(V).\n"
	return datalog.MustParse(src)
}

// TDChain builds the τ_td EDB of a chain decomposition with n bags
// (4n+2 facts), the workload TDChainProgram runs over.
func TDChain(n int) *datalog.DB {
	db := datalog.NewDB()
	node := func(i int) string { return "s" + strconv.Itoa(i) }
	elem := func(i int) string { return "x" + strconv.Itoa(i) }
	for i := 0; i < n; i++ {
		db.AddFact("bag", node(i), elem(i), elem(i+1))
		if i == 0 {
			db.AddFact("leaf", node(i))
		} else {
			db.AddFact("child1", node(i-1), node(i))
		}
		db.AddFact("e", elem(i), elem(i+1))
	}
	db.AddFact("root", node(n-1))
	return db
}

// RAResult is the BENCH_ra.json payload: the streaming-engine A/B on
// the τ_td chain workload. Engine rows compare the two rule-evaluation
// backends over the same direct fixpoint (interleaved, medians); the
// grounded row is the Theorem 4.4 pipeline on the same inputs; the
// budget rows demonstrate that a run killed by MaxGroundAtoms under
// grounding completes under the same budget on the streaming path.
type RAResult struct {
	N          int `json:"n"`
	GroundLits int `json:"ground_lits"` // |P'| of the Theorem 4.4 grounding
	Facts      int `json:"facts"`       // facts in the computed fixpoint
	Reps       int `json:"reps"`

	StreamNS    int64 `json:"stream_ns"`
	StreamBytes int64 `json:"stream_bytes"`
	MatNS       int64 `json:"mat_ns"`
	MatBytes    int64 `json:"mat_bytes"`
	GroundedNS  int64 `json:"grounded_ns"`
	GroundedBy  int64 `json:"grounded_bytes"`

	// ThroughputRatio is streaming ns over materialized ns (≤1.10 meets
	// the ±10% acceptance bound); EngineAllocRatio is materialized bytes
	// over streaming bytes; GroundedAllocRatio is grounded bytes over
	// streaming bytes (the ≥2× headline).
	ThroughputRatio    float64 `json:"throughput_ratio"`
	EngineAllocRatio   float64 `json:"engine_alloc_ratio"`
	GroundedAllocRatio float64 `json:"grounded_alloc_ratio"`

	TuplesStreamed  int64 `json:"tuples_streamed"`
	JoinsPushedDown int64 `json:"joins_pushed_down"`
	PeakBuffered    int64 `json:"peak_buffered_tuples"`

	// Budget demo: the grounded path dies on MaxGroundAtoms = BudgetCap
	// while the streaming direct path completes under the same cap.
	BudgetCap        int64  `json:"budget_cap"`
	GroundedBudget   string `json:"grounded_budget_error"`
	DirectUnderCap   bool   `json:"direct_completes_under_cap"`
	DirectBudgetNS   int64  `json:"direct_under_cap_ns"`
	DirectBudgetFact int    `json:"direct_under_cap_facts"`
}

// measureAlloc runs f and returns its wall time and allocation volume
// (TotalAlloc delta, the B/op numerator), collecting garbage first so
// prior runs' floats don't bleed in.
func measureAlloc(f func() error) (time.Duration, int64, error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	err := f()
	dur := time.Since(start)
	runtime.ReadMemStats(&m1)
	return dur, int64(m1.TotalAlloc - m0.TotalAlloc), err
}

func median(xs []int64) int64 {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs[len(xs)/2]
}

// RATypes is the number of type-predicate families in the RACompare
// workload program; see TDChainProgram.
const RATypes = 8

// RACompare runs the streaming-engine A/B on the n-bag τ_td chain with
// RATypes type families: interleaved direct evaluations under both
// backends (medians of reps), one grounded evaluation, and the
// MaxGroundAtoms budget demonstration. Every leg checks the fixpoint
// derives accept, so a wrong answer fails the benchmark rather than
// skewing it.
func RACompare(ctx context.Context, n, reps int) (*RAResult, error) {
	if reps < 1 {
		reps = 1
	}
	prog, edb := TDChainProgram(RATypes), TDChain(n)
	res := &RAResult{N: n, Reps: reps}
	prev := datalog.CurrentEngine()
	defer datalog.SetEngine(prev)

	// EvalCtx clones internally and never mutates edb, so the direct
	// legs share one EDB; the grounded leg interns into its input and
	// gets a pre-made clone outside the measured region.
	runDirect := func(eng datalog.Engine, c *datalog.StatsCollector) (time.Duration, int64, error) {
		datalog.SetEngine(eng)
		rctx := ctx
		if c != nil {
			rctx = datalog.WithStatsCollector(ctx, c)
		}
		return measureAlloc(func() error {
			out, err := datalog.EvalCtx(rctx, prog, edb)
			if err != nil {
				return err
			}
			if !out.Has("accept") {
				return fmt.Errorf("bench: ra(%d): accept not derived", n)
			}
			res.Facts = out.NumFacts()
			return nil
		})
	}

	// Interleave the two backends so allocator and cache drift hits both
	// sides equally; keep per-rep samples and report medians.
	var sNS, sBy, mNS, mBy []int64
	var collector datalog.StatsCollector
	for r := 0; r < reps; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dur, bytes, err := runDirect(datalog.EngineMaterialized, nil)
		if err != nil {
			return nil, err
		}
		mNS, mBy = append(mNS, dur.Nanoseconds()), append(mBy, bytes)
		dur, bytes, err = runDirect(datalog.EngineStreaming, &collector)
		if err != nil {
			return nil, err
		}
		sNS, sBy = append(sNS, dur.Nanoseconds()), append(sBy, bytes)
	}
	res.StreamNS, res.StreamBytes = median(sNS), median(sBy)
	res.MatNS, res.MatBytes = median(mNS), median(mBy)
	es := collector.Snapshot()
	res.TuplesStreamed = es.TuplesStreamed / int64(reps)
	res.JoinsPushedDown = es.JoinsPushedDown
	res.PeakBuffered = es.PeakBufferedTuples

	// Grounded leg (Theorem 4.4): size the ground program, then time the
	// full ground-and-solve evaluation once (it dwarfs the direct legs).
	g, err := datalog.GroundCtx(ctx, prog, edb.Clone(), datalog.TDFuncDeps(1))
	if err != nil {
		return nil, err
	}
	res.GroundLits = g.Horn.Size()
	gedb := edb.Clone()
	dur, bytes, err := measureAlloc(func() error {
		out, err := datalog.EvalQuasiGuardedCtx(ctx, prog, gedb, datalog.TDFuncDeps(1))
		if err != nil {
			return err
		}
		if !out.Has("accept") {
			return fmt.Errorf("bench: ra(%d): grounded accept not derived", n)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.GroundedNS, res.GroundedBy = dur.Nanoseconds(), bytes

	if res.StreamBytes > 0 {
		res.EngineAllocRatio = float64(res.MatBytes) / float64(res.StreamBytes)
		res.GroundedAllocRatio = float64(res.GroundedBy) / float64(res.StreamBytes)
	}
	if res.MatNS > 0 {
		res.ThroughputRatio = float64(res.StreamNS) / float64(res.MatNS)
	}

	// Budget demonstration: cap ground-atom interning below what the
	// grounding needs (it interns one theta0 atom per bag). The grounded
	// path must die with a budget error; the direct streaming path runs
	// under an identically-capped fresh budget and completes, because it
	// never materializes the ground program.
	res.BudgetCap = int64(n / 2)
	bctx := stage.WithBudget(ctx, &stage.Budget{MaxGroundAtoms: res.BudgetCap})
	if _, err := datalog.EvalQuasiGuardedCtx(bctx, prog, edb.Clone(), datalog.TDFuncDeps(1)); err != nil {
		res.GroundedBudget = err.Error()
	} else {
		return nil, fmt.Errorf("bench: ra(%d): grounding survived MaxGroundAtoms=%d", n, res.BudgetCap)
	}
	datalog.SetEngine(datalog.EngineStreaming)
	bctx = stage.WithBudget(ctx, &stage.Budget{MaxGroundAtoms: res.BudgetCap})
	dur, _, err = measureAlloc(func() error {
		out, err := datalog.EvalCtx(bctx, prog, edb)
		if err != nil {
			return err
		}
		if !out.Has("accept") {
			return fmt.Errorf("bench: ra(%d): capped direct run lost accept", n)
		}
		res.DirectBudgetFact = out.NumFacts()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("bench: ra(%d): direct path under MaxGroundAtoms=%d: %w", n, res.BudgetCap, err)
	}
	res.DirectUnderCap = true
	res.DirectBudgetNS = dur.Nanoseconds()
	return res, nil
}

package bench

import "testing"

func TestPipeline(t *testing.T) {
	for _, n := range []int{10, 60} {
		res, err := Pipeline(n, 7)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Width < 1 {
			t.Fatalf("n=%d: implausible width %d", n, res.Width)
		}
	}
}

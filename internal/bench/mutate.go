package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mso"
	"repro/internal/session"
	"repro/internal/structure"
)

// MutateResult reports the incremental-evaluation experiment: a warm
// session absorbing single-tuple edits through Session.Mutate versus
// the pre-incremental behavior — the same edit invalidating the session
// wholesale and recomputing cold. Every edit's answer set is compared
// across the two sessions; Matched is false (and the run errors) on any
// divergence.
type MutateResult struct {
	Elems int `json:"elems"`
	Edits int `json:"edits"`
	// WarmNS / ColdNS total the edit+requery round trips on each side.
	WarmNS        int64   `json:"warm_ns"`
	ColdNS        int64   `json:"cold_ns"`
	WarmPerEditNS int64   `json:"warm_per_edit_ns"`
	ColdPerEditNS int64   `json:"cold_per_edit_ns"`
	Speedup       float64 `json:"speedup"`
	// Warm-session receipts: every edit must be absorbed incrementally.
	DeltasApplied   int  `json:"deltas_applied"`
	RepairFallbacks int  `json:"repair_fallbacks"`
	Invalidations   int  `json:"invalidations"`
	Matched         bool `json:"matched"`
}

var sigMutateBench = structure.MustSignature(
	structure.Predicate{Name: "e", Arity: 2},
	structure.Predicate{Name: "c", Arity: 1},
)

// mutateWorkload is a colored path: treewidth 1, the regime where the
// quantifier-free MSO compilation is cheap and evaluation dominates.
func mutateWorkload(n int) *structure.Structure {
	st := structure.New(sigMutateBench)
	for i := 0; i < n; i++ {
		st.AddElem(fmt.Sprintf("v%d", i))
	}
	for i := 0; i+1 < n; i++ {
		st.MustAddTuple("e", i, i+1)
	}
	for i := 0; i < n; i += 2 {
		st.MustAddTuple("c", i)
	}
	return st
}

// Mutate measures edits single-tuple color toggles over an n-element
// path, each followed by a re-query of c(x). The warm side goes through
// Session.Mutate (incremental maintenance); the cold side applies the
// identical edit directly to its structure, which the session's
// fingerprint revalidation treats as a wholesale invalidation — the
// pre-incremental cost of any edit. Both sides share one program cache,
// so compilation is warm everywhere and the comparison isolates
// delta-maintenance against decompose+build+eval.
func Mutate(ctx context.Context, n, edits int) (MutateResult, error) {
	res := MutateResult{Elems: n, Edits: edits}
	if n < 2 || edits <= 0 {
		return res, fmt.Errorf("bench: mutate needs ≥2 elements and ≥1 edit, got %d and %d", n, edits)
	}
	phi := mso.MustParse("c(x)")
	progs := session.NewProgramCache()
	warmSt := mutateWorkload(n)
	coldSt := mutateWorkload(n)
	warm := session.NewWithCache(warmSt, progs)
	cold := session.NewWithCache(coldSt, progs)
	if _, err := warm.Eval(ctx, phi, "x", core.Options{}); err != nil {
		return res, fmt.Errorf("bench: warm-up: %w", err)
	}
	if _, err := cold.Eval(ctx, phi, "x", core.Options{}); err != nil {
		return res, fmt.Errorf("bench: warm-up: %w", err)
	}

	toggle := func(st *structure.Structure, v int) {
		if st.Has("c", v) {
			st.RemoveTuple("c", v)
		} else {
			st.MustAddTuple("c", v)
		}
	}
	res.Matched = true
	for i := 0; i < edits; i++ {
		v := i % n

		t0 := time.Now()
		if _, err := warm.Mutate(func(st *structure.Structure) error {
			toggle(st, v)
			return nil
		}); err != nil {
			return res, fmt.Errorf("bench: edit %d: %w", i, err)
		}
		wres, err := warm.Eval(ctx, phi, "x", core.Options{})
		if err != nil {
			return res, fmt.Errorf("bench: warm requery %d: %w", i, err)
		}
		res.WarmNS += time.Since(t0).Nanoseconds()

		t0 = time.Now()
		toggle(coldSt, v) // direct edit: fingerprint mismatch → invalidate
		cres, err := cold.Eval(ctx, phi, "x", core.Options{})
		if err != nil {
			return res, fmt.Errorf("bench: cold requery %d: %w", i, err)
		}
		res.ColdNS += time.Since(t0).Nanoseconds()

		if !wres.Selected.Equal(cres.Selected) {
			res.Matched = false
			return res, fmt.Errorf("bench: edit %d: warm answer diverged from cold recompute", i)
		}
	}
	stats := warm.Stats()
	res.DeltasApplied = stats.DeltasApplied
	res.RepairFallbacks = stats.RepairFallbacks
	res.Invalidations = stats.Invalidations
	res.WarmPerEditNS = res.WarmNS / int64(edits)
	res.ColdPerEditNS = res.ColdNS / int64(edits)
	if res.WarmNS > 0 {
		res.Speedup = float64(res.ColdNS) / float64(res.WarmNS)
	}
	return res, nil
}

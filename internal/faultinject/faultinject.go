// Package faultinject provides deterministic, seeded fault injection
// for chaos-testing the solver pipeline. Code under test calls
// Check("point") at its stage boundaries and inside worker loops; a
// test (or the FAULTINJECT environment variable, for the cmd/* tools)
// arms specific points to fail on specific calls, or arms a seeded
// pseudo-random plan that fails each check with a fixed probability.
//
// The package is built for the chaos suite's three guarantees: injected
// failures surface as ordinary (stage-taggable) errors rather than
// panics, budgets/cancellation/recovery leave no goroutines behind, and
// a failed run never poisons the session caches. When nothing is armed,
// Check is a single atomic load — safe to leave in hot loops.
//
// Injection points in this repository (see DESIGN.md "Resilience"):
//
//	core.decompose core.normalize-tuple core.build-td core.compile core.eval
//	session.decompose session.normalize-tuple session.build-td
//	session.compile session.eval session.solver
//	decompose.min-fill decompose.min-degree decompose.greedy-bfs
//	decompose.repair
//	dp.node dp.chain datalog.ground-rule datalog.stratum-task
//	datalog.delta
//	solver.introduce solver.forget solver.join solver.witness
//	solver.repair
//	game.expand game.memo
//
// Determinism: FailAt plans are exact — the nth Check of a point fails,
// independent of scheduling. Seeded plans hash (seed, point, per-point
// call index); with parallel workers the call index a given node
// observes may vary between runs, but the multiset of outcomes per
// point is fixed, which is what the chaos properties quantify over.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrInjected is the sentinel under every injected fault; test with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Error reports one injected fault: which point fired and on which call.
type Error struct {
	Point string
	Call  int64
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s (call %d)", e.Point, e.Call)
}

func (e *Error) Unwrap() error { return ErrInjected }

// armed short-circuits Check when no plan is active.
var armed atomic.Bool

var state struct {
	sync.Mutex
	failAt map[string]map[int64]bool // point → call numbers that fail
	always map[string]bool           // point → fail every call
	calls  map[string]*int64         // point → calls observed
	seeded bool
	seed   uint64
	rate   float64 // probability in [0,1] for seeded mode
	hits   []Error // faults fired since the last Reset, in order
}

// Reset disarms every plan and clears call counters and hit history.
// Tests must call it (usually via defer) before handing control back.
func Reset() {
	state.Lock()
	defer state.Unlock()
	state.failAt = nil
	state.always = nil
	state.calls = nil
	state.seeded = false
	state.hits = nil
	armed.Store(false)
}

func armLocked() {
	if state.calls == nil {
		state.calls = map[string]*int64{}
	}
	armed.Store(true)
}

// FailAt arms point to fail on its nth Check (1-based). Multiple calls
// accumulate; other calls at the point succeed.
func FailAt(point string, nth int64) {
	state.Lock()
	defer state.Unlock()
	if state.failAt == nil {
		state.failAt = map[string]map[int64]bool{}
	}
	if state.failAt[point] == nil {
		state.failAt[point] = map[int64]bool{}
	}
	state.failAt[point][nth] = true
	armLocked()
}

// FailAlways arms point to fail on every Check.
func FailAlways(point string) {
	state.Lock()
	defer state.Unlock()
	if state.always == nil {
		state.always = map[string]bool{}
	}
	state.always[point] = true
	armLocked()
}

// Seed arms the pseudo-random plan: every Check at every point fails
// with probability rate, deterministically derived from (seed, point,
// per-point call index) by a splitmix-style hash.
func Seed(seed int64, rate float64) {
	state.Lock()
	defer state.Unlock()
	state.seeded = true
	state.seed = uint64(seed)
	state.rate = rate
	armLocked()
}

// Hits returns the faults fired since the last Reset, in firing order.
func Hits() []Error {
	state.Lock()
	defer state.Unlock()
	return append([]Error(nil), state.hits...)
}

// Check reports whether an armed plan injects a fault at point for this
// call: nil when disarmed or the plan spares this call, a *Error
// (wrapping ErrInjected) when it fires. The disarmed fast path is one
// atomic load.
func Check(point string) error {
	if !armed.Load() {
		return nil
	}
	state.Lock()
	defer state.Unlock()
	if !armed.Load() { // Reset raced us between the load and the lock
		return nil
	}
	ctr := state.calls[point]
	if ctr == nil {
		ctr = new(int64)
		state.calls[point] = ctr
	}
	*ctr++
	call := *ctr
	fire := state.always[point] || state.failAt[point][call]
	if !fire && state.seeded {
		h := splitmix(state.seed ^ hashString(point) ^ uint64(call))
		// Top 53 bits as a uniform float in [0,1); rate 1 always fires.
		fire = float64(h>>11)/(1<<53) < state.rate
	}
	if !fire {
		return nil
	}
	err := &Error{Point: point, Call: call}
	state.hits = append(state.hits, *err)
	return err
}

// splitmix is the SplitMix64 finalizer: a bijective avalanche mix.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a, enough to decorrelate point names.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// InitFromSpec arms plans from a spec string, the format of the
// FAULTINJECT environment variable read by the cmd/* tools:
//
//	point@n        fail the nth call at point
//	point          fail every call at point
//	seed=S:rate=R  seeded plan (R a float in [0,1])
//
// Entries are separated by ';' or ','. An empty spec is a no-op.
func InitFromSpec(spec string) error {
	for _, entry := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if strings.HasPrefix(entry, "seed=") {
			var seed int64
			rate := 0.5
			for _, kv := range strings.Split(entry, ":") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return fmt.Errorf("faultinject: bad spec entry %q", entry)
				}
				switch k {
				case "seed":
					n, err := strconv.ParseInt(v, 10, 64)
					if err != nil {
						return fmt.Errorf("faultinject: bad seed in %q: %v", entry, err)
					}
					seed = n
				case "rate":
					f, err := strconv.ParseFloat(v, 64)
					if err != nil || f < 0 || f > 1 {
						return fmt.Errorf("faultinject: bad rate in %q", entry)
					}
					rate = f
				default:
					return fmt.Errorf("faultinject: unknown key %q in %q", k, entry)
				}
			}
			Seed(seed, rate)
			continue
		}
		if point, nth, ok := strings.Cut(entry, "@"); ok {
			n, err := strconv.ParseInt(nth, 10, 64)
			if err != nil || n < 1 {
				return fmt.Errorf("faultinject: bad call number in %q", entry)
			}
			FailAt(point, n)
			continue
		}
		FailAlways(entry)
	}
	return nil
}

// Armed reports whether any plan is active.
func Armed() bool { return armed.Load() }

// PointsSeen lists the points that observed at least one Check since the
// last Reset, sorted — a convenience for coverage assertions in tests.
func PointsSeen() []string {
	state.Lock()
	defer state.Unlock()
	out := make([]string, 0, len(state.calls))
	for p := range state.calls {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedIsFree(t *testing.T) {
	Reset()
	for i := 0; i < 1000; i++ {
		if err := Check("p"); err != nil {
			t.Fatalf("disarmed Check returned %v", err)
		}
	}
	if got := PointsSeen(); len(got) != 0 {
		t.Fatalf("disarmed Check counted calls: %v", got)
	}
}

func TestFailAtExactCall(t *testing.T) {
	Reset()
	defer Reset()
	FailAt("p", 3)
	for i := 1; i <= 5; i++ {
		err := Check("p")
		if (i == 3) != (err != nil) {
			t.Fatalf("call %d: err=%v", i, err)
		}
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", err)
			}
			var fe *Error
			if !errors.As(err, &fe) || fe.Point != "p" || fe.Call != 3 {
				t.Fatalf("unexpected fault detail: %+v", fe)
			}
		}
	}
	if err := Check("other"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	hits := Hits()
	if len(hits) != 1 || hits[0].Point != "p" || hits[0].Call != 3 {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestFailAlways(t *testing.T) {
	Reset()
	defer Reset()
	FailAlways("q")
	for i := 0; i < 3; i++ {
		if err := Check("q"); err == nil {
			t.Fatalf("call %d did not fire", i)
		}
	}
}

func TestSeededDeterministic(t *testing.T) {
	run := func() []Error {
		Reset()
		Seed(42, 0.5)
		for i := 0; i < 100; i++ {
			Check("a")
			Check("b")
		}
		h := Hits()
		Reset()
		return h
	}
	h1, h2 := run(), run()
	if len(h1) == 0 || len(h1) == 200 {
		t.Fatalf("rate 0.5 fired %d/200 times", len(h1))
	}
	if len(h1) != len(h2) {
		t.Fatalf("seeded plan not deterministic: %d vs %d hits", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("hit %d differs: %+v vs %+v", i, h1[i], h2[i])
		}
	}
}

func TestInitFromSpec(t *testing.T) {
	Reset()
	defer Reset()
	if err := InitFromSpec("p@2; q"); err != nil {
		t.Fatal(err)
	}
	if Check("p") != nil {
		t.Fatal("p fired on call 1")
	}
	if Check("p") == nil {
		t.Fatal("p did not fire on call 2")
	}
	if Check("q") == nil {
		t.Fatal("q did not fire")
	}
	Reset()
	if err := InitFromSpec("seed=7:rate=1"); err != nil {
		t.Fatal(err)
	}
	if Check("anything") == nil {
		t.Fatal("rate=1 did not fire")
	}
	Reset()
	for _, bad := range []string{"p@zero", "p@0", "seed=x", "seed=1:rate=2", "seed=1:bogus=3"} {
		Reset()
		if err := InitFromSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestConcurrentChecks(t *testing.T) {
	Reset()
	defer Reset()
	FailAt("c", 50)
	var wg sync.WaitGroup
	fired := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if Check("c") != nil {
					fired[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range fired {
		total += n
	}
	if total != 1 {
		t.Fatalf("expected exactly one fault across workers, got %d", total)
	}
}

// Package core implements the paper's primary contribution: the generic
// transformation of MSO-definable unary queries over τ-structures of
// bounded treewidth into quasi-guarded monadic datalog programs over the
// extended signature τ_td (Theorem 4.5), together with the end-to-end
// evaluation pipeline (decompose → normalize → build τ_td → compile →
// quasi-guarded evaluation, Corollary 4.6).
//
// The construction enumerates MSO k-types of structures rooted at tree
// decomposition nodes: a bottom-up family Θ↑ (types of subtree-induced
// structures, Lemma 3.5), a top-down family Θ↓ (types of envelope-induced
// structures, Lemma 3.6), and an element-selection step combining both
// (Lemma 3.7). Each type becomes a monadic intensional predicate; each
// construction step becomes a datalog rule.
//
// As the paper stresses, the generic program is exponential in the formula
// size and the treewidth — the practical algorithms of Section 5 are
// hand-crafted instead (see internal/threecol and internal/primality).
// The compiler is therefore guarded by explicit resource limits and is
// exercised on small quantifier depths and widths.
package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/datalog"
	"repro/internal/mso"
	"repro/internal/msotype"
	"repro/internal/stage"
	"repro/internal/structure"
)

// Options configures Compile.
type Options struct {
	// Width is the treewidth w the program is compiled for; bags have
	// w+1 entries. Run overwrites it with the decomposition's
	// normalized width.
	Width int
	// RequestedWidth, when non-nil, makes Run fail unless the
	// decomposition's normalized width equals *RequestedWidth. A nil
	// pointer means "no assertion" — unlike a zero Width, which is a
	// legitimate width (trees of atoms). See Options.RequestWidth.
	RequestedWidth *int
	// QuantifierDepth is the rank k of the type construction. It must be
	// at least the quantifier depth of the target formula; if 0, the
	// formula's own depth is used.
	QuantifierDepth int
	// Decision compiles the 0-ary variant (Section 4's discussion): only
	// the bottom-up family Θ↑ is constructed and the goal predicate is
	// 0-ary. The target formula must then be a sentence.
	Decision bool
	// MaxWitnessDomain bounds witness-structure domains (type computation
	// enumerates subsets of the witness domain). Default 12.
	MaxWitnessDomain int
	// MaxTypes aborts compilation when more types than this are found.
	// Default 2000.
	MaxTypes int
	// MaxEDBSubsets bounds the 2^|R(ā)| case enumerations. Default 65536.
	MaxEDBSubsets int
	// EvalBudget caps the naive MSO evaluations on witness structures
	// during element selection (0 = unlimited).
	EvalBudget int64
	// Backend selects the evaluation strategy by name ("" means
	// DefaultBackend, the automaton pipeline of this package). See the
	// Backend interface and RegisterBackend.
	Backend string
}

func (o Options) withDefaults(phi *mso.Formula) Options {
	if o.QuantifierDepth == 0 {
		o.QuantifierDepth = phi.QuantifierDepth()
	}
	if o.MaxWitnessDomain == 0 {
		o.MaxWitnessDomain = 12
	}
	if o.MaxTypes == 0 {
		o.MaxTypes = 2000
	}
	if o.MaxEDBSubsets == 0 {
		o.MaxEDBSubsets = 1 << 16
	}
	return o
}

// Compiled is the result of Compile.
type Compiled struct {
	// Program is the quasi-guarded monadic datalog program over τ_td.
	Program *datalog.Program
	// QueryPred is the goal predicate: unary ("phi") for unary queries,
	// 0-ary for the decision variant.
	QueryPred string
	// Width and QuantifierDepth echo the effective parameters.
	Width           int
	QuantifierDepth int
	// UpTypes and DownTypes count the types of Θ↑ and Θ↓.
	UpTypes, DownTypes int
}

// witness is a structure (A, ā) — the W(ϑ) of the construction: A is the
// witness structure and bag the distinguished tuple (the bag of the
// distinguished node of its implicit tree decomposition).
type witness struct {
	st  *structure.Structure
	bag []int
}

type typeRec struct {
	name string
	wit  witness
}

type compiler struct {
	ctx   context.Context
	sig   *structure.Signature
	phi   *mso.Formula
	xVar  string
	opts  Options
	comp  *msotype.Computer
	rules map[string]bool
	prog  *datalog.Program

	up, down     []*typeRec
	upIDs        map[msotype.TypeID]*typeRec
	downIDs      map[msotype.TypeID]*typeRec
	freshCounter int
}

// Compile transforms the MSO formula phi with free element variable xVar
// (ignored in Decision mode) over the signature sig into an equivalent
// quasi-guarded monadic datalog program over τ_td for the given width.
// It dispatches on opts.Backend; only the automaton backend has a
// compiled form, so the game backend answers with an error here.
func Compile(sig *structure.Signature, phi *mso.Formula, xVar string, opts Options) (*Compiled, error) {
	return CompileCtx(context.Background(), sig, phi, xVar, opts)
}

// CompileCtx is Compile with cancellation support: the saturation
// worklist, the EDB-subset enumerations and the witness MSO evaluations
// all poll ctx, so compilation of an over-large (k, w) combination can
// be abandoned promptly. A context error is returned wrapped in a
// *stage.Error tagged stage.Compile (or stage.MSOEval when the witness
// oracle observed it first).
func CompileCtx(ctx context.Context, sig *structure.Signature, phi *mso.Formula, xVar string, opts Options) (*Compiled, error) {
	b, err := backendFor(opts)
	if err != nil {
		return nil, err
	}
	return b.CompileCtx(ctx, sig, phi, xVar, opts)
}

// compileAutomatonCtx is the automaton backend's CompileCtx: the
// Theorem 4.5 type-saturation compiler.
func compileAutomatonCtx(ctx context.Context, sig *structure.Signature, phi *mso.Formula, xVar string, opts Options) (*Compiled, error) {
	opts = opts.withDefaults(phi)
	if k := phi.QuantifierDepth(); opts.QuantifierDepth < k {
		return nil, fmt.Errorf("core: quantifier depth %d below formula depth %d", opts.QuantifierDepth, k)
	}
	elems, sets := phi.FreeVars()
	if len(sets) > 0 {
		return nil, fmt.Errorf("core: free set variables %v not supported", sets)
	}
	if opts.Decision {
		if len(elems) != 0 {
			return nil, fmt.Errorf("core: decision variant requires a sentence, got free variables %v", elems)
		}
	} else if len(elems) != 1 || elems[0] != xVar {
		return nil, fmt.Errorf("core: expected exactly the free variable %q, got %v", xVar, elems)
	}
	mc := msotype.NewComputer()
	mc.MaxDomain = opts.MaxWitnessDomain
	mc.Budget = stage.BudgetFrom(ctx)
	c := &compiler{
		ctx:     ctx,
		sig:     sig,
		phi:     phi,
		xVar:    xVar,
		opts:    opts,
		comp:    mc,
		rules:   map[string]bool{},
		prog:    &datalog.Program{},
		upIDs:   map[msotype.TypeID]*typeRec{},
		downIDs: map[msotype.TypeID]*typeRec{},
	}
	if err := c.saturate(true); err != nil {
		return nil, err
	}
	if opts.Decision {
		if err := c.emitDecision(); err != nil {
			return nil, err
		}
	} else {
		if err := c.saturate(false); err != nil {
			return nil, err
		}
		if err := c.emitSelection(); err != nil {
			return nil, err
		}
	}
	return &Compiled{
		Program:         c.prog,
		QueryPred:       "phi",
		Width:           opts.Width,
		QuantifierDepth: opts.QuantifierDepth,
		UpTypes:         len(c.up),
		DownTypes:       len(c.down),
	}, nil
}

// ---- type bookkeeping ----

func (c *compiler) registerType(up bool, wit witness) (*typeRec, bool, error) {
	id, err := c.comp.Type(wit.st, wit.bag, c.opts.QuantifierDepth)
	if err != nil {
		return nil, false, err
	}
	ids := c.upIDs
	prefix := "tu"
	if !up {
		ids = c.downIDs
		prefix = "td"
	}
	if rec, ok := ids[id]; ok {
		return rec, false, nil
	}
	if len(c.up)+len(c.down) >= c.opts.MaxTypes {
		return nil, false, fmt.Errorf("core: type limit %d exceeded (reduce k or w, or raise MaxTypes)", c.opts.MaxTypes)
	}
	rec := &typeRec{wit: wit}
	if up {
		rec.name = fmt.Sprintf("%s%d", prefix, len(c.up))
		c.up = append(c.up, rec)
	} else {
		rec.name = fmt.Sprintf("%s%d", prefix, len(c.down))
		c.down = append(c.down, rec)
	}
	ids[id] = rec
	return rec, true, nil
}

func (c *compiler) addRule(r datalog.Rule) {
	key := r.String()
	if c.rules[key] {
		return
	}
	c.rules[key] = true
	c.prog.Rules = append(c.prog.Rules, r)
}

// ---- atom enumeration over a bag ----

// bagAtom is a prototype ground atom over bag positions.
type bagAtom struct {
	pred string
	pos  []int // positions into the bag, 0..w
}

// allBagAtoms enumerates R(ā): every predicate applied to every
// combination of bag positions.
func (c *compiler) allBagAtoms() []bagAtom {
	w := c.opts.Width
	var out []bagAtom
	for _, p := range c.sig.Predicates() {
		idx := make([]int, p.Arity)
		var rec func(d int)
		rec = func(d int) {
			if d == p.Arity {
				out = append(out, bagAtom{pred: p.Name, pos: append([]int(nil), idx...)})
				return
			}
			for i := 0; i <= w; i++ {
				idx[d] = i
				rec(d + 1)
			}
		}
		rec(0)
	}
	return out
}

// holdsOn reports whether the prototype atom holds in st on the tuple bag.
func holdsOn(st *structure.Structure, bag []int, a bagAtom) bool {
	args := make([]int, len(a.pos))
	for i, p := range a.pos {
		args[i] = bag[p]
	}
	return st.Has(a.pred, args...)
}

// literalFor renders the prototype atom as a datalog literal over the
// variables X0..Xw.
func literalFor(a bagAtom, neg bool) datalog.Atom {
	args := make([]datalog.Term, len(a.pos))
	for i, p := range a.pos {
		args[i] = datalog.V(xVarName(p))
	}
	at := datalog.NewAtom(a.pred, args...)
	if neg {
		at = at.Not()
	}
	return at
}

func xVarName(i int) string { return fmt.Sprintf("X%d", i) }

func bagVars(w int) []datalog.Term {
	out := make([]datalog.Term, w+1)
	for i := range out {
		out[i] = datalog.V(xVarName(i))
	}
	return out
}

func bagAtomOf(node string, vars []datalog.Term) datalog.Atom {
	args := append([]datalog.Term{datalog.V(node)}, vars...)
	return datalog.NewAtom("bag", args...)
}

// edbLiterals renders the full positive/negative description of the bag's
// atoms as they hold in st.
func (c *compiler) edbLiterals(st *structure.Structure, bag []int) []datalog.Atom {
	var out []datalog.Atom
	for _, a := range c.allBagAtoms() {
		out = append(out, literalFor(a, !holdsOn(st, bag, a)))
	}
	return out
}

// ---- witness construction helpers ----

func (c *compiler) freshElemName() string {
	c.freshCounter++
	return fmt.Sprintf("w%d", c.freshCounter)
}

// baseWitnesses enumerates all structures on a single full bag: every
// subset of R(ā) as the EDB (the BASE CASE of both constructions).
func (c *compiler) baseWitnesses() ([]witness, error) {
	w := c.opts.Width
	atoms := c.allBagAtoms()
	if len(atoms) > 30 || 1<<uint(len(atoms)) > c.opts.MaxEDBSubsets {
		return nil, fmt.Errorf("core: |R(ā)| = %d atoms gives too many EDB subsets (limit %d)", len(atoms), c.opts.MaxEDBSubsets)
	}
	var out []witness
	for mask := 0; mask < 1<<uint(len(atoms)); mask++ {
		if mask&255 == 0 {
			if err := c.ctx.Err(); err != nil {
				return nil, stage.Wrap(stage.Compile, err)
			}
		}
		st := structure.New(c.sig)
		bag := make([]int, w+1)
		for i := range bag {
			bag[i] = st.AddElem(fmt.Sprintf("b%d", i))
		}
		ok := true
		for ai, a := range atoms {
			if mask&(1<<uint(ai)) == 0 {
				continue
			}
			args := make([]int, len(a.pos))
			for i, p := range a.pos {
				args[i] = bag[p]
			}
			if err := st.AddTuple(a.pred, args...); err != nil {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, witness{st: st, bag: bag})
		}
	}
	return out, nil
}

// replacementExtensions enumerates the structures obtained from wit by
// adding one fresh element at bag position 0 and any set of new atoms
// involving it (the element replacement INDUCTION STEP).
func (c *compiler) replacementExtensions(wit witness) ([]witness, error) {
	if wit.st.Size()+1 > c.opts.MaxWitnessDomain {
		return nil, fmt.Errorf("core: witness domain would exceed %d elements; raise MaxWitnessDomain or reduce k/w", c.opts.MaxWitnessDomain)
	}
	// Atoms involving position 0.
	var newAtoms []bagAtom
	for _, a := range c.allBagAtoms() {
		for _, p := range a.pos {
			if p == 0 {
				newAtoms = append(newAtoms, a)
				break
			}
		}
	}
	if 1<<uint(len(newAtoms)) > c.opts.MaxEDBSubsets {
		return nil, fmt.Errorf("core: %d replacement atoms gives too many subsets", len(newAtoms))
	}
	var out []witness
	for mask := 0; mask < 1<<uint(len(newAtoms)); mask++ {
		if mask&255 == 0 {
			if err := c.ctx.Err(); err != nil {
				return nil, stage.Wrap(stage.Compile, err)
			}
		}
		st := wit.st.Clone()
		fresh := st.AddElem(c.freshElemName())
		bag := append([]int{fresh}, wit.bag[1:]...)
		for ai, a := range newAtoms {
			if mask&(1<<uint(ai)) == 0 {
				continue
			}
			args := make([]int, len(a.pos))
			for i, p := range a.pos {
				args[i] = bag[p]
			}
			if err := st.AddTuple(a.pred, args...); err != nil {
				return nil, err
			}
		}
		out = append(out, witness{st: st, bag: bag})
	}
	return out, nil
}

// bagCompatible reports whether two witnesses agree on all atoms over
// their bags (the "EDBs are consistent" check of the construction).
func (c *compiler) bagCompatible(w1, w2 witness) bool {
	for _, a := range c.allBagAtoms() {
		if holdsOn(w1.st, w1.bag, a) != holdsOn(w2.st, w2.bag, a) {
			return false
		}
	}
	return true
}

// merge identifies the bag of w2 with the bag of w1 (the renaming δ) and
// unions the structures; all non-bag elements of w2 become fresh.
func (c *compiler) merge(w1, w2 witness) (witness, error) {
	extra := w2.st.Size() - len(w2.bag)
	if w1.st.Size()+extra > c.opts.MaxWitnessDomain {
		return witness{}, fmt.Errorf("core: merged witness would exceed %d elements; raise MaxWitnessDomain or reduce k/w", c.opts.MaxWitnessDomain)
	}
	st := w1.st.Clone()
	mapping := make(map[int]int, w2.st.Size())
	for i, e := range w2.bag {
		mapping[e] = w1.bag[i]
	}
	for e := 0; e < w2.st.Size(); e++ {
		if _, ok := mapping[e]; !ok {
			mapping[e] = st.AddElem(c.freshElemName())
		}
	}
	for _, p := range c.sig.Predicates() {
		for _, t := range w2.st.Tuples(p.Name) {
			args := make([]int, len(t))
			for i, e := range t {
				args[i] = mapping[e]
			}
			if err := st.AddTuple(p.Name, args...); err != nil {
				return witness{}, err
			}
		}
	}
	return witness{st: st, bag: append([]int(nil), w1.bag...)}, nil
}

// permutations enumerates all permutations of 0..w.
func permutations(w int) [][]int {
	idx := make([]int, w+1)
	for i := range idx {
		idx[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == len(idx) {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := k; i < len(idx); i++ {
			idx[k], idx[i] = idx[i], idx[k]
			rec(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	rec(0)
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/datalog"
	"repro/internal/decompose"
	"repro/internal/mso"
	"repro/internal/structure"
	"repro/internal/tree"
)

// Result reports an end-to-end evaluation of an MSO query over a
// structure via the compiled datalog program (Corollary 4.6).
type Result struct {
	// Selected holds the elements satisfying the unary query (nil in
	// decision mode).
	Selected *bitset.Set
	// Holds is the sentence's truth value in decision mode.
	Holds bool
	// Compiled is the program that was run.
	Compiled *Compiled
	// Width is the width of the tree decomposition used.
	Width int
	// TDNodes is the size of the normalized decomposition.
	TDNodes int
}

// Run evaluates the MSO query phi (free element variable xVar, or a
// sentence when opts.Decision is set) over the structure by the full
// pipeline of the paper: compute a tree decomposition, normalize it to
// tuple normal form (Def. 2.3), build the τ_td structure (Section 4),
// compile φ to a quasi-guarded monadic datalog program (Theorem 4.5), and
// evaluate it in time O(|P|·|A_td|) (Theorem 4.4).
func Run(st *structure.Structure, phi *mso.Formula, xVar string, opts Options) (*Result, error) {
	d, err := decompose.Structure(st, decompose.MinFill)
	if err != nil {
		return nil, err
	}
	return RunWithDecomposition(st, d, phi, xVar, opts)
}

// RunWithDecomposition is Run with a caller-provided (raw, valid) tree
// decomposition.
func RunWithDecomposition(st *structure.Structure, d *tree.Decomposition, phi *mso.Formula, xVar string, opts Options) (*Result, error) {
	if err := d.Validate(st); err != nil {
		return nil, fmt.Errorf("core: invalid decomposition: %w", err)
	}
	norm, err := tree.NormalizeTuple(d)
	if err != nil {
		return nil, err
	}
	w := norm.Width()
	if opts.Width != 0 && opts.Width != w {
		return nil, fmt.Errorf("core: decomposition width %d does not match requested width %d", w, opts.Width)
	}
	opts.Width = w
	td, _, err := tree.BuildTD(st, norm, w)
	if err != nil {
		return nil, err
	}
	compiled, err := Compile(st.Sig(), phi, xVar, opts)
	if err != nil {
		return nil, err
	}
	edb := datalog.FromStructure(td, "")
	out, err := datalog.EvalQuasiGuarded(compiled.Program, edb, datalog.TDFuncDeps(w))
	if err != nil {
		return nil, err
	}
	res := &Result{Compiled: compiled, Width: w, TDNodes: norm.Len()}
	if opts.Decision {
		res.Holds = out.Has(compiled.QueryPred)
		return res, nil
	}
	res.Selected = bitset.New(st.Size())
	for e := 0; e < st.Size(); e++ {
		if out.Has(compiled.QueryPred, st.Name(e)) {
			res.Selected.Add(e)
		}
	}
	return res, nil
}

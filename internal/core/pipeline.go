package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/datalog"
	"repro/internal/decompose"
	"repro/internal/faultinject"
	"repro/internal/mso"
	"repro/internal/stage"
	"repro/internal/structure"
	"repro/internal/tree"
)

// Result reports an end-to-end evaluation of an MSO query over a
// structure via the compiled datalog program (Corollary 4.6).
type Result struct {
	// Selected holds the elements satisfying the unary query (nil in
	// decision mode).
	Selected *bitset.Set
	// Holds is the sentence's truth value in decision mode.
	Holds bool
	// Compiled is the program that was run.
	Compiled *Compiled
	// Width is the width of the tree decomposition used.
	Width int
	// TDNodes is the size of the normalized decomposition.
	TDNodes int
	// Trace records per-stage wall time and output sizes (and, on the
	// session path, which artifacts were served from cache).
	Trace *stage.Trace
}

// RequestWidth returns opts with the width assertion set: Run fails if
// the decomposition's normalized width differs from w. Zero is a
// legitimate width (trees of atoms), which is why the assertion lives
// in RequestedWidth rather than overloading Options.Width.
func (o Options) RequestWidth(w int) Options {
	o.RequestedWidth = &w
	return o
}

// Run evaluates the MSO query phi (free element variable xVar, or a
// sentence when opts.Decision is set) over the structure by the full
// pipeline of the paper: compute a tree decomposition, normalize it to
// tuple normal form (Def. 2.3), build the τ_td structure (Section 4),
// compile φ to a quasi-guarded monadic datalog program (Theorem 4.5), and
// evaluate it in time O(|P|·|A_td|) (Theorem 4.4). It dispatches on
// opts.Backend — "game" replaces the compile/evaluate stages with lazy
// model-checking-game exploration — so call sites select a strategy
// without changing shape.
func Run(st *structure.Structure, phi *mso.Formula, xVar string, opts Options) (*Result, error) {
	return RunCtx(context.Background(), st, phi, xVar, opts)
}

// RunCtx is Run with cancellation support: every stage polls ctx and a
// context error comes back wrapped in a *stage.Error naming the stage
// that observed it. The Result carries a stage.Trace of the run.
//
// Resource budgets attached to ctx via stage.WithBudget (or
// stage.ApplyDeadline) are enforced at the pipeline's blowup points; a
// violation returns a stage-tagged error wrapping
// stage.ErrBudgetExceeded. Decomposition descends the degradation
// ladder (see decompose.GraphLadderCtx); the rung that produced the
// decomposition is recorded as the Decompose stat's Detail. A panic in
// any stage is recovered into a stage-tagged *stage.PanicError rather
// than crashing the caller.
func RunCtx(ctx context.Context, st *structure.Structure, phi *mso.Formula, xVar string, opts Options) (*Result, error) {
	b, err := backendFor(opts)
	if err != nil {
		return nil, err
	}
	return b.RunCtx(ctx, st, phi, xVar, opts)
}

// runAutomatonCtx is the automaton backend's RunCtx: decompose via the
// degradation ladder, then run the compiled-datalog pipeline.
func runAutomatonCtx(ctx context.Context, st *structure.Structure, phi *mso.Formula, xVar string, opts Options) (res *Result, err error) {
	defer stage.RecoverTo(stage.Decompose, &err)
	trace := &stage.Trace{}
	start := time.Now()
	if err := faultinject.Check("core.decompose"); err != nil {
		return nil, stage.Wrap(stage.Decompose, err)
	}
	d, rung, err := decompose.StructureLadderCtx(ctx, st)
	if err != nil {
		return nil, stage.Wrap(stage.Decompose, err)
	}
	trace.RecordDetail(stage.Decompose, time.Since(start), d.Len(), false, rung)
	return runWithDecomposition(ctx, st, d, phi, xVar, opts, trace)
}

// RunWithDecomposition is Run with a caller-provided (raw, valid) tree
// decomposition.
func RunWithDecomposition(st *structure.Structure, d *tree.Decomposition, phi *mso.Formula, xVar string, opts Options) (*Result, error) {
	return RunWithDecompositionCtx(context.Background(), st, d, phi, xVar, opts)
}

// RunWithDecompositionCtx is RunWithDecomposition with cancellation
// support; see RunCtx. Like RunCtx it dispatches on opts.Backend.
func RunWithDecompositionCtx(ctx context.Context, st *structure.Structure, d *tree.Decomposition, phi *mso.Formula, xVar string, opts Options) (*Result, error) {
	b, err := backendFor(opts)
	if err != nil {
		return nil, err
	}
	return b.RunWithDecompositionCtx(ctx, st, d, phi, xVar, opts)
}

func runWithDecomposition(ctx context.Context, st *structure.Structure, d *tree.Decomposition, phi *mso.Formula, xVar string, opts Options, trace *stage.Trace) (res *Result, err error) {
	// A single deferred recover covers every stage below; cur tracks the
	// stage in flight so a panic surfaces tagged with the stage it
	// escaped from.
	cur := stage.NormalizeTuple
	defer stage.RecoverAt(&cur, &err)
	if err := d.Validate(st); err != nil {
		return nil, fmt.Errorf("core: invalid decomposition: %w", err)
	}
	if err := faultinject.Check("core.normalize-tuple"); err != nil {
		return nil, stage.Wrap(stage.NormalizeTuple, err)
	}
	start := time.Now()
	norm, err := tree.NormalizeTupleCtx(ctx, d)
	if err != nil {
		return nil, stage.Wrap(stage.NormalizeTuple, err)
	}
	trace.Record(stage.NormalizeTuple, time.Since(start), norm.Len(), false)
	w := norm.Width()
	if opts.RequestedWidth != nil && *opts.RequestedWidth != w {
		return nil, fmt.Errorf("core: decomposition width %d does not match requested width %d", w, *opts.RequestedWidth)
	}
	opts.Width = w
	cur = stage.BuildTD
	if err := faultinject.Check("core.build-td"); err != nil {
		return nil, stage.Wrap(stage.BuildTD, err)
	}
	start = time.Now()
	td, _, err := tree.BuildTDCtx(ctx, st, norm, w)
	if err != nil {
		return nil, stage.Wrap(stage.BuildTD, err)
	}
	trace.Record(stage.BuildTD, time.Since(start), td.Size(), false)
	cur = stage.Compile
	if err := faultinject.Check("core.compile"); err != nil {
		return nil, stage.Wrap(stage.Compile, err)
	}
	start = time.Now()
	compiled, err := compileAutomatonCtx(ctx, st.Sig(), phi, xVar, opts)
	if err != nil {
		return nil, stage.Wrap(stage.Compile, err)
	}
	trace.Record(stage.Compile, time.Since(start), len(compiled.Program.Rules), false)
	cur = stage.Eval
	if err := faultinject.Check("core.eval"); err != nil {
		return nil, stage.Wrap(stage.Eval, err)
	}
	start = time.Now()
	edb := datalog.FromStructure(td, "")
	out, err := datalog.EvalQuasiGuardedCtx(ctx, compiled.Program, edb, datalog.TDFuncDeps(w))
	if err != nil {
		return nil, stage.Wrap(stage.Eval, err)
	}
	trace.Record(stage.Eval, time.Since(start), out.NumFacts(), false)
	return finishResult(st, compiled, opts, out, norm.Len(), w, trace)
}

// finishResult reads the goal predicate off the evaluated database and
// assembles the Result; shared by the cold path above and the session
// cached path.
func finishResult(st *structure.Structure, compiled *Compiled, opts Options, out *datalog.DB, tdNodes, w int, trace *stage.Trace) (*Result, error) {
	res := &Result{Compiled: compiled, Width: w, TDNodes: tdNodes, Trace: trace}
	if opts.Decision {
		res.Holds = out.Has(compiled.QueryPred)
		return res, nil
	}
	res.Selected = bitset.New(st.Size())
	for e := 0; e < st.Size(); e++ {
		if out.Has(compiled.QueryPred, st.Name(e)) {
			res.Selected.Add(e)
		}
	}
	return res, nil
}

// FinishResult is finishResult for the session package, which drives the
// stages itself to interpose its artifact caches.
func FinishResult(st *structure.Structure, compiled *Compiled, opts Options, out *datalog.DB, tdNodes, w int, trace *stage.Trace) (*Result, error) {
	return finishResult(st, compiled, opts, out, tdNodes, w, trace)
}

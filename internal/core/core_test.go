package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datalog"
	"repro/internal/decompose"
	"repro/internal/mso"
	"repro/internal/structure"
)

var sigColor = structure.MustSignature(structure.Predicate{Name: "c", Arity: 1})

// randColored returns a random path-shaped structure over {c/1}: elements
// in a chain (via the decomposition, not the signature) with random color
// marks. Treewidth ≤ 1 trivially (no binary relations).
func randColored(rng *rand.Rand, n int) *structure.Structure {
	st := structure.New(sigColor)
	for i := 0; i < n; i++ {
		id := st.AddElem("v" + itoa(i))
		if rng.Intn(2) == 0 {
			st.MustAddTuple("c", id)
		}
	}
	return st
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var d []byte
	for i > 0 {
		d = append([]byte{byte('0' + i%10)}, d...)
		i /= 10
	}
	return string(d)
}

func TestCompileRankZeroQuery(t *testing.T) {
	// φ(x) = c(x): quantifier depth 0, the smallest possible compilation.
	phi := mso.MustParse("c(x)")
	compiled, err := Compile(sigColor, phi, "x", Options{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !compiled.Program.IsMonadic() {
		t.Fatal("compiled program is not monadic")
	}
	if compiled.UpTypes == 0 || compiled.DownTypes == 0 {
		t.Fatal("no types constructed")
	}
	// The program must be quasi-guarded over the τ_td FDs (Theorem 4.5).
	if _, err := datalog.QuasiGuards(compiled.Program, datalog.TDFuncDeps(1)); err != nil {
		t.Fatalf("compiled program not quasi-guarded: %v", err)
	}
}

func TestRunRankZeroQueryMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	phi := mso.MustParse("c(x)")
	for trial := 0; trial < 5; trial++ {
		st := randColored(rng, rng.Intn(5)+2)
		res, err := Run(st, phi, "x", Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.Query(st, phi, "x", nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Selected.Equal(want) {
			t.Fatalf("selected %v, want %v\n(structure:\n%s)", res.Selected.Elems(), want.Elems(), st)
		}
	}
}

func TestRunDecisionRankOne(t *testing.T) {
	// Sentence: every element is colored.
	phi := mso.MustParse("forall x c(x)")
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		st := randColored(rng, rng.Intn(4)+2)
		res, err := Run(st, phi, "", Options{Decision: true})
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.Sentence(st, phi, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Holds != want {
			t.Fatalf("decision = %v, want %v\n(structure:\n%s)", res.Holds, want, st)
		}
	}
}

func TestRunUnaryRankOne(t *testing.T) {
	// φ(x) = c(x) ∧ ∃y ¬c(y): x is colored but not everything is.
	phi := mso.MustParse("c(x) & exists y ~c(y)")
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		st := randColored(rng, rng.Intn(5)+2)
		res, err := Run(st, phi, "x", Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.Query(st, phi, "x", nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Selected.Equal(want) {
			t.Fatalf("selected %v, want %v\n(structure:\n%s)", res.Selected.Elems(), want.Elems(), st)
		}
	}
}

func TestBinarySignatureBlowUp(t *testing.T) {
	// Over a binary signature the rank-1 type space is already
	// astronomically large — the "state explosion" the paper cites as the
	// reason the generic construction (like the MSO-to-FTA route) is
	// impractical, motivating the hand-crafted Section 5 programs. The
	// compiler must hit its type limit rather than loop forever.
	sigE := structure.MustSignature(structure.Predicate{Name: "e", Arity: 2})
	phi := mso.MustParse("exists y e(x, y)")
	_, err := Compile(sigE, phi, "x", Options{Width: 1, MaxTypes: 300})
	if err == nil {
		t.Fatal("expected the type limit to be exceeded")
	}
}

func TestCompileRejectsBadInputs(t *testing.T) {
	phi := mso.MustParse("c(x)")
	// Wrong free variable name.
	if _, err := Compile(sigColor, phi, "y", Options{Width: 1}); err == nil {
		t.Fatal("wrong free variable accepted")
	}
	// Free set variable.
	if _, err := Compile(sigColor, mso.MustParse("x in Y"), "x", Options{Width: 1}); err == nil {
		t.Fatal("free set variable accepted")
	}
	// Decision mode with a free variable.
	if _, err := Compile(sigColor, phi, "x", Options{Width: 1, Decision: true}); err == nil {
		t.Fatal("decision mode accepted a non-sentence")
	}
	// Explicit depth below the formula's depth.
	deep := mso.MustParse("exists y c(y)")
	if _, err := Compile(sigColor, mso.And(deep, mso.Atom("c", "x")), "x",
		Options{Width: 1, QuantifierDepth: -1}); err == nil {
		t.Fatal("insufficient quantifier depth accepted")
	}
	// Resource limits.
	if _, err := Compile(sigColor, phi, "x", Options{Width: 1, MaxTypes: 1}); err == nil {
		t.Fatal("type limit not enforced")
	}
}

// Property: the compiled rank-0 query pipeline agrees with direct MSO
// evaluation on random colored structures with a random decomposition
// produced by the heuristics.
func TestQuickRankZeroAgreement(t *testing.T) {
	phi := mso.MustParse("c(x)")
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randColored(rng, rng.Intn(6)+2)
		d, err := decompose.Structure(st, decompose.MinFill)
		if err != nil {
			return false
		}
		// Force width 1 by gluing pairs of elements into shared bags when
		// the heuristic returns width-0 bags; simplest is to re-run the
		// full pipeline, which normalizes to the decomposition's width.
		res, err := RunWithDecomposition(st, d, phi, "x", Options{})
		if err != nil {
			// Width-0 decompositions (no relations of arity ≥ 2) compile
			// with a different bag arity than the cached program; that is
			// fine — only agreement matters here.
			return false
		}
		want, err := mso.Query(st, phi, "x", nil)
		if err != nil {
			return false
		}
		return res.Selected.Equal(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(53))}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"strings"
	"testing"

	"repro/internal/decompose"
	"repro/internal/mso"
	"repro/internal/structure"
)

// TestRunWithDecompositionWidthZero is the regression test for the old
// `opts.Width != 0` check, which conflated "no width requested" with a
// legitimate requested width of 0 (structures whose primal graph is
// edgeless decompose into single-element bags).
func TestRunWithDecompositionWidthZero(t *testing.T) {
	st := structure.New(sigColor)
	for i := 0; i < 4; i++ {
		id := st.AddElem("v" + itoa(i))
		if i%2 == 0 {
			st.MustAddTuple("c", id)
		}
	}
	d, err := decompose.Structure(st, decompose.MinFill)
	if err != nil {
		t.Fatal(err)
	}
	phi := mso.MustParse("c(x)")

	// Asserting the true width of 0 must succeed.
	res, err := RunWithDecomposition(st, d, phi, "x", Options{}.RequestWidth(0))
	if err != nil {
		t.Fatalf("RequestWidth(0): %v", err)
	}
	if res.Width != 0 {
		t.Fatalf("width = %d, want 0", res.Width)
	}
	want, err := mso.Query(st, phi, "x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Selected.Equal(want) {
		t.Fatalf("selected %v, want %v", res.Selected.Elems(), want.Elems())
	}

	// No assertion at all must succeed (nil pointer = unset).
	if _, err := RunWithDecomposition(st, d, phi, "x", Options{}); err != nil {
		t.Fatalf("no width assertion: %v", err)
	}

	// A wrong assertion must fail with a width mismatch.
	_, err = RunWithDecomposition(st, d, phi, "x", Options{}.RequestWidth(2))
	if err == nil {
		t.Fatal("RequestWidth(2) on a width-0 decomposition succeeded")
	}
	if !strings.Contains(err.Error(), "width") {
		t.Fatalf("error does not mention width: %v", err)
	}
}

package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mso"
	"repro/internal/stage"
	"repro/internal/structure"
	"repro/internal/tree"
)

// DefaultBackend is the backend used when Options.Backend is empty: the
// paper's Theorem 4.4/4.5 automaton pipeline.
const DefaultBackend = "automaton"

// Backend is the evaluation seam: one strategy for answering an MSO
// query over a bounded-treewidth structure. Two implementations exist —
// "automaton" (this package: k-type enumeration compiled to monadic
// datalog, Theorems 4.4/4.5) and "game" (backend/game: lazy
// model-checking-game exploration after Kneis–Langer–Rossmanith, which
// never materializes the type space and so escapes the MaxStates wall).
//
// All methods honor context cancellation, meter work against the
// stage.Budget attached to ctx, and report stage-tagged errors; RunCtx
// and RunWithDecompositionCtx populate a stage.Trace on the Result.
type Backend interface {
	// Name is the stable identifier used in cache keys, the -backend
	// flags and the X-Backend header.
	Name() string
	// CompileCtx materializes the backend's reusable artifact for
	// (sig, phi, xVar, opts). Backends that evaluate lazily and have no
	// standalone compiled form (the game backend) return an error.
	CompileCtx(ctx context.Context, sig *structure.Signature, phi *mso.Formula, xVar string, opts Options) (*Compiled, error)
	// RunCtx evaluates phi over st end to end, computing a tree
	// decomposition internally.
	RunCtx(ctx context.Context, st *structure.Structure, phi *mso.Formula, xVar string, opts Options) (*Result, error)
	// RunWithDecompositionCtx is RunCtx with a caller-provided (raw,
	// valid) tree decomposition.
	RunWithDecompositionCtx(ctx context.Context, st *structure.Structure, d *tree.Decomposition, phi *mso.Formula, xVar string, opts Options) (*Result, error)
}

// NiceBackend is implemented by backends that can evaluate directly on
// an already-normalized nice decomposition (tree.NormalizeNice). The
// session layer uses it to feed its cached nice form to the backend,
// skipping re-decomposition on the warm path.
type NiceBackend interface {
	Backend
	EvalNiceCtx(ctx context.Context, st *structure.Structure, nice *tree.Decomposition, phi *mso.Formula, xVar string, opts Options, trace *stage.Trace) (*Result, error)
}

var (
	backendMu sync.RWMutex
	backends  = map[string]Backend{}
)

// RegisterBackend makes b selectable by name. Backends self-register
// from init (the automaton backend here, the game backend from
// backend/game); a duplicate name panics, as that is a wiring bug.
func RegisterBackend(b Backend) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[b.Name()]; dup {
		panic(fmt.Sprintf("core: duplicate backend %q", b.Name()))
	}
	backends[b.Name()] = b
}

// BackendByName resolves name ("" means DefaultBackend). An unknown
// name is an error listing the registered backends, so flag and header
// validation can surface the menu.
func BackendByName(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	backendMu.RLock()
	defer backendMu.RUnlock()
	if b, ok := backends[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("core: unknown backend %q (have %s)", name, strings.Join(backendNamesLocked(), ", "))
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return backendNamesLocked()
}

func backendNamesLocked() []string {
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BackendName is Options.Backend normalized: "" reads as
// DefaultBackend. Cache keys and stats maps use it so the default and
// its explicit spelling share entries.
func (o Options) BackendName() string {
	if o.Backend == "" {
		return DefaultBackend
	}
	return o.Backend
}

// ---- the automaton backend (this package's pipeline) ----

// automatonBackend adapts the package-level pipeline to the Backend
// seam. Its methods call the unexported run/compile entry points
// directly — not the exported dispatchers — so dispatch cannot recurse.
type automatonBackend struct{}

func init() { RegisterBackend(automatonBackend{}) }

func (automatonBackend) Name() string { return DefaultBackend }

func (automatonBackend) CompileCtx(ctx context.Context, sig *structure.Signature, phi *mso.Formula, xVar string, opts Options) (*Compiled, error) {
	return compileAutomatonCtx(ctx, sig, phi, xVar, opts)
}

func (automatonBackend) RunCtx(ctx context.Context, st *structure.Structure, phi *mso.Formula, xVar string, opts Options) (*Result, error) {
	return runAutomatonCtx(ctx, st, phi, xVar, opts)
}

func (automatonBackend) RunWithDecompositionCtx(ctx context.Context, st *structure.Structure, d *tree.Decomposition, phi *mso.Formula, xVar string, opts Options) (*Result, error) {
	return runWithDecomposition(ctx, st, d, phi, xVar, opts, &stage.Trace{})
}

// ---- dispatching wrappers (the public entry points) ----

// backendFor resolves opts.Backend for the dispatchers below.
func backendFor(opts Options) (Backend, error) {
	return BackendByName(opts.Backend)
}

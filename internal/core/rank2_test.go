package core

import (
	"math/rand"
	"testing"

	"repro/internal/mso"
)

// TestRunRankTwo pushes the generic compiler to quantifier depth 2 (two
// nested quantifier alternations, the deepest the faithful construction
// handles in reasonable time over a unary signature) and cross-checks the
// full pipeline against direct MSO evaluation.
func TestRunRankTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("rank-2 type construction takes seconds")
	}
	phi := mso.MustParse("exists y forall z (c(y) & (c(x) -> c(z)))")
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 2; trial++ {
		st := randColored(rng, rng.Intn(3)+2)
		res, err := Run(st, phi, "x", Options{MaxTypes: 20000})
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.Query(st, phi, "x", nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Selected.Equal(want) {
			t.Fatalf("selected %v, want %v\n%s", res.Selected.Elems(), want.Elems(), st)
		}
	}
}

package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/mso"
	"repro/internal/stage"
)

// TestBudgetGroundAtomsExceeded caps ground atoms below what the
// evaluation needs: the pipeline must stop with a stage-tagged budget
// error whose tally sits at the limit — the grounder stops interning the
// moment the cap is crossed, it does not materialize the blowup first.
func TestBudgetGroundAtomsExceeded(t *testing.T) {
	st := randColored(rand.New(rand.NewSource(51)), 12)
	phi := mso.MustParse("c(x) | ~c(x)")

	b := &stage.Budget{MaxGroundAtoms: 3}
	ctx := stage.WithBudget(context.Background(), b)
	_, err := RunCtx(ctx, st, phi, "x", Options{})
	if !errors.Is(err, stage.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	if got := stage.Of(err); got != stage.Eval {
		t.Fatalf("tagged stage %q, want %q", got, stage.Eval)
	}
	var be *stage.BudgetError
	if !errors.As(err, &be) || be.Dimension != "ground-atoms" {
		t.Fatalf("err = %v, want ground-atoms BudgetError", err)
	}
	// Bounded memory: the violation is reported at limit+1, and the tally
	// never ran past it.
	if be.Used != be.Limit+1 {
		t.Fatalf("violation at %d atoms against limit %d; grounder overshot", be.Used, be.Limit)
	}
	atoms, _, _ := b.Used()
	if atoms > be.Limit+1 {
		t.Fatalf("tally kept growing after violation: %d atoms", atoms)
	}
}

// TestBudgetStatesExceeded caps interned k-types below what compilation
// needs; the violation must surface from the compile stage.
func TestBudgetStatesExceeded(t *testing.T) {
	st := randColored(rand.New(rand.NewSource(53)), 8)
	phi := mso.MustParse("exists y (c(y) & (c(x) | ~c(y)))")

	ctx := stage.WithBudget(context.Background(), &stage.Budget{MaxStates: 2})
	_, err := RunCtx(ctx, st, phi, "x", Options{})
	if !errors.Is(err, stage.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	if got := stage.Of(err); got != stage.Compile {
		t.Fatalf("tagged stage %q, want %q", got, stage.Compile)
	}
	var be *stage.BudgetError
	if !errors.As(err, &be) || be.Dimension != "states" {
		t.Fatalf("err = %v, want states BudgetError", err)
	}
}

// TestBudgetSufficientIsInvisible pins that a budget large enough for
// the run changes nothing: same answer, and the tally reflects real
// consumption.
func TestBudgetSufficientIsInvisible(t *testing.T) {
	st := randColored(rand.New(rand.NewSource(59)), 10)
	phi := mso.MustParse("c(x)")

	plain, err := Run(st, phi, "x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := stage.Uniform(1 << 20)
	res, err := RunCtx(stage.WithBudget(context.Background(), b), st, phi, "x", Options{})
	if err != nil {
		t.Fatalf("run within budget: %v", err)
	}
	if !res.Selected.Equal(plain.Selected) {
		t.Fatalf("budgeted run diverged: %v vs %v", res.Selected.Elems(), plain.Selected.Elems())
	}
	atoms, states, _ := b.Used()
	if atoms == 0 || states == 0 {
		t.Fatalf("budget not metered: atoms %d, states %d", atoms, states)
	}
}

// TestBudgetDeadline attaches a budget whose deadline has already
// passed; ApplyDeadline must produce a context that fails the run with a
// stage-tagged deadline error.
func TestBudgetDeadline(t *testing.T) {
	st := randColored(rand.New(rand.NewSource(61)), 8)
	phi := mso.MustParse("c(x)")

	b := &stage.Budget{Deadline: time.Now().Add(-time.Second)}
	ctx, cancel := stage.ApplyDeadline(context.Background(), b)
	defer cancel()
	_, err := RunCtx(ctx, st, phi, "x", Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if got := stage.Of(err); got == "" {
		t.Fatalf("deadline error not stage-tagged: %v", err)
	}
}

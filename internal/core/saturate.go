package core

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/mso"
	"repro/internal/stage"
)

// saturate runs the BASE CASE and INDUCTION STEPs of the Θ↑ (up=true) or
// Θ↓ (up=false) construction of Theorem 4.5 to fixpoint, registering
// types and emitting their datalog rules.
func (c *compiler) saturate(up bool) error {
	w := c.opts.Width

	// BASE CASE: all structures on a single full bag.
	base, err := c.baseWitnesses()
	if err != nil {
		return err
	}
	marker := "root"
	if up {
		marker = "leaf"
	}
	for _, wit := range base {
		rec, _, err := c.registerType(up, wit)
		if err != nil {
			return err
		}
		body := []datalog.Atom{
			bagAtomOf("V", bagVars(w)),
			datalog.NewAtom(marker, datalog.V("V")),
		}
		body = append(body, c.edbLiterals(wit.st, wit.bag)...)
		c.addRule(datalog.Rule{Head: datalog.NewAtom(rec.name, datalog.V("V")), Body: body})
	}

	// INDUCTION: worklist over registered types. New types appended by
	// registerType are picked up automatically.
	list := func() []*typeRec {
		if up {
			return c.up
		}
		return c.down
	}
	for processed := 0; processed < len(list()); processed++ {
		if err := c.ctx.Err(); err != nil {
			return stage.Wrap(stage.Compile, err)
		}
		rec := list()[processed]
		if err := c.extendPermutations(up, rec); err != nil {
			return err
		}
		if err := c.extendReplacements(up, rec); err != nil {
			return err
		}
		if up {
			// Pair with every already-processed type and itself, in both
			// orders; later types pair with rec when they are processed.
			for other := 0; other <= processed; other++ {
				o := c.up[other]
				if err := c.extendBranchUp(rec, o); err != nil {
					return err
				}
				if o != rec {
					if err := c.extendBranchUp(o, rec); err != nil {
						return err
					}
				}
			}
		} else {
			// Θ↓ branch combines a Θ↓ type with a Θ↑ type (both orders of
			// the children are emitted inside).
			for _, u := range c.up {
				if err := c.extendBranchDown(rec, u); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// extendPermutations applies every permutation node extension (case (a)).
func (c *compiler) extendPermutations(up bool, rec *typeRec) error {
	w := c.opts.Width
	for _, pi := range permutations(w) {
		newBag := make([]int, w+1)
		for i := range newBag {
			newBag[i] = rec.wit.bag[pi[i]]
		}
		nrec, _, err := c.registerType(up, witness{st: rec.wit.st, bag: newBag})
		if err != nil {
			return err
		}
		permVars := make([]datalog.Term, w+1)
		for i := range permVars {
			permVars[i] = datalog.V(xVarName(pi[i]))
		}
		var edge, kind datalog.Atom
		if up {
			edge = datalog.NewAtom("child1", datalog.V("V1"), datalog.V("V"))
			kind = datalog.NewAtom("single", datalog.V("V"))
		} else {
			edge = datalog.NewAtom("child1", datalog.V("V"), datalog.V("V1"))
			kind = datalog.NewAtom("single", datalog.V("V1"))
		}
		c.addRule(datalog.Rule{
			Head: datalog.NewAtom(nrec.name, datalog.V("V")),
			Body: []datalog.Atom{
				bagAtomOf("V", permVars),
				edge,
				kind,
				datalog.NewAtom(rec.name, datalog.V("V1")),
				bagAtomOf("V1", bagVars(w)),
			},
		})
	}
	return nil
}

// extendReplacements applies every element replacement extension (case (b)).
func (c *compiler) extendReplacements(up bool, rec *typeRec) error {
	w := c.opts.Width
	exts, err := c.replacementExtensions(rec.wit)
	if err != nil {
		return err
	}
	for _, ext := range exts {
		nrec, _, err := c.registerType(up, ext)
		if err != nil {
			return err
		}
		childBag := append([]datalog.Term{datalog.V("Y0")}, bagVars(w)[1:]...)
		var edge, kind datalog.Atom
		if up {
			edge = datalog.NewAtom("child1", datalog.V("V1"), datalog.V("V"))
			kind = datalog.NewAtom("single", datalog.V("V"))
		} else {
			edge = datalog.NewAtom("child1", datalog.V("V"), datalog.V("V1"))
			kind = datalog.NewAtom("single", datalog.V("V1"))
		}
		body := []datalog.Atom{
			bagAtomOf("V", bagVars(w)),
			edge,
			kind,
			datalog.NewAtom(rec.name, datalog.V("V1")),
			bagAtomOf("V1", childBag),
			// The replaced element is a different element (Def. 2.3);
			// without this guard the rule would also fire on
			// identity-permutation edges and derive the type of a
			// structure with a spurious extra element.
			datalog.NewAtom("neq", datalog.V(xVarName(0)), datalog.V("Y0")),
		}
		body = append(body, c.edbLiterals(ext.st, ext.bag)...)
		c.addRule(datalog.Rule{Head: datalog.NewAtom(nrec.name, datalog.V("V")), Body: body})
	}
	return nil
}

// extendBranchUp applies the branch node extension of Θ↑ (case (c)) for
// the ordered pair (first child ϑ1, second child ϑ2).
func (c *compiler) extendBranchUp(t1, t2 *typeRec) error {
	if !c.bagCompatible(t1.wit, t2.wit) {
		return nil
	}
	merged, err := c.merge(t1.wit, t2.wit)
	if err != nil {
		return err
	}
	nrec, _, err := c.registerType(true, merged)
	if err != nil {
		return err
	}
	w := c.opts.Width
	c.addRule(datalog.Rule{
		Head: datalog.NewAtom(nrec.name, datalog.V("V")),
		Body: []datalog.Atom{
			bagAtomOf("V", bagVars(w)),
			datalog.NewAtom("child1", datalog.V("V1"), datalog.V("V")),
			datalog.NewAtom(t1.name, datalog.V("V1")),
			datalog.NewAtom("child2", datalog.V("V2"), datalog.V("V")),
			datalog.NewAtom(t2.name, datalog.V("V2")),
			bagAtomOf("V1", bagVars(w)),
			bagAtomOf("V2", bagVars(w)),
		},
	})
	return nil
}

// extendBranchDown applies the branch node extension of Θ↓: a new leaf s1
// attached beside the subtree of an Θ↑ type, below an Θ↓ node (case (c)
// of the top-down construction; both child orders are emitted).
func (c *compiler) extendBranchDown(d *typeRec, u *typeRec) error {
	if !c.bagCompatible(d.wit, u.wit) {
		return nil
	}
	merged, err := c.merge(d.wit, u.wit)
	if err != nil {
		return err
	}
	nrec, _, err := c.registerType(false, merged)
	if err != nil {
		return err
	}
	w := c.opts.Width
	// s1 as first child, the Θ↑ subtree as second child.
	c.addRule(datalog.Rule{
		Head: datalog.NewAtom(nrec.name, datalog.V("V1")),
		Body: []datalog.Atom{
			bagAtomOf("V1", bagVars(w)),
			datalog.NewAtom("child1", datalog.V("V1"), datalog.V("V")),
			datalog.NewAtom("child2", datalog.V("V2"), datalog.V("V")),
			datalog.NewAtom(d.name, datalog.V("V")),
			datalog.NewAtom(u.name, datalog.V("V2")),
			bagAtomOf("V", bagVars(w)),
			bagAtomOf("V2", bagVars(w)),
		},
	})
	// s1 as second child.
	c.addRule(datalog.Rule{
		Head: datalog.NewAtom(nrec.name, datalog.V("V2")),
		Body: []datalog.Atom{
			bagAtomOf("V2", bagVars(w)),
			datalog.NewAtom("child1", datalog.V("V1"), datalog.V("V")),
			datalog.NewAtom("child2", datalog.V("V2"), datalog.V("V")),
			datalog.NewAtom(d.name, datalog.V("V")),
			datalog.NewAtom(u.name, datalog.V("V1")),
			bagAtomOf("V", bagVars(w)),
			bagAtomOf("V1", bagVars(w)),
		},
	})
	return nil
}

// emitDecision adds the goal rules of the 0-ary variant: φ ← root(v), ϑ(v)
// for every Θ↑ type whose witness satisfies the sentence.
func (c *compiler) emitDecision() error {
	var budget *mso.Budget
	if c.opts.EvalBudget > 0 {
		budget = &mso.Budget{MaxSteps: c.opts.EvalBudget}
	}
	for _, rec := range c.up {
		ok, err := mso.SentenceCtx(c.ctx, rec.wit.st, c.phi, budget)
		if err != nil {
			if se := stage.Of(err); se != "" {
				return err
			}
			return fmt.Errorf("core: evaluating φ on witness: %w", err)
		}
		if ok {
			c.addRule(datalog.Rule{
				Head: datalog.NewAtom("phi"),
				Body: []datalog.Atom{
					datalog.NewAtom("root", datalog.V("V")),
					datalog.NewAtom(rec.name, datalog.V("V")),
				},
			})
		}
	}
	return nil
}

// emitSelection adds the element-selection rules (part 3 of the
// construction): for compatible pairs ϑ1 ∈ Θ↑, ϑ2 ∈ Θ↓ whose merged
// witness satisfies φ(a_i), the rule φ(x_i) ← ϑ1(v), ϑ2(v), bag(v, x̄).
func (c *compiler) emitSelection() error {
	w := c.opts.Width
	var budget *mso.Budget
	if c.opts.EvalBudget > 0 {
		budget = &mso.Budget{MaxSteps: c.opts.EvalBudget}
	}
	for _, u := range c.up {
		if err := c.ctx.Err(); err != nil {
			return stage.Wrap(stage.Compile, err)
		}
		for _, d := range c.down {
			if !c.bagCompatible(u.wit, d.wit) {
				continue
			}
			merged, err := c.merge(u.wit, d.wit)
			if err != nil {
				return err
			}
			for i := 0; i <= w; i++ {
				ok, err := mso.EvalCtx(c.ctx, merged.st, c.phi,
					mso.Interp{Elem: map[string]int{c.xVar: merged.bag[i]}}, budget)
				if err != nil {
					if se := stage.Of(err); se != "" {
						return err
					}
					return fmt.Errorf("core: evaluating φ on merged witness: %w", err)
				}
				if ok {
					c.addRule(datalog.Rule{
						Head: datalog.NewAtom("phi", datalog.V(xVarName(i))),
						Body: []datalog.Atom{
							datalog.NewAtom(u.name, datalog.V("V")),
							datalog.NewAtom(d.name, datalog.V("V")),
							bagAtomOf("V", bagVars(w)),
						},
					})
				}
			}
		}
	}
	return nil
}

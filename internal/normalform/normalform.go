// Package normalform implements relational schema normal-form testing —
// the application motivating PRIMALITY in the paper's introduction: "An
// efficient algorithm for testing the primality of an attribute is
// crucial in database design since it is an indispensable prerequisite
// for testing if a schema is in third normal form."
//
// A schema is in Boyce–Codd normal form (BCNF) iff for every nontrivial
// FD X → A, X is a superkey; it is in third normal form (3NF) iff for
// every nontrivial FD X → A, X is a superkey or A is prime. The prime
// test uses the paper's linear-time bounded-treewidth enumeration
// (internal/primality) — making 3NF checking fixed-parameter tractable in
// the treewidth, exactly the paper's pitch.
package normalform

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/primality"
	"repro/internal/schema"
)

// Violation reports one FD breaking a normal form.
type Violation struct {
	// FD is the index of the violating dependency.
	FD int
	// Name is the dependency's name.
	Name string
	// Reason describes the failure.
	Reason string
}

// Report is the outcome of a normal-form check.
type Report struct {
	OK         bool
	Violations []Violation
}

// Check3NF tests third normal form, computing prime attributes with the
// fixed-parameter tractable enumeration of Section 5.3.
func Check3NF(s *schema.Schema) (*Report, error) {
	primes, err := primality.Primes(s)
	if err != nil {
		return nil, err
	}
	return check3NFWith(s, primes), nil
}

// Check3NFBruteForce is Check3NF with the exponential primality oracle
// (small schemas only; used to cross-validate). Schemas beyond the
// oracle's size limit return schema.ErrTooLarge.
func Check3NFBruteForce(s *schema.Schema) (*Report, error) {
	primes, err := s.PrimesBruteForce()
	if err != nil {
		return nil, err
	}
	return check3NFWith(s, primes), nil
}

func check3NFWith(s *schema.Schema, primes *bitset.Set) *Report {
	r := &Report{OK: true}
	for fi, f := range s.FDs() {
		if trivial(f) {
			continue
		}
		if s.IsSuperkey(bitset.FromSlice(f.LHS)) {
			continue
		}
		if primes.Has(f.RHS) {
			continue
		}
		r.OK = false
		r.Violations = append(r.Violations, Violation{
			FD:     fi,
			Name:   f.Name,
			Reason: fmt.Sprintf("lhs is not a superkey and %s is not prime", s.AttrName(f.RHS)),
		})
	}
	return r
}

// CheckBCNF tests Boyce–Codd normal form (no primality needed).
func CheckBCNF(s *schema.Schema) *Report {
	r := &Report{OK: true}
	for fi, f := range s.FDs() {
		if trivial(f) {
			continue
		}
		if s.IsSuperkey(bitset.FromSlice(f.LHS)) {
			continue
		}
		r.OK = false
		r.Violations = append(r.Violations, Violation{
			FD:     fi,
			Name:   f.Name,
			Reason: "lhs is not a superkey",
		})
	}
	return r
}

// trivial reports whether the FD is trivial (rhs ∈ lhs).
func trivial(f schema.FD) bool {
	for _, a := range f.LHS {
		if a == f.RHS {
			return true
		}
	}
	return false
}

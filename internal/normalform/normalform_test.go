package normalform

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/schema"
)

func TestRunningExampleIs3NF(t *testing.T) {
	// Example 2.1: primes are a, b, c, d; FDs: ab→c (c prime), c→b (b
	// prime), cd→e (cd not superkey, e not prime → violation!), de→g,
	// g→e. So the schema is NOT in 3NF.
	s := schema.MustParse(`
a b -> c
c -> b
c d -> e
d e -> g
g -> e
`)
	r, err := Check3NF(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Fatal("running example wrongly certified as 3NF")
	}
	// cd→e, de→g, g→e all violate (e, g not prime; lhs never superkeys).
	if len(r.Violations) != 3 {
		t.Fatalf("violations = %+v", r.Violations)
	}
	bc := CheckBCNF(s)
	if bc.OK {
		t.Fatal("running example wrongly certified as BCNF")
	}
	if len(bc.Violations) < len(r.Violations) {
		t.Fatal("BCNF must be at least as strict as 3NF")
	}
}

func Test3NFPositive(t *testing.T) {
	// a→b, b→a: keys {a}, {b}; every attribute prime → 3NF but not BCNF?
	// Both lhs are superkeys, so even BCNF holds.
	s := schema.MustParse("a -> b\nb -> a")
	r, err := Check3NF(s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("violations = %+v", r.Violations)
	}
	if !CheckBCNF(s).OK {
		t.Fatal("BCNF should hold")
	}

	// Classic 3NF-but-not-BCNF: R = {street, city, zip},
	// {street, city} → zip, zip → city. Keys: {street, city},
	// {street, zip}; all attributes prime → 3NF; zip → city violates BCNF.
	s2 := schema.MustParse("street city -> zip\nzip -> city")
	r2, err := Check3NF(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.OK {
		t.Fatalf("address schema should be 3NF: %+v", r2.Violations)
	}
	bc := CheckBCNF(s2)
	if bc.OK {
		t.Fatal("address schema should not be BCNF")
	}
	if len(bc.Violations) != 1 || bc.Violations[0].Name != "f2" {
		t.Fatalf("BCNF violations = %+v", bc.Violations)
	}
}

func TestTrivialFDsIgnored(t *testing.T) {
	s := schema.MustParse("a b -> a\nc -> d")
	r := CheckBCNF(s)
	// Only c→d can violate; a b→a is trivial.
	if len(r.Violations) != 1 {
		t.Fatalf("violations = %+v", r.Violations)
	}
}

func TestNoFDs(t *testing.T) {
	s := schema.MustParse("attrs a b c")
	r, err := Check3NF(s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK || !CheckBCNF(s).OK {
		t.Fatal("FD-free schema is trivially in all normal forms")
	}
}

// Property: the FPT check agrees with the brute-force check, and BCNF
// implies 3NF, on random schemas.
func TestQuickAgreement(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchema(rng)
		fpt, err := Check3NF(s)
		if err != nil {
			return false
		}
		brute, err := Check3NFBruteForce(s)
		if err != nil {
			return false
		}
		if fpt.OK != brute.OK || len(fpt.Violations) != len(brute.Violations) {
			return false
		}
		if CheckBCNF(s).OK && !fpt.OK {
			return false // BCNF ⊆ 3NF
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(101))}); err != nil {
		t.Fatal(err)
	}
}

func randomSchema(rng *rand.Rand) *schema.Schema {
	s := schema.New()
	n := rng.Intn(5) + 2
	for i := 0; i < n; i++ {
		s.AddAttr(string(rune('a' + i)))
	}
	for k := rng.Intn(n + 2); k > 0; k-- {
		var lhs []int
		for a := 0; a < n; a++ {
			if rng.Intn(3) == 0 {
				lhs = append(lhs, a)
			}
		}
		if err := s.AddFD("", lhs, rng.Intn(n)); err != nil {
			panic(err)
		}
	}
	return s
}

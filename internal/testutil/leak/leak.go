// Package leak is the goroutine-leak check shared by the chaos,
// cancellation, drain and soak tests: snapshot the count before the
// work, assert it settles back to the baseline after. The assert
// retries until a deadline because finished goroutines unwind
// asynchronously — a single instantaneous read races the runtime and
// flakes.
package leak

import (
	"runtime"
	"time"
)

// DefaultSettle is how long Check waits for the count to return to the
// baseline before declaring a leak.
const DefaultSettle = 2 * time.Second

// T is the subset of testing.TB the checker needs; kept minimal so the
// soak harness can satisfy it outside a test binary.
type T interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Snapshot is a goroutine-count baseline taken by Before.
type Snapshot int

// Before records the current goroutine count; call it before starting
// the work under test.
func Before() Snapshot { return Snapshot(runtime.NumGoroutine()) }

// Check fails t if the goroutine count has not returned to (or below)
// the baseline within DefaultSettle.
func (s Snapshot) Check(t T) {
	t.Helper()
	s.CheckWithin(t, DefaultSettle)
}

// CheckWithin is Check with an explicit settle deadline.
func (s Snapshot) CheckWithin(t T, settle time.Duration) {
	t.Helper()
	if ok, after := s.Settled(settle); !ok {
		t.Fatalf("goroutine leak: %d before, %d after", int(s), after)
	}
}

// Settled polls until the goroutine count returns to the baseline or
// the deadline expires, reporting whether it settled and the final
// count. The soak harness uses it directly: it records the verdict in
// its JSON artifact instead of failing a test.
func (s Snapshot) Settled(settle time.Duration) (bool, int) {
	deadline := time.Now().Add(settle)
	for {
		n := runtime.NumGoroutine()
		if n <= int(s) {
			return true, n
		}
		if time.Now().After(deadline) {
			return false, n
		}
		time.Sleep(5 * time.Millisecond)
	}
}

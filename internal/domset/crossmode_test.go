package domset

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/solver"
)

// TestCrossModeDominatingSet pins the three evaluation modes of the
// domination algebra against each other on random partial k-trees:
// decision == (count > 0) == (optimization finds a feasible witness),
// the witness dominates every vertex, and its size is the brute-force
// optimum. (The all-vertices set always dominates, so all three must
// be feasible.)
func TestCrossModeDominatingSet(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	ctx := context.Background()
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(10)
		k := 1 + rng.Intn(3)
		g := graph.PartialKTree(n, k, 0.3, rng)
		nice, err := niceFor(g)
		if err != nil {
			t.Fatal(err)
		}
		prob := domProblem{g}

		dec, err := solver.Decide(ctx, nice, prob)
		if err != nil {
			t.Fatal(err)
		}
		cnt, err := solver.Count(ctx, nice, prob)
		if err != nil {
			t.Fatal(err)
		}
		der, err := solver.Optimize(ctx, nice, prob)
		if err != nil {
			t.Fatal(err)
		}
		if !dec || cnt.Sign() <= 0 || der == nil {
			t.Fatalf("trial %d: modes disagree: decide=%v count=%v optimize-feasible=%v",
				trial, dec, cnt, der != nil)
		}

		want, err := BruteForce(g)
		if err != nil {
			t.Fatal(err)
		}
		if der.Value != want {
			t.Fatalf("trial %d: Optimize=%d, brute force=%d", trial, der.Value, want)
		}
		set, err := DominatingSet(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(set) != want {
			t.Fatalf("trial %d: witness size %d, optimum %d", trial, len(set), want)
		}
		in := make([]bool, g.N())
		for _, v := range set {
			in[v] = true
		}
		for v := 0; v < g.N(); v++ {
			if in[v] {
				continue
			}
			dominatedV := false
			g.Neighbors(v).ForEach(func(u int) bool {
				if in[u] {
					dominatedV = true
					return false
				}
				return true
			})
			if !dominatedV {
				t.Fatalf("trial %d: witness leaves vertex %d undominated", trial, v)
			}
		}
	}
}

package domset

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

func TestBruteForceGuard(t *testing.T) {
	if _, err := BruteForce(graph.New(23)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	got, err := BruteForce(graph.New(3))
	if err != nil || got != 3 {
		t.Fatalf("edgeless K̄3: got %d, %v; want 3, nil", got, err)
	}
}

package domset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestKnownDominatingSets(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"single", graph.New(1), 1},
		{"edge", graph.Path(2), 1},
		{"path4", graph.Path(4), 2},
		{"path7", graph.Path(7), 3}, // ⌈7/3⌉
		{"cycle6", graph.Cycle(6), 2},
		{"star", star(7), 1},
		{"K5", graph.Complete(5), 1},
		{"edgeless", graph.New(4), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := MinDominatingSet(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("γ = %d, want %d", got, tc.want)
			}
		})
	}
	if got, err := MinDominatingSet(graph.New(0)); err != nil || got != 0 {
		t.Fatalf("empty graph: %d, %v", got, err)
	}
}

func star(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

func TestScalesOnBoundedTreewidth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.PartialKTree(100, 3, 0.3, rng)
	ds, err := MinDominatingSet(g)
	if err != nil {
		t.Fatal(err)
	}
	if ds <= 0 || ds >= g.N() {
		t.Fatalf("implausible dominating set size %d", ds)
	}
}

// Property: the DP agrees with brute force on random graphs.
func TestQuickAgainstBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(9) + 1
		g := graph.RandomTree(n, rng)
		for i := rng.Intn(2 * n); i > 0; i-- {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		got, err := MinDominatingSet(g)
		if err != nil {
			return false
		}
		want, err := BruteForce(g)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(163))}); err != nil {
		t.Fatal(err)
	}
}

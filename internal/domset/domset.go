// Package domset implements minimum dominating set on bounded-treewidth
// graphs: a third FPT problem on the paper's dynamic-programming
// framework, with the characteristic three-valued state (in the set /
// dominated / awaiting domination) that distinguishes it from the
// partition DP of Figure 5 and the cost DP of vertex cover.
package domset

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/decompose"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/tree"
)

// Vertex statuses, two bits per sorted-bag position.
const (
	inSet       = 0 // selected into the dominating set
	dominated   = 1 // not selected, already dominated by a selected vertex
	undominated = 2 // not selected, no selected neighbor seen yet
)

type state uint64

func statusOf(s state, p int) int { return int(s>>(2*uint(p))) & 3 }

func withStatus(s state, p, st int) state {
	low := s & ((1 << (2 * uint(p))) - 1)
	high := s >> (2 * uint(p))
	return low | state(st)<<(2*uint(p)) | high<<(2*uint(p)+2)
}

func setStatus(s state, p, st int) state {
	return s&^(3<<(2*uint(p))) | state(st)<<(2*uint(p))
}

func dropStatus(s state, p int) state {
	low := s & ((1 << (2 * uint(p))) - 1)
	high := s >> (2*uint(p) + 2)
	return low | high<<(2*uint(p))
}

func position(bag []int, e int) int {
	for i, b := range bag {
		if b == e {
			return i
		}
	}
	return -1
}

// propagate marks bag vertices dominated by in-set bag neighbors.
func propagate(g *graph.Graph, bag []int, s state) state {
	for i := range bag {
		if statusOf(s, i) != inSet {
			continue
		}
		for j := range bag {
			if j != i && g.HasEdge(bag[i], bag[j]) && statusOf(s, j) == undominated {
				s = setStatus(s, j, dominated)
			}
		}
	}
	return s
}

func handlers(g *graph.Graph) dp.CostHandlers[state] {
	return dp.CostHandlers[state]{
		Leaf: func(_ int, bag []int) []dp.Costed[state] {
			var out []dp.Costed[state]
			n := len(bag)
			total := 1
			for i := 0; i < n; i++ {
				total *= 2 // per vertex: in set or not (domination derived)
			}
			for combo := 0; combo < total; combo++ {
				var s state
				cost := 0
				for p := 0; p < n; p++ {
					if combo>>uint(p)&1 == 1 {
						s = setStatus(s, p, inSet)
						cost++
					} else {
						s = setStatus(s, p, undominated)
					}
				}
				out = append(out, dp.Costed[state]{State: propagate(g, bag, s), Cost: cost})
			}
			return out
		},
		Introduce: func(_ int, bag []int, elem int, child state) []dp.Costed[state] {
			p := position(bag, elem)
			var out []dp.Costed[state]
			// Selected: dominates its bag neighbors.
			sIn := propagate(g, bag, withStatus(child, p, inSet))
			out = append(out, dp.Costed[state]{State: sIn, Cost: 1})
			// Not selected: dominated iff some bag neighbor is in the set.
			sOut := propagate(g, bag, withStatus(child, p, undominated))
			out = append(out, dp.Costed[state]{State: sOut})
			return out
		},
		Forget: func(_ int, bag []int, elem int, child state) []dp.Costed[state] {
			childBag := insertSorted(bag, elem)
			p := position(childBag, elem)
			// A vertex may only leave once it is settled.
			if statusOf(child, p) == undominated {
				return nil
			}
			return []dp.Costed[state]{{State: dropStatus(child, p)}}
		},
		Branch: func(_ int, bag []int, s1, s2 state) []dp.Costed[state] {
			// Selection must agree; domination merges by OR.
			var merged state
			dup := 0
			for p := range bag {
				a, b := statusOf(s1, p), statusOf(s2, p)
				if (a == inSet) != (b == inSet) {
					return nil
				}
				switch {
				case a == inSet:
					merged = setStatus(merged, p, inSet)
					dup++ // counted in both children
				case a == dominated || b == dominated:
					merged = setStatus(merged, p, dominated)
				default:
					merged = setStatus(merged, p, undominated)
				}
			}
			return []dp.Costed[state]{{State: merged, Cost: -dup}}
		},
	}
}

func insertSorted(bag []int, e int) []int {
	out := make([]int, 0, len(bag)+1)
	placed := false
	for _, b := range bag {
		if !placed && e < b {
			out = append(out, e)
			placed = true
		}
		out = append(out, b)
	}
	if !placed {
		out = append(out, e)
	}
	return out
}

// MinDominatingSet returns the size of a minimum dominating set of g.
func MinDominatingSet(g *graph.Graph) (int, error) {
	if g.N() == 0 {
		return 0, nil
	}
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		return 0, err
	}
	nice, err := tree.NormalizeNice(d, tree.NiceOptions{})
	if err != nil {
		return 0, err
	}
	tables, err := dp.RunUpMin(nice, handlers(g))
	if err != nil {
		return 0, err
	}
	best := math.MaxInt
	rootBag := nice.Nodes[nice.Root].Bag
	for s, c := range tables[nice.Root] {
		ok := true
		for p := range rootBag {
			if statusOf(s, p) == undominated {
				ok = false
				break
			}
		}
		if ok && c < best {
			best = c
		}
	}
	if best == math.MaxInt {
		return 0, fmt.Errorf("domset: no feasible state at the root")
	}
	return best, nil
}

// ErrTooLarge reports that the exponential oracle was asked about a
// graph beyond its hard size limit; test with errors.Is.
var ErrTooLarge = errors.New("domset: graph too large for brute force")

// BruteForce is the exponential oracle for tests; beyond 22 vertices it
// returns ErrTooLarge.
func BruteForce(g *graph.Graph) (int, error) {
	n := g.N()
	if n > 22 {
		return 0, fmt.Errorf("%w: limited to 22 vertices, got %d", ErrTooLarge, n)
	}
	best := n
	for mask := 0; mask < 1<<uint(n); mask++ {
		size := 0
		for v := 0; v < n; v++ {
			size += mask >> uint(v) & 1
		}
		if size >= best {
			continue
		}
		ok := true
		for v := 0; v < n && ok; v++ {
			if mask>>uint(v)&1 == 1 {
				continue
			}
			dominatedV := false
			g.Neighbors(v).ForEach(func(u int) bool {
				if mask>>uint(u)&1 == 1 {
					dominatedV = true
					return false
				}
				return true
			})
			if !dominatedV {
				ok = false
			}
		}
		if ok {
			best = size
		}
	}
	return best, nil
}

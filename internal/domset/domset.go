// Package domset implements minimum dominating set on bounded-treewidth
// graphs: a third FPT problem on the paper's dynamic-programming
// framework, with the characteristic three-valued state (in the set /
// dominated / awaiting domination) that distinguishes it from the
// partition DP of Figure 5 and the bitmask DP of vertex cover. The
// transitions are one solver.Problem instance evaluated by the generic
// semiring engine.
package domset

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/decompose"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/solver"
	"repro/internal/tree"
)

// Vertex statuses, two bits per sorted-bag position.
const (
	inSet       = 0 // selected into the dominating set
	dominated   = 1 // not selected, already dominated by a selected vertex
	undominated = 2 // not selected, no selected neighbor seen yet
)

// width packs one status per sorted-bag position.
const width = solver.Width(2)

// Problem returns the dominating-set algebra over g as a generic
// solver.Problem, for callers (like the decision service) that run
// named problems through the session Solve* helpers on an existing
// decomposition. Vertex IDs of g must match the decomposition's bag
// elements.
func Problem(g *graph.Graph) solver.Problem[uint64] {
	return domProblem{g}
}

// domProblem is the dominating-set algebra: selection costs are paid on
// introduction (or in a leaf); domination statuses propagate through
// bag adjacency and merge by OR at joins; a vertex may only be
// forgotten once settled.
type domProblem struct {
	g *graph.Graph
}

func (dpb domProblem) Name() string { return "dominating-set" }

// propagate marks bag vertices dominated by in-set bag neighbors.
func (dpb domProblem) propagate(bag []int, s uint64) uint64 {
	for i := range bag {
		if width.At(s, i) != inSet {
			continue
		}
		for j := range bag {
			if j != i && dpb.g.HasEdge(bag[i], bag[j]) && width.At(s, j) == undominated {
				s = width.Set(s, j, dominated)
			}
		}
	}
	return s
}

func (dpb domProblem) Leaf(_ int, bag []int) []solver.Out[uint64] {
	var out []solver.Out[uint64]
	n := len(bag)
	for combo := 0; combo < 1<<uint(n); combo++ {
		var s uint64
		cost := 0
		for p := 0; p < n; p++ {
			if combo>>uint(p)&1 == 1 {
				s = width.Set(s, p, inSet)
				cost++
			} else {
				s = width.Set(s, p, undominated)
			}
		}
		out = append(out, solver.Out[uint64]{State: dpb.propagate(bag, s), Cost: cost})
	}
	return out
}

func (dpb domProblem) Introduce(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	p := solver.Position(bag, elem)
	// Selected: dominates its bag neighbors. Not selected: dominated iff
	// some bag neighbor is in the set.
	return []solver.Out[uint64]{
		{State: dpb.propagate(bag, width.Insert(child, p, inSet)), Cost: 1},
		{State: dpb.propagate(bag, width.Insert(child, p, undominated))},
	}
}

func (dpb domProblem) Forget(_ int, bag []int, elem int, child uint64) []solver.Out[uint64] {
	childBag := solver.InsertSorted(bag, elem)
	p := solver.Position(childBag, elem)
	// A vertex may only leave once it is settled.
	if width.At(child, p) == undominated {
		return nil
	}
	return []solver.Out[uint64]{{State: width.Drop(child, p)}}
}

func (dpb domProblem) Join(_ int, bag []int, s1, s2 uint64) []solver.Out[uint64] {
	// Selection must agree; domination merges by OR.
	var merged uint64
	dup := 0
	for p := range bag {
		a, b := width.At(s1, p), width.At(s2, p)
		if (a == inSet) != (b == inSet) {
			return nil
		}
		switch {
		case a == inSet:
			merged = width.Set(merged, p, inSet)
			dup++ // counted in both children
		case a == dominated || b == dominated:
			merged = width.Set(merged, p, dominated)
		default:
			merged = width.Set(merged, p, undominated)
		}
	}
	return []solver.Out[uint64]{{State: merged, Cost: -dup}}
}

// Accept admits root states with no vertex still awaiting domination.
func (dpb domProblem) Accept(_ int, bag []int, s uint64) bool {
	for p := range bag {
		if width.At(s, p) == undominated {
			return false
		}
	}
	return true
}

func niceFor(g *graph.Graph) (*tree.Decomposition, error) {
	d, err := decompose.Graph(g, decompose.MinFill)
	if err != nil {
		return nil, err
	}
	return tree.NormalizeNice(d, tree.NiceOptions{})
}

// MinDominatingSet returns the size of a minimum dominating set of g.
func MinDominatingSet(g *graph.Graph) (int, error) {
	if g.N() == 0 {
		return 0, nil
	}
	nice, err := niceFor(g)
	if err != nil {
		return 0, err
	}
	der, err := solver.Optimize(context.Background(), nice, domProblem{g})
	if err != nil {
		return 0, err
	}
	if der == nil {
		return 0, fmt.Errorf("domset: no feasible state at the root")
	}
	return der.Value, nil
}

// DominatingSet returns a minimum dominating set itself, by walking the
// argmin derivation of the tropical-semiring tables.
func DominatingSet(g *graph.Graph) ([]int, error) {
	if g.N() == 0 {
		return nil, nil
	}
	nice, err := niceFor(g)
	if err != nil {
		return nil, err
	}
	der, err := solver.Optimize(context.Background(), nice, domProblem{g})
	if err != nil {
		return nil, err
	}
	if der == nil {
		return nil, fmt.Errorf("domset: no feasible state at the root")
	}
	bags, err := dp.Bags(nice)
	if err != nil {
		return nil, fmt.Errorf("domset: %w", err)
	}
	in := make([]bool, g.N())
	err = der.Walk(func(v int, s uint64) error {
		for p, e := range bags[v] {
			if width.At(s, p) == inSet {
				in[e] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var set []int
	for v, ok := range in {
		if ok {
			set = append(set, v)
		}
	}
	return set, nil
}

// ErrTooLarge reports that the exponential oracle was asked about a
// graph beyond its hard size limit; test with errors.Is.
var ErrTooLarge = errors.New("domset: graph too large for brute force")

// BruteForce is the exponential oracle for tests; beyond 22 vertices it
// returns ErrTooLarge.
func BruteForce(g *graph.Graph) (int, error) {
	n := g.N()
	if n > 22 {
		return 0, fmt.Errorf("%w: limited to 22 vertices, got %d", ErrTooLarge, n)
	}
	best := n
	for mask := 0; mask < 1<<uint(n); mask++ {
		size := 0
		for v := 0; v < n; v++ {
			size += mask >> uint(v) & 1
		}
		if size >= best {
			continue
		}
		ok := true
		for v := 0; v < n && ok; v++ {
			if mask>>uint(v)&1 == 1 {
				continue
			}
			dominatedV := false
			g.Neighbors(v).ForEach(func(u int) bool {
				if mask>>uint(u)&1 == 1 {
					dominatedV = true
					return false
				}
				return true
			})
			if !dominatedV {
				ok = false
			}
		}
		if ok {
			best = size
		}
	}
	return best, nil
}

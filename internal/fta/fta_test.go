package fta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mso"
)

// evenAs returns an automaton over labels {a, b} accepting trees with an
// even number of a-labeled nodes. States: parity.
func evenAs() *Automaton {
	a := NewAutomaton(2, 2)
	a.AddLeaf(0, 1) // a-leaf: odd
	a.AddLeaf(1, 0) // b-leaf: even
	for lbl := 0; lbl <= 1; lbl++ {
		for c1 := 0; c1 <= 1; c1++ {
			for c2 := 0; c2 <= 1; c2++ {
				p := (c1 + c2 + 1 - lbl) % 2 // label 0 (=a) adds one
				a.AddBin(lbl, c1, c2, p)
			}
		}
	}
	a.SetFinal(0)
	return a
}

// hasA accepts trees containing at least one a (label 0).
func hasA() *Automaton {
	a := NewAutomaton(2, 2) // state 1 = seen a
	a.AddLeaf(0, 1)
	a.AddLeaf(1, 0)
	for lbl := 0; lbl <= 1; lbl++ {
		for c1 := 0; c1 <= 1; c1++ {
			for c2 := 0; c2 <= 1; c2++ {
				s := c1 | c2
				if lbl == 0 {
					s = 1
				}
				a.AddBin(lbl, c1, c2, s)
			}
		}
	}
	a.SetFinal(1)
	return a
}

func countAs(t *Tree) int {
	if t == nil {
		return 0
	}
	n := countAs(t.Left) + countAs(t.Right)
	if t.Label == 0 {
		n++
	}
	return n
}

func randTree(rng *rand.Rand, depth int) *Tree {
	if depth == 0 || rng.Intn(3) == 0 {
		return Leaf(rng.Intn(2))
	}
	return Node(rng.Intn(2), randTree(rng, depth-1), randTree(rng, depth-1))
}

func TestRunAndAccepts(t *testing.T) {
	a := evenAs()
	tr := Node(1, Leaf(0), Leaf(0)) // two a's: even
	if !a.Accepts(tr) {
		t.Fatal("even tree rejected")
	}
	tr2 := Node(0, Leaf(0), Leaf(0)) // three a's
	if a.Accepts(tr2) {
		t.Fatal("odd tree accepted")
	}
}

func TestTreeValidate(t *testing.T) {
	if err := Node(0, Leaf(1), Leaf(0)).Validate(2); err != nil {
		t.Fatal(err)
	}
	bad := &Tree{Label: 0, Left: Leaf(1)}
	if err := bad.Validate(2); err == nil {
		t.Fatal("one-child node accepted")
	}
	if err := Leaf(5).Validate(2); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if Node(0, Leaf(1), Leaf(1)).Size() != 3 {
		t.Fatal("Size wrong")
	}
}

func TestBooleanOperations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	even, has := evenAs(), hasA()
	prod, err := Product(even, has)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Union(even, has)
	if err != nil {
		t.Fatal(err)
	}
	comp := Complement(even)
	det := Determinize(has)
	for i := 0; i < 200; i++ {
		tr := randTree(rng, 4)
		wantEven := countAs(tr)%2 == 0
		wantHas := countAs(tr) > 0
		if even.Accepts(tr) != wantEven {
			t.Fatal("even automaton wrong")
		}
		if prod.Accepts(tr) != (wantEven && wantHas) {
			t.Fatal("Product wrong")
		}
		if uni.Accepts(tr) != (wantEven || wantHas) {
			t.Fatal("Union wrong")
		}
		if comp.Accepts(tr) != !wantEven {
			t.Fatal("Complement wrong")
		}
		if det.Accepts(tr) != wantHas {
			t.Fatal("Determinize changed the language")
		}
	}
	// A deterministic automaton has singleton run sets.
	if got := len(det.Run(randTree(rng, 3))); got != 1 {
		t.Fatalf("deterministic run set size %d", got)
	}
}

func TestEmptinessAndTrim(t *testing.T) {
	even := evenAs()
	if even.IsEmpty() {
		t.Fatal("even-a language reported empty")
	}
	contradiction, err := Product(even, Complement(even))
	if err != nil {
		t.Fatal(err)
	}
	if !contradiction.IsEmpty() {
		t.Fatal("L ∩ ¬L not empty")
	}
	trimmed := Trim(contradiction)
	if trimmed.NumStates > contradiction.NumStates {
		t.Fatal("Trim grew the automaton")
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		tr := randTree(rng, 3)
		if trimmed.Accepts(tr) != contradiction.Accepts(tr) {
			t.Fatal("Trim changed the language")
		}
	}
}

var treeLabels = []string{"a", "b"}

func evalOnTree(t *testing.T, f *mso.Formula, tr *Tree) bool {
	t.Helper()
	st, err := TreeToStructure(tr, treeLabels)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mso.Sentence(st, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCompileSimpleSentences(t *testing.T) {
	cases := []string{
		"exists x a(x)", // some node labeled a
		"forall x a(x)", // all nodes labeled a
		"exists x exists y (child1(x, y) & a(y))",       // some first child labeled a
		"exists x exists y (child2(x, y) & x = y)",      // impossible
		"exists X forall x (x in X)",                    // trivially true
		"exists x forall y (x = y)",                     // single-node tree
		"exists x exists y (child1(x,y) & child2(x,y))", // impossible: same node both children
	}
	rng := rand.New(rand.NewSource(7))
	for _, src := range cases {
		f := mso.MustParse(src)
		a, stats, err := Compile(f, treeLabels)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		if stats.MaxStates == 0 {
			t.Fatalf("no stats recorded for %q", src)
		}
		for i := 0; i < 40; i++ {
			tr := randTree(rng, 3)
			want := evalOnTree(t, f, tr)
			if got := a.Accepts(tr); got != want {
				t.Fatalf("Compile(%q) on tree: got %v, want %v", src, got, want)
			}
		}
	}
}

func TestCompileRejectsFreeVariables(t *testing.T) {
	if _, _, err := Compile(mso.MustParse("a(x)"), treeLabels); err == nil {
		t.Fatal("free variable accepted")
	}
	if _, _, err := Compile(mso.MustParse("exists x q(x)"), treeLabels); err == nil {
		t.Fatal("unknown predicate accepted")
	}
}

// Property: compiled automata agree with the naive MSO evaluator on
// random formulas and random trees.
func TestQuickCompileAgreesWithEval(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randTreeFormula(rng, 2, nil, nil)
		a, _, err := Compile(f, treeLabels)
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			tr := randTree(rng, 3)
			st, err := TreeToStructure(tr, treeLabels)
			if err != nil {
				return false
			}
			want, err := mso.Sentence(st, f, nil)
			if err != nil {
				return false
			}
			if a.Accepts(tr) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(89))}); err != nil {
		t.Fatal(err)
	}
}

// randTreeFormula generates random closed tree formulas of bounded depth.
func randTreeFormula(rng *rand.Rand, depth int, elemVars, setVars []string) *mso.Formula {
	atom := func() *mso.Formula {
		if len(elemVars) == 0 {
			return mso.True()
		}
		x := elemVars[rng.Intn(len(elemVars))]
		switch rng.Intn(4) {
		case 0:
			return mso.Atom(treeLabels[rng.Intn(len(treeLabels))], x)
		case 1:
			y := elemVars[rng.Intn(len(elemVars))]
			return mso.Atom([]string{"child1", "child2"}[rng.Intn(2)], x, y)
		case 2:
			y := elemVars[rng.Intn(len(elemVars))]
			return mso.Eq(x, y)
		default:
			if len(setVars) == 0 {
				return mso.Atom(treeLabels[rng.Intn(len(treeLabels))], x)
			}
			return mso.In(x, setVars[rng.Intn(len(setVars))])
		}
	}
	if depth == 0 || rng.Intn(4) == 0 {
		return atom()
	}
	switch rng.Intn(6) {
	case 0:
		return mso.Not(randTreeFormula(rng, depth-1, elemVars, setVars))
	case 1:
		return mso.And(randTreeFormula(rng, depth-1, elemVars, setVars),
			randTreeFormula(rng, depth-1, elemVars, setVars))
	case 2:
		return mso.Or(randTreeFormula(rng, depth-1, elemVars, setVars),
			randTreeFormula(rng, depth-1, elemVars, setVars))
	case 3:
		v := "s" + string(rune('a'+len(elemVars)))
		return mso.ForallE(v, randTreeFormula(rng, depth-1, append(append([]string{}, elemVars...), v), setVars))
	case 4:
		v := "S" + string(rune('A'+len(setVars)))
		return mso.ExistsS(v, randTreeFormula(rng, depth-1, elemVars, append(append([]string{}, setVars...), v)))
	default:
		v := "s" + string(rune('a'+len(elemVars)))
		return mso.ExistsE(v, randTreeFormula(rng, depth-1, append(append([]string{}, elemVars...), v), setVars))
	}
}

func TestStateExplosionMeasurable(t *testing.T) {
	// Nested negations under quantifiers force repeated determinization;
	// the intermediate automata must grow noticeably with formula size —
	// the effect the paper cites from [26].
	small := mso.MustParse("forall x a(x)")
	big := mso.MustParse("forall x exists y forall z (child1(x,y) -> (a(z) | b(x)))")
	_, sSmall, err := Compile(small, treeLabels)
	if err != nil {
		t.Fatal(err)
	}
	_, sBig, err := Compile(big, treeLabels)
	if err != nil {
		t.Fatal(err)
	}
	if sBig.MaxStates <= sSmall.MaxStates {
		t.Fatalf("no growth: %d vs %d", sSmall.MaxStates, sBig.MaxStates)
	}
	if sBig.Determinizations <= sSmall.Determinizations {
		t.Fatalf("no extra determinizations: %d vs %d", sSmall.Determinizations, sBig.Determinizations)
	}
}

package fta

import (
	"fmt"

	"repro/internal/mso"
	"repro/internal/structure"
)

// This file implements the classical MSO-to-FTA compilation on binary
// labeled trees: each variable becomes a bit track on the alphabet,
// quantifiers become projections, negations become complementation (and
// therefore determinization — the source of the state explosion), and
// conjunction/disjunction become product/union.
//
// Vocabulary of tree formulas (package mso syntax):
//
//	<label>(x)     node x carries the label
//	child1(x, y)   y is the first child of x
//	child2(x, y)   y is the second child of x
//	x = y, x in X, quantifiers, connectives
//
// The extended alphabet for k tracks is ext = bits | base<<k, where bit i
// is node membership in track i.

// CompileStats reports the cost of a compilation.
type CompileStats struct {
	// MaxStates is the largest intermediate automaton (after trimming).
	MaxStates int
	// Determinizations counts subset constructions performed.
	Determinizations int
}

// Compile translates an MSO sentence over binary trees with the given
// label names into a tree automaton over the plain alphabet.
func Compile(f *mso.Formula, labels []string) (*Automaton, *CompileStats, error) {
	elems, sets := f.FreeVars()
	if len(elems)+len(sets) > 0 {
		return nil, nil, fmt.Errorf("fta: formula has free variables %v %v", elems, sets)
	}
	c := &compiler{labels: labels, stats: &CompileStats{}}
	a, err := c.compile(f, nil)
	if err != nil {
		return nil, nil, err
	}
	return a, c.stats, nil
}

type compiler struct {
	labels   []string
	stats    *CompileStats
	minimize bool
}

func (c *compiler) note(a *Automaton) *Automaton {
	t := Trim(a)
	if c.minimize {
		t = Trim(Minimize(t))
	}
	if t.NumStates > c.stats.MaxStates {
		c.stats.MaxStates = t.NumStates
	}
	return t
}

func (c *compiler) extCount(tracks int) int {
	return len(c.labels) << uint(tracks)
}

// trackIndex resolves a variable to its innermost binding (tracks are
// appended as quantifiers nest, so shadowed names resolve to the last
// occurrence).
func trackIndex(tracks []string, name string) int {
	for i := len(tracks) - 1; i >= 0; i-- {
		if tracks[i] == name {
			return i
		}
	}
	return -1
}

func (c *compiler) labelIndex(name string) int {
	for i, l := range c.labels {
		if l == name {
			return i
		}
	}
	return -1
}

// compile builds the automaton of f over the extended alphabet for the
// given track list (all free variables of f must appear in tracks).
func (c *compiler) compile(f *mso.Formula, tracks []string) (*Automaton, error) {
	k := len(tracks)
	switch f.Kind {
	case mso.KTrue:
		return c.note(c.trivial(k, true)), nil
	case mso.KFalse:
		return c.note(c.trivial(k, false)), nil
	case mso.KAtom:
		switch f.Pred {
		case "child1", "child2":
			if len(f.Args) != 2 {
				return nil, fmt.Errorf("fta: %s expects 2 arguments", f.Pred)
			}
			ti := trackIndex(tracks, f.Args[0])
			tj := trackIndex(tracks, f.Args[1])
			if ti < 0 || tj < 0 {
				return nil, fmt.Errorf("fta: unbound variable in %s", f)
			}
			which := 1
			if f.Pred == "child2" {
				which = 2
			}
			return c.note(c.edgeAut(k, which, ti, tj)), nil
		default:
			li := c.labelIndex(f.Pred)
			if li < 0 {
				return nil, fmt.Errorf("fta: unknown label predicate %s", f.Pred)
			}
			if len(f.Args) != 1 {
				return nil, fmt.Errorf("fta: label %s expects 1 argument", f.Pred)
			}
			ti := trackIndex(tracks, f.Args[0])
			if ti < 0 {
				return nil, fmt.Errorf("fta: unbound variable in %s", f)
			}
			return c.note(c.labAut(k, li, ti)), nil
		}
	case mso.KEq:
		ti := trackIndex(tracks, f.X)
		tj := trackIndex(tracks, f.Y)
		if ti < 0 || tj < 0 {
			return nil, fmt.Errorf("fta: unbound variable in %s", f)
		}
		return c.note(c.eqAut(k, ti, tj)), nil
	case mso.KIn:
		ti := trackIndex(tracks, f.X)
		tj := trackIndex(tracks, f.Y)
		if ti < 0 || tj < 0 {
			return nil, fmt.Errorf("fta: unbound variable in %s", f)
		}
		return c.note(c.subAut(k, ti, tj)), nil
	case mso.KNot:
		a, err := c.compile(f.Sub[0], tracks)
		if err != nil {
			return nil, err
		}
		c.stats.Determinizations++
		return c.note(Complement(a)), nil
	case mso.KAnd, mso.KOr:
		cur, err := c.compile(f.Sub[0], tracks)
		if err != nil {
			return nil, err
		}
		for _, sub := range f.Sub[1:] {
			next, err := c.compile(sub, tracks)
			if err != nil {
				return nil, err
			}
			if f.Kind == mso.KAnd {
				cur, err = Product(cur, next)
			} else {
				cur, err = Union(cur, next)
			}
			if err != nil {
				return nil, err
			}
			cur = c.note(cur)
		}
		return cur, nil
	case mso.KImpl:
		return c.compile(mso.Or(mso.Not(f.Sub[0]), f.Sub[1]), tracks)
	case mso.KIff:
		return c.compile(mso.And(
			mso.Impl(f.Sub[0], f.Sub[1]),
			mso.Impl(f.Sub[1], f.Sub[0])), tracks)
	case mso.KExistsS, mso.KExistsE:
		inner := append(append([]string{}, tracks...), f.Var)
		a, err := c.compile(f.Sub[0], inner)
		if err != nil {
			return nil, err
		}
		if f.Kind == mso.KExistsE {
			// Element variables are singleton-encoded: ∃x φ becomes
			// ∃X (Sing(X) ∧ φ).
			a, err = Product(c.singAut(len(inner), len(inner)-1), a)
			if err != nil {
				return nil, err
			}
			a = c.note(a)
		}
		return c.note(c.projectLast(a, k)), nil
	case mso.KForallS:
		return c.compile(mso.Not(mso.ExistsS(f.Var, mso.Not(f.Sub[0]))), tracks)
	case mso.KForallE:
		return c.compile(mso.Not(mso.ExistsE(f.Var, mso.Not(f.Sub[0]))), tracks)
	default:
		return nil, fmt.Errorf("fta: unsupported formula kind %d", f.Kind)
	}
}

// ext decomposition helpers for k tracks.
func bitOf(ext, track int) bool { return ext&(1<<uint(track)) != 0 }

// trivial returns the automaton accepting every tree (final=true) or none.
func (c *compiler) trivial(k int, final bool) *Automaton {
	a := NewAutomaton(c.extCount(k), 1)
	for ext := 0; ext < a.NumLabels; ext++ {
		a.AddLeaf(ext, 0)
		a.AddBin(ext, 0, 0, 0)
	}
	if final {
		a.SetFinal(0)
	}
	return a
}

// labAut accepts iff every node on track ti carries base label li.
func (c *compiler) labAut(k, li, ti int) *Automaton {
	a := NewAutomaton(c.extCount(k), 1)
	for ext := 0; ext < a.NumLabels; ext++ {
		if bitOf(ext, ti) && ext>>uint(k) != li {
			continue
		}
		a.AddLeaf(ext, 0)
		a.AddBin(ext, 0, 0, 0)
	}
	a.SetFinal(0)
	return a
}

// subAut accepts iff track ti ⊆ track tj.
func (c *compiler) subAut(k, ti, tj int) *Automaton {
	a := NewAutomaton(c.extCount(k), 1)
	for ext := 0; ext < a.NumLabels; ext++ {
		if bitOf(ext, ti) && !bitOf(ext, tj) {
			continue
		}
		a.AddLeaf(ext, 0)
		a.AddBin(ext, 0, 0, 0)
	}
	a.SetFinal(0)
	return a
}

// eqAut accepts iff tracks ti and tj mark exactly the same nodes.
func (c *compiler) eqAut(k, ti, tj int) *Automaton {
	a := NewAutomaton(c.extCount(k), 1)
	for ext := 0; ext < a.NumLabels; ext++ {
		if bitOf(ext, ti) != bitOf(ext, tj) {
			continue
		}
		a.AddLeaf(ext, 0)
		a.AddBin(ext, 0, 0, 0)
	}
	a.SetFinal(0)
	return a
}

// singAut accepts iff exactly one node is marked on track ti.
// States: 0 = no mark yet, 1 = exactly one mark.
func (c *compiler) singAut(k, ti int) *Automaton {
	a := NewAutomaton(c.extCount(k), 2)
	for ext := 0; ext < a.NumLabels; ext++ {
		b := 0
		if bitOf(ext, ti) {
			b = 1
		}
		a.AddLeaf(ext, b)
		for c1 := 0; c1 <= 1; c1++ {
			for c2 := 0; c2 <= 1; c2++ {
				if b+c1+c2 <= 1 {
					a.AddBin(ext, c1, c2, b+c1+c2)
				}
			}
		}
	}
	a.SetFinal(1)
	return a
}

// edgeAut accepts iff the (unique) node marked on track tj is the
// which-th child of the (unique) node marked on track ti. Correct under
// the singleton marking produced by the element-quantifier encoding.
// States: 0 = clean, 1 = the subtree root is the tj-marked node,
// 2 = the pair has been matched.
func (c *compiler) edgeAut(k, which, ti, tj int) *Automaton {
	a := NewAutomaton(c.extCount(k), 3)
	for ext := 0; ext < a.NumLabels; ext++ {
		bx, by := bitOf(ext, ti), bitOf(ext, tj)
		// Leaves: x must be internal; y may be a leaf.
		switch {
		case bx:
			// no transition: x at a leaf can have no child
		case by:
			a.AddLeaf(ext, 1)
		default:
			a.AddLeaf(ext, 0)
		}
		// Internal nodes.
		for c1 := 0; c1 <= 2; c1++ {
			for c2 := 0; c2 <= 2; c2++ {
				res := -1
				switch {
				case c1 == 2 && c2 == 0 && !bx && !by:
					res = 2
				case c2 == 2 && c1 == 0 && !bx && !by:
					res = 2
				case bx && !by && which == 1 && c1 == 1 && c2 == 0:
					res = 2
				case bx && !by && which == 2 && c2 == 1 && c1 == 0:
					res = 2
				case by && !bx && c1 == 0 && c2 == 0:
					res = 1
				case !bx && !by && c1 == 0 && c2 == 0:
					res = 0
				}
				if res >= 0 {
					a.AddBin(ext, c1, c2, res)
				}
			}
		}
	}
	a.SetFinal(2)
	return a
}

// projectLast removes the last track (position k of k+1 tracks): every
// pair of extended labels differing only in that bit collapses, taking the
// union of transitions — the nondeterministic image of ∃.
func (c *compiler) projectLast(a *Automaton, k int) *Automaton {
	out := NewAutomaton(c.extCount(k), a.NumStates)
	drop := func(ext int) int {
		bits := ext & ((1 << uint(k+1)) - 1)
		base := ext >> uint(k+1)
		low := bits & ((1 << uint(k)) - 1)
		return low | base<<uint(k)
	}
	for ext := 0; ext < a.NumLabels; ext++ {
		for _, s := range a.LeafTrans[ext] {
			out.AddLeaf(drop(ext), s)
		}
	}
	for key, ss := range a.BinTrans {
		for _, s := range ss {
			out.AddBin(drop(key[0]), key[1], key[2], s)
		}
	}
	copy(out.Final, a.Final)
	return out
}

// TreeToStructure encodes a tree as a τ-structure for the naive MSO
// evaluator: one element per node, unary label predicates, and
// child1(x,y)/child2(x,y) meaning y is the first/second child of x.
func TreeToStructure(t *Tree, labels []string) (*structure.Structure, error) {
	preds := make([]structure.Predicate, 0, len(labels)+2)
	for _, l := range labels {
		preds = append(preds, structure.Predicate{Name: l, Arity: 1})
	}
	preds = append(preds,
		structure.Predicate{Name: "child1", Arity: 2},
		structure.Predicate{Name: "child2", Arity: 2})
	sig, err := structure.NewSignature(preds...)
	if err != nil {
		return nil, err
	}
	st := structure.New(sig)
	var rec func(n *Tree) (int, error)
	counter := 0
	rec = func(n *Tree) (int, error) {
		id := st.AddElem(fmt.Sprintf("n%d", counter))
		counter++
		if n.Label < 0 || n.Label >= len(labels) {
			return 0, fmt.Errorf("fta: label %d out of range", n.Label)
		}
		if err := st.AddTuple(labels[n.Label], id); err != nil {
			return 0, err
		}
		if n.Left != nil {
			l, err := rec(n.Left)
			if err != nil {
				return 0, err
			}
			r, err := rec(n.Right)
			if err != nil {
				return 0, err
			}
			if err := st.AddTuple("child1", id, l); err != nil {
				return 0, err
			}
			if err := st.AddTuple("child2", id, r); err != nil {
				return 0, err
			}
		}
		return id, nil
	}
	if _, err := rec(t); err != nil {
		return nil, err
	}
	return st, nil
}

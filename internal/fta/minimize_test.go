package fta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mso"
)

func TestMinimizePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, a := range []*Automaton{evenAs(), hasA(), Determinize(hasA()), Complement(evenAs())} {
		m := Minimize(a)
		if m.NumStates > Determinize(a).NumStates {
			t.Fatal("Minimize grew the automaton")
		}
		for i := 0; i < 100; i++ {
			tr := randTree(rng, 4)
			if m.Accepts(tr) != a.Accepts(tr) {
				t.Fatal("Minimize changed the language")
			}
		}
	}
}

func TestMinimizeCollapsesRedundantStates(t *testing.T) {
	// A product of an automaton with itself has a quadratic state space
	// but the same language; minimization must collapse it back down to
	// the size of the minimized original.
	a := Determinize(evenAs())
	p, err := Product(a, a)
	if err != nil {
		t.Fatal(err)
	}
	mOrig := Minimize(a)
	mProd := Minimize(Trim(p))
	if Trim(mProd).NumStates != Trim(mOrig).NumStates {
		t.Fatalf("product minimized to %d states, original to %d",
			Trim(mProd).NumStates, Trim(mOrig).NumStates)
	}
}

func TestCompileWithMinimize(t *testing.T) {
	f := mso.MustParse("forall x exists y (child1(x,y) -> a(y))")
	plain, sPlain, err := Compile(f, treeLabels)
	if err != nil {
		t.Fatal(err)
	}
	minimized, sMin, err := CompileWith(f, treeLabels, CompileOpts{Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if sMin.MaxStates > sPlain.MaxStates {
		t.Fatalf("minimizing compilation had larger intermediates: %d vs %d",
			sMin.MaxStates, sPlain.MaxStates)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 60; i++ {
		tr := randTree(rng, 3)
		if plain.Accepts(tr) != minimized.Accepts(tr) {
			t.Fatal("minimizing compilation changed the language")
		}
	}
}

// Property: Minimize preserves the language of compiled random formulas.
func TestQuickMinimizeCompiled(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randTreeFormula(rng, 2, nil, nil)
		a, _, err := Compile(f, treeLabels)
		if err != nil {
			return false
		}
		m := Minimize(a)
		for i := 0; i < 8; i++ {
			tr := randTree(rng, 3)
			if m.Accepts(tr) != a.Accepts(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(113))}); err != nil {
		t.Fatal(err)
	}
}

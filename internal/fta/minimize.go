package fta

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mso"
)

// Minimize returns the minimal deterministic automaton equivalent to a —
// Moore-style partition refinement lifted to trees: states are merged
// unless they are distinguished by acceptance or, recursively, by some
// transition in either child position against any co-state. The input
// must be deterministic and complete (as produced by Determinize or
// Complement); nondeterministic inputs are determinized first.
//
// MONA's implementation keeps automata minimal at every step and still
// hits the state explosion; CompileWith with Minimize reproduces that
// regime.
func Minimize(a *Automaton) *Automaton {
	d := a
	if !isDeterministic(a) {
		d = Determinize(a)
	}
	n := d.NumStates
	if n == 0 {
		return d
	}
	// block[s] = index of s's current block.
	block := make([]int, n)
	for s := 0; s < n; s++ {
		if d.Final[s] {
			block[s] = 1
		}
	}
	numBlocks := 2

	// step looks up the deterministic successor (complete ⇒ exists).
	step := func(label, s1, s2 int) int {
		ss := d.BinTrans[[3]int{label, s1, s2}]
		if len(ss) == 0 {
			return -1
		}
		return ss[0]
	}

	for {
		// Signature of a state: its block plus the blocks reached in
		// every (label, co-state-block, position) context. Using block
		// representatives keeps the signature size manageable.
		reps := make([]int, numBlocks)
		for i := range reps {
			reps[i] = -1
		}
		for s := n - 1; s >= 0; s-- {
			reps[block[s]] = s
		}
		sigOf := func(s int) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%d", block[s])
			for label := 0; label < d.NumLabels; label++ {
				for _, r := range reps {
					left := step(label, s, r)
					right := step(label, r, s)
					lb, rb := -1, -1
					if left >= 0 {
						lb = block[left]
					}
					if right >= 0 {
						rb = block[right]
					}
					fmt.Fprintf(&b, ",%d,%d", lb, rb)
				}
			}
			return b.String()
		}
		sigIndex := map[string]int{}
		newBlock := make([]int, n)
		var order []string
		for s := 0; s < n; s++ {
			sig := sigOf(s)
			if _, ok := sigIndex[sig]; !ok {
				sigIndex[sig] = len(order)
				order = append(order, sig)
			}
			newBlock[s] = sigIndex[sig]
		}
		if len(order) == numBlocks {
			break
		}
		block = newBlock
		numBlocks = len(order)
	}

	// Quotient automaton.
	out := NewAutomaton(d.NumLabels, numBlocks)
	seenLeaf := map[[2]int]bool{}
	for label := 0; label < d.NumLabels; label++ {
		for _, s := range d.LeafTrans[label] {
			k := [2]int{label, block[s]}
			if !seenLeaf[k] {
				seenLeaf[k] = true
				out.AddLeaf(label, block[s])
			}
		}
	}
	seenBin := map[[4]int]bool{}
	for key, ss := range d.BinTrans {
		for _, s := range ss {
			k := [4]int{key[0], block[key[1]], block[key[2]], block[s]}
			if !seenBin[k] {
				seenBin[k] = true
				out.AddBin(key[0], block[key[1]], block[key[2]], block[s])
			}
		}
	}
	for s := 0; s < n; s++ {
		if d.Final[s] {
			out.SetFinal(block[s])
		}
	}
	return out
}

// isDeterministic reports whether every transition has at most one
// target and leaf transitions are unique per label.
func isDeterministic(a *Automaton) bool {
	for _, ss := range a.LeafTrans {
		if len(uniqueStates(ss)) > 1 {
			return false
		}
	}
	for _, ss := range a.BinTrans {
		if len(uniqueStates(ss)) > 1 {
			return false
		}
	}
	return true
}

func uniqueStates(ss []int) []int {
	out := append([]int(nil), ss...)
	sort.Ints(out)
	n := 0
	for i, s := range out {
		if i == 0 || s != out[i-1] {
			out[n] = s
			n++
		}
	}
	return out[:n]
}

// CompileOpts configures CompileWith.
type CompileOpts struct {
	// Minimize keeps every intermediate automaton minimal (the MONA
	// regime); slower per step but smaller automata.
	Minimize bool
}

// CompileWith is Compile with options.
func CompileWith(f *mso.Formula, labels []string, opts CompileOpts) (*Automaton, *CompileStats, error) {
	elems, sets := f.FreeVars()
	if len(elems)+len(sets) > 0 {
		return nil, nil, fmt.Errorf("fta: formula has free variables %v %v", elems, sets)
	}
	c := &compiler{labels: labels, stats: &CompileStats{}, minimize: opts.Minimize}
	a, err := c.compile(f, nil)
	if err != nil {
		return nil, nil, err
	}
	return a, c.stats, nil
}

// Package fta implements bottom-up finite tree automata on binary trees
// and the classical compilation of MSO on trees to tree automata
// (Thatcher–Wright/Doner, [29, 6] in the paper). This is the route that
// Courcelle-based algorithm derivations take ([2, 13]) and whose "state
// explosion" ([15, 26]) motivates the paper's monadic datalog approach;
// experiment E6 measures the explosion on this implementation.
package fta

import (
	"fmt"
	"sort"
	"strings"
)

// Tree is a binary tree whose nodes carry a label index into some
// alphabet. A node has either zero or two children.
type Tree struct {
	Label       int
	Left, Right *Tree
}

// Leaf returns a leaf node.
func Leaf(label int) *Tree { return &Tree{Label: label} }

// Node returns an internal node with two children.
func Node(label int, l, r *Tree) *Tree { return &Tree{Label: label, Left: l, Right: r} }

// Size returns the number of nodes.
func (t *Tree) Size() int {
	if t == nil {
		return 0
	}
	return 1 + t.Left.Size() + t.Right.Size()
}

// Validate checks the 0-or-2-children discipline and label range.
func (t *Tree) Validate(numLabels int) error {
	if t == nil {
		return fmt.Errorf("fta: nil tree")
	}
	if t.Label < 0 || t.Label >= numLabels {
		return fmt.Errorf("fta: label %d out of range", t.Label)
	}
	if (t.Left == nil) != (t.Right == nil) {
		return fmt.Errorf("fta: node with exactly one child")
	}
	if t.Left != nil {
		if err := t.Left.Validate(numLabels); err != nil {
			return err
		}
		return t.Right.Validate(numLabels)
	}
	return nil
}

// Automaton is a (nondeterministic) bottom-up finite tree automaton over
// binary trees with labels 0..NumLabels-1.
type Automaton struct {
	NumLabels int
	NumStates int
	// LeafTrans[label] lists the states reachable at a leaf.
	LeafTrans [][]int
	// BinTrans maps (label, s1, s2) to reachable states.
	BinTrans map[[3]int][]int
	// Final marks accepting states.
	Final []bool
}

// NewAutomaton returns an automaton with no transitions.
func NewAutomaton(numLabels, numStates int) *Automaton {
	return &Automaton{
		NumLabels: numLabels,
		NumStates: numStates,
		LeafTrans: make([][]int, numLabels),
		BinTrans:  map[[3]int][]int{},
		Final:     make([]bool, numStates),
	}
}

// AddLeaf adds a leaf transition label → state.
func (a *Automaton) AddLeaf(label, state int) {
	a.LeafTrans[label] = append(a.LeafTrans[label], state)
}

// AddBin adds a binary transition (label, s1, s2) → state.
func (a *Automaton) AddBin(label, s1, s2, state int) {
	k := [3]int{label, s1, s2}
	a.BinTrans[k] = append(a.BinTrans[k], state)
}

// SetFinal marks a state accepting.
func (a *Automaton) SetFinal(state int) { a.Final[state] = true }

// NumTransitions returns the number of transition entries.
func (a *Automaton) NumTransitions() int {
	n := 0
	for _, ss := range a.LeafTrans {
		n += len(ss)
	}
	for _, ss := range a.BinTrans {
		n += len(ss)
	}
	return n
}

// Run returns the set of states reachable at the root of t.
func (a *Automaton) Run(t *Tree) map[int]bool {
	if t.Left == nil {
		out := map[int]bool{}
		for _, s := range a.LeafTrans[t.Label] {
			out[s] = true
		}
		return out
	}
	l := a.Run(t.Left)
	r := a.Run(t.Right)
	out := map[int]bool{}
	for s1 := range l {
		for s2 := range r {
			for _, s := range a.BinTrans[[3]int{t.Label, s1, s2}] {
				out[s] = true
			}
		}
	}
	return out
}

// Accepts reports whether some run reaches a final state at the root.
func (a *Automaton) Accepts(t *Tree) bool {
	for s := range a.Run(t) {
		if a.Final[s] {
			return true
		}
	}
	return false
}

// Product returns the automaton accepting the intersection of the two
// languages (over the same alphabet).
func Product(a, b *Automaton) (*Automaton, error) {
	if a.NumLabels != b.NumLabels {
		return nil, fmt.Errorf("fta: alphabet mismatch %d vs %d", a.NumLabels, b.NumLabels)
	}
	out := NewAutomaton(a.NumLabels, a.NumStates*b.NumStates)
	pair := func(s, t int) int { return s*b.NumStates + t }
	for label := 0; label < a.NumLabels; label++ {
		for _, s := range a.LeafTrans[label] {
			for _, t := range b.LeafTrans[label] {
				out.AddLeaf(label, pair(s, t))
			}
		}
	}
	for ka, ssa := range a.BinTrans {
		for kb, ssb := range b.BinTrans {
			if ka[0] != kb[0] {
				continue
			}
			for _, s := range ssa {
				for _, t := range ssb {
					out.AddBin(ka[0], pair(ka[1], kb[1]), pair(ka[2], kb[2]), pair(s, t))
				}
			}
		}
	}
	for s := 0; s < a.NumStates; s++ {
		for t := 0; t < b.NumStates; t++ {
			if a.Final[s] && b.Final[t] {
				out.SetFinal(pair(s, t))
			}
		}
	}
	return out, nil
}

// Union returns the automaton accepting the union of the two languages
// (disjoint union of state spaces).
func Union(a, b *Automaton) (*Automaton, error) {
	if a.NumLabels != b.NumLabels {
		return nil, fmt.Errorf("fta: alphabet mismatch")
	}
	out := NewAutomaton(a.NumLabels, a.NumStates+b.NumStates)
	for label := 0; label < a.NumLabels; label++ {
		for _, s := range a.LeafTrans[label] {
			out.AddLeaf(label, s)
		}
		for _, s := range b.LeafTrans[label] {
			out.AddLeaf(label, a.NumStates+s)
		}
	}
	for k, ss := range a.BinTrans {
		for _, s := range ss {
			out.AddBin(k[0], k[1], k[2], s)
		}
	}
	for k, ss := range b.BinTrans {
		for _, s := range ss {
			out.AddBin(k[0], a.NumStates+k[1], a.NumStates+k[2], a.NumStates+s)
		}
	}
	for s, f := range a.Final {
		if f {
			out.SetFinal(s)
		}
	}
	for s, f := range b.Final {
		if f {
			out.SetFinal(a.NumStates + s)
		}
	}
	return out, nil
}

// Determinize returns an equivalent deterministic, complete automaton via
// the subset construction. The result can be exponentially larger — this
// is the primary source of the MSO-to-FTA state explosion (every negation
// in the formula forces a determinization).
func Determinize(a *Automaton) *Automaton {
	type subset string // canonical sorted state list
	key := func(states map[int]bool) subset {
		elems := make([]int, 0, len(states))
		for s := range states {
			elems = append(elems, s)
		}
		sort.Ints(elems)
		var b strings.Builder
		for i, s := range elems {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", s)
		}
		return subset(b.String())
	}
	id := map[subset]int{}
	var sets []map[int]bool
	intern := func(states map[int]bool) (int, bool) {
		k := key(states)
		if i, ok := id[k]; ok {
			return i, false
		}
		i := len(sets)
		id[k] = i
		sets = append(sets, states)
		return i, true
	}

	target := func(label, i1, i2 int) map[int]bool {
		states := map[int]bool{}
		for s1 := range sets[i1] {
			for s2 := range sets[i2] {
				for _, s := range a.BinTrans[[3]int{label, s1, s2}] {
					states[s] = true
				}
			}
		}
		return states
	}

	// Seed with leaf subsets, then saturate the subset family: keep
	// sweeping all (label, subset, subset) combinations until no new
	// subset appears.
	leafSubset := make([]int, a.NumLabels)
	for label := 0; label < a.NumLabels; label++ {
		states := map[int]bool{}
		for _, s := range a.LeafTrans[label] {
			states[s] = true
		}
		leafSubset[label], _ = intern(states)
	}
	for {
		before := len(sets)
		n := before
		for label := 0; label < a.NumLabels; label++ {
			for i1 := 0; i1 < n; i1++ {
				for i2 := 0; i2 < n; i2++ {
					intern(target(label, i1, i2))
				}
			}
		}
		if len(sets) == before {
			break
		}
	}

	out := NewAutomaton(a.NumLabels, len(sets))
	for label, i := range leafSubset {
		out.AddLeaf(label, i)
	}
	for label := 0; label < a.NumLabels; label++ {
		for i1 := 0; i1 < len(sets); i1++ {
			for i2 := 0; i2 < len(sets); i2++ {
				i, fresh := intern(target(label, i1, i2))
				if fresh {
					panic("fta: determinize fixpoint incomplete")
				}
				out.AddBin(label, i1, i2, i)
			}
		}
	}
	for i, states := range sets {
		for s := range states {
			if a.Final[s] {
				out.SetFinal(i)
				break
			}
		}
	}
	return out
}

// Complement returns the automaton accepting the complement language.
// The input is determinized (and thereby completed) first.
func Complement(a *Automaton) *Automaton {
	d := Determinize(a)
	for s := range d.Final {
		d.Final[s] = !d.Final[s]
	}
	return d
}

// IsEmpty reports whether the language is empty, by reachability of a
// final state.
func (a *Automaton) IsEmpty() bool {
	reachable := make([]bool, a.NumStates)
	changed := true
	for changed {
		changed = false
		for _, ss := range a.LeafTrans {
			for _, s := range ss {
				if !reachable[s] {
					reachable[s] = true
					changed = true
				}
			}
		}
		for k, ss := range a.BinTrans {
			if !reachable[k[1]] || !reachable[k[2]] {
				continue
			}
			for _, s := range ss {
				if !reachable[s] {
					reachable[s] = true
					changed = true
				}
			}
		}
	}
	for s, f := range a.Final {
		if f && reachable[s] {
			return false
		}
	}
	return true
}

// Trim removes states that are not reachable bottom-up, renumbering the
// rest; it never changes the language.
func Trim(a *Automaton) *Automaton {
	reachable := make([]bool, a.NumStates)
	changed := true
	for changed {
		changed = false
		for _, ss := range a.LeafTrans {
			for _, s := range ss {
				if !reachable[s] {
					reachable[s] = true
					changed = true
				}
			}
		}
		for k, ss := range a.BinTrans {
			if !reachable[k[1]] || !reachable[k[2]] {
				continue
			}
			for _, s := range ss {
				if !reachable[s] {
					reachable[s] = true
					changed = true
				}
			}
		}
	}
	remap := make([]int, a.NumStates)
	n := 0
	for s, r := range reachable {
		if r {
			remap[s] = n
			n++
		} else {
			remap[s] = -1
		}
	}
	out := NewAutomaton(a.NumLabels, n)
	for label, ss := range a.LeafTrans {
		for _, s := range ss {
			out.AddLeaf(label, remap[s])
		}
	}
	for k, ss := range a.BinTrans {
		if remap[k[1]] < 0 || remap[k[2]] < 0 {
			continue
		}
		for _, s := range ss {
			out.AddBin(k[0], remap[k[1]], remap[k[2]], remap[s])
		}
	}
	for s, f := range a.Final {
		if f && remap[s] >= 0 {
			out.SetFinal(remap[s])
		}
	}
	return out
}
